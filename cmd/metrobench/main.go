// Command metrobench regenerates the paper's tables and figures.
//
// Usage:
//
//	metrobench -list
//	metrobench -run fig10
//	metrobench -run all -quick
//
// Output is the same rows/series the paper reports, as aligned text tables.
//
// -pprof-addr serves net/http/pprof on its own listener while the sweeps
// run (off by default) — profile a long -run all the same way a production
// service would be.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"strings"

	"metronome/internal/experiments"
	"metronome/internal/sched"
)

func main() {
	var (
		run       = flag.String("run", "", "experiment ID (tab1, fig10, ...) or 'all'")
		list      = flag.Bool("list", false, "list available experiments")
		quick     = flag.Bool("quick", false, "shrink durations ~10x for a smoke run")
		seed      = flag.Uint64("seed", 42, "experiment seed (runs are deterministic per seed)")
		policy    = flag.String("policy", "", "re-run deployments under this scheduling discipline: "+strings.Join(sched.Names(), "|"))
		elastic   = flag.Bool("elastic", false, "attach the elastic control plane (default tuning, 2M budget) to deployments on the common single-queue path")
		placement = flag.Bool("placement", false, "upgrade -elastic to the placement plane (per-queue apportionment + slope feedforward) on the common single-queue path; implies -elastic")
		capacity  = flag.Int64("cap", 0, "override the Rx descriptor-ring capacity for deployments on the common single-queue path that do not pin their own (0 = nic default 576)")
		parallel  = flag.Int("parallel", 0, "simulations to run concurrently per sweep (0 = GOMAXPROCS); output is identical at any setting")
		objective = flag.String("objective", "", "override the elastic cost objective for experiments that attach the controller: thread-seconds|joules")
		hist      = flag.Bool("hist", true, "render the exact log-scale latency-tail panels for experiments that publish them (-hist=false drops them)")
		doc       = flag.Bool("doc", false, "print the EXPERIMENTS.md paper-vs-measured skeleton and exit")
		ppaddr    = flag.String("pprof-addr", "", "serve net/http/pprof while experiments run (off by default)")
	)
	flag.Parse()

	if *ppaddr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			if err := http.ListenAndServe(*ppaddr, mux); err != nil {
				fmt.Fprintln(os.Stderr, "metrobench: pprof listener failed:", err)
			}
		}()
	}

	if *doc {
		experiments.Doc(os.Stdout)
		return
	}

	if *policy != "" {
		if _, err := sched.New(*policy, sched.Config{}); err != nil {
			fmt.Fprintf(os.Stderr, "metrobench: %v\n", err)
			os.Exit(1)
		}
	}
	if *objective != "" && *objective != "thread-seconds" && *objective != "joules" {
		fmt.Fprintf(os.Stderr, "metrobench: -objective must be thread-seconds or joules, not %q\n", *objective)
		os.Exit(1)
	}
	if *placement {
		// Per-queue apportionment only lands for placement-capable
		// policies; every other deployment degrades to the scalar size
		// law plus the slope feedforward. Say so instead of letting the
		// flag silently under-deliver (metrosim rejects the combination
		// outright; the sweep harness keeps running because experiments
		// pin their own policies per arm).
		fmt.Fprintln(os.Stderr, "metrobench: note: -placement engages per-queue apportionment only where the deployment's policy can place (rmetronome|worksteal); other deployments run the scalar size law with the slope feedforward")
	}

	if *list || *run == "" {
		fmt.Println("available experiments:")
		for _, e := range experiments.All() {
			fmt.Printf("  %-12s %s\n", e.ID, e.Title)
			fmt.Printf("  %-12s paper: %s\n", "", e.Paper)
		}
		if *run == "" && !*list {
			fmt.Println("\nrun one with: metrobench -run <id> (or -run all)")
		}
		return
	}

	opts := experiments.Options{
		Quick: *quick, Seed: *seed, Policy: *policy,
		Elastic: *elastic, Placement: *placement, RingCap: *capacity,
		Parallel: *parallel, Objective: *objective, NoHist: !*hist,
	}
	if *run == "all" {
		for _, e := range experiments.All() {
			fmt.Printf("--- %s: %s ---\n", e.ID, e.Title)
			for _, t := range e.Run(opts) {
				t.Render(os.Stdout)
			}
		}
		return
	}
	e, ok := experiments.ByID(*run)
	if !ok {
		fmt.Fprintf(os.Stderr, "metrobench: unknown experiment %q (try -list)\n", *run)
		os.Exit(1)
	}
	fmt.Printf("--- %s: %s ---\npaper: %s\n\n", e.ID, e.Title, e.Paper)
	for _, t := range e.Run(opts) {
		t.Render(os.Stdout)
	}
}
