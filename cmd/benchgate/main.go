// Command benchgate is the CI bench-regression gate: it reads `go test
// -bench` output on stdin, extracts every sample of the gated benchmarks,
// and fails (exit 1) when a measurement regresses past the committed
// baseline's gate block(s).
//
// Allocations are deterministic for our hot paths, so allocs/op is
// compared exactly: one alloc over the baseline fails (a zero budget is
// expressed as max_allocs_per_op 0). Wall time on shared CI runners is not
// deterministic, so ns/op gets a generous guard factor, and the best of
// the -count samples is compared (the minimum is the least noisy location
// statistic for a time measurement).
//
// A baseline file carries either a single "gate" block or a "gates" array
// — BENCH_simulate.json gates the simulator loop, BENCH_ring.json gates
// both ring specialisations, BENCH_telemetry.json pins the telemetry
// plane's publish+sample at zero allocations, BENCH_apps.json gates the
// application burst paths.
//
// A gate may also carry "min_speedup_over"/"min_speedup_x": the gated
// benchmark's best ns/op must then be at least min_speedup_x times faster
// than the named reference benchmark measured in the SAME run. Because both
// sides share the run, runner noise largely cancels, so a ratio gate can be
// tight where an absolute ns/op gate needs a generous guard.
//
// Usage:
//
//	go test -run=NONE -bench='^BenchmarkSimulateThroughput$' \
//	    -benchtime=3x -count=3 -benchmem . | benchgate -baseline BENCH_simulate.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// gate is one benchmark's regression budget.
type gate struct {
	Benchmark       string  `json:"benchmark"`
	MaxAllocsPerOp  int64   `json:"max_allocs_per_op"`
	NsPerOpRef      float64 `json:"ns_per_op_ref"`
	TimeGuardFactor float64 `json:"time_guard_factor"`
	// Optional same-run ratio gate: this benchmark's best ns/op must be at
	// least MinSpeedupX times lower than SpeedupOver's best ns/op.
	SpeedupOver string  `json:"min_speedup_over,omitempty"`
	MinSpeedupX float64 `json:"min_speedup_x,omitempty"`
}

// baseline mirrors the gate block(s) of a BENCH_*.json file.
type baseline struct {
	Gate  gate   `json:"gate"`
	Gates []gate `json:"gates"`
}

// sample aggregates the stdin measurements of one benchmark.
type sample struct {
	n         int
	minNs     float64
	maxAllocs int64
}

func main() {
	var (
		path = flag.String("baseline", "BENCH_simulate.json", "baseline JSON with a gate block or gates array")
	)
	flag.Parse()

	raw, err := os.ReadFile(*path)
	if err != nil {
		fatal("read baseline: %v", err)
	}
	var b baseline
	if err := json.Unmarshal(raw, &b); err != nil {
		fatal("parse baseline %s: %v", *path, err)
	}
	gates := b.Gates
	if b.Gate.Benchmark != "" {
		gates = append(gates, b.Gate)
	}
	if len(gates) == 0 {
		fatal("baseline %s has no usable gate block", *path)
	}
	// Collect samples for every gated benchmark plus any speedup reference.
	watch := make(map[string]bool, len(gates))
	byName := make(map[string]*gate, len(gates))
	for i := range gates {
		g := &gates[i]
		if g.TimeGuardFactor <= 0 {
			g.TimeGuardFactor = 3
		}
		byName[g.Benchmark] = g
		watch[g.Benchmark] = true
		if g.SpeedupOver != "" {
			watch[g.SpeedupOver] = true
		}
	}

	seen := map[string]*sample{}
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		// "BenchmarkName-8   3   1064763 ns/op   55243 B/op   85 allocs/op"
		if len(fields) < 2 {
			continue
		}
		name := strings.SplitN(fields[0], "-", 2)[0]
		if !watch[name] {
			continue
		}
		ns, okNs := valueBefore(fields, "ns/op")
		allocs, okAl := valueBefore(fields, "allocs/op")
		if !okNs || !okAl {
			continue
		}
		s := seen[name]
		if s == nil {
			s = &sample{minNs: ns, maxAllocs: int64(allocs)}
			seen[name] = s
		}
		if ns < s.minNs {
			s.minNs = ns
		}
		if a := int64(allocs); a > s.maxAllocs {
			s.maxAllocs = a
		}
		s.n++
		fmt.Printf("benchgate: %s sample %d: %.0f ns/op, %d allocs/op\n", name, s.n, ns, int64(allocs))
	}
	if err := sc.Err(); err != nil {
		fatal("read stdin: %v", err)
	}

	fail := false
	for _, g := range gates {
		s := seen[g.Benchmark]
		if s == nil {
			fatal("no %s samples on stdin (did the benchmark run with -benchmem?)", g.Benchmark)
		}
		// Check both budgets so one CI run surfaces every violation.
		gateFail := false
		if s.maxAllocs > g.MaxAllocsPerOp {
			fmt.Fprintf(os.Stderr, "benchgate: FAIL %s allocs/op %d > baseline %d (allocations are deterministic: this is a real regression)\n",
				g.Benchmark, s.maxAllocs, g.MaxAllocsPerOp)
			gateFail = true
		}
		if limit := g.NsPerOpRef * g.TimeGuardFactor; g.NsPerOpRef > 0 && s.minNs > limit {
			fmt.Fprintf(os.Stderr, "benchgate: FAIL %s best ns/op %.0f > %.1fx baseline %.0f (guard factor absorbs shared-runner noise; this is beyond it)\n",
				g.Benchmark, s.minNs, g.TimeGuardFactor, g.NsPerOpRef)
			gateFail = true
		}
		if g.SpeedupOver != "" && g.MinSpeedupX > 0 {
			ref := seen[g.SpeedupOver]
			if ref == nil {
				fatal("no %s samples on stdin (referenced by %s's speedup gate)", g.SpeedupOver, g.Benchmark)
			}
			if speedup := ref.minNs / s.minNs; speedup < g.MinSpeedupX {
				fmt.Fprintf(os.Stderr, "benchgate: FAIL %s only %.2fx faster than %s, gate requires >= %.1fx (same-run ratio: noise cancels, this is a real regression)\n",
					g.Benchmark, speedup, g.SpeedupOver, g.MinSpeedupX)
				gateFail = true
			} else {
				fmt.Printf("benchgate: %s is %.2fx faster than %s (gate >= %.1fx)\n",
					g.Benchmark, speedup, g.SpeedupOver, g.MinSpeedupX)
			}
		}
		if gateFail {
			fail = true
			continue
		}
		fmt.Printf("benchgate: PASS %s: best %.0f ns/op (<= %.1fx %.0f), worst %d allocs/op (<= %d)\n",
			g.Benchmark, s.minNs, g.TimeGuardFactor, g.NsPerOpRef, s.maxAllocs, g.MaxAllocsPerOp)
	}
	if fail {
		os.Exit(1)
	}
}

// valueBefore returns the numeric field immediately preceding the given
// unit token.
func valueBefore(fields []string, unit string) (float64, bool) {
	for i := 1; i < len(fields); i++ {
		if fields[i] == unit {
			v, err := strconv.ParseFloat(fields[i-1], 64)
			return v, err == nil
		}
	}
	return 0, false
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchgate: "+format+"\n", args...)
	os.Exit(1)
}
