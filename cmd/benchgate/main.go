// Command benchgate is the CI bench-regression gate: it reads `go test
// -bench` output on stdin, extracts every sample of one benchmark, and
// fails (exit 1) when the measurement regresses past the committed
// baseline's gate block.
//
// Allocations are deterministic for our simulator hot path, so allocs/op is
// compared exactly: one alloc over the baseline fails. Wall time on shared
// CI runners is not deterministic, so ns/op gets a generous guard factor,
// and the best of the -count samples is compared (the minimum is the least
// noisy location statistic for a time measurement).
//
// Usage:
//
//	go test -run=NONE -bench='^BenchmarkSimulateThroughput$' \
//	    -benchtime=3x -count=3 -benchmem . | benchgate -baseline BENCH_simulate.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// baseline mirrors the gate block of a BENCH_*.json file.
type baseline struct {
	Gate struct {
		Benchmark       string  `json:"benchmark"`
		MaxAllocsPerOp  int64   `json:"max_allocs_per_op"`
		NsPerOpRef      float64 `json:"ns_per_op_ref"`
		TimeGuardFactor float64 `json:"time_guard_factor"`
	} `json:"gate"`
}

func main() {
	var (
		path = flag.String("baseline", "BENCH_simulate.json", "baseline JSON with a gate block")
	)
	flag.Parse()

	raw, err := os.ReadFile(*path)
	if err != nil {
		fatal("read baseline: %v", err)
	}
	var b baseline
	if err := json.Unmarshal(raw, &b); err != nil {
		fatal("parse baseline %s: %v", *path, err)
	}
	if b.Gate.Benchmark == "" || b.Gate.MaxAllocsPerOp <= 0 {
		fatal("baseline %s has no usable gate block", *path)
	}
	if b.Gate.TimeGuardFactor <= 0 {
		b.Gate.TimeGuardFactor = 3
	}

	var (
		samples   int
		minNs     float64
		maxAllocs int64
	)
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		line := sc.Text()
		fields := strings.Fields(line)
		// "BenchmarkName-8   3   1064763 ns/op   55243 B/op   85 allocs/op"
		if len(fields) < 2 || strings.SplitN(fields[0], "-", 2)[0] != b.Gate.Benchmark {
			continue
		}
		ns, okNs := valueBefore(fields, "ns/op")
		allocs, okAl := valueBefore(fields, "allocs/op")
		if !okNs || !okAl {
			continue
		}
		if samples == 0 || ns < minNs {
			minNs = ns
		}
		if a := int64(allocs); samples == 0 || a > maxAllocs {
			maxAllocs = a
		}
		samples++
		fmt.Printf("benchgate: sample %d: %.0f ns/op, %d allocs/op\n", samples, ns, int64(allocs))
	}
	if err := sc.Err(); err != nil {
		fatal("read stdin: %v", err)
	}
	if samples == 0 {
		fatal("no %s samples on stdin (did the benchmark run with -benchmem?)", b.Gate.Benchmark)
	}

	fail := false
	if maxAllocs > b.Gate.MaxAllocsPerOp {
		fmt.Fprintf(os.Stderr, "benchgate: FAIL allocs/op %d > baseline %d (allocations are deterministic: this is a real regression)\n",
			maxAllocs, b.Gate.MaxAllocsPerOp)
		fail = true
	}
	if limit := b.Gate.NsPerOpRef * b.Gate.TimeGuardFactor; b.Gate.NsPerOpRef > 0 && minNs > limit {
		fmt.Fprintf(os.Stderr, "benchgate: FAIL best ns/op %.0f > %.1fx baseline %.0f (guard factor absorbs shared-runner noise; this is beyond it)\n",
			minNs, b.Gate.TimeGuardFactor, b.Gate.NsPerOpRef)
		fail = true
	}
	if fail {
		os.Exit(1)
	}
	fmt.Printf("benchgate: PASS %s: best %.0f ns/op (<= %.1fx %.0f), worst %d allocs/op (<= %d)\n",
		b.Gate.Benchmark, minNs, b.Gate.TimeGuardFactor, b.Gate.NsPerOpRef, maxAllocs, b.Gate.MaxAllocsPerOp)
}

// valueBefore returns the numeric field immediately preceding the given
// unit token.
func valueBefore(fields []string, unit string) (float64, bool) {
	for i := 1; i < len(fields); i++ {
		if fields[i] == unit {
			v, err := strconv.ParseFloat(fields[i-1], 64)
			return v, err == nil
		}
	}
	return 0, false
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchgate: "+format+"\n", args...)
	os.Exit(1)
}
