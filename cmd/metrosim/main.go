// Command metrosim runs one parameterized Metronome simulation and prints
// its steady-state metrics — the quickest way to explore the design space
// (threads, timeouts, queues, load) without writing code.
//
// Example:
//
//	metrosim -gbps 10 -m 3 -vbar 10us -tl 500us -dur 1s
//	metrosim -mpps 37 -queues 4 -m 5 -vbar 15us
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"metronome"
	"metronome/internal/core"
	"metronome/internal/experiments"
	"metronome/internal/sched"
	"metronome/internal/trace"
)

func main() {
	var (
		gbps     = flag.Float64("gbps", 0, "offered load in Gbit/s of 64B frames (overrides -mpps)")
		mpps     = flag.Float64("mpps", 14.88, "offered load in Mpps")
		m        = flag.Int("m", 3, "number of Metronome threads")
		queues   = flag.Int("queues", 1, "number of Rx queues (load split evenly)")
		vbar     = flag.Duration("vbar", 10*time.Microsecond, "target vacation period")
		tl       = flag.Duration("tl", 500*time.Microsecond, "backup (long) timeout")
		mu       = flag.Float64("mu", 29.76, "service rate, Mpps (l3fwd=29.76, ipsec=5.61, flowatcher=28)")
		capacity = flag.Int64("cap", 0, "Rx descriptor-ring capacity per queue (0 = nic default 576; the elastic occupancy target is a fraction of this)")
		d        = flag.Duration("dur", time.Second, "virtual duration to simulate")
		seed     = flag.Uint64("seed", 1, "simulation seed")
		policy   = flag.String("policy", "", "scheduling discipline: "+strings.Join(sched.Names(), "|")+" (default adaptive)")
		fixed    = flag.Duration("fixed-ts", 0, "use the fixed discipline with this TS (shorthand for -policy fixed)")
		doTrace  = flag.Bool("trace", false, "print a 1ms thread-state timeline (Fig 3 style)")
		runs     = flag.Int("runs", 1, "independent replicas over seeds seed..seed+runs-1 (summary table + mean row)")
		parallel = flag.Int("parallel", 0, "replicas to simulate concurrently (0 = GOMAXPROCS)")

		elastic       = flag.Bool("elastic", false, "attach the elastic control plane: autoscale the thread team between -elastic-min and -elastic-budget")
		elasticMin    = flag.Int("elastic-min", 0, "elastic team floor (default: queue count)")
		elasticBudget = flag.Int("elastic-budget", 0, "elastic core budget / team ceiling (default: 2*m)")
		elasticPeriod = flag.Duration("elastic-period", time.Millisecond, "elastic control period")
		elasticOcc    = flag.Float64("elastic-occ", 0.10, "elastic wake-time occupancy target (fraction of ring capacity)")
		placement     = flag.Bool("placement", false, "upgrade -elastic to the placement plane: apportion members per queue by wake-occupancy share (requires -elastic)")
		slopeGain     = flag.Float64("slope-gain", 0, "elastic occupancy-slope feedforward lookahead, in control periods (0 = off)")
		objective     = flag.String("objective", "thread-seconds", "elastic cost objective: thread-seconds|joules (joules inflates the shrink target by the modelled energy saving)")
	)
	flag.Parse()

	pps := *mpps * 1e6
	if *gbps > 0 {
		pps = metronome.LineRate64B(*gbps)
	}
	cfg := metronome.DefaultSimConfig()
	cfg.M = *m
	cfg.VBar = vbar.Seconds()
	cfg.TL = tl.Seconds()
	cfg.Mu = *mu * 1e6
	cfg.RingCap = *capacity
	cfg.Seed = *seed
	if *fixed > 0 {
		cfg.Adaptive = false
		cfg.TSFixed = fixed.Seconds()
		if *policy == "" {
			cfg.Policy = sched.NameFixed
		}
	}
	if *policy != "" {
		if _, err := sched.New(*policy, sched.Config{}); err != nil {
			fmt.Fprintf(os.Stderr, "metrosim: %v\n", err)
			os.Exit(1)
		}
		cfg.Policy = *policy
	}
	if *queues < 1 || *m < *queues {
		fmt.Fprintln(os.Stderr, "metrosim: need queues >= 1 and m >= queues")
		os.Exit(1)
	}
	if *placement && !*elastic {
		fmt.Fprintln(os.Stderr, "metrosim: -placement requires -elastic")
		os.Exit(1)
	}
	if *objective != "thread-seconds" && *objective != "joules" {
		fmt.Fprintf(os.Stderr, "metrosim: -objective must be thread-seconds or joules, not %q\n", *objective)
		os.Exit(1)
	}
	if *placement {
		// Plans only land per queue when the discipline binds placeable
		// groups; against a roaming policy the controller would silently
		// run the scalar law, so reject the combination outright.
		probe := sched.MustNew(core.PolicyName(cfg), sched.Config{M: *m, N: *queues})
		if _, ok := probe.(sched.Rebalancer); !ok {
			fmt.Fprintf(os.Stderr, "metrosim: -placement needs a placement-capable policy (rmetronome|worksteal), not %q\n",
				core.PolicyName(cfg))
			os.Exit(1)
		}
	}
	arrivals := make([]metronome.Traffic, *queues)
	for i := range arrivals {
		arrivals[i] = metronome.CBR{PPS: pps / float64(*queues)}
	}

	if *runs > 1 {
		if *doTrace {
			fmt.Fprintln(os.Stderr, "metrosim: -trace applies to single runs only")
			os.Exit(1)
		}
		if *elastic {
			fmt.Fprintln(os.Stderr, "metrosim: -elastic applies to single runs only")
			os.Exit(1)
		}
		runReplicas(cfg, arrivals, *d, *runs, *parallel, pps, *queues)
		return
	}

	if *elastic {
		ecfg := metronome.DefaultElasticConfig(*elasticMin, *elasticBudget)
		if ecfg.MinThreads <= 0 {
			ecfg.MinThreads = *queues
		}
		if ecfg.Budget <= 0 {
			ecfg.Budget = 2 * *m
		}
		ecfg.Period = elasticPeriod.Seconds()
		ecfg.TargetOccupancy = *elasticOcc
		ecfg.Placement = *placement
		ecfg.SlopeGain = *slopeGain
		if *objective == "joules" {
			ecfg.Objective = metronome.ElasticObjectiveJoules
		}
		met, rep, joules := metronome.SimulatePower(cfg, ecfg, metronome.PowerConfig{}, arrivals, *d)
		mode := "elastic"
		if *placement {
			mode = "placement-elastic"
		}
		mode += " (" + *objective + ")"
		fmt.Printf("offered:        %.2f Mpps over %d queue(s), %v, policy %s, %s %d..%d\n",
			pps/1e6, *queues, *d, core.PolicyName(cfg), mode, ecfg.MinThreads, ecfg.Budget)
		fmt.Printf("throughput:     %.2f Mpps   loss: %.4f permille\n", met.ThroughputPPS/1e6, met.LossRate*1000)
		fmt.Printf("cpu:            %.1f%% total\n", met.CPUPercent)
		fmt.Printf("vacation:       mean %.2f us (target %v)\n", met.MeanVacation*1e6, *vbar)
		fmt.Printf("team:           %.2f mean threads (%d..%d seen), %d resizes, %.1f thread-ms provisioned, final M=%d\n",
			rep.MeanThreads, rep.MinThreads, rep.MaxThreads, rep.Resizes, rep.ThreadSeconds*1e3, rep.Final)
		if rep.FinalPlan != nil {
			fmt.Printf("placement:      %d rebalances, final plan %v\n", rep.Rebalances, rep.FinalPlan)
		}
		fmt.Printf("energy:         %.2f J modelled over the team budget (%.2f W mean; controller gauge %.2f W)\n",
			joules, joules/d.Seconds(), rep.MeanWatts)
		fmt.Printf("busy tries:     %.1f%% of %d lock attempts, %d cycles\n",
			met.BusyTryFrac*100, met.Tries, met.Cycles)
		return
	}

	var rec *trace.Recorder
	if *doTrace {
		// record a 1ms window from the middle of the run
		mid := d.Seconds() / 2
		rec = trace.NewRecorder(mid, mid+1e-3)
		cfg.Tracer = rec
	}

	met := metronome.Simulate(cfg, arrivals, *d)

	if rec != nil {
		rec.Render(os.Stdout, 110)
		fmt.Println()
	}

	fmt.Printf("offered:        %.2f Mpps over %d queue(s), %v, policy %s\n",
		pps/1e6, *queues, *d, core.PolicyName(cfg))
	fmt.Printf("throughput:     %.2f Mpps   loss: %.4f permille\n", met.ThroughputPPS/1e6, met.LossRate*1000)
	fmt.Printf("cpu:            %.1f%% total across %d threads (static polling would be %d00%%)\n",
		met.CPUPercent, *m, *queues)
	fmt.Printf("vacation:       mean %.2f us (target %v)\n", met.MeanVacation*1e6, *vbar)
	fmt.Printf("busy period:    mean %.2f us   N_V: %.1f pkts\n", met.MeanBusy*1e6, met.MeanNV)
	fmt.Printf("latency (us):   min=%.2f q1=%.2f med=%.2f q3=%.2f max=%.2f mean=%.2f (n=%d tagged)\n",
		met.Latency.Min*1e6, met.Latency.Q1*1e6, met.Latency.Median*1e6,
		met.Latency.Q3*1e6, met.Latency.Max*1e6, met.Latency.Mean*1e6, met.Latency.N)
	fmt.Printf("busy tries:     %.1f%% of %d lock attempts, %d cycles\n",
		met.BusyTryFrac*100, met.Tries, met.Cycles)
	for q := range arrivals {
		fmt.Printf("queue %d:        rho=%.3f  TS=%.2f us\n", q, met.RhoEst[q], met.TSNow[q]*1e6)
	}
}

// runReplicas simulates the same deployment across consecutive seeds on a
// bounded worker pool and prints one summary row per seed plus the mean —
// the quickest read on run-to-run variance for a design point. Results are
// collected by seed index, so output is identical at any -parallel.
func runReplicas(cfg metronome.SimConfig, arrivals []metronome.Traffic, d time.Duration, runs, parallel int, pps float64, queues int) {
	workers := parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > runs {
		workers = runs
	}
	mets := experiments.ParMap(workers, runs, func(i int) metronome.SimMetrics {
		c := cfg
		c.Seed = cfg.Seed + uint64(i)
		return metronome.Simulate(c, arrivals, d)
	})

	fmt.Printf("offered:  %.2f Mpps over %d queue(s), %v x %d seeds, policy %s, %d worker(s)\n",
		pps/1e6, queues, d, runs, core.PolicyName(cfg), workers)
	fmt.Printf("%-6s %10s %9s %9s %10s %12s %12s\n",
		"seed", "tput_mpps", "cpu_pct", "V_us", "lat_us", "busy_tries%", "loss_permille")
	var tput, cpu, vac, lat, bt, loss float64
	for i, m := range mets {
		fmt.Printf("%-6d %10.2f %9.1f %9.2f %10.2f %12.1f %12.4f\n",
			cfg.Seed+uint64(i), m.ThroughputPPS/1e6, m.CPUPercent, m.MeanVacation*1e6,
			m.Latency.Mean*1e6, m.BusyTryFrac*100, m.LossRate*1000)
		tput += m.ThroughputPPS
		cpu += m.CPUPercent
		vac += m.MeanVacation
		lat += m.Latency.Mean
		bt += m.BusyTryFrac
		loss += m.LossRate
	}
	n := float64(runs)
	fmt.Printf("%-6s %10.2f %9.1f %9.2f %10.2f %12.1f %12.4f\n",
		"mean", tput/n/1e6, cpu/n, vac/n*1e6, lat/n*1e6, bt/n*100, loss/n*1000)
}
