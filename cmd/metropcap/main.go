// Command metropcap generates, inspects and replays the pcap traces used by
// the multiqueue experiments.
//
//	metropcap -gen -out unbalanced.pcap -n 1000 -heavy 0.30
//	metropcap -info unbalanced.pcap -queues 3
//	metropcap -replay unbalanced.pcap -queues 3 -m 3 -times 50 -elastic
//	metropcap -replay unbalanced.pcap -elastic -metrics-addr :9090 -trace-out run.json
//
// -info parses the trace with the FloWatcher engine and reports per-flow
// statistics plus how RSS would spread the flows over the given queue
// count — the planning view for a Metronome multiqueue deployment.
//
// -replay drives the trace through that deployment for real: frames fan out
// via Toeplitz RSS onto per-queue rings served by the live runtime on the
// burst-native application path (runtime.NewProc straight into per-queue
// FloWatcher shards — no per-packet handler shim), with a telemetry bus
// attached. The producer charges every ring-full or pool-empty frame to
// bus.AddDrops, the live counterpart of the NIC's imissed counter, so an
// attached elastic controller's loss override fires on real backpressure;
// -elastic attaches that controller with the health layer on.
//
// The replay is observable while it runs. -metrics-addr serves the
// telemetry bus as Prometheus text exposition at /metrics (scrape it, or
// point metrotop at it) plus expvar at /debug/vars; -trace-out dumps the
// run's flight recording — every controller decision and placement swap —
// as Chrome trace-event JSON loadable in Perfetto; -pprof-addr serves
// net/http/pprof on its own listener (off unless the flag is set).
package main

import (
	"context"
	"expvar"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"time"

	"metronome/internal/apps/flowatcher"
	"metronome/internal/elastic"
	"metronome/internal/mbuf"
	"metronome/internal/obsv"
	"metronome/internal/packet"
	"metronome/internal/pcap"
	"metronome/internal/ring"
	"metronome/internal/runtime"
	"metronome/internal/sched"
	"metronome/internal/stats"
	"metronome/internal/telemetry"
)

func main() {
	var (
		gen     = flag.Bool("gen", false, "generate a trace")
		out     = flag.String("out", "unbalanced.pcap", "output path for -gen")
		n       = flag.Int("n", 1000, "packets to generate")
		heavy   = flag.Float64("heavy", 0.30, "share of the single heavy flow")
		pps     = flag.Float64("pps", 1e6, "pacing of the generated trace")
		seed    = flag.Uint64("seed", 42, "generator seed")
		info    = flag.String("info", "", "trace to inspect")
		queues  = flag.Int("queues", 3, "RSS queue count for -info and -replay")
		replay  = flag.String("replay", "", "trace to replay through the live runtime")
		m       = flag.Int("m", 3, "retrieval threads for -replay")
		times   = flag.Int("times", 50, "trace repetitions for -replay")
		speedup = flag.Float64("speedup", 20, "timestamp compression for -replay pacing")
		elas    = flag.Bool("elastic", false, "attach the self-healing elastic controller to -replay")
		metrics = flag.String("metrics-addr", "", "serve Prometheus /metrics and expvar /debug/vars during -replay (e.g. :9090)")
		ppaddr  = flag.String("pprof-addr", "", "serve net/http/pprof during -replay (off by default)")
		traceTo = flag.String("trace-out", "", "write the replay's flight recording as Chrome trace JSON (Perfetto-loadable)")
	)
	flag.Parse()

	switch {
	case *gen:
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		if err := pcap.GenerateUnbalanced(f, *n, *heavy, *pps, *seed); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s: %d packets, heavy share %.0f%%, paced at %.2f Mpps\n",
			*out, *n, *heavy*100, *pps/1e6)
	case *info != "":
		records, err := readTrace(*info)
		if err != nil {
			fatal(err)
		}
		inspect(records, *queues)
	case *replay != "":
		records, err := readTrace(*replay)
		if err != nil {
			fatal(err)
		}
		runReplay(records, *queues, *m, *times, *speedup, *elas, *seed,
			replayObsv{metricsAddr: *metrics, pprofAddr: *ppaddr, traceOut: *traceTo})
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func readTrace(path string) ([]pcap.Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return pcap.ReadAll(f)
}

func inspect(records []pcap.Record, queues int) {
	mon := flowatcher.New()
	pool := mbuf.NewPool(2)
	m, err := pool.Get()
	if err != nil {
		fatal(err)
	}
	idx := 0
	mon.Clock = func() float64 { return records[idx].TS }
	for i, rec := range records {
		idx = i
		m.SetFrame(rec.Data)
		mon.Process(m)
	}
	m.Free()

	span := 0.0
	if len(records) > 1 {
		span = records[len(records)-1].TS - records[0].TS
	}
	fmt.Printf("packets: %d (%d malformed)   flows: %d   span: %.3fs\n",
		mon.Packets, mon.Malformed, mon.FlowCount(), span)
	fmt.Printf("sizes: mean %.1fB [%0.f..%0.f]\n",
		mon.Sizes.Mean(), mon.Sizes.Min(), mon.Sizes.Max())

	fmt.Println("\ntop flows:")
	for i, k := range mon.TopK(5) {
		fs, _ := mon.Flow(k)
		fmt.Printf("  #%d %-44v pkts=%-6d (%.1f%%)\n",
			i+1, k, fs.Packets, 100*float64(fs.Packets)/float64(mon.Packets))
	}

	rss := packet.NewToeplitz(packet.DefaultRSSKey)
	perQueue := make([]int64, queues)
	mon.Range(func(k packet.FlowKey, fs *flowatcher.FlowStats) bool {
		perQueue[rss.QueueFor(k, queues)] += fs.Packets
		return true
	})
	fmt.Printf("\nRSS split over %d queues:\n", queues)
	for q, c := range perQueue {
		fmt.Printf("  queue %d: %6d packets (%.1f%%)\n",
			q, c, 100*float64(c)/float64(mon.Packets))
	}
}

// replayObsv bundles the replay's observability endpoints.
type replayObsv struct {
	metricsAddr string // Prometheus + expvar listener ("" = off)
	pprofAddr   string // net/http/pprof listener ("" = off)
	traceOut    string // Chrome trace JSON dump path ("" = off)
}

// serve starts an HTTP listener with the handler in the background; replay
// endpoints live for the process, so nothing stops them.
func serve(addr string, h http.Handler) {
	go func() {
		if err := http.ListenAndServe(addr, h); err != nil {
			fmt.Fprintln(os.Stderr, "metropcap: listener", addr, "failed:", err)
		}
	}()
}

// runReplay is the live end of the planning view: the trace's flows land on
// real rings via the same Toeplitz split and the live runtime retrieves
// them under the shared-queue discipline.
func runReplay(records []pcap.Record, nq, m, times int, speedup float64, elas bool, seed uint64, ob replayObsv) {
	const ringCap = 4096
	pool := mbuf.NewPool(16384)
	rss := packet.NewToeplitz(packet.DefaultRSSKey)
	rings := make([]*ring.MPMC[*mbuf.Mbuf], nq)
	rxqs := make([]runtime.RxQueue, nq)
	for i := range rings {
		r, err := ring.NewMPMC[*mbuf.Mbuf](ringCap)
		if err != nil {
			fatal(err)
		}
		rings[i] = r
		rxqs[i] = runtime.RingQueue{R: r}
	}
	budget := 2 * m
	bus := telemetry.NewBus(nq, budget)
	for q := 0; q < nq; q++ {
		bus.SetCapacity(q, ringCap)
	}

	// The flight recorder rides every replay: decisions and placement swaps
	// land in the ring whether or not anything reads them, and -trace-out /
	// -metrics-addr expose the recording.
	rec := obsv.NewRecorder(obsv.DefaultCapacity)

	// The burst-native application path: one FloWatcher shard per queue fed
	// whole bursts through runtime.NewProc.
	sharded := flowatcher.NewSharded(nq)
	r := runtime.NewProc(rxqs, sharded.Procs(), nil, runtime.Config{
		M:        m,
		VBar:     100 * time.Microsecond,
		Policy:   sched.NameRMetronome,
		Seed:     seed,
		Bus:      bus,
		Recorder: rec,
	})
	ctx, cancel := context.WithCancel(context.Background())
	go r.Run(ctx)

	if ob.metricsAddr != "" {
		mh := obsv.NewMetrics(obsv.ExportOptions{Bus: bus, Recorder: rec, TeamSize: r.TeamSize})
		mh.PublishExpvar("metronome")
		mux := http.NewServeMux()
		mux.Handle("/metrics", mh)
		mux.Handle("/debug/vars", expvar.Handler())
		serve(ob.metricsAddr, mux)
		fmt.Printf("metrics: http://%s/metrics (Prometheus), /debug/vars (expvar)\n", ob.metricsAddr)
	}
	if ob.pprofAddr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		serve(ob.pprofAddr, mux)
		fmt.Printf("pprof: http://%s/debug/pprof/\n", ob.pprofAddr)
	}

	var ctrl *elastic.Controller
	stopTick := make(chan struct{})
	if elas {
		ec := elastic.DefaultConfig(m, budget)
		ec.TargetOccupancy = 0.03
		ec.Placement = true
		ec.Health = true
		ec.Recorder = rec
		ctrl = elastic.New(bus, r, ec)
		go func() {
			tk := time.NewTicker(time.Millisecond)
			defer tk.Stop()
			for {
				select {
				case <-stopTick:
					return
				case <-tk.C:
					ctrl.Tick(r.Elapsed())
				}
			}
		}()
	}

	// The replay loop. The producer leases from a producer-local mempool
	// cache and enqueues in bursts: frames accumulate per queue and land in
	// one EnqueueBurst when a burst fills (or before any pacing sleep, so
	// batching never delays a paced frame). Frames a ring cannot take are
	// bulk-returned to the cache as one rejected span and charged to the
	// bus in one AddDrops per burst — the live imissed counter the
	// controller's loss override consumes, accounted at burst granularity
	// exactly like the free path.
	const burst = 32
	cache := pool.NewCache()
	pending := make([][]*mbuf.Mbuf, nq)
	for q := range pending {
		pending[q] = make([]*mbuf.Mbuf, 0, burst)
	}
	sent, lost := 0, 0
	flush := func(q int) {
		p := pending[q]
		if len(p) == 0 {
			return
		}
		n := rings[q].EnqueueBurst(p)
		sent += n
		if rejected := len(p) - n; rejected > 0 {
			cache.PutBurst(p[n:])
			bus.AddDrops(q, uint64(rejected))
			lost += rejected
		}
		pending[q] = p[:0]
	}
	start := time.Now()
	pcap.Replay(records, times, func(ts float64, frame []byte) {
		var p packet.Parsed
		if p.Parse(frame) != nil {
			return
		}
		q := rss.QueueFor(p.Key, nq)
		target := time.Duration(ts / speedup * float64(time.Second))
		if d := target - time.Since(start); d > 0 {
			for i := range pending {
				flush(i)
			}
			time.Sleep(d)
		}
		mb, err := cache.Get()
		if err != nil {
			bus.AddDrops(q, 1)
			lost++
			return
		}
		mb.SetFrame(frame)
		// Stamp arrival so retrieval threads record this frame's latency
		// into the bus histogram (the exact tails /metrics serves).
		mb.RxStampNs = mbuf.Nanotime()
		pending[q] = append(pending[q], mb)
		if len(pending[q]) == burst {
			flush(q)
		}
	})
	for q := range pending {
		flush(q)
	}
	cache.Flush()
	time.Sleep(100 * time.Millisecond)
	close(stopTick)
	cancel()
	time.Sleep(50 * time.Millisecond)

	fmt.Printf("replayed %d packets (%d dropped producer-side) over %d queues, team %d\n",
		sent, lost, nq, r.TeamSize())
	var hist stats.LogHistogram
	for q := 0; q < nq; q++ {
		fmt.Printf("  queue %d: rx=%-7d drops=%-6d rho=%.3f TS=%v",
			q, bus.Rx(q), bus.Drops(q), r.Rho(q), r.TS(q).Round(10*time.Microsecond))
		if bus.SampleLatency(q, &hist); hist.N() > 0 {
			fmt.Printf(" p99=%v", time.Duration(hist.Quantile(0.99)).Round(time.Microsecond))
		}
		fmt.Println()
	}
	fmt.Printf("flows: %d (%d malformed)\n", sharded.FlowCount(), sharded.Malformed())
	for i, k := range sharded.TopK(3) {
		fs, _ := sharded.Flow(k)
		fmt.Printf("  #%d %-44v pkts=%d\n", i+1, k, fs.Packets)
	}
	if ctrl != nil {
		rep := ctrl.Report(r.Elapsed())
		fmt.Printf("elastic: M %d..%d, %d resizes, %d exiles, %d safe ticks, %d stale-queue ticks\n",
			rep.MinThreads, rep.MaxThreads, rep.Resizes, rep.Exiles, rep.SafeTicks, rep.StaleQueueTicks)
		if rep.Panics > 0 {
			fmt.Printf("elastic: %d controller panics; first: %s\n", rep.Panics, rep.PanicMsg)
		}
	}
	if ob.traceOut != "" {
		f, err := os.Create(ob.traceOut)
		if err != nil {
			fatal(err)
		}
		if err := rec.WriteTrace(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("trace: wrote %d control-plane events to %s (load in Perfetto)\n",
			len(rec.Events(nil)), ob.traceOut)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "metropcap:", err)
	os.Exit(1)
}
