// Command metropcap generates and inspects the pcap traces used by the
// multiqueue experiments.
//
//	metropcap -gen -out unbalanced.pcap -n 1000 -heavy 0.30
//	metropcap -info unbalanced.pcap -queues 3
//
// -info parses the trace with the FloWatcher engine and reports per-flow
// statistics plus how RSS would spread the flows over the given queue
// count — the planning view for a Metronome multiqueue deployment.
package main

import (
	"flag"
	"fmt"
	"os"

	"metronome/internal/apps/flowatcher"
	"metronome/internal/mbuf"
	"metronome/internal/packet"
	"metronome/internal/pcap"
)

func main() {
	var (
		gen    = flag.Bool("gen", false, "generate a trace")
		out    = flag.String("out", "unbalanced.pcap", "output path for -gen")
		n      = flag.Int("n", 1000, "packets to generate")
		heavy  = flag.Float64("heavy", 0.30, "share of the single heavy flow")
		pps    = flag.Float64("pps", 1e6, "pacing of the generated trace")
		seed   = flag.Uint64("seed", 42, "generator seed")
		info   = flag.String("info", "", "trace to inspect")
		queues = flag.Int("queues", 3, "RSS queue count for the -info split")
	)
	flag.Parse()

	switch {
	case *gen:
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		if err := pcap.GenerateUnbalanced(f, *n, *heavy, *pps, *seed); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s: %d packets, heavy share %.0f%%, paced at %.2f Mpps\n",
			*out, *n, *heavy*100, *pps/1e6)
	case *info != "":
		f, err := os.Open(*info)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		records, err := pcap.ReadAll(f)
		if err != nil {
			fatal(err)
		}
		inspect(records, *queues)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func inspect(records []pcap.Record, queues int) {
	mon := flowatcher.New()
	pool := mbuf.NewPool(2)
	m, err := pool.Get()
	if err != nil {
		fatal(err)
	}
	idx := 0
	mon.Clock = func() float64 { return records[idx].TS }
	for i, rec := range records {
		idx = i
		m.SetFrame(rec.Data)
		mon.Process(m)
	}
	m.Free()

	span := 0.0
	if len(records) > 1 {
		span = records[len(records)-1].TS - records[0].TS
	}
	fmt.Printf("packets: %d (%d malformed)   flows: %d   span: %.3fs\n",
		mon.Packets, mon.Malformed, mon.FlowCount(), span)
	fmt.Printf("sizes: mean %.1fB [%0.f..%0.f]\n",
		mon.Sizes.Mean(), mon.Sizes.Min(), mon.Sizes.Max())

	fmt.Println("\ntop flows:")
	for i, k := range mon.TopK(5) {
		fs, _ := mon.Flow(k)
		fmt.Printf("  #%d %-44v pkts=%-6d (%.1f%%)\n",
			i+1, k, fs.Packets, 100*float64(fs.Packets)/float64(mon.Packets))
	}

	rss := packet.NewToeplitz(packet.DefaultRSSKey)
	perQueue := make([]int64, queues)
	mon.Range(func(k packet.FlowKey, fs *flowatcher.FlowStats) bool {
		perQueue[rss.QueueFor(k, queues)] += fs.Packets
		return true
	})
	fmt.Printf("\nRSS split over %d queues:\n", queues)
	for q, c := range perQueue {
		fmt.Printf("  queue %d: %6d packets (%.1f%%)\n",
			q, c, 100*float64(c)/float64(mon.Packets))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "metropcap:", err)
	os.Exit(1)
}
