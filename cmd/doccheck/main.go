// Command doccheck enforces godoc coverage on the packages that form the
// repo's public surface and control stack: every exported top-level symbol
// (and every exported field of an exported struct) must carry a doc
// comment. It is a build-tag-free stdlib tool so CI can run it without
// fetching a linter.
//
// Usage:
//
//	doccheck [dir ...]    (default: the repo's documented surface)
//
// Exit status is 1 if any exported symbol is undocumented, with one
// file:line per finding.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
)

// defaultDirs is the documented surface the repo commits to: the facade
// package plus the telemetry, elastic, observability and mbuf planes.
// Widen deliberately — a directory added here becomes an API-doc contract
// enforced by CI.
var defaultDirs = []string{".", "internal/telemetry", "internal/elastic", "internal/obsv", "internal/mbuf"}

func main() {
	flag.Parse()
	dirs := flag.Args()
	if len(dirs) == 0 {
		dirs = defaultDirs
	}
	bad := 0
	for _, dir := range dirs {
		bad += checkDir(dir)
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "doccheck: %d undocumented exported symbol(s)\n", bad)
		os.Exit(1)
	}
}

// checkDir parses every non-test .go file in dir (no recursion — each
// checked package is named explicitly) and reports undocumented exported
// symbols.
func checkDir(dir string) int {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		fmt.Fprintf(os.Stderr, "doccheck: %s: %v\n", dir, err)
		return 1
	}
	bad := 0
	for _, pkg := range pkgs {
		for path, f := range pkg.Files {
			bad += checkFile(fset, filepath.ToSlash(path), f)
		}
	}
	return bad
}

// checkFile walks one file's top-level declarations. A grouped
// declaration's doc comment covers its specs (the idiom for const blocks
// of enum values); an exported spec is flagged only when neither it nor
// its group carries one.
func checkFile(fset *token.FileSet, path string, f *ast.File) int {
	bad := 0
	flag := func(pos token.Pos, kind, name string) {
		p := fset.Position(pos)
		fmt.Printf("%s:%d: exported %s %s has no doc comment\n", path, p.Line, kind, name)
		bad++
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if d.Name.IsExported() && d.Doc == nil && exportedRecv(d) {
				flag(d.Pos(), "function", d.Name.Name)
			}
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if !s.Name.IsExported() {
						continue
					}
					if d.Doc == nil && s.Doc == nil {
						flag(s.Pos(), "type", s.Name.Name)
					}
					if st, ok := s.Type.(*ast.StructType); ok {
						bad += checkFields(fset, path, s.Name.Name, st)
					}
				case *ast.ValueSpec:
					for _, name := range s.Names {
						if name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
							flag(name.Pos(), kindWord(d.Tok), name.Name)
						}
					}
				}
			}
		}
	}
	return bad
}

// checkFields flags exported struct fields with neither a doc comment nor
// a trailing line comment.
func checkFields(fset *token.FileSet, path, typeName string, st *ast.StructType) int {
	bad := 0
	for _, fld := range st.Fields.List {
		for _, name := range fld.Names {
			if name.IsExported() && fld.Doc == nil && fld.Comment == nil {
				p := fset.Position(name.Pos())
				fmt.Printf("%s:%d: exported field %s.%s has no doc comment\n", path, p.Line, typeName, name.Name)
				bad++
			}
		}
	}
	return bad
}

// exportedRecv reports whether a method's receiver type is exported (or
// the decl is a plain function): methods on unexported types are not part
// of the surface godoc renders.
func exportedRecv(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	for {
		switch v := t.(type) {
		case *ast.StarExpr:
			t = v.X
		case *ast.IndexExpr: // generic receiver T[P]
			t = v.X
		case *ast.Ident:
			return v.IsExported()
		default:
			return true
		}
	}
}

// kindWord maps a GenDecl token to the word used in findings.
func kindWord(tok token.Token) string {
	if tok == token.CONST {
		return "const"
	}
	return "var"
}
