// Command hrsleepbench measures the host's real sleep-service latency —
// the Figure 1 experiment against your own kernel and Go runtime instead
// of the paper's patched Linux. It compares plain time.Sleep (the
// nanosleep analogue on a Go runtime) with the spin-finish sleeper (the
// hr_sleep analogue, trading some CPU for precision).
package main

import (
	"flag"
	"fmt"
	"sort"
	"time"

	"metronome"
	"metronome/internal/hrtimer"
)

func main() {
	var (
		n     = flag.Int("n", 2000, "samples per (service, request) pair")
		slack = flag.Duration("slack", 200*time.Microsecond, "spin-finish slack of the precise sleeper")
	)
	flag.Parse()

	requests := []time.Duration{
		1 * time.Microsecond,
		10 * time.Microsecond,
		100 * time.Microsecond,
		1 * time.Millisecond,
	}
	services := []struct {
		name string
		s    metronome.Sleeper
	}{
		{"time.Sleep", metronome.GoSleeper{}},
		{fmt.Sprintf("sleep+spin(%v)", *slack), metronome.SpinSleeper{Slack: *slack}},
	}

	fmt.Printf("%-20s %-10s %-10s %-10s %-10s %-10s\n",
		"service", "request", "p50_over", "p90_over", "p99_over", "max_over")
	for _, req := range requests {
		for _, svc := range services {
			xs := hrtimer.MeasureOvershoot(svc.s, req, *n)
			sort.Float64s(xs)
			over := func(q float64) time.Duration {
				v := xs[int(q*float64(len(xs)-1))]
				return time.Duration(v*float64(time.Second)) - req
			}
			fmt.Printf("%-20s %-10v %-10v %-10v %-10v %-10v\n",
				svc.name, req, over(0.50), over(0.90), over(0.99), over(1.0))
		}
	}
	fmt.Println("\novershoot = measured wall time minus requested sleep; the paper's")
	fmt.Println("hr_sleep achieves ~2.8us overshoot at microsecond requests (Fig 1).")
}
