// Command metrotop is the live operator view over a Metronome deployment:
// an ANSI terminal refresher rendering the telemetry bus — per-queue
// occupancy bars, exact latency tails, team state, exile and safe-mode
// banners — from a Prometheus metrics endpoint or a recorded flight trace.
//
//	metrotop -metrics http://localhost:9090/metrics
//	metrotop -metrics http://localhost:9090/metrics -interval 250ms
//	metrotop -trace run.txt
//	metrotop -metrics ... -once        # single frame, no ANSI (CI smoke)
//
// Live mode scrapes the endpoint every -interval and redraws in place; the
// latency quantiles shown are recomputed from the scraped histogram
// buckets with the bus's own conservative rule, so they match the
// in-process fold exactly. Trace mode folds a flight-recorder text dump
// (obsv.WriteText output, e.g. metropcap's future dumps or test logs) into
// a one-shot post-mortem: per-kind counts, the final controller state and
// the tail of the event stream.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"
)

func main() {
	var (
		metrics  = flag.String("metrics", "", "Prometheus metrics endpoint URL to watch")
		trace    = flag.String("trace", "", "flight-recorder text dump to fold (obsv.WriteText format)")
		interval = flag.Duration("interval", time.Second, "refresh period in live mode")
		once     = flag.Bool("once", false, "render one frame without ANSI control and exit")
		ns       = flag.String("namespace", "metronome", "metric namespace prefix of the endpoint")
	)
	flag.Parse()

	switch {
	case *trace != "":
		f, err := os.Open(*trace)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		out, err := renderTrace(f)
		if err != nil {
			fatal(err)
		}
		fmt.Print(out)
	case *metrics != "":
		for {
			frame, err := scrapeFrame(*metrics, *ns)
			if err != nil {
				fatal(err)
			}
			if *once {
				fmt.Print(frame)
				return
			}
			// Clear and home between frames: a flicker-free in-place redraw.
			fmt.Print("\x1b[2J\x1b[H" + frame)
			time.Sleep(*interval)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// scrapeFrame fetches one exposition and renders it.
func scrapeFrame(url, ns string) (string, error) {
	resp, err := http.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("metrotop: %s returned %s", url, resp.Status)
	}
	return renderScrape(resp.Body, ns, time.Now().Format("15:04:05"))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "metrotop:", err)
	os.Exit(1)
}

// bar renders frac of width as a block-character gauge.
func bar(frac float64, width int) string {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	full := int(frac*float64(width) + 0.5)
	return strings.Repeat("█", full) + strings.Repeat("░", width-full)
}

// fmtRate renders packets/second in engineering units.
func fmtRate(pps float64) string {
	switch {
	case pps >= 1e6:
		return fmt.Sprintf("%.2f Mpps", pps/1e6)
	case pps >= 1e3:
		return fmt.Sprintf("%.1f Kpps", pps/1e3)
	default:
		return fmt.Sprintf("%.0f pps", pps)
	}
}

// fmtNs renders a nanosecond latency in engineering units.
func fmtNs(ns uint64) string {
	switch {
	case ns >= 1_000_000:
		return fmt.Sprintf("%.2f ms", float64(ns)/1e6)
	case ns >= 1_000:
		return fmt.Sprintf("%.1f us", float64(ns)/1e3)
	default:
		return fmt.Sprintf("%d ns", ns)
	}
}

// kvLine is one parsed flight-trace line: the event kind plus its
// key=value fields.
type kvLine struct {
	kind   string
	at     float64
	fields map[string]string
	raw    string
}

// parseTraceText parses obsv.WriteText output. Panic stack lines (no
// "[seq]" prefix) are folded into a count.
func parseTraceText(r io.Reader) (lines []kvLine, panics int, err error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, 0, err
	}
	for _, ln := range strings.Split(string(raw), "\n") {
		ln = strings.TrimSpace(ln)
		if ln == "" {
			continue
		}
		if strings.HasPrefix(ln, "panic[") {
			panics++
			continue
		}
		if !strings.HasPrefix(ln, "[") {
			continue // stack frame lines following a panic entry
		}
		close := strings.IndexByte(ln, ']')
		if close < 0 {
			continue
		}
		parts := strings.Fields(ln[close+1:])
		if len(parts) < 2 || !strings.HasPrefix(parts[0], "t=") {
			continue
		}
		at, _ := strconv.ParseFloat(strings.TrimPrefix(parts[0], "t="), 64)
		kv := kvLine{kind: parts[1], at: at, fields: map[string]string{}, raw: ln}
		for _, p := range parts[2:] {
			if eq := strings.IndexByte(p, '='); eq > 0 {
				kv.fields[p[:eq]] = p[eq+1:]
			}
		}
		lines = append(lines, kv)
	}
	return lines, panics, nil
}

// renderTrace folds a flight-recorder text dump into a post-mortem frame.
func renderTrace(r io.Reader) (string, error) {
	lines, panics, err := parseTraceText(r)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "metrotop — flight-trace post-mortem (%d events", len(lines))
	if panics > 0 {
		fmt.Fprintf(&b, ", %d PANICS", panics)
	}
	b.WriteString(")\n\n")
	if len(lines) == 0 {
		b.WriteString("  (empty trace)\n")
		return b.String(), nil
	}

	counts := map[string]int{}
	order := []string{}
	exiled := map[string]bool{}
	safe := false
	var lastDecision *kvLine
	for i := range lines {
		ln := &lines[i]
		if counts[ln.kind] == 0 {
			order = append(order, ln.kind)
		}
		counts[ln.kind]++
		switch ln.kind {
		case "decision":
			lastDecision = ln
		case "exile":
			exiled[ln.fields["thread"]] = true
		case "recover":
			delete(exiled, ln.fields["thread"])
		case "safe-enter":
			safe = true
		case "safe-exit":
			safe = false
		}
	}

	if safe {
		b.WriteString("  !! ENDED IN SAFE MODE — every queue's telemetry was stale\n")
	}
	if len(exiled) > 0 {
		ids := make([]string, 0, len(exiled))
		for id := range exiled {
			ids = append(ids, id)
		}
		fmt.Fprintf(&b, "  !! EXILED AT END: threads %s (heartbeats never resumed)\n", strings.Join(ids, ","))
	}
	if safe || len(exiled) > 0 {
		b.WriteString("\n")
	}

	span := lines[len(lines)-1].at - lines[0].at
	fmt.Fprintf(&b, "  span %.3fs  (t=%.3f .. t=%.3f)\n\n", span, lines[0].at, lines[len(lines)-1].at)
	for _, k := range order {
		fmt.Fprintf(&b, "  %-11s %6d\n", k, counts[k])
	}
	if lastDecision != nil {
		f := lastDecision.fields
		fmt.Fprintf(&b, "\n  last decision: t=%.3f M=%s (want %s) occ=%s watts=%s plan=%s flags=%s\n",
			lastDecision.at, f["applied"], f["want"], f["occ"], f["watts"],
			orDash(f["plan"]), orDash(f["flags"]))
	}
	b.WriteString("\n  tail:\n")
	tail := lines
	if len(tail) > 10 {
		tail = tail[len(tail)-10:]
	}
	for _, ln := range tail {
		fmt.Fprintf(&b, "    %s\n", ln.raw)
	}
	return b.String(), nil
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}
