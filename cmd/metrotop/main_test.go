package main

import (
	"net/http/httptest"
	"strings"
	"testing"

	"metronome/internal/obsv"
	"metronome/internal/stats"
	"metronome/internal/telemetry"
)

// The end-to-end smoke: a bus with known state served by the obsv metrics
// handler, scraped over real HTTP, rendered as an operator frame. This is
// the CI metrics-endpoint smoke test.
func TestLiveFrameFromMetricsEndpoint(t *testing.T) {
	bus := telemetry.NewBus(2, 4)
	bus.SetOccupancy(0, 1024)
	bus.SetCapacity(0, 4096)
	bus.SetArrivalRate(0, 2.5e6)
	bus.SetDrops(0, 7)
	bus.SetCapacity(1, 4096)
	for i := 0; i < 100; i++ {
		bus.RecordLatency(0, uint64(1000*(i+1)))
	}
	rec := obsv.NewRecorder(64)
	rec.RecordDecision(0.5, 3, 3, 0, 0.25, 0, 14.5, false, false, false)
	rec.RecordExile(0.6, 2)

	m := obsv.NewMetrics(obsv.ExportOptions{Bus: bus, Recorder: rec, TeamSize: func() int { return 3 }})
	srv := httptest.NewServer(m)
	defer srv.Close()

	frame, err := scrapeFrame(srv.URL, "metronome")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"team 3", "want 3", "q0", "25.0%", "2.50 Mpps", "drops 7", "p99", "EXILED"} {
		if !strings.Contains(frame, want) {
			t.Errorf("frame missing %q:\n%s", want, frame)
		}
	}
	// The rendered p99 is the in-process fold's conservative bucket edge,
	// rendered with the same formatter — what-you-see-is-what-it-measured.
	var fold stats.LogHistogram
	bus.SampleLatency(0, &fold)
	if want := "p99 " + fmtNs(fold.Quantile(0.99)); !strings.Contains(frame, want) {
		t.Errorf("frame lacks the exact fold quantile %q:\n%s", want, frame)
	}
}

// Trace mode folds a WriteText dump into the post-mortem frame.
func TestTracePostMortem(t *testing.T) {
	rec := obsv.NewRecorder(64)
	rec.RecordDecision(0.001, 4, 4, 0x0103, 0.5, 0, 16, true, false, false)
	rec.RecordExile(0.002, 1)
	rec.RecordSafeMode(0.003, true, 4)
	rec.RecordPanic(0.004, "boom", "stack")
	var dump strings.Builder
	if err := rec.WriteText(&dump); err != nil {
		t.Fatal(err)
	}
	out, err := renderTrace(strings.NewReader(dump.String()))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"4 events", "1 PANICS", "SAFE MODE", "EXILED AT END: threads 1", "last decision", "plan=3/1"} {
		if !strings.Contains(out, want) {
			t.Errorf("post-mortem missing %q:\n%s", want, out)
		}
	}
}
