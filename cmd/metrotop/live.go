package main

// The live frame: one scraped exposition rendered as the operator view.
// Quantiles are recomputed from the scraped buckets with the bus's own
// conservative upper-edge rule (obsv.HistSeries.Quantile), so the numbers
// on screen equal the in-process fold — what you see is what the
// controller saw.

import (
	"fmt"
	"io"
	"strings"

	"metronome/internal/obsv"
)

// qkey builds the canonical per-queue series key ParseExposition emits.
func qkey(ns, name string, q int) string {
	return fmt.Sprintf(`%s_%s{queue="%d"}`, ns, name, q)
}

// renderScrape parses one exposition and renders the operator frame.
func renderScrape(body io.Reader, ns, clock string) (string, error) {
	s, err := obsv.ParseExposition(body)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "metrotop — %s\n\n", clock)

	// Banners first: the states an operator must not miss.
	if v, ok := s.Value(ns + "_safe_mode"); ok && v != 0 {
		b.WriteString("  !! SAFE MODE — every queue's telemetry is stale; the controller holds/grows blind\n")
	}
	exiles, _ := s.Value(ns + `_events_total{kind="exile"}`)
	recovers, _ := s.Value(ns + `_events_total{kind="recover"}`)
	if n := exiles - recovers; n > 0 {
		fmt.Fprintf(&b, "  !! %g EXILED MEMBER(S) — stragglers latched out, home queues reinforced\n", n)
	}
	if p, ok := s.Value(ns + `_events_total{kind="panic"}`); ok && p > 0 {
		fmt.Fprintf(&b, "  !! %g CONTROLLER PANIC(S) swallowed by the tick watchdog\n", p)
	}

	// Team state.
	if v, ok := s.Value(ns + "_team_size"); ok {
		fmt.Fprintf(&b, "  team %.0f", v)
		b.WriteString(teamDetail(s, ns))
		b.WriteString("\n")
	}

	// Per-queue rows while the series exist.
	b.WriteString("\n")
	for q := 0; ; q++ {
		occ, ok := s.Value(qkey(ns, "queue_occupancy", q))
		if !ok {
			if q == 0 {
				b.WriteString("  (no per-queue series in this scrape)\n")
			}
			break
		}
		capacity, _ := s.Value(qkey(ns, "queue_capacity", q))
		rate, _ := s.Value(qkey(ns, "queue_arrival_rate_pps", q))
		drops, _ := s.Value(qkey(ns, "queue_drops_total", q))
		frac := 0.0
		if capacity > 0 {
			frac = occ / capacity
		}
		fmt.Fprintf(&b, "  q%-2d [%s] %5.1f%%  %10s  drops %.0f",
			q, bar(frac, 24), frac*100, fmtRate(rate), drops)
		if h := s.Histogram(qkey(ns, "queue_latency_seconds", q)); h != nil && h.Count() > 0 {
			fmt.Fprintf(&b, "  p99 %s  p99.9 %s", fmtNs(h.Quantile(0.99)), fmtNs(h.Quantile(0.999)))
		}
		b.WriteString("\n")
	}
	return b.String(), nil
}

// teamDetail renders the controller gauges riding the scrape, when present.
func teamDetail(s *obsv.Scrape, ns string) string {
	var parts []string
	if v, ok := s.Value(ns + "_controller_want"); ok {
		parts = append(parts, fmt.Sprintf("want %.0f", v))
	}
	if v, ok := s.Value(ns + "_controller_occupancy"); ok {
		parts = append(parts, fmt.Sprintf("worst occ %.1f%%", v*100))
	}
	if v, ok := s.Value(ns + "_controller_watts"); ok && v > 0 {
		parts = append(parts, fmt.Sprintf("%.1f W", v))
	}
	if len(parts) == 0 {
		return ""
	}
	return "  (" + strings.Join(parts, ", ") + ")"
}
