// Package sim is the discrete-event engine underneath the Metronome
// reproduction. It provides a virtual clock, an event heap and process
// scheduling; no wall-clock time ever enters a simulation, so every run is
// deterministic given its seed.
//
// Time is a float64 count of seconds since simulation start. Events at
// equal times fire in scheduling order (a monotonic sequence number breaks
// ties), which keeps thread races reproducible.
//
// The engine owns its events: the priority queue is an inline min-heap
// specialised to *Event (no interface boxing, no container/heap dispatch),
// and fired or cancelled events return to a free list instead of the
// garbage collector, so the steady-state tick path allocates nothing.
// Callers hold EventRef handles; a generation counter on each Event makes
// a stale handle's Cancel a guaranteed no-op after recycling.
package sim

import (
	"fmt"
	"math"
)

// Time is a point in virtual time, in seconds.
type Time = float64

// Event is a callback scheduled to run at a virtual time. Events are
// engine-owned and recycled after they fire or are cancelled; callers
// interact with them through EventRef handles.
type Event struct {
	at    Time
	seq   uint64
	fn    func()
	gen   uint64 // bumped on recycle; refs from older generations are stale
	index int32  // heap index; -1 when not queued
	dead  bool
	What  string // optional label for tracing
}

// EventRef is a handle to a scheduled event. The zero value refers to
// nothing and all its methods are no-ops. A ref goes stale once its event
// fires or its cancellation is collected — the engine recycles the Event
// for a future schedule — after which Cancel cannot touch the successor.
type EventRef struct {
	ev  *Event
	gen uint64
}

// live reports whether the ref still addresses the event it was issued for.
func (r EventRef) live() bool { return r.ev != nil && r.ev.gen == r.gen }

// At returns the time the event is scheduled for, or 0 for a stale ref.
func (r EventRef) At() Time {
	if r.live() {
		return r.ev.at
	}
	return 0
}

// Pending reports whether the event is still queued (neither fired nor
// collected after cancellation).
func (r EventRef) Pending() bool { return r.live() && !r.ev.dead }

// Cancel prevents a pending event from firing. Cancelling an already-fired
// or already-cancelled event is a no-op: a stale ref can never cancel the
// event that later reuses the same slot.
func (r EventRef) Cancel() {
	if r.live() {
		r.ev.dead = true
	}
}

// Cancelled reports whether the event is cancelled but not yet collected.
// It returns false once the engine has recycled the event.
func (r EventRef) Cancelled() bool { return r.live() && r.ev.dead }

// Engine runs events in virtual-time order.
type Engine struct {
	now      Time
	seq      uint64
	queue    []*Event // binary min-heap ordered by (at, seq)
	free     []*Event // recycled events awaiting reuse
	fired    uint64
	recycled uint64
	halted   bool
}

// New returns an engine with the clock at zero.
func New() *Engine { return &Engine{} }

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Fired returns the number of events executed so far (a cheap progress and
// complexity metric for tests).
func (e *Engine) Fired() uint64 { return e.fired }

// Recycled returns how many schedules were served from the free list — the
// observable half of the allocation-free steady-state contract.
func (e *Engine) Recycled() uint64 { return e.recycled }

// Pending returns the number of queued (possibly cancelled) events.
func (e *Engine) Pending() int { return len(e.queue) }

// before reports heap order: earlier time first, scheduling order on ties.
func before(a, b *Event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// siftUp restores the heap above index i.
func (e *Engine) siftUp(i int) {
	q := e.queue
	ev := q[i]
	for i > 0 {
		p := (i - 1) / 2
		pe := q[p]
		if !before(ev, pe) {
			break
		}
		q[i] = pe
		pe.index = int32(i)
		i = p
	}
	q[i] = ev
	ev.index = int32(i)
}

// siftDown restores the heap below index i.
func (e *Engine) siftDown(i int) {
	q := e.queue
	n := len(q)
	ev := q[i]
	for {
		c := 2*i + 1
		if c >= n {
			break
		}
		ce := q[c]
		if rr := c + 1; rr < n && before(q[rr], ce) {
			c, ce = rr, q[rr]
		}
		if !before(ce, ev) {
			break
		}
		q[i] = ce
		ce.index = int32(i)
		i = c
	}
	q[i] = ev
	ev.index = int32(i)
}

// push inserts ev into the heap.
func (e *Engine) push(ev *Event) {
	e.queue = append(e.queue, ev)
	e.siftUp(len(e.queue) - 1)
}

// popMin removes and returns the earliest event.
func (e *Engine) popMin() *Event {
	q := e.queue
	ev := q[0]
	n := len(q) - 1
	last := q[n]
	q[n] = nil
	e.queue = q[:n]
	if n > 0 {
		q[0] = last
		last.index = 0
		e.siftDown(0)
	}
	ev.index = -1
	return ev
}

// recycle returns a popped event to the free list, invalidating every
// outstanding EventRef to it.
func (e *Engine) recycle(ev *Event) {
	ev.gen++
	ev.fn = nil
	e.free = append(e.free, ev)
}

// At schedules fn at absolute time t. Scheduling in the past panics: it is
// always a modelling bug.
func (e *Engine) At(t Time, what string, fn func()) EventRef {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling %q at %v before now %v", what, t, e.now))
	}
	if math.IsNaN(t) {
		panic(fmt.Sprintf("sim: scheduling %q at NaN", what))
	}
	var ev *Event
	if n := len(e.free) - 1; n >= 0 {
		ev = e.free[n]
		e.free = e.free[:n]
		e.recycled++
	} else {
		ev = new(Event)
	}
	ev.at = t
	ev.seq = e.seq
	ev.fn = fn
	ev.dead = false
	ev.What = what
	e.seq++
	e.push(ev)
	return EventRef{ev: ev, gen: ev.gen}
}

// After schedules fn after a delay d >= 0.
func (e *Engine) After(d float64, what string, fn func()) EventRef {
	return e.At(e.now+d, what, fn)
}

// Halt stops the run loop after the current event returns.
func (e *Engine) Halt() { e.halted = true }

// RunUntil executes events until the clock would pass deadline or the queue
// drains. The clock is left at min(deadline, last event time); events at
// exactly the deadline do fire.
func (e *Engine) RunUntil(deadline Time) {
	e.halted = false
	for len(e.queue) > 0 && !e.halted {
		next := e.queue[0]
		if next.at > deadline {
			break
		}
		e.popMin()
		if next.dead {
			e.recycle(next)
			continue
		}
		e.now = next.at
		e.fired++
		fn := next.fn
		// Recycle before running: the callback's own re-scheduling (the
		// common one-pending-timer-per-thread pattern) reuses this event.
		e.recycle(next)
		fn()
	}
	if !e.halted && e.now < deadline && !math.IsInf(deadline, 1) {
		e.now = deadline
	}
}

// Run executes until the event queue drains or Halt is called.
func (e *Engine) Run() { e.RunUntil(math.Inf(1)) }

// Ticker invokes fn every period until the engine stops or the returned
// cancel function is called. The first tick happens one period from now.
func (e *Engine) Ticker(period float64, what string, fn func()) (cancel func()) {
	if period <= 0 {
		panic("sim: non-positive ticker period")
	}
	stopped := false
	var pending EventRef
	var tick func()
	tick = func() {
		if stopped {
			return
		}
		fn()
		if !stopped {
			pending = e.After(period, what, tick)
		}
	}
	pending = e.After(period, what, tick)
	return func() {
		stopped = true
		pending.Cancel()
	}
}
