// Package sim is the discrete-event engine underneath the Metronome
// reproduction. It provides a virtual clock, an event heap and process
// scheduling; no wall-clock time ever enters a simulation, so every run is
// deterministic given its seed.
//
// Time is a float64 count of seconds since simulation start. Events at
// equal times fire in scheduling order (a monotonic sequence number breaks
// ties), which keeps thread races reproducible.
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Time is a point in virtual time, in seconds.
type Time = float64

// Event is a callback scheduled to run at a virtual time.
type Event struct {
	at    Time
	seq   uint64
	fn    func()
	index int // heap index; -1 when not queued
	dead  bool
	What  string // optional label for tracing
}

// At returns the time the event is scheduled for.
func (e *Event) At() Time { return e.at }

// Cancel prevents a pending event from firing. Cancelling an already-fired
// or already-cancelled event is a no-op.
func (e *Event) Cancel() { e.dead = true }

// Cancelled reports whether the event was cancelled.
func (e *Event) Cancelled() bool { return e.dead }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Engine runs events in virtual-time order.
type Engine struct {
	now    Time
	seq    uint64
	queue  eventHeap
	fired  uint64
	halted bool
}

// New returns an engine with the clock at zero.
func New() *Engine { return &Engine{} }

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Fired returns the number of events executed so far (a cheap progress and
// complexity metric for tests).
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of queued (possibly cancelled) events.
func (e *Engine) Pending() int { return len(e.queue) }

// At schedules fn at absolute time t. Scheduling in the past panics: it is
// always a modelling bug.
func (e *Engine) At(t Time, what string, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling %q at %v before now %v", what, t, e.now))
	}
	if math.IsNaN(t) {
		panic(fmt.Sprintf("sim: scheduling %q at NaN", what))
	}
	ev := &Event{at: t, seq: e.seq, fn: fn, What: what}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// After schedules fn after a delay d >= 0.
func (e *Engine) After(d float64, what string, fn func()) *Event {
	return e.At(e.now+d, what, fn)
}

// Halt stops the run loop after the current event returns.
func (e *Engine) Halt() { e.halted = true }

// RunUntil executes events until the clock would pass deadline or the queue
// drains. The clock is left at min(deadline, last event time); events at
// exactly the deadline do fire.
func (e *Engine) RunUntil(deadline Time) {
	e.halted = false
	for len(e.queue) > 0 && !e.halted {
		next := e.queue[0]
		if next.at > deadline {
			break
		}
		heap.Pop(&e.queue)
		if next.dead {
			continue
		}
		e.now = next.at
		e.fired++
		next.fn()
	}
	if !e.halted && e.now < deadline && !math.IsInf(deadline, 1) {
		e.now = deadline
	}
}

// Run executes until the event queue drains or Halt is called.
func (e *Engine) Run() { e.RunUntil(math.Inf(1)) }

// Ticker invokes fn every period until the engine stops or the returned
// cancel function is called. The first tick happens one period from now.
func (e *Engine) Ticker(period float64, what string, fn func()) (cancel func()) {
	if period <= 0 {
		panic("sim: non-positive ticker period")
	}
	stopped := false
	var tick func()
	var pending *Event
	tick = func() {
		if stopped {
			return
		}
		fn()
		if !stopped {
			pending = e.After(period, what, tick)
		}
	}
	pending = e.After(period, what, tick)
	return func() {
		stopped = true
		if pending != nil {
			pending.Cancel()
		}
	}
}
