package sim

import (
	"testing"
	"testing/quick"

	"metronome/internal/xrand"
)

func TestEventOrdering(t *testing.T) {
	e := New()
	var order []int
	e.At(3, "c", func() { order = append(order, 3) })
	e.At(1, "a", func() { order = append(order, 1) })
	e.At(2, "b", func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if e.Now() != 3 {
		t.Fatalf("clock = %v, want 3", e.Now())
	}
}

func TestTieBreakIsFIFO(t *testing.T) {
	e := New()
	var order []string
	e.At(1, "first", func() { order = append(order, "first") })
	e.At(1, "second", func() { order = append(order, "second") })
	e.Run()
	if order[0] != "first" || order[1] != "second" {
		t.Fatalf("same-time events not FIFO: %v", order)
	}
}

func TestSchedulingInsideEvent(t *testing.T) {
	e := New()
	hits := 0
	e.At(1, "outer", func() {
		e.After(1, "inner", func() { hits++ })
	})
	e.Run()
	if hits != 1 || e.Now() != 2 {
		t.Fatalf("hits=%d now=%v", hits, e.Now())
	}
}

func TestCancel(t *testing.T) {
	e := New()
	fired := false
	ev := e.At(1, "doomed", func() { fired = true })
	ev.Cancel()
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if !ev.Cancelled() {
		t.Fatal("Cancelled() false after Cancel")
	}
}

func TestRunUntilDeadline(t *testing.T) {
	e := New()
	var fired []float64
	for _, at := range []float64{1, 2, 3, 4, 5} {
		at := at
		e.At(at, "tick", func() { fired = append(fired, at) })
	}
	e.RunUntil(3)
	if len(fired) != 3 {
		t.Fatalf("fired %v, want events at 1..3 inclusive", fired)
	}
	if e.Now() != 3 {
		t.Fatalf("clock = %v, want exactly the deadline", e.Now())
	}
	e.RunUntil(10)
	if len(fired) != 5 {
		t.Fatalf("resume missed events: %v", fired)
	}
}

func TestRunUntilAdvancesIdleClock(t *testing.T) {
	e := New()
	e.RunUntil(7)
	if e.Now() != 7 {
		t.Fatalf("idle engine clock = %v, want 7", e.Now())
	}
}

func TestHalt(t *testing.T) {
	e := New()
	count := 0
	for i := 1; i <= 10; i++ {
		e.At(float64(i), "n", func() {
			count++
			if count == 4 {
				e.Halt()
			}
		})
	}
	e.Run()
	if count != 4 {
		t.Fatalf("halted run executed %d events", count)
	}
	if e.Pending() == 0 {
		t.Fatal("pending events discarded by Halt")
	}
}

func TestPastSchedulingPanics(t *testing.T) {
	e := New()
	e.At(5, "x", func() {})
	e.RunUntil(5)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic scheduling in the past")
		}
	}()
	e.At(1, "late", func() {})
}

func TestTicker(t *testing.T) {
	e := New()
	n := 0
	cancel := e.Ticker(1, "tick", func() {
		n++
		if n == 5 {
			e.Halt()
		}
	})
	e.RunUntil(100)
	if n != 5 {
		t.Fatalf("ticker fired %d times before halt", n)
	}
	cancel()
	e.RunUntil(100)
	if n != 5 {
		t.Fatalf("ticker fired after cancel: %d", n)
	}
}

func TestTickerCancelInsideCallback(t *testing.T) {
	e := New()
	n := 0
	var cancel func()
	cancel = e.Ticker(1, "tick", func() {
		n++
		if n == 3 {
			cancel()
		}
	})
	e.RunUntil(100)
	if n != 3 {
		t.Fatalf("ticker fired %d times, want stop at 3", n)
	}
}

func TestFiredCounter(t *testing.T) {
	e := New()
	for i := 0; i < 10; i++ {
		e.After(float64(i), "n", func() {})
	}
	e.Run()
	if e.Fired() != 10 {
		t.Fatalf("Fired = %d", e.Fired())
	}
}

// Property: random scheduling always executes in non-decreasing time order.
func TestRandomScheduleOrdered(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := xrand.New(seed)
		e := New()
		last := -1.0
		ok := true
		for i := 0; i < 200; i++ {
			at := r.Uniform(0, 100)
			e.At(at, "rnd", func() {
				if e.Now() < last {
					ok = false
				}
				last = e.Now()
				// nested scheduling keeps the heap honest
				if r.Bernoulli(0.3) {
					e.After(r.Uniform(0, 10), "nested", func() {
						if e.Now() < last {
							ok = false
						}
						last = e.Now()
					})
				}
			})
		}
		e.Run()
		return ok
	}, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func BenchmarkEngine(b *testing.B) {
	r := xrand.New(1)
	e := New()
	// self-perpetuating event chain
	var loop func()
	n := 0
	loop = func() {
		n++
		if n < b.N {
			e.After(r.Uniform(0, 1e-6), "bench", loop)
		}
	}
	e.After(0, "bench", loop)
	b.ResetTimer()
	e.Run()
}
