package sim

import (
	"math"
	"testing"
	"testing/quick"

	"metronome/internal/xrand"
)

func TestEventOrdering(t *testing.T) {
	e := New()
	var order []int
	e.At(3, "c", func() { order = append(order, 3) })
	e.At(1, "a", func() { order = append(order, 1) })
	e.At(2, "b", func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if e.Now() != 3 {
		t.Fatalf("clock = %v, want 3", e.Now())
	}
}

func TestTieBreakIsFIFO(t *testing.T) {
	e := New()
	var order []string
	e.At(1, "first", func() { order = append(order, "first") })
	e.At(1, "second", func() { order = append(order, "second") })
	e.Run()
	if order[0] != "first" || order[1] != "second" {
		t.Fatalf("same-time events not FIFO: %v", order)
	}
}

func TestSchedulingInsideEvent(t *testing.T) {
	e := New()
	hits := 0
	e.At(1, "outer", func() {
		e.After(1, "inner", func() { hits++ })
	})
	e.Run()
	if hits != 1 || e.Now() != 2 {
		t.Fatalf("hits=%d now=%v", hits, e.Now())
	}
}

func TestCancel(t *testing.T) {
	e := New()
	fired := false
	ev := e.At(1, "doomed", func() { fired = true })
	if !ev.Pending() || ev.At() != 1 {
		t.Fatalf("fresh ref: pending=%v at=%v", ev.Pending(), ev.At())
	}
	ev.Cancel()
	if !ev.Cancelled() {
		t.Fatal("Cancelled() false after Cancel")
	}
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if ev.Pending() || ev.Cancelled() {
		t.Fatal("ref still live after the engine collected the event")
	}
}

// The rewrite's recycling contract: a cancelled-while-queued event returns
// to the free list, the next schedule reuses it, and the stale ref cannot
// touch the successor.
func TestCancelWhileQueuedRecycles(t *testing.T) {
	e := New()
	doomed := e.At(1, "doomed", func() { t.Fatal("cancelled event fired") })
	doomed.Cancel()
	e.RunUntil(2)
	if e.Recycled() != 0 {
		t.Fatalf("recycled = %d before any reuse", e.Recycled())
	}
	fired := false
	next := e.At(3, "successor", func() { fired = true })
	if e.Recycled() != 1 {
		t.Fatalf("recycled = %d, want the successor to reuse the slot", e.Recycled())
	}
	doomed.Cancel() // stale: must not kill the successor
	if !next.Pending() {
		t.Fatal("stale Cancel reached the recycled event")
	}
	e.Run()
	if !fired {
		t.Fatal("successor did not fire")
	}
}

func TestStaleRefAfterFire(t *testing.T) {
	e := New()
	a := e.At(1, "a", func() {})
	e.Run()
	fired := false
	e.At(2, "b", func() { fired = true })
	a.Cancel() // a's Event now backs b; the stale ref must be inert
	if a.Pending() || a.Cancelled() || a.At() != 0 {
		t.Fatal("stale ref reports live state")
	}
	e.Run()
	if !fired {
		t.Fatal("stale Cancel killed the recycled successor")
	}
}

// Ticker re-arms schedule at the tail of the current instant's callbacks;
// two tickers with equal periods must interleave in creation order at every
// shared tick, across arbitrarily many re-arms of recycled events.
func TestEqualTimeOrderingAcrossTickerRearms(t *testing.T) {
	e := New()
	var order []string
	e.Ticker(1, "first", func() { order = append(order, "first") })
	e.Ticker(1, "second", func() { order = append(order, "second") })
	e.RunUntil(10)
	if len(order) != 20 {
		t.Fatalf("got %d ticks, want 20", len(order))
	}
	for i := 0; i < len(order); i += 2 {
		if order[i] != "first" || order[i+1] != "second" {
			t.Fatalf("tick %d: interleaving broke: %v", i/2, order[i:i+2])
		}
	}
}

func TestRunUntilDeadline(t *testing.T) {
	e := New()
	var fired []float64
	for _, at := range []float64{1, 2, 3, 4, 5} {
		at := at
		e.At(at, "tick", func() { fired = append(fired, at) })
	}
	e.RunUntil(3)
	if len(fired) != 3 {
		t.Fatalf("fired %v, want events at 1..3 inclusive", fired)
	}
	if e.Now() != 3 {
		t.Fatalf("clock = %v, want exactly the deadline", e.Now())
	}
	e.RunUntil(10)
	if len(fired) != 5 {
		t.Fatalf("resume missed events: %v", fired)
	}
}

func TestRunUntilAdvancesIdleClock(t *testing.T) {
	e := New()
	e.RunUntil(7)
	if e.Now() != 7 {
		t.Fatalf("idle engine clock = %v, want 7", e.Now())
	}
}

// RunUntil's deadline is inclusive for events and exact for the clock: an
// event at precisely the deadline fires, one an ulp later stays queued, and
// the clock never overshoots min(deadline, last event time).
func TestRunUntilDeadlineBoundary(t *testing.T) {
	e := New()
	var fired []string
	e.At(3, "at-deadline", func() { fired = append(fired, "at") })
	after := math.Nextafter(3, 4)
	e.At(after, "just-after", func() { fired = append(fired, "after") })
	e.RunUntil(3)
	if len(fired) != 1 || fired[0] != "at" {
		t.Fatalf("fired = %v, want exactly the at-deadline event", fired)
	}
	if e.Now() != 3 {
		t.Fatalf("clock = %v, want exactly the deadline", e.Now())
	}
	// Scheduling at the current instant is legal and fires on resume.
	e.At(3, "again", func() { fired = append(fired, "again") })
	e.RunUntil(after)
	if len(fired) != 3 || fired[1] != "again" || fired[2] != "after" {
		t.Fatalf("resume fired %v", fired)
	}
	if e.Now() != after {
		t.Fatalf("clock = %v, want %v", e.Now(), after)
	}
}

func TestHalt(t *testing.T) {
	e := New()
	count := 0
	for i := 1; i <= 10; i++ {
		e.At(float64(i), "n", func() {
			count++
			if count == 4 {
				e.Halt()
			}
		})
	}
	e.Run()
	if count != 4 {
		t.Fatalf("halted run executed %d events", count)
	}
	if e.Pending() == 0 {
		t.Fatal("pending events discarded by Halt")
	}
}

func TestPastSchedulingPanics(t *testing.T) {
	e := New()
	e.At(5, "x", func() {})
	e.RunUntil(5)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic scheduling in the past")
		}
	}()
	e.At(1, "late", func() {})
}

func TestTicker(t *testing.T) {
	e := New()
	n := 0
	cancel := e.Ticker(1, "tick", func() {
		n++
		if n == 5 {
			e.Halt()
		}
	})
	e.RunUntil(100)
	if n != 5 {
		t.Fatalf("ticker fired %d times before halt", n)
	}
	cancel()
	e.RunUntil(100)
	if n != 5 {
		t.Fatalf("ticker fired after cancel: %d", n)
	}
}

func TestTickerCancelInsideCallback(t *testing.T) {
	e := New()
	n := 0
	var cancel func()
	cancel = e.Ticker(1, "tick", func() {
		n++
		if n == 3 {
			cancel()
		}
	})
	e.RunUntil(100)
	if n != 3 {
		t.Fatalf("ticker fired %d times, want stop at 3", n)
	}
}

func TestFiredCounter(t *testing.T) {
	e := New()
	for i := 0; i < 10; i++ {
		e.After(float64(i), "n", func() {})
	}
	e.Run()
	if e.Fired() != 10 {
		t.Fatalf("Fired = %d", e.Fired())
	}
}

// Property: random scheduling always executes in non-decreasing time order.
func TestRandomScheduleOrdered(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := xrand.New(seed)
		e := New()
		last := -1.0
		ok := true
		for i := 0; i < 200; i++ {
			at := r.Uniform(0, 100)
			e.At(at, "rnd", func() {
				if e.Now() < last {
					ok = false
				}
				last = e.Now()
				// nested scheduling keeps the heap honest
				if r.Bernoulli(0.3) {
					e.After(r.Uniform(0, 10), "nested", func() {
						if e.Now() < last {
							ok = false
						}
						last = e.Now()
					})
				}
			})
		}
		e.Run()
		return ok
	}, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Steady-state engine ticks must not allocate: every schedule after warm-up
// is served from the free list. This is the acceptance gate for the
// free-list design — a regression here silently rebuilds the GC pressure
// the specialised heap removed.
func TestSteadyStateTicksAllocationFree(t *testing.T) {
	e := New()
	// A small team of self-rescheduling chains, like core's threads.
	for i := 0; i < 4; i++ {
		d := 1e-6 * float64(i+1)
		var loop func()
		loop = func() { e.After(d, "tick", loop) }
		e.After(d, "tick", loop)
	}
	next := 1e-3
	e.RunUntil(next) // warm-up: grow heap, free list and queue capacity
	allocs := testing.AllocsPerRun(100, func() {
		next += 1e-3
		e.RunUntil(next)
	})
	if allocs != 0 {
		t.Fatalf("steady-state RunUntil allocates %.1f per window, want 0", allocs)
	}
}

// Cancel-heavy churn (the re-arm pattern of timers that usually get
// cancelled) must also reach zero steady-state allocations.
func TestCancelChurnAllocationFree(t *testing.T) {
	e := New()
	var ref EventRef
	var loop func()
	loop = func() {
		ref.Cancel() // cancel a decoy scheduled on the previous round
		ref = e.After(2e-6, "decoy", func() {})
		e.After(1e-6, "tick", loop)
	}
	e.After(1e-6, "tick", loop)
	next := 1e-3
	e.RunUntil(next)
	allocs := testing.AllocsPerRun(100, func() {
		next += 1e-3
		e.RunUntil(next)
	})
	if allocs != 0 {
		t.Fatalf("cancel churn allocates %.1f per window, want 0", allocs)
	}
}

func BenchmarkEngine(b *testing.B) {
	r := xrand.New(1)
	e := New()
	// self-perpetuating event chain
	var loop func()
	n := 0
	loop = func() {
		n++
		if n < b.N {
			e.After(r.Uniform(0, 1e-6), "bench", loop)
		}
	}
	e.After(0, "bench", loop)
	b.ResetTimer()
	e.Run()
}

// BenchmarkEngineFanout stresses the heap with a realistic pending-set: a
// team of chains at staggered periods, measuring per-event cost with ~32
// events queued.
func BenchmarkEngineFanout(b *testing.B) {
	e := New()
	n := 0
	for i := 0; i < 32; i++ {
		d := 1e-6 * (1 + float64(i)/32)
		var loop func()
		loop = func() {
			n++
			if n < b.N {
				e.After(d, "bench", loop)
			}
		}
		e.After(d, "bench", loop)
	}
	b.ReportAllocs()
	b.ResetTimer()
	e.Run()
}

// BenchmarkEngineCancelChurn measures the cancelled-event path: every fired
// tick re-arms a decoy that is cancelled on the next round.
func BenchmarkEngineCancelChurn(b *testing.B) {
	e := New()
	var ref EventRef
	n := 0
	var loop func()
	loop = func() {
		ref.Cancel()
		ref = e.After(2e-6, "decoy", func() {})
		n++
		if n < b.N {
			e.After(1e-6, "tick", loop)
		}
	}
	e.After(1e-6, "tick", loop)
	b.ReportAllocs()
	b.ResetTimer()
	e.Run()
}
