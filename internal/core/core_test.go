package core

import (
	"math"
	"testing"

	"metronome/internal/hrtimer"
	"metronome/internal/model"
	"metronome/internal/nic"
	"metronome/internal/sched"
	"metronome/internal/sim"
	"metronome/internal/stats"
	"metronome/internal/telemetry"
	"metronome/internal/traffic"
	"metronome/internal/xrand"
)

const us = 1e-6

// runSingle spins up a single-queue Metronome over a CBR load.
func runSingle(t *testing.T, pps float64, cfg Config, dur float64) (*Runtime, Metrics) {
	t.Helper()
	eng := sim.New()
	rng := xrand.New(cfg.Seed + 1000)
	q := nic.NewQueue(0, traffic.CBR{PPS: pps}, rng, nic.DefaultOptions())
	r := New(eng, []*nic.Queue{q}, cfg)
	r.Start()
	eng.RunUntil(dur)
	return r, r.Snapshot(dur)
}

func TestLineRateNoLoss(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 1
	_, m := runSingle(t, 14.88e6, cfg, 0.5)
	if m.LossRate > 1e-4 {
		t.Errorf("loss at line rate = %v (Table I says ~0 at vbar=10us)", m.LossRate)
	}
	// Load estimate should hover near lambda/mu = 0.5.
	if m.RhoEst[0] < 0.3 || m.RhoEst[0] > 0.7 {
		t.Errorf("rho estimate = %v, want ~0.5", m.RhoEst[0])
	}
	// Throughput matches the offered load.
	if math.Abs(m.ThroughputPPS-14.88e6)/14.88e6 > 0.02 {
		t.Errorf("throughput = %v pps", m.ThroughputPPS)
	}
	// CPU in the paper's ballpark (~60% at line rate, vs 100% static).
	if m.CPUPercent < 35 || m.CPUPercent > 85 {
		t.Errorf("CPU = %v%%, want paper-shaped ~60%%", m.CPUPercent)
	}
}

func TestCPUScalesWithLoad(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 2
	_, hi := runSingle(t, 14.88e6, cfg, 0.3)
	_, mid := runSingle(t, 7.44e6, cfg, 0.3)
	_, lo := runSingle(t, 0.744e6, cfg, 0.3)
	if !(hi.CPUPercent > mid.CPUPercent && mid.CPUPercent > lo.CPUPercent) {
		t.Errorf("CPU not monotone with load: %v / %v / %v",
			hi.CPUPercent, mid.CPUPercent, lo.CPUPercent)
	}
	// Fig 10b: ~5x gap between line rate and 0.5 Gbps-class load.
	if lo.CPUPercent > 30 {
		t.Errorf("low-load CPU = %v%%, paper ~18.6%%", lo.CPUPercent)
	}
}

func TestVacationTracksTarget(t *testing.T) {
	// The adaptive rule holds the measured vacation near the target
	// (within the sleep-service overhead) across a wide load range.
	cfg := DefaultConfig()
	cfg.Seed = 3
	for _, pps := range []float64{14.88e6, 7.44e6, 1.488e6} {
		_, m := runSingle(t, pps, cfg, 0.3)
		if m.MeanVacation < 0.8*cfg.VBar || m.MeanVacation > 3.5*cfg.VBar {
			t.Errorf("pps=%v: mean vacation %v vs target %v", pps, m.MeanVacation, cfg.VBar)
		}
	}
}

func TestTableOneShape(t *testing.T) {
	// Larger targets -> larger measured V, larger NV (Little), more risk.
	cfg := DefaultConfig()
	cfg.Seed = 4
	var prevV, prevNV float64
	for _, vbar := range []float64{5 * us, 10 * us, 20 * us} {
		cfg.VBar = vbar
		_, m := runSingle(t, 14.88e6, cfg, 0.3)
		if m.MeanVacation <= prevV || m.MeanNV <= prevNV {
			t.Errorf("vbar=%v: V=%v NV=%v not increasing", vbar, m.MeanVacation, m.MeanNV)
		}
		// Little's law ties NV to V at line rate.
		want := 14.88e6 * m.MeanVacation
		if math.Abs(m.MeanNV-want)/want > 0.25 {
			t.Errorf("vbar=%v: NV=%v, Little says %v", vbar, m.MeanNV, want)
		}
		prevV, prevNV = m.MeanVacation, m.MeanNV
	}
}

func TestBusyTriesGrowWithM(t *testing.T) {
	// Fig 7: busy tries increase with the number of threads.
	cfg := DefaultConfig()
	cfg.Seed = 5
	var prev float64 = -1
	for _, m := range []int{2, 4, 6} {
		cfg.M = m
		_, met := runSingle(t, 14.88e6, cfg, 0.3)
		if met.BusyTryFrac <= prev {
			t.Errorf("M=%d: busy tries %.3f not increasing (prev %.3f)", m, met.BusyTryFrac, prev)
		}
		prev = met.BusyTryFrac
	}
}

func TestBusyTriesShrinkWithTL(t *testing.T) {
	// Fig 6: longer TL -> fewer wasted wakeups.
	cfg := DefaultConfig()
	cfg.Seed = 6
	cfg.TL = 100 * us
	_, short := runSingle(t, 14.88e6, cfg, 0.3)
	cfg.TL = 700 * us
	_, long := runSingle(t, 14.88e6, cfg, 0.3)
	if long.BusyTryFrac >= short.BusyTryFrac {
		t.Errorf("TL=700us busy tries %.3f >= TL=100us %.3f", long.BusyTryFrac, short.BusyTryFrac)
	}
	if long.CPUPercent >= short.CPUPercent {
		t.Errorf("TL=700us CPU %.1f >= TL=100us %.1f", long.CPUPercent, short.CPUPercent)
	}
}

func TestEqualTimeoutsWasteCPUAtHighLoad(t *testing.T) {
	// The motivation for the primary/backup split (Sec. IV-A): with all
	// timeouts equal to TS, high load degrades into constant busy tries.
	cfg := DefaultConfig()
	cfg.Seed = 7
	cfg.Adaptive = false
	cfg.TSFixed = 10 * us
	cfg.TL = 10 * us // equal timeouts
	_, eq := runSingle(t, 14.88e6, cfg, 0.3)
	cfg2 := DefaultConfig()
	cfg2.Seed = 7
	_, split := runSingle(t, 14.88e6, cfg2, 0.3)
	if eq.BusyTryFrac <= split.BusyTryFrac {
		t.Errorf("equal timeouts busy-tries %.3f <= split %.3f", eq.BusyTryFrac, split.BusyTryFrac)
	}
}

func TestFig4VacationDistribution(t *testing.T) {
	// TS=TL=50us, fixed: the measured vacation PDF must match eq (5)/(9)
	// under the decorrelation assumption. As in the paper, samples come
	// from an ensemble of runs (they collected a million samples); the
	// service-time and dispatch noise provide the physical de-phasing.
	for _, m := range []int{2, 3, 5} {
		// effective timeout includes the sleep-service overhead
		tsEff := 50*us*1.0566 + 2.79*us
		hist := stats.NewHistogram(0, 70*us, 70)
		for run := 0; run < 12; run++ {
			cfg := DefaultConfig()
			cfg.Seed = uint64(80 + m*100 + run)
			cfg.M = m
			cfg.Adaptive = false
			cfg.TSFixed = 50 * us
			cfg.TL = 50 * us
			cfg.OnCycle = func(q int, v, b float64) { hist.Add(v) }

			eng := sim.New()
			rng := xrand.New(cfg.Seed)
			// The decorrelation hypothesis concerns wake times only, so
			// the cleanest validation polls an idle queue: any load adds a
			// busy-period drag that clusters thread phases (an effect the
			// TS/TL split is designed to break, but this config disables
			// it by setting TS=TL).
			q := nic.NewQueue(0, traffic.CBR{PPS: 0}, rng, nic.DefaultOptions())
			r := New(eng, []*nic.Queue{q}, cfg)
			r.Start()
			eng.RunUntil(0.5)
		}

		if hist.N() < 10000 {
			t.Fatalf("M=%d: only %d vacation samples", m, hist.N())
		}
		ks := hist.KSDistance(func(x float64) float64 {
			return model.CDFVHighLoad(x, tsEff, tsEff, m)
		})
		if ks > 0.08 {
			t.Errorf("M=%d: KS distance vs eq(5) = %.4f, want < 0.08 (decorrelation)", m, ks)
		}
	}
}

func TestAdaptationToRamp(t *testing.T) {
	// Fig 9: rho must track the MoonGen ramp up and down.
	cfg := DefaultConfig()
	cfg.Seed = 9
	eng := sim.New()
	rng := xrand.New(99)
	ramp := traffic.Ramp{Peak: 14e6, Duration: 60, StepEvery: 2}
	q := nic.NewQueue(0, ramp, rng, nic.DefaultOptions())
	r := New(eng, []*nic.Queue{q}, cfg)
	r.Start()

	var rhoAt []float64
	for _, at := range []float64{5, 30, 55} {
		at := at
		eng.At(at, "sample", func() { rhoAt = append(rhoAt, r.Rho(0)) })
	}
	eng.RunUntil(60)
	if len(rhoAt) != 3 {
		t.Fatal("samples missing")
	}
	if !(rhoAt[1] > rhoAt[0] && rhoAt[1] > rhoAt[2]) {
		t.Errorf("rho did not track the ramp: %v", rhoAt)
	}
	if rhoAt[1] < 0.25 {
		t.Errorf("apex rho = %v, want close to 14/29.76", rhoAt[1])
	}
}

func TestOverloadNeverReleases(t *testing.T) {
	// The IPsec observation (Sec. V-G): at rho >= 1 one thread keeps the
	// lock and CPU goes to ~100% of one core while others back off.
	cfg := DefaultConfig()
	cfg.Seed = 10
	cfg.Mu = 5.61e6 // IPsec-grade service rate
	_, m := runSingle(t, 6e6, cfg, 0.3)
	if m.CPUPercent < 90 {
		t.Errorf("overload CPU = %v%%, want ~100%%", m.CPUPercent)
	}
	// Throughput pinned at mu, the rest dropped.
	if math.Abs(m.ThroughputPPS-5.61e6)/5.61e6 > 0.05 {
		t.Errorf("overload throughput = %v", m.ThroughputPPS)
	}
	if m.Drops == 0 {
		t.Error("no drops under overload")
	}
}

func TestMultiqueueBalanced(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 11
	cfg.M = 5
	cfg.VBar = 15 * us
	eng := sim.New()
	rng := xrand.New(5)
	var queues []*nic.Queue
	for i := 0; i < 4; i++ {
		queues = append(queues, nic.NewQueue(i,
			traffic.CBR{PPS: 37e6 / 4}, rng.Split(), nic.DefaultOptions()))
	}
	r := New(eng, queues, cfg)
	r.Start()
	eng.RunUntil(0.3)
	m := r.Snapshot(0.3)
	if m.LossRate > 1e-3 {
		t.Errorf("multiqueue loss = %v", m.LossRate)
	}
	// Fig 15: Metronome ~150% vs static 400% at 37 Mpps over 4 queues.
	if m.CPUPercent < 80 || m.CPUPercent > 260 {
		t.Errorf("multiqueue CPU = %v%%", m.CPUPercent)
	}
	// All queues served comparably.
	for qi, q := range queues {
		if q.Served == 0 {
			t.Errorf("queue %d starved", qi)
		}
	}
}

func TestMultiqueueUnbalanced(t *testing.T) {
	// Table III: the heavy queue shows higher rho and fewer total tries.
	cfg := DefaultConfig()
	cfg.Seed = 12
	cfg.M = 6
	cfg.VBar = 15 * us
	eng := sim.New()
	rng := xrand.New(6)
	shares := traffic.UnbalancedShares(0.30, 3)
	total := 30e6
	var queues []*nic.Queue
	heavyIdx := 0
	for i, s := range shares {
		if s > 0.4 {
			heavyIdx = i
		}
		queues = append(queues, nic.NewQueue(i,
			traffic.CBR{PPS: total * s}, rng.Split(), nic.DefaultOptions()))
	}
	r := New(eng, queues, cfg)
	r.Start()
	eng.RunUntil(0.5)
	for i := range queues {
		if i == heavyIdx {
			continue
		}
		if r.Rho(heavyIdx) <= r.Rho(i) {
			t.Errorf("heavy queue rho %.3f <= light queue %d rho %.3f",
				r.Rho(heavyIdx), i, r.Rho(i))
		}
	}
	// Heavy queue's busy periods are longer, so it completes fewer cycles.
	if queues[heavyIdx].BusyObs.N() >= queues[(heavyIdx+1)%3].BusyObs.N() {
		t.Errorf("heavy queue completed more cycles than a light one")
	}
}

func TestDeterminism(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 13
	_, a := runSingle(t, 10e6, cfg, 0.2)
	_, b := runSingle(t, 10e6, cfg, 0.2)
	if a.CPUPercent != b.CPUPercent || a.RxPackets != b.RxPackets ||
		a.BusyTries != b.BusyTries || a.Latency.Mean != b.Latency.Mean {
		t.Errorf("same seed, different runs:\n%+v\n%+v", a, b)
	}
}

func TestConfigValidation(t *testing.T) {
	eng := sim.New()
	q := nic.NewQueue(0, traffic.CBR{PPS: 1}, xrand.New(1), nic.DefaultOptions())
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		f()
	}
	mustPanic("zero threads", func() {
		New(eng, []*nic.Queue{q}, Config{M: 0})
	})
	mustPanic("no queues", func() {
		New(eng, nil, Config{M: 1})
	})
	mustPanic("M < N", func() {
		q2 := nic.NewQueue(1, traffic.CBR{PPS: 1}, xrand.New(2), nic.DefaultOptions())
		New(eng, []*nic.Queue{q, q2}, Config{M: 1})
	})
}

func TestLatencySamplesReasonable(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 14
	_, m := runSingle(t, 14.88e6, cfg, 0.3)
	if m.Latency.N < 100 {
		t.Fatalf("latency samples = %d", m.Latency.N)
	}
	// Fig 10a: Metronome mean latency ~13-25us at line rate (base 6.8us +
	// vacation-and-drain queueing).
	if m.Latency.Mean < 8*us || m.Latency.Mean > 40*us {
		t.Errorf("mean latency = %.1f us", m.Latency.Mean*1e6)
	}
	if m.Latency.Min < 6.8*us {
		t.Errorf("latency below the physical floor: %v", m.Latency.Min)
	}
}

func TestPatchedSleepLowersLatencyFloor(t *testing.T) {
	// Sec V-C: Tx batch 1 + patched hr_sleep approaches DPDK's floor.
	cfgA := DefaultConfig()
	cfgA.Seed = 15
	cfgA.VBar = 2 * us
	cfgA.Sleep = hrtimer.HRSleepPatched
	eng := sim.New()
	opt := nic.DefaultOptions()
	opt.TxBatch = 1
	q := nic.NewQueue(0, traffic.CBR{PPS: 1.488e6}, xrand.New(16), opt)
	r := New(eng, []*nic.Queue{q}, cfgA)
	r.Start()
	eng.RunUntil(0.3)
	tuned := r.Snapshot(0.3)

	cfgB := DefaultConfig()
	cfgB.Seed = 15
	_, stock := runSingle(t, 1.488e6, cfgB, 0.3)
	if tuned.Latency.Mean >= stock.Latency.Mean {
		t.Errorf("tuned latency %.2fus >= stock %.2fus",
			tuned.Latency.Mean*1e6, stock.Latency.Mean*1e6)
	}
}

func BenchmarkRuntimeLineRate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := DefaultConfig()
		cfg.Seed = uint64(i)
		eng := sim.New()
		q := nic.NewQueue(0, traffic.CBR{PPS: 14.88e6}, xrand.New(uint64(i)), nic.DefaultOptions())
		r := New(eng, []*nic.Queue{q}, cfg)
		r.Start()
		eng.RunUntil(0.05)
	}
}

// Steady-state Metronome cycles must not allocate once the engine's free
// list and the queue's tag buffers are warm: pre-bound thread callbacks
// plus event recycling leave nothing for the garbage collector on the
// wakeup/serve/release path. (Latency tagging is disabled: tag appends are
// the one legitimately amortised allocation.)
func TestSteadyStateCycleAllocs(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 9
	eng := sim.New()
	opt := nic.DefaultOptions()
	opt.TagProb = 0
	q := nic.NewQueue(0, traffic.CBR{PPS: 14.88e6}, xrand.New(9), opt)
	r := New(eng, []*nic.Queue{q}, cfg)
	r.Start()
	next := 10e-3
	eng.RunUntil(next) // warm-up: settle adaptation, grow event pools
	allocs := testing.AllocsPerRun(50, func() {
		next += 1e-3
		eng.RunUntil(next)
	})
	if allocs != 0 {
		t.Fatalf("steady-state cycles allocate %.1f per ms window, want 0", allocs)
	}
}

// runMulti spins up an N-queue Metronome over an even CBR split.
func runMulti(t *testing.T, cfg Config, nq int, totalPPS, dur float64) (*Runtime, Metrics) {
	t.Helper()
	eng := sim.New()
	root := xrand.New(cfg.Seed + 2000)
	queues := make([]*nic.Queue, nq)
	for i := range queues {
		queues[i] = nic.NewQueue(i, traffic.CBR{PPS: totalPPS / float64(nq)}, root.Split(), nic.DefaultOptions())
	}
	r := New(eng, queues, cfg)
	r.Start()
	eng.RunUntil(dur)
	return r, r.Snapshot(dur)
}

// TestRMetronomeCycleAccounting pins the multi-thread-per-queue accounting:
// per-queue and per-thread cycle splits sum to the total, every group
// member takes service turns, and the policy's turn counter matches the
// cycles the twin actually began.
func TestRMetronomeCycleAccounting(t *testing.T) {
	for _, policy := range []string{sched.NameRMetronome, sched.NameWorkSteal} {
		cfg := DefaultConfig()
		cfg.M = 4
		cfg.Policy = policy
		cfg.Seed = 9
		rt, m := runMulti(t, cfg, 2, 10e6, 0.05)
		if rt.Group() == nil {
			t.Fatalf("%s: no GroupPolicy", policy)
		}
		var sumQ, sumT int64
		for q, c := range rt.CyclesQ {
			if c == 0 {
				t.Errorf("%s: queue %d never served", policy, q)
			}
			sumQ += c
		}
		for id, c := range rt.CyclesByThread {
			if c == 0 {
				t.Errorf("%s: thread %d never took a service turn", policy, id)
			}
			sumT += c
		}
		if sumQ != rt.Cycles.Value || sumT != rt.Cycles.Value {
			t.Errorf("%s: cycle splits sum to %d (queues) / %d (threads), want %d",
				policy, sumQ, sumT, rt.Cycles.Value)
		}
		if len(m.CyclesQ) != 2 || m.CyclesQ[0] != rt.CyclesQ[0] {
			t.Errorf("%s: Metrics.CyclesQ = %v, runtime %v", policy, m.CyclesQ, rt.CyclesQ)
		}
		// In the sequential twin a turn is claimed exactly when a cycle
		// begins, so the counters can differ only by an in-flight cycle.
		for q := range rt.CyclesQ {
			turns := int64(rt.Group().Turns(q))
			if turns < rt.CyclesQ[q] || turns > rt.CyclesQ[q]+1 {
				t.Errorf("%s: queue %d turns = %d, cycles = %d", policy, q, turns, rt.CyclesQ[q])
			}
		}
	}
}

// TestRMetronomeMembersReturnHome runs the shared-queue discipline with a
// hot and a cold queue: backups that steal a turn on the foreign queue must
// return home, so their home queue keeps being served.
func TestRMetronomeMembersReturnHome(t *testing.T) {
	eng := sim.New()
	root := xrand.New(4)
	queues := []*nic.Queue{
		nic.NewQueue(0, traffic.CBR{PPS: 12e6}, root.Split(), nic.DefaultOptions()),
		nic.NewQueue(1, traffic.CBR{PPS: 0.2e6}, root.Split(), nic.DefaultOptions()),
	}
	cfg := DefaultConfig()
	cfg.M = 4
	cfg.Policy = sched.NameWorkSteal
	cfg.Seed = 5
	r := New(eng, queues, cfg)
	r.Start()
	eng.RunUntil(0.05)
	// Both queues keep completing cycles: group membership did not leak
	// every thread to the hot queue.
	if r.CyclesQ[0] == 0 || r.CyclesQ[1] == 0 {
		t.Fatalf("queue starved: CyclesQ = %v", r.CyclesQ)
	}
	if m := r.Snapshot(0.05); m.LossRate > 0.05 {
		t.Errorf("loss = %v under a modest hot queue", m.LossRate)
	}
}

func TestBusPublishesTimeAveragedOccupancy(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 3
	cfg.Bus = telemetry.NewBus(1, cfg.M)
	eng := sim.New()
	q := nic.NewQueue(0, traffic.CBR{PPS: 7e6}, xrand.New(9), nic.DefaultOptions())
	r := New(eng, []*nic.Queue{q}, cfg)
	r.Start()
	eng.RunUntil(0.01)
	avg := cfg.Bus.OccAvg(0)
	if avg <= 0 {
		t.Fatalf("no time-averaged occupancy published: %v", avg)
	}
	if avg >= float64(q.Opt.Cap) {
		t.Fatalf("averaged occupancy %v exceeds ring capacity", avg)
	}
	// The cycle-window average must agree with the queue's own integral over
	// the run to the right order: both derive from the same fluid model.
	runAvg := q.OccIntegral() / 0.01
	if avg > 50*runAvg+1 {
		t.Errorf("published average %v wildly above run average %v", avg, runAvg)
	}
}

// TestBusLatencyHistogramMatchesExactSample is the sim half of the
// fidelity-plane equivalence contract: every tagged latency the queue
// records into its exact Sample is published to the bus histogram through
// the same value, so bucketing the raw sample by hand must reproduce the
// bus's buckets exactly.
func TestBusLatencyHistogramMatchesExactSample(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 77
	cfg.Bus = telemetry.NewBus(1, cfg.M)
	eng := sim.New()
	opt := nic.DefaultOptions()
	opt.TagProb = 0.05 // plenty of tagged packets in a short run
	q := nic.NewQueue(0, traffic.CBR{PPS: 5e6}, xrand.New(123), opt)
	r := New(eng, []*nic.Queue{q}, cfg)
	r.Start()
	eng.RunUntil(0.05)
	_ = r.Snapshot(0.05)

	var want stats.LogHistogram
	for _, v := range q.Lat.Values() {
		want.Record(stats.SecondsToNs(v))
	}
	if want.N() == 0 {
		t.Fatal("no tagged latencies recorded")
	}
	var got stats.LogHistogram
	cfg.Bus.SampleLatency(0, &got)
	if got.N() != want.N() {
		t.Fatalf("bus histogram N=%d, sample N=%d", got.N(), want.N())
	}
	for i := 0; i < stats.LogHistBuckets; i++ {
		if got.CountAt(i) != want.CountAt(i) {
			t.Fatalf("bucket %d: bus=%d sample=%d", i, got.CountAt(i), want.CountAt(i))
		}
	}
	// And the headline contract: the histogram's tail quantiles track the
	// exact sample's within one bucket's relative resolution.
	for _, p := range []float64{0.5, 0.99, 0.999} {
		exact := stats.SecondsToNs(q.Lat.Quantile(p))
		hist := got.Quantile(p)
		if hist < exact || float64(hist) > float64(exact)*(1+2.0/stats.LogHistSub)+1 {
			t.Errorf("p%.3f: hist=%d ns vs exact=%d ns", p*100, hist, exact)
		}
	}
}
