package core

import (
	"testing"

	"metronome/internal/faults"
	"metronome/internal/nic"
	"metronome/internal/sched"
	"metronome/internal/sim"
	"metronome/internal/telemetry"
	"metronome/internal/traffic"
	"metronome/internal/xrand"
)

// faultRig builds a 2-queue runtime with a fault injector wired in and the
// given fault schedule registered as engine events.
func faultRig(t *testing.T, policy string, evs []faults.Event, seed uint64) (*sim.Engine, *Runtime, *faults.Injector) {
	t.Helper()
	eng := sim.New()
	root := xrand.New(seed)
	queues := make([]*nic.Queue, 2)
	for i := range queues {
		opt := nic.DefaultOptions()
		opt.Cap = 4096
		queues[i] = nic.NewQueue(i, traffic.CBR{PPS: 5e6}, root.Split(), opt)
	}
	cfg := DefaultConfig()
	cfg.M = 4
	cfg.VBar = 15e-6
	cfg.Policy = policy
	cfg.Seed = seed
	cfg.Bus = telemetry.NewBus(2, 16)
	cfg.Faults = faults.New(16, 2)
	r := New(eng, queues, cfg)
	faults.Schedule(eng, cfg.Faults, evs)
	r.Start()
	return eng, r, cfg.Faults
}

func TestStalledThreadSleepsThroughWindow(t *testing.T) {
	evs := []faults.Event{
		{At: 0.01, Kind: faults.ThreadStall, Target: 0, Until: 0.03},
	}
	eng, r, _ := faultRig(t, sched.NameRMetronome, evs, 11)
	var atStart, atEnd int64
	eng.At(0.0101, "sample-start", func() { atStart = r.CyclesByThread[0] })
	eng.At(0.0299, "sample-end", func() { atEnd = r.CyclesByThread[0] })
	eng.RunUntil(0.05)
	if atEnd != atStart {
		t.Fatalf("stalled thread served %d cycles inside its stall window", atEnd-atStart)
	}
	if r.CyclesByThread[0] == atEnd {
		t.Fatal("stalled thread never resumed after the window")
	}
}

func TestDeadThreadParksAndTeamSurvives(t *testing.T) {
	evs := []faults.Event{
		{At: 0.01, Kind: faults.ThreadDeath, Target: 1},
	}
	eng, r, _ := faultRig(t, sched.NameAdaptive, evs, 12)
	var atDeath int64
	eng.At(0.012, "sample-death", func() { atDeath = r.CyclesByThread[1] })
	eng.RunUntil(0.05)
	if r.CyclesByThread[1] != atDeath {
		t.Fatalf("dead thread kept serving: %d -> %d cycles", atDeath, r.CyclesByThread[1])
	}
	m := r.Snapshot(0.05)
	if m.Cycles == 0 || m.Served == 0 {
		t.Fatalf("survivors stopped serving: %+v", m)
	}
}

func TestQueueBlackoutBuffersThenRecovers(t *testing.T) {
	evs := []faults.Event{
		{At: 0.01, Kind: faults.QueueBlackout, Target: 0},
		{At: 0.012, Kind: faults.QueueRecover, Target: 0},
	}
	eng, r, _ := faultRig(t, sched.NameRMetronome, evs, 13)
	var servedAtDark, servedAtEnd int64
	eng.At(0.0101, "sample-dark", func() { servedAtDark = r.Queues[0].Served })
	eng.At(0.0119, "sample-darkend", func() { servedAtEnd = r.Queues[0].Served })
	eng.RunUntil(0.05)
	if servedAtEnd != servedAtDark {
		t.Fatalf("dark queue served %d packets during blackout", servedAtEnd-servedAtDark)
	}
	// 2ms at 5 Mpps is 10k packets against a 4096-slot ring: the blackout
	// must overflow, and recovery must resume service.
	if r.Queues[0].Drops == 0 {
		t.Fatal("blackout never overflowed the ring")
	}
	if r.Queues[0].Served <= servedAtEnd {
		t.Fatal("queue never recovered from blackout")
	}
}

func TestFrozenTelemetryStopsPubSeqNotHeartbeat(t *testing.T) {
	evs := []faults.Event{
		{At: 0.01, Kind: faults.TelemetryFreeze, Target: 0},
	}
	eng, r, _ := faultRig(t, sched.NameAdaptive, evs, 14)
	bus := r.Cfg.Bus
	var pubAtFreeze, hbMoved uint64
	eng.At(0.011, "sample-freeze", func() { pubAtFreeze = bus.PubSeq(0) })
	eng.At(0.04, "sample-late", func() {
		if bus.PubSeq(0) != pubAtFreeze {
			t.Errorf("frozen queue kept publishing: seq %d -> %d", pubAtFreeze, bus.PubSeq(0))
		}
		for i := 0; i < r.ThreadCount(); i++ {
			if bus.Heartbeat(i) > 0.011 {
				hbMoved++
			}
		}
	})
	eng.RunUntil(0.05)
	if pubAtFreeze == 0 {
		t.Fatal("queue 0 never published before the freeze")
	}
	if hbMoved == 0 {
		t.Fatal("no heartbeat advanced past the freeze — liveness must survive a telemetry brownout")
	}
	if bus.PubSeq(1) <= pubAtFreeze/4 {
		t.Fatalf("healthy queue 1 publish rate collapsed: %d", bus.PubSeq(1))
	}
}

// A faulted run is still a pure function of its seed: the fault schedule
// rides on ordinary engine events.
func TestFaultedRunDeterministic(t *testing.T) {
	run := func() Metrics {
		evs := []faults.Event{
			{At: 0.005, Kind: faults.ThreadStall, Target: 2, Until: 0.015},
			{At: 0.008, Kind: faults.QueueBlackout, Target: 1},
			{At: 0.011, Kind: faults.QueueRecover, Target: 1},
			{At: 0.012, Kind: faults.ThreadDeath, Target: 3},
			{At: 0.02, Kind: faults.TelemetryFreeze, Target: 0},
			{At: 0.03, Kind: faults.TelemetryThaw, Target: 0},
		}
		eng, r, _ := faultRig(t, sched.NameRMetronome, evs, 99)
		eng.RunUntil(0.05)
		m := r.Snapshot(0.05)
		m.CyclesQ = append([]int64(nil), m.CyclesQ...)
		m.RhoEst = append([]float64(nil), m.RhoEst...)
		m.TSNow = append([]float64(nil), m.TSNow...)
		return m
	}
	a, b := run(), run()
	if a.Cycles != b.Cycles || a.Served != b.Served || a.Drops != b.Drops ||
		a.Tries != b.Tries || a.BusyTries != b.BusyTries {
		t.Fatalf("faulted run not deterministic:\n%+v\n%+v", a, b)
	}
	for q := range a.CyclesQ {
		if a.CyclesQ[q] != b.CyclesQ[q] {
			t.Fatalf("per-queue cycles diverge at %d: %d vs %d", q, a.CyclesQ[q], b.CyclesQ[q])
		}
	}
}

// Dead threads are revivable through the placement path: ThreadRevive clears
// the flag and a subsequent ApplyPlacement un-park re-arms the member.
func TestDeadThreadRevivedByPlacement(t *testing.T) {
	evs := []faults.Event{
		{At: 0.01, Kind: faults.ThreadDeath, Target: 3},
		{At: 0.02, Kind: faults.ThreadRevive, Target: 3},
	}
	eng, r, _ := faultRig(t, sched.NameRMetronome, evs, 15)
	eng.At(0.025, "re-place", func() {
		// Shrink past the dead slot then grow back: the grow un-parks the
		// revived thread with a fresh wake event.
		r.ApplyPlacement([]int{1, 2})
		r.ApplyPlacement([]int{2, 2})
	})
	var atRevive int64
	eng.At(0.026, "sample-revive", func() { atRevive = r.CyclesByThread[3] })
	eng.RunUntil(0.05)
	if r.CyclesByThread[3] <= atRevive {
		t.Fatalf("revived thread never served again (cycles %d)", r.CyclesByThread[3])
	}
}
