package core

import (
	"math"
	"testing"

	"metronome/internal/nic"
	"metronome/internal/sched"
	"metronome/internal/sim"
	"metronome/internal/telemetry"
	"metronome/internal/traffic"
	"metronome/internal/xrand"
)

// placementRig builds a 3-queue rmetronome runtime with a scripted
// placement sequence driven by engine events.
func placementRig(t *testing.T, plans map[float64][]int, dur float64, seed uint64) (*Runtime, Metrics) {
	t.Helper()
	eng := sim.New()
	root := xrand.New(seed)
	queues := make([]*nic.Queue, 3)
	for i := range queues {
		opt := nic.DefaultOptions()
		opt.Cap = 4096
		queues[i] = nic.NewQueue(i, traffic.CBR{PPS: 6e6}, root.Split(), opt)
	}
	cfg := DefaultConfig()
	cfg.M = 6
	cfg.VBar = 15e-6
	cfg.Policy = sched.NameRMetronome
	cfg.Seed = seed
	cfg.Bus = telemetry.NewBus(3, 16)
	r := New(eng, queues, cfg)
	r.Start()
	for at, plan := range plans {
		at, plan := at, plan
		eng.At(at, "test-place", func() { r.ApplyPlacement(plan) })
	}
	eng.RunUntil(dur)
	return r, r.Snapshot(dur)
}

func TestApplyPlacementMovesMembers(t *testing.T) {
	r, m := placementRig(t, map[float64][]int{
		0.01: {4, 1, 1},
	}, 0.05, 7)
	if got := r.Placement(); got[0] != 4 || got[1] != 1 || got[2] != 1 {
		t.Fatalf("final placement %v, want [4 1 1]", got)
	}
	if r.TeamSize() != 6 {
		t.Fatalf("team size %d, want 6 (rebalance moves members, not the total)", r.TeamSize())
	}
	if m.Cycles == 0 || m.LossRate > 0.01 {
		t.Fatalf("degenerate run: %+v", m)
	}
	// The rebalanced group actually shows up in service accounting: queue 0
	// holds 4 of 6 members and the de-phased rotation still serves all
	// queues.
	for q := 0; q < 3; q++ {
		if m.CyclesQ[q] == 0 {
			t.Fatalf("queue %d starved after rebalance: %v", q, m.CyclesQ)
		}
	}
}

// ApplyPlacement through engine events must be a pure function of the
// script — the determinism contract the placement experiments lean on.
func TestApplyPlacementDeterministic(t *testing.T) {
	run := func() Metrics {
		_, m := placementRig(t, map[float64][]int{
			0.008: {1, 1, 4},
			0.02:  {2, 2, 2},
			0.034: {1, 4, 3}, // also grows the team to 8
		}, 0.05, 21)
		return m
	}
	a, b := run(), run()
	if a.Cycles != b.Cycles || a.Tries != b.Tries || a.RxPackets != b.RxPackets ||
		a.CPUPercent != b.CPUPercent || a.MeanVacation != b.MeanVacation {
		t.Fatalf("scripted-placement runs diverged:\n%+v\n%+v", a, b)
	}
}

func TestPerQueueProvisionedIntegral(t *testing.T) {
	r, _ := placementRig(t, map[float64][]int{
		0.02: {4, 1, 1},
	}, 0.05, 13)
	// [2 2 2] for 0.02 s, then [4 1 1] for 0.03 s.
	want := []float64{2*0.02 + 4*0.03, 2*0.02 + 1*0.03, 2*0.02 + 1*0.03}
	got := r.ProvisionedThreadSecondsQ(0.05)
	var total float64
	for q := range want {
		if math.Abs(got[q]-want[q]) > 1e-9 {
			t.Fatalf("queue %d provisioned %v, want %v (all: %v)", q, got[q], want[q], got)
		}
		total += got[q]
	}
	// The per-queue split always sums to the total integral.
	if full := r.ProvisionedThreadSeconds(0.05); math.Abs(total-full) > 1e-9 {
		t.Fatalf("per-queue sum %v != total %v", total, full)
	}
	r.ResetProvisioned(0.05)
	for q, v := range r.ProvisionedThreadSecondsQ(0.05) {
		if v != 0 {
			t.Fatalf("queue %d after reset: %v", q, v)
		}
	}
}

// SetTeamSize must remain the balanced special case of ApplyPlacement: it
// re-balances an unbalanced plan even at the same total, and its layouts
// match an explicit balanced plan.
func TestSetTeamSizeIsBalancedApplyPlacement(t *testing.T) {
	r, _ := placementRig(t, nil, 0.01, 5)
	r.ApplyPlacement([]int{4, 1, 1})
	if got := r.Placement(); got[0] != 4 {
		t.Fatalf("setup placement %v", got)
	}
	if applied := r.SetTeamSize(6); applied != 6 {
		t.Fatalf("SetTeamSize(6) applied %d", applied)
	}
	if got := r.Placement(); got[0] != 2 || got[1] != 2 || got[2] != 2 {
		t.Fatalf("SetTeamSize did not re-balance: %v", got)
	}
	// Per-queue entries clamp to one attendant (Sec. IV-E), so a plan of
	// zeros degenerates to one member per queue.
	if applied := r.ApplyPlacement([]int{0, 0, 0}); applied != 3 {
		t.Fatalf("ApplyPlacement(zeros) applied %d, want 3", applied)
	}
}

// Snapshot's slices live in reusable runtime buffers: after the first
// call warms them, repeated sampling allocates nothing (the ROADMAP PR 3
// follow-up that makes high-frequency mid-run sampling free).
func TestSnapshotSteadyStateAllocationFree(t *testing.T) {
	r, _ := placementRig(t, nil, 0.02, 3)
	r.Snapshot(0.02) // warm the buffers
	if allocs := testing.AllocsPerRun(50, func() { r.Snapshot(0.02) }); allocs > 0 {
		t.Fatalf("Snapshot allocates %.1f/call after warm-up, want 0", allocs)
	}
}

// Elastic + placement through the facade-level wiring must stay
// deterministic: same config, same decisions, same metrics.
func TestPlacementControllerDeterministic(t *testing.T) {
	run := func() (Metrics, []int) {
		eng := sim.New()
		root := xrand.New(31)
		queues := make([]*nic.Queue, 2)
		for i := range queues {
			opt := nic.DefaultOptions()
			opt.Cap = 4096
			queues[i] = nic.NewQueue(i, traffic.Step{
				At:     0.02,
				Before: traffic.CBR{PPS: 4e6},
				After:  traffic.CBR{PPS: 18e6},
			}, root.Split(), opt)
		}
		cfg := DefaultConfig()
		cfg.M = 2
		cfg.VBar = 15e-6
		cfg.Policy = sched.NameRMetronome
		cfg.Seed = 31
		cfg.Bus = telemetry.NewBus(2, 8)
		r := New(eng, queues, cfg)
		r.Start()
		// Drive placement plans from occupancy like the controller does,
		// through ordinary engine events.
		eng.Ticker(1e-3, "place-tick", func() {
			occ0 := cfg.Bus.Occupancy(0)
			occ1 := cfg.Bus.Occupancy(1)
			switch {
			case occ0 > 2*occ1+1:
				r.ApplyPlacement([]int{3, 1})
			case occ1 > 2*occ0+1:
				r.ApplyPlacement([]int{1, 3})
			default:
				r.SetTeamSize(2)
			}
		})
		eng.RunUntil(0.05)
		return r.Snapshot(0.05), r.Placement()
	}
	m1, p1 := run()
	m2, p2 := run()
	if m1.Cycles != m2.Cycles || m1.RxPackets != m2.RxPackets || m1.CPUPercent != m2.CPUPercent {
		t.Fatalf("placement-driven runs diverged:\n%+v\n%+v", m1, m2)
	}
	for q := range p1 {
		if p1[q] != p2[q] {
			t.Fatalf("final placements diverged: %v vs %v", p1, p2)
		}
	}
}
