package core

import (
	"math"
	"testing"

	"metronome/internal/nic"
	"metronome/internal/sched"
	"metronome/internal/sim"
	"metronome/internal/telemetry"
	"metronome/internal/traffic"
	"metronome/internal/xrand"
)

// resizeRig builds a 2-queue runtime with a scripted resize sequence
// driven by engine events, and returns final metrics plus per-thread
// cycle counts.
func resizeRig(t *testing.T, policy string, resizes map[float64]int, dur float64, seed uint64) (*Runtime, Metrics) {
	t.Helper()
	eng := sim.New()
	root := xrand.New(seed)
	queues := make([]*nic.Queue, 2)
	for i := range queues {
		opt := nic.DefaultOptions()
		opt.Cap = 4096
		queues[i] = nic.NewQueue(i, traffic.CBR{PPS: 8e6}, root.Split(), opt)
	}
	cfg := DefaultConfig()
	cfg.M = 2
	cfg.VBar = 15e-6
	cfg.Policy = policy
	cfg.Seed = seed
	cfg.Bus = telemetry.NewBus(2, 16)
	r := New(eng, queues, cfg)
	r.Start()
	for at, m := range resizes {
		at, m := at, m
		eng.At(at, "test-resize", func() { r.SetTeamSize(m) })
	}
	eng.RunUntil(dur)
	return r, r.Snapshot(dur)
}

func TestSetTeamSizeGrowAndShrink(t *testing.T) {
	for _, policy := range []string{sched.NameAdaptive, sched.NameRMetronome} {
		r, m := resizeRig(t, policy, map[float64]int{
			0.01: 6, // grow mid-run
			0.03: 2, // retire the extras
		}, 0.05, 7)
		if r.TeamSize() != 2 {
			t.Fatalf("%s: final team %d, want 2", policy, r.TeamSize())
		}
		if r.ThreadCount() != 6 {
			t.Fatalf("%s: thread slots %d, want 6 (retirees parked, not destroyed)", policy, r.ThreadCount())
		}
		// The grown threads actually served while active.
		var grownCycles int64
		for id := 2; id < 6; id++ {
			grownCycles += r.CyclesByThread[id]
		}
		if grownCycles == 0 {
			t.Fatalf("%s: grown threads never served a cycle", policy)
		}
		if m.Cycles == 0 || m.LossRate > 0.01 {
			t.Fatalf("%s: degenerate run: %+v", policy, m)
		}
		// Resizable policies adopted the final size.
		if rz, ok := r.Policy().(sched.Resizable); ok {
			if rz.TeamSize() != 2 {
				t.Fatalf("%s: policy team size %d, want 2", policy, rz.TeamSize())
			}
		} else {
			t.Fatalf("%s: policy is not Resizable", policy)
		}
	}
}

func TestRetiredThreadsStopServing(t *testing.T) {
	r, _ := resizeRig(t, sched.NameAdaptive, map[float64]int{0.02: 2}, 0.06, 9)
	_ = r
	// Re-run with an observation window: capture cycle counts at the
	// retire point and at the end; retirees must not serve afterwards.
	eng := sim.New()
	root := xrand.New(11)
	queues := []*nic.Queue{
		nic.NewQueue(0, traffic.CBR{PPS: 8e6}, root.Split(), nic.DefaultOptions()),
		nic.NewQueue(1, traffic.CBR{PPS: 8e6}, root.Split(), nic.DefaultOptions()),
	}
	cfg := DefaultConfig()
	cfg.M = 6
	cfg.Policy = sched.NameAdaptive
	cfg.Seed = 11
	rt := New(eng, queues, cfg)
	rt.Start()
	var atRetire []int64
	eng.At(0.02, "retire", func() {
		rt.SetTeamSize(2)
		atRetire = append([]int64(nil), rt.CyclesByThread...)
	})
	eng.RunUntil(0.06)
	// A retiree may finish the one cycle it already had in flight (or its
	// last pending timer may win one more race) but must then park: allow
	// at most one extra cycle each.
	for id := 2; id < 6; id++ {
		if rt.CyclesByThread[id] > atRetire[id]+1 {
			t.Fatalf("retired thread %d kept serving: %d -> %d cycles",
				id, atRetire[id], rt.CyclesByThread[id])
		}
	}
	// The survivors kept the queues alive.
	if rt.CyclesByThread[0] == 0 || rt.CyclesByThread[1] == 0 {
		t.Fatal("survivors served nothing")
	}
}

// TestResizeDeterministic pins the elastic substrate's determinism
// contract: identical configs and resize scripts produce identical runs.
func TestResizeDeterministic(t *testing.T) {
	run := func() Metrics {
		_, m := resizeRig(t, sched.NameRMetronome, map[float64]int{
			0.008: 5,
			0.02:  3,
			0.034: 6,
		}, 0.05, 21)
		return m
	}
	a, b := run(), run()
	if a.Cycles != b.Cycles || a.Tries != b.Tries || a.RxPackets != b.RxPackets ||
		a.CPUPercent != b.CPUPercent || a.MeanVacation != b.MeanVacation {
		t.Fatalf("scripted-resize runs diverged:\n%+v\n%+v", a, b)
	}
}

func TestProvisionedThreadSecondsIntegral(t *testing.T) {
	r, _ := resizeRig(t, sched.NameAdaptive, map[float64]int{0.02: 6}, 0.05, 13)
	// 2 threads for 0.02 s, then 6 threads for 0.03 s.
	want := 2*0.02 + 6*0.03
	got := r.ProvisionedThreadSeconds(0.05)
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("provisioned thread-seconds = %v, want %v", got, want)
	}
	r.ResetProvisioned(0.05)
	if got := r.ProvisionedThreadSeconds(0.05); got != 0 {
		t.Fatalf("after reset: %v", got)
	}
}

func TestSetTeamSizeClampsToQueueCount(t *testing.T) {
	r, _ := resizeRig(t, sched.NameAdaptive, nil, 0.01, 5)
	if applied := r.SetTeamSize(1); applied != 2 {
		t.Fatalf("SetTeamSize(1) applied %d, want clamp to N=2", applied)
	}
	if applied := r.SetTeamSize(0); applied != 2 {
		t.Fatalf("SetTeamSize(0) applied %d, want clamp to N=2", applied)
	}
}

// TestBusPublishesDuringRun checks the telemetry plane carries live
// signals: occupancy/rho/counters move for every queue under load.
func TestBusPublishesDuringRun(t *testing.T) {
	r, _ := resizeRig(t, sched.NameRMetronome, nil, 0.03, 17)
	bus := r.Cfg.Bus
	for q := 0; q < 2; q++ {
		if bus.Tries(q) == 0 {
			t.Errorf("queue %d: no tries published", q)
		}
		if bus.Rx(q) == 0 {
			t.Errorf("queue %d: no rx published", q)
		}
		if bus.Rho(q) <= 0 {
			t.Errorf("queue %d: rho never published", q)
		}
		if bus.Capacity(q) != 4096 {
			t.Errorf("queue %d: capacity = %v", q, bus.Capacity(q))
		}
	}
	var busy float64
	for i := 0; i < r.ThreadCount(); i++ {
		busy += bus.ThreadBusy(i)
	}
	if busy <= 0 {
		t.Error("no per-thread duty published")
	}
}
