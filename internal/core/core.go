// Package core implements Metronome itself: the multi-threaded sleep&wake
// packet-retrieval architecture of Sec. III and the adaptive tuning of
// Sec. IV, executed over the discrete-event engine.
//
// M threads share N Rx queues behind per-queue trylocks. A thread that
// wakes and wins the race drains the queue (a busy period), releases the
// lock and re-arms a short timeout TS; a thread that loses notes the busy
// period, re-targets a random queue (multiqueue) and re-arms a long timeout
// TL >> TS. All timeout, load-estimation and queue-selection decisions are
// delegated to a sched.Policy, the same engine the live runtime in
// internal/runtime uses — the twin only supplies the discrete-event
// substrate underneath it.
package core

import (
	"fmt"

	"metronome/internal/cpu"
	"metronome/internal/faults"
	"metronome/internal/hrtimer"
	"metronome/internal/nic"
	"metronome/internal/obsv"
	"metronome/internal/power"
	"metronome/internal/sched"
	"metronome/internal/sim"
	"metronome/internal/stats"
	"metronome/internal/telemetry"
	"metronome/internal/xrand"
)

// Config parameterises a Metronome run.
type Config struct {
	// M is the number of retrieval threads (paper default 3 single-queue).
	M int
	// VBar is the target mean vacation period (10 us in most experiments).
	VBar float64
	// TL is the backup threads' long timeout (500 us in the paper).
	TL float64
	// Mu is the service (retrieval+processing) rate in packets/second at
	// nominal frequency; it comes from the application's per-packet cost.
	Mu float64
	// FreqScale multiplies Mu to express a frequency-scaled core
	// (ondemand governor); 1.0 at nominal.
	FreqScale float64
	// MuSigma is the per-cycle relative noise on the service rate (cache
	// misses, batch granularity, DMA contention). The paper leans on this
	// variability for thread decorrelation (Sec. IV-B.2).
	MuSigma float64
	// Alpha is the EWMA smoothing of the load estimator (eq. 11).
	Alpha float64
	// Policy names the scheduling discipline from the sched registry
	// ("adaptive", "fixed", "busypoll", "rmetronome", "worksteal", or an
	// application-registered name). Empty falls back to the legacy
	// Adaptive/TSFixed fields.
	// Like the other Config validations, an unknown name panics in New;
	// pre-validate user-supplied names with sched.New / PolicyNames.
	Policy string
	// Adaptive selects eq. (13)/(14); when false every thread sleeps the
	// fixed TSFixed (the equal-timeout strawman of Fig 6, or the TS=TL
	// configuration of Fig 4). Consulted only when Policy is empty.
	Adaptive bool
	TSFixed  float64
	// PollCost is the CPU time of one empty rx_burst call.
	PollCost float64
	// WakeCost is the CPU time consumed by every wakeup (syscall return,
	// trylock, re-arm) on top of any draining work.
	WakeCost float64
	// MaxSlice bounds one fluid service slice, so overload and rate
	// changes are sampled at this granularity.
	MaxSlice float64
	// Sleep selects the sleep-service latency model.
	Sleep hrtimer.Service
	// Wake shapes scheduler wake-up delays.
	Wake cpu.WakeConfig
	// Cores hosts the threads (thread i runs on Cores[i % len]); nil means
	// M dedicated idle cores.
	Cores []*cpu.Core
	// WakeOverrides replaces the wake-delay configuration for specific
	// threads — the failure-injection hook behind the Sec. V-E robustness
	// experiments (a thread whose core is hogged by a CPU-bound co-runner
	// wakes a CFS timeslice late).
	WakeOverrides map[int]cpu.WakeConfig
	// BackupSticky makes a losing thread re-contend the same queue instead
	// of re-targeting a random one — the strawman against Sec. IV-E's
	// random selection, used by the ablation benchmarks.
	BackupSticky bool
	// Bus, when set, receives live telemetry from the run: per-queue
	// occupancy/rho/drop/try gauges and per-thread duty, published at
	// every wakeup and release. The elastic control plane samples it; the
	// work-stealing discipline reads occupancy from it. Nil keeps the hot
	// path free of even the publishing branches' stores.
	Bus *telemetry.Bus
	// Faults, when set, is the deterministic fault-injection plane the run
	// consults on its cycle path: dead threads park, stalled threads sleep
	// through their windows, dark queues poll empty while their backlog
	// builds, and frozen queues stop publishing telemetry. Flag flips arrive
	// through ordinary engine events (faults.Schedule), so a faulted run
	// stays a pure function of its seed. Nil keeps the hot path to one
	// pointer test per wakeup.
	Faults *faults.Injector
	// RingCap overrides the Rx descriptor-ring capacity of every queue the
	// deployment *builders* construct (the facade's Simulate/
	// SimulateElastic and the experiment harness; zero keeps each builder's
	// default). core.New itself receives already-built queues and ignores
	// it — the field rides on Config so one knob (metrosim -cap) reaches
	// every construction site. The elastic occupancy target is a fraction
	// of this capacity, so a smaller ring makes the target finer-grained.
	RingCap int64
	// Dephase enables turn-aware wake de-phasing in the shared-queue
	// disciplines (see sched.Dephaser).
	Dephase bool
	// Seed drives all randomness in the run.
	Seed uint64

	// OnCycle, when set, observes every completed service cycle of any
	// queue: the vacation that preceded it and its busy duration (the
	// Fig 4 histogram tap).
	OnCycle func(queue int, vacation, busy float64)
	// Tracer, when set, observes every thread transition (the Fig 3
	// timeline); see the trace package for a renderer.
	Tracer Tracer
	// Recorder, when set, is the observability plane's flight recorder:
	// every applied placement swap (ApplyPlacement/SetTeamSize that
	// changed the layout) records one event stamped with virtual engine
	// time, so recordings of a seeded run are byte-identical at any
	// experiment-harness parallelism. The elastic controller carries its
	// own Recorder reference for decision events; wiring both to one ring
	// yields the interleaved control-plane timeline.
	Recorder *obsv.Recorder
}

// Tracer observes thread state transitions.
type Tracer interface {
	// Wake fires on every wakeup: won reports the trylock outcome.
	Wake(t float64, thread, queue int, won bool)
	// Release fires when a service cycle completes.
	Release(t float64, thread, queue int, busy float64)
	// Sleep fires when a thread re-arms its timer for req seconds;
	// backup marks a TL (lost-race) sleep.
	Sleep(t float64, thread int, req float64, backup bool)
}

// DefaultConfig mirrors the paper's single-queue tuning: V̄=10us, TL=500us,
// M=3, hr_sleep, adaptive.
func DefaultConfig() Config {
	return Config{
		M:         3,
		VBar:      10e-6,
		TL:        500e-6,
		Mu:        29.76e6, // l3fwd-LPM retrieval rate at 2.1 GHz (see apps)
		FreqScale: 1,
		MuSigma:   0.08,
		Alpha:     0.125,
		Adaptive:  true,
		PollCost:  0.2e-6,
		WakeCost:  1.5e-6,
		MaxSlice:  200e-6,
		Sleep:     hrtimer.HRSleep,
		Wake:      cpu.DefaultWakeConfig(),
	}
}

type thread struct {
	id    int
	core  *cpu.Core
	wake  *cpu.WakeModel
	rng   *xrand.Rand
	queue int // queue to contend at next wakeup

	// retired marks a thread the elastic control plane has removed from
	// the team: it finishes any in-flight cycle, then parks instead of
	// re-arming its timer. parked reports it has actually stopped (no
	// pending engine event), which is what makes un-retiring race-free in
	// virtual time: an unparked thread gets a fresh wake event, a merely
	// un-retired one keeps its still-pending timer.
	retired bool
	parked  bool

	// In-flight cycle state for the pre-bound callbacks below, valid while
	// the thread holds its queue's lock (each thread has at most one
	// pending timer, so one set of fields suffices).
	vacation     float64
	serviceStart float64
	sliceEnd     float64

	// Callbacks bound once in New: the wakeup/serve/release hot path
	// schedules them directly instead of allocating a capturing closure
	// per cycle, which together with the engine's event free list makes
	// steady-state ticks allocation-free.
	wakeFn    func()
	serveFn   func()
	releaseFn func()
}

// Runtime executes Metronome over a set of queues.
type Runtime struct {
	Cfg     Config
	Eng     *sim.Engine
	Queues  []*nic.Queue
	Acct    *cpu.Accounting
	policy  sched.Policy
	group   sched.GroupPolicy // non-nil when the policy binds service groups
	dephase sched.Dephaser    // non-nil when the policy staggers group wakes
	bus     *telemetry.Bus    // nil unless Cfg.Bus
	faults  *faults.Injector  // nil unless Cfg.Faults
	threads []*thread

	// active is the current team size: threads[0:active] are serving,
	// threads[active:] are retired or parked. started flips at Start so a
	// pre-start resize only relabels the team (Start owns first arming).
	// The provisioned integral ∫M(t)dt backs the thread-seconds metric of
	// the elastic experiments; placement holds the per-queue member counts
	// the current plan provisions (group sizes when the policy binds
	// groups, the balanced split otherwise) and provisionedQ the per-queue
	// ∫r_q(t)dt split of the same integral.
	active       int
	started      bool
	provisioned  float64
	provAt       float64
	placement    []int
	provisionedQ []float64

	locked      []bool
	lastRelease []float64

	// Per-queue occupancy-integral checkpoints: finishCycle publishes the
	// time-averaged occupancy of the window since the previous checkpoint,
	// (OccIntegral delta) / dt — the alias-free occupancy gauge.
	occIntLast []float64
	occIntAt   []float64

	// Counters matching the paper's metrics.
	Tries     stats.Counter // trylock attempts
	BusyTries stats.Counter // failed attempts (queue already owned)
	Cycles    stats.Counter // completed service cycles
	// Per-queue splits of the same counters (Table III).
	TriesQ     []int64
	BusyTriesQ []int64
	// Multi-thread-per-queue cycle accounting for the shared-queue
	// disciplines: who served which queue. CyclesQ[q] counts completed
	// service cycles of queue q; CyclesByThread[t] counts cycles thread t
	// served (on any queue), so service-turn fairness inside an r-member
	// group is observable.
	CyclesQ        []int64
	CyclesByThread []int64

	// Reusable Snapshot buffers: sampling metrics mid-run at high
	// frequency must not allocate per sample, so the slices a Metrics
	// carries live here and are overwritten by the next Snapshot call.
	snapCyclesQ []int64
	snapFloats  []float64 // one backing array: RhoEst then TSNow
	snapLat     stats.Sample
}

// New builds a runtime over queues; the engine clock must be at zero.
func New(eng *sim.Engine, queues []*nic.Queue, cfg Config) *Runtime {
	if cfg.M < 1 {
		panic("core: need at least one thread")
	}
	if len(queues) == 0 {
		panic("core: need at least one queue")
	}
	if cfg.M < len(queues) {
		// Sec. IV-E: every queue should have a primary available (M >= N).
		panic(fmt.Sprintf("core: M=%d < N=%d queues", cfg.M, len(queues)))
	}
	if cfg.FreqScale <= 0 {
		cfg.FreqScale = 1
	}
	n := len(queues)
	// One backing array per element type for the per-queue state: the
	// slices are independent views, the allocator sees three makes instead
	// of seven (the alloc gate in BENCH_simulate.json counts them).
	qcounts := make([]int64, 3*n)
	qfloats := make([]float64, 4*n)
	r := &Runtime{
		Cfg:            cfg,
		Eng:            eng,
		Queues:         queues,
		Acct:           cpu.NewAccounting(cfg.M),
		policy:         sched.MustNew(PolicyName(cfg), policyConfig(cfg, len(queues))),
		locked:         make([]bool, n),
		lastRelease:    qfloats[0:n:n],
		provisionedQ:   qfloats[n : 2*n : 2*n],
		occIntLast:     qfloats[2*n : 3*n : 3*n],
		occIntAt:       qfloats[3*n : 4*n : 4*n],
		TriesQ:         qcounts[0:n:n],
		BusyTriesQ:     qcounts[n : 2*n : 2*n],
		CyclesQ:        qcounts[2*n : 3*n : 3*n],
		CyclesByThread: make([]int64, cfg.M),
	}
	r.group, _ = r.policy.(sched.GroupPolicy)
	r.dephase, _ = r.policy.(sched.Dephaser)
	r.bus = cfg.Bus
	r.faults = cfg.Faults
	r.active = cfg.M
	r.placement = make([]int, len(queues))
	r.refreshPlacement()
	if r.bus != nil {
		for q, queue := range queues {
			r.bus.SetCapacity(q, float64(queue.Opt.Cap))
			// Publish every tagged packet's exact fluid latency into the
			// bus histogram (seconds → integer ns). A telemetry freeze
			// (fault plane) silences the queue's histogram like its
			// gauges — the latency plane must not leak through an outage
			// the staleness detector is supposed to see.
			q := q
			queue.LatSink = func(lat float64) {
				if r.pubGauges(q) {
					r.bus.RecordLatency(q, stats.SecondsToNs(lat))
				}
			}
		}
	}
	root := xrand.New(cfg.Seed)
	for i := 0; i < cfg.M; i++ {
		r.addThread(root.Split())
	}
	return r
}

// coreFor maps thread i onto the configured core set (or a dedicated idle
// core when none was given).
func (r *Runtime) coreFor(i int) *cpu.Core {
	if len(r.Cfg.Cores) > 0 {
		return r.Cfg.Cores[i%len(r.Cfg.Cores)]
	}
	return cpu.NewCore(i)
}

// addThread appends one thread with its pre-bound callbacks; id is the
// next free slot. Initial threads draw their RNG stream from the root
// split sequence (rng non-nil); threads the elastic control plane adds
// later derive theirs from the deployment coordinates via SeedFrom, so a
// late thread's stream does not depend on *when* it was added.
func (r *Runtime) addThread(rng *xrand.Rand) *thread {
	i := len(r.threads)
	if rng == nil {
		rng = xrand.New(xrand.SeedFrom(r.Cfg.Seed, 0x9e37, uint64(i), uint64(len(r.Queues))))
	}
	th := &thread{
		id:    i,
		core:  r.coreFor(i),
		rng:   rng,
		queue: i % len(r.Queues),
	}
	wcfg := r.Cfg.Wake
	if over, ok := r.Cfg.WakeOverrides[i]; ok {
		wcfg = over
	}
	th.wake = cpu.NewWakeModel(hrtimer.NewModel(r.Cfg.Sleep, th.rng.Split()), wcfg, th.rng.Split())
	th.wakeFn = func() { r.wakeup(th) }
	th.serveFn = func() {
		r.Queues[th.queue].Retune(r.noisyMu(th))
		r.serveSlices(th, th.sliceEnd)
	}
	th.releaseFn = func() {
		r.Queues[th.queue].EndService(th.sliceEnd)
		r.finishCycle(th)
	}
	r.threads = append(r.threads, th)
	r.Acct.Grow(i + 1)
	r.Acct.SetName(i, fmt.Sprintf("metronome-%d", i))
	if len(r.CyclesByThread) < len(r.threads) {
		r.CyclesByThread = append(r.CyclesByThread, 0)
	}
	return th
}

// PolicyName resolves the discipline cfg selects, mapping the legacy
// Adaptive/TSFixed fields when no name is given — the single source of
// truth for what New will instantiate (CLIs print it).
func PolicyName(cfg Config) string {
	if cfg.Policy != "" {
		return cfg.Policy
	}
	if cfg.Adaptive {
		return sched.NameAdaptive
	}
	return sched.NameFixed
}

// policyConfig projects the runtime configuration onto the policy engine's.
func policyConfig(cfg Config, n int) sched.Config {
	return sched.Config{
		VBar:         cfg.VBar,
		TL:           cfg.TL,
		TSFixed:      cfg.TSFixed,
		M:            cfg.M,
		N:            n,
		Alpha:        cfg.Alpha,
		BackupSticky: cfg.BackupSticky,
		Bus:          cfg.Bus,
		Dephase:      cfg.Dephase,
	}
}

// Start arms every active thread's first wakeup, de-phased across one
// timeout so the start is not artificially synchronised (real threads
// launch sequentially; the decorrelation of Sec. IV-B takes over from
// there).
func (r *Runtime) Start() {
	r.started = true
	for i, th := range r.threads {
		if i < r.active {
			th.parked = false
			r.armFirstWake(th)
		} else {
			th.parked = true // pre-start retirees hold no pending timer
		}
	}
}

// Policy exposes the scheduling discipline driving this runtime.
func (r *Runtime) Policy() sched.Policy { return r.policy }

// TeamSize returns the current number of active retrieval threads.
func (r *Runtime) TeamSize() int { return r.active }

// ThreadCount returns how many thread slots exist (active + parked); the
// per-thread accounting and cycle counters are sized to it.
func (r *Runtime) ThreadCount() int { return len(r.threads) }

// SetTeamSize grows or shrinks the thread team to m mid-run — the sim
// substrate of the elastic control plane's scalar path, retained as the
// degenerate *balanced* placement plan: m members spread m/N per queue.
// It returns the applied size: m is clamped to at least one thread per
// queue (Sec. IV-E: every queue deserves a primary available).
func (r *Runtime) SetTeamSize(m int) int {
	if m < len(r.Queues) {
		m = len(r.Queues)
	}
	balanced := sched.BalancedPlacement(m, len(r.Queues))
	if m == r.active && sched.PlacementEqual(r.placement, balanced) {
		return r.active
	}
	return r.ApplyPlacement(balanced)
}

// CanPlace reports whether ApplyPlacement plans actually land per queue:
// true only when the discipline binds placeable groups (sched.Rebalancer).
// Roaming disciplines accept plans but degrade them to the total.
func (r *Runtime) CanPlace() bool {
	_, ok := r.policy.(sched.Rebalancer)
	return ok
}

// ApplyPlacement adopts a full placement plan mid-run — the sim substrate
// of the placement plane. perQueue[q] members are provisioned for queue q
// (entries clamped to >= 1); the team total becomes their sum and the
// applied total is returned.
//
// Growth first un-parks retired threads (each re-enters through a fresh
// de-phased wake event on its possibly new home) and then creates new
// ones; their RNG streams derive from the deployment coordinates, not from
// creation order, so a thread added at t=0.3s is the same thread it would
// have been at t=0.7s. Retirement marks the highest-id threads: each
// finishes any in-flight cycle, lets its pending timer fire once, and
// parks. Active threads whose home queue moved migrate through ordinary
// engine events — each finishes its current cycle and re-arms on its new
// home via the existing GroupPolicy.HomeQueue return path — so a
// rebalancing run stays deterministic at any experiment-harness
// parallelism. The policy adopts the plan through sched.Rebalancer when it
// can place (rmetronome/worksteal swap a complete home/rank/size layout
// and republish eq. (13) per group) and through sched.Resizable otherwise;
// per-queue provisioning integrals ∫r_q(t)dt accrue at the old plan up to
// now and at the new plan afterwards.
func (r *Runtime) ApplyPlacement(perQueue []int) int {
	sizes, total := sched.NormalizePlacement(perQueue, len(r.Queues))
	if total == r.active && sched.PlacementEqual(r.placement, sizes) {
		return r.active
	}
	r.accrueProvisioned(r.Eng.Now())
	for len(r.threads) < total {
		// Freshly created threads start parked: the activation loop below
		// un-parks them exactly like threads retired in an earlier epoch.
		th := r.addThread(nil)
		th.retired, th.parked = true, true
	}
	switch p := r.policy.(type) {
	case sched.Rebalancer:
		p.SetPlacement(sizes)
	case sched.Resizable:
		p.SetTeamSize(total)
	}
	for i, th := range r.threads {
		wasParked := th.parked
		th.retired = i >= total
		if !th.retired && wasParked && r.started {
			r.unpark(th)
		}
		// A re-activated thread that never parked keeps its pending timer;
		// a freshly retired one parks when that timer next fires. Before
		// Start, nothing is armed here: Start arms whoever is active then.
	}
	r.active = total
	r.refreshPlacement()
	r.Cfg.Recorder.RecordPlacement(r.Eng.Now(), r.active, sched.PackPlacement(r.placement))
	return r.active
}

// refreshPlacement records what the discipline actually holds per queue:
// the group sizes when the policy binds service groups, the balanced
// split otherwise (non-group disciplines let threads roam, so balance is
// the honest provisioning statement).
func (r *Runtime) refreshPlacement() {
	if g, ok := r.policy.(sched.Rebalancer); ok {
		copy(r.placement, g.Placement())
		return
	}
	for q := range r.placement {
		r.placement[q] = 0
	}
	for i := 0; i < r.active; i++ {
		r.placement[i%len(r.placement)]++
	}
}

// accrueProvisioned folds the elapsed window into the total and per-queue
// provisioning integrals at the *current* plan.
func (r *Runtime) accrueProvisioned(now float64) {
	dt := now - r.provAt
	r.provisioned += float64(r.active) * dt
	for q := range r.provisionedQ {
		r.provisionedQ[q] += float64(r.placement[q]) * dt
	}
	r.provAt = now
}

// unpark re-enters a parked thread: home it (group layouts may have moved
// under the resize) and arm a de-phased first wake, like Start does.
func (r *Runtime) unpark(th *thread) {
	th.parked = false
	th.queue = th.id % len(r.Queues)
	if r.group != nil {
		th.queue = r.group.HomeQueue(th.id)
	}
	r.armFirstWake(th)
}

// armFirstWake schedules a thread's first wakeup, de-phased across one
// timeout so team changes do not synchronise the group.
func (r *Runtime) armFirstWake(th *thread) {
	first := th.rng.Uniform(0, r.policy.TS(th.queue)+1e-9)
	r.Eng.After(first, "metronome-first-wake", th.wakeFn)
}

// ProvisionedThreadSeconds integrates the team size over virtual time up
// to now: the cores a deployment had to reserve, whether or not they were
// on-CPU — the provisioning cost the elastic control plane trades against
// loss. Use ResetProvisioned to window-align it after warm-up.
func (r *Runtime) ProvisionedThreadSeconds(now float64) float64 {
	return r.provisioned + float64(r.active)*(now-r.provAt)
}

// ProvisionedThreadSecondsQ integrates each queue's provisioned member
// count over virtual time up to now: the per-queue ∫r_q(t)dt split of
// ProvisionedThreadSeconds, which is what the placement experiments charge
// a plan for attending each queue. The returned slice is freshly
// allocated.
func (r *Runtime) ProvisionedThreadSecondsQ(now float64) []float64 {
	out := make([]float64, len(r.provisionedQ))
	dt := now - r.provAt
	for q := range out {
		out[q] = r.provisionedQ[q] + float64(r.placement[q])*dt
	}
	return out
}

// Placement returns the per-queue member counts the current plan
// provisions (a copy).
func (r *Runtime) Placement() []int {
	return append([]int(nil), r.placement...)
}

// ResetProvisioned restarts the provisioned-thread-seconds integrals at
// now.
func (r *Runtime) ResetProvisioned(now float64) {
	r.provisioned = 0
	for q := range r.provisionedQ {
		r.provisionedQ[q] = 0
	}
	r.provAt = now
}

// Residency aggregates the team's sleep-state residency over the
// measurement window: now is the current virtual time, wall the window
// length (seconds since the warm-up reset), budget the deployment's core
// budget (>= the team size; surplus cores count as parked). Busy time
// comes from the CPU accounting, idle time is the provisioned remainder,
// and the mean sleep dwell is idle time over trylock attempts — each
// retrieval cycle sleeps once before its trylock, so tries count sleeps
// exactly under metronome-family policies and approximately (rotation
// retries inflate the count, shortening the apparent dwell — the
// conservative direction for energy) under shared-queue ones. Freq is
// left zero for the caller to fill from its power calibration.
func (r *Runtime) Residency(now, wall float64, budget int) power.Residency {
	prov := r.ProvisionedThreadSeconds(now)
	busy := r.Acct.TotalBusy()
	idle := prov - busy
	if idle < 0 {
		idle = 0
	}
	dwell := 0.0
	if r.Tries.Value > 0 {
		dwell = idle / float64(r.Tries.Value)
	}
	parked := float64(budget)*wall - prov
	if parked < 0 {
		parked = 0
	}
	return power.Residency{
		BusySeconds:   busy,
		IdleSeconds:   idle,
		ParkedSeconds: parked,
		MeanDwell:     dwell,
	}
}

// Group exposes the shared-queue extension of the policy, or nil when the
// discipline does not bind service groups.
func (r *Runtime) Group() sched.GroupPolicy { return r.group }

// TS returns the current short timeout of queue q (for sampling hooks).
func (r *Runtime) TS(q int) float64 { return r.policy.TS(q) }

// Rho returns the current load estimate of queue q.
func (r *Runtime) Rho(q int) float64 { return r.policy.Rho(q) }

// MuEffective returns the service rate after frequency scaling.
func (r *Runtime) MuEffective() float64 { return r.Cfg.Mu * r.Cfg.FreqScale }

// BusyTryFraction returns the failed-trylock percentage basis (0..1).
func (r *Runtime) BusyTryFraction() float64 {
	return stats.Ratio(r.BusyTries.Value, r.Tries.Value)
}

// pubGauges reports whether queue q's telemetry gauges should publish this
// event: a bus is attached and the fault plane has not frozen the queue's
// telemetry (a frozen queue keeps serving — only its gauges go stale, which
// is exactly the brownout the controller's health layer must survive).
func (r *Runtime) pubGauges(q int) bool {
	return r.bus != nil && (r.faults == nil || !r.faults.TelemetryFrozen(q))
}

// ThreadHome returns the queue thread id is homed on under the current
// placement: the group layout's home when the discipline binds service
// groups, the balanced modulo assignment otherwise. The elastic health
// layer uses it to aim corrective plans at an unhealthy member's queue.
func (r *Runtime) ThreadHome(id int) int {
	if r.group != nil {
		return r.group.HomeQueue(id)
	}
	return id % len(r.Queues)
}

// wakeup is the body of Listing 2: trylock, drain-or-flee, re-arm.
func (r *Runtime) wakeup(th *thread) {
	if th.retired {
		// The elastic control plane removed this thread from the team: its
		// pending timer fires one last time and the thread parks instead
		// of contending (a retired thread never holds a lock here — a
		// serving thread re-arms through finishCycle, which parks first).
		th.parked = true
		return
	}
	if f := r.faults; f != nil {
		if f.Dead(th.id) {
			// Thread death: the pending timer fires one last time and the
			// thread parks for good. Revival goes through the placement path
			// (an ApplyPlacement un-park arms a fresh wake).
			th.parked = true
			return
		}
		if until, ok := f.StalledUntil(th.id); ok && r.Eng.Now() < until {
			// Stall: the thread sleeps through its service turns until the
			// window ends, without contending or re-tuning anything.
			r.Eng.At(until, "metronome-stall-resume", th.wakeFn)
			return
		}
	}
	now := r.Eng.Now()
	r.Acct.AddBusy(th.id, r.Cfg.WakeCost)
	r.Tries.Inc()
	q := th.queue
	r.TriesQ[q]++
	if r.locked[q] {
		// Busy try: another thread owns the queue. Become backup; pick a
		// random queue for the next attempt (Sec. IV-E) and sleep TL.
		r.BusyTries.Inc()
		r.BusyTriesQ[q]++
		if r.pubGauges(q) {
			// The queue is mid-service, so Occupancy reads the fluid
			// model's last slice boundary without advancing arrivals.
			r.bus.SetOccupancy(q, r.Queues[q].Occupancy(now))
			r.bus.SetTries(q, uint64(r.TriesQ[q]))
			r.bus.SetBusyTries(q, uint64(r.BusyTriesQ[q]))
			r.bus.BumpPub(q)
		}
		if r.Cfg.Tracer != nil {
			r.Cfg.Tracer.Wake(now, th.id, q, false)
		}
		th.queue = r.policy.PickBackupQueue(q, th.rng)
		tl := r.policy.TL(q)
		if r.dephase != nil {
			// A colliding group member re-spreads onto the rotation clock
			// (no-op for foreign re-targets).
			tl = r.dephase.Dephase(th.id, th.queue, tl, true)
		}
		r.sleepTraced(th, tl, true)
		return
	}
	// Lock won: serve the queue. Shared-queue disciplines additionally
	// claim the queue's service turn; sequential execution means the claim
	// cannot fail here (see sched.GroupPolicy — in the live runtime the
	// claim runs before the trylock as an admission filter), so in the twin
	// the counter is an exact tally of the service turns each queue began.
	if r.group != nil {
		r.group.ClaimTurn(q)
	}
	if r.Cfg.Tracer != nil {
		r.Cfg.Tracer.Wake(now, th.id, q, true)
	}
	r.locked[q] = true
	queue := r.Queues[q]
	if r.faults != nil {
		// Blackout sync: flip the fluid model's dark bit to match the
		// injector before the poll, so a dark queue sees nv=0 while its
		// backlog accrues and a recovered one surfaces the backlog now.
		queue.SetDark(now, r.faults.QueueDark(q))
	}
	th.vacation = now - r.lastRelease[q]
	th.serviceStart = now
	nv := queue.BeginService(now, r.noisyMu(th))
	if r.pubGauges(q) {
		// N_V is the wake-time occupancy: the signal the elastic
		// controller holds at target and the work-stealing backup ranking
		// reacts to within one vacation.
		r.bus.SetOccupancy(q, nv)
		r.bus.SetTries(q, uint64(r.TriesQ[q]))
		r.bus.BumpPub(q)
	}
	if nv == 0 {
		// Empty poll: pay one rx_burst, release, stay primary.
		r.Acct.AddBusy(th.id, r.Cfg.PollCost)
		th.sliceEnd = now + r.Cfg.PollCost
		r.Eng.At(th.sliceEnd, "metronome-empty-poll", th.releaseFn)
		return
	}
	r.serveSlices(th, now)
}

// noisyMu draws the per-slice effective service rate: frequency-scaled and
// perturbed by the service-time noise of Sec. IV-B.2.
func (r *Runtime) noisyMu(th *thread) float64 {
	mu := r.MuEffective()
	if r.Cfg.MuSigma > 0 {
		noisy := mu * (1 + r.Cfg.MuSigma*th.rng.NormFloat64())
		if floor := 0.3 * mu; noisy < floor {
			noisy = floor
		}
		mu = noisy
	}
	return mu
}

// serveSlices advances the busy period slice by slice so that overload and
// time-varying arrival rates stay observable; the service rate is re-drawn
// each slice (th.serveFn) so noise averages out over long busy periods.
// The serving thread owns th.queue until finishCycle, so the pre-bound
// callbacks read the cycle state back off the thread.
func (r *Runtime) serveSlices(th *thread, sliceStart float64) {
	queue := r.Queues[th.queue]
	done, end := queue.ServeSlice(r.Cfg.MaxSlice)
	r.Acct.AddBusy(th.id, end-sliceStart)
	th.sliceEnd = end
	if !done {
		r.Eng.At(end, "metronome-serve", th.serveFn)
		return
	}
	r.Eng.At(end, "metronome-release", th.releaseFn)
}

// finishCycle releases the lock, hands the cycle to the policy engine —
// which folds it into the load estimate and re-evaluates TS — and puts the
// thread back to sleep as the (new) primary of this queue.
func (r *Runtime) finishCycle(th *thread) {
	q := th.queue
	now := th.sliceEnd
	busy := now - th.serviceStart
	r.locked[q] = false
	r.lastRelease[q] = now
	r.Cycles.Inc()
	r.CyclesQ[q]++
	r.CyclesByThread[th.id]++
	ts := r.policy.ObserveCycle(q, busy, th.vacation)
	if r.Cfg.OnCycle != nil {
		r.Cfg.OnCycle(q, th.vacation, busy)
	}
	if r.Cfg.Tracer != nil {
		r.Cfg.Tracer.Release(now, th.id, q, busy)
	}
	if r.pubGauges(q) {
		queue := r.Queues[q]
		r.bus.SetOccupancy(q, 0) // drained by construction of EndService
		if dt := now - r.occIntAt[q]; dt > 0 {
			// EndService just accrued the fluid model's occupancy integral
			// up to now, so the cycle-window average is exact here.
			integ := queue.OccIntegral()
			r.bus.SetOccAvg(q, (integ-r.occIntLast[q])/dt)
			r.occIntLast[q] = integ
			r.occIntAt[q] = now
		}
		r.bus.SetRho(q, r.policy.Rho(q))
		r.bus.SetDrops(q, uint64(queue.Drops))
		r.bus.SetRx(q, uint64(queue.RxPackets))
		r.bus.SetThreadBusy(th.id, r.Acct.Busy(th.id))
		r.bus.BumpPub(q)
	}
	if r.bus != nil {
		// The heartbeat publishes even when the queue's gauges are frozen:
		// staleness is a property of the telemetry path, liveness of the
		// thread — the health layer tells them apart by which one moves.
		r.bus.SetHeartbeat(th.id, now)
	}
	if th.retired {
		// Retired mid-service: the cycle completed cleanly, now park
		// instead of re-arming (see SetTeamSize).
		th.parked = true
		return
	}
	// Shared-queue disciplines keep service groups stable: a member that
	// served a foreign queue as backup returns home and re-arms its home
	// queue's member timeout, so each group actually holds the size its
	// eq. (13) timeout assumes.
	if r.group != nil {
		if home := r.group.HomeQueue(th.id); home != q {
			th.queue = home
			ts = r.policy.TS(home)
		}
	}
	if r.dephase != nil {
		ts = r.dephase.Dephase(th.id, th.queue, ts, false)
	}
	r.sleepTraced(th, ts, false)
}

// sleep re-arms th's wakeup after the requested timeout plus the sampled
// sleep-service and scheduler overheads. A zero timeout (the busypoll
// discipline) never enters the sleep service: the thread loops straight
// into its next trylock after exactly the wake-path work it is charged, so
// a poller accounts ~100% CPU like Listing 1.
func (r *Runtime) sleep(th *thread, req float64) {
	if req <= 0 {
		// Floor the loop iteration like the wake model floors delays:
		// with WakeCost configured to zero the engine must still advance,
		// or the spin would re-enqueue at the same instant forever. The
		// floored iteration is charged so the poller stays ~100% on-CPU
		// even then (wakeup charges nothing when WakeCost is zero).
		spin := r.Cfg.WakeCost
		if spin <= 0 {
			spin = 100e-9
			r.Acct.AddBusy(th.id, spin)
		}
		r.Eng.After(spin, "metronome-spin", th.wakeFn)
		return
	}
	delay := th.wake.Delay(req, th.core)
	r.Eng.After(delay, "metronome-wake", th.wakeFn)
}

func (r *Runtime) sleepTraced(th *thread, req float64, backup bool) {
	if r.Cfg.Tracer != nil {
		r.Cfg.Tracer.Sleep(r.Eng.Now(), th.id, req, backup)
	}
	r.sleep(th, req)
}

// Metrics summarises a finished run over a wall-clock window.
type Metrics struct {
	Wall          float64
	CPUPercent    float64
	BusyTries     int64
	Tries         int64
	BusyTryFrac   float64
	Cycles        int64
	CyclesQ       []int64
	RxPackets     int64
	Served        int64
	Drops         int64
	LossRate      float64
	MeanVacation  float64
	MeanBusy      float64
	MeanNV        float64
	RhoEst        []float64
	TSNow         []float64
	Latency       stats.Boxplot
	LatencyStd    float64
	ThroughputPPS float64
}

// Snapshot computes run metrics over the window [0, wall] (callers reset
// queue stats after warm-up to window-align them).
//
// The slices the returned Metrics carries (CyclesQ, RhoEst, TSNow) and its
// latency summary are built in buffers the Runtime reuses across calls, so
// sampling metrics mid-run at high frequency allocates nothing once the
// buffers are warm. They are valid until the next Snapshot on the same
// Runtime; a caller that retains a Metrics across snapshots must copy
// them.
func (r *Runtime) Snapshot(wall float64) Metrics {
	n := len(r.Queues)
	if cap(r.snapCyclesQ) < n {
		r.snapCyclesQ = make([]int64, n)
	}
	if cap(r.snapFloats) < 2*n {
		r.snapFloats = make([]float64, 2*n)
	}
	m := Metrics{
		Wall:        wall,
		CPUPercent:  r.Acct.UsagePercent(wall),
		BusyTries:   r.BusyTries.Value,
		Tries:       r.Tries.Value,
		BusyTryFrac: r.BusyTryFraction(),
		Cycles:      r.Cycles.Value,
		CyclesQ:     r.snapCyclesQ[:n],
		RhoEst:      r.snapFloats[:0:n],
		TSNow:       r.snapFloats[n : n : 2*n],
	}
	copy(m.CyclesQ, r.CyclesQ)
	var vac, busy, nv stats.Welford
	r.snapLat.Reset()
	for q, queue := range r.Queues {
		m.RxPackets += queue.RxPackets
		m.Served += queue.Served
		m.Drops += queue.Drops
		vac.Merge(&queue.VacObs)
		busy.Merge(&queue.BusyObs)
		nv.Merge(&queue.NVObs)
		r.snapLat.Merge(&queue.Lat)
		m.RhoEst = append(m.RhoEst, r.Rho(q))
		m.TSNow = append(m.TSNow, r.TS(q))
	}
	offered := m.RxPackets + m.Drops
	if offered > 0 {
		m.LossRate = float64(m.Drops) / float64(offered)
	}
	m.MeanVacation = vac.Mean()
	m.MeanBusy = busy.Mean()
	m.MeanNV = nv.Mean()
	m.Latency = r.snapLat.Box()
	m.LatencyStd = r.snapLat.Std()
	if wall > 0 {
		m.ThroughputPPS = float64(m.Served) / wall
	}
	return m
}
