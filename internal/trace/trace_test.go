package trace

import (
	"bytes"
	"strings"
	"testing"

	"metronome/internal/core"
	"metronome/internal/nic"
	"metronome/internal/sim"
	"metronome/internal/traffic"
	"metronome/internal/xrand"
)

func TestRecorderSpans(t *testing.T) {
	r := NewRecorder(0, 100e-6)
	r.Sleep(0, 0, 10e-6, false)
	r.Wake(12e-6, 0, 0, true)
	r.Release(20e-6, 0, 0, 8e-6)
	r.Sleep(20e-6, 0, 10e-6, false)
	r.Wake(33e-6, 0, 0, false) // lost a race this time
	r.Sleep(33e-6, 0, 500e-6, true)

	var buf bytes.Buffer
	r.Render(&buf, 100)
	out := buf.String()
	if !strings.Contains(out, "T0 |") {
		t.Fatalf("no thread row:\n%s", out)
	}
	for _, marker := range []string{"#", ".", "x", "_"} {
		if !strings.Contains(out, marker) {
			t.Errorf("marker %q missing:\n%s", marker, out)
		}
	}
}

func TestRecorderClipsWindow(t *testing.T) {
	r := NewRecorder(10e-6, 20e-6)
	r.Sleep(0, 0, 5e-6, false)
	r.Wake(30e-6, 0, 0, true) // sleep span 0..30 clipped to 10..20
	var buf bytes.Buffer
	r.Render(&buf, 50)
	row := buf.String()
	if strings.Count(row, ".") == 0 {
		t.Fatalf("clipped sleep missing:\n%s", row)
	}
}

func TestRecorderEmptyWindow(t *testing.T) {
	r := NewRecorder(5, 5)
	var buf bytes.Buffer
	r.Render(&buf, 10)
	if !strings.Contains(buf.String(), "empty") {
		t.Fatal("empty window not reported")
	}
}

func TestEndToEndWithRuntime(t *testing.T) {
	// Wire the recorder into a real simulated run and check that all
	// three thread archetypes appear (serving, TS-sleeping, TL-backup).
	rec := NewRecorder(1e-3, 1.5e-3)
	cfg := core.DefaultConfig()
	cfg.Seed = 4
	cfg.Tracer = rec
	eng := sim.New()
	q := nic.NewQueue(0, traffic.CBR{PPS: 14.88e6}, xrand.New(4), nic.DefaultOptions())
	rt := core.New(eng, []*nic.Queue{q}, cfg)
	rt.Start()
	eng.RunUntil(2e-3)

	var buf bytes.Buffer
	rec.Render(&buf, 120)
	out := buf.String()
	if strings.Count(out, "T") < 3 {
		t.Fatalf("expected 3 thread rows:\n%s", out)
	}
	if !strings.Contains(out, "#") {
		t.Errorf("nobody served in the window:\n%s", out)
	}
	if !strings.Contains(out, ".") {
		t.Errorf("nobody slept TS in the window:\n%s", out)
	}
}
