// Package trace records and renders thread-state timelines — a textual
// version of the paper's Figure 3, showing how primaries and backups hand
// a queue around over time.
package trace

import (
	"fmt"
	"io"
	"strings"
)

// state of one thread over an interval.
type state byte

const (
	stateSleep  state = '.'
	stateBackup state = '_' // sleeping the long TL after a lost race
	stateBusy   state = '#' // serving a queue
	stateTryB   state = 'x' // woke, lost the race
)

type span struct {
	from, to float64
	s        state
}

// Recorder implements core.Tracer, collecting spans per thread within a
// bounded window.
type Recorder struct {
	From, To float64 // recording window in simulation seconds

	spans     map[int][]span
	sleepFrom map[int]float64
	busyFrom  map[int]float64
	sleepKind map[int]state
}

// NewRecorder records thread activity inside [from, to].
func NewRecorder(from, to float64) *Recorder {
	return &Recorder{
		From: from, To: to,
		spans:     map[int][]span{},
		sleepFrom: map[int]float64{},
		busyFrom:  map[int]float64{},
		sleepKind: map[int]state{},
	}
}

func (r *Recorder) in(t float64) bool { return t >= r.From && t <= r.To }

func (r *Recorder) add(thread int, from, to float64, s state) {
	if to < r.From || from > r.To || to <= from {
		return
	}
	if from < r.From {
		from = r.From
	}
	if to > r.To {
		to = r.To
	}
	r.spans[thread] = append(r.spans[thread], span{from, to, s})
}

// Wake implements core.Tracer.
func (r *Recorder) Wake(t float64, thread, queue int, won bool) {
	if from, ok := r.sleepFrom[thread]; ok {
		kind := r.sleepKind[thread]
		r.add(thread, from, t, kind)
		delete(r.sleepFrom, thread)
	}
	if won {
		r.busyFrom[thread] = t
	} else if r.in(t) {
		// a lost race is an instantaneous event; mark a sliver
		r.add(thread, t, t+1e-7, stateTryB)
	}
}

// Release implements core.Tracer.
func (r *Recorder) Release(t float64, thread, queue int, busy float64) {
	if from, ok := r.busyFrom[thread]; ok {
		r.add(thread, from, t, stateBusy)
		delete(r.busyFrom, thread)
	}
}

// Sleep implements core.Tracer.
func (r *Recorder) Sleep(t float64, thread int, req float64, backup bool) {
	r.sleepFrom[thread] = t
	if backup {
		r.sleepKind[thread] = stateBackup
	} else {
		r.sleepKind[thread] = stateSleep
	}
}

// Render draws one row per thread over the window, width columns wide.
// Legend: '#' serving, 'x' lost race, '.' primary sleep (TS), '_' backup
// sleep (TL).
func (r *Recorder) Render(w io.Writer, width int) {
	if width <= 0 {
		width = 100
	}
	span := r.To - r.From
	if span <= 0 {
		fmt.Fprintln(w, "trace: empty window")
		return
	}
	// stable thread ordering
	maxThread := -1
	for id := range r.spans {
		if id > maxThread {
			maxThread = id
		}
	}
	fmt.Fprintf(w, "timeline %.0f..%.0f us, one row per thread ('#'=serving, 'x'=lost race, '.'=TS sleep, '_'=TL sleep)\n",
		r.From*1e6, r.To*1e6)
	for id := 0; id <= maxThread; id++ {
		row := []byte(strings.Repeat(" ", width))
		for _, sp := range r.spans[id] {
			c0 := int((sp.from - r.From) / span * float64(width))
			c1 := int((sp.to - r.From) / span * float64(width))
			if c1 == c0 {
				c1 = c0 + 1
			}
			for c := c0; c < c1 && c < width; c++ {
				if c < 0 {
					continue
				}
				// busy and try markers win over sleep fill
				if row[c] == ' ' || sp.s == stateBusy || sp.s == stateTryB {
					row[c] = byte(sp.s)
				}
			}
		}
		fmt.Fprintf(w, "T%d |%s|\n", id, string(row))
	}
}
