package faults

import (
	"testing"

	"metronome/internal/sim"
)

func TestThreadFaultLifecycle(t *testing.T) {
	f := New(4, 2)
	if f.Dead(0) || f.Dead(99) || f.Dead(-1) {
		t.Fatal("fresh injector reports deaths")
	}
	f.KillThread(1)
	if !f.Dead(1) {
		t.Fatal("KillThread(1) not visible")
	}
	f.ReviveThread(1)
	if f.Dead(1) {
		t.Fatal("ReviveThread(1) not visible")
	}
	// Out-of-range sets must be ignored, not fault.
	f.KillThread(99)
	f.KillThread(-1)
	f.StallThread(99, 1)

	if _, ok := f.StalledUntil(0); ok {
		t.Fatal("fresh thread reports a stall")
	}
	f.StallThread(0, 0.25)
	until, ok := f.StalledUntil(0)
	if !ok || until != 0.25 {
		t.Fatalf("StalledUntil(0) = %v,%v want 0.25,true", until, ok)
	}
	if _, ok := f.StalledUntil(99); ok {
		t.Fatal("out-of-range thread reports a stall")
	}
}

func TestQueueFaultLifecycle(t *testing.T) {
	f := New(2, 3)
	f.SetQueueDark(1, true)
	f.FreezeTelemetry(2, true)
	if !f.QueueDark(1) || f.QueueDark(0) || f.QueueDark(2) {
		t.Fatal("dark flags wrong")
	}
	if !f.TelemetryFrozen(2) || f.TelemetryFrozen(1) {
		t.Fatal("frozen flags wrong")
	}
	f.SetQueueDark(1, false)
	f.FreezeTelemetry(2, false)
	if f.QueueDark(1) || f.TelemetryFrozen(2) {
		t.Fatal("clears not visible")
	}
	if f.QueueDark(99) || f.TelemetryFrozen(-1) {
		t.Fatal("out-of-range queues report faults")
	}
}

func TestControllerSuppression(t *testing.T) {
	f := New(1, 1)
	if f.ControllerSuppressed() {
		t.Fatal("fresh injector suppresses the controller")
	}
	f.SuppressController(true)
	if !f.ControllerSuppressed() {
		t.Fatal("SuppressController(true) not visible")
	}
	f.SuppressController(false)
	if f.ControllerSuppressed() {
		t.Fatal("SuppressController(false) not visible")
	}
}

func TestApplyCoversEveryKind(t *testing.T) {
	f := New(2, 2)
	f.Apply(Event{Kind: ThreadStall, Target: 0, Until: 1})
	if _, ok := f.StalledUntil(0); !ok {
		t.Fatal("ThreadStall not applied")
	}
	f.Apply(Event{Kind: ThreadDeath, Target: 1})
	if !f.Dead(1) {
		t.Fatal("ThreadDeath not applied")
	}
	f.Apply(Event{Kind: ThreadRevive, Target: 1})
	if f.Dead(1) {
		t.Fatal("ThreadRevive not applied")
	}
	f.Apply(Event{Kind: QueueBlackout, Target: 0})
	if !f.QueueDark(0) {
		t.Fatal("QueueBlackout not applied")
	}
	f.Apply(Event{Kind: QueueRecover, Target: 0})
	if f.QueueDark(0) {
		t.Fatal("QueueRecover not applied")
	}
	f.Apply(Event{Kind: TelemetryFreeze, Target: 1})
	if !f.TelemetryFrozen(1) {
		t.Fatal("TelemetryFreeze not applied")
	}
	f.Apply(Event{Kind: TelemetryThaw, Target: 1})
	if f.TelemetryFrozen(1) {
		t.Fatal("TelemetryThaw not applied")
	}
	f.Apply(Event{Kind: ControllerDown})
	if !f.ControllerSuppressed() {
		t.Fatal("ControllerDown not applied")
	}
	f.Apply(Event{Kind: ControllerUp})
	if f.ControllerSuppressed() {
		t.Fatal("ControllerUp not applied")
	}
}

func TestScheduleFiresInVirtualTime(t *testing.T) {
	eng := sim.New()
	f := New(2, 2)
	Schedule(eng, f, []Event{
		{At: 0.10, Kind: QueueBlackout, Target: 0},
		{At: 0.30, Kind: QueueRecover, Target: 0},
		{At: 0.20, Kind: ThreadDeath, Target: 1},
	})
	eng.RunUntil(0.05)
	if f.QueueDark(0) || f.Dead(1) {
		t.Fatal("faults fired early")
	}
	eng.RunUntil(0.15)
	if !f.QueueDark(0) {
		t.Fatal("blackout did not fire at 0.10")
	}
	eng.RunUntil(0.25)
	if !f.Dead(1) {
		t.Fatal("death did not fire at 0.20")
	}
	eng.RunUntil(0.35)
	if f.QueueDark(0) {
		t.Fatal("recovery did not fire at 0.30")
	}
	if !f.Dead(1) {
		t.Fatal("death should persist")
	}
}

func TestStormSchedule(t *testing.T) {
	evs := Storm(nil, 3, 0.1, 0.5, 0.2, 0.05)
	if len(evs) != 2 {
		t.Fatalf("storm events = %d, want 2", len(evs))
	}
	for i, ev := range evs {
		if ev.Kind != ThreadStall || ev.Target != 3 {
			t.Fatalf("event %d = %+v", i, ev)
		}
		if ev.Until <= ev.At || ev.Until > 0.5 {
			t.Fatalf("event %d stall window [%v,%v] out of bounds", i, ev.At, ev.Until)
		}
	}
	// A storm whose last stall would overrun `before` is clipped to it.
	evs = Storm(nil, 0, 0.0, 0.11, 0.1, 0.5)
	if last := evs[len(evs)-1]; last.Until != 0.11 {
		t.Fatalf("last stall end = %v, want clipped 0.11", last.Until)
	}
}

func TestKindString(t *testing.T) {
	if ThreadStall.String() != "thread-stall" || ControllerUp.String() != "controller-up" {
		t.Fatal("kind names wrong")
	}
	if Kind(99).String() == "" {
		t.Fatal("unknown kind must still render")
	}
}
