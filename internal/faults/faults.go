// Package faults is the deterministic fault-injection plane underneath the
// robustness experiments: a fixed set of atomic fault flags — per-thread
// stalls and deaths, per-queue blackouts and telemetry freezes, a
// controller-outage switch — that both execution substrates consult on
// their cycle paths and an experiment (or a chaos test) flips on a
// schedule.
//
// The injector itself is clockless and substrate-agnostic, exactly like the
// telemetry bus it mirrors: the discrete-event twin flips flags from
// ordinary engine events (Schedule), so a faulted sweep stays byte-identical
// at any experiment-harness parallelism; the live runtime checks the same
// atomics from its retrieval goroutines, so a test can flip them from any
// goroutine under -race. Reads are one atomic load behind a nil check — a
// deployment without an injector pays only the nil branch.
//
// The fault vocabulary is the failure surface PR 7's control loop must
// survive (ISSUE 7): a noisy neighbor preempting a member through k service
// turns (StallThread), a member dying outright (KillThread), a NIC queue
// going dark and recovering (SetQueueDark), a queue's gauges freezing at
// their last published value (FreezeTelemetry), and the controller's tick
// source being suppressed for a window (SuppressController).
package faults

import (
	"fmt"
	"math"
	"sync/atomic"

	"metronome/internal/sim"
)

// threadFault is one thread's fault state, padded so the live substrate's
// per-goroutine hot-path loads never false-share a line with a neighbour's
// (the same layout rule as the telemetry bus slots).
type threadFault struct {
	stallUntil atomic.Uint64 // float64 bits; 0 = no stall
	dead       atomic.Bool
	_          [55]byte
}

// queueFault is one queue's fault state, padded like threadFault.
type queueFault struct {
	dark   atomic.Bool
	frozen atomic.Bool
	_      [62]byte
}

// Injector holds the fault flags for one deployment: nt thread slots and nq
// queue slots, sized once at construction (size for the elastic budget, not
// the initial team — a resize beyond the sized arrays is ignored on set and
// healthy on query, never a fault of its own).
type Injector struct {
	nt, nq  int
	threads []threadFault
	queues  []queueFault
	ctrl    atomic.Bool
	obs     func(Event)
}

// Observe registers fn to be called synchronously from Apply with every
// fault event as it lands — the observability plane's hook (see
// obsv.AttachFaults) for recording flag flips with their substrate
// timestamps. One observer; nil clears. Register before any event can
// fire (before faults.Schedule on the sim substrate, before the run
// starts live): the registration itself is not synchronized against a
// concurrent Apply.
func (f *Injector) Observe(fn func(Event)) { f.obs = fn }

// New builds an injector over maxThreads thread slots and nQueues queues.
func New(maxThreads, nQueues int) *Injector {
	if maxThreads < 1 {
		maxThreads = 1
	}
	if nQueues < 1 {
		nQueues = 1
	}
	return &Injector{
		nt:      maxThreads,
		nq:      nQueues,
		threads: make([]threadFault, maxThreads),
		queues:  make([]queueFault, nQueues),
	}
}

// Threads returns the number of thread slots.
func (f *Injector) Threads() int { return f.nt }

// Queues returns the number of queue slots.
func (f *Injector) Queues() int { return f.nq }

// StallThread preempts thread id until the given substrate time: its wakeups
// before then do not contend (the noisy neighbor holds the core), modelling
// a member that sleeps through k service turns. A later until extends an
// ongoing stall; a past one clears it.
func (f *Injector) StallThread(id int, until float64) {
	if id < 0 || id >= f.nt {
		return
	}
	f.threads[id].stallUntil.Store(math.Float64bits(until))
}

// StalledUntil returns the end of thread id's stall window and whether one
// is set. Callers compare against their own clock: the injector stores, it
// does not tell time.
func (f *Injector) StalledUntil(id int) (float64, bool) {
	if id < 0 || id >= f.nt {
		return 0, false
	}
	bits := f.threads[id].stallUntil.Load()
	if bits == 0 {
		return 0, false
	}
	return math.Float64frombits(bits), true
}

// KillThread parks thread id permanently: its next wakeup parks instead of
// contending, and resizes that re-admit the id find it dead again.
func (f *Injector) KillThread(id int) {
	if id < 0 || id >= f.nt {
		return
	}
	f.threads[id].dead.Store(true)
}

// ReviveThread clears a thread death (test and recovery-scenario hook). A
// revived thread re-enters through the substrate's ordinary re-admission
// path: a resize or placement change that covers its id.
func (f *Injector) ReviveThread(id int) {
	if id < 0 || id >= f.nt {
		return
	}
	f.threads[id].dead.Store(false)
}

// Dead reports whether thread id has been killed.
func (f *Injector) Dead(id int) bool {
	if id < 0 || id >= f.nt {
		return false
	}
	return f.threads[id].dead.Load()
}

// SetQueueDark blacks out (or recovers) queue q: polls find nothing while
// arrivals keep accruing against the ring — the NIC-side link flap the
// substrates model via their queue's dark mode.
func (f *Injector) SetQueueDark(q int, dark bool) {
	if q < 0 || q >= f.nq {
		return
	}
	f.queues[q].dark.Store(dark)
}

// QueueDark reports whether queue q is blacked out.
func (f *Injector) QueueDark(q int) bool {
	if q < 0 || q >= f.nq {
		return false
	}
	return f.queues[q].dark.Load()
}

// FreezeTelemetry freezes (or thaws) queue q's telemetry: the substrates
// skip every per-queue publish for q while frozen, so its bus gauges and
// counters hold their last values — the staleness the control loop's health
// layer must reject. Per-thread signals (heartbeats, duty) stay live; the
// fault is the queue's, not the thread's.
func (f *Injector) FreezeTelemetry(q int, frozen bool) {
	if q < 0 || q >= f.nq {
		return
	}
	f.queues[q].frozen.Store(frozen)
}

// TelemetryFrozen reports whether queue q's telemetry is frozen.
func (f *Injector) TelemetryFrozen(q int) bool {
	if q < 0 || q >= f.nq {
		return false
	}
	return f.queues[q].frozen.Load()
}

// SuppressController suppresses (or restores) the elastic controller's
// ticks. The injector only holds the flag: tick sources (the experiment
// harness's engine ticker, a live deployment's wall-clock loop) consult it
// before invoking Tick.
func (f *Injector) SuppressController(down bool) { f.ctrl.Store(down) }

// ControllerSuppressed reports whether controller ticks are suppressed.
func (f *Injector) ControllerSuppressed() bool { return f.ctrl.Load() }

// Kind enumerates the schedulable fault events.
type Kind int

const (
	// ThreadStall stalls Target until Until (StallThread).
	ThreadStall Kind = iota
	// ThreadDeath kills Target permanently (KillThread).
	ThreadDeath
	// ThreadRevive clears Target's death (ReviveThread).
	ThreadRevive
	// QueueBlackout blacks out queue Target (SetQueueDark true).
	QueueBlackout
	// QueueRecover recovers queue Target (SetQueueDark false).
	QueueRecover
	// TelemetryFreeze freezes queue Target's gauges (FreezeTelemetry true).
	TelemetryFreeze
	// TelemetryThaw thaws queue Target's gauges (FreezeTelemetry false).
	TelemetryThaw
	// ControllerDown suppresses controller ticks (SuppressController true).
	ControllerDown
	// ControllerUp restores controller ticks (SuppressController false).
	ControllerUp
)

var kindNames = [...]string{
	"thread-stall", "thread-death", "thread-revive",
	"queue-blackout", "queue-recover",
	"telemetry-freeze", "telemetry-thaw",
	"controller-down", "controller-up",
}

// String names the kind for traces and test output.
func (k Kind) String() string {
	if k < 0 || int(k) >= len(kindNames) {
		return fmt.Sprintf("faults.Kind(%d)", int(k))
	}
	return kindNames[k]
}

// Event is one scheduled fault: at substrate time At, apply Kind to Target
// (a thread id for thread faults, a queue id for queue faults, ignored for
// controller faults). Until is ThreadStall's stall-end time.
type Event struct {
	At     float64
	Kind   Kind
	Target int
	Until  float64
}

// Apply applies one event's state change to the injector (the timestamp is
// the scheduler's business — Schedule uses engine events, live callers their
// own clocks).
func (f *Injector) Apply(ev Event) {
	switch ev.Kind {
	case ThreadStall:
		f.StallThread(ev.Target, ev.Until)
	case ThreadDeath:
		f.KillThread(ev.Target)
	case ThreadRevive:
		f.ReviveThread(ev.Target)
	case QueueBlackout:
		f.SetQueueDark(ev.Target, true)
	case QueueRecover:
		f.SetQueueDark(ev.Target, false)
	case TelemetryFreeze:
		f.FreezeTelemetry(ev.Target, true)
	case TelemetryThaw:
		f.FreezeTelemetry(ev.Target, false)
	case ControllerDown:
		f.SuppressController(true)
	case ControllerUp:
		f.SuppressController(false)
	default:
		panic(fmt.Sprintf("faults: unknown event kind %d", int(ev.Kind)))
	}
	if f.obs != nil {
		f.obs(ev)
	}
}

// Schedule registers every event on the engine as an ordinary virtual-time
// event, which is what keeps a faulted simulation a pure function of its
// seed: fault flips order against wakeups and controller ticks by (time,
// scheduling sequence) exactly like any other event, at any experiment-
// harness parallelism.
func Schedule(eng *sim.Engine, f *Injector, evs []Event) {
	for _, ev := range evs {
		ev := ev
		eng.At(ev.At, "fault-"+ev.Kind.String(), func() { f.Apply(ev) })
	}
}

// Storm appends a periodic stall storm for one thread: starting at from,
// every period the thread stalls for stall seconds, until before. It returns
// the extended schedule — the straggler-storm building block of the
// fig-faults experiment and the chaos soak.
func Storm(evs []Event, thread int, from, before, period, stall float64) []Event {
	for t := from; t < before; t += period {
		end := t + stall
		if end > before {
			end = before
		}
		evs = append(evs, Event{At: t, Kind: ThreadStall, Target: thread, Until: end})
	}
	return evs
}
