package cpu

import (
	"math"
	"testing"

	"metronome/internal/hrtimer"
	"metronome/internal/stats"
	"metronome/internal/xrand"
)

func TestNiceWeightTable(t *testing.T) {
	// Kernel anchor values.
	if NiceWeight(0) != 1024 {
		t.Errorf("nice 0 weight = %d", NiceWeight(0))
	}
	if NiceWeight(-20) != 88761 {
		t.Errorf("nice -20 weight = %d", NiceWeight(-20))
	}
	if NiceWeight(19) != 15 {
		t.Errorf("nice 19 weight = %d", NiceWeight(19))
	}
	// Out-of-range clamps.
	if NiceWeight(-100) != 88761 || NiceWeight(100) != 15 {
		t.Error("clamping broken")
	}
	// Monotone decreasing.
	for n := -19; n <= 19; n++ {
		if NiceWeight(n) >= NiceWeight(n-1) {
			t.Fatalf("weights not decreasing at nice %d", n)
		}
	}
}

func TestNiceStepRatio(t *testing.T) {
	// Each nice level is ~1.25x CPU; check the multiplicative design.
	for n := -20; n < 19; n++ {
		ratio := float64(NiceWeight(n)) / float64(NiceWeight(n+1))
		if ratio < 1.15 || ratio > 1.35 {
			t.Errorf("nice %d -> %d ratio %.3f", n, n+1, ratio)
		}
	}
}

func TestFairShare(t *testing.T) {
	// Two equal entities: 50/50 — the static DPDK vs ferret scenario under
	// group fairness.
	if got := FairShare(1024, 1024); got != 0.5 {
		t.Errorf("equal share = %v", got)
	}
	// nice -20 vs nice 19: essentially everything.
	got := FairShare(NiceWeight(-20), NiceWeight(19))
	if got < 0.999 {
		t.Errorf("-20 vs 19 share = %v", got)
	}
	if FairShare(0) != 0 {
		t.Error("zero weight yields zero share")
	}
	// Sums to one across entities.
	a := FairShare(1024, 512, 256)
	b := FairShare(512, 1024, 256)
	c := FairShare(256, 1024, 512)
	if math.Abs(a+b+c-1) > 1e-12 {
		t.Errorf("shares sum to %v", a+b+c)
	}
}

func TestWakeDelayIdleCore(t *testing.T) {
	rng := xrand.New(1)
	wm := NewWakeModel(hrtimer.NewModel(hrtimer.HRSleep, rng.Split()), DefaultWakeConfig(), rng.Split())
	idle := NewCore(0)
	var w stats.Welford
	for i := 0; i < 20000; i++ {
		w.Add(wm.Delay(10e-6, idle))
	}
	// Mean should track the sleep-service latency (~13.4 us), the tail
	// contributing only ~2e-4 * 0.4ms ~= 80 ns.
	if w.Mean() < 13e-6 || w.Mean() > 14e-6 {
		t.Errorf("idle-core mean wake delay = %v us", w.Mean()*1e6)
	}
}

func TestWakeDelayContendedCore(t *testing.T) {
	rng := xrand.New(2)
	wm := NewWakeModel(hrtimer.NewModel(hrtimer.HRSleep, rng.Split()), DefaultWakeConfig(), rng.Split())
	busy := NewCore(0)
	busy.BusyWith = 1
	idle := NewCore(1)
	var wBusy, wIdle stats.Welford
	for i := 0; i < 20000; i++ {
		wBusy.Add(wm.Delay(10e-6, busy))
		wIdle.Add(wm.Delay(10e-6, idle))
	}
	if wBusy.Mean() <= wIdle.Mean()+3e-6 {
		t.Errorf("contended core not slower: %v vs %v", wBusy.Mean(), wIdle.Mean())
	}
}

func TestWakeDelayTail(t *testing.T) {
	rng := xrand.New(3)
	cfg := DefaultWakeConfig()
	cfg.TailProb = 0.05 // exaggerate to measure
	wm := NewWakeModel(hrtimer.NewModel(hrtimer.HRSleep, rng.Split()), cfg, rng.Split())
	over := 0
	const n = 50000
	for i := 0; i < n; i++ {
		if wm.Delay(10e-6, nil) > 100e-6 {
			over++
		}
	}
	frac := float64(over) / n
	// Lognormal(-8.1, 0.6) exceeds 100us-13us with probability ~0.97, so
	// the fraction of long wakes should be close to TailProb.
	if frac < 0.03 || frac > 0.07 {
		t.Errorf("tail fraction = %v, want ~0.05", frac)
	}
}

func TestWakeDelayNoTailWhenDisabled(t *testing.T) {
	rng := xrand.New(4)
	cfg := WakeConfig{}
	wm := NewWakeModel(hrtimer.NewModel(hrtimer.HRSleep, rng.Split()), cfg, rng.Split())
	for i := 0; i < 20000; i++ {
		if wm.Delay(10e-6, nil) > 20e-6 {
			t.Fatal("long delay with tail disabled")
		}
	}
}

func TestAccounting(t *testing.T) {
	a := NewAccounting(3)
	a.SetName(0, "rx0")
	a.AddBusy(0, 1.5)
	a.AddBusy(1, 0.5)
	a.AddBusy(0, 0.5)
	if a.Busy(0) != 2.0 || a.Busy(1) != 0.5 || a.Busy(2) != 0 {
		t.Errorf("busy = %v %v %v", a.Busy(0), a.Busy(1), a.Busy(2))
	}
	if a.TotalBusy() != 2.5 {
		t.Errorf("total = %v", a.TotalBusy())
	}
	// 2.5 core-seconds over 2 wall seconds = 125%: multi-thread usage can
	// exceed 100%, as in Fig 13.
	if got := a.UsagePercent(2); got != 125 {
		t.Errorf("usage = %v%%", got)
	}
	if a.UsagePercent(0) != 0 {
		t.Error("zero window should report 0")
	}
}

func TestAccountingPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on negative busy time")
		}
	}()
	NewAccounting(1).AddBusy(0, -1)
}

func TestJobDurationAloneVsShared(t *testing.T) {
	// Fig 12 scenario: ferret alone on one core vs sharing with a
	// continuously-polling DPDK thread (50% share + penalty).
	ferret := Job{Name: "ferret", Work: 240, Nice: 19}
	alone := ferret.Duration([]float64{1}, 1)
	if alone != 240 {
		t.Errorf("alone = %v", alone)
	}
	shared := ferret.Duration([]float64{0.5}, 1.45)
	// Paper: ~3x the standalone duration.
	if shared/alone < 2.5 || shared/alone > 3.5 {
		t.Errorf("shared/alone = %v, want ~3x", shared/alone)
	}
}

func TestJobDurationWithMetronome(t *testing.T) {
	// Three cores each yielding ~80% to ferret (Metronome occupies ~20%
	// per core at line rate) with a small sharing penalty: close to the
	// 3-core standalone time (paper: ~10% longer).
	ferret := Job{Name: "ferret", Work: 240, Nice: 19}
	alone3 := ferret.Duration([]float64{1, 1, 1}, 1)
	with := ferret.Duration([]float64{0.8, 0.8, 0.8}, 1.05)
	ratio := with / alone3
	if ratio < 1.05 || ratio > 1.5 {
		t.Errorf("metronome sharing ratio = %v", ratio)
	}
}

func TestJobDurationEdgeCases(t *testing.T) {
	j := Job{Work: 10}
	if d := j.Duration([]float64{0, 0}, 1); d < 1e15 {
		t.Errorf("zero share should never finish, got %v", d)
	}
	// Shares clamp to [0,1].
	if d := j.Duration([]float64{5}, 0.5); d != 10 {
		t.Errorf("clamped share duration = %v", d)
	}
}
