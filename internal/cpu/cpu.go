// Package cpu models the operating-system side of the reproduction: CFS
// nice-to-weight arithmetic, fair CPU shares between packet threads and
// CPU-bound co-runners (the PARSEC ferret of Sec. V-E), the wake-up delay a
// thread experiences between its sleep timer firing and being CPU
// re-dispatched, and getrusage-style CPU accounting.
//
// The model is deliberately not a cycle-accurate CFS: Metronome's claims
// depend on (i) weight-proportional sharing on contended cores, (ii) fast
// preemption by briefly-running high-priority wakers, and (iii) a rare
// heavy tail of wake-up delays caused by other OS activity. Those three
// mechanisms are modelled explicitly and calibrated in the experiments.
package cpu

import (
	"fmt"

	"metronome/internal/hrtimer"
	"metronome/internal/xrand"
)

// niceWeights is the kernel's sched_prio_to_weight table: weight for nice
// -20 .. +19. Each nice step changes CPU share by ~1.25x.
var niceWeights = [40]int{
	88761, 71755, 56483, 46273, 36291,
	29154, 23254, 18705, 14949, 11916,
	9548, 7620, 6100, 4904, 3906,
	3121, 2501, 1991, 1586, 1277,
	1024, 820, 655, 526, 423,
	335, 272, 215, 172, 137,
	110, 87, 70, 56, 45,
	36, 29, 23, 18, 15,
}

// NiceWeight returns the CFS load weight for a nice value in [-20, 19].
func NiceWeight(nice int) int {
	if nice < -20 {
		nice = -20
	}
	if nice > 19 {
		nice = 19
	}
	return niceWeights[nice+20]
}

// FairShare returns the fraction of one CPU that an entity of weight w
// receives against competitors with the given weights, all continuously
// runnable.
func FairShare(w int, competitors ...int) float64 {
	total := w
	for _, c := range competitors {
		total += c
	}
	if total == 0 {
		return 0
	}
	return float64(w) / float64(total)
}

// Core is one simulated CPU core.
type Core struct {
	ID int
	// BusyWith counts continuously-runnable co-located threads (a static
	// DPDK poller, a ferret worker). A non-zero value makes wake-ups pay
	// the preemption cost.
	BusyWith int
	// SharePenalty inflates the work of co-scheduled CPU-bound jobs to
	// account for cache/TLB pollution and context switching when the core
	// is time-shared (1.0 = none). Calibrated against Fig 12.
	SharePenalty float64
}

// NewCore returns an idle core.
func NewCore(id int) *Core { return &Core{ID: id, SharePenalty: 1.0} }

// WakeConfig shapes the wake-up delay distribution.
type WakeConfig struct {
	// PreemptDelay is the extra dispatch latency when the core is running
	// another thread at wake time (CFS wakeup-preemption granularity).
	PreemptDelay float64
	// TailProb is the probability of a long OS-induced delay (kernel
	// daemons, IRQs, migrations) — the > TL stragglers of Fig 4.
	TailProb float64
	// TailMu/TailSigma parameterise the lognormal tail (seconds).
	TailMu, TailSigma float64
	// JitterSigma is zero-mean gaussian noise on every dispatch (run-queue
	// placement, cache refill, timer coalescing). This system-level noise
	// is what de-phases the threads' wake times — the mechanism behind the
	// paper's decorrelation assumption ("each service time, due to its
	// random duration, de-synchronizes...").
	JitterSigma float64
}

// DefaultWakeConfig matches the paper's testbed (an isolated NUMA node, so
// kernel daemons rarely interfere): ~5 us preemption cost on a contended
// core, ~0.6 us of system-level dispatch noise, and a very rare (1e-6)
// chance of a delay in the hundreds of microseconds. Robustness experiments
// raise TailProb to model shared, noisy hosts.
func DefaultWakeConfig() WakeConfig {
	return WakeConfig{
		PreemptDelay: 5e-6,
		TailProb:     1e-6,
		TailMu:       -8.1, // median ~0.3 ms
		TailSigma:    0.6,
		JitterSigma:  0.6e-6,
	}
}

// WakeModel samples the total delay between a sleep request of a given
// duration and the thread actually regaining the CPU.
type WakeModel struct {
	Sleep *hrtimer.Model
	Cfg   WakeConfig
	rng   *xrand.Rand
}

// NewWakeModel combines a sleep-service model with scheduler behaviour.
func NewWakeModel(sleep *hrtimer.Model, cfg WakeConfig, rng *xrand.Rand) *WakeModel {
	return &WakeModel{Sleep: sleep, Cfg: cfg, rng: rng}
}

// Delay returns the sampled wall time from calling the sleep service with
// request req until the thread runs again on core.
func (w *WakeModel) Delay(req float64, core *Core) float64 {
	d := w.Sleep.Actual(req)
	if w.Cfg.JitterSigma > 0 {
		d += w.Cfg.JitterSigma * w.rng.NormFloat64()
	}
	if core != nil && core.BusyWith > 0 {
		d += w.Cfg.PreemptDelay * w.rng.Uniform(0.5, 1.5)
	}
	if w.Cfg.TailProb > 0 && w.rng.Bernoulli(w.Cfg.TailProb) {
		d += w.rng.LogNormal(w.Cfg.TailMu, w.Cfg.TailSigma)
	}
	if min := req + 100e-9; d < min {
		d = min // a sleep can jitter, but never complete before its timer
	}
	return d
}

// Accounting tracks per-thread on-CPU time, the quantity getrusage()
// reported in the paper's CPU-usage figures.
type Accounting struct {
	names []string
	busy  []float64
}

// NewAccounting creates an accounting table for n threads.
func NewAccounting(n int) *Accounting {
	return &Accounting{names: make([]string, n), busy: make([]float64, n)}
}

// SetName labels thread i for reports.
func (a *Accounting) SetName(i int, name string) { a.names[i] = name }

// Len returns the number of tracked threads.
func (a *Accounting) Len() int { return len(a.busy) }

// Grow extends the table to n threads (no-op if already that large) — the
// elastic control plane adds threads mid-run and their CPU time must land
// in the same getrusage-style account.
func (a *Accounting) Grow(n int) {
	for len(a.busy) < n {
		a.busy = append(a.busy, 0)
		a.names = append(a.names, "")
	}
}

// AddBusy charges d seconds of CPU to thread i.
func (a *Accounting) AddBusy(i int, d float64) {
	if d < 0 {
		panic(fmt.Sprintf("cpu: negative busy time %v for thread %d", d, i))
	}
	a.busy[i] += d
}

// Busy returns thread i's accumulated CPU seconds.
func (a *Accounting) Busy(i int) float64 { return a.busy[i] }

// TotalBusy returns the summed CPU seconds of all threads.
func (a *Accounting) TotalBusy() float64 {
	t := 0.0
	for _, b := range a.busy {
		t += b
	}
	return t
}

// UsagePercent returns total CPU usage over a wall-clock window as a
// percentage; multiple threads can exceed 100, as in the paper's plots.
func (a *Accounting) UsagePercent(wall float64) float64 {
	if wall <= 0 {
		return 0
	}
	return a.TotalBusy() / wall * 100
}

// Job is a CPU-bound co-runner (the ferret stand-in): a fixed amount of
// core-seconds of work spread over a set of cores.
type Job struct {
	Name string
	// Work is the total core-seconds the job needs on otherwise-idle cores.
	Work float64
	Nice int
}

// Duration returns the wall-clock completion time of the job when each of
// its cores grants it the given fraction of CPU (shares[i] in [0,1]) and
// co-scheduling inflates its work by penalty (>= 1). Shares are what a
// weight-proportional scheduler yields; penalty models the cache and
// context-switch cost of time sharing, which is why a 50% share costs more
// than 2x in wall time (Fig 12's ~3x for static DPDK).
func (j Job) Duration(shares []float64, penalty float64) float64 {
	if penalty < 1 {
		penalty = 1
	}
	throughput := 0.0
	for _, s := range shares {
		if s < 0 {
			s = 0
		}
		if s > 1 {
			s = 1
		}
		throughput += s
	}
	if throughput == 0 {
		return float64(^uint(0) >> 1) // effectively never
	}
	return j.Work * penalty / throughput
}
