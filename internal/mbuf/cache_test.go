package mbuf

import (
	"sync"
	"testing"

	"metronome/internal/xrand"
)

func TestCacheBurstRoundTrip(t *testing.T) {
	p := NewPool(64)
	c := p.NewCache()
	dst := make([]*Mbuf, 32)
	if n := c.GetBurst(dst); n != 32 {
		t.Fatalf("GetBurst = %d, want 32", n)
	}
	for i, m := range dst {
		if m == nil {
			t.Fatalf("slot %d nil", i)
		}
		if m.Len != 0 || m.Meta != 0 || m.RxStampNs != 0 {
			t.Fatalf("slot %d not reset on lease", i)
		}
		m.Meta = uint64(i)
	}
	c.PutBurst(dst)
	c.Flush()
	if p.Available() != 64 {
		t.Fatalf("after flush available = %d, want 64", p.Available())
	}
}

func TestCacheAvailableUndercountsResidency(t *testing.T) {
	p := NewPool(512)
	c := p.NewCache() // keep = defaultWatermark = 256
	m, err := c.Get()
	if err != nil {
		t.Fatal(err)
	}
	// The single Get refilled one watermark span into the cache; those
	// buffers are free but invisible to Available until Flush.
	if got := p.Available(); got != 512-defaultWatermark {
		t.Fatalf("available = %d, want %d (cache holds a span)", got, 512-defaultWatermark)
	}
	c.Flush()
	m.Free()
	if p.Available() != 512 {
		t.Fatalf("after flush+free available = %d, want 512", p.Available())
	}
}

func TestCacheStatsExactUnderCaching(t *testing.T) {
	p := NewPool(8)
	c := p.NewCache()
	dst := make([]*Mbuf, 8)
	if n := c.GetBurst(dst); n != 8 {
		t.Fatalf("GetBurst = %d, want 8", n)
	}
	more := make([]*Mbuf, 4)
	if n := c.GetBurst(more); n != 0 {
		t.Fatalf("GetBurst on exhausted pool = %d, want 0", n)
	}
	if n := c.GetBurst(more); n != 0 {
		t.Fatalf("GetBurst on exhausted pool = %d, want 0", n)
	}
	allocs, fails := p.Stats()
	if allocs != 8 || fails != 2 {
		t.Fatalf("allocs=%d fails=%d, want 8 and 2 (one fail per short call)", allocs, fails)
	}
	c.PutBurst(dst)
	c.Flush()
	if p.Available() != 8 {
		t.Fatalf("available = %d", p.Available())
	}
	if allocs, _ := p.Stats(); allocs != 8 {
		t.Fatalf("PutBurst changed allocs to %d", allocs)
	}
}

func TestCacheSpillsAtThreshold(t *testing.T) {
	p := NewPool(8)
	c := p.NewCache() // keep = 8, spill threshold 16 — but pool only has 8
	dst := make([]*Mbuf, 8)
	if n := c.GetBurst(dst); n != 8 {
		t.Fatalf("GetBurst = %d", n)
	}
	// Return one at a time: the stack absorbs all 8 without spilling (below
	// the 2*keep threshold), so the ring stays empty until Flush.
	for _, m := range dst {
		c.Put(m)
	}
	if p.Available() != 0 {
		t.Fatalf("cache spilled early: available = %d", p.Available())
	}
	c.Flush()
	if p.Available() != 8 {
		t.Fatalf("after flush available = %d", p.Available())
	}
}

func TestCacheDoubleFreeAcrossCachesPanics(t *testing.T) {
	p := NewPool(4)
	a := p.NewCache()
	b := p.NewCache()
	m, err := a.Get()
	if err != nil {
		t.Fatal(err)
	}
	a.Put(m)
	defer func() {
		if recover() == nil {
			t.Fatal("double free across caches did not panic")
		}
	}()
	b.Put(m)
}

func TestCachePutBurstForeignPoolPanics(t *testing.T) {
	p1 := NewPool(2)
	p2 := NewPool(2)
	c := p1.NewCache()
	m, err := p2.Get()
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("foreign pool's buffer did not panic")
		}
	}()
	c.Put(m)
}

func TestRecyclerRoutesMixedBursts(t *testing.T) {
	p1 := NewPool(8)
	p2 := NewPool(8)
	var ms []*Mbuf
	for i := 0; i < 8; i++ {
		a, err := p1.Get()
		if err != nil {
			t.Fatal(err)
		}
		b, err := p2.Get()
		if err != nil {
			t.Fatal(err)
		}
		ms = append(ms, a, b) // alternate pools: worst case for run grouping
	}
	var rec Recycler
	rec.FreeBurst(ms)
	rec.Flush()
	if p1.Available() != 8 || p2.Available() != 8 {
		t.Fatalf("available = %d, %d, want 8, 8", p1.Available(), p2.Available())
	}
	if len(rec.caches) != 2 {
		t.Fatalf("recycler built %d caches, want 2", len(rec.caches))
	}
}

// TestPoolConservationChaos is the conservation invariant under full
// concurrency: N producer caches lease bursts and hand them to M consumer
// caches over channels while consumers churn through "team resizes"
// (periodically flushing and replacing their cache mid-run, the way elastic
// shrinks retire worker goroutines). Every buffer must come back exactly
// once — a double return panics by construction — and after all caches
// flush, the pool must hold exactly its configured size. Run under -race
// this also checks the ring's release/acquire publication: producers write
// Meta on leased buffers and consumers read it back.
func TestPoolConservationChaos(t *testing.T) {
	const (
		producers = 4
		consumers = 3
		poolSize  = 512
		rounds    = 400
	)
	p := NewPool(poolSize)
	ch := make(chan []*Mbuf, 64)
	var wg sync.WaitGroup

	for pr := 0; pr < producers; pr++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c := p.NewCache()
			defer c.Flush()
			r := xrand.New(uint64(100 + id))
			var dst [64]*Mbuf
			for i := 0; i < rounds; i++ {
				want := 1 + r.Intn(64)
				n := c.GetBurst(dst[:want])
				if n == 0 {
					continue // exhausted: consumers will return capacity
				}
				burst := make([]*Mbuf, n)
				copy(burst, dst[:n])
				for _, m := range burst {
					m.Meta = uint64(id+1)<<32 | uint64(i)
				}
				if i%7 == 0 {
					// Producer-side churn: spill mid-run like a parked thread.
					c.Flush()
				}
				ch <- burst
			}
		}(pr)
	}

	var cwg sync.WaitGroup
	for co := 0; co < consumers; co++ {
		cwg.Add(1)
		go func(id int) {
			defer cwg.Done()
			c := p.NewCache()
			defer func() { c.Flush() }() // c is rebound on resize below
			n := 0
			for burst := range ch {
				for _, m := range burst {
					if m.Meta == 0 {
						panic("unstamped buffer crossed the channel")
					}
				}
				c.PutBurst(burst)
				n++
				if n%13 == 0 {
					// Team resize: retire this cache and start a fresh one.
					c.Flush()
					c = p.NewCache()
				}
			}
		}(co)
	}

	wg.Wait()
	close(ch)
	cwg.Wait()
	if got := p.Available(); got != poolSize {
		t.Fatalf("conservation broken: available = %d, want %d", got, poolSize)
	}
	allocs, _ := p.Stats()
	if allocs <= 0 {
		t.Fatalf("chaos leased nothing (allocs=%d)", allocs)
	}
}
