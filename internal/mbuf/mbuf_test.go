package mbuf

import (
	"runtime"
	"sync"
	"testing"
)

func TestPoolExhaustionAndReuse(t *testing.T) {
	p := NewPool(2)
	a, err := p.Get()
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Get()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Get(); err != ErrExhausted {
		t.Fatalf("third Get err = %v, want ErrExhausted", err)
	}
	a.Free()
	c, err := p.Get()
	if err != nil {
		t.Fatalf("Get after Free: %v", err)
	}
	if c != a {
		t.Fatal("pool did not reuse the freed buffer")
	}
	b.Free()
	c.Free()
	if p.Available() != 2 {
		t.Fatalf("available = %d", p.Available())
	}
}

func TestStats(t *testing.T) {
	p := NewPool(1)
	m, _ := p.Get()
	p.Get() // fails
	m.Free()
	allocs, fails := p.Stats()
	if allocs != 1 || fails != 1 {
		t.Fatalf("allocs=%d fails=%d", allocs, fails)
	}
}

func TestDoubleFreePanics(t *testing.T) {
	p := NewPool(1)
	m, _ := p.Get()
	m.Free()
	defer func() {
		if recover() == nil {
			t.Fatal("double free did not panic")
		}
	}()
	m.Free()
}

func TestSetFrame(t *testing.T) {
	p := NewPool(1)
	m, _ := p.Get()
	frame := []byte{1, 2, 3, 4}
	m.SetFrame(frame)
	if m.Len != 4 {
		t.Fatalf("len = %d", m.Len)
	}
	got := m.Bytes()
	for i := range frame {
		if got[i] != frame[i] {
			t.Fatalf("bytes = %v", got)
		}
	}
	// SetFrame copies: mutating the source must not affect the mbuf.
	frame[0] = 99
	if m.Bytes()[0] == 99 {
		t.Fatal("SetFrame aliased the source")
	}
}

func TestSetFrameTruncatesOversized(t *testing.T) {
	p := NewPool(1)
	m, _ := p.Get()
	m.SetFrame(make([]byte, 5000))
	if m.Len != maxFrame {
		t.Fatalf("oversize frame len = %d, want %d", m.Len, maxFrame)
	}
}

func TestGetResetsState(t *testing.T) {
	p := NewPool(1)
	m, _ := p.Get()
	m.Meta = 42
	m.SetFrame([]byte{1})
	m.Free()
	m2, _ := p.Get()
	if m2.Meta != 0 || m2.Len != 0 {
		t.Fatalf("reused mbuf not reset: meta=%d len=%d", m2.Meta, m2.Len)
	}
}

func TestConcurrentGetFree(t *testing.T) {
	p := NewPool(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5000; i++ {
				m, err := p.Get()
				if err != nil {
					continue
				}
				m.SetFrame([]byte{byte(i)})
				m.Free()
			}
		}()
	}
	wg.Wait()
	if p.Available() != 64 {
		t.Fatalf("leaked buffers: available=%d", p.Available())
	}
}

// TestSingleFreeDuringBurstSpans mixes the compatibility pattern — plain
// Get/Free singles — with cache burst traffic on one small pool, so the
// ring wraps constantly and singles keep landing on slots that a
// concurrent burst span has reserved but not yet published. Free used to
// treat that momentary state as overflow and panic ("pool overflow");
// routed through the burst path it must wait the peer out. The test passes
// by not panicking and conserving every buffer. GOMAXPROCS is forced above
// 1 because the failure needs a burst span truly in flight while a single
// Free laps the ring — on one P the old bug hides.
func TestSingleFreeDuringBurstSpans(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	const poolSize = 16
	p := NewPool(poolSize)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100000; i++ {
				m, err := p.Get()
				if err != nil {
					continue
				}
				m.Free()
			}
		}()
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Full-pool watermark and a Flush per round maximise the time the
			// ring spends inside reserved-but-unpublished burst spans.
			c := p.NewCacheSize(poolSize)
			defer c.Flush()
			var dst [poolSize]*Mbuf
			for i := 0; i < 100000; i++ {
				n := c.GetBurst(dst[:])
				c.PutBurst(dst[:n])
				c.Flush()
			}
		}()
	}
	wg.Wait()
	if p.Available() != poolSize {
		t.Fatalf("leaked buffers: available=%d, want %d", p.Available(), poolSize)
	}
}

func BenchmarkGetFree(b *testing.B) {
	p := NewPool(128)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m, _ := p.Get()
		m.Free()
	}
}
