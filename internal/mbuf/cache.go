package mbuf

// defaultWatermark sizes a Cache's keep level: the cache spills to the
// shared ring when it holds twice this many buffers (down to the
// watermark) and refills in watermark-sized spans on a miss — the
// rte_mempool per-lcore cache shape (size n, flush threshold above n).
const defaultWatermark = 256

// Cache is a per-thread magazine over a Pool, the rte_mempool per-lcore
// cache analogue: a LIFO stack of free buffers owned by ONE goroutine.
// GetBurst and PutBurst serve and absorb bursts out of the local stack and
// touch the shared ring only in watermark-sized spans, so steady-state
// producers and consumers pay a few local slice operations per burst
// instead of per-packet ring traffic. A Cache is NOT safe for concurrent
// use — one cache per goroutine, like one rte_mempool cache per lcore.
// Retiring goroutines must Flush, or the cached buffers stay invisible to
// the rest of the deployment until the Cache is garbage.
type Cache struct {
	pool *Pool
	buf  []*Mbuf // LIFO free stack; cap = 2*keep (the spill threshold)
	keep int     // watermark: refill span size and post-spill level
}

// NewCache builds a per-thread magazine cache over the pool with the
// default watermark (clamped to the pool size, so tiny pools get tiny
// caches). The caller owns single-threading it.
//
// Size the pool for its caches, the rte_mempool rule: a cache retains up
// to 2*watermark-1 free buffers between spills (it only drains fully on
// Flush), so a pool serving n caches needs size >= n*(2*watermark-1) plus
// the deployment's in-flight working set, or producers stall on a ring
// whose free buffers are all parked in idle caches. Deployments whose
// pools are tight relative to their thread count should size the
// watermark explicitly with NewCacheSize.
func (p *Pool) NewCache() *Cache {
	return p.NewCacheSize(defaultWatermark)
}

// NewCacheSize builds a per-thread magazine cache with an explicit
// watermark: the cache refills in watermark-sized spans on a miss and
// spills back down to the watermark when it fills to twice that level, so
// its steady-state residency is watermark..2*watermark-1 buffers. The
// watermark is clamped to [1, pool size]. See NewCache for the pool-sizing
// rule relating watermarks, cache count, and pool size.
func (p *Pool) NewCacheSize(watermark int) *Cache {
	if watermark > p.size {
		watermark = p.size
	}
	if watermark < 1 {
		watermark = 1
	}
	return &Cache{pool: p, buf: make([]*Mbuf, 0, 2*watermark), keep: watermark}
}

// GetBurst leases up to len(dst) buffers into dst and returns the count —
// rte_mempool_get_bulk with a cache. Local hits cost no atomics; a miss
// pulls the remainder straight from the shared ring in one bulk dequeue
// and refills the cache with one watermark-sized span for the next calls.
// A short count means the pool (ring plus this cache) is exhausted; each
// short call counts one fail into Stats (an exhaustion event, not one per
// missing buffer, so retry loops don't inflate the counter).
func (c *Cache) GetBurst(dst []*Mbuf) int {
	want := len(dst)
	if want == 0 {
		return 0
	}
	// Serve the top of the local stack first.
	n := len(c.buf)
	if n > want {
		n = want
	}
	if n > 0 {
		cut := len(c.buf) - n
		copy(dst, c.buf[cut:])
		for i := cut; i < len(c.buf); i++ {
			c.buf[i] = nil
		}
		c.buf = c.buf[:cut]
	}
	if n < want {
		// Miss: bulk-pull the remainder directly, then refill one span so
		// the following bursts hit locally again.
		n += c.pool.getSpan(dst[n:])
		c.refill()
	}
	for _, m := range dst[:n] {
		c.pool.lease(m)
	}
	c.pool.allocs.Add(int64(n))
	if n < want {
		c.pool.fails.Add(1)
	}
	return n
}

// Get leases one buffer — the single-element cached path. Prefer GetBurst
// on hot paths.
func (c *Cache) Get() (*Mbuf, error) {
	if n := len(c.buf); n > 0 {
		m := c.buf[n-1]
		c.buf[n-1] = nil
		c.buf = c.buf[:n-1]
		c.pool.lease(m)
		c.pool.allocs.Add(1)
		return m, nil
	}
	c.refill()
	if len(c.buf) > 0 {
		return c.Get()
	}
	return c.pool.Get()
}

// refill tops the local stack up to the watermark with one bulk dequeue
// from the shared ring (fewer if the ring is short).
func (c *Cache) refill() {
	if len(c.buf) >= c.keep {
		return
	}
	span := c.buf[len(c.buf):c.keep]
	got := c.pool.getSpan(span)
	c.buf = c.buf[:len(c.buf)+got]
}

// PutBurst returns a whole burst of buffers leased from this cache's pool
// — rte_mempool_put_bulk with a cache. The burst lands on the local stack;
// when the stack passes twice the watermark it spills the excess back to
// the shared ring in one bulk enqueue, leaving the watermark level cached.
// Buffers from another pool, or already freed, panic exactly like Free.
func (c *Cache) PutBurst(ms []*Mbuf) {
	for _, m := range ms {
		if m.pool != c.pool {
			if m.pool == nil {
				panic("mbuf: double free or foreign buffer")
			}
			panic("mbuf: foreign pool's buffer in Cache.PutBurst")
		}
		m.pool = nil
	}
	for len(ms) > 0 {
		k := cap(c.buf) - len(c.buf)
		if k > len(ms) {
			k = len(ms)
		}
		c.buf = append(c.buf, ms[:k]...)
		ms = ms[k:]
		if len(c.buf) == cap(c.buf) {
			c.spill(len(c.buf) - c.keep)
		}
	}
}

// Put returns one buffer — the single-element cached path.
func (c *Cache) Put(m *Mbuf) {
	var one [1]*Mbuf
	one[0] = m
	c.PutBurst(one[:])
}

// spill bulk-returns the k most recently cached buffers to the ring.
func (c *Cache) spill(k int) {
	cut := len(c.buf) - k
	c.pool.putSpan(c.buf[cut:])
	for i := cut; i < len(c.buf); i++ {
		c.buf[i] = nil
	}
	c.buf = c.buf[:cut]
}

// Flush spills every cached buffer back to the shared ring. Retiring
// goroutines must call it — an abandoned cache leaks its residents from
// the pool's point of view. The cache stays usable afterwards.
func (c *Cache) Flush() {
	if len(c.buf) > 0 {
		c.spill(len(c.buf))
	}
}

// Recycler is a per-goroutine bulk-free helper for consumers that see
// mixed bursts: it routes each same-pool run of a burst into a lazily
// created per-pool Cache, so returns batch across bursts and hit the
// shared rings only in spans. The zero value is ready to use. Like Cache,
// a Recycler belongs to ONE goroutine, and retiring goroutines must Flush.
type Recycler struct {
	caches []*Cache
}

// FreeBurst returns every buffer of the burst through per-pool caches.
// Double-free panics, exactly like Free.
func (r *Recycler) FreeBurst(ms []*Mbuf) {
	for len(ms) > 0 {
		p := ms[0].pool
		if p == nil {
			panic("mbuf: double free or foreign buffer")
		}
		k := 1
		for k < len(ms) && ms[k].pool == p {
			k++
		}
		r.cacheFor(p).PutBurst(ms[:k])
		ms = ms[k:]
	}
}

// Flush spills every underlying cache; call on goroutine retirement.
func (r *Recycler) Flush() {
	for _, c := range r.caches {
		c.Flush()
	}
}

// cacheFor finds or creates the cache fronting pool p. Deployments free
// into a handful of pools at most, so a linear scan beats a map.
func (r *Recycler) cacheFor(p *Pool) *Cache {
	for _, c := range r.caches {
		if c.pool == p {
			return c
		}
	}
	c := p.NewCache()
	r.caches = append(r.caches, c)
	return c
}
