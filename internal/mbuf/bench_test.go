package mbuf

import (
	"sync"
	"testing"
)

// mutexPool replicates the pre-mempool pool exactly as it shipped — a
// mutex-guarded free slice with per-packet Get/put — and stays in the tree
// as the same-run baseline for the BENCH_mbuf.json ratio gate. Measuring
// the old design live (instead of against a committed ns/op number) makes
// the >=3x claim robust to runner speed: both sides of the ratio share the
// host and the run.
type mutexPool struct {
	mu   sync.Mutex
	free []*Mbuf
	size int
}

func newMutexPool(size int) *mutexPool {
	p := &mutexPool{size: size, free: make([]*Mbuf, 0, size)}
	for i := 0; i < size; i++ {
		m := &Mbuf{}
		m.Data = m.backing[:]
		p.free = append(p.free, m)
	}
	return p
}

func (p *mutexPool) get() *Mbuf {
	p.mu.Lock()
	n := len(p.free)
	if n == 0 {
		p.mu.Unlock()
		return nil
	}
	m := p.free[n-1]
	p.free = p.free[:n-1]
	p.mu.Unlock()
	m.Len = 0
	m.Meta = 0
	return m
}

func (p *mutexPool) put(m *Mbuf) {
	p.mu.Lock()
	p.free = append(p.free, m)
	p.mu.Unlock()
}

const benchBurst = 32

// runContended4 splits b.N bursts across exactly 4 goroutines — the
// contention profile of the ISSUE's acceptance gate (4 queue consumers on
// one pool) — and times the whole drain. Both contended benchmarks use it,
// so their ns/op ratio compares like with like.
func runContended4(b *testing.B, worker func(bursts int)) {
	const goroutines = 4
	b.ReportAllocs()
	b.ResetTimer()
	var wg sync.WaitGroup
	per := (b.N + goroutines - 1) / goroutines
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			worker(per)
		}()
	}
	wg.Wait()
}

// BenchmarkPoolCacheBurstContended4 is the gated path: 4 goroutines, each
// with its own magazine cache, leasing and returning 32-buffer bursts from
// one shared pool. Steady state never touches the shared ring (the cache
// absorbs the burst), so the op cost is pure local slice work.
func BenchmarkPoolCacheBurstContended4(b *testing.B) {
	p := NewPool(4096)
	caches := [4]*Cache{}
	for i := range caches {
		caches[i] = p.NewCache()
	}
	var next int
	var mu sync.Mutex
	runContended4(b, func(bursts int) {
		mu.Lock()
		c := caches[next]
		next++
		mu.Unlock()
		var dst [benchBurst]*Mbuf
		for i := 0; i < bursts; i++ {
			n := c.GetBurst(dst[:])
			c.PutBurst(dst[:n])
		}
	})
}

// BenchmarkPoolMutexBurstContended4 is the same workload on the old
// design: 4 goroutines, one mutex-guarded pool, a lock acquisition per
// packet on both the lease and the return — 64 contended critical sections
// per 32-packet burst.
func BenchmarkPoolMutexBurstContended4(b *testing.B) {
	p := newMutexPool(4096)
	runContended4(b, func(bursts int) {
		var dst [benchBurst]*Mbuf
		for i := 0; i < bursts; i++ {
			n := 0
			for n < benchBurst {
				m := p.get()
				if m == nil {
					break
				}
				dst[n] = m
				n++
			}
			for _, m := range dst[:n] {
				p.put(m)
			}
		}
	})
}

// BenchmarkPoolCacheBurst32 is the uncontended cached burst path — the
// per-burst floor a single producer pays — gated at zero allocations.
func BenchmarkPoolCacheBurst32(b *testing.B) {
	p := NewPool(1024)
	c := p.NewCache()
	var dst [benchBurst]*Mbuf
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := c.GetBurst(dst[:])
		c.PutBurst(dst[:n])
	}
}
