package mbuf

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// TestSimSubstrateNeverImportsMbuf pins the boundary that keeps the
// experiment suite deterministic: the simulation substrate (the engine, the
// modelled NIC, and the analytic model) must never reach the mbuf pool. The
// pool is shared mutable state drained by real goroutines; if a simulated
// experiment could touch it, its output would depend on scheduling and the
// byte-identical-at-any-parallel gates would only pass by luck. The walk
// covers the substrate roots and everything they transitively import inside
// this module.
func TestSimSubstrateNeverImportsMbuf(t *testing.T) {
	roots := []string{"core", "sim", "nic", "model"}
	const modPrefix = "metronome/internal/"

	seen := map[string]bool{}
	queue := append([]string(nil), roots...)
	fset := token.NewFileSet()
	for len(queue) > 0 {
		pkg := queue[0]
		queue = queue[1:]
		if seen[pkg] {
			continue
		}
		seen[pkg] = true
		dir := filepath.Join("..", filepath.FromSlash(pkg))
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatalf("substrate package %s: %v", pkg, err)
		}
		for _, e := range entries {
			name := e.Name()
			if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ImportsOnly)
			if err != nil {
				t.Fatalf("parse %s/%s: %v", pkg, name, err)
			}
			for _, imp := range f.Imports {
				path, err := strconv.Unquote(imp.Path.Value)
				if err != nil || !strings.HasPrefix(path, modPrefix) {
					continue
				}
				rel := strings.TrimPrefix(path, modPrefix)
				if rel == "mbuf" {
					t.Errorf("%s/%s imports %s: the sim substrate must not touch the pool", pkg, name, path)
					continue
				}
				queue = append(queue, rel)
			}
		}
	}
	for _, r := range roots {
		if !seen[r] {
			t.Fatalf("root %s never scanned", r)
		}
	}
}
