// Package mbuf provides packet buffers and a fixed-size buffer pool in the
// mould of DPDK's rte_mbuf/rte_mempool: buffers are preallocated once,
// leased and returned without garbage, and the pool is safe for concurrent
// use by producer and consumer threads.
//
// The pool is built like rte_mempool: a lock-free shared backing store (an
// MPMC bulk ring from internal/ring) fronted by optional per-thread
// magazine caches (Pool.NewCache). The cached burst paths — Cache.GetBurst
// and Cache.PutBurst — serve and absorb whole bursts out of thread-local
// storage and touch the shared ring only in watermark-sized spans, so the
// steady-state cost of leasing a buffer is a few local slice operations,
// not a contended lock acquisition. Pool.Get and Mbuf.Free remain as the
// degenerate single-element path (one lock-free ring operation each), so
// callers that predate the caches keep working unchanged.
package mbuf

import (
	"errors"
	"sync/atomic"
	"time"

	"metronome/internal/packet"
	"metronome/internal/ring"
)

// ErrExhausted reports an allocation from an empty pool — the software
// analogue of an Rx descriptor shortage, which on a real NIC turns into
// imissed drops.
var ErrExhausted = errors.New("mbuf: pool exhausted")

// epoch anchors the package's monotonic clock; see Nanotime. It sits one
// hour before process start so that zero stays reserved for "unstamped"
// even when a caller backdates a stamp (tests script stamps in the past).
var epoch = time.Now().Add(-time.Hour)

// Nanotime returns nanoseconds elapsed on the process-local monotonic
// clock (time.Since over a package-init epoch, so it never reads the wall
// clock and never goes backwards). It is the unit of Mbuf.RxStampNs:
// producers stamp arrivals with Nanotime(), consumers subtract their own
// Nanotime() read to get a latency. Values are only comparable within one
// process.
func Nanotime() int64 { return int64(time.Since(epoch)) }

// Mbuf is one packet buffer. Data aliases a fixed backing array owned by
// the pool; Len is the frame length in use.
type Mbuf struct {
	Data []byte // frame bytes (aliases the pool-owned backing array)
	Len  int    // frame length in use
	// RxStampNs is the arrival timestamp in Nanotime() nanoseconds
	// (process-local monotonic clock), used for latency accounting. Zero
	// means unstamped: consumers must skip, not record, such buffers. An
	// int64 instead of a time.Time keeps the 2KB buffer pointer-free (no
	// *time.Location for the GC to scan) and lets producers stamp with a
	// monotonic read instead of a full wall-clock read.
	RxStampNs int64
	Key       packet.FlowKey // parsed 5-tuple, filled by the Rx path
	Meta      uint64         // scratch for applications (e.g. next hop)
	pool      *Pool
	backing   [maxFrame]byte
}

const maxFrame = 2048 // covers standard MTU frames, like DPDK's default seg

// Bytes returns the in-use frame contents.
func (m *Mbuf) Bytes() []byte { return m.Data[:m.Len] }

// SetFrame copies frame into the buffer and sets Len.
func (m *Mbuf) SetFrame(frame []byte) {
	n := copy(m.backing[:], frame)
	m.Data = m.backing[:]
	m.Len = n
}

// Free returns the buffer to its pool's shared ring. Double-free panics:
// it is always a driver bug, and DPDK aborts on it too (in debug builds).
// Threads with a Cache should prefer Cache.PutBurst (or Recycler.FreeBurst
// for mixed-pool bursts), which batch the return.
//
// Free goes through the ring's burst path rather than the single-element
// Enqueue: Enqueue reports false for a slot a concurrent DequeueBurst has
// reserved but not yet published — a legal, momentary state, not overflow —
// while the burst path waits that peer out and comes up short only on a
// true capacity shortfall. Overflow (a foreign or double-freed buffer
// pushing the ring past the pool size) therefore still panics, but a
// transient ring state never does.
func (m *Mbuf) Free() {
	if m.pool == nil {
		panic("mbuf: double free or foreign buffer")
	}
	p := m.pool
	m.pool = nil
	var one [1]*Mbuf
	one[0] = m
	p.putSpan(one[:])
}

// FreeBurst returns a whole burst to its pools' shared rings in bulk: runs
// of consecutive same-pool buffers go back in one ring enqueue instead of
// one per packet. It is stateless — threads that free repeatedly should
// hold a Recycler (or a Cache) so returns also coalesce across bursts.
// Double-free panics, exactly like Free.
func FreeBurst(ms []*Mbuf) {
	for len(ms) > 0 {
		p := ms[0].pool
		if p == nil {
			panic("mbuf: double free or foreign buffer")
		}
		k := 1
		for k < len(ms) && ms[k].pool == p {
			k++
		}
		span := ms[:k]
		for _, m := range span {
			m.pool = nil
		}
		p.putSpan(span)
		ms = ms[k:]
	}
}

// Pool is a fixed-size buffer pool over a lock-free MPMC ring. All methods
// are safe for concurrent use; per-thread Caches (NewCache) front it for
// burst workloads.
type Pool struct {
	free *ring.MPMC[*Mbuf]
	size int

	allocs atomic.Int64
	fails  atomic.Int64
}

// NewPool preallocates size buffers.
func NewPool(size int) *Pool {
	capacity := 2
	for capacity < size {
		capacity <<= 1
	}
	r, err := ring.NewMPMC[*Mbuf](capacity)
	if err != nil {
		panic(err) // unreachable: capacity is a power of two >= 2
	}
	p := &Pool{size: size, free: r}
	for i := 0; i < size; i++ {
		m := &Mbuf{}
		m.Data = m.backing[:]
		if !p.free.Enqueue(m) {
			panic("mbuf: pool ring undersized") // unreachable
		}
	}
	return p
}

// Size returns the configured pool size.
func (p *Pool) Size() int { return p.size }

// Available returns the number of free buffers currently in the shared
// ring. Buffers resident in per-thread Caches are free but not counted
// here — Available undercounts by up to the summed cache occupancy until
// those caches spill or Flush. For an exact account, Flush every cache
// first (retiring threads must anyway).
func (p *Pool) Available() int { return p.free.Len() }

// Get leases a buffer from the shared ring, or returns ErrExhausted. This
// is the degenerate single-element path; burst producers should lease
// through a Cache.
//
// Like Free, Get uses the ring's burst machinery so that a buffer a
// concurrent PutBurst spill has reserved into the ring but not yet
// published is awaited, not misread as exhaustion. ErrExhausted therefore
// means the ring really held nothing at the attempt — though buffers may
// still be resident in per-thread Caches (see Available), so callers that
// must not drop should retry after yielding rather than charge a drop on
// the first failure.
func (p *Pool) Get() (*Mbuf, error) {
	var one [1]*Mbuf
	if p.getSpan(one[:]) == 0 {
		p.fails.Add(1)
		return nil, ErrExhausted
	}
	p.allocs.Add(1)
	p.lease(one[0])
	return one[0], nil
}

// lease resets a buffer's per-lease state as it leaves the free store.
func (p *Pool) lease(m *Mbuf) {
	m.pool = p
	m.Len = 0
	m.Meta = 0
	m.RxStampNs = 0
}

// putSpan bulk-returns freed buffers (pool already cleared) to the ring.
func (p *Pool) putSpan(ms []*Mbuf) {
	if n := p.free.EnqueueBurst(ms); n != len(ms) {
		panic("mbuf: pool overflow (foreign or double-freed buffer)")
	}
}

// getSpan bulk-leases up to len(dst) buffers from the ring without
// resetting them (the serving Cache resets on hand-out).
func (p *Pool) getSpan(dst []*Mbuf) int { return p.free.DequeueBurst(dst) }

// Stats reports allocation counters, aggregated across the pool's direct
// path and every Cache with relaxed atomic adds — one add per call or
// burst, never per packet. allocs counts buffers leased; fails counts
// distinct exhaustion events: one per failed Get and one per short
// GetBurst call regardless of the shortfall, so busy-retry loops around
// GetBurst inflate fails by at most one per spin and the counter keeps
// approximating "times a caller found the pool empty".
func (p *Pool) Stats() (allocs, fails int64) {
	return p.allocs.Load(), p.fails.Load()
}
