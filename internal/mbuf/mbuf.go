// Package mbuf provides packet buffers and a fixed-size buffer pool in the
// mould of DPDK's rte_mbuf/rte_mempool: buffers are preallocated once,
// leased and returned without garbage, and the pool is safe for concurrent
// use by producer and consumer threads.
package mbuf

import (
	"errors"
	"sync"
	"time"

	"metronome/internal/packet"
)

// ErrExhausted reports an allocation from an empty pool — the software
// analogue of an Rx descriptor shortage, which on a real NIC turns into
// imissed drops.
var ErrExhausted = errors.New("mbuf: pool exhausted")

// Mbuf is one packet buffer. Data aliases a fixed backing array owned by
// the pool; Len is the frame length in use.
type Mbuf struct {
	Data    []byte
	Len     int
	RxStamp time.Time      // arrival timestamp (latency accounting)
	Key     packet.FlowKey // parsed 5-tuple, filled by the Rx path
	Meta    uint64         // scratch for applications (e.g. next hop)
	pool    *Pool
	backing [maxFrame]byte
}

const maxFrame = 2048 // covers standard MTU frames, like DPDK's default seg

// Bytes returns the in-use frame contents.
func (m *Mbuf) Bytes() []byte { return m.Data[:m.Len] }

// SetFrame copies frame into the buffer and sets Len.
func (m *Mbuf) SetFrame(frame []byte) {
	n := copy(m.backing[:], frame)
	m.Data = m.backing[:]
	m.Len = n
}

// Free returns the buffer to its pool. Double-free panics: it is always a
// driver bug, and DPDK aborts on it too (in debug builds).
func (m *Mbuf) Free() {
	if m.pool == nil {
		panic("mbuf: double free or foreign buffer")
	}
	p := m.pool
	m.pool = nil
	p.put(m)
}

// Pool is a bounded free list of Mbufs.
type Pool struct {
	mu   sync.Mutex
	free []*Mbuf
	size int

	allocs, fails int64
}

// NewPool preallocates size buffers.
func NewPool(size int) *Pool {
	p := &Pool{size: size, free: make([]*Mbuf, 0, size)}
	for i := 0; i < size; i++ {
		m := &Mbuf{}
		m.Data = m.backing[:]
		p.free = append(p.free, m)
	}
	return p
}

// Size returns the configured pool size.
func (p *Pool) Size() int { return p.size }

// Available returns the current number of free buffers.
func (p *Pool) Available() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.free)
}

// Get leases a buffer, or returns ErrExhausted.
func (p *Pool) Get() (*Mbuf, error) {
	p.mu.Lock()
	n := len(p.free)
	if n == 0 {
		p.fails++
		p.mu.Unlock()
		return nil, ErrExhausted
	}
	m := p.free[n-1]
	p.free = p.free[:n-1]
	p.allocs++
	p.mu.Unlock()
	m.pool = p
	m.Len = 0
	m.Meta = 0
	return m, nil
}

func (p *Pool) put(m *Mbuf) {
	p.mu.Lock()
	if len(p.free) >= p.size {
		p.mu.Unlock()
		panic("mbuf: pool overflow (foreign or double-freed buffer)")
	}
	p.free = append(p.free, m)
	p.mu.Unlock()
}

// Stats reports allocation counters: total successful leases and failures.
func (p *Pool) Stats() (allocs, fails int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.allocs, p.fails
}
