package runtime

import (
	"context"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"metronome/internal/obsv"
	"metronome/internal/sched"
	"metronome/internal/xrand"
)

// chaosEnv reads an integer knob from the environment, so a failing soak
// reproduces (CHAOS_SEED=n) and shrinks (CHAOS_OPS=m) from the shell.
func chaosEnv(name string, def int) int {
	if s := os.Getenv(name); s != "" {
		if v, err := strconv.Atoi(s); err == nil {
			return v
		}
	}
	return def
}

// The live-substrate chaos soak: a seeded schedule of stalls, deaths,
// blackouts, telemetry freezes, resizes and rebalances churns a running
// 2-queue team from outside goroutines while a producer pushes packets
// through. The race detector is half the assertion; the other half is
// conservation — once every fault clears, every produced packet drains and
// the pool balances, no matter how the schedule interleaved. Timing varies
// run to run (this is the live runner), but the op sequence is a pure
// function of CHAOS_SEED and CHAOS_OPS shrinks it.
func TestChaosSoakLive(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak runs in the dedicated non-short CI step")
	}
	seed := uint64(chaosEnv("CHAOS_SEED", 1))
	ops := chaosEnv("CHAOS_OPS", 80)
	t.Logf("chaos soak: CHAOS_SEED=%d CHAOS_OPS=%d (env to reproduce/shrink)", seed, ops)

	// The soak's black box: placement swaps and fault flips land in the
	// flight recorder from the racing goroutines (the ring is lock-free on
	// the live substrate too), dumped below iff the soak fails.
	rec := obsv.NewRecorder(1 << 14)
	bench, r, inj, processed, stop := faultBench(t, 4, Config{Policy: sched.NameRMetronome, Seed: seed, Recorder: rec})
	defer stop()
	obsv.AttachFaults(inj, rec)
	ctx := context.Background()

	var sent atomic.Int64
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		sent.Store(int64(bench.produce(ctx, 30000)))
	}()
	go func() {
		defer wg.Done()
		rng := xrand.New(seed + 7)
		pause := func(lo, hi int) {
			time.Sleep(time.Duration(lo+rng.Intn(hi-lo)) * time.Microsecond)
		}
		for i := 0; i < ops; i++ {
			switch rng.Intn(8) {
			case 0, 1:
				inj.StallThread(rng.Intn(4), r.Elapsed()+rng.Uniform(0.001, 0.004))
			case 2:
				id := rng.Intn(4)
				inj.KillThread(id)
				pause(200, 2000)
				inj.ReviveThread(id)
			case 3:
				q := rng.Intn(2)
				inj.SetQueueDark(q, true)
				pause(200, 1500)
				inj.SetQueueDark(q, false)
			case 4:
				q := rng.Intn(2)
				inj.FreezeTelemetry(q, true)
				pause(200, 1500)
				inj.FreezeTelemetry(q, false)
			case 5, 6:
				r.SetTeamSize(2 + rng.Intn(3))
			default:
				plan := []int{1, 1}
				for j := 2; j < 2+rng.Intn(3); j++ {
					plan[rng.Intn(2)]++
				}
				r.ApplyPlacement(plan)
			}
			pause(100, 500)
		}
		// Clear everything: live revival is automatic (dead members poll
		// their flag from the TL sleep loop), stalls expire by value.
		for id := 0; id < 4; id++ {
			inj.ReviveThread(id)
			inj.StallThread(id, 0)
		}
		for q := 0; q < 2; q++ {
			inj.SetQueueDark(q, false)
			inj.FreezeTelemetry(q, false)
		}
		r.SetTeamSize(4)
	}()
	wg.Wait()

	dump := func() {
		var b strings.Builder
		if err := rec.WriteText(&b); err == nil {
			t.Logf("flight recorder (last %d of %d events):\n%s",
				len(rec.Events(nil)), rec.Total(), b.String())
		}
	}
	if !drainTo(processed, uint64(sent.Load()), 10*time.Second) {
		dump()
		t.Fatalf("processed %d of %d after the soak cleared", processed.Load(), sent.Load())
	}
	if bench.pool.Available() != bench.pool.Size() {
		dump()
		t.Fatalf("pool leak: %d/%d", bench.pool.Available(), bench.pool.Size())
	}
	if cycles := r.Stats.Cycles.Load(); cycles == 0 {
		dump()
		t.Fatal("no cycles recorded through the soak")
	}
}
