package runtime

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"metronome/internal/apps"
	"metronome/internal/mbuf"
	"metronome/internal/ring"
	"metronome/internal/sched"
	"metronome/internal/stats"
	"metronome/internal/telemetry"
	"metronome/internal/xrand"
)

// testBench wires a runner to rings fed by a producer goroutine.
type testBench struct {
	rings  []*ring.MPMC[*mbuf.Mbuf]
	queues []RxQueue
	pool   *mbuf.Pool
}

func newBench(t *testing.T, nQueues int) *testBench {
	t.Helper()
	b := &testBench{pool: mbuf.NewPool(4096)}
	for i := 0; i < nQueues; i++ {
		r, err := ring.NewMPMC[*mbuf.Mbuf](1024)
		if err != nil {
			t.Fatal(err)
		}
		b.rings = append(b.rings, r)
		b.queues = append(b.queues, RingQueue{R: r})
	}
	return b
}

// produce pushes n packets round-robin as fast as the pool allows.
func (b *testBench) produce(ctx context.Context, n int) int {
	sent := 0
	for sent < n && ctx.Err() == nil {
		m, err := b.pool.Get()
		if err != nil {
			time.Sleep(50 * time.Microsecond) // consumers lag; let them
			continue
		}
		m.SetFrame([]byte{byte(sent), byte(sent >> 8)})
		if !b.rings[sent%len(b.rings)].Enqueue(m) {
			m.Free()
			time.Sleep(50 * time.Microsecond)
			continue
		}
		sent++
	}
	return sent
}

func TestAllPacketsProcessedExactlyOnce(t *testing.T) {
	bench := newBench(t, 1)
	var processed atomic.Uint64
	handler := func(batch []*mbuf.Mbuf) {
		for _, m := range batch {
			processed.Add(1)
			m.Free()
		}
	}
	r := New(bench.queues, handler, Config{M: 3, VBar: 200 * time.Microsecond, Seed: 1})
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); r.Run(ctx) }()

	const n = 20000
	sent := bench.produce(ctx, n)
	// Wait for drain.
	deadline := time.Now().Add(5 * time.Second)
	for processed.Load() < uint64(sent) && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	cancel()
	wg.Wait()
	if processed.Load() != uint64(sent) {
		t.Fatalf("processed %d of %d", processed.Load(), sent)
	}
	// Every mbuf came back to the pool: nothing double-freed or leaked.
	if bench.pool.Available() != bench.pool.Size() {
		t.Fatalf("pool leak: %d/%d", bench.pool.Available(), bench.pool.Size())
	}
	if r.Stats.Cycles.Load() == 0 || r.Stats.Tries.Load() == 0 {
		t.Error("no cycles recorded")
	}
}

func TestLockExclusivityPerQueue(t *testing.T) {
	// At most one handler invocation in flight per queue, ever.
	bench := newBench(t, 2)
	var inFlight [2]atomic.Int32
	var violations atomic.Int32
	var processed atomic.Uint64
	handler := func(batch []*mbuf.Mbuf) {
		qi := int(batch[0].Bytes()[0]) % 2 // queue id smuggled in byte 0
		if inFlight[qi].Add(1) != 1 {
			violations.Add(1)
		}
		time.Sleep(20 * time.Microsecond) // widen the race window
		inFlight[qi].Add(-1)
		for _, m := range batch {
			processed.Add(1)
			m.Free()
		}
	}
	r := New(bench.queues, handler, Config{M: 5, VBar: 100 * time.Microsecond, Seed: 2})
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); r.Run(ctx) }()

	// Producer marks each packet with its queue index.
	sent := 0
	deadline := time.Now().Add(500 * time.Millisecond)
	for time.Now().Before(deadline) {
		m, err := bench.pool.Get()
		if err != nil {
			time.Sleep(100 * time.Microsecond)
			continue
		}
		qi := sent % 2
		m.SetFrame([]byte{byte(qi)})
		if !bench.rings[qi].Enqueue(m) {
			m.Free()
			time.Sleep(100 * time.Microsecond)
			continue
		}
		sent++
	}
	time.Sleep(50 * time.Millisecond)
	cancel()
	wg.Wait()
	if violations.Load() != 0 {
		t.Fatalf("%d concurrent handler invocations on one queue", violations.Load())
	}
	if processed.Load() == 0 {
		t.Fatal("nothing processed")
	}
}

func TestAdaptiveTSRespondsToLoad(t *testing.T) {
	// Asserts on the policy engine the goroutines delegate to, instead of
	// racing a producer goroutine against the wall clock (the old version
	// was flaky on slow machines: loaded rho landed anywhere between 0.1
	// and 0.9 depending on scheduling).
	bench := newBench(t, 1)
	handler := func(batch []*mbuf.Mbuf) {
		for _, m := range batch {
			m.Free()
		}
	}
	cfg := Config{M: 3, VBar: 200 * time.Microsecond, Seed: 3}
	r := New(bench.queues, handler, cfg)

	// Idle: rho = 0, TS = M * VBar.
	idleTS := r.TS(0)
	if idleTS < 2*cfg.VBar {
		t.Errorf("idle TS = %v, want ~%v (M*VBar)", idleTS, 3*cfg.VBar)
	}
	// Saturate the estimator with busy-dominated cycles — exactly what the
	// retrieval goroutines feed it when the queue never drains.
	p := r.Policy()
	for i := 0; i < 50; i++ {
		p.ObserveCycle(0, (900 * time.Microsecond).Seconds(), (100 * time.Microsecond).Seconds())
	}
	if rho := r.Rho(0); rho < 0.8 {
		t.Errorf("loaded rho = %v, want ~0.9", rho)
	}
	loadedTS := r.TS(0)
	if loadedTS >= idleTS {
		t.Errorf("TS did not shrink under load: idle %v, loaded %v", idleTS, loadedTS)
	}
	// Eq. (13) bounds TS to [VBar, M*VBar]: adaptation approaches the
	// target from above, never undershoots it.
	if loadedTS < cfg.VBar*99/100 {
		t.Errorf("loaded TS = %v fell below the target %v", loadedTS, cfg.VBar)
	}
	// Load drains away: the estimate and the timeout recover.
	for i := 0; i < 50; i++ {
		p.ObserveCycle(0, (1 * time.Microsecond).Seconds(), (600 * time.Microsecond).Seconds())
	}
	if rho := r.Rho(0); rho > 0.1 {
		t.Errorf("drained rho = %v, want ~0", rho)
	}
	if recovered := r.TS(0); recovered <= loadedTS {
		t.Errorf("TS did not recover after drain: loaded %v, recovered %v", loadedTS, recovered)
	}
}

func TestThreadLoopFeedsPolicy(t *testing.T) {
	// End-to-end companion to TestAdaptiveTSRespondsToLoad: proves the
	// live retrieval goroutines actually wire their cycles into the policy
	// engine. A slow handler makes every busy period ~milliseconds against
	// a ~600us idle timeout, so any observed cycle under load must push
	// rho well above zero; polling with a generous deadline (instead of a
	// fixed sleep) keeps the test deterministic on slow machines.
	bench := newBench(t, 1)
	handler := func(batch []*mbuf.Mbuf) {
		time.Sleep(2 * time.Millisecond)
		for _, m := range batch {
			m.Free()
		}
	}
	cfg := Config{M: 3, VBar: 200 * time.Microsecond, Seed: 5}
	r := New(bench.queues, handler, cfg)
	idleTS := r.TS(0)
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); r.Run(ctx) }()

	// Bursts with a gap longer than their drain time, so every burst is a
	// complete cycle: busy ~2ms of handler time against a sub-millisecond
	// vacation-side timeout. A continuous producer would outpace the slow
	// handler and the busy period would never end.
	stop := make(chan struct{})
	var prodWG sync.WaitGroup
	prodWG.Add(1)
	go func() {
		defer prodWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for i := 0; i < 20; i++ {
				if m, err := bench.pool.Get(); err == nil {
					m.SetFrame([]byte{1})
					if !bench.rings[0].Enqueue(m) {
						m.Free()
					}
				}
			}
			time.Sleep(10 * time.Millisecond)
		}
	}()

	// The EWMA decays between bursts (empty polls contribute ~0 samples),
	// so assert on the peak observed, not a single instant.
	deadline := time.Now().Add(5 * time.Second)
	maxRho, minTS := 0.0, idleTS
	for time.Now().Before(deadline) {
		if rho := r.Rho(0); rho > maxRho {
			maxRho = rho
		}
		if ts := r.TS(0); ts < minTS {
			minTS = ts
		}
		if maxRho > 0.05 && minTS < idleTS {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	close(stop)
	prodWG.Wait()
	cancel()
	wg.Wait()
	if maxRho <= 0.05 {
		t.Errorf("threadLoop never fed the estimator: peak rho = %v after 5s under load", maxRho)
	}
	if minTS >= idleTS {
		t.Errorf("TS did not move through the live path: idle %v, best loaded %v", idleTS, minTS)
	}
}

func TestBackupBehaviourMultiqueue(t *testing.T) {
	bench := newBench(t, 2)
	handler := func(batch []*mbuf.Mbuf) {
		for _, m := range batch {
			m.Free()
		}
	}
	r := New(bench.queues, handler, Config{M: 4, VBar: 100 * time.Microsecond, Seed: 4})
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); r.Run(ctx) }()
	time.Sleep(300 * time.Millisecond)
	cancel()
	wg.Wait()
	// With 4 threads over 2 queues some collisions are inevitable; the
	// counters must reflect them without deadlock.
	if r.Stats.Tries.Load() == 0 {
		t.Fatal("no tries")
	}
	if r.Stats.BusyTries.Load() == r.Stats.Tries.Load() {
		t.Fatal("every try failed: lock never released?")
	}
}

func TestConfigDefaults(t *testing.T) {
	var c Config
	c.defaults()
	if c.M != 3 || c.VBar != 200*time.Microsecond || c.TL != 50*c.VBar ||
		c.Alpha != 0.125 || c.Burst != 32 || c.Sleeper == nil {
		t.Errorf("defaults wrong: %+v", c)
	}
}

func TestMRaisedToQueueCount(t *testing.T) {
	bench := newBench(t, 3)
	r := New(bench.queues, func(b []*mbuf.Mbuf) {}, Config{M: 1})
	if r.cfg.M != 3 {
		t.Errorf("M = %d, want raised to N=3", r.cfg.M)
	}
}

func TestNewValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for empty queues")
		}
	}()
	New(nil, func(b []*mbuf.Mbuf) {}, Config{})
}

func TestStaticPollerProcesses(t *testing.T) {
	bench := newBench(t, 1)
	var processed atomic.Uint64
	sp := &StaticPoller{
		Queues: bench.queues,
		Handler: func(batch []*mbuf.Mbuf) {
			for _, m := range batch {
				processed.Add(1)
				m.Free()
			}
		},
	}
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); sp.Run(ctx) }()
	sent := bench.produce(ctx, 5000)
	deadline := time.Now().Add(2 * time.Second)
	for processed.Load() < uint64(sent) && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	cancel()
	wg.Wait()
	if processed.Load() != uint64(sent) {
		t.Fatalf("processed %d of %d", processed.Load(), sent)
	}
	if sp.Polls.Load() == 0 {
		t.Fatal("no polls")
	}
}

// TestThreadRNGStreamsDependOnQueueCount is the regression test for the
// per-thread RNG seeding: two runners built from the same seed but
// different queue counts must not share backup-selection streams, and the
// streams must stay reproducible for identical deployments. It asserts on
// the same xrand.SeedFrom derivation threadLoop uses.
func TestThreadRNGStreamsDependOnQueueCount(t *testing.T) {
	draw := func(seed uint64, id, queues int) []uint64 {
		rng := xrand.New(xrand.SeedFrom(seed, uint64(id), uint64(queues)))
		out := make([]uint64, 8)
		for i := range out {
			out[i] = rng.Uint64()
		}
		return out
	}
	same := func(a, b []uint64) bool {
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	// Reproducible per deployment shape.
	if !same(draw(42, 0, 2), draw(42, 0, 2)) {
		t.Fatal("same deployment, different streams")
	}
	// Different queue counts, same seed and thread id: different streams.
	for id := 0; id < 4; id++ {
		if same(draw(42, id, 2), draw(42, id, 3)) {
			t.Fatalf("thread %d shares its stream across queue counts", id)
		}
	}
	// Different threads of one runner: different streams.
	if same(draw(42, 0, 2), draw(42, 1, 2)) {
		t.Fatal("sibling threads share a stream")
	}
}

// TestRMetronomeLiveEndToEnd drives the shared-queue discipline on real
// goroutines: packets flow, turns are claimed, and backups return home.
func TestRMetronomeLiveEndToEnd(t *testing.T) {
	for _, policy := range []string{"rmetronome", "worksteal"} {
		bench := newBench(t, 2)
		var processed atomic.Uint64
		handler := func(batch []*mbuf.Mbuf) {
			for _, m := range batch {
				processed.Add(1)
				m.Free()
			}
		}
		r := New(bench.queues, handler, Config{M: 4, VBar: 100 * time.Microsecond, Seed: 6, Policy: policy})
		if r.group == nil {
			t.Fatalf("%s: runner has no GroupPolicy", policy)
		}
		ctx, cancel := context.WithCancel(context.Background())
		var wg sync.WaitGroup
		wg.Add(1)
		go func() { defer wg.Done(); r.Run(ctx) }()
		sent := bench.produce(ctx, 5000)
		deadline := time.Now().Add(5 * time.Second)
		for processed.Load() < uint64(sent) && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		cancel()
		wg.Wait()
		if processed.Load() != uint64(sent) {
			t.Fatalf("%s: processed %d of %d", policy, processed.Load(), sent)
		}
		turns := r.group.Turns(0) + r.group.Turns(1)
		if turns == 0 {
			t.Fatalf("%s: no service turns claimed", policy)
		}
		// Claims are admission: every completed cycle consumed a turn.
		if cycles := r.Stats.Cycles.Load(); turns < cycles {
			t.Fatalf("%s: %d turns < %d cycles", policy, turns, cycles)
		}
	}
}

// TestRunnerOnSPSCFastPath runs a full Runner over NewRxRing-selected SPSC
// queues: one producer goroutine per queue, the Runner as the single
// consuming entity (M > 1 is fine — the per-queue trylock serialises every
// PollBurst and its atomic hand-off publishes each drain to the next lock
// holder). Run with -race to check that claim.
func TestRunnerOnSPSCFastPath(t *testing.T) {
	pool := mbuf.NewPool(4096)
	rings := make([]RxRing, 2)
	queues := make([]RxQueue, 2)
	for i := range rings {
		rr, err := NewRxRing(1024, 1, 1)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := rr.(SPSCQueue); !ok {
			t.Fatalf("NewRxRing(_, 1, 1) = %T, want the SPSC fast path", rr)
		}
		rings[i] = rr
		queues[i] = rr
	}
	if rr, _ := NewRxRing(1024, 2, 1); rr != nil {
		if _, ok := rr.(RingQueue); !ok {
			t.Fatalf("NewRxRing(_, 2, 1) = %T, want MPMC", rr)
		}
	}
	var processed atomic.Uint64
	r := New(queues, func(batch []*mbuf.Mbuf) {
		for _, m := range batch {
			processed.Add(1)
			m.Free()
		}
	}, Config{M: 3, VBar: 100 * time.Microsecond, Seed: 8})
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); r.Run(ctx) }()

	const perQueue = 5000
	var prodWG sync.WaitGroup
	for qi := range rings {
		prodWG.Add(1)
		go func(qi int) { // exactly one producer goroutine per SPSC ring
			defer prodWG.Done()
			burst := make([]*mbuf.Mbuf, 0, 16)
			sent := 0
			for sent < perQueue && ctx.Err() == nil {
				burst = burst[:0]
				for len(burst) < cap(burst) && sent+len(burst) < perQueue {
					m, err := pool.Get()
					if err != nil {
						break
					}
					m.SetFrame([]byte{byte(qi)})
					burst = append(burst, m)
				}
				if len(burst) == 0 {
					time.Sleep(50 * time.Microsecond)
					continue
				}
				n := rings[qi].EnqueueBurst(burst)
				for _, m := range burst[n:] {
					m.Free()
				}
				sent += n
				if n == 0 {
					time.Sleep(50 * time.Microsecond)
				}
			}
		}(qi)
	}
	prodWG.Wait()
	deadline := time.Now().Add(5 * time.Second)
	for processed.Load() < 2*perQueue && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	cancel()
	wg.Wait()
	if processed.Load() != 2*perQueue {
		t.Fatalf("processed %d of %d", processed.Load(), 2*perQueue)
	}
	if pool.Available() != pool.Size() {
		t.Fatalf("pool leak: %d/%d", pool.Available(), pool.Size())
	}
}

// TestResizeUnderLoadRace hammers SetTeamSize while packets flow — run
// with -race (CI does): goroutine spawn/park, the policy's layout swaps
// and the telemetry publishing must all be data-race free, every packet
// must still be processed exactly once, and the team must land on the
// final requested size.
func TestResizeUnderLoadRace(t *testing.T) {
	bench := newBench(t, 2)
	bus := telemetry.NewBus(2, 16)
	var processed atomic.Uint64
	handler := func(batch []*mbuf.Mbuf) {
		for _, m := range batch {
			processed.Add(1)
			m.Free()
		}
	}
	r := New(bench.queues, handler, Config{
		M: 2, VBar: 100 * time.Microsecond, Seed: 31,
		Policy: "worksteal", Bus: bus, Dephase: true,
	})
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); r.Run(ctx) }()

	// Resizer: sweep the team size up and down while the producer runs.
	sizes := []int{6, 3, 9, 2, 7, 4, 8, 2, 5, 6}
	var rz sync.WaitGroup
	rz.Add(1)
	go func() {
		defer rz.Done()
		for i := 0; ctx.Err() == nil && i < len(sizes)*5; i++ {
			r.SetTeamSize(sizes[i%len(sizes)])
			time.Sleep(2 * time.Millisecond)
		}
		r.SetTeamSize(6)
	}()

	sent := bench.produce(ctx, 20000)
	deadline := time.Now().Add(10 * time.Second)
	for processed.Load() < uint64(sent) && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	rz.Wait()
	if got := r.TeamSize(); got != 6 {
		t.Errorf("final team size %d, want 6", got)
	}
	cancel()
	wg.Wait()
	if processed.Load() != uint64(sent) {
		t.Fatalf("processed %d of %d under resizing", processed.Load(), sent)
	}
	if bench.pool.Available() != bench.pool.Size() {
		t.Fatalf("pool leak: %d/%d", bench.pool.Available(), bench.pool.Size())
	}
	// Telemetry flowed from the goroutines.
	if bus.Tries(0)+bus.Tries(1) == 0 {
		t.Error("no tries published to the bus")
	}
}

// TestRebalanceUnderLoadRace hammers ApplyPlacement with shifting plans
// while packets flow — run with -race (CI does): the policy's full-layout
// swaps, member re-homing through the cycle-end return path, goroutine
// spawn/park on total changes and telemetry publishing must all be
// data-race free, every packet must still be processed exactly once, and
// the final plan must land.
func TestRebalanceUnderLoadRace(t *testing.T) {
	bench := newBench(t, 3)
	bus := telemetry.NewBus(3, 16)
	var processed atomic.Uint64
	handler := func(batch []*mbuf.Mbuf) {
		for _, m := range batch {
			processed.Add(1)
			m.Free()
		}
	}
	r := New(bench.queues, handler, Config{
		M: 6, VBar: 100 * time.Microsecond, Seed: 47,
		Policy: "rmetronome", Bus: bus, Dephase: true,
	})
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); r.Run(ctx) }()

	// Rebalancer: sweep placement plans (including total changes and
	// clamped entries) while the producer runs.
	plans := [][]int{
		{4, 1, 1}, {1, 4, 1}, {1, 1, 4}, {2, 2, 2},
		{5, 2, 1}, {1, 1, 1}, {0, 3, 3}, {3, 3, 3},
	}
	var rz sync.WaitGroup
	rz.Add(1)
	go func() {
		defer rz.Done()
		for i := 0; ctx.Err() == nil && i < len(plans)*5; i++ {
			r.ApplyPlacement(plans[i%len(plans)])
			time.Sleep(2 * time.Millisecond)
		}
		r.ApplyPlacement([]int{2, 1, 3})
	}()

	sent := bench.produce(ctx, 20000)
	deadline := time.Now().Add(10 * time.Second)
	for processed.Load() < uint64(sent) && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	rz.Wait()
	if got := r.TeamSize(); got != 6 {
		t.Errorf("final team size %d, want 6", got)
	}
	if rb, ok := r.Policy().(sched.Rebalancer); ok {
		p := rb.Placement()
		if p[0] != 2 || p[1] != 1 || p[2] != 3 {
			t.Errorf("final placement %v, want [2 1 3]", p)
		}
	} else {
		t.Error("rmetronome must be a Rebalancer")
	}
	cancel()
	wg.Wait()
	if processed.Load() != uint64(sent) {
		t.Fatalf("processed %d of %d under rebalancing", processed.Load(), sent)
	}
	if bench.pool.Available() != bench.pool.Size() {
		t.Fatalf("pool leak: %d/%d", bench.pool.Available(), bench.pool.Size())
	}
}

// TestRunnerImplementsElasticTeam pins the live substrate's Team contract:
// resizes before Run apply at spawn time, the floor is the queue count.
func TestRunnerImplementsElasticTeam(t *testing.T) {
	bench := newBench(t, 2)
	r := New(bench.queues, func(b []*mbuf.Mbuf) {}, Config{M: 4, Seed: 1})
	if got := r.TeamSize(); got != 4 {
		t.Fatalf("initial team %d", got)
	}
	if applied := r.SetTeamSize(1); applied != 2 {
		t.Fatalf("SetTeamSize(1) applied %d, want clamp to N=2", applied)
	}
	if applied := r.SetTeamSize(7); applied != 7 {
		t.Fatalf("SetTeamSize(7) applied %d", applied)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); r.Run(ctx) }()
	time.Sleep(20 * time.Millisecond)
	cancel()
	wg.Wait()
	if got := r.TeamSize(); got != 7 {
		t.Fatalf("team after run %d, want 7", got)
	}
}

// countProc is a minimal BurstProcessor: counts bursts/packets and stamps a
// verdict derived from the frame so tests can check the emit contract.
type countProc struct {
	bursts, packets atomic.Int64
}

func (c *countProc) Name() string             { return "count" }
func (c *countProc) CyclesPerPacket() float64 { return 1 }
func (c *countProc) Process(m *mbuf.Mbuf) apps.Verdict {
	c.packets.Add(1)
	return verdictFor(m)
}
func (c *countProc) ProcessBurst(ms []*mbuf.Mbuf, verdicts []apps.Verdict) {
	c.bursts.Add(1)
	c.packets.Add(int64(len(ms)))
	for i, m := range ms {
		verdicts[i] = verdictFor(m)
	}
}

// verdictFor smuggles the expected verdict in frame byte 0's low bit.
func verdictFor(m *mbuf.Mbuf) apps.Verdict {
	if m.Bytes()[0]&1 == 1 {
		return apps.Drop
	}
	return apps.Forward
}

func TestProcRunnerDispatchesBursts(t *testing.T) {
	bench := newBench(t, 2)
	procs := []apps.BurstProcessor{&countProc{}, &countProc{}}
	var emitted atomic.Int64
	var badVerdicts atomic.Int64
	emit := func(q int, ms []*mbuf.Mbuf, verdicts []apps.Verdict) {
		if len(ms) != len(verdicts) {
			t.Errorf("emit: %d mbufs, %d verdicts", len(ms), len(verdicts))
		}
		for i, m := range ms {
			if verdicts[i] != verdictFor(m) {
				badVerdicts.Add(1)
			}
			emitted.Add(1)
			m.Free()
		}
	}
	r := NewProc(bench.queues, procs, emit, Config{M: 3, VBar: 200 * time.Microsecond, Seed: 7})
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); r.Run(ctx) }()

	const n = 10000
	sent := bench.produce(ctx, n)
	deadline := time.Now().Add(5 * time.Second)
	for emitted.Load() < int64(sent) && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	cancel()
	wg.Wait()
	if emitted.Load() != int64(sent) {
		t.Fatalf("emitted %d of %d", emitted.Load(), sent)
	}
	if badVerdicts.Load() != 0 {
		t.Fatalf("%d verdicts did not match their packets", badVerdicts.Load())
	}
	var perProc int64
	for _, p := range procs {
		cp := p.(*countProc)
		perProc += cp.packets.Load()
		if cp.bursts.Load() == 0 {
			t.Error("a queue's processor never ran")
		}
	}
	if perProc != int64(sent) {
		t.Fatalf("processors saw %d of %d packets", perProc, sent)
	}
	if got := r.Stats.Packets.Load(); got != uint64(sent) {
		t.Fatalf("Stats.Packets = %d, want %d", got, sent)
	}
	if bench.pool.Available() != bench.pool.Size() {
		t.Fatalf("pool leak: %d/%d", bench.pool.Available(), bench.pool.Size())
	}
}

func TestProcRunnerDefaultEmitFrees(t *testing.T) {
	bench := newBench(t, 1)
	proc := &countProc{}
	r := NewProc(bench.queues, []apps.BurstProcessor{proc}, nil, Config{M: 2, VBar: 100 * time.Microsecond, Seed: 8})
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); r.Run(ctx) }()

	const n = 2000
	sent := bench.produce(ctx, n)
	deadline := time.Now().Add(5 * time.Second)
	for proc.packets.Load() < int64(sent) && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	cancel()
	wg.Wait()
	if proc.packets.Load() != int64(sent) {
		t.Fatalf("processed %d of %d", proc.packets.Load(), sent)
	}
	// FreeAll recycled every mbuf.
	if bench.pool.Available() != bench.pool.Size() {
		t.Fatalf("pool leak: %d/%d", bench.pool.Available(), bench.pool.Size())
	}
}

func TestNewProcValidation(t *testing.T) {
	bench := newBench(t, 2)
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		fn()
	}
	mustPanic("mismatched procs", func() {
		NewProc(bench.queues, []apps.BurstProcessor{&countProc{}}, nil, Config{})
	})
	mustPanic("nil proc", func() {
		NewProc(bench.queues, []apps.BurstProcessor{&countProc{}, nil}, nil, Config{})
	})
	mustPanic("no queues", func() {
		NewProc(nil, nil, nil, Config{})
	})
}

func TestBusPublishesOccAvgLive(t *testing.T) {
	bench := newBench(t, 1)
	bus := telemetry.NewBus(1, 4)
	handler := func(batch []*mbuf.Mbuf) {
		time.Sleep(100 * time.Microsecond) // slow consumer: occupancy builds
		for _, m := range batch {
			m.Free()
		}
	}
	r := New(bench.queues, handler, Config{M: 3, VBar: 100 * time.Microsecond, Seed: 11, Bus: bus})
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); r.Run(ctx) }()

	deadline := time.Now().Add(3 * time.Second)
	seen := false
	for time.Now().Before(deadline) {
		bench.produce(ctx, 512)
		if bus.OccAvg(0) > 0 {
			seen = true
			break
		}
	}
	cancel()
	wg.Wait()
	if !seen {
		t.Fatal("live runner never published a time-averaged occupancy")
	}
}

// TestLiveBusLatencyHistogram is the live half of the fidelity-plane
// equivalence contract: the drain loop measures per-packet latency from
// RxStampNs and publishes it into the same bus bucket layout the sim uses.
// Stamps are scripted one second in the past — three orders of magnitude
// above drain jitter, far inside one ~31ms-wide bucket — so the recorded
// quantiles are pinned; unstamped packets must be excluded, not recorded
// as epoch-sized garbage.
func TestLiveBusLatencyHistogram(t *testing.T) {
	bench := newBench(t, 1)
	bus := telemetry.NewBus(1, 4)
	handler := func(batch []*mbuf.Mbuf) {
		for _, m := range batch {
			m.Free()
		}
	}
	r := New(bench.queues, handler, Config{M: 2, VBar: 200 * time.Microsecond, Seed: 3, Bus: bus})
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); r.Run(ctx) }()

	const stamped, unstamped = 400, 100
	sent := 0
	for sent < stamped+unstamped {
		m, err := bench.pool.Get()
		if err != nil {
			time.Sleep(50 * time.Microsecond)
			continue
		}
		m.SetFrame([]byte{byte(sent)})
		if sent < stamped {
			m.RxStampNs = mbuf.Nanotime() - int64(time.Second)
		}
		if !bench.rings[0].Enqueue(m) {
			m.Free()
			time.Sleep(50 * time.Microsecond)
			continue
		}
		sent++
	}
	var h stats.LogHistogram
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		h.Reset()
		bus.SampleLatency(0, &h)
		if h.N() >= stamped && bus.Rx(0) >= stamped+unstamped {
			break
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	wg.Wait()
	if h.N() != stamped {
		t.Fatalf("histogram holds %d latencies, want %d (unstamped must not count)", h.N(), stamped)
	}
	p50, p999 := h.Quantile(0.5), h.Quantile(0.999)
	if p50 < 1e9 || p50 > 1.5e9 {
		t.Errorf("p50 = %d ns, want ~1s", p50)
	}
	if p999 < p50 || p999 > 3e9 {
		t.Errorf("p99.9 = %d ns, want in [p50, 3s]", p999)
	}
}
