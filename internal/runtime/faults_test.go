package runtime

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"metronome/internal/faults"
	"metronome/internal/mbuf"
	"metronome/internal/sched"
	"metronome/internal/telemetry"
)

// faultBench builds a 2-queue runner with a fault injector and a counting
// handler, returns it running plus a stop func that cancels and waits.
func faultBench(t *testing.T, m int, cfg Config) (*testBench, *Runner, *faults.Injector, *atomic.Uint64, func()) {
	t.Helper()
	bench := newBench(t, 2)
	var processed atomic.Uint64
	handler := func(batch []*mbuf.Mbuf) {
		for _, mb := range batch {
			processed.Add(1)
			mb.Free()
		}
	}
	inj := faults.New(32, 2)
	cfg.M = m
	cfg.Faults = inj
	if cfg.VBar == 0 {
		cfg.VBar = 100 * time.Microsecond
	}
	r := New(bench.queues, handler, cfg)
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); r.Run(ctx) }()
	return bench, r, inj, &processed, func() { cancel(); wg.Wait() }
}

// drainTo waits until processed reaches want or the deadline passes.
func drainTo(processed *atomic.Uint64, want uint64, d time.Duration) bool {
	deadline := time.Now().Add(d)
	for processed.Load() < want {
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(time.Millisecond)
	}
	return true
}

// Satellite: SetTeamSize racing a thread stall — a stalled member must park
// cleanly when the resize retires it mid-window and re-admit afterwards.
// The race detector is half the assertion.
func TestResizeRacesThreadStall(t *testing.T) {
	bench, r, inj, processed, stop := faultBench(t, 6, Config{Policy: sched.NameRMetronome, Seed: 21})
	defer stop()
	ctx := context.Background()
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 40; i++ {
			inj.StallThread(i%6, r.Elapsed()+0.002)
			time.Sleep(500 * time.Microsecond)
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 40; i++ {
			r.SetTeamSize(2 + i%5)
			time.Sleep(500 * time.Microsecond)
		}
	}()
	sent := bench.produce(ctx, 20000)
	wg.Wait()
	r.SetTeamSize(6)
	if !drainTo(processed, uint64(sent), 5*time.Second) {
		t.Fatalf("processed %d of %d after stall/resize churn", processed.Load(), sent)
	}
	if bench.pool.Available() != bench.pool.Size() {
		t.Fatalf("pool leak: %d/%d", bench.pool.Available(), bench.pool.Size())
	}
}

// Satellite: a dead member is re-homed by a placement plan while dead, then
// revived — it must come back serving its new home without a restart.
func TestRehomeDeadMemberThenRevive(t *testing.T) {
	bench, r, inj, processed, stop := faultBench(t, 4, Config{Policy: sched.NameRMetronome, Seed: 22})
	defer stop()
	ctx := context.Background()
	inj.KillThread(1)
	time.Sleep(2 * time.Millisecond)
	// Re-home everything while thread 1 is dead: plans land per queue, so
	// the dead member's home may move under it.
	r.ApplyPlacement([]int{3, 1})
	r.ApplyPlacement([]int{1, 3})
	inj.ReviveThread(1)
	sent := bench.produce(ctx, 20000)
	if !drainTo(processed, uint64(sent), 5*time.Second) {
		t.Fatalf("processed %d of %d after dead-member re-home", processed.Load(), sent)
	}
	cycles := r.Stats.Cycles.Load()
	if cycles == 0 {
		t.Fatal("no cycles after revival")
	}
}

// Satellite: resize during a queue blackout — the dark queue's ring backs up
// while the team churns; recovery must drain the full backlog.
func TestResizeDuringBlackout(t *testing.T) {
	bench, r, inj, processed, stop := faultBench(t, 4, Config{Policy: sched.NameRMetronome, Seed: 23})
	defer stop()
	ctx := context.Background()
	inj.SetQueueDark(0, true)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			r.SetTeamSize(2 + i%4)
			time.Sleep(time.Millisecond)
		}
	}()
	// The 1024-slot ring holds the dark queue's share; keep the total under
	// capacity so nothing is lost producer-side and recovery is exact.
	sent := bench.produce(ctx, 1500)
	wg.Wait()
	inj.SetQueueDark(0, false)
	if !drainTo(processed, uint64(sent), 5*time.Second) {
		t.Fatalf("processed %d of %d after blackout recovery", processed.Load(), sent)
	}
	if bench.pool.Available() != bench.pool.Size() {
		t.Fatalf("pool leak: %d/%d", bench.pool.Available(), bench.pool.Size())
	}
}

// A frozen queue stops bumping its publish sequence while heartbeats keep
// moving — the clock-free staleness signal the health layer consumes.
func TestLiveFreezeStopsPubSeqNotHeartbeat(t *testing.T) {
	bus := telemetry.NewBus(2, 32)
	bench, _, inj, processed, stop := faultBench(t, 3, Config{Bus: bus, Seed: 24})
	defer stop()
	ctx := context.Background()
	sent := bench.produce(ctx, 4000)
	if !drainTo(processed, uint64(sent), 5*time.Second) {
		t.Fatalf("warm-up drain incomplete: %d of %d", processed.Load(), sent)
	}
	inj.FreezeTelemetry(0, true)
	// One settling cycle so in-flight publishes land before the baseline.
	time.Sleep(5 * time.Millisecond)
	seq0 := bus.PubSeq(0)
	hb := make([]float64, 3)
	for i := range hb {
		hb[i] = bus.Heartbeat(i)
	}
	sent2 := bench.produce(ctx, 4000)
	if !drainTo(processed, uint64(sent+sent2), 5*time.Second) {
		t.Fatalf("frozen-queue drain incomplete: %d of %d", processed.Load(), sent+sent2)
	}
	if got := bus.PubSeq(0); got != seq0 {
		t.Fatalf("frozen queue kept publishing: seq %d -> %d", seq0, got)
	}
	moved := 0
	for i := range hb {
		if bus.Heartbeat(i) > hb[i] {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("no heartbeat advanced during the freeze")
	}
	inj.FreezeTelemetry(0, false)
	sent3 := bench.produce(ctx, 2000)
	if !drainTo(processed, uint64(sent+sent2+sent3), 5*time.Second) {
		t.Fatalf("thawed drain incomplete")
	}
	if bus.PubSeq(0) == seq0 {
		t.Fatal("thawed queue never resumed publishing")
	}
}
