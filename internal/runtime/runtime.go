// Package runtime is the real-time Metronome: the paper's sleep&wake
// retrieval loop (Listing 2) running on actual goroutines with atomic
// trylocks, for Go packet sources that would otherwise burn a core
// busy-polling a ring. The discrete-event twin in internal/core reproduces
// the paper's numbers; this package is the one you embed in an application.
package runtime

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"metronome/internal/hrtimer"
	"metronome/internal/mbuf"
	"metronome/internal/ring"
	"metronome/internal/sched"
	"metronome/internal/xrand"
)

// RxQueue is any non-blocking burst packet source (a ring fed by AF_PACKET,
// a userspace driver, a test generator...).
type RxQueue interface {
	// PollBurst moves up to len(out) packets into out and returns the
	// count; zero means the queue is currently empty.
	PollBurst(out []*mbuf.Mbuf) int
}

// RingQueue adapts an MPMC ring of mbufs to RxQueue.
type RingQueue struct {
	R *ring.MPMC[*mbuf.Mbuf]
}

// PollBurst implements RxQueue.
func (q RingQueue) PollBurst(out []*mbuf.Mbuf) int { return q.R.DequeueBurst(out) }

// Handler consumes one burst of packets. The handler owns the mbufs: it
// must Free them (or hand them on) before returning control flow to the
// pool's producer side.
type Handler func(batch []*mbuf.Mbuf)

// Config tunes the runner; zero fields take the paper's defaults.
type Config struct {
	// M is the number of retrieval goroutines (default 3).
	M int
	// VBar is the target vacation period (default 200us: Go timers are
	// coarser than hr_sleep, so the sweet spot sits higher than DPDK's).
	VBar time.Duration
	// TL is the backup timeout (default 50*VBar).
	TL time.Duration
	// Alpha is the load-estimator EWMA (default 0.125).
	Alpha float64
	// Burst is the PollBurst size (default 32).
	Burst int
	// Policy names the scheduling discipline from the sched registry
	// ("adaptive", "fixed", "busypoll", ...). Empty defaults to adaptive,
	// or fixed when TSFixed is set. Like New's other validations, an
	// unknown name panics at construction; pre-validate user-supplied
	// names with sched.New / metronome.PolicyNames.
	Policy string
	// TSFixed pins the short timeout, disabling the eq. (13)/(14) rule
	// (consulted only when Policy is empty or "fixed").
	TSFixed time.Duration
	// Sleeper is the sleep service (default hrtimer.GoSleeper).
	Sleeper hrtimer.Sleeper
	// Seed drives backup queue selection.
	Seed uint64
}

func (c *Config) defaults() {
	if c.M <= 0 {
		c.M = 3
	}
	if c.VBar <= 0 {
		c.VBar = 200 * time.Microsecond
	}
	if c.TL <= 0 {
		c.TL = 50 * c.VBar
	}
	if c.Alpha <= 0 {
		c.Alpha = 0.125
	}
	if c.Burst <= 0 {
		c.Burst = 32
	}
	if c.Sleeper == nil {
		c.Sleeper = hrtimer.GoSleeper{}
	}
}

// Stats are cumulative runner counters, safe to read concurrently.
type Stats struct {
	Tries     atomic.Uint64
	BusyTries atomic.Uint64
	Cycles    atomic.Uint64
	Packets   atomic.Uint64
	Bursts    atomic.Uint64
}

type queueState struct {
	lock        atomic.Bool
	lastRelease atomic.Int64 // nanotime of last lock release
}

// Runner drives M goroutines over N shared queues. Timeout selection, load
// estimation and backup queue choice live in the sched.Policy — the same
// engine the discrete-event twin in internal/core runs on.
type Runner struct {
	cfg     Config
	queues  []RxQueue
	handler Handler
	policy  sched.Policy
	state   []queueState
	Stats   Stats

	start time.Time
}

// New builds a runner. It panics on an empty queue set or nil handler —
// both are programming errors, not runtime conditions.
func New(queues []RxQueue, handler Handler, cfg Config) *Runner {
	if len(queues) == 0 {
		panic("runtime: no queues")
	}
	if handler == nil {
		panic("runtime: nil handler")
	}
	cfg.defaults()
	if cfg.M < len(queues) {
		cfg.M = len(queues) // every queue deserves a primary (Sec. IV-E)
	}
	name := cfg.Policy
	if name == "" {
		if cfg.TSFixed > 0 {
			name = sched.NameFixed
		} else {
			name = sched.NameAdaptive
		}
	}
	r := &Runner{
		cfg:     cfg,
		queues:  queues,
		handler: handler,
		policy: sched.MustNew(name, sched.Config{
			VBar:    cfg.VBar.Seconds(),
			TL:      cfg.TL.Seconds(),
			TSFixed: cfg.TSFixed.Seconds(),
			M:       cfg.M,
			N:       len(queues),
			Alpha:   cfg.Alpha,
		}),
		state: make([]queueState, len(queues)),
	}
	return r
}

// Policy exposes the scheduling discipline driving this runner.
func (r *Runner) Policy() sched.Policy { return r.policy }

// Rho returns queue q's current load estimate.
func (r *Runner) Rho(q int) float64 { return r.policy.Rho(q) }

// TS returns queue q's current short timeout.
func (r *Runner) TS(q int) time.Duration { return seconds(r.policy.TS(q)) }

// seconds converts the policy engine's float64 seconds to a Duration.
func seconds(s float64) time.Duration { return time.Duration(s * float64(time.Second)) }

// Run blocks, serving queues until ctx is cancelled. It may be called once.
func (r *Runner) Run(ctx context.Context) {
	r.start = time.Now()
	var wg sync.WaitGroup
	for i := 0; i < r.cfg.M; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			r.threadLoop(ctx, id)
		}(i)
	}
	wg.Wait()
}

func (r *Runner) nanotime() int64 { return int64(time.Since(r.start)) }

// threadLoop is Listing 2 on a goroutine.
func (r *Runner) threadLoop(ctx context.Context, id int) {
	rng := xrand.New(r.cfg.Seed ^ uint64(id)*0x9e3779b97f4a7c15)
	buf := make([]*mbuf.Mbuf, r.cfg.Burst)
	q := id % len(r.queues)
	for ctx.Err() == nil {
		r.Stats.Tries.Add(1)
		st := &r.state[q]
		if !st.lock.CompareAndSwap(false, true) {
			// Busy try: let the policy re-target the thread and back off
			// for its long timeout.
			r.Stats.BusyTries.Add(1)
			tl := r.policy.TL(q)
			q = r.policy.PickBackupQueue(q, rng)
			r.cfg.Sleeper.Sleep(seconds(tl))
			continue
		}
		began := r.nanotime()
		vacation := time.Duration(began - st.lastRelease.Load())
		for {
			n := r.queues[q].PollBurst(buf)
			if n == 0 {
				break
			}
			r.handler(buf[:n])
			r.Stats.Packets.Add(uint64(n))
			r.Stats.Bursts.Add(1)
		}
		ended := r.nanotime()
		busy := time.Duration(ended - began)

		// Hand the cycle to the policy engine: it folds it into the load
		// estimate (eq. 11) and returns the re-evaluated TS (eq. 13/14).
		// Only the lock holder observes a queue's cycles, which is the
		// serialisation ObserveCycle requires.
		ts := r.policy.ObserveCycle(q, busy.Seconds(), vacation.Seconds())
		st.lastRelease.Store(ended)
		r.Stats.Cycles.Add(1)
		st.lock.Store(false)

		r.cfg.Sleeper.Sleep(seconds(ts))
	}
}

// StaticPoller is the comparator: one busy-spinning goroutine per queue,
// exactly the classic DPDK loop of Listing 1. It exists so applications
// (and the examples) can measure what Metronome saves them.
type StaticPoller struct {
	Queues  []RxQueue
	Handler Handler
	Burst   int

	Packets atomic.Uint64
	Polls   atomic.Uint64
}

// Run blocks until ctx is cancelled, burning one goroutine per queue.
func (s *StaticPoller) Run(ctx context.Context) {
	burst := s.Burst
	if burst <= 0 {
		burst = 32
	}
	var wg sync.WaitGroup
	for _, q := range s.Queues {
		wg.Add(1)
		go func(q RxQueue) {
			defer wg.Done()
			buf := make([]*mbuf.Mbuf, burst)
			for ctx.Err() == nil {
				s.Polls.Add(1)
				n := q.PollBurst(buf)
				if n == 0 {
					continue
				}
				s.Handler(buf[:n])
				s.Packets.Add(uint64(n))
			}
		}(q)
	}
	wg.Wait()
}
