// Package runtime is the real-time Metronome: the paper's sleep&wake
// retrieval loop (Listing 2) running on actual goroutines with atomic
// trylocks, for Go packet sources that would otherwise burn a core
// busy-polling a ring. The discrete-event twin in internal/core reproduces
// the paper's numbers; this package is the one you embed in an application.
package runtime

import (
	"context"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"metronome/internal/apps"
	"metronome/internal/faults"
	"metronome/internal/hrtimer"
	"metronome/internal/mbuf"
	"metronome/internal/obsv"
	"metronome/internal/ring"
	"metronome/internal/sched"
	"metronome/internal/telemetry"
	"metronome/internal/xrand"
)

// RxQueue is any non-blocking burst packet source (a ring fed by AF_PACKET,
// a userspace driver, a test generator...).
type RxQueue interface {
	// PollBurst moves up to len(out) packets into out and returns the
	// count; zero means the queue is currently empty.
	PollBurst(out []*mbuf.Mbuf) int
}

// RxRing is a ring-backed RxQueue with its producer side exposed, so one
// value can be handed to both the traffic source and the Runner. NewRxRing
// picks the cheapest safe specialisation for a deployment.
type RxRing interface {
	RxQueue
	// Enqueue adds one packet; false means the ring is full.
	Enqueue(m *mbuf.Mbuf) bool
	// EnqueueBurst adds as many packets of in as fit and returns the count.
	EnqueueBurst(in []*mbuf.Mbuf) int
	// Cap returns the ring capacity.
	Cap() int
	// Len returns an instantaneous element count (occupancy metrics only).
	Len() int
}

// RingQueue adapts an MPMC ring of mbufs to RxRing.
type RingQueue struct {
	R *ring.MPMC[*mbuf.Mbuf]
}

// PollBurst implements RxQueue.
func (q RingQueue) PollBurst(out []*mbuf.Mbuf) int { return q.R.DequeueBurst(out) }

// Enqueue implements RxRing.
func (q RingQueue) Enqueue(m *mbuf.Mbuf) bool { return q.R.Enqueue(m) }

// EnqueueBurst implements RxRing.
func (q RingQueue) EnqueueBurst(in []*mbuf.Mbuf) int { return q.R.EnqueueBurst(in) }

// Cap implements RxRing.
func (q RingQueue) Cap() int { return q.R.Cap() }

// Len implements RxRing.
func (q RingQueue) Len() int { return q.R.Len() }

// SPSCQueue adapts a single-producer/single-consumer ring of mbufs to
// RxRing — the fast path NewRxRing selects when a queue has exactly one
// producer and one consumer: burst polls cost two atomic loads and one
// release store instead of MPMC's CAS plus per-slot sequence traffic.
type SPSCQueue struct {
	R *ring.SPSC[*mbuf.Mbuf]
}

// PollBurst implements RxQueue.
func (q SPSCQueue) PollBurst(out []*mbuf.Mbuf) int { return q.R.DequeueBurst(out) }

// Enqueue implements RxRing.
func (q SPSCQueue) Enqueue(m *mbuf.Mbuf) bool { return q.R.Enqueue(m) }

// EnqueueBurst implements RxRing.
func (q SPSCQueue) EnqueueBurst(in []*mbuf.Mbuf) int { return q.R.EnqueueBurst(in) }

// Cap implements RxRing.
func (q SPSCQueue) Cap() int { return q.R.Cap() }

// Len implements RxRing.
func (q SPSCQueue) Len() int { return q.R.Len() }

// NewRxRing builds a ring-backed Rx queue of the given capacity (a power of
// two >= 2) and selects the specialisation automatically: the SPSC fast
// path when the queue has exactly one producer and one consumer, the MPMC
// ring otherwise.
//
// Count consuming *entities*, not goroutines: a Runner is ONE consumer per
// queue regardless of its M, because the per-queue trylock serialises every
// PollBurst and the lock's atomic hand-off publishes each drain to the next
// lock holder (the release/acquire edge SPSC needs). Multiple Runners — or
// a Runner plus any out-of-band reader — sharing one queue are multiple
// consumers and get the MPMC ring.
func NewRxRing(capacity, producers, consumers int) (RxRing, error) {
	if producers == 1 && consumers == 1 {
		r, err := ring.NewSPSC[*mbuf.Mbuf](capacity)
		if err != nil {
			return nil, err
		}
		return SPSCQueue{R: r}, nil
	}
	r, err := ring.NewMPMC[*mbuf.Mbuf](capacity)
	if err != nil {
		return nil, err
	}
	return RingQueue{R: r}, nil
}

// Handler consumes one burst of packets. The handler owns the mbufs: it
// must Free them (or hand them on) before returning control flow to the
// pool's producer side.
type Handler func(batch []*mbuf.Mbuf)

// EmitFunc disposes of a served burst in the processor path: ms[i] carries
// verdicts[i] (Forward packets have been rewritten in place). The emit owns
// the mbufs — it must Free them or hand them on — and the verdict slice is
// only valid until it returns (the retrieval goroutine reuses it).
type EmitFunc func(q int, ms []*mbuf.Mbuf, verdicts []apps.Verdict)

// FreeAll recycles every mbuf of the burst into its pool in bulk
// (mbuf.FreeBurst: one ring enqueue per same-pool run, not one per
// packet). It is the stateless form of what a nil emit does on the
// processor path — there, each retrieval goroutine additionally coalesces
// returns across bursts through a per-goroutine mbuf.Recycler cache.
func FreeAll(q int, ms []*mbuf.Mbuf, verdicts []apps.Verdict) {
	mbuf.FreeBurst(ms)
}

// Config tunes the runner; zero fields take the paper's defaults.
type Config struct {
	// M is the number of retrieval goroutines (default 3).
	M int
	// VBar is the target vacation period (default 200us: Go timers are
	// coarser than hr_sleep, so the sweet spot sits higher than DPDK's).
	VBar time.Duration
	// TL is the backup timeout (default 50*VBar).
	TL time.Duration
	// Alpha is the load-estimator EWMA (default 0.125).
	Alpha float64
	// Burst is the PollBurst size (default 32).
	Burst int
	// Policy names the scheduling discipline from the sched registry
	// ("adaptive", "fixed", "busypoll", "rmetronome", "worksteal", ...).
	// Empty defaults to adaptive,
	// or fixed when TSFixed is set. Like New's other validations, an
	// unknown name panics at construction; pre-validate user-supplied
	// names with sched.New / metronome.PolicyNames.
	Policy string
	// TSFixed pins the short timeout, disabling the eq. (13)/(14) rule
	// (consulted only when Policy is empty or "fixed").
	TSFixed time.Duration
	// Sleeper is the sleep service (default hrtimer.GoSleeper).
	Sleeper hrtimer.Sleeper
	// Bus, when set, receives live telemetry: per-queue ring occupancy,
	// rho, trylock counters and per-thread on-CPU time, published from the
	// retrieval goroutines with one atomic store each. The elastic control
	// plane samples it; the work-stealing discipline reads occupancy from
	// it. Producers should AddDrops/AddRx on it for loss visibility.
	Bus *telemetry.Bus
	// Faults, when set, is the deterministic fault-injection plane the
	// retrieval goroutines consult on their cycle path: dead threads park in
	// a revival-polling sleep, stalled threads sleep through their windows
	// (stall bounds are seconds on the Elapsed clock), dark queues win their
	// lock but skip the drain while the ring backs up, and frozen queues
	// stop publishing telemetry. Nil keeps the hot path to one pointer test
	// per wakeup.
	Faults *faults.Injector
	// Dephase enables turn-aware wake de-phasing in the shared-queue
	// disciplines (see sched.Dephaser).
	Dephase bool
	// Recorder, when set, is the observability plane's flight recorder:
	// every applied placement swap records one event stamped with the
	// runner's elapsed-seconds clock (zero before Run starts). The elastic
	// controller carries its own Recorder reference for decision events;
	// wiring both to one ring yields the interleaved control-plane
	// timeline.
	Recorder *obsv.Recorder
	// Seed drives backup queue selection.
	Seed uint64
}

func (c *Config) defaults() {
	if c.M <= 0 {
		c.M = 3
	}
	if c.VBar <= 0 {
		c.VBar = 200 * time.Microsecond
	}
	if c.TL <= 0 {
		c.TL = 50 * c.VBar
	}
	if c.Alpha <= 0 {
		c.Alpha = 0.125
	}
	if c.Burst <= 0 {
		c.Burst = 32
	}
	if c.Sleeper == nil {
		c.Sleeper = hrtimer.GoSleeper{}
	}
}

// Stats are cumulative runner counters, safe to read concurrently.
type Stats struct {
	Tries     atomic.Uint64
	BusyTries atomic.Uint64
	Cycles    atomic.Uint64
	Packets   atomic.Uint64
	Bursts    atomic.Uint64
}

type queueState struct {
	lock        atomic.Bool
	lastRelease atomic.Int64 // nanotime of last lock release
}

// Runner drives M goroutines over N shared queues. Timeout selection, load
// estimation and backup queue choice live in the sched.Policy — the same
// engine the discrete-event twin in internal/core runs on. The team is
// elastic: SetTeamSize spawns or parks retrieval goroutines mid-run (the
// live substrate of internal/elastic).
type Runner struct {
	cfg     Config
	queues  []RxQueue
	handler Handler               // generic burst path (New)
	procs   []apps.BurstProcessor // per-queue application path (NewProc)
	emit    EmitFunc              // burst disposal for the processor path
	policy  sched.Policy
	group   sched.GroupPolicy // non-nil when the policy binds service groups
	dephase sched.Dephaser    // non-nil when the policy staggers group wakes
	bus     *telemetry.Bus    // nil unless Config.Bus
	faults  *faults.Injector  // nil unless Config.Faults
	rec     *obsv.Recorder    // nil unless Config.Recorder
	lens    []func() int      // per-queue occupancy probes (nil if unknowable)
	occAt   []atomic.Int64    // per-queue nanotime of the last OccAvg fold
	state   []queueState
	Stats   Stats

	// Elastic team state. teamSize is the desired team; goroutines with
	// id >= teamSize park on resizeCh (closed-and-replaced on every
	// resize, a broadcast). spawned tracks how many goroutines exist, so
	// growth past the high-water mark launches new ones.
	teamSize atomic.Int32
	resizeMu sync.Mutex
	resizeCh chan struct{}
	spawned  int
	running  bool
	runCtx   context.Context
	wg       *sync.WaitGroup

	start time.Time
}

// New builds a runner. It panics on an empty queue set or nil handler —
// both are programming errors, not runtime conditions.
func New(queues []RxQueue, handler Handler, cfg Config) *Runner {
	if handler == nil {
		panic("runtime: nil handler")
	}
	return newRunner(queues, handler, nil, nil, cfg)
}

// NewProc builds a runner on the burst-native application path: queue q's
// drains go straight to procs[q].ProcessBurst — one virtual dispatch per
// burst, verdicts written into a retrieval-goroutine-owned buffer, zero
// allocations per burst — and then to emit for disposal. A nil emit
// recycles every mbuf through a per-goroutine mempool cache: the whole
// verdict burst returns in one bulk PutBurst, spilled to the shared pool
// ring in watermark-sized spans (caches flush when a goroutine parks or
// retires, so elastic shrinks leak nothing).
//
// One processor per queue is the sharding contract: the per-queue trylock
// serialises every drain of queue q, so procs[q] is single-writer and needs
// no locks even though M goroutines share the queue set (flowatcher.Sharded
// leans on exactly this). Passing the same processor for every queue is
// also fine when it is internally synchronised or the deployment is
// single-queue.
func NewProc(queues []RxQueue, procs []apps.BurstProcessor, emit EmitFunc, cfg Config) *Runner {
	if len(procs) != len(queues) {
		panic("runtime: len(procs) != len(queues)")
	}
	for _, p := range procs {
		if p == nil {
			panic("runtime: nil processor")
		}
	}
	// A nil emit stays nil: threadLoop routes it to the per-goroutine
	// recycler's bulk-free path (FreeAll semantics, batched).
	return newRunner(queues, nil, procs, emit, cfg)
}

func newRunner(queues []RxQueue, handler Handler, procs []apps.BurstProcessor, emit EmitFunc, cfg Config) *Runner {
	if len(queues) == 0 {
		panic("runtime: no queues")
	}
	cfg.defaults()
	if cfg.M < len(queues) {
		cfg.M = len(queues) // every queue deserves a primary (Sec. IV-E)
	}
	name := cfg.Policy
	if name == "" {
		if cfg.TSFixed > 0 {
			name = sched.NameFixed
		} else {
			name = sched.NameAdaptive
		}
	}
	r := &Runner{
		cfg:     cfg,
		queues:  queues,
		handler: handler,
		procs:   procs,
		emit:    emit,
		policy: sched.MustNew(name, sched.Config{
			VBar:    cfg.VBar.Seconds(),
			TL:      cfg.TL.Seconds(),
			TSFixed: cfg.TSFixed.Seconds(),
			M:       cfg.M,
			N:       len(queues),
			Alpha:   cfg.Alpha,
			Bus:     cfg.Bus,
			Dephase: cfg.Dephase,
		}),
		state:    make([]queueState, len(queues)),
		resizeCh: make(chan struct{}),
	}
	r.group, _ = r.policy.(sched.GroupPolicy)
	r.dephase, _ = r.policy.(sched.Dephaser)
	r.bus = cfg.Bus
	r.faults = cfg.Faults
	r.rec = cfg.Recorder
	r.teamSize.Store(int32(cfg.M))
	// Occupancy probes: any queue exposing Len (RxRing does) feeds the
	// telemetry plane; opaque sources simply stay dark on that signal.
	r.lens = make([]func() int, len(queues))
	for i, q := range queues {
		if lq, ok := q.(interface{ Len() int }); ok {
			r.lens[i] = lq.Len
		}
	}
	if r.bus != nil {
		r.occAt = make([]atomic.Int64, len(queues))
		for i, probe := range r.lens {
			if cq, ok := queues[i].(interface{ Cap() int }); ok && probe != nil {
				r.bus.SetCapacity(i, float64(cq.Cap()))
			}
		}
	}
	return r
}

// publishOcc samples queue q's occupancy probe into the bus: the point
// gauge, plus a time-constant EWMA (tau = 8*VBar) as the time-averaged
// gauge. The live substrate has no fluid integral, so the EWMA stands in:
// it low-passes the cycle-phase alias that makes point samples read either
// "just drained" or "full vacation's worth" depending on when the prober
// runs. Concurrent publishers may interleave the read-modify-write — each
// step is atomic and any lost fold only delays the average by one sample,
// which the controller's own smoothing absorbs.
func (r *Runner) publishOcc(q int, now int64) {
	probe := r.lens[q]
	if probe == nil {
		return
	}
	occ := float64(probe())
	r.bus.SetOccupancy(q, occ)
	last := r.occAt[q].Swap(now)
	if last == 0 {
		r.bus.SetOccAvg(q, occ)
		return
	}
	dt := time.Duration(now - last).Seconds()
	if dt <= 0 {
		return
	}
	a := 1 - math.Exp(-dt/(8*r.cfg.VBar).Seconds())
	avg := r.bus.OccAvg(q)
	r.bus.SetOccAvg(q, avg+a*(occ-avg))
}

// Policy exposes the scheduling discipline driving this runner.
func (r *Runner) Policy() sched.Policy { return r.policy }

// Rho returns queue q's current load estimate.
func (r *Runner) Rho(q int) float64 { return r.policy.Rho(q) }

// TS returns queue q's current short timeout.
func (r *Runner) TS(q int) time.Duration { return seconds(r.policy.TS(q)) }

// seconds converts the policy engine's float64 seconds to a Duration.
func seconds(s float64) time.Duration { return time.Duration(s * float64(time.Second)) }

// Run blocks, serving queues until ctx is cancelled. It may be called once.
func (r *Runner) Run(ctx context.Context) {
	var wg sync.WaitGroup
	r.resizeMu.Lock()
	// Written under resizeMu so Elapsed can read it from any goroutine; the
	// retrieval goroutines are spawned below while the lock is held, so
	// their unguarded nanotime reads see it via the spawn happens-before.
	r.start = time.Now()
	r.runCtx = ctx
	r.wg = &wg
	r.running = true
	n := int(r.teamSize.Load())
	for i := r.spawned; i < n; i++ {
		r.spawnLocked(i)
	}
	if n > r.spawned {
		r.spawned = n
	}
	r.resizeMu.Unlock()
	wg.Wait()
}

// spawnLocked launches retrieval goroutine id; resizeMu must be held.
func (r *Runner) spawnLocked(id int) {
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		r.threadLoop(r.runCtx, id)
	}()
}

// TeamSize returns the current desired team size.
func (r *Runner) TeamSize() int { return int(r.teamSize.Load()) }

// SetTeamSize grows or shrinks the retrieval team to m mid-run — the live
// substrate of the elastic control plane's scalar path, retained as the
// degenerate *balanced* placement plan (m members spread m/N per queue).
// It returns the applied size (m clamps to one thread per queue). Safe to
// call before Run (the team starts at the new size) and from any
// goroutine while running.
func (r *Runner) SetTeamSize(m int) int {
	if m < len(r.queues) {
		m = len(r.queues)
	}
	return r.ApplyPlacement(sched.BalancedPlacement(m, len(r.queues)))
}

// ApplyPlacement adopts a full placement plan mid-run — the live substrate
// of the placement plane. perQueue[q] members are provisioned for queue q
// (entries clamped to >= 1); the team total becomes their sum and the
// applied total is returned.
//
// Growth spawns goroutines past the high-water mark and wakes parked ones
// via a closed-channel broadcast; shrinkage lets surplus goroutines finish
// their current cycle and park. The policy adopts the plan through
// sched.Rebalancer when it can place (rmetronome/worksteal swap a complete
// home/rank/size layout behind one atomic pointer) and through
// sched.Resizable otherwise. Members whose home moved re-home through the
// existing cycle-end return path without dropping claimed turns: the
// per-queue CAS turn counters live outside the layout and survive the
// swap, so a member that claimed a turn before the rebalance still serves
// it, then re-arms on its new home. Safe to call before Run and from any
// goroutine while running.
func (r *Runner) ApplyPlacement(perQueue []int) int {
	sizes, total := sched.NormalizePlacement(perQueue, len(r.queues))
	at := 0.0
	if r.rec != nil {
		// Stamp before taking resizeMu — Elapsed acquires it too, and the
		// flight recorder's clockless contract wants the caller's clock,
		// not a lock-ordered one.
		at = r.Elapsed()
	}
	r.resizeMu.Lock()
	defer r.resizeMu.Unlock()
	if total == int(r.teamSize.Load()) && r.placementUnchangedLocked(sizes) {
		return total
	}
	r.teamSize.Store(int32(total))
	switch p := r.policy.(type) {
	case sched.Rebalancer:
		p.SetPlacement(sizes)
	case sched.Resizable:
		p.SetTeamSize(total)
	}
	if r.running {
		for id := r.spawned; id < total; id++ {
			r.spawnLocked(id)
		}
		if total > r.spawned {
			r.spawned = total
		}
	}
	// Broadcast: every parked goroutine re-checks its id against the new
	// team size.
	close(r.resizeCh)
	r.resizeCh = make(chan struct{})
	r.rec.RecordPlacement(at, total, sched.PackPlacement(sizes))
	return total
}

// placementUnchangedLocked reports whether sizes matches the placement the
// policy currently holds; non-placing policies only carry the total, which
// the caller already compared.
func (r *Runner) placementUnchangedLocked(sizes []int) bool {
	rb, ok := r.policy.(sched.Rebalancer)
	if !ok {
		return true
	}
	return sched.PlacementEqual(rb.Placement(), sizes)
}

// CanPlace reports whether ApplyPlacement plans actually land per queue:
// true only when the discipline binds placeable groups (sched.Rebalancer).
// Roaming disciplines accept plans but degrade them to the total.
func (r *Runner) CanPlace() bool {
	_, ok := r.policy.(sched.Rebalancer)
	return ok
}

// Placement returns the per-queue member counts currently in effect (the
// policy's group sizes when it places, the balanced split otherwise).
func (r *Runner) Placement() []int {
	if rb, ok := r.policy.(sched.Rebalancer); ok {
		return rb.Placement()
	}
	return sched.BalancedPlacement(r.TeamSize(), len(r.queues))
}

// park blocks goroutine id until a resize re-admits it or ctx ends; it
// returns true when the goroutine should resume serving.
func (r *Runner) park(ctx context.Context, id int) bool {
	for {
		r.resizeMu.Lock()
		ch := r.resizeCh
		r.resizeMu.Unlock()
		// Re-check under the freshly fetched channel: a resize that
		// re-admitted this id before we fetched ch has already closed the
		// channel we would otherwise have missed.
		if id < int(r.teamSize.Load()) {
			return true
		}
		select {
		case <-ctx.Done():
			return false
		case <-ch:
		}
	}
}

func (r *Runner) nanotime() int64 { return int64(time.Since(r.start)) }

// Elapsed returns seconds since Run started — the runner's monotonic clock.
// Fault stall windows and the heartbeat gauge are expressed on it, so the
// elastic health layer never does cross-clock arithmetic (the sim substrate
// publishes virtual seconds on the same contract: heartbeats are compared by
// value change, never subtracted from another clock). Zero before Run.
func (r *Runner) Elapsed() float64 {
	r.resizeMu.Lock()
	start := r.start
	r.resizeMu.Unlock()
	if start.IsZero() {
		return 0
	}
	return time.Since(start).Seconds()
}

// pubGauges reports whether queue q's telemetry gauges should publish: a bus
// is attached and the fault plane has not frozen the queue's telemetry.
func (r *Runner) pubGauges(q int) bool {
	return r.bus != nil && (r.faults == nil || !r.faults.TelemetryFrozen(q))
}

// ThreadHome returns the queue goroutine id is homed on under the current
// placement — the target the elastic health layer aims corrective plans at
// when it exiles an unhealthy member.
func (r *Runner) ThreadHome(id int) int {
	if r.group != nil {
		return r.group.HomeQueue(id)
	}
	return id % len(r.queues)
}

// threadLoop is Listing 2 on a goroutine.
func (r *Runner) threadLoop(ctx context.Context, id int) {
	// Each thread owns a private RNG stream (PickBackupQueue consumes it on
	// the backup path) seeded from the full deployment coordinates — run
	// seed, thread id AND queue count. Folding only (seed, id) would hand
	// two runners with the same seed but different queue counts identical
	// streams, correlating their backup choices; SeedFrom's chained mixing
	// makes every coordinate perturb the whole stream (regression-tested by
	// TestThreadRNGStreamsDependOnQueueCount).
	rng := xrand.New(xrand.SeedFrom(r.cfg.Seed, uint64(id), uint64(len(r.queues))))
	buf := make([]*mbuf.Mbuf, r.cfg.Burst)
	var verdicts []apps.Verdict
	// The default disposal path returns each verdict burst through this
	// goroutine's recycler: one bulk PutBurst per burst into a per-pool
	// magazine cache, spilled to the shared ring in spans. Flushed on every
	// park and on exit so elastic retirement never strands buffers.
	var recycle mbuf.Recycler
	defer recycle.Flush()
	if r.procs != nil {
		// The processor path's verdict buffer is goroutine-owned and reused
		// for every burst — the steady state allocates nothing.
		verdicts = make([]apps.Verdict, r.cfg.Burst)
	}
	q := id % len(r.queues)
	var busyTotal time.Duration // cumulative on-CPU time, published as duty
	for ctx.Err() == nil {
		if id >= int(r.teamSize.Load()) {
			// Elastically retired: finish nothing (we hold no lock here),
			// return any cached buffers to the shared pool, park until a
			// resize re-admits us, then re-home — the group layout may have
			// moved while we were out.
			recycle.Flush()
			if !r.park(ctx, id) {
				return
			}
			q = id % len(r.queues)
			if r.group != nil {
				q = r.group.HomeQueue(id)
			}
			continue
		}
		if f := r.faults; f != nil {
			if f.Dead(id) {
				// Thread death: stop cycling (the heartbeat freezes, which is
				// how the health layer notices) but keep polling the flag so
				// a revival resumes service without a placement round-trip.
				r.cfg.Sleeper.Sleep(seconds(r.policy.TL(q)))
				continue
			}
			if until, ok := f.StalledUntil(id); ok {
				if now := r.Elapsed(); now < until {
					// Stall: sleep through the window without contending.
					r.cfg.Sleeper.Sleep(seconds(until - now))
					continue
				}
			}
		}
		r.Stats.Tries.Add(1)
		if r.pubGauges(q) {
			r.bus.AddTries(q, 1)
		}
		// Shared-queue disciplines CAS-claim the queue's service turn
		// before touching its trylock: a failed claim proves a sibling
		// claimed a turn concurrently, so this thread is surplus for the
		// turn and backs off without bouncing the lock's cache line (the
		// short-circuit skips the trylock). Either way a busy try means
		// the policy re-targets the thread for its backup timeout.
		st := &r.state[q]
		if (r.group != nil && !r.group.ClaimTurn(q)) || !st.lock.CompareAndSwap(false, true) {
			r.Stats.BusyTries.Add(1)
			if r.pubGauges(q) {
				r.bus.AddBusyTries(q, 1)
				r.publishOcc(q, r.nanotime())
				r.bus.BumpPub(q)
			}
			tl := r.policy.TL(q)
			q = r.policy.PickBackupQueue(q, rng)
			if r.dephase != nil {
				// A colliding group member re-spreads onto the rotation
				// clock (no-op for foreign re-targets).
				tl = r.dephase.Dephase(id, q, tl, true)
			}
			r.cfg.Sleeper.Sleep(seconds(tl))
			continue
		}
		began := r.nanotime()
		vacation := time.Duration(began - st.lastRelease.Load())
		if r.pubGauges(q) {
			// Occupancy samples BEFORE the drain. The cycle below is
			// work-conserving — it polls until empty — so an end-of-cycle
			// sample reads the same just-drained phase every time and the
			// gauge pins at zero however deep the vacation backlog ran. A
			// zero occupancy gauge is not cosmetic: the health layer reads
			// "drops rising while the ring reads empty" as a dark queue and
			// discards the loss signal, blinding the controller to genuine
			// overload.
			r.publishOcc(q, began)
		}
		dark := r.faults != nil && r.faults.QueueDark(q)
		for !dark {
			// A dark queue's lock winner skips the drain entirely: the poll
			// "sees" an empty ring while the producer keeps enqueuing, so the
			// backlog (and, past capacity, the producer-side drops) build
			// exactly like a blacked-out NIC queue.
			n := r.queues[q].PollBurst(buf)
			if n == 0 {
				break
			}
			r.Stats.Packets.Add(uint64(n))
			r.Stats.Bursts.Add(1)
			if r.pubGauges(q) {
				r.bus.AddRx(q, uint64(n))
				// Per-packet retrieval latency into the bus histogram: one
				// monotonic-clock read per burst, one atomic add per stamped
				// packet. Unstamped mbufs (producers that leave RxStampNs
				// zero) are excluded rather than recorded as garbage epochs.
				// Stamps are read BEFORE dispatch: emit recycles the mbufs,
				// and a recycled buffer's stamp belongs to its next lease.
				now := mbuf.Nanotime()
				for _, m := range buf[:n] {
					if m.RxStampNs > 0 {
						if lat := now - m.RxStampNs; lat > 0 {
							r.bus.RecordLatency(q, uint64(lat))
						}
					}
				}
			}
			if r.procs != nil {
				r.procs[q].ProcessBurst(buf[:n], verdicts[:n])
				if r.emit != nil {
					r.emit(q, buf[:n], verdicts[:n])
				} else {
					recycle.FreeBurst(buf[:n])
				}
			} else {
				r.handler(buf[:n])
			}
		}
		ended := r.nanotime()
		busy := time.Duration(ended - began)

		// Hand the cycle to the policy engine: it folds it into the load
		// estimate (eq. 11) and returns the re-evaluated TS (eq. 13/14).
		// Only the lock holder observes a queue's cycles, which is the
		// serialisation ObserveCycle requires.
		ts := r.policy.ObserveCycle(q, busy.Seconds(), vacation.Seconds())
		st.lastRelease.Store(ended)
		r.Stats.Cycles.Add(1)
		st.lock.Store(false)
		if r.bus != nil {
			busyTotal += busy
			if r.pubGauges(q) {
				r.bus.SetRho(q, r.policy.Rho(q))
				r.bus.SetThreadBusy(id, busyTotal.Seconds())
				r.bus.BumpPub(q)
			}
			// The heartbeat publishes even through a telemetry freeze:
			// staleness is a property of the queue's gauges, liveness of the
			// thread — the health layer tells them apart by which one moves.
			r.bus.SetHeartbeat(id, time.Duration(ended).Seconds())
		}

		// Shared-queue disciplines keep service groups stable: a member
		// that served a foreign queue as backup returns home and re-arms
		// its home queue's member timeout.
		if r.group != nil {
			if home := r.group.HomeQueue(id); home != q {
				q = home
				ts = r.policy.TS(home)
			}
		}
		if r.dephase != nil {
			ts = r.dephase.Dephase(id, q, ts, false)
		}
		r.cfg.Sleeper.Sleep(seconds(ts))
	}
}

// StaticPoller is the comparator: one busy-spinning goroutine per queue,
// exactly the classic DPDK loop of Listing 1. It exists so applications
// (and the examples) can measure what Metronome saves them.
type StaticPoller struct {
	Queues  []RxQueue
	Handler Handler
	Burst   int

	Packets atomic.Uint64
	Polls   atomic.Uint64
}

// Run blocks until ctx is cancelled, burning one goroutine per queue.
func (s *StaticPoller) Run(ctx context.Context) {
	burst := s.Burst
	if burst <= 0 {
		burst = 32
	}
	var wg sync.WaitGroup
	for _, q := range s.Queues {
		wg.Add(1)
		go func(q RxQueue) {
			defer wg.Done()
			buf := make([]*mbuf.Mbuf, burst)
			for ctx.Err() == nil {
				s.Polls.Add(1)
				n := q.PollBurst(buf)
				if n == 0 {
					continue
				}
				s.Handler(buf[:n])
				s.Packets.Add(uint64(n))
			}
		}(q)
	}
	wg.Wait()
}
