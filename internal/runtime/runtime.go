// Package runtime is the real-time Metronome: the paper's sleep&wake
// retrieval loop (Listing 2) running on actual goroutines with atomic
// trylocks, for Go packet sources that would otherwise burn a core
// busy-polling a ring. The discrete-event twin in internal/core reproduces
// the paper's numbers; this package is the one you embed in an application.
package runtime

import (
	"context"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"metronome/internal/hrtimer"
	"metronome/internal/mbuf"
	"metronome/internal/model"
	"metronome/internal/ring"
	"metronome/internal/xrand"
)

// RxQueue is any non-blocking burst packet source (a ring fed by AF_PACKET,
// a userspace driver, a test generator...).
type RxQueue interface {
	// PollBurst moves up to len(out) packets into out and returns the
	// count; zero means the queue is currently empty.
	PollBurst(out []*mbuf.Mbuf) int
}

// RingQueue adapts an MPMC ring of mbufs to RxQueue.
type RingQueue struct {
	R *ring.MPMC[*mbuf.Mbuf]
}

// PollBurst implements RxQueue.
func (q RingQueue) PollBurst(out []*mbuf.Mbuf) int { return q.R.DequeueBurst(out) }

// Handler consumes one burst of packets. The handler owns the mbufs: it
// must Free them (or hand them on) before returning control flow to the
// pool's producer side.
type Handler func(batch []*mbuf.Mbuf)

// Config tunes the runner; zero fields take the paper's defaults.
type Config struct {
	// M is the number of retrieval goroutines (default 3).
	M int
	// VBar is the target vacation period (default 200us: Go timers are
	// coarser than hr_sleep, so the sweet spot sits higher than DPDK's).
	VBar time.Duration
	// TL is the backup timeout (default 50*VBar).
	TL time.Duration
	// Alpha is the load-estimator EWMA (default 0.125).
	Alpha float64
	// Burst is the PollBurst size (default 32).
	Burst int
	// Adaptive enables the eq. (13)/(14) TS rule (default on unless
	// TSFixed is set).
	TSFixed time.Duration
	// Sleeper is the sleep service (default hrtimer.GoSleeper).
	Sleeper hrtimer.Sleeper
	// Seed drives backup queue selection.
	Seed uint64
}

func (c *Config) defaults() {
	if c.M <= 0 {
		c.M = 3
	}
	if c.VBar <= 0 {
		c.VBar = 200 * time.Microsecond
	}
	if c.TL <= 0 {
		c.TL = 50 * c.VBar
	}
	if c.Alpha <= 0 {
		c.Alpha = 0.125
	}
	if c.Burst <= 0 {
		c.Burst = 32
	}
	if c.Sleeper == nil {
		c.Sleeper = hrtimer.GoSleeper{}
	}
}

// Stats are cumulative runner counters, safe to read concurrently.
type Stats struct {
	Tries     atomic.Uint64
	BusyTries atomic.Uint64
	Cycles    atomic.Uint64
	Packets   atomic.Uint64
	Bursts    atomic.Uint64
}

type queueState struct {
	lock        atomic.Bool
	lastRelease atomic.Int64  // nanotime of last lock release
	rhoBits     atomic.Uint64 // float64 bits of the EWMA load estimate
	tsNanos     atomic.Int64  // current short timeout
}

// Runner drives M goroutines over N shared queues.
type Runner struct {
	cfg     Config
	queues  []RxQueue
	handler Handler
	state   []queueState
	Stats   Stats

	start time.Time
}

// New builds a runner. It panics on an empty queue set or nil handler —
// both are programming errors, not runtime conditions.
func New(queues []RxQueue, handler Handler, cfg Config) *Runner {
	if len(queues) == 0 {
		panic("runtime: no queues")
	}
	if handler == nil {
		panic("runtime: nil handler")
	}
	cfg.defaults()
	if cfg.M < len(queues) {
		cfg.M = len(queues) // every queue deserves a primary (Sec. IV-E)
	}
	r := &Runner{
		cfg:     cfg,
		queues:  queues,
		handler: handler,
		state:   make([]queueState, len(queues)),
	}
	for i := range r.state {
		r.state[i].tsNanos.Store(int64(r.tsFor(0))) // rho=0: TS = M/N * VBar
	}
	return r
}

// tsFor evaluates eq. (13)/(14) for a load estimate, in nanoseconds.
func (r *Runner) tsFor(rho float64) time.Duration {
	if r.cfg.TSFixed > 0 {
		return r.cfg.TSFixed
	}
	ts := model.TSForTargetMultiqueue(r.cfg.VBar.Seconds(), rho, r.cfg.M, len(r.queues))
	return time.Duration(ts * float64(time.Second))
}

// Rho returns queue q's current load estimate.
func (r *Runner) Rho(q int) float64 {
	return math.Float64frombits(r.state[q].rhoBits.Load())
}

// TS returns queue q's current short timeout.
func (r *Runner) TS(q int) time.Duration {
	return time.Duration(r.state[q].tsNanos.Load())
}

// Run blocks, serving queues until ctx is cancelled. It may be called once.
func (r *Runner) Run(ctx context.Context) {
	r.start = time.Now()
	var wg sync.WaitGroup
	for i := 0; i < r.cfg.M; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			r.threadLoop(ctx, id)
		}(i)
	}
	wg.Wait()
}

func (r *Runner) nanotime() int64 { return int64(time.Since(r.start)) }

// threadLoop is Listing 2 on a goroutine.
func (r *Runner) threadLoop(ctx context.Context, id int) {
	rng := xrand.New(r.cfg.Seed ^ uint64(id)*0x9e3779b97f4a7c15)
	buf := make([]*mbuf.Mbuf, r.cfg.Burst)
	q := id % len(r.queues)
	for ctx.Err() == nil {
		r.Stats.Tries.Add(1)
		st := &r.state[q]
		if !st.lock.CompareAndSwap(false, true) {
			// Busy try: back off to a random queue for TL.
			r.Stats.BusyTries.Add(1)
			if len(r.queues) > 1 {
				q = rng.Intn(len(r.queues))
			}
			r.cfg.Sleeper.Sleep(r.cfg.TL)
			continue
		}
		began := r.nanotime()
		vacation := time.Duration(began - st.lastRelease.Load())
		for {
			n := r.queues[q].PollBurst(buf)
			if n == 0 {
				break
			}
			r.handler(buf[:n])
			r.Stats.Packets.Add(uint64(n))
			r.Stats.Bursts.Add(1)
		}
		ended := r.nanotime()
		busy := time.Duration(ended - began)

		// Fold the cycle into the queue's load estimate (eq. 11) and
		// re-evaluate TS (eq. 13/14). Only the lock holder writes these,
		// so plain read-modify-write on the atomics is race-free.
		rho := math.Float64frombits(st.rhoBits.Load())
		sample := model.Rho(busy.Seconds(), vacation.Seconds())
		rho = (1-r.cfg.Alpha)*rho + r.cfg.Alpha*sample
		st.rhoBits.Store(math.Float64bits(rho))
		ts := r.tsFor(rho)
		st.tsNanos.Store(int64(ts))
		st.lastRelease.Store(ended)
		r.Stats.Cycles.Add(1)
		st.lock.Store(false)

		r.cfg.Sleeper.Sleep(ts)
	}
}

// StaticPoller is the comparator: one busy-spinning goroutine per queue,
// exactly the classic DPDK loop of Listing 1. It exists so applications
// (and the examples) can measure what Metronome saves them.
type StaticPoller struct {
	Queues  []RxQueue
	Handler Handler
	Burst   int

	Packets atomic.Uint64
	Polls   atomic.Uint64
}

// Run blocks until ctx is cancelled, burning one goroutine per queue.
func (s *StaticPoller) Run(ctx context.Context) {
	burst := s.Burst
	if burst <= 0 {
		burst = 32
	}
	var wg sync.WaitGroup
	for _, q := range s.Queues {
		wg.Add(1)
		go func(q RxQueue) {
			defer wg.Done()
			buf := make([]*mbuf.Mbuf, burst)
			for ctx.Err() == nil {
				s.Polls.Add(1)
				n := q.PollBurst(buf)
				if n == 0 {
					continue
				}
				s.Handler(buf[:n])
				s.Packets.Add(uint64(n))
			}
		}(q)
	}
	wg.Wait()
}
