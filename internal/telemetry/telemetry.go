// Package telemetry is the lock-free telemetry plane underneath the
// elastic control loop: a fixed set of atomic slots — per-queue occupancy,
// ring capacity, load estimate, drop/receive/trylock counters, per-queue
// log-scale latency histograms and per-thread on-CPU time — that both
// execution substrates publish into and the elastic controller (or any
// observer) samples out of.
//
// The bus is sized once at construction and never allocates afterwards:
// publishing is one atomic store or add per datum, sampling fills a
// caller-owned Snapshot. Every slot is padded to its own cache line so the
// live runtime's goroutines never false-share a publisher's line (the same
// reason rte_ring pads its head/tail indices). Readers see each slot
// atomically but the set of slots is not a consistent cut — the controller
// works on per-slot deltas and tolerates torn cross-slot views, which is
// what makes the plane lock-free on both sides.
//
// The discrete-event twin publishes from a single goroutine, so for it the
// atomics are pure overhead-free determinism; the live runtime publishes
// from M goroutines plus its producers.
package telemetry

import (
	"math"
	"sync/atomic"

	"metronome/internal/stats"
)

// slot is one cache-line-padded atomic cell. Gauges store float64 bits,
// counters store uint64 counts; the interpretation is the bus's.
type slot struct {
	v atomic.Uint64
	_ [56]byte // pad to 64 bytes: no two slots share a line
}

func (s *slot) storeF(v float64) { s.v.Store(math.Float64bits(v)) }
func (s *slot) loadF() float64   { return math.Float64frombits(s.v.Load()) }
func (s *slot) store(v uint64)   { s.v.Store(v) }
func (s *slot) add(n uint64)     { s.v.Add(n) }
func (s *slot) load() uint64     { return s.v.Load() }

// Bus is the fixed-slot telemetry plane for one deployment: nq queues and
// up to nt threads (size it for the elastic budget, not the initial team).
type Bus struct {
	nq, nt int

	occ      []slot      // per-queue occupancy in packets (gauge)
	occAvg   []slot      // per-queue time-averaged occupancy in packets (gauge)
	capacity []slot      // per-queue ring capacity in packets (gauge)
	slope    []slot      // per-queue occupancy slope in capacity fractions/s (gauge)
	rho      []slot      // per-queue load estimate (gauge)
	rate     []slot      // per-queue arrival rate in packets/s (gauge)
	drops    []slot      // per-queue dropped packets (counter)
	rx       []slot      // per-queue received packets (counter)
	tries    []slot      // per-queue trylock attempts (counter)
	busyTry  []slot      // per-queue failed trylock attempts (counter)
	pub      []slot      // per-queue publish sequence (counter)
	busy     []slot      // per-thread cumulative on-CPU seconds (gauge)
	hb       []slot      // per-thread heartbeat: last cycle-completion time (gauge)
	hist     []histBlock // per-queue retrieval-latency histogram (counters)
}

// histBlock is one queue's latency histogram on the bus: a contiguous
// block of atomic bucket counters in the stats.LogHistogram layout. The
// block is a multiple of the cache-line size and tail-padded, so two
// queues' blocks never share a line; counters inside one block are
// written by that queue's servers only (sim: one goroutine; live: the
// members of the queue's service group), which is the same sharing
// domain as the queue's ring itself.
type histBlock struct {
	counts [stats.LogHistBuckets]atomic.Uint64
	_      [56]byte
}

// NewBus builds a bus over nQueues queues and maxThreads thread slots.
// Thread indices at or above maxThreads are dropped on publish (a resize
// beyond the sized budget must not fault the hot path).
func NewBus(nQueues, maxThreads int) *Bus {
	if nQueues < 1 {
		nQueues = 1
	}
	if maxThreads < 1 {
		maxThreads = 1
	}
	return &Bus{
		nq:       nQueues,
		nt:       maxThreads,
		occ:      make([]slot, nQueues),
		occAvg:   make([]slot, nQueues),
		capacity: make([]slot, nQueues),
		slope:    make([]slot, nQueues),
		rho:      make([]slot, nQueues),
		rate:     make([]slot, nQueues),
		drops:    make([]slot, nQueues),
		rx:       make([]slot, nQueues),
		tries:    make([]slot, nQueues),
		busyTry:  make([]slot, nQueues),
		pub:      make([]slot, nQueues),
		busy:     make([]slot, maxThreads),
		hb:       make([]slot, maxThreads),
		hist:     make([]histBlock, nQueues),
	}
}

// Queues returns the number of queue slots.
func (b *Bus) Queues() int { return b.nq }

// Threads returns the number of thread slots.
func (b *Bus) Threads() int { return b.nt }

// SetOccupancy publishes queue q's instantaneous buffered packet count.
func (b *Bus) SetOccupancy(q int, pkts float64) { b.occ[q].storeF(pkts) }

// Occupancy returns the last published occupancy of queue q.
func (b *Bus) Occupancy(q int) float64 { return b.occ[q].loadF() }

// SetOccAvg publishes queue q's time-averaged buffered packet count — the
// occupancy integral over the publisher's accounting window divided by the
// window, not a point sample. Point samples alias Metronome's cycle
// structure badly (a probe at cycle end always reads an empty ring, one at
// wake-up always reads a full vacation's worth); the window average is the
// signal control laws should consume.
func (b *Bus) SetOccAvg(q int, pkts float64) { b.occAvg[q].storeF(pkts) }

// OccAvg returns queue q's last published time-averaged occupancy.
func (b *Bus) OccAvg(q int) float64 { return b.occAvg[q].loadF() }

// SetCapacity publishes queue q's descriptor-ring capacity.
func (b *Bus) SetCapacity(q int, pkts float64) { b.capacity[q].storeF(pkts) }

// Capacity returns queue q's published ring capacity.
func (b *Bus) Capacity(q int) float64 { return b.capacity[q].loadF() }

// SetOccSlope publishes queue q's smoothed occupancy slope, in ring-
// capacity fractions per second — the elastic controller's EWMA of
// d(occupancy/capacity)/dt, positive while a ramp or sine edge is filling
// the ring. Observers (the fig-placement panels, dashboards) read the
// control plane's predictive input here instead of re-deriving it.
func (b *Bus) SetOccSlope(q int, fracPerSec float64) { b.slope[q].storeF(fracPerSec) }

// OccSlope returns queue q's last published occupancy slope.
func (b *Bus) OccSlope(q int) float64 { return b.slope[q].loadF() }

// SetRho publishes queue q's load estimate.
func (b *Bus) SetRho(q int, rho float64) { b.rho[q].storeF(rho) }

// Rho returns queue q's published load estimate.
func (b *Bus) Rho(q int) float64 { return b.rho[q].loadF() }

// SetArrivalRate publishes queue q's measured arrival rate in packets per
// second — derived from deltas of the Rx counter over an accounting window,
// so it reflects what actually entered the queue (drops excluded).
func (b *Bus) SetArrivalRate(q int, pps float64) { b.rate[q].storeF(pps) }

// ArrivalRate returns queue q's last published arrival rate.
func (b *Bus) ArrivalRate(q int) float64 { return b.rate[q].loadF() }

// SetDrops publishes queue q's cumulative drop count (sim substrate: the
// queue model owns the authoritative counter).
func (b *Bus) SetDrops(q int, n uint64) { b.drops[q].store(n) }

// AddDrops accumulates drops on queue q (live substrate: the producer that
// failed an enqueue reports them).
func (b *Bus) AddDrops(q int, n uint64) { b.drops[q].add(n) }

// Drops returns queue q's cumulative drop count.
func (b *Bus) Drops(q int) uint64 { return b.drops[q].load() }

// SetRx publishes queue q's cumulative received-packet count.
func (b *Bus) SetRx(q int, n uint64) { b.rx[q].store(n) }

// AddRx accumulates received packets on queue q.
func (b *Bus) AddRx(q int, n uint64) { b.rx[q].add(n) }

// Rx returns queue q's cumulative received-packet count.
func (b *Bus) Rx(q int) uint64 { return b.rx[q].load() }

// SetTries publishes queue q's cumulative trylock-attempt count.
func (b *Bus) SetTries(q int, n uint64) { b.tries[q].store(n) }

// AddTries accumulates trylock attempts on queue q.
func (b *Bus) AddTries(q int, n uint64) { b.tries[q].add(n) }

// Tries returns queue q's cumulative trylock-attempt count.
func (b *Bus) Tries(q int) uint64 { return b.tries[q].load() }

// SetBusyTries publishes queue q's cumulative failed-trylock count.
func (b *Bus) SetBusyTries(q int, n uint64) { b.busyTry[q].store(n) }

// AddBusyTries accumulates failed trylock attempts on queue q.
func (b *Bus) AddBusyTries(q int, n uint64) { b.busyTry[q].add(n) }

// BusyTries returns queue q's cumulative failed-trylock count.
func (b *Bus) BusyTries(q int) uint64 { return b.busyTry[q].load() }

// BumpPub advances queue q's publish-sequence counter. Substrates bump it
// once per per-queue publish block (a wake-time occupancy store, a
// cycle-end gauge batch), so an observer that sees the sequence hold still
// across its own sampling cadence knows the queue's gauges are STALE — the
// last values may be arbitrarily old. This is deliberately a sequence, not
// a timestamp: the two substrates run on different clocks (virtual seconds
// vs. nanoseconds since runner start) and the controller has a third, so
// "has anything been published since I last looked" is the only staleness
// question every combination can answer exactly.
func (b *Bus) BumpPub(q int) { b.pub[q].add(1) }

// PubSeq returns queue q's publish-sequence counter.
func (b *Bus) PubSeq(q int) uint64 { return b.pub[q].load() }

// SetHeartbeat publishes thread t's heartbeat: the substrate timestamp of
// its last completed service cycle (virtual seconds in the sim, seconds
// since runner start live). The health layer does not compare the value
// against its own clock — cycle times strictly increase, so "did the value
// change since K control periods ago" detects a stalled or dead member
// without any cross-clock arithmetic. Indices beyond the sized budget are
// dropped, not faulted.
func (b *Bus) SetHeartbeat(t int, ts float64) {
	if t < b.nt {
		b.hb[t].storeF(ts)
	}
}

// Heartbeat returns thread t's last published heartbeat (zero beyond the
// sized budget, and for a thread that never completed a cycle).
func (b *Bus) Heartbeat(t int) float64 {
	if t >= b.nt {
		return 0
	}
	return b.hb[t].loadF()
}

// SetThreadBusy publishes thread t's cumulative on-CPU seconds. Indices
// beyond the sized budget are dropped, not faulted.
func (b *Bus) SetThreadBusy(t int, seconds float64) {
	if t < b.nt {
		b.busy[t].storeF(seconds)
	}
}

// ThreadBusy returns thread t's cumulative on-CPU seconds (zero beyond the
// sized budget).
func (b *Bus) ThreadBusy(t int) float64 {
	if t >= b.nt {
		return 0
	}
	return b.busy[t].loadF()
}

// RecordLatency counts one per-packet retrieval latency (nanoseconds)
// into queue q's histogram: one bucket computation (two shifts) plus one
// atomic add, zero allocations. Both substrates publish here — the sim
// from its exact fluid timestamps, the live runner from per-burst
// rx-stamp deltas — so the buckets are comparable across substrates.
func (b *Bus) RecordLatency(q int, ns uint64) {
	b.hist[q].counts[stats.LogBucketIndex(ns)].Add(1)
}

// SampleLatency folds queue q's histogram counters into the caller-owned
// dst at zero allocations (dst is not reset first, so sampling every
// queue into one histogram yields the deployment-wide latency
// distribution). Like Sample, the read is per-counter atomic but not a
// consistent cut; counts are cumulative since construction, so callers
// that window must difference two folds themselves.
func (b *Bus) SampleLatency(q int, dst *stats.LogHistogram) {
	blk := &b.hist[q]
	for i := range blk.counts {
		if c := blk.counts[i].Load(); c != 0 {
			dst.AddBucket(i, c)
		}
	}
}

// ResetLatency zeroes queue q's histogram counters — the warm-up reset
// hook for single-writer windows (the sim substrate between warm-up and
// measurement). It is not atomic with respect to concurrent recorders: a
// racing RecordLatency may land on either side of the wipe, so windowed
// multi-writer readers should difference two SampleLatency folds instead.
func (b *Bus) ResetLatency(q int) {
	blk := &b.hist[q]
	for i := range blk.counts {
		blk.counts[i].Store(0)
	}
}

// Snapshot is a caller-owned sample of the whole bus. Reuse one value
// across Sample calls: after the first call sized to the bus, sampling
// allocates nothing.
type Snapshot struct {
	// Occ is each queue's last-published wake-time ring occupancy
	// (packets found on descriptor-ring entry); OccAvg its EWMA; Cap the
	// ring capacity the occupancies are judged against; Rho the
	// attendants' utilization estimate; OccSlope the per-second trend of
	// OccAvg (the feedforward input); Rate the arrival-rate estimate in
	// packets per second.
	Occ, OccAvg, Cap, Rho, OccSlope, Rate []float64
	// Drops and Rx are each queue's cumulative dropped/retrieved packet
	// counters; Tries and BusyTr count lock attempts and the subset that
	// lost the race; PubSeq is the queue slot's publication sequence
	// number — it advances on every publish, so a reader can detect
	// staleness (an unchanged PubSeq between samples means no attendant
	// published, the health plane's liveness signal).
	Drops, Rx, Tries, BusyTr, PubSeq []uint64
	// ThreadBusy is each thread's cumulative busy-seconds gauge and
	// Heartbeat its last-publish timestamp in engine seconds — the
	// per-member inputs to the fault plane's straggler detector.
	ThreadBusy, Heartbeat []float64
}

// Sample fills dst with the current slot values, growing its slices only
// if they do not match the bus shape yet.
func (b *Bus) Sample(dst *Snapshot) {
	dst.Occ = sizedF(dst.Occ, b.nq)
	dst.OccAvg = sizedF(dst.OccAvg, b.nq)
	dst.Cap = sizedF(dst.Cap, b.nq)
	dst.Rho = sizedF(dst.Rho, b.nq)
	dst.OccSlope = sizedF(dst.OccSlope, b.nq)
	dst.Rate = sizedF(dst.Rate, b.nq)
	dst.Drops = sizedU(dst.Drops, b.nq)
	dst.Rx = sizedU(dst.Rx, b.nq)
	dst.Tries = sizedU(dst.Tries, b.nq)
	dst.BusyTr = sizedU(dst.BusyTr, b.nq)
	dst.PubSeq = sizedU(dst.PubSeq, b.nq)
	dst.ThreadBusy = sizedF(dst.ThreadBusy, b.nt)
	dst.Heartbeat = sizedF(dst.Heartbeat, b.nt)
	for q := 0; q < b.nq; q++ {
		dst.Occ[q] = b.occ[q].loadF()
		dst.OccAvg[q] = b.occAvg[q].loadF()
		dst.Cap[q] = b.capacity[q].loadF()
		dst.Rho[q] = b.rho[q].loadF()
		dst.OccSlope[q] = b.slope[q].loadF()
		dst.Rate[q] = b.rate[q].loadF()
		dst.Drops[q] = b.drops[q].load()
		dst.Rx[q] = b.rx[q].load()
		dst.Tries[q] = b.tries[q].load()
		dst.BusyTr[q] = b.busyTry[q].load()
		dst.PubSeq[q] = b.pub[q].load()
	}
	for t := 0; t < b.nt; t++ {
		dst.ThreadBusy[t] = b.busy[t].loadF()
		dst.Heartbeat[t] = b.hb[t].loadF()
	}
}

func sizedF(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func sizedU(s []uint64, n int) []uint64 {
	if cap(s) < n {
		return make([]uint64, n)
	}
	return s[:n]
}
