package telemetry

import (
	"testing"

	"metronome/internal/stats"
)

// BenchmarkTelemetrySample is the CI alloc gate for the telemetry plane
// (BENCH_telemetry.json): one publish of every per-queue signal plus a full
// controller-style Sample must not allocate — the bus sits on the retrieval
// hot path of both substrates.
func BenchmarkTelemetrySample(b *testing.B) {
	bus := NewBus(4, 16)
	var s Snapshot
	bus.Sample(&s)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := i & 3
		bus.SetOccupancy(q, float64(i))
		bus.SetOccSlope(q, float64(i)*1e-3)
		bus.SetRho(q, 0.5)
		bus.SetDrops(q, uint64(i))
		bus.SetRx(q, uint64(i))
		bus.SetTries(q, uint64(i))
		bus.SetBusyTries(q, uint64(i))
		bus.BumpPub(q)
		bus.SetThreadBusy(i&15, float64(i))
		bus.SetHeartbeat(i&15, float64(i))
		bus.Sample(&s)
	}
}

// BenchmarkTelemetryHistRecord is the CI alloc gate for the per-packet
// latency publish path: one RecordLatency must be a bucket computation
// plus one atomic add, zero allocations (BENCH_telemetry.json).
func BenchmarkTelemetryHistRecord(b *testing.B) {
	bus := NewBus(4, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bus.RecordLatency(i&3, uint64(i)*97)
	}
}

// BenchmarkTelemetryHistSample is the CI alloc gate for the observer side
// of the latency histograms: folding every queue's bucket block into one
// caller-owned histogram must not allocate (BENCH_telemetry.json).
func BenchmarkTelemetryHistSample(b *testing.B) {
	bus := NewBus(4, 16)
	for i := 0; i < 1<<16; i++ {
		bus.RecordLatency(i&3, uint64(i)*131)
	}
	var h stats.LogHistogram
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Reset()
		for q := 0; q < 4; q++ {
			bus.SampleLatency(q, &h)
		}
	}
}
