package telemetry

import "testing"

// BenchmarkTelemetrySample is the CI alloc gate for the telemetry plane
// (BENCH_telemetry.json): one publish of every per-queue signal plus a full
// controller-style Sample must not allocate — the bus sits on the retrieval
// hot path of both substrates.
func BenchmarkTelemetrySample(b *testing.B) {
	bus := NewBus(4, 16)
	var s Snapshot
	bus.Sample(&s)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := i & 3
		bus.SetOccupancy(q, float64(i))
		bus.SetOccSlope(q, float64(i)*1e-3)
		bus.SetRho(q, 0.5)
		bus.SetDrops(q, uint64(i))
		bus.SetRx(q, uint64(i))
		bus.SetTries(q, uint64(i))
		bus.SetBusyTries(q, uint64(i))
		bus.BumpPub(q)
		bus.SetThreadBusy(i&15, float64(i))
		bus.SetHeartbeat(i&15, float64(i))
		bus.Sample(&s)
	}
}
