package telemetry

import (
	"sync"
	"testing"

	"metronome/internal/stats"
)

func TestGaugesAndCounters(t *testing.T) {
	b := NewBus(2, 3)
	if b.Queues() != 2 || b.Threads() != 3 {
		t.Fatalf("shape = %d queues / %d threads", b.Queues(), b.Threads())
	}
	b.SetOccupancy(0, 17.5)
	b.SetCapacity(0, 4096)
	b.SetRho(1, 0.42)
	b.SetDrops(0, 100)
	b.AddDrops(0, 5)
	b.AddRx(1, 7)
	b.SetTries(1, 9)
	b.AddBusyTries(1, 2)
	b.SetThreadBusy(2, 1.5)
	if got := b.Occupancy(0); got != 17.5 {
		t.Errorf("occupancy = %v", got)
	}
	if got := b.Capacity(0); got != 4096 {
		t.Errorf("capacity = %v", got)
	}
	if got := b.Rho(1); got != 0.42 {
		t.Errorf("rho = %v", got)
	}
	if got := b.Drops(0); got != 105 {
		t.Errorf("drops = %v", got)
	}
	if got := b.Rx(1); got != 7 {
		t.Errorf("rx = %v", got)
	}
	if got := b.Tries(1); got != 9 {
		t.Errorf("tries = %v", got)
	}
	if got := b.BusyTries(1); got != 2 {
		t.Errorf("busy tries = %v", got)
	}
	if got := b.ThreadBusy(2); got != 1.5 {
		t.Errorf("thread busy = %v", got)
	}
}

func TestOccSlopeGauge(t *testing.T) {
	b := NewBus(2, 4)
	b.SetOccSlope(0, 12.5)
	b.SetOccSlope(1, -3.25)
	if b.OccSlope(0) != 12.5 || b.OccSlope(1) != -3.25 {
		t.Fatalf("slope gauges: %v %v", b.OccSlope(0), b.OccSlope(1))
	}
	var s Snapshot
	b.Sample(&s)
	if s.OccSlope[0] != 12.5 || s.OccSlope[1] != -3.25 {
		t.Fatalf("snapshot slopes: %v", s.OccSlope)
	}
}

func TestThreadSlotsBeyondBudgetAreDropped(t *testing.T) {
	b := NewBus(1, 2)
	b.SetThreadBusy(5, 3.0) // must not panic
	if got := b.ThreadBusy(5); got != 0 {
		t.Errorf("out-of-budget slot = %v, want 0", got)
	}
}

func TestSampleFillsSnapshot(t *testing.T) {
	b := NewBus(2, 2)
	b.SetOccupancy(1, 3)
	b.SetRho(0, 0.9)
	b.AddDrops(1, 11)
	b.SetThreadBusy(0, 0.25)
	var s Snapshot
	b.Sample(&s)
	if len(s.Occ) != 2 || len(s.ThreadBusy) != 2 {
		t.Fatalf("snapshot shape: %d occ, %d busy", len(s.Occ), len(s.ThreadBusy))
	}
	if s.Occ[1] != 3 || s.Rho[0] != 0.9 || s.Drops[1] != 11 || s.ThreadBusy[0] != 0.25 {
		t.Errorf("snapshot = %+v", s)
	}
}

func TestHeartbeatGauge(t *testing.T) {
	b := NewBus(1, 2)
	if b.Heartbeat(0) != 0 {
		t.Fatal("fresh heartbeat not zero")
	}
	b.SetHeartbeat(0, 1.25)
	b.SetHeartbeat(1, 2.5)
	b.SetHeartbeat(9, 99) // beyond budget: dropped, not faulted
	if b.Heartbeat(0) != 1.25 || b.Heartbeat(1) != 2.5 || b.Heartbeat(9) != 0 {
		t.Fatalf("heartbeats: %v %v %v", b.Heartbeat(0), b.Heartbeat(1), b.Heartbeat(9))
	}
	var s Snapshot
	b.Sample(&s)
	if len(s.Heartbeat) != 2 || s.Heartbeat[1] != 2.5 {
		t.Fatalf("snapshot heartbeat: %v", s.Heartbeat)
	}
}

func TestPubSeqCounter(t *testing.T) {
	b := NewBus(2, 1)
	if b.PubSeq(0) != 0 {
		t.Fatal("fresh pub seq not zero")
	}
	b.BumpPub(0)
	b.BumpPub(0)
	b.BumpPub(1)
	if b.PubSeq(0) != 2 || b.PubSeq(1) != 1 {
		t.Fatalf("pub seqs: %d %d", b.PubSeq(0), b.PubSeq(1))
	}
	var s Snapshot
	b.Sample(&s)
	if s.PubSeq[0] != 2 || s.PubSeq[1] != 1 {
		t.Fatalf("snapshot pub seqs: %v", s.PubSeq)
	}
}

// The elastic controller samples the bus every control period; the hot path
// contract is zero allocations for both publish and (warm) sample.
func TestPublishAndSampleAllocationFree(t *testing.T) {
	b := NewBus(4, 8)
	var s Snapshot
	b.Sample(&s) // warm the snapshot buffers
	allocs := testing.AllocsPerRun(100, func() {
		b.SetOccupancy(2, 99)
		b.AddDrops(2, 1)
		b.SetRho(2, 0.5)
		b.SetThreadBusy(3, 1)
		b.SetHeartbeat(3, 1)
		b.BumpPub(2)
		b.Sample(&s)
	})
	if allocs != 0 {
		t.Fatalf("publish+sample allocates %v per run, want 0", allocs)
	}
}

// Concurrent publishers and a sampler: the race detector is the assertion.
func TestConcurrentPublishSample(t *testing.T) {
	b := NewBus(4, 4)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				b.SetOccupancy(w, float64(i))
				b.AddTries(w, 1)
				b.AddBusyTries(w, 1)
				b.SetThreadBusy(w, float64(i))
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		var s Snapshot
		for i := 0; i < 2000; i++ {
			b.Sample(&s)
		}
	}()
	wg.Wait()
	for w := 0; w < 4; w++ {
		if b.Tries(w) != 2000 {
			t.Errorf("queue %d tries = %d, want 2000", w, b.Tries(w))
		}
	}
}

// TestLatencyHistogram checks the publish/fold round trip: values
// recorded on the bus land in the same buckets a LogHistogram would put
// them in, folds accumulate across queues, and the caller's Reset
// windows the cumulative counters.
func TestLatencyHistogram(t *testing.T) {
	b := NewBus(2, 1)
	var want stats.LogHistogram
	for i := uint64(0); i < 1000; i++ {
		ns := i * i * 131
		b.RecordLatency(int(i&1), ns)
		want.Record(ns)
	}
	var got stats.LogHistogram
	b.SampleLatency(0, &got)
	b.SampleLatency(1, &got)
	if got.N() != want.N() {
		t.Fatalf("folded N=%d, want %d", got.N(), want.N())
	}
	for i := 0; i < stats.LogHistBuckets; i++ {
		if got.CountAt(i) != want.CountAt(i) {
			t.Fatalf("bucket %d: bus=%d direct=%d", i, got.CountAt(i), want.CountAt(i))
		}
	}
	got.Reset()
	b.SampleLatency(0, &got)
	if got.N() == 0 || got.N() == want.N() {
		t.Fatalf("per-queue fold N=%d, want strictly between 0 and %d", got.N(), want.N())
	}
}

// TestLatencyHistogramAllocationFree pins the fidelity plane's hot-path
// contract: publishing a latency and folding a queue's block into a
// warm caller-owned histogram both allocate nothing.
func TestLatencyHistogramAllocationFree(t *testing.T) {
	b := NewBus(2, 1)
	var h stats.LogHistogram
	allocs := testing.AllocsPerRun(100, func() {
		b.RecordLatency(0, 4242)
		b.RecordLatency(1, 1<<20)
		h.Reset()
		b.SampleLatency(0, &h)
		b.SampleLatency(1, &h)
	})
	if allocs != 0 {
		t.Fatalf("record+sample allocates %v per run, want 0", allocs)
	}
}

func TestOccAvgAndArrivalRateGauges(t *testing.T) {
	b := NewBus(2, 1)
	b.SetOccAvg(0, 17.5)
	b.SetArrivalRate(1, 2.5e6)
	if got := b.OccAvg(0); got != 17.5 {
		t.Errorf("OccAvg = %v", got)
	}
	if got := b.OccAvg(1); got != 0 {
		t.Errorf("OccAvg(1) = %v, want 0", got)
	}
	if got := b.ArrivalRate(1); got != 2.5e6 {
		t.Errorf("ArrivalRate = %v", got)
	}
	var s Snapshot
	b.Sample(&s)
	if s.OccAvg[0] != 17.5 || s.Rate[1] != 2.5e6 {
		t.Errorf("snapshot missed the new gauges: %v %v", s.OccAvg, s.Rate)
	}
}
