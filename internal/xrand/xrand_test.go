package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed streams diverged at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("adjacent seeds collided %d/1000 times", same)
	}
}

func TestZeroSeedUsable(t *testing.T) {
	r := New(0)
	if r.Uint64() == 0 && r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed produced a degenerate stream")
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split()
	c2 := parent.Split()
	if c1.Uint64() == c2.Uint64() && c1.Uint64() == c2.Uint64() {
		t.Fatal("split children appear correlated")
	}
}

func TestFloat64Range(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := New(seed)
		for i := 0; i < 100; i++ {
			f := r.Float64()
			if f < 0 || f >= 1 {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestIntnBounds(t *testing.T) {
	if err := quick.Check(func(seed uint64, n uint16) bool {
		bound := int(n%1000) + 1
		r := New(seed)
		for i := 0; i < 50; i++ {
			v := r.Intn(bound)
			if v < 0 || v >= bound {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	r := New(99)
	const n, draws = 8, 80000
	var counts [n]int
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 0.05*want {
			t.Errorf("bucket %d: got %d, want ~%.0f", i, c, want)
		}
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := New(5)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		v := r.ExpFloat64()
		if v < 0 {
			t.Fatal("negative exponential variate")
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-1) > 0.02 {
		t.Errorf("exponential mean = %.4f, want ~1", mean)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(11)
	var sum, sq float64
	const n = 200000
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sq += v * v
	}
	mean, variance := sum/n, sq/n-(sum/n)*(sum/n)
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %.4f, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance = %.4f, want ~1", variance)
	}
}

func TestPoissonMean(t *testing.T) {
	for _, mean := range []float64{0.5, 3, 25, 100, 5000} {
		r := New(uint64(mean * 13))
		var sum float64
		const n = 20000
		for i := 0; i < n; i++ {
			sum += float64(r.Poisson(mean))
		}
		got := sum / n
		if math.Abs(got-mean) > 0.05*mean+0.05 {
			t.Errorf("Poisson(%g) sample mean = %.3f", mean, got)
		}
	}
}

func TestPoissonNonNegative(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := New(seed)
		return r.Poisson(0) == 0 && r.Poisson(-3) == 0 && r.Poisson(1000) >= 0
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestUniformRange(t *testing.T) {
	r := New(3)
	for i := 0; i < 1000; i++ {
		v := r.Uniform(2, 5)
		if v < 2 || v >= 5 {
			t.Fatalf("Uniform(2,5) = %v out of range", v)
		}
	}
}

func TestLogNormalPositive(t *testing.T) {
	r := New(8)
	for i := 0; i < 1000; i++ {
		if r.LogNormal(0, 1) <= 0 {
			t.Fatal("LogNormal produced non-positive value")
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkIntn(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Intn(16)
	}
}

func TestSeedFrom(t *testing.T) {
	if SeedFrom(1, 2, 3) != SeedFrom(1, 2, 3) {
		t.Fatal("SeedFrom not deterministic")
	}
	distinct := map[uint64]string{}
	for _, tc := range []struct {
		name  string
		parts []uint64
	}{
		{"empty", nil},
		{"1", []uint64{1}},
		{"1,2", []uint64{1, 2}},
		{"2,1", []uint64{2, 1}}, // order matters
		{"1,2,3", []uint64{1, 2, 3}},
		{"1,3,2", []uint64{1, 3, 2}},
		{"0,0", []uint64{0, 0}},
		{"0", []uint64{0}},
	} {
		s := SeedFrom(tc.parts...)
		if prev, dup := distinct[s]; dup {
			t.Errorf("SeedFrom(%s) collides with SeedFrom(%s)", tc.name, prev)
		}
		distinct[s] = tc.name
	}
	// Streams seeded from adjacent coordinates diverge immediately.
	a := New(SeedFrom(7, 0, 2))
	b := New(SeedFrom(7, 0, 3))
	same := 0
	for i := 0; i < 16; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("adjacent-coordinate streams shared %d of 16 draws", same)
	}
}
