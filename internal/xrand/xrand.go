// Package xrand provides the deterministic pseudo-random number generation
// used throughout the Metronome reproduction.
//
// The paper's multiqueue backup threads pick their next queue with DPDK's
// thread-safe high-performance PRNG (rte_random, a lcg128-based generator).
// We stand in a xoshiro256++ generator seeded through splitmix64: it is
// small, fast, has no shared state, and — unlike math/rand's global source —
// makes every simulation bit-reproducible from its seed.
package xrand

import "math"

// Rand is a xoshiro256++ pseudo-random generator. It is NOT safe for
// concurrent use; give each simulated entity its own stream via Split.
type Rand struct {
	s [4]uint64
}

// New returns a generator seeded from seed via splitmix64, so that nearby
// seeds yield uncorrelated streams.
func New(seed uint64) *Rand {
	var r Rand
	sm := seed
	for i := range r.s {
		sm, r.s[i] = splitmix64(sm)
	}
	// xoshiro must not be seeded with all zeros.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return &r
}

// Split derives an independent generator from r, advancing r. It is the
// mechanism by which one experiment seed fans out to per-thread and
// per-queue streams without correlation.
func (r *Rand) Split() *Rand {
	return New(r.Uint64() ^ 0xd1b54a32d192ed03)
}

// SeedFrom folds structured coordinates (a run seed, a thread id, a queue
// count, ...) into one well-mixed 64-bit seed by chaining splitmix64 over
// the parts. Unlike xor-folding raw words — where (seed, id, n) tuples can
// collide structurally — the chaining feeds each part through the previous
// mixed state, so every coordinate perturbs the whole output and streams
// derived from nearby tuples stay uncorrelated. The live runtime uses it to
// give each retrieval goroutine a stream that depends on the deployment
// shape, not just the thread index.
func SeedFrom(parts ...uint64) uint64 {
	x, out := splitmix64(0x243f6a8885a308d3) // pi fractional bits: arbitrary non-zero salt
	for _, p := range parts {
		x, out = splitmix64(x ^ p)
	}
	return out
}

func splitmix64(x uint64) (next, out uint64) {
	x += 0x9e3779b97f4a7c15
	z := x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return x, z ^ (z >> 31)
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next value of the xoshiro256++ sequence.
func (r *Rand) Uint64() uint64 {
	s := &r.s
	result := rotl(s[0]+s[3], 23) + s[0]
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Float64 returns a uniform value in [0,1) with 53 bits of precision.
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0,n). It panics if n <= 0.
// Used for the multiqueue backup thread's random queue re-targeting.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded rejection sampling.
	un := uint64(n)
	x := r.Uint64()
	hi, lo := mul64(x, un)
	if lo < un {
		thresh := (-un) % un
		for lo < thresh {
			x = r.Uint64()
			hi, lo = mul64(x, un)
		}
	}
	return int(hi)
}

func mul64(x, y uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	x0, x1 := x&mask32, x>>32
	y0, y1 := y&mask32, y>>32
	w0 := x0 * y0
	t := x1*y0 + w0>>32
	w1 := t&mask32 + x0*y1
	hi = x1*y1 + t>>32 + w1>>32
	lo = x * y
	return
}

// ExpFloat64 returns an exponentially distributed value with mean 1,
// via inversion (monotone in the underlying uniform, which keeps
// antithetic experiments well-behaved).
func (r *Rand) ExpFloat64() float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -math.Log(u)
}

// NormFloat64 returns a standard normal value using the polar
// (Marsaglia) method.
func (r *Rand) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		return u * math.Sqrt(-2*math.Log(s)/s)
	}
}

// LogNormal returns exp(N(mu, sigma^2)); heavy-tailed draws of this kind
// model occasional long OS wake-up delays.
func (r *Rand) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.NormFloat64())
}

// Uniform returns a uniform value in [lo, hi).
func (r *Rand) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Bernoulli reports true with probability p.
func (r *Rand) Bernoulli(p float64) bool { return r.Float64() < p }

// Poisson returns a Poisson(mean) variate. For large means it uses the
// normal approximation with continuity correction, which is ample for
// packet-count sampling over vacation periods.
func (r *Rand) Poisson(mean float64) int64 {
	if mean <= 0 {
		return 0
	}
	if mean < 30 {
		// Knuth inversion.
		l := math.Exp(-mean)
		var k int64
		p := 1.0
		for {
			p *= r.Float64()
			if p <= l {
				return k
			}
			k++
		}
	}
	v := mean + math.Sqrt(mean)*r.NormFloat64() + 0.5
	if v < 0 {
		return 0
	}
	return int64(v)
}
