package traffic

import (
	"math"
	"testing"
	"testing/quick"

	"metronome/internal/packet"
	"metronome/internal/xrand"
)

func TestRate64B(t *testing.T) {
	// The canonical conversions the paper uses.
	if got := Rate64B(10); math.Abs(got-14.88e6)/14.88e6 > 0.001 {
		t.Errorf("10G of 64B = %v pps, want ~14.88M", got)
	}
	if got := Rate64B(1); math.Abs(got-1.488e6)/1.488e6 > 0.001 {
		t.Errorf("1G of 64B = %v pps", got)
	}
}

func TestCBRCount(t *testing.T) {
	c := CBR{PPS: 1e6}
	if got := c.CountIn(0, 1e-3, nil); got != 1000 {
		t.Errorf("1ms at 1Mpps = %d arrivals", got)
	}
	// Additivity: count over [0,T) equals sum over a partition.
	if err := quick.Check(func(seed uint64) bool {
		r := xrand.New(seed)
		t0 := r.Uniform(0, 1)
		mid := t0 + r.Uniform(0, 1)
		t1 := mid + r.Uniform(0, 1)
		whole := c.CountIn(t0, t1, nil)
		parts := c.CountIn(t0, mid, nil) + c.CountIn(mid, t1, nil)
		return whole == parts
	}, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestCBREdges(t *testing.T) {
	c := CBR{PPS: 1e6}
	if c.CountIn(5, 5, nil) != 0 || c.CountIn(5, 4, nil) != 0 {
		t.Error("empty/inverted interval must count 0")
	}
	if (CBR{}).CountIn(0, 1, nil) != 0 {
		t.Error("zero-rate CBR must count 0")
	}
}

func TestPoissonCountMean(t *testing.T) {
	p := Poisson{Lambda: 2e6}
	r := xrand.New(1)
	var sum float64
	const trials = 5000
	for i := 0; i < trials; i++ {
		sum += float64(p.CountIn(0, 1e-4, r))
	}
	mean := sum / trials
	if math.Abs(mean-200) > 2 {
		t.Errorf("Poisson mean arrivals = %v, want ~200", mean)
	}
}

func TestRampShape(t *testing.T) {
	// The Sec. V-B profile: 60 s, peak 14 Mpps at 30 s, 2 s steps.
	rp := Ramp{Peak: 14e6, Duration: 60, StepEvery: 2}
	if rp.Rate(-1) != 0 || rp.Rate(61) != 0 {
		t.Error("rate outside the sweep must be 0")
	}
	if got := rp.Rate(30); math.Abs(got-14e6) > 1e-6 {
		t.Errorf("apex rate = %v", got)
	}
	// Symmetry of the triangle at step resolution: bucket starting at t
	// mirrors the bucket starting at Duration-t.
	if rp.Rate(10) != rp.Rate(50) {
		t.Errorf("ramp asymmetric: %v vs %v", rp.Rate(10), rp.Rate(50))
	}
	// Monotone non-decreasing on the way up.
	prev := -1.0
	for x := 0.0; x <= 30; x += 2 {
		if rp.Rate(x) < prev {
			t.Fatalf("ramp not monotone at %v", x)
		}
		prev = rp.Rate(x)
	}
}

func TestRampCountMatchesIntegral(t *testing.T) {
	rp := Ramp{Peak: 10e6, Duration: 60, StepEvery: 2}
	got := float64(rp.CountIn(0, 60, nil))
	want := MeanIn(rp, 0, 60, 60000)
	if math.Abs(got-want)/want > 0.01 {
		t.Errorf("CountIn=%v integral=%v", got, want)
	}
}

func TestOnOff(t *testing.T) {
	o := OnOff{PPS: 1e6, OnDur: 1, OffDur: 1}
	if o.Rate(0.5) != 1e6 || o.Rate(1.5) != 0 {
		t.Error("phases wrong")
	}
	if got := o.CountIn(0, 4, nil); got != 2e6 {
		t.Errorf("two on-phases = %d arrivals", got)
	}
	// Silent start flips the phases.
	s := OnOff{PPS: 1e6, OnDur: 1, OffDur: 1, InitiallySilent: true}
	if s.Rate(0.5) != 0 || s.Rate(1.5) != 1e6 {
		t.Error("silent-start phases wrong")
	}
}

func TestOnOffPartialPhase(t *testing.T) {
	o := OnOff{PPS: 2e6, OnDur: 1, OffDur: 3}
	if got := o.CountIn(0.5, 4.5, nil); got != 2e6 {
		t.Errorf("partial phases = %d, want 2M (0.5s of first on + 0.5s of second at 2Mpps)", got)
	}
}

func TestScaled(t *testing.T) {
	s := Scaled{P: CBR{PPS: 1e6}, Factor: 0.25}
	if s.Rate(0) != 0.25e6 {
		t.Error("scaled rate wrong")
	}
	if got := s.CountIn(0, 1, nil); got != 250000 {
		t.Errorf("scaled count = %d", got)
	}
}

func TestUnbalancedShares(t *testing.T) {
	shares := UnbalancedShares(0.30, 3)
	if len(shares) != 3 {
		t.Fatal("want 3 shares")
	}
	sum := 0.0
	heavy, light := 0, 0
	for _, s := range shares {
		sum += s
		if math.Abs(s-(0.30+0.70/3)) < 1e-9 {
			heavy++
		}
		if math.Abs(s-0.70/3) < 1e-9 {
			light++
		}
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("shares sum to %v", sum)
	}
	// Paper: most stressed queue ~53%, other two ~23% each.
	if heavy != 1 || light != 2 {
		t.Errorf("share layout = %v, want one 53%% and two 23%%", shares)
	}
}

func TestUnbalancedSharesDegenerate(t *testing.T) {
	if UnbalancedShares(0.3, 0) != nil {
		t.Error("zero queues should yield nil")
	}
	one := UnbalancedShares(0.3, 1)
	if len(one) != 1 || math.Abs(one[0]-1) > 1e-9 {
		t.Errorf("single queue should carry everything: %v", one)
	}
}

func TestFrameGen(t *testing.T) {
	g := NewFrameGen(7, 16, 64)
	if len(g.Flows()) != 16 {
		t.Fatal("flow count")
	}
	seen := map[packet.FlowKey]bool{}
	for i := 0; i < 200; i++ {
		frame, k := g.Next()
		if len(frame) != 64 {
			t.Fatalf("frame size = %d", len(frame))
		}
		var p packet.Parsed
		if err := p.Parse(frame); err != nil {
			t.Fatal(err)
		}
		if p.Key != k {
			t.Fatalf("frame key %v != declared %v", p.Key, k)
		}
		seen[k] = true
	}
	if len(seen) < 8 {
		t.Errorf("only %d distinct flows in 200 draws", len(seen))
	}
}

func TestMeanInZeroWidth(t *testing.T) {
	if MeanIn(CBR{PPS: 1e6}, 3, 3, 10) != 0 {
		t.Error("zero-width integral must be 0")
	}
}

func TestSineShapeAndCount(t *testing.T) {
	s := Sine{Base: 1e6, Amp: 0.5e6, Period: 0.4}
	if r := s.Rate(0); math.Abs(r-1e6) > 1 {
		t.Errorf("rate at t=0 = %v, want Base", r)
	}
	if r := s.Rate(0.1); math.Abs(r-1.5e6) > 1 {
		t.Errorf("rate at quarter period = %v, want Base+Amp", r)
	}
	if r := s.Rate(0.3); math.Abs(r-0.5e6) > 1 {
		t.Errorf("rate at three quarters = %v, want Base-Amp", r)
	}
	// One full period integrates to exactly Base*Period arrivals.
	got := s.CountIn(0, 0.4, nil)
	if want := int64(1e6 * 0.4); got < want-1 || got > want+1 {
		t.Errorf("count over one period = %d, want ~%d", got, want)
	}
	// Counts are additive over adjacent intervals (no double counting).
	split := s.CountIn(0, 0.13, nil) + s.CountIn(0.13, 0.4, nil)
	if split != got {
		t.Errorf("split count %d != whole count %d", split, got)
	}
	// Count matches the numeric integral on an asymmetric window.
	want := int64(MeanIn(s, 0.05, 0.31, 4000))
	if got := s.CountIn(0.05, 0.31, nil); got < want-2 || got > want+2 {
		t.Errorf("count = %d, integral says ~%d", got, want)
	}
}

func TestSineAmpClampsToBase(t *testing.T) {
	s := Sine{Base: 1e5, Amp: 9e5, Period: 1}
	for _, tt := range []float64{0, 0.25, 0.5, 0.75, 0.999} {
		if r := s.Rate(tt); r < 0 {
			t.Fatalf("negative rate %v at t=%v", r, tt)
		}
	}
}

func TestStepSwitchesProcesses(t *testing.T) {
	s := Step{At: 0.5, Before: CBR{PPS: 1e6}, After: CBR{PPS: 3e6}}
	if r := s.Rate(0.49); r != 1e6 {
		t.Errorf("before rate = %v", r)
	}
	if r := s.Rate(0.5); r != 3e6 {
		t.Errorf("after rate = %v", r)
	}
	// Count across the edge = exact sum of both halves.
	got := s.CountIn(0.4, 0.6, nil)
	want := CBR{PPS: 1e6}.CountIn(0.4, 0.5, nil) + CBR{PPS: 3e6}.CountIn(0.5, 0.6, nil)
	if got != want {
		t.Errorf("count across edge = %d, want %d", got, want)
	}
	// Entirely on either side delegates cleanly.
	if got := s.CountIn(0, 0.25, nil); got != (CBR{PPS: 1e6}).CountIn(0, 0.25, nil) {
		t.Errorf("before-side count = %d", got)
	}
	if got := s.CountIn(0.7, 1.0, nil); got != (CBR{PPS: 3e6}).CountIn(0.7, 1.0, nil) {
		t.Errorf("after-side count = %d", got)
	}
}

func TestStepNestsForMultiPhase(t *testing.T) {
	// Flash crowd: low, spike at 0.2, back down at 0.6.
	crowd := Step{At: 0.2, Before: CBR{PPS: 1e6},
		After: Step{At: 0.6, Before: CBR{PPS: 10e6}, After: CBR{PPS: 1e6}}}
	if r := crowd.Rate(0.1); r != 1e6 {
		t.Errorf("pre-spike rate %v", r)
	}
	if r := crowd.Rate(0.4); r != 10e6 {
		t.Errorf("spike rate %v", r)
	}
	if r := crowd.Rate(0.8); r != 1e6 {
		t.Errorf("post-spike rate %v", r)
	}
	got := crowd.CountIn(0, 1, nil)
	want := int64(1e6*0.2 + 10e6*0.4 + 1e6*0.4)
	if got < want-3 || got > want+3 {
		t.Errorf("total count %d, want ~%d", got, want)
	}
}
