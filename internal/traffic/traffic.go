// Package traffic models the workloads MoonGen generated in the paper's
// testbed: constant-bit-rate streams, Poisson arrivals, the
// rate-control-methods.lua ramp used in the adaptation experiment, ON/OFF
// bursts, and the unbalanced flow mix of the multiqueue tests.
//
// A Process answers two questions the cycle-level simulator asks:
// the instantaneous arrival rate (for fluid busy-period drains) and the
// number of arrivals in an interval (for vacation-period accumulation).
package traffic

import (
	"math"

	"metronome/internal/packet"
	"metronome/internal/xrand"
)

// Process is an arrival process over virtual time (seconds -> packets).
type Process interface {
	// Rate returns the instantaneous arrival rate in packets/second at t.
	Rate(t float64) float64
	// CountIn returns the number of arrivals in [t0, t1). Deterministic
	// processes ignore rng.
	CountIn(t0, t1 float64, rng *xrand.Rand) int64
}

// MeanIn integrates Rate over [t0,t1) by midpoint steps; processes with
// piecewise-constant rates are integrated exactly by construction.
func MeanIn(p Process, t0, t1 float64, steps int) float64 {
	if t1 <= t0 {
		return 0
	}
	if steps < 1 {
		steps = 1
	}
	h := (t1 - t0) / float64(steps)
	sum := 0.0
	for i := 0; i < steps; i++ {
		sum += p.Rate(t0+(float64(i)+0.5)*h) * h
	}
	return sum
}

// CBR is a constant-bit-rate stream of PPS packets per second, the
// p2p throughput workload of the paper (14.88 Mpps of 64B frames fills a
// 10G link).
type CBR struct {
	PPS float64
}

// Rate implements Process.
func (c CBR) Rate(float64) float64 { return c.PPS }

// CountIn returns the deterministic arrival count: arrivals sit on the
// grid k/PPS, so the count in [t0,t1) is floor(t1*PPS) - floor(t0*PPS).
func (c CBR) CountIn(t0, t1 float64, _ *xrand.Rand) int64 {
	if t1 <= t0 || c.PPS <= 0 {
		return 0
	}
	n := int64(math.Floor(t1*c.PPS)) - int64(math.Floor(t0*c.PPS))
	if n < 0 {
		return 0
	}
	return n
}

// Rate64B converts a line rate in Gbit/s to packets/second of 64-byte
// frames including the 20B/frame Ethernet overhead (preamble + IPG), the
// conversion behind the paper's 14.88 Mpps figure for 10G.
func Rate64B(gbps float64) float64 {
	const bitsPerFrame = (64 + 20) * 8
	return gbps * 1e9 / bitsPerFrame
}

// Poisson is a memoryless arrival process with mean rate Lambda.
type Poisson struct {
	Lambda float64
}

// Rate implements Process.
func (p Poisson) Rate(float64) float64 { return p.Lambda }

// CountIn samples a Poisson count with mean Lambda*(t1-t0).
func (p Poisson) CountIn(t0, t1 float64, rng *xrand.Rand) int64 {
	if t1 <= t0 || p.Lambda <= 0 {
		return 0
	}
	return rng.Poisson(p.Lambda * (t1 - t0))
}

// Ramp reproduces the modified rate-control-methods.lua run of Sec. V-B:
// over Duration seconds the rate climbs in steps of StepEvery seconds from
// ~0 to Peak at Duration/2, then descends symmetrically.
type Ramp struct {
	Peak      float64 // packets/second at the apex
	Duration  float64 // seconds for the full up-down sweep
	StepEvery float64 // step quantisation (2 s in the paper)
}

// Rate implements Process; it is piecewise constant over StepEvery buckets.
func (r Ramp) Rate(t float64) float64 {
	if t < 0 || t > r.Duration || r.Duration <= 0 {
		return 0
	}
	if r.StepEvery > 0 {
		t = math.Floor(t/r.StepEvery) * r.StepEvery
	}
	half := r.Duration / 2
	var frac float64
	if t <= half {
		frac = t / half
	} else {
		frac = (r.Duration - t) / half
	}
	return r.Peak * frac
}

// CountIn integrates the piecewise-constant rate exactly. Buckets iterate
// by integer index: floating-point boundary arithmetic must never be the
// loop variable, or a boundary that rounds onto itself spins forever.
func (r Ramp) CountIn(t0, t1 float64, _ *xrand.Rand) int64 {
	if t1 <= t0 {
		return 0
	}
	step := r.StepEvery
	if step <= 0 {
		return int64(r.Rate((t0+t1)/2) * (t1 - t0))
	}
	k0 := int64(math.Floor(t0 / step))
	k1 := int64(math.Floor(t1 / step))
	total := 0.0
	for k := k0; k <= k1; k++ {
		lo := math.Max(t0, float64(k)*step)
		hi := math.Min(t1, float64(k+1)*step)
		if hi > lo {
			total += r.Rate((lo+hi)/2) * (hi - lo)
		}
	}
	return int64(total)
}

// OnOff alternates OnDur seconds of CBR at PPS with OffDur seconds of
// silence — the burst-arrival shape used to contrast Metronome's
// reactivity with XDP's adaptation loss (Sec. V-D).
type OnOff struct {
	PPS             float64
	OnDur, OffDur   float64
	InitiallySilent bool
}

func (o OnOff) period() float64 { return o.OnDur + o.OffDur }

// Rate implements Process.
func (o OnOff) Rate(t float64) float64 {
	if o.period() <= 0 {
		return 0
	}
	phase := math.Mod(t, o.period())
	if o.InitiallySilent {
		if phase < o.OffDur {
			return 0
		}
		return o.PPS
	}
	if phase < o.OnDur {
		return o.PPS
	}
	return 0
}

// CountIn integrates the on fractions exactly, iterating whole periods by
// integer index so float boundary rounding cannot stall the loop.
func (o OnOff) CountIn(t0, t1 float64, _ *xrand.Rand) int64 {
	p := o.period()
	if t1 <= t0 || p <= 0 || o.PPS <= 0 {
		return 0
	}
	// The on-window within period k.
	onStart, onEnd := 0.0, o.OnDur
	if o.InitiallySilent {
		onStart, onEnd = o.OffDur, p
	}
	k0 := int64(math.Floor(t0 / p))
	k1 := int64(math.Floor(t1 / p))
	total := 0.0
	for k := k0; k <= k1; k++ {
		base := float64(k) * p
		lo := math.Max(t0, base+onStart)
		hi := math.Min(t1, base+onEnd)
		if hi > lo {
			total += o.PPS * (hi - lo)
		}
	}
	return int64(total)
}

// Sine is a diurnal-shaped arrival process: rate Base + Amp*sin(2*pi*t/
// Period), the day/night load curve of the elastic-scaling experiments
// compressed into simulation time. Amp is clamped to Base so the rate
// never goes negative, which keeps the cumulative count exactly
// integrable.
type Sine struct {
	Base   float64 // mean rate in packets/second
	Amp    float64 // swing around the mean (|Amp| <= Base effective)
	Period float64 // full day length in seconds
}

func (s Sine) amp() float64 {
	a := s.Amp
	if a > s.Base {
		a = s.Base
	}
	if a < -s.Base {
		a = -s.Base
	}
	return a
}

// Rate implements Process.
func (s Sine) Rate(t float64) float64 {
	if s.Period <= 0 {
		return s.Base
	}
	return s.Base + s.amp()*math.Sin(2*math.Pi*t/s.Period)
}

// cumulative is the exact integral of Rate over [0, t).
func (s Sine) cumulative(t float64) float64 {
	if s.Period <= 0 {
		return s.Base * t
	}
	w := 2 * math.Pi / s.Period
	return s.Base*t - s.amp()/w*(math.Cos(w*t)-1)
}

// CountIn places arrivals deterministically on the cumulative-rate grid,
// like CBR: the count in [t0,t1) is floor(F(t1)) - floor(F(t0)).
func (s Sine) CountIn(t0, t1 float64, _ *xrand.Rand) int64 {
	if t1 <= t0 || s.Base <= 0 {
		return 0
	}
	n := int64(math.Floor(s.cumulative(t1))) - int64(math.Floor(s.cumulative(t0)))
	if n < 0 {
		return 0
	}
	return n
}

// Step switches from one arrival process to another at time At — the
// flash-crowd edge and the hot-queue migration of the elastic experiments.
// Both sub-processes see absolute simulation time, so Step{At, CBR, CBR}
// is an exact rate step and Steps can nest for multi-phase shapes.
type Step struct {
	At            float64
	Before, After Process
}

// Rate implements Process.
func (s Step) Rate(t float64) float64 {
	if t < s.At {
		return s.Before.Rate(t)
	}
	return s.After.Rate(t)
}

// CountIn splits the interval at the switch point.
func (s Step) CountIn(t0, t1 float64, rng *xrand.Rand) int64 {
	if t1 <= t0 {
		return 0
	}
	if t1 <= s.At {
		return s.Before.CountIn(t0, t1, rng)
	}
	if t0 >= s.At {
		return s.After.CountIn(t0, t1, rng)
	}
	return s.Before.CountIn(t0, s.At, rng) + s.After.CountIn(s.At, t1, rng)
}

// Scaled wraps a process with a multiplicative factor; the multiqueue
// experiments use it to hand each Rx queue its RSS share of the total load.
type Scaled struct {
	P      Process
	Factor float64
}

// Rate implements Process.
func (s Scaled) Rate(t float64) float64 { return s.Factor * s.P.Rate(t) }

// CountIn scales the expected count (deterministic thinning).
func (s Scaled) CountIn(t0, t1 float64, rng *xrand.Rand) int64 {
	return int64(s.Factor * float64(s.P.CountIn(t0, t1, rng)))
}

// UnbalancedShares reproduces the Sec. V-F.4 pcap: heavyShare of the
// traffic belongs to one UDP flow (pinned by the Toeplitz hash to a single
// queue) and the rest is uniformly random across flows, hence evenly split
// by RSS. It returns the per-queue fraction of the total rate.
func UnbalancedShares(heavyShare float64, queues int) []float64 {
	if queues <= 0 {
		return nil
	}
	shares := make([]float64, queues)
	even := (1 - heavyShare) / float64(queues)
	for i := range shares {
		shares[i] = even
	}
	// Hash the paper's single heavy UDP flow with the default RSS key to
	// pick its queue, exactly as the XL710 would.
	heavy := packet.FlowKey{
		Src:     packet.AddrFrom4(10, 0, 0, 1),
		Dst:     packet.AddrFrom4(10, 0, 0, 2),
		SrcPort: 5000, DstPort: 5001,
		Proto: packet.ProtoUDP,
	}
	q := packet.NewToeplitz(packet.DefaultRSSKey).QueueFor(heavy, queues)
	shares[q] += heavyShare
	return shares
}

// FrameGen synthesises real frames for the runtime and app tests: a mix of
// nFlows UDP flows with uniformly random 5-tuples, at the given frame size.
type FrameGen struct {
	rng   *xrand.Rand
	flows []packet.FlowKey
	buf   []byte
	Size  int
}

// NewFrameGen builds a generator over nFlows random flows.
func NewFrameGen(seed uint64, nFlows, size int) *FrameGen {
	r := xrand.New(seed)
	flows := make([]packet.FlowKey, nFlows)
	for i := range flows {
		flows[i] = packet.FlowKey{
			Src:     packet.Addr(r.Uint64()),
			Dst:     packet.Addr(r.Uint64()),
			SrcPort: uint16(1024 + r.Intn(60000)),
			DstPort: uint16(1024 + r.Intn(60000)),
			Proto:   packet.ProtoUDP,
		}
	}
	return &FrameGen{rng: r, flows: flows, buf: make([]byte, 2048), Size: size}
}

// Flows exposes the generated flow set.
func (g *FrameGen) Flows() []packet.FlowKey { return g.flows }

// Next returns the next frame (valid until the following call) and the
// flow it belongs to.
func (g *FrameGen) Next() ([]byte, packet.FlowKey) {
	k := g.flows[g.rng.Intn(len(g.flows))]
	frame, err := packet.BuildUDP(g.buf, g.Size, k.Src, k.Dst, k.SrcPort, k.DstPort)
	if err != nil {
		panic(err) // buffer is always large enough by construction
	}
	return frame, k
}
