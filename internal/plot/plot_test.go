package plot

import (
	"bytes"
	"strings"
	"testing"
)

func TestSeriesRender(t *testing.T) {
	var buf bytes.Buffer
	s := Series{
		Title:  "ramp",
		XLabel: "t",
		YLabel: "rate",
		X:      []float64{0, 1, 2, 3, 4},
		Y:      []float64{0, 5, 10, 5, 0},
		Width:  20,
		Height: 5,
	}
	s.Render(&buf)
	out := buf.String()
	if !strings.Contains(out, "ramp") || !strings.Contains(out, "*") {
		t.Fatalf("render missing content:\n%s", out)
	}
	// 5 grid rows between the two axis lines.
	if got := strings.Count(out, "|"); got < 5 {
		t.Errorf("grid rows = %d", got)
	}
}

func TestSeriesTwoCurves(t *testing.T) {
	var buf bytes.Buffer
	s := Series{
		X:       []float64{0, 1, 2},
		Y:       []float64{0, 1, 2},
		Y2:      []float64{2, 1, 0},
		YLabel:  "up",
		Y2Label: "down",
	}
	s.Render(&buf)
	out := buf.String()
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Fatal("both markers should appear")
	}
	if !strings.Contains(out, "up") || !strings.Contains(out, "down") {
		t.Fatal("legend incomplete")
	}
}

func TestSeriesEmpty(t *testing.T) {
	var buf bytes.Buffer
	Series{Title: "nothing"}.Render(&buf)
	if !strings.Contains(buf.String(), "no data") {
		t.Fatal("empty series should say so")
	}
}

func TestSeriesConstant(t *testing.T) {
	// A constant series must not divide by zero.
	var buf bytes.Buffer
	Series{X: []float64{0, 1}, Y: []float64{3, 3}}.Render(&buf)
	if buf.Len() == 0 {
		t.Fatal("no output")
	}
}

func TestBars(t *testing.T) {
	var buf bytes.Buffer
	Bars{
		Title: "cpu",
		Unit:  "%",
		Width: 10,
		Rows: []BarRow{
			{"static", 100},
			{"metronome", 55},
			{"idle", 0},
		},
	}.Render(&buf)
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	// static has the longest bar.
	if strings.Count(lines[1], "#") != 10 {
		t.Errorf("full bar = %q", lines[1])
	}
	if strings.Count(lines[2], "#") >= 10 || strings.Count(lines[2], "#") == 0 {
		t.Errorf("mid bar = %q", lines[2])
	}
	if strings.Count(lines[3], "#") != 0 {
		t.Errorf("zero bar = %q", lines[3])
	}
}

func TestBarsAllZero(t *testing.T) {
	var buf bytes.Buffer
	Bars{Rows: []BarRow{{"a", 0}}}.Render(&buf)
	if !strings.Contains(buf.String(), "a") {
		t.Fatal("label missing")
	}
}
