// Package plot renders small ASCII charts for the experiment harness: the
// time-series of Fig 9, the densities of Fig 4 and the grouped bars of the
// CPU figures read much better as pictures, even in a terminal.
package plot

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Series renders one or two aligned y-series over a shared x-axis as an
// ASCII line chart of the given width and height.
type Series struct {
	Title   string
	XLabel  string
	YLabel  string
	X       []float64
	Y       []float64
	Y2      []float64 // optional second series, drawn with 'o'
	Y2Label string
	Width   int
	Height  int
}

func minMax(xs ...[]float64) (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, s := range xs {
		for _, v := range s {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	if math.IsInf(lo, 1) {
		lo, hi = 0, 1
	}
	if lo == hi {
		hi = lo + 1
	}
	return lo, hi
}

// Render draws the chart.
func (s Series) Render(w io.Writer) {
	width, height := s.Width, s.Height
	if width <= 0 {
		width = 64
	}
	if height <= 0 {
		height = 16
	}
	if len(s.X) == 0 || len(s.X) != len(s.Y) {
		fmt.Fprintf(w, "%s: (no data)\n", s.Title)
		return
	}
	xlo, xhi := minMax(s.X)
	series := [][]float64{s.Y}
	if len(s.Y2) == len(s.Y) {
		series = append(series, s.Y2)
	}
	ylo, yhi := minMax(series...)

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	put := func(xs, ys []float64, mark byte) {
		for i := range xs {
			c := int((xs[i] - xlo) / (xhi - xlo) * float64(width-1))
			r := height - 1 - int((ys[i]-ylo)/(yhi-ylo)*float64(height-1))
			if c >= 0 && c < width && r >= 0 && r < height {
				grid[r][c] = mark
			}
		}
	}
	put(s.X, s.Y, '*')
	if len(s.Y2) == len(s.Y) {
		put(s.X, s.Y2, 'o')
	}

	if s.Title != "" {
		fmt.Fprintln(w, s.Title)
	}
	fmt.Fprintf(w, "%10.3g +%s\n", yhi, strings.Repeat("-", width))
	for _, row := range grid {
		fmt.Fprintf(w, "%10s |%s\n", "", string(row))
	}
	fmt.Fprintf(w, "%10.3g +%s\n", ylo, strings.Repeat("-", width))
	fmt.Fprintf(w, "%10s  %-10.3g%s%10.3g\n", "", xlo,
		strings.Repeat(" ", max(0, width-20)), xhi)
	legend := fmt.Sprintf("* %s", s.YLabel)
	if len(s.Y2) == len(s.Y) && s.Y2Label != "" {
		legend += fmt.Sprintf("   o %s", s.Y2Label)
	}
	if s.XLabel != "" {
		legend += fmt.Sprintf("   (x: %s)", s.XLabel)
	}
	fmt.Fprintf(w, "%10s  %s\n", "", legend)
}

// Bars renders labelled horizontal bars scaled to the maximum value —
// the grouped-bar figures (Fig 10b, Fig 16) in one line per entry.
type Bars struct {
	Title string
	Unit  string
	Width int
	Rows  []BarRow
}

// BarRow is one bar.
type BarRow struct {
	Label string
	Value float64
}

// Render draws the bars.
func (b Bars) Render(w io.Writer) {
	width := b.Width
	if width <= 0 {
		width = 50
	}
	if b.Title != "" {
		fmt.Fprintln(w, b.Title)
	}
	maxV := 0.0
	labelW := 0
	for _, r := range b.Rows {
		if r.Value > maxV {
			maxV = r.Value
		}
		if len(r.Label) > labelW {
			labelW = len(r.Label)
		}
	}
	if maxV == 0 {
		maxV = 1
	}
	for _, r := range b.Rows {
		n := int(r.Value / maxV * float64(width))
		if n < 0 {
			n = 0
		}
		fmt.Fprintf(w, "%-*s |%s %.1f%s\n", labelW, r.Label,
			strings.Repeat("#", n), r.Value, b.Unit)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
