package sched

import (
	"math"
	"testing"

	"metronome/internal/model"
	"metronome/internal/xrand"
)

func testConfig() Config {
	return Config{VBar: 10e-6, TL: 500e-6, M: 3, N: 1, Alpha: 0.125}
}

// driveTo pins queue q's estimate at rho and feeds one cycle whose sample
// equals rho, so the EWMA stays put and the cached TS re-evaluates.
func driveTo(p Policy, q int, rho float64) {
	p.Estimator().Set(q, rho)
	p.ObserveCycle(q, rho, 1-rho) // sample = rho/(rho+1-rho) = rho
}

func TestTSVsRho(t *testing.T) {
	rhos := []float64{0, 0.1, 0.3, 0.5, 0.7, 0.9, 0.99, 1}
	cases := []struct {
		name string
		cfg  Config
		want func(cfg Config, rho float64) float64
	}{
		{NameAdaptive, testConfig(), func(cfg Config, rho float64) float64 {
			return model.TSForTargetMultiqueue(cfg.VBar, rho, cfg.M, cfg.N)
		}},
		{NameAdaptive, func() Config { c := testConfig(); c.M, c.N = 6, 2; return c }(),
			func(cfg Config, rho float64) float64 {
				return model.TSForTargetMultiqueue(cfg.VBar, rho, cfg.M, cfg.N)
			}},
		{NameFixed, func() Config { c := testConfig(); c.TSFixed = 7e-6; return c }(),
			func(cfg Config, rho float64) float64 { return cfg.TSFixed }},
		{NameFixed, testConfig(), // TSFixed unset falls back to VBar
			func(cfg Config, rho float64) float64 { return cfg.VBar }},
		{NameBusyPoll, testConfig(), func(Config, float64) float64 { return 0 }},
	}
	for _, tc := range cases {
		p := MustNew(tc.name, tc.cfg)
		for _, rho := range rhos {
			for q := 0; q < tc.cfg.N; q++ {
				driveTo(p, q, rho)
				if got, want := p.TS(q), tc.want(tc.cfg, rho); got != want {
					t.Errorf("%s M=%d N=%d rho=%v q=%d: TS = %v, want %v",
						tc.name, tc.cfg.M, tc.cfg.N, rho, q, got, want)
				}
				if got := p.Rho(q); math.Abs(got-rho) > 1e-12 {
					t.Errorf("%s rho=%v: Rho = %v", tc.name, rho, got)
				}
			}
		}
	}
}

func TestAdaptiveTSMonotoneInRho(t *testing.T) {
	p := NewAdaptiveTS(testConfig())
	prev := math.Inf(1)
	for _, rho := range []float64{0, 0.2, 0.4, 0.6, 0.8, 0.95} {
		driveTo(p, 0, rho)
		ts := p.TS(0)
		if ts > prev {
			t.Fatalf("TS not non-increasing: rho=%v ts=%v prev=%v", rho, ts, prev)
		}
		prev = ts
	}
	// Bounds of eq. (13): TS in [VBar, M*VBar].
	driveTo(p, 0, 0)
	if got, want := p.TS(0), 3*10e-6; math.Abs(got-want) > 1e-18 {
		t.Fatalf("idle TS = %v, want M*VBar = %v", got, want)
	}
	driveTo(p, 0, 1)
	if got, want := p.TS(0), 10e-6; math.Abs(got-want) > 1e-18 {
		t.Fatalf("saturated TS = %v, want VBar = %v", got, want)
	}
}

func TestTimeoutDefaultsAndTL(t *testing.T) {
	cfg := testConfig()
	for _, name := range []string{NameAdaptive, NameFixed} {
		p := MustNew(name, cfg)
		if got := p.TL(0); got != cfg.TL {
			t.Errorf("%s: TL = %v, want %v", name, got, cfg.TL)
		}
	}
	bp := MustNew(NameBusyPoll, cfg)
	if got := bp.TL(0); got != 0 {
		t.Errorf("busypoll: TL = %v, want 0", got)
	}
	if got := bp.TS(0); got != 0 {
		t.Errorf("busypoll: TS = %v, want 0", got)
	}
}

func TestRhoEstimator(t *testing.T) {
	e := NewRhoEstimator(2, 0.125)
	if e.Rho(0) != 0 {
		t.Fatal("fresh estimator not zero")
	}
	// First observation initialises directly (the paper's runtime).
	if got := e.Observe(0, 30e-6, 70e-6); math.Abs(got-0.3) > 1e-12 {
		t.Fatalf("first observation = %v, want 0.3", got)
	}
	// Subsequent observations smooth with alpha.
	want := (1-0.125)*0.3 + 0.125*0.8
	if got := e.Observe(0, 80e-6, 20e-6); math.Abs(got-want) > 1e-12 {
		t.Fatalf("second observation = %v, want %v", got, want)
	}
	// Queues are independent.
	if e.Rho(1) != 0 {
		t.Fatal("queue 1 contaminated")
	}
	e.Set(1, 0.5)
	if e.Rho(1) != 0.5 {
		t.Fatal("Set did not stick")
	}
	// A zero-length cycle contributes rho = 0, not NaN.
	e2 := NewRhoEstimator(1, 0.5)
	if got := e2.Observe(0, 0, 0); got != 0 || math.IsNaN(got) {
		t.Fatalf("degenerate cycle = %v", got)
	}
}

func TestPickBackupQueue(t *testing.T) {
	rng := xrand.New(7)
	one := MustNew(NameAdaptive, testConfig())
	if got := one.PickBackupQueue(0, rng); got != 0 {
		t.Fatalf("N=1 pick = %d", got)
	}
	multi := testConfig()
	multi.N, multi.M = 4, 4
	p := MustNew(NameAdaptive, multi)
	seen := map[int]bool{}
	for i := 0; i < 200; i++ {
		q := p.PickBackupQueue(1, rng)
		if q < 0 || q >= 4 {
			t.Fatalf("pick %d out of range", q)
		}
		seen[q] = true
	}
	if len(seen) < 4 {
		t.Fatalf("random pick never covered all queues: %v", seen)
	}
	multi.BackupSticky = true
	sticky := MustNew(NameAdaptive, multi)
	for i := 0; i < 10; i++ {
		if got := sticky.PickBackupQueue(2, rng); got != 2 {
			t.Fatalf("sticky pick = %d", got)
		}
	}
	bp := MustNew(NameBusyPoll, multi)
	if got := bp.PickBackupQueue(3, rng); got != 3 {
		t.Fatalf("busypoll pick = %d, want pinned", got)
	}
}

func TestRegistry(t *testing.T) {
	for _, name := range []string{NameAdaptive, NameFixed, NameBusyPoll, NameRMetronome, NameWorkSteal} {
		found := false
		for _, n := range Names() {
			if n == name {
				found = true
			}
		}
		if !found {
			t.Errorf("built-in %q not registered (have %v)", name, Names())
		}
	}
	if _, err := New("no-such-policy", testConfig()); err == nil {
		t.Error("unknown policy did not error")
	}
	// Empty name resolves to the adaptive default.
	p, err := New("", testConfig())
	if err != nil || p.Name() != NameAdaptive {
		t.Errorf("default policy = %v, %v", p, err)
	}
	// Applications can plug their own discipline.
	Register("test-custom", func(cfg Config) Policy { return NewFixedTS(cfg) })
	if _, err := New("test-custom", testConfig()); err != nil {
		t.Errorf("custom policy: %v", err)
	}
	defer func() {
		if recover() == nil {
			t.Error("MustNew did not panic on unknown name")
		}
	}()
	MustNew("still-missing", testConfig())
}

func TestRMetronomeGroups(t *testing.T) {
	cfg := testConfig()
	cfg.M, cfg.N = 7, 3 // groups of 3/2/2
	for _, name := range []string{NameRMetronome, NameWorkSteal} {
		p := MustNew(name, cfg)
		if p.Name() != name {
			t.Fatalf("Name() = %q, want %q", p.Name(), name)
		}
		g, ok := p.(GroupPolicy)
		if !ok {
			t.Fatalf("%s does not implement GroupPolicy", name)
		}
		wantSize := []int{3, 2, 2}
		total := 0
		for q := 0; q < cfg.N; q++ {
			if g.GroupSize(q) != wantSize[q] {
				t.Errorf("%s: GroupSize(%d) = %d, want %d", name, q, g.GroupSize(q), wantSize[q])
			}
			total += g.GroupSize(q)
		}
		if total != cfg.M {
			t.Errorf("%s: group sizes sum to %d, want M=%d", name, total, cfg.M)
		}
		for i := 0; i < cfg.M; i++ {
			if got, want := g.HomeQueue(i), i%cfg.N; got != want {
				t.Errorf("%s: HomeQueue(%d) = %d, want %d", name, i, got, want)
			}
		}
		// Member timeouts follow eq. (13) with the integer group size, not
		// eq. (14)'s real-valued M/N average.
		for q := 0; q < cfg.N; q++ {
			driveTo(p, q, 0.4)
			if got, want := p.TS(q), model.TSForTarget(cfg.VBar, 0.4, wantSize[q]); got != want {
				t.Errorf("%s: TS(%d) = %v, want eq.13 with r=%d: %v", name, q, got, wantSize[q], want)
			}
		}
	}
}

func TestRMetronomeClaimTurn(t *testing.T) {
	cfg := testConfig()
	cfg.M, cfg.N = 4, 2
	g := MustNew(NameRMetronome, cfg).(GroupPolicy)
	for i := uint64(0); i < 5; i++ {
		if g.Turns(0) != i {
			t.Fatalf("Turns(0) = %d before claim %d", g.Turns(0), i)
		}
		if !g.ClaimTurn(0) {
			t.Fatalf("sequential claim %d failed", i)
		}
	}
	if g.Turns(1) != 0 {
		t.Fatalf("queue 1 turns contaminated: %d", g.Turns(1))
	}
}

func TestWorkStealPicksBusiestQueue(t *testing.T) {
	rng := xrand.New(11)
	cfg := testConfig()
	cfg.M, cfg.N = 8, 4
	p := MustNew(NameWorkSteal, cfg)
	est := p.Estimator()
	est.Set(0, 0.1)
	est.Set(1, 0.9) // the hot queue
	est.Set(2, 0.3)
	est.Set(3, 0.2)
	for i := 0; i < 20; i++ {
		if got := p.PickBackupQueue(0, rng); got != 1 {
			t.Fatalf("pick from q0 = %d, want the hottest sibling 1", got)
		}
	}
	// The current queue is excluded even when it is the hottest.
	for i := 0; i < 20; i++ {
		if got := p.PickBackupQueue(1, rng); got != 2 {
			t.Fatalf("pick from q1 = %d, want next-hottest 2", got)
		}
	}
	// Cold start: all-zero rho ties degenerate to a uniform pick.
	cold := MustNew(NameWorkSteal, cfg)
	seen := map[int]bool{}
	for i := 0; i < 200; i++ {
		q := cold.PickBackupQueue(3, rng)
		if q == 3 {
			t.Fatalf("cold pick returned the current queue")
		}
		seen[q] = true
	}
	if len(seen) != 3 {
		t.Fatalf("cold ties not uniform across siblings: %v", seen)
	}
	// The uniform variant ignores occupancy entirely.
	uni := MustNew(NameRMetronome, cfg)
	uni.Estimator().Set(1, 0.9)
	seen = map[int]bool{}
	for i := 0; i < 300; i++ {
		seen[uni.PickBackupQueue(0, rng)] = true
	}
	if len(seen) != 4 {
		t.Fatalf("uniform variant never covered all queues: %v", seen)
	}
}

func TestWorkStealSingleQueueAndSticky(t *testing.T) {
	rng := xrand.New(3)
	one := MustNew(NameWorkSteal, testConfig())
	if got := one.PickBackupQueue(0, rng); got != 0 {
		t.Fatalf("N=1 pick = %d", got)
	}
	cfg := testConfig()
	cfg.M, cfg.N, cfg.BackupSticky = 4, 4, true
	sticky := MustNew(NameWorkSteal, cfg)
	sticky.Estimator().Set(2, 0.9)
	for i := 0; i < 10; i++ {
		if got := sticky.PickBackupQueue(0, rng); got != 0 {
			t.Fatalf("sticky worksteal pick = %d", got)
		}
	}
}
