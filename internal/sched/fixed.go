package sched

// NameFixed selects the constant-timeout discipline.
const NameFixed = "fixed"

func init() {
	Register(NameFixed, func(cfg Config) Policy { return NewFixedTS(cfg) })
}

// FixedTS sleeps a constant short timeout regardless of load — the
// equal-timeout strawman of Fig 6 and the TS=TL configuration of Fig 4.
// The load estimator still runs so rho stays observable.
type FixedTS struct {
	base
}

// NewFixedTS builds the fixed policy; TSFixed zero falls back to VBar.
func NewFixedTS(cfg Config) *FixedTS {
	p := &FixedTS{}
	p.base.init(cfg)
	ts := p.cfg.TSFixed
	if ts <= 0 {
		ts = p.cfg.VBar
	}
	for q := range p.ts {
		p.ts[q].Store(ts)
	}
	return p
}

// Name implements Policy.
func (p *FixedTS) Name() string { return NameFixed }

// ObserveCycle implements Policy: the estimate updates, the timeout does
// not.
func (p *FixedTS) ObserveCycle(q int, busy, vacation float64) float64 {
	p.est.Observe(q, busy, vacation)
	return p.TS(q)
}
