package sched

import "metronome/internal/model"

// NameAdaptive selects the paper's adaptive discipline.
const NameAdaptive = "adaptive"

func init() {
	Register(NameAdaptive, func(cfg Config) Policy { return NewAdaptiveTS(cfg) })
}

// AdaptiveTS is the paper's discipline: eq. (13)/(14) re-evaluate the short
// timeout after every cycle so the mean vacation period holds at VBar as
// the per-queue load estimate moves.
type AdaptiveTS struct {
	base
}

// NewAdaptiveTS builds the adaptive policy; every queue starts at the
// rho=0 timeout (M/N)*VBar.
func NewAdaptiveTS(cfg Config) *AdaptiveTS {
	p := &AdaptiveTS{base: newBase(cfg)}
	for q := range p.ts {
		p.ts[q].Store(p.evaluate(0))
	}
	return p
}

// Name implements Policy.
func (p *AdaptiveTS) Name() string { return NameAdaptive }

// evaluate is eq. (14) (eq. (13) when N=1) for a load estimate.
func (p *AdaptiveTS) evaluate(rho float64) float64 {
	return model.TSForTargetMultiqueue(p.cfg.VBar, rho, p.cfg.M, p.cfg.N)
}

// ObserveCycle implements Policy.
func (p *AdaptiveTS) ObserveCycle(q int, busy, vacation float64) float64 {
	ts := p.evaluate(p.est.Observe(q, busy, vacation))
	p.ts[q].Store(ts)
	return ts
}
