package sched

import "metronome/internal/model"

// NameAdaptive selects the paper's adaptive discipline.
const NameAdaptive = "adaptive"

func init() {
	Register(NameAdaptive, func(cfg Config) Policy { return NewAdaptiveTS(cfg) })
}

// AdaptiveTS is the paper's discipline: eq. (13)/(14) re-evaluate the short
// timeout after every cycle so the mean vacation period holds at VBar as
// the per-queue load estimate moves.
type AdaptiveTS struct {
	base
}

// NewAdaptiveTS builds the adaptive policy; every queue starts at the
// rho=0 timeout (M/N)*VBar.
func NewAdaptiveTS(cfg Config) *AdaptiveTS {
	p := &AdaptiveTS{}
	p.base.init(cfg)
	for q := range p.ts {
		p.ts[q].Store(p.evaluate(0))
	}
	return p
}

// Name implements Policy.
func (p *AdaptiveTS) Name() string { return NameAdaptive }

// evaluate is eq. (14) (eq. (13) when N=1) for a load estimate, using the
// live team size so elastic resizes re-shape the timeout rule online.
func (p *AdaptiveTS) evaluate(rho float64) float64 {
	return model.TSForTargetMultiqueue(p.cfg.VBar, rho, p.TeamSize(), p.cfg.N)
}

// ObserveCycle implements Policy.
func (p *AdaptiveTS) ObserveCycle(q int, busy, vacation float64) float64 {
	ts := p.evaluate(p.est.Observe(q, busy, vacation))
	p.ts[q].Store(ts)
	return ts
}

// SetTeamSize implements Resizable: eq. (14) depends on M, so the cached
// per-queue timeouts re-evaluate immediately at the current load estimates
// instead of waiting one cycle per queue. Concurrent ObserveCycle stores
// race benignly: both values are valid eq. (14) outputs and the next cycle
// converges them.
func (p *AdaptiveTS) SetTeamSize(m int) {
	p.base.SetTeamSize(m)
	for q := range p.ts {
		p.ts[q].Store(p.evaluate(p.est.Rho(q)))
	}
}
