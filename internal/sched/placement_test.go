package sched

import (
	"math"
	"testing"
)

func TestBalancedPlacementMatchesLegacyRoundRobin(t *testing.T) {
	for _, tc := range []struct{ m, n int }{{3, 1}, {4, 2}, {6, 3}, {7, 3}, {9, 4}, {2, 4}} {
		sizes := BalancedPlacement(tc.m, tc.n)
		want := make([]int, tc.n)
		for i := 0; i < tc.m; i++ {
			want[i%tc.n]++
		}
		for q := range want {
			if sizes[q] != want[q] {
				t.Fatalf("BalancedPlacement(%d,%d) = %v, want %v", tc.m, tc.n, sizes, want)
			}
		}
	}
}

// The placed layout must reduce to the legacy thread i -> queue i % n
// layout for balanced sizes — that identity is what keeps SetTeamSize the
// degenerate case of SetPlacement.
func TestPlacedLayoutBalancedIsLegacy(t *testing.T) {
	for _, tc := range []struct{ m, n int }{{4, 2}, {6, 3}, {7, 3}, {9, 4}} {
		l := buildPlacedLayout(BalancedPlacement(tc.m, tc.n))
		for i := 0; i < tc.m; i++ {
			if l.home[i] != i%tc.n {
				t.Fatalf("m=%d n=%d: home[%d] = %d, want %d", tc.m, tc.n, i, l.home[i], i%tc.n)
			}
		}
	}
}

func TestPlacedLayoutArbitrarySizes(t *testing.T) {
	l := buildPlacedLayout([]int{3, 1, 2})
	wantHome := []int{0, 1, 2, 0, 2, 0}
	for i, w := range wantHome {
		if l.home[i] != w {
			t.Fatalf("home = %v, want %v", l.home, wantHome)
		}
	}
	if l.size[0] != 3 || l.size[1] != 1 || l.size[2] != 2 {
		t.Fatalf("size = %v", l.size)
	}
	// Ranks are dense per group.
	seen := map[int][]int{}
	for i := range wantHome {
		seen[l.home[i]] = append(seen[l.home[i]], l.rank[i])
	}
	for q, ranks := range seen {
		for want, got := range ranks {
			if got != want {
				t.Fatalf("queue %d ranks = %v, want dense 0..r-1", q, ranks)
			}
		}
	}
}

func TestRMetronomeSetPlacement(t *testing.T) {
	p := NewRMetronome(Config{VBar: 15e-6, TL: 500e-6, M: 6, N: 3}, false)
	p.SetPlacement([]int{1, 1, 4})
	if got := p.TeamSize(); got != 6 {
		t.Fatalf("team size %d after placement, want 6", got)
	}
	if got := p.Placement(); got[0] != 1 || got[1] != 1 || got[2] != 4 {
		t.Fatalf("placement = %v", got)
	}
	if p.GroupSize(2) != 4 || p.GroupSize(0) != 1 {
		t.Fatalf("group sizes %d/%d/%d", p.GroupSize(0), p.GroupSize(1), p.GroupSize(2))
	}
	// eq. (13) republishes per group at its new integer size.
	for q, r := range []int{1, 1, 4} {
		want := float64(r) * 15e-6 // rho = 0 => TS = r * VBar
		if ts := p.TS(q); math.Abs(ts-want) > 1e-12 {
			t.Fatalf("queue %d TS = %v, want %v for r=%d", q, ts, want, r)
		}
	}
	// Entries clamp to >= 1 (Sec. IV-E).
	p.SetPlacement([]int{0, -3, 2})
	if got := p.Placement(); got[0] != 1 || got[1] != 1 || got[2] != 2 {
		t.Fatalf("clamped placement = %v", got)
	}
	if got := p.TeamSize(); got != 4 {
		t.Fatalf("clamped team size %d, want 4", got)
	}
}

// SetTeamSize must remain exactly SetPlacement(BalancedPlacement(m, n)).
func TestSetTeamSizeIsBalancedSetPlacement(t *testing.T) {
	a := NewRMetronome(Config{VBar: 15e-6, TL: 500e-6, M: 4, N: 2}, false)
	b := NewRMetronome(Config{VBar: 15e-6, TL: 500e-6, M: 4, N: 2}, false)
	for _, m := range []int{7, 3, 8, 2} {
		a.SetTeamSize(m)
		b.SetPlacement(BalancedPlacement(m, 2))
		for id := 0; id < m; id++ {
			if a.HomeQueue(id) != b.HomeQueue(id) {
				t.Fatalf("m=%d: home[%d] %d vs %d", m, id, a.HomeQueue(id), b.HomeQueue(id))
			}
		}
		for q := 0; q < 2; q++ {
			if a.GroupSize(q) != b.GroupSize(q) || a.TS(q) != b.TS(q) || a.TL(q) != b.TL(q) {
				t.Fatalf("m=%d q=%d: group/TS/TL diverge", m, q)
			}
		}
	}
}

// Rebalancing must not drop claimed service turns: the per-queue CAS
// counters live outside the layout and survive the swap.
func TestSetPlacementKeepsClaimedTurns(t *testing.T) {
	p := NewRMetronome(Config{VBar: 15e-6, TL: 500e-6, M: 6, N: 3}, false)
	for q := 0; q < 3; q++ {
		for k := 0; k <= q; k++ {
			if !p.ClaimTurn(q) {
				t.Fatalf("uncontended claim failed on queue %d", q)
			}
		}
	}
	p.SetPlacement([]int{4, 1, 1})
	for q := 0; q < 3; q++ {
		if got := p.Turns(q); got != uint64(q+1) {
			t.Fatalf("queue %d turns = %d after rebalance, want %d", q, got, q+1)
		}
	}
}

func TestUniformVacInvertsEq6(t *testing.T) {
	cfg := Config{VBar: 10e-6, TL: 500e-6, M: 3, N: 1}
	p := NewUniformVac(cfg)
	// The pinned timeout must reproduce VBar through the forward eq. (6).
	if ev := p.EVAtHighLoad(); math.Abs(ev-cfg.VBar) > 1e-12 {
		t.Fatalf("E[V] at high load = %v, want %v", ev, cfg.VBar)
	}
	// No load adaptivity: heavy and idle cycles leave TS untouched.
	ts0 := p.TS(0)
	p.ObserveCycle(0, 200e-6, 2e-6)
	p.ObserveCycle(0, 0.1e-6, 900e-6)
	if p.TS(0) != ts0 {
		t.Fatalf("uniformvac TS moved with load: %v -> %v", ts0, p.TS(0))
	}
	if p.Rho(0) == 0 {
		t.Fatal("estimator should still observe cycles")
	}
	// Resizes re-invert for the new k = M/N.
	p.SetTeamSize(6)
	if p.TS(0) == ts0 {
		t.Fatal("TS did not re-evaluate on resize")
	}
	if ev := p.EVAtHighLoad(); math.Abs(ev-cfg.VBar) > 1e-12 {
		t.Fatalf("E[V] after resize = %v, want %v", ev, cfg.VBar)
	}
}

func TestUniformVacRegistered(t *testing.T) {
	p, err := New(NameUniformVac, Config{VBar: 10e-6, TL: 500e-6, M: 3, N: 1})
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != NameUniformVac {
		t.Fatalf("name %q", p.Name())
	}
	if _, ok := p.(Resizable); !ok {
		t.Fatal("uniformvac must be Resizable")
	}
}
