package sched_test

import (
	"math"
	"testing"
	"time"

	"metronome/internal/baseline"
	"metronome/internal/core"
	"metronome/internal/mbuf"
	"metronome/internal/nic"
	"metronome/internal/ring"
	"metronome/internal/runtime"
	"metronome/internal/sched"
	"metronome/internal/sim"
	"metronome/internal/traffic"
	"metronome/internal/xrand"
)

// newTwins builds the discrete-event twin and the live runner over the
// same deployment shape (M threads, N queues, identical VBar/TL/Alpha).
func newTwins(t *testing.T, m, n int) (*core.Runtime, *runtime.Runner) {
	t.Helper()
	eng := sim.New()
	root := xrand.New(1)
	queues := make([]*nic.Queue, n)
	for i := range queues {
		queues[i] = nic.NewQueue(i, traffic.CBR{PPS: 0}, root.Split(), nic.DefaultOptions())
	}
	simCfg := core.DefaultConfig()
	simCfg.M = m
	simCfg.VBar = 10e-6
	simCfg.TL = 500e-6
	simCfg.Alpha = 0.125
	rt := core.New(eng, queues, simCfg)

	rxs := make([]runtime.RxQueue, n)
	for i := range rxs {
		r, err := ring.NewMPMC[*mbuf.Mbuf](8)
		if err != nil {
			t.Fatal(err)
		}
		rxs[i] = runtime.RingQueue{R: r}
	}
	liveCfg := runtime.Config{
		M:     m,
		VBar:  10 * time.Microsecond,
		TL:    500 * time.Microsecond,
		Alpha: 0.125,
	}
	runner := runtime.New(rxs, func([]*mbuf.Mbuf) {}, liveCfg)
	return rt, runner
}

// TestSimLiveTSEquivalence is the acceptance check of the policy layer:
// for identical (rho, M, N) the sim twin and the live runtime must compute
// bit-identical short timeouts, because both delegate to the same
// sched.Policy engine. Cycles are fed through each side's own policy so
// the test exercises the rewired paths, not a shared object.
func TestSimLiveTSEquivalence(t *testing.T) {
	cycles := []struct{ busy, vacation float64 }{
		{0, 100e-6},       // empty polls
		{5e-6, 20e-6},     // light load
		{50e-6, 10e-6},    // heavy
		{200e-6, 5e-6},    // near saturation
		{1e-6, 300e-6},    // load drains away
		{0.5e-6, 900e-6},  // idle again
		{80e-6, 8e-6},     // burst returns
		{120e-6, 2e-6},    // overload
		{3e-6, 3e-6},      // exactly rho = 0.5
		{10e-6, 999.9e-6}, // long vacation tail
	}
	for _, shape := range []struct{ m, n int }{{3, 1}, {4, 2}, {6, 3}} {
		rt, runner := newTwins(t, shape.m, shape.n)
		simPol, livePol := rt.Policy(), runner.Policy()
		if simPol.Name() != livePol.Name() {
			t.Fatalf("policy names differ: %q vs %q", simPol.Name(), livePol.Name())
		}
		for q := 0; q < shape.n; q++ {
			if simPol.TS(q) != livePol.TS(q) {
				t.Fatalf("M=%d N=%d q=%d: initial TS %v != %v",
					shape.m, shape.n, q, simPol.TS(q), livePol.TS(q))
			}
			for i, c := range cycles {
				sTS := simPol.ObserveCycle(q, c.busy, c.vacation)
				lTS := livePol.ObserveCycle(q, c.busy, c.vacation)
				if sTS != lTS {
					t.Fatalf("M=%d N=%d q=%d cycle %d: sim TS %v != live TS %v",
						shape.m, shape.n, q, i, sTS, lTS)
				}
				if simPol.Rho(q) != livePol.Rho(q) {
					t.Fatalf("M=%d N=%d q=%d cycle %d: rho %v != %v",
						shape.m, shape.n, q, i, simPol.Rho(q), livePol.Rho(q))
				}
				if rt.TS(q) != sTS {
					t.Fatalf("core.TS(%d) = %v, policy says %v", q, rt.TS(q), sTS)
				}
				if got, want := runner.TS(q), time.Duration(lTS*float64(time.Second)); got != want {
					t.Fatalf("runner.TS(%d) = %v, want %v", q, got, want)
				}
			}
		}
	}
}

// TestBusyPollZeroCostTerminates pins the spin-path floor: a config with
// zero WakeCost (anything not built via DefaultConfig) must still advance
// the engine clock under busypoll instead of re-enqueueing at the same
// instant forever.
func TestBusyPollZeroCostTerminates(t *testing.T) {
	eng := sim.New()
	root := xrand.New(1)
	q := nic.NewQueue(0, traffic.CBR{PPS: 0}, root.Split(), nic.DefaultOptions())
	cfg := core.Config{M: 1, VBar: 10e-6, TL: 500e-6, Mu: 1e6, MaxSlice: 200e-6,
		Policy: sched.NameBusyPoll}
	rt := core.New(eng, []*nic.Queue{q}, cfg)
	rt.Start()
	eng.RunUntil(1e-3)
	if rt.Tries.Value == 0 {
		t.Fatal("poller never polled")
	}
}

// TestBusyPollSubsumesStaticBaseline runs the sim twin under the busypoll
// discipline and checks it agrees with baseline.Static — which is itself
// the busypoll discipline packaged behind the comparator API since the
// closed form was retired. The hand-built run here uses its own engine,
// seed and window, so the assertion still catches either side drifting:
// every thread burns ~100% of its core and delivered throughput matches
// the offered load below saturation.
func TestBusyPollSubsumesStaticBaseline(t *testing.T) {
	eng := sim.New()
	root := xrand.New(3)
	pps := 2e6 // well under mu: no loss in either formulation
	q := nic.NewQueue(0, traffic.CBR{PPS: pps}, root.Split(), nic.DefaultOptions())
	cfg := core.DefaultConfig()
	cfg.M = 1
	cfg.Policy = sched.NameBusyPoll
	rt := core.New(eng, []*nic.Queue{q}, cfg)
	rt.Start()
	const wall = 0.05
	eng.RunUntil(wall)
	m := rt.Snapshot(wall)

	ref := baseline.Static(baseline.DefaultStatic(), pps)
	if m.CPUPercent < 80 {
		t.Errorf("busypoll CPU = %.1f%%, want ~%.0f%% (static baseline)", m.CPUPercent, ref.CPUPercent)
	}
	if ref.CPUPercent < 99.9 || ref.CPUPercent > 100.1 {
		t.Fatalf("static baseline CPU = %v, want ~100", ref.CPUPercent)
	}
	if math.Abs(m.ThroughputPPS-ref.ThroughputPPS)/ref.ThroughputPPS > 0.05 {
		t.Errorf("busypoll throughput %.0f pps vs baseline %.0f pps", m.ThroughputPPS, ref.ThroughputPPS)
	}
	if m.LossRate > 1e-3 {
		t.Errorf("busypoll dropped %.4f below saturation", m.LossRate)
	}
	// The vacation period collapses to the per-wake overhead: orders of
	// magnitude below the adaptive target.
	if m.MeanVacation > 5e-6 {
		t.Errorf("busypoll mean vacation = %v s, want ~wake overhead", m.MeanVacation)
	}
}

// newTwinsPolicy builds the twins pinned to one discipline.
func newTwinsPolicy(t *testing.T, policy string, m, n int) (*core.Runtime, *runtime.Runner) {
	t.Helper()
	eng := sim.New()
	root := xrand.New(1)
	queues := make([]*nic.Queue, n)
	for i := range queues {
		queues[i] = nic.NewQueue(i, traffic.CBR{PPS: 0}, root.Split(), nic.DefaultOptions())
	}
	simCfg := core.DefaultConfig()
	simCfg.M = m
	simCfg.VBar = 10e-6
	simCfg.TL = 500e-6
	simCfg.Alpha = 0.125
	simCfg.Policy = policy
	rt := core.New(eng, queues, simCfg)

	rxs := make([]runtime.RxQueue, n)
	for i := range rxs {
		r, err := ring.NewMPMC[*mbuf.Mbuf](8)
		if err != nil {
			t.Fatal(err)
		}
		rxs[i] = runtime.RingQueue{R: r}
	}
	runner := runtime.New(rxs, func([]*mbuf.Mbuf) {}, runtime.Config{
		M:      m,
		VBar:   10 * time.Microsecond,
		TL:     500 * time.Microsecond,
		Alpha:  0.125,
		Policy: policy,
	})
	return rt, runner
}

// TestSimLiveRMetronomeEquivalence mirrors TestSimLiveTSEquivalence for the
// shared-queue disciplines: identical cycle sequences must produce
// bit-identical member timeouts, rotation-scaled backup timeouts, rho
// estimates, group shapes and home assignments on both substrates.
func TestSimLiveRMetronomeEquivalence(t *testing.T) {
	cycles := []struct{ busy, vacation float64 }{
		{0, 100e-6},
		{5e-6, 20e-6},
		{50e-6, 10e-6},
		{200e-6, 5e-6},
		{1e-6, 300e-6},
		{80e-6, 8e-6},
		{3e-6, 3e-6},
	}
	for _, policy := range []string{sched.NameRMetronome, sched.NameWorkSteal} {
		for _, shape := range []struct{ m, n int }{{4, 2}, {6, 3}, {7, 3}} {
			rt, runner := newTwinsPolicy(t, policy, shape.m, shape.n)
			simPol, livePol := rt.Policy(), runner.Policy()
			if simPol.Name() != policy || livePol.Name() != policy {
				t.Fatalf("policy names: sim %q live %q, want %q", simPol.Name(), livePol.Name(), policy)
			}
			simG, liveG := rt.Group(), livePol.(sched.GroupPolicy)
			if simG == nil {
				t.Fatal("sim twin has no GroupPolicy")
			}
			for id := 0; id < shape.m; id++ {
				if simG.HomeQueue(id) != liveG.HomeQueue(id) {
					t.Fatalf("%s M=%d N=%d: home of thread %d differs: %d vs %d",
						policy, shape.m, shape.n, id, simG.HomeQueue(id), liveG.HomeQueue(id))
				}
			}
			for q := 0; q < shape.n; q++ {
				if simG.GroupSize(q) != liveG.GroupSize(q) {
					t.Fatalf("%s q=%d: group size %d vs %d", policy, q, simG.GroupSize(q), liveG.GroupSize(q))
				}
				if simPol.TS(q) != livePol.TS(q) {
					t.Fatalf("%s q=%d: initial TS %v != %v", policy, q, simPol.TS(q), livePol.TS(q))
				}
				for i, c := range cycles {
					sTS := simPol.ObserveCycle(q, c.busy, c.vacation)
					lTS := livePol.ObserveCycle(q, c.busy, c.vacation)
					if sTS != lTS {
						t.Fatalf("%s M=%d N=%d q=%d cycle %d: sim TS %v != live TS %v",
							policy, shape.m, shape.n, q, i, sTS, lTS)
					}
					if simPol.TL(q) != livePol.TL(q) {
						t.Fatalf("%s q=%d cycle %d: TL %v != %v", policy, q, i, simPol.TL(q), livePol.TL(q))
					}
					if want := float64(simG.GroupSize(q)) * sTS; simPol.TL(q) != want {
						t.Fatalf("%s q=%d: TL = %v, want one rotation r*TS = %v", policy, q, simPol.TL(q), want)
					}
					if simPol.Rho(q) != livePol.Rho(q) {
						t.Fatalf("%s q=%d cycle %d: rho %v != %v", policy, q, i, simPol.Rho(q), livePol.Rho(q))
					}
				}
			}
		}
	}
}

// TestSimLivePlacementEquivalence runs one scripted ApplyPlacement
// sequence against both substrates: after each plan (interleaved with
// observed cycles and claimed service turns), the sim twin's policy and
// the live runner's policy must agree bit-for-bit on team size, per-queue
// group sizes, home assignments, member timeouts, rotation backoffs, load
// estimates AND the service-turn counters — a rebalance must never drop a
// claimed turn on either side.
func TestSimLivePlacementEquivalence(t *testing.T) {
	script := []struct {
		plan     []int // nil = no placement change this step
		busy     float64
		vacation float64
	}{
		{nil, 5e-6, 20e-6},
		{[]int{1, 3}, 50e-6, 10e-6},
		{[]int{1, 3}, 80e-6, 8e-6}, // identical plan: must be a no-op
		{[]int{4, 2}, 120e-6, 2e-6},
		{[]int{1, 1}, 1e-6, 300e-6},
		{[]int{2, 5}, 3e-6, 3e-6},
		{[]int{0, 2}, 10e-6, 30e-6}, // clamps to {1, 2}
	}
	for _, policy := range []string{sched.NameRMetronome, sched.NameWorkSteal} {
		rt, runner := newTwinsPolicy(t, policy, 4, 2)
		simPol, livePol := rt.Policy(), runner.Policy()
		simG := rt.Group()
		liveG := livePol.(sched.GroupPolicy)
		for step, s := range script {
			if s.plan != nil {
				sa := rt.ApplyPlacement(s.plan)
				la := runner.ApplyPlacement(s.plan)
				if sa != la {
					t.Fatalf("%s step %d: applied totals differ: sim %d live %d", policy, step, sa, la)
				}
				if rt.TeamSize() != runner.TeamSize() || rt.TeamSize() != sa {
					t.Fatalf("%s step %d: team sizes sim %d live %d applied %d",
						policy, step, rt.TeamSize(), runner.TeamSize(), sa)
				}
				srb := simPol.(sched.Rebalancer)
				lrb := livePol.(sched.Rebalancer)
				sp, lp := srb.Placement(), lrb.Placement()
				for q := range sp {
					if sp[q] != lp[q] {
						t.Fatalf("%s step %d: placements differ: sim %v live %v", policy, step, sp, lp)
					}
				}
				simRt := rt.Placement()
				for q := range sp {
					if simRt[q] != sp[q] {
						t.Fatalf("%s step %d: runtime placement %v != policy %v", policy, step, simRt, sp)
					}
				}
			}
			m := rt.TeamSize()
			for id := 0; id < m; id++ {
				if simG.HomeQueue(id) != liveG.HomeQueue(id) {
					t.Fatalf("%s step %d thread %d: home %d != %d",
						policy, step, id, simG.HomeQueue(id), liveG.HomeQueue(id))
				}
			}
			for q := 0; q < 2; q++ {
				if simG.GroupSize(q) != liveG.GroupSize(q) {
					t.Fatalf("%s step %d q %d: group size %d != %d",
						policy, step, q, simG.GroupSize(q), liveG.GroupSize(q))
				}
				// Both sides claim a turn this step: the counters must stay
				// in lockstep across every rebalance.
				if !simG.ClaimTurn(q) || !liveG.ClaimTurn(q) {
					t.Fatalf("%s step %d q %d: uncontended claim failed", policy, step, q)
				}
				if simG.Turns(q) != liveG.Turns(q) {
					t.Fatalf("%s step %d q %d: turns %d != %d",
						policy, step, q, simG.Turns(q), liveG.Turns(q))
				}
				sTS := simPol.ObserveCycle(q, s.busy, s.vacation)
				lTS := livePol.ObserveCycle(q, s.busy, s.vacation)
				if sTS != lTS {
					t.Fatalf("%s step %d q %d: TS %v != %v", policy, step, q, sTS, lTS)
				}
				if simPol.TL(q) != livePol.TL(q) {
					t.Fatalf("%s step %d q %d: TL %v != %v", policy, step, q, simPol.TL(q), livePol.TL(q))
				}
				if simPol.Rho(q) != livePol.Rho(q) {
					t.Fatalf("%s step %d q %d: rho %v != %v", policy, step, q, simPol.Rho(q), livePol.Rho(q))
				}
			}
		}
	}
}

// TestSimLiveResizeEquivalence runs one scripted resize sequence against
// both substrates: after each SetTeamSize (interleaved with observed
// cycles), the sim twin's policy and the live runner's policy must agree
// bit-for-bit on team size, group shape, home assignments, member
// timeouts, rotation backoffs and load estimates — the elastic control
// plane drives either side through the same sched.Resizable contract.
func TestSimLiveResizeEquivalence(t *testing.T) {
	script := []struct {
		resizeTo int // 0 = no resize this step
		busy     float64
		vacation float64
	}{
		{0, 5e-6, 20e-6},
		{6, 50e-6, 10e-6},
		{0, 80e-6, 8e-6},
		{9, 120e-6, 2e-6},
		{4, 1e-6, 300e-6},
		{0, 3e-6, 3e-6},
		{7, 10e-6, 30e-6},
	}
	for _, policy := range []string{sched.NameRMetronome, sched.NameWorkSteal, sched.NameAdaptive} {
		rt, runner := newTwinsPolicy(t, policy, 4, 2)
		simPol, livePol := rt.Policy(), runner.Policy()
		for step, s := range script {
			if s.resizeTo != 0 {
				sa := rt.SetTeamSize(s.resizeTo)
				la := runner.SetTeamSize(s.resizeTo)
				if sa != la {
					t.Fatalf("%s step %d: applied sizes differ: sim %d live %d", policy, step, sa, la)
				}
				srz := simPol.(sched.Resizable)
				lrz := livePol.(sched.Resizable)
				if srz.TeamSize() != lrz.TeamSize() || srz.TeamSize() != sa {
					t.Fatalf("%s step %d: policy team sizes sim %d live %d applied %d",
						policy, step, srz.TeamSize(), lrz.TeamSize(), sa)
				}
			}
			for q := 0; q < 2; q++ {
				sTS := simPol.ObserveCycle(q, s.busy, s.vacation)
				lTS := livePol.ObserveCycle(q, s.busy, s.vacation)
				if sTS != lTS {
					t.Fatalf("%s step %d q %d: TS %v != %v", policy, step, q, sTS, lTS)
				}
				if simPol.TL(q) != livePol.TL(q) {
					t.Fatalf("%s step %d q %d: TL %v != %v", policy, step, q, simPol.TL(q), livePol.TL(q))
				}
				if simPol.Rho(q) != livePol.Rho(q) {
					t.Fatalf("%s step %d q %d: rho %v != %v", policy, step, q, simPol.Rho(q), livePol.Rho(q))
				}
			}
			sg, sok := simPol.(sched.GroupPolicy)
			lg, lok := livePol.(sched.GroupPolicy)
			if sok != lok {
				t.Fatalf("%s step %d: group capability differs", policy, step)
			}
			if sok {
				m := simPol.(sched.Resizable).TeamSize()
				for q := 0; q < 2; q++ {
					if sg.GroupSize(q) != lg.GroupSize(q) {
						t.Fatalf("%s step %d q %d: group size %d != %d",
							policy, step, q, sg.GroupSize(q), lg.GroupSize(q))
					}
				}
				for id := 0; id < m; id++ {
					if sg.HomeQueue(id) != lg.HomeQueue(id) {
						t.Fatalf("%s step %d thread %d: home %d != %d",
							policy, step, id, sg.HomeQueue(id), lg.HomeQueue(id))
					}
				}
			}
		}
	}
}
