package sched

import (
	"math"
	"sync/atomic"

	"metronome/internal/model"
)

// atomicF64 is a float64 readable and writable without tearing; the live
// runtime reads TS/rho from goroutines other than the one observing cycles.
type atomicF64 struct {
	bits atomic.Uint64
}

func (a *atomicF64) Load() float64   { return math.Float64frombits(a.bits.Load()) }
func (a *atomicF64) Store(v float64) { a.bits.Store(math.Float64bits(v)) }

// RhoEstimator maintains one EWMA load estimate per queue (eq. 11),
// combining each cycle's busy and vacation period through eq. (4). It
// follows the paper's runtime in initialising the average directly from the
// first observation. Reads are safe from any goroutine; Observe(q, ...)
// must be serialised per queue (the lock holder's privilege), matching how
// both execution substrates call it.
type RhoEstimator struct {
	alpha   float64
	rho     []atomicF64
	started []atomic.Bool
}

// NewRhoEstimator builds an estimator over n queues.
func NewRhoEstimator(n int, alpha float64) *RhoEstimator {
	if n < 1 {
		n = 1
	}
	if alpha <= 0 {
		alpha = 0.125
	}
	return &RhoEstimator{
		alpha:   alpha,
		rho:     make([]atomicF64, n),
		started: make([]atomic.Bool, n),
	}
}

// Alpha returns the smoothing factor.
func (e *RhoEstimator) Alpha() float64 { return e.alpha }

// Rho returns queue q's current estimate.
func (e *RhoEstimator) Rho(q int) float64 { return e.rho[q].Load() }

// Observe folds one cycle into queue q's estimate and returns the new
// value.
func (e *RhoEstimator) Observe(q int, busy, vacation float64) float64 {
	sample := model.Rho(busy, vacation)
	var next float64
	if !e.started[q].Load() {
		e.started[q].Store(true)
		next = sample
	} else {
		next = (1-e.alpha)*e.rho[q].Load() + e.alpha*sample
	}
	e.rho[q].Store(next)
	return next
}

// Set forces queue q's estimate (test seeding and warm-start).
func (e *RhoEstimator) Set(q int, rho float64) {
	e.started[q].Store(true)
	e.rho[q].Store(rho)
}
