// Package sched is Metronome's sleep&wake policy engine: the one place
// where a scheduling discipline decides how long threads sleep (the short
// timeout TS and the backup timeout TL), how the per-queue load estimate is
// maintained, and which queue a thread that lost a trylock race contends
// next. Both execution substrates — the discrete-event twin in
// internal/core and the live goroutine runtime in internal/runtime —
// delegate those decisions here, so a new discipline is a single
// implementation of Policy (plus a Register call) and is immediately
// available to the simulator, the live runtime, every experiment, and the
// -policy flag of the CLIs.
//
// Policies work in plain float64 seconds; the live runtime converts to
// time.Duration at its edge. All Policy methods must be safe for the
// concurrent access pattern of the live runtime: many readers of TS/Rho at
// any time, but ObserveCycle(q, ...) serialised per queue by the caller
// (only the thread holding queue q's trylock observes its cycles).
package sched

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"metronome/internal/telemetry"
)

// Rand is the slice of randomness a policy may consume; xrand.Rand
// satisfies it in the sim, and the live runtime passes its per-goroutine
// generator.
type Rand interface {
	// Intn returns a uniform int in [0, n).
	Intn(n int) int
}

// Config parameterises a policy for one deployment.
type Config struct {
	// VBar is the target mean vacation period in seconds.
	VBar float64
	// TL is the backup (long) timeout in seconds.
	TL float64
	// TSFixed is the constant short timeout of the fixed discipline; zero
	// falls back to VBar.
	TSFixed float64
	// M is the number of retrieval threads, N the number of Rx queues.
	M, N int
	// Alpha is the EWMA smoothing of the load estimator (eq. 11);
	// zero takes the paper's 0.125.
	Alpha float64
	// BackupSticky makes a losing thread re-contend the same queue
	// instead of re-targeting a random one (the anti-Sec. IV-E strawman).
	BackupSticky bool
	// Bus, when set, gives the policy live queue telemetry: the
	// work-stealing discipline re-targets backups at the queue with the
	// highest *observed occupancy* (nic occupancy in the sim, ring Len in
	// the live runtime) instead of the slower rho EWMA, so stealing reacts
	// within a vacation. Policies must degrade gracefully to their
	// EWMA-driven behaviour when Bus is nil.
	Bus *telemetry.Bus
	// Dephase enables turn-aware wake de-phasing in the shared-queue
	// disciplines: a group member that *lost a race* at service-dominated
	// load re-enters on the rotation clock (B̄/2 + V̄ + d·(V̄+B̄), with d
	// its service-turn distance) instead of backing off a blind rotation
	// r·TS, cutting busy tries while tracking the vacation target better.
	// Winners keep the eq. (13) timeout untouched — see
	// RMetronome.Dephase for the measurements behind that split.
	Dephase bool
}

func (c Config) normalized() Config {
	if c.M < 1 {
		c.M = 1
	}
	if c.N < 1 {
		c.N = 1
	}
	if c.Alpha <= 0 {
		c.Alpha = 0.125
	}
	return c
}

// Policy is one sleep&wake scheduling discipline.
type Policy interface {
	// Name is the registry identifier ("adaptive", "fixed", "busypoll").
	Name() string
	// TS returns queue q's current short timeout in seconds.
	TS(q int) float64
	// TL returns the long timeout a thread sleeps after losing the
	// trylock race on queue q, in seconds.
	TL(q int) float64
	// Rho returns queue q's current load estimate.
	Rho(q int) float64
	// ObserveCycle folds one completed service cycle of queue q (busy and
	// vacation in seconds) into the load estimate and returns the
	// re-evaluated short timeout the serving thread should sleep.
	ObserveCycle(q int, busy, vacation float64) float64
	// PickBackupQueue returns the queue a lost-race thread should contend
	// at its next wakeup.
	PickBackupQueue(cur int, rng Rand) int
	// Estimator exposes the underlying load estimator (observability and
	// test seeding).
	Estimator() *RhoEstimator
}

// GroupPolicy is an optional Policy extension for shared-queue disciplines
// that bind threads into stable per-queue service groups and arbitrate
// service turns with an explicit claim. Both execution substrates probe for
// it with a type assertion: when present, a thread that finishes a cycle on
// a foreign queue returns to its home queue, and the wake path consults
// ClaimTurn. In the live runtime the claim runs *before* the queue trylock
// as a cheap admission filter (a failed CAS proves a sibling claimed a
// turn concurrently, so the thread goes straight to the backup path without
// bouncing the queue's lock cache line); in the sequential sim twin the
// claim is taken after the lock check and can never fail, making Turns(q)
// an exact count of the service turns queue q has begun.
type GroupPolicy interface {
	// HomeQueue returns thread id's home queue.
	HomeQueue(thread int) int
	// GroupSize returns how many threads queue q's service group holds.
	GroupSize(q int) int
	// ClaimTurn attempts to CAS-claim queue q's next service turn; false
	// means a sibling claimed a turn between the caller's load and CAS.
	ClaimTurn(q int) bool
	// Turns returns the number of service turns claimed on queue q so far.
	Turns(q int) uint64
}

// Resizable is an optional Policy extension for disciplines that can adopt
// a new thread-team size online — the hook the elastic control plane
// (internal/elastic) drives when it grows or shrinks the team. The queue
// count N is fixed for a deployment; only M moves. Implementations must
// re-derive whatever M-dependent state they hold (eq. (14)'s M/N average,
// r = M/N service-group membership) and republish per-queue timeouts, all
// safe against concurrent TS/Rho readers and per-queue-serialised
// ObserveCycle callers. Every built-in policy implements it.
type Resizable interface {
	// SetTeamSize adopts m retrieval threads (clamped to >= 1).
	SetTeamSize(m int)
	// TeamSize returns the team size the policy currently assumes.
	TeamSize() int
}

// Rebalancer is an optional Resizable extension for disciplines that can
// adopt an *arbitrary* per-queue thread assignment online — the hook the
// placement plane (internal/elastic's placement law) drives when it moves
// members between service groups instead of, or in addition to, moving the
// scalar team size. SetTeamSize remains the degenerate balanced plan:
// SetTeamSize(m) must be exactly SetPlacement(BalancedPlacement(m, N)).
// Implementations swap a complete home/rank/size layout atomically and
// republish per-group timeouts, safe against concurrent TS/Rho readers;
// per-queue state that outlives a layout (service-turn counters, busy-period
// EWMAs) must survive the swap so members re-home without losing history.
type Rebalancer interface {
	Resizable
	// SetPlacement adopts sizes[q] threads homed on queue q (entries are
	// clamped to >= 1 — Sec. IV-E, every queue deserves an attendant); the
	// team size becomes their sum.
	SetPlacement(sizes []int)
	// Placement returns the per-queue group sizes currently in effect.
	Placement() []int
}

// BalancedPlacement spreads m threads over n queues exactly the way the
// legacy thread-id round-robin (thread i homed on queue i % n) did: every
// queue gets m/n members and the first m%n queues one extra. It is the
// plan SetTeamSize degenerates to.
func BalancedPlacement(m, n int) []int {
	if n < 1 {
		n = 1
	}
	if m < 0 {
		m = 0
	}
	sizes := make([]int, n)
	for i := 0; i < m; i++ {
		sizes[i%n]++
	}
	return sizes
}

// NormalizePlacement is THE plan-normalisation rule every placement layer
// shares: project perQueue onto n queues, clamp each entry to at least one
// attendant (Sec. IV-E), and return the normalised sizes with their total.
// rmetronome's SetPlacement and both substrates' ApplyPlacement all
// normalise through here, which is what keeps the sim twin and the live
// runtime bit-identical under the placement equivalence tests.
func NormalizePlacement(perQueue []int, n int) ([]int, int) {
	if n < 1 {
		n = 1
	}
	sizes := make([]int, n)
	total := 0
	for q := 0; q < n; q++ {
		s := 1
		if q < len(perQueue) && perQueue[q] > 1 {
			s = perQueue[q]
		}
		sizes[q] = s
		total += s
	}
	return sizes, total
}

// PackPlacement packs a normalised per-queue plan into one uint64 — byte
// q holds queue q's member count — so the observability plane can record
// a whole placement in a single atomic word at zero allocations. Plans
// that cannot fit (more than 8 queues, a count outside 1..255) return 0,
// which is unambiguous: NormalizePlacement clamps every entry to >= 1,
// so a representable plan never packs to zero. Decode with
// UnpackPlacement; a zero byte terminates the plan.
func PackPlacement(perQueue []int) uint64 {
	if len(perQueue) == 0 || len(perQueue) > 8 {
		return 0
	}
	var p uint64
	for q, m := range perQueue {
		if m < 1 || m > 255 {
			return 0
		}
		p |= uint64(m) << (8 * uint(q))
	}
	return p
}

// UnpackPlacement expands a PackPlacement word back into per-queue
// counts, appending to dst's backing array (pass nil to allocate); the
// zero word (unpackable plan) yields an empty slice.
func UnpackPlacement(p uint64, dst []int) []int {
	dst = dst[:0]
	for ; p != 0; p >>= 8 {
		dst = append(dst, int(p&0xff))
	}
	return dst
}

// PlacementEqual reports whether two per-queue plans place identically.
func PlacementEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Dephaser is an optional Policy extension for disciplines that stagger a
// member's next wake within its service group. Both substrates pass every
// home-queue sleep through Dephase when the policy implements it — the
// release-path sleep after a completed cycle (backup false) and the
// backoff after a lost race (backup true, with a service in progress that
// the adjusted sleep should ride out). A policy without an opinion
// returns ts unchanged.
type Dephaser interface {
	// Dephase returns the possibly adjusted sleep for thread's next wake
	// on queue q, given the policy-computed timeout ts.
	Dephase(thread, q int, ts float64, backup bool) float64
}

// Factory builds a policy instance for a deployment.
type Factory func(Config) Policy

var (
	regMu    sync.RWMutex
	registry = map[string]Factory{}
)

// Register installs a policy under name; later registrations of the same
// name win, so applications can override the built-ins.
func Register(name string, f Factory) {
	regMu.Lock()
	defer regMu.Unlock()
	registry[name] = f
}

// New builds the named policy; an empty name means the default adaptive
// discipline.
func New(name string, cfg Config) (Policy, error) {
	if name == "" {
		name = NameAdaptive
	}
	regMu.RLock()
	f, ok := registry[name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("sched: unknown policy %q (have %v)", name, Names())
	}
	return f(cfg), nil
}

// MustNew is New for configurations known at compile time; it panics on an
// unknown name.
func MustNew(name string, cfg Config) Policy {
	p, err := New(name, cfg)
	if err != nil {
		panic(err)
	}
	return p
}

// Names lists the registered policies, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// base carries the state every built-in discipline shares: the config, the
// load estimator, the cached per-queue TS, and the (elastically resizable)
// team size. cfg.M is the construction-time size; m is the live one.
type base struct {
	cfg Config
	m   atomic.Int64
	est *RhoEstimator
	ts  []atomicF64
}

// init fills b in place (base holds atomics, so it is never copied).
func (b *base) init(cfg Config) {
	cfg = cfg.normalized()
	b.cfg = cfg
	b.est = NewRhoEstimator(cfg.N, cfg.Alpha)
	b.ts = make([]atomicF64, cfg.N)
	b.m.Store(int64(cfg.M))
}

// TeamSize implements Resizable: the thread count the policy assumes.
func (b *base) TeamSize() int { return int(b.m.Load()) }

// SetTeamSize implements Resizable for disciplines whose only M-dependent
// state is the team size itself (fixed, busypoll). Disciplines that derive
// timeouts or group shapes from M re-publish them on top of this.
func (b *base) SetTeamSize(m int) {
	if m < 1 {
		m = 1
	}
	b.m.Store(int64(m))
}

// TS returns the cached short timeout of queue q.
func (b *base) TS(q int) float64 { return b.ts[q].Load() }

// TL returns the configured backup timeout.
func (b *base) TL(q int) float64 { return b.cfg.TL }

// Rho returns queue q's load estimate.
func (b *base) Rho(q int) float64 { return b.est.Rho(q) }

// Estimator exposes the shared estimator.
func (b *base) Estimator() *RhoEstimator { return b.est }

// PickBackupQueue implements the Sec. IV-E random re-targeting (or the
// sticky strawman when configured).
func (b *base) PickBackupQueue(cur int, rng Rand) int {
	if b.cfg.N <= 1 || b.cfg.BackupSticky {
		return cur
	}
	return rng.Intn(b.cfg.N)
}
