package sched

// NameBusyPoll selects the continuous-polling discipline.
const NameBusyPoll = "busypoll"

func init() {
	Register(NameBusyPoll, func(cfg Config) Policy { return NewBusyPoll(cfg) })
}

// BusyPoll is classic DPDK polling (Listing 1) expressed as a degenerate
// Metronome discipline: every timeout is zero, so threads re-poll
// back-to-back and the vacation period collapses to the wakeup overhead.
// It subsumes the static baseline inside the shared engine — the sim twin
// run under BusyPoll reproduces internal/baseline's 100%-CPU steady state —
// and losing threads stay on their queue, as a statically-bound poller
// would.
type BusyPoll struct {
	base
}

// NewBusyPoll builds the busy-polling policy.
func NewBusyPoll(cfg Config) *BusyPoll {
	p := &BusyPoll{}
	p.base.init(cfg)
	// ts entries stay zero: never sleep.
	return p
}

// Name implements Policy.
func (p *BusyPoll) Name() string { return NameBusyPoll }

// TL implements Policy: a poller that lost the race re-tries immediately.
func (p *BusyPoll) TL(q int) float64 { return 0 }

// ObserveCycle implements Policy: the estimate updates for observability,
// the timeout stays zero.
func (p *BusyPoll) ObserveCycle(q int, busy, vacation float64) float64 {
	p.est.Observe(q, busy, vacation)
	return 0
}

// PickBackupQueue implements Policy: static pollers are pinned.
func (p *BusyPoll) PickBackupQueue(cur int, rng Rand) int { return cur }
