package sched

import (
	"math"

	"metronome/internal/model"
)

// NameUniformVac selects the uniform-vacation ablation discipline.
const NameUniformVac = "uniformvac"

func init() {
	Register(NameUniformVac, func(cfg Config) Policy { return NewUniformVac(cfg) })
}

// UniformVac is the uniform-vacation ablation left open by the policy-layer
// extraction: it assumes the paper's *high-load* regime at every load —
// sibling residual timeouts uniform on [0, TL] (Sec. IV-B's decorrelation)
// — and pins the short timeout by inverting eq. (6) once:
//
//	E[V] = TL/k · (1 - (1 - TS/TL)^k) = V̄
//	  =>  TS = TL · (1 - (1 - k·V̄/TL)^(1/k)),   k = M/N,
//
// so the mean vacation would sit at V̄ *if the load were always high*. No
// load estimate feeds the timeout: where the adaptive discipline stretches
// TS toward k·V̄ as rho falls (fewer busy periods re-synchronise the team,
// so each member may sleep longer), uniformvac keeps sleeping the high-load
// value and over-polls an idle queue — the vacation collapses toward
// TS/(k+1) and CPU rises for nothing. The abl-uniformvac experiment
// measures exactly that gap, isolating what the eq. (11) estimator buys on
// top of the closed-form timeout rule. The estimator still runs so rho
// stays observable.
type UniformVac struct {
	base
}

// NewUniformVac builds the ablation policy; the timeout derives from VBar,
// TL and the team shape once, then only moves on elastic resizes.
func NewUniformVac(cfg Config) *UniformVac {
	p := &UniformVac{}
	p.base.init(cfg)
	p.republish()
	return p
}

// Name implements Policy.
func (p *UniformVac) Name() string { return NameUniformVac }

// evaluate inverts eq. (6) for the current team shape. k is real-valued
// like eq. (14)'s M/N average; loads never enter.
func (p *UniformVac) evaluate() float64 {
	k := float64(p.TeamSize()) / float64(p.cfg.N)
	if k < 1 {
		k = 1
	}
	tl := p.cfg.TL
	if tl <= 0 {
		tl = 50 * p.cfg.VBar
	}
	x := 1 - k*p.cfg.VBar/tl
	if x <= 0 {
		// Even TS = TL cannot hold a vacation this long at high load.
		return tl
	}
	return tl * (1 - math.Pow(x, 1/k))
}

// republish stores the closed-form timeout for every queue.
func (p *UniformVac) republish() {
	ts := p.evaluate()
	for q := range p.ts {
		p.ts[q].Store(ts)
	}
}

// ObserveCycle implements Policy: the estimate updates for observability,
// the timeout ignores it.
func (p *UniformVac) ObserveCycle(q int, busy, vacation float64) float64 {
	p.est.Observe(q, busy, vacation)
	return p.TS(q)
}

// SetTeamSize implements Resizable: k = M/N changed, so the eq. (6)
// inversion re-evaluates.
func (p *UniformVac) SetTeamSize(m int) {
	p.base.SetTeamSize(m)
	p.republish()
}

// EVAtHighLoad exposes the model-side mean vacation the pinned timeout
// yields in the high-load regime (tests assert it equals VBar).
func (p *UniformVac) EVAtHighLoad() float64 {
	k := float64(p.TeamSize()) / float64(p.cfg.N)
	if k < 1 {
		k = 1
	}
	m := int(math.Round(k))
	if m < 1 {
		m = 1
	}
	tl := p.cfg.TL
	if tl <= 0 {
		tl = 50 * p.cfg.VBar
	}
	return model.EVHighLoad(p.TS(0), tl, m)
}
