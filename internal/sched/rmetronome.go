package sched

import (
	"math"
	"sync/atomic"

	"metronome/internal/model"
)

// NameRMetronome selects the shared-queue service-group discipline with
// uniform backup re-targeting.
const NameRMetronome = "rmetronome"

// NameWorkSteal selects the shared-queue discipline with work-stealing
// backup selection: a lost-race thread scans sibling queues by observed
// occupancy instead of picking uniformly at random.
const NameWorkSteal = "worksteal"

func init() {
	Register(NameRMetronome, func(cfg Config) Policy { return NewRMetronome(cfg, false) })
	Register(NameWorkSteal, func(cfg Config) Policy { return NewRMetronome(cfg, true) })
}

// RMetronome is the shared-queue r-Metronome discipline behind the paper's
// multi-queue evaluation (Sec. V, fig. 13-15): the M threads are
// partitioned into stable per-queue service groups of r = M/N members
// (remainder spread round-robin), and each queue carries a monotonic
// service-turn counter its members CAS-claim before contending the queue.
//
// Two things distinguish it from the plain adaptive discipline over N
// queues:
//
//   - Timeouts come from eq. (13) with the *integer* group size r_q rather
//     than eq. (14)'s real-valued average M/N, and the group actually holds
//     that size: a member that serves a foreign queue as backup returns
//     home afterwards, so the "r threads attend this queue" assumption the
//     timeout is derived from stays true instead of drifting.
//   - The CAS-claimed turn counter resolves sibling wake-up collisions on a
//     policy-owned cache line before the queue's trylock is touched: a
//     member whose claim fails has proof a sibling is already on the queue
//     this turn and goes straight to the backup path.
//
// The work-stealing variant changes only backup selection: instead of the
// Sec. IV-E uniform random pick it ranks sibling queues by observed
// occupancy and re-targets the busiest one, so backup capacity flows where
// service turns are being missed. With a telemetry bus attached the signal
// is the *live* queue occupancy (nic occupancy in the sim, ring Len in the
// live runtime), which reacts within one vacation; without a bus it falls
// back to the eq. (11) rho EWMA. Exact ties are broken uniformly at
// random, which makes the cold start degenerate to the uniform pick.
//
// The group layout (home queues, member ranks, group sizes) lives behind
// one atomic pointer, so the elastic control plane can swap in a new
// r = M/N partition mid-run (Resizable) while live goroutines keep reading
// a consistent layout.
type RMetronome struct {
	base
	steal  bool
	layout atomic.Pointer[rmLayout]
	turns  []atomic.Uint64
	// bmean is a per-queue EWMA of observed busy periods — the rotation
	// clock the de-phasing law predicts releases with. Measured busy
	// periods beat eq. (3)'s B̂ = V̄·rho/(1-rho) here because the latter
	// assumes vacations already sit at target, which is exactly what is
	// not yet true for a member that just lost its slot.
	bmean []atomicF64
}

// rmLayout is one immutable r = M/N partition of the team.
type rmLayout struct {
	home []int // home[thread] = the thread's home queue (thread % N)
	rank []int // rank[thread] = the thread's position inside its group
	size []int // size[q] = r_q, members of queue q's service group
}

// buildLayout partitions m threads over n queues round-robin — the
// balanced layout SetTeamSize keeps publishing.
func buildLayout(m, n int) *rmLayout {
	if m < 1 {
		m = 1
	}
	return buildPlacedLayout(BalancedPlacement(m, n))
}

// buildPlacedLayout realises an arbitrary per-queue assignment: thread ids
// are dealt round-robin across the queues, skipping any queue whose group
// is already full, so a balanced sizes vector reproduces the legacy
// thread i -> queue i % n layout bit-for-bit and every layout is a pure
// function of the sizes vector (the sim twin and the live runtime derive
// identical homes from identical plans).
func buildPlacedLayout(sizes []int) *rmLayout {
	n := len(sizes)
	m := 0
	for _, s := range sizes {
		if s > 0 {
			m += s
		}
	}
	l := &rmLayout{
		home: make([]int, m),
		rank: make([]int, m),
		size: make([]int, n),
	}
	q := 0
	for i := 0; i < m; i++ {
		for l.size[q] >= sizes[q] {
			q = (q + 1) % n
		}
		l.home[i] = q
		l.rank[i] = l.size[q]
		l.size[q]++
		q = (q + 1) % n
	}
	return l
}

// NewRMetronome builds the shared-queue policy; steal selects the
// work-stealing backup discipline.
func NewRMetronome(cfg Config, steal bool) *RMetronome {
	p := &RMetronome{steal: steal}
	p.base.init(cfg)
	l := buildLayout(p.cfg.M, p.cfg.N)
	p.layout.Store(l)
	p.turns = make([]atomic.Uint64, p.cfg.N)
	p.bmean = make([]atomicF64, p.cfg.N)
	for q := range p.ts {
		p.ts[q].Store(p.evaluate(l, q, 0))
	}
	return p
}

// Name implements Policy.
func (p *RMetronome) Name() string {
	if p.steal {
		return NameWorkSteal
	}
	return NameRMetronome
}

// evaluate is eq. (13) for queue q's service group: r_q members each sleep
// this member timeout so the group holds the queue's mean vacation at VBar.
// A queue left without members (M < N) falls back to a single attendant.
func (p *RMetronome) evaluate(l *rmLayout, q int, rho float64) float64 {
	r := l.size[q]
	if r < 1 {
		r = 1
	}
	return model.TSForTarget(p.cfg.VBar, rho, r)
}

// ObserveCycle implements Policy.
func (p *RMetronome) ObserveCycle(q int, busy, vacation float64) float64 {
	ts := p.evaluate(p.layout.Load(), q, p.est.Observe(q, busy, vacation))
	p.ts[q].Store(ts)
	if p.cfg.Dephase {
		alpha := p.est.Alpha()
		p.bmean[q].Store((1-alpha)*p.bmean[q].Load() + alpha*busy)
	}
	return ts
}

// SetTeamSize implements Resizable as the degenerate balanced plan: swap
// in the r = M/N partition for the new team and republish every queue's
// eq. (13) member timeout at the current load estimate, so groups adopt
// their new size within one atomic pointer swap instead of one cycle per
// queue. Turn counters are per-queue (N is fixed) and survive the resize,
// keeping the rotation history.
func (p *RMetronome) SetTeamSize(m int) {
	p.base.SetTeamSize(m)
	p.publishLayout(buildLayout(p.TeamSize(), p.cfg.N))
}

// SetPlacement implements Rebalancer: adopt an arbitrary per-queue group
// assignment (entries clamped to >= 1) in one atomic layout swap. Each
// group's eq. (13) member timeout republishes at its *new* integer size
// immediately — a queue that just gained members starts holding the
// vacation target with all of them, not one cycle later. Per-queue state
// that outlives a layout — the CAS service-turn counters and the busy-
// period EWMAs the de-phasing law predicts with — is untouched, so members
// re-home without dropping claimed turns or rotation history.
func (p *RMetronome) SetPlacement(sizes []int) {
	norm, total := NormalizePlacement(sizes, p.cfg.N)
	p.base.SetTeamSize(total)
	p.publishLayout(buildPlacedLayout(norm))
}

// Placement implements Rebalancer.
func (p *RMetronome) Placement() []int {
	return append([]int(nil), p.layout.Load().size...)
}

// publishLayout swaps the layout in and republishes every queue's member
// timeout at the current load estimate.
func (p *RMetronome) publishLayout(l *rmLayout) {
	p.layout.Store(l)
	for q := range p.ts {
		p.ts[q].Store(p.evaluate(l, q, p.est.Rho(q)))
	}
}

// TL implements Policy: a group member that loses a race backs off one
// full rotation of queue q's service group — r_q member timeouts — not the
// configured long backup timeout. The paper's TL >> TS parks *redundant*
// threads (its single-queue team is M=3 over one queue, so at most one
// thread is ever needed); an eq. (13) group of r members is exactly
// provisioned — every member is a needed attendant — and exiling one for
// hundreds of microseconds leaves its home queue under-attended (both
// members of an r=2 group can end up exiled at once, abandoning the queue
// outright and overflowing even a 4096-descriptor ring). One rotation is
// the natural re-probe period: the sibling that won the race will have
// served and re-armed by then, and a visiting backup samples the foreign
// queue once per rotation instead of racing its whole group every turn.
func (p *RMetronome) TL(q int) float64 {
	r := p.layout.Load().size[q]
	if r < 1 {
		r = 1
	}
	return float64(r) * p.TS(q)
}

// HomeQueue implements GroupPolicy.
func (p *RMetronome) HomeQueue(thread int) int {
	l := p.layout.Load()
	return l.home[thread%len(l.home)]
}

// GroupSize implements GroupPolicy.
func (p *RMetronome) GroupSize(q int) int { return p.layout.Load().size[q] }

// ClaimTurn implements GroupPolicy: one CAS on queue q's turn counter. In
// the live runtime the claim is the admission filter ahead of the queue
// trylock — a failed CAS proves a sibling claimed a turn concurrently. The
// sequential sim twin can never lose the CAS; there the counter is pure
// turn accounting.
func (p *RMetronome) ClaimTurn(q int) bool {
	t := p.turns[q].Load()
	return p.turns[q].CompareAndSwap(t, t+1)
}

// Turns implements GroupPolicy.
func (p *RMetronome) Turns(q int) uint64 { return p.turns[q].Load() }

// Dephase implements Dephaser: turn-aware wake de-phasing of *colliding*
// group members. The 20-50% busy-try rate the shared-queue family pays at
// load is not phase clustering alone: a wake drawn anywhere in the cycle
// lands inside the sibling's ongoing service period with probability ~rho,
// so jittering the release-path TS sleeps buys nothing (measured: ±0.5 pp)
// — and re-scheduling them against a predicted rotation loses the
// vacation target, because timer-only prediction error compounds over the
// d-turn horizon while the winner's eq. (13) feedback loop is what holds
// V̄ in the first place. What does work is re-phasing exactly the members
// the rotation has proven out of phase: a lost race at service-dominated
// load (rho >= 0.45). Such a member woke inside a service the turn
// counter T has already claimed; instead of backing off a blind full
// rotation r·TS it re-enters on the rotation clock,
//
//	B̄/2 + V̄ + d·(V̄ + B̄),   d = (rank - T) mod r,
//
// riding out the in-progress service's expected residual (B̄ is an EWMA
// of observed busy periods), then waiting its rotation distance d so it
// wakes one vacation target after its predecessor's predicted release.
// Winners keep sleeping the eq. (13) timeout, so the V̄ feedback loop is
// untouched. Measured on the fig13-15 panels: busy tries drop several
// points at rho >= 0.5 (up to ~8 pp at 30 Mpps over 2 queues) and
// realized vacations track the target *better*, because a re-phased
// backup stops missing its service slot.
func (p *RMetronome) Dephase(thread, q int, ts float64, backup bool) float64 {
	if !p.cfg.Dephase {
		return ts
	}
	l := p.layout.Load()
	if l.home[thread%len(l.home)] != q {
		return ts // foreign sleep: rank is meaningless off the home queue
	}
	r := l.size[q]
	if r <= 1 {
		return ts
	}
	if !backup {
		return ts
	}
	// The stagger pays when rotations are service-dominated: below
	// rho ~0.45 the stock one-rotation backoff (r·TS) already lands in a
	// vacancy, and scheduling against a mostly-idle rotation only adds
	// prediction noise.
	if p.est.Rho(q) < 0.45 {
		return ts
	}
	k := l.rank[thread%len(l.rank)]
	d := (k - int(p.turns[q].Load()%uint64(r)) + r) % r
	bhat := p.bmean[q].Load()
	sleep := p.cfg.VBar + bhat/2 + float64(d)*(p.cfg.VBar+bhat)
	// Clamp to the eq. (13) envelope — anchored at the *member* timeout,
	// not the ts argument (on this path ts is the rotation backoff r·TS):
	// no poll-storm below a quarter member timeout, no abandonment beyond
	// two rotations.
	mts := p.TS(q)
	if min := 0.25 * mts; sleep < min {
		sleep = min
	}
	if max := 2 * float64(r) * mts; sleep > max {
		sleep = max
	}
	return sleep
}

// PickBackupQueue implements Policy. The uniform variant keeps the base
// Sec. IV-E behaviour; the work-stealing variant scans sibling queues for
// the highest observed occupancy — live telemetry when a bus is attached,
// the rho EWMA otherwise.
func (p *RMetronome) PickBackupQueue(cur int, rng Rand) int {
	if !p.steal || p.cfg.N <= 1 || p.cfg.BackupSticky {
		return p.base.PickBackupQueue(cur, rng)
	}
	best, bestScore, ties := cur, math.Inf(-1), 0
	for q := 0; q < p.cfg.N; q++ {
		if q == cur {
			continue
		}
		score := p.occupancyScore(q)
		switch {
		case score > bestScore:
			best, bestScore, ties = q, score, 1
		case score == bestScore:
			// Reservoir over exact ties: uniform among the tied maxima.
			ties++
			if rng.Intn(ties) == 0 {
				best = q
			}
		}
	}
	return best
}

// occupancyScore ranks queue q for stealing: published live occupancy when
// the telemetry bus is attached (reacts within a vacation), the rho EWMA
// otherwise (reacts within the EWMA horizon). The bus path tie-breaks
// equal occupancies by rho so a drained-but-loaded queue still outranks an
// idle one.
func (p *RMetronome) occupancyScore(q int) float64 {
	if p.cfg.Bus == nil {
		return p.est.Rho(q)
	}
	return p.cfg.Bus.Occupancy(q) + p.est.Rho(q)*1e-3
}
