package sched

import (
	"math"
	"sync/atomic"

	"metronome/internal/model"
)

// NameRMetronome selects the shared-queue service-group discipline with
// uniform backup re-targeting.
const NameRMetronome = "rmetronome"

// NameWorkSteal selects the shared-queue discipline with work-stealing
// backup selection: a lost-race thread scans sibling queues by observed
// occupancy instead of picking uniformly at random.
const NameWorkSteal = "worksteal"

func init() {
	Register(NameRMetronome, func(cfg Config) Policy { return NewRMetronome(cfg, false) })
	Register(NameWorkSteal, func(cfg Config) Policy { return NewRMetronome(cfg, true) })
}

// RMetronome is the shared-queue r-Metronome discipline behind the paper's
// multi-queue evaluation (Sec. V, fig. 13-15): the M threads are
// partitioned into stable per-queue service groups of r = M/N members
// (remainder spread round-robin), and each queue carries a monotonic
// service-turn counter its members CAS-claim before contending the queue.
//
// Two things distinguish it from the plain adaptive discipline over N
// queues:
//
//   - Timeouts come from eq. (13) with the *integer* group size r_q rather
//     than eq. (14)'s real-valued average M/N, and the group actually holds
//     that size: a member that serves a foreign queue as backup returns
//     home afterwards, so the "r threads attend this queue" assumption the
//     timeout is derived from stays true instead of drifting.
//   - The CAS-claimed turn counter resolves sibling wake-up collisions on a
//     policy-owned cache line before the queue's trylock is touched: a
//     member whose claim fails has proof a sibling is already on the queue
//     this turn and goes straight to the backup path.
//
// The work-stealing variant changes only backup selection: instead of the
// Sec. IV-E uniform random pick it ranks sibling queues by the policy's own
// observed-occupancy signal (the eq. (11) rho EWMA) and re-targets the
// busiest one, so backup capacity flows where service turns are being
// missed. Exact rho ties are broken uniformly at random, which makes the
// cold start (all rho zero) degenerate to the uniform pick.
type RMetronome struct {
	base
	steal bool
	home  []int // home[thread] = the thread's home queue (thread % N)
	size  []int // size[q] = r_q, members of queue q's service group
	turns []atomic.Uint64
}

// NewRMetronome builds the shared-queue policy; steal selects the
// work-stealing backup discipline.
func NewRMetronome(cfg Config, steal bool) *RMetronome {
	p := &RMetronome{
		base:  newBase(cfg),
		steal: steal,
	}
	p.home = make([]int, p.cfg.M)
	p.size = make([]int, p.cfg.N)
	for i := 0; i < p.cfg.M; i++ {
		q := i % p.cfg.N
		p.home[i] = q
		p.size[q]++
	}
	p.turns = make([]atomic.Uint64, p.cfg.N)
	for q := range p.ts {
		p.ts[q].Store(p.evaluate(q, 0))
	}
	return p
}

// Name implements Policy.
func (p *RMetronome) Name() string {
	if p.steal {
		return NameWorkSteal
	}
	return NameRMetronome
}

// evaluate is eq. (13) for queue q's service group: r_q members each sleep
// this member timeout so the group holds the queue's mean vacation at VBar.
// A queue left without members (M < N) falls back to a single attendant.
func (p *RMetronome) evaluate(q int, rho float64) float64 {
	r := p.size[q]
	if r < 1 {
		r = 1
	}
	return model.TSForTarget(p.cfg.VBar, rho, r)
}

// ObserveCycle implements Policy.
func (p *RMetronome) ObserveCycle(q int, busy, vacation float64) float64 {
	ts := p.evaluate(q, p.est.Observe(q, busy, vacation))
	p.ts[q].Store(ts)
	return ts
}

// TL implements Policy: a group member that loses a race backs off one
// full rotation of queue q's service group — r_q member timeouts — not the
// configured long backup timeout. The paper's TL >> TS parks *redundant*
// threads (its single-queue team is M=3 over one queue, so at most one
// thread is ever needed); an eq. (13) group of r members is exactly
// provisioned — every member is a needed attendant — and exiling one for
// hundreds of microseconds leaves its home queue under-attended (both
// members of an r=2 group can end up exiled at once, abandoning the queue
// outright and overflowing even a 4096-descriptor ring). One rotation is
// the natural re-probe period: the sibling that won the race will have
// served and re-armed by then, and a visiting backup samples the foreign
// queue once per rotation instead of racing its whole group every turn.
func (p *RMetronome) TL(q int) float64 {
	r := p.size[q]
	if r < 1 {
		r = 1
	}
	return float64(r) * p.TS(q)
}

// HomeQueue implements GroupPolicy.
func (p *RMetronome) HomeQueue(thread int) int {
	return p.home[thread%len(p.home)]
}

// GroupSize implements GroupPolicy.
func (p *RMetronome) GroupSize(q int) int { return p.size[q] }

// ClaimTurn implements GroupPolicy: one CAS on queue q's turn counter. In
// the live runtime the claim is the admission filter ahead of the queue
// trylock — a failed CAS proves a sibling claimed a turn concurrently. The
// sequential sim twin can never lose the CAS; there the counter is pure
// turn accounting.
func (p *RMetronome) ClaimTurn(q int) bool {
	t := p.turns[q].Load()
	return p.turns[q].CompareAndSwap(t, t+1)
}

// Turns implements GroupPolicy.
func (p *RMetronome) Turns(q int) uint64 { return p.turns[q].Load() }

// PickBackupQueue implements Policy. The uniform variant keeps the base
// Sec. IV-E behaviour; the work-stealing variant scans sibling queues for
// the highest observed occupancy.
func (p *RMetronome) PickBackupQueue(cur int, rng Rand) int {
	if !p.steal || p.cfg.N <= 1 || p.cfg.BackupSticky {
		return p.base.PickBackupQueue(cur, rng)
	}
	best, bestRho, ties := cur, math.Inf(-1), 0
	for q := 0; q < p.cfg.N; q++ {
		if q == cur {
			continue
		}
		rho := p.est.Rho(q)
		switch {
		case rho > bestRho:
			best, bestRho, ties = q, rho, 1
		case rho == bestRho:
			// Reservoir over exact ties: uniform among the tied maxima.
			ties++
			if rng.Intn(ties) == 0 {
				best = q
			}
		}
	}
	return best
}
