package elastic

import (
	"testing"

	"metronome/internal/telemetry"
)

// fakeHomed is a placement-capable team that also maps threads to homes:
// the full substrate surface the health layer exiles through.
type fakeHomed struct {
	fakeActuator
	homes map[int]int
}

func (f *fakeHomed) ThreadHome(id int) int {
	if h, ok := f.homes[id]; ok {
		return h
	}
	return id % 2
}

func newHealthRig(minThreads, budget int, mut func(*Config)) (*telemetry.Bus, *fakeHomed, *Controller) {
	bus := telemetry.NewBus(2, budget)
	bus.SetCapacity(0, 4096)
	bus.SetCapacity(1, 4096)
	team := &fakeHomed{fakeActuator: fakeActuator{fakeTeam: fakeTeam{size: minThreads, floor: 2}}}
	cfg := DefaultConfig(minThreads, budget)
	cfg.Placement = true
	cfg.Health = true
	if mut != nil {
		mut(&cfg)
	}
	return bus, team, New(bus, team, cfg)
}

// beat advances every active member's heartbeat and both queues' publish
// sequences — a healthy tick's worth of bus traffic.
func beat(bus *telemetry.Bus, team int, now float64) {
	for i := 0; i < team; i++ {
		bus.SetHeartbeat(i, now)
	}
	bus.BumpPub(0)
	bus.BumpPub(1)
}

// Satellite: Tick rejects non-monotonic and duplicate timestamps — the PI
// state must not fold a zero-or-negative window.
func TestTickRejectsNonMonotonicNow(t *testing.T) {
	bus, team, c := newRig(2, 8)
	c.Tick(0)
	bus.SetOccupancy(1, 0.4*4096)
	d1 := c.Tick(0.001)
	if d1.Applied <= 2 {
		t.Fatalf("setup failed to grow: %+v", d1)
	}
	sizeAfter := team.size
	resizes := len(team.resizes)
	// Same timestamp again, then a timestamp in the past: both must be
	// no-ops returning the recorded decision.
	for _, now := range []float64{0.001, 0.0005, 0} {
		d := c.Tick(now)
		if d.At != d1.At || d.Applied != d1.Applied {
			t.Fatalf("tick at %v not rejected: %+v", now, d)
		}
	}
	if team.size != sizeAfter || len(team.resizes) != resizes {
		t.Fatalf("rejected ticks actuated: size %d, resizes %v", team.size, team.resizes)
	}
}

func TestStaleQueueDetected(t *testing.T) {
	bus, _, c := newHealthRig(4, 8, nil)
	c.Tick(0)
	now := 0.0
	var d Decision
	for i := 0; i < 12; i++ {
		// Queue 0 publishes every tick; queue 1 went quiet at the start.
		for id := 0; id < 4; id++ {
			bus.SetHeartbeat(id, now+1)
		}
		bus.BumpPub(0)
		now += 0.001
		d = c.Tick(now)
	}
	if d.StaleMask != 1<<1 {
		t.Fatalf("stale mask %b, want queue 1 only", d.StaleMask)
	}
	if d.SafeMode {
		t.Fatal("one stale queue must not trip safe mode")
	}
	if rep := c.Report(now); rep.StaleQueueTicks == 0 {
		t.Fatal("stale queue ticks not accounted")
	}
}

// A fully dark bus drives the controller to the SafeTeam static size
// (grow-only), and fresh publishes bring it back to closed-loop control.
func TestSafeModeHoldsSafeTeam(t *testing.T) {
	bus, team, c := newHealthRig(3, 8, func(cfg *Config) { cfg.SafeTeam = 6 })
	c.Tick(0)
	now := 0.0
	var d Decision
	for i := 0; i < 12; i++ { // nothing publishes: the bus is dark
		now += 0.001
		d = c.Tick(now)
	}
	if !d.SafeMode {
		t.Fatalf("dark bus never tripped safe mode: %+v", d)
	}
	if team.size != 6 {
		t.Fatalf("safe mode sized team to %d, want SafeTeam 6", team.size)
	}
	if rep := c.Report(now); rep.SafeTicks == 0 {
		t.Fatal("safe ticks not accounted")
	}
	// Recovery: the bus publishes again; safe mode must clear.
	for i := 0; i < 4; i++ {
		beat(bus, team.size, now+1)
		now += 0.001
		d = c.Tick(now)
	}
	if d.SafeMode {
		t.Fatal("safe mode held after the bus recovered")
	}
}

// Safe mode never shrinks: a team already above SafeTeam holds its size.
func TestSafeModeIsGrowOnly(t *testing.T) {
	bus, team, c := newHealthRig(3, 8, func(cfg *Config) { cfg.SafeTeam = 4 })
	c.Tick(0)
	// Grow to 7 on real signal first.
	now := 0.0
	for i := 0; i < 10; i++ {
		bus.SetOccupancy(1, 0.6*4096)
		beat(bus, team.size, now+1)
		now += 0.001
		c.Tick(now)
	}
	if team.size <= 4 {
		t.Fatalf("setup failed to grow past SafeTeam: %d", team.size)
	}
	grown := team.size
	for i := 0; i < 12; i++ { // bus goes dark
		now += 0.001
		c.Tick(now)
	}
	if team.size != grown {
		t.Fatalf("safe mode moved the team %d -> %d (SafeTeam 4)", grown, team.size)
	}
}

// A member whose heartbeat freezes past the liveness bound is exiled: its
// home queue gains one reinforcing member through a corrective plan, and
// recovery clears the latch.
func TestStragglerExiledAndRecovered(t *testing.T) {
	bus, team, c := newHealthRig(4, 8, nil)
	c.Tick(0)
	now := 0.0
	tickHealthy := func(except int) Decision {
		for id := 0; id < team.size; id++ {
			if id != except {
				bus.SetHeartbeat(id, now+1)
			}
		}
		bus.BumpPub(0)
		bus.BumpPub(1)
		now += 0.001
		return c.Tick(now)
	}
	for i := 0; i < 4; i++ {
		tickHealthy(-1) // warm heartbeats so every member has beaten
	}
	sizeBefore := team.size
	homeQ := team.ThreadHome(1)
	planBefore := append([]int(nil), team.Placement()...)
	var exiled bool
	for i := 0; i < 20 && !exiled; i++ {
		d := tickHealthy(1) // thread 1 stalls
		exiled = len(d.Exiled) == 1 && d.Exiled[0] == 1
	}
	if !exiled {
		t.Fatal("frozen heartbeat never exiled the member")
	}
	if team.size != sizeBefore+1 {
		t.Fatalf("exile sized team %d -> %d, want +1", sizeBefore, team.size)
	}
	if team.plan[homeQ] != planBefore[homeQ]+1 {
		t.Fatalf("corrective plan %v did not reinforce home %d of %v", team.plan, homeQ, planBefore)
	}
	if rep := c.Report(now); rep.Exiles != 1 {
		t.Fatalf("report exiles = %d, want 1", rep.Exiles)
	}
	// No re-exile while the latch holds.
	for i := 0; i < 20; i++ {
		if d := tickHealthy(1); len(d.Exiled) != 0 {
			t.Fatalf("latched straggler exiled again: %+v", d)
		}
	}
	// Recovery: the heartbeat moves, the latch clears.
	var recovered bool
	for i := 0; i < 4 && !recovered; i++ {
		d := tickHealthy(-1)
		for _, id := range d.Recovered {
			recovered = recovered || id == 1
		}
	}
	if !recovered {
		t.Fatal("moving heartbeat never cleared the exile latch")
	}
}

// Without a placement-capable substrate the exile degrades to a scalar grow.
func TestExileScalarFallback(t *testing.T) {
	bus := telemetry.NewBus(2, 8)
	bus.SetCapacity(0, 4096)
	bus.SetCapacity(1, 4096)
	team := &fakeTeam{size: 4, floor: 2}
	cfg := DefaultConfig(4, 8)
	cfg.Health = true
	c := New(bus, team, cfg)
	c.Tick(0)
	now := 0.0
	for i := 0; i < 20 && team.size == 4; i++ {
		for id := 0; id < 4; id++ {
			if id != 2 {
				bus.SetHeartbeat(id, now+1)
			}
		}
		if i < 4 {
			bus.SetHeartbeat(2, now+1) // beat a few times before stalling
		}
		bus.BumpPub(0)
		bus.BumpPub(1)
		now += 0.001
		c.Tick(now)
	}
	if team.size != 5 {
		t.Fatalf("scalar exile fallback sized team to %d, want 5", team.size)
	}
}

// Dark-queue loss (drops rising while the ring reads empty) must not feed
// the loss override — growing cannot serve a blacked-out queue.
func TestDarkLossExcludedFromOverride(t *testing.T) {
	bus, team, c := newHealthRig(4, 8, nil)
	c.Tick(0)
	now := 0.0
	drops := uint64(0)
	var d Decision
	for i := 0; i < 20; i++ {
		drops += 1000
		bus.SetDrops(0, drops) // queue 0 overflows while reading empty
		beat(bus, team.size, now+1)
		now += 0.001
		d = c.Tick(now)
		if d.LossDelta != 0 {
			t.Fatalf("dark loss leaked into the override: %+v", d)
		}
	}
	if d.DarkLoss == 0 {
		t.Fatal("dark loss never classified")
	}
	if team.size != 4 {
		t.Fatalf("controller grew to %d chasing a dark queue", team.size)
	}
}

// panicTeam panics on its first resize — the watchdog must swallow it.
type panicTeam struct {
	fakeTeam
	armed bool
}

func (p *panicTeam) SetTeamSize(m int) int {
	if p.armed {
		p.armed = false
		panic("injected actuation fault")
	}
	return p.fakeTeam.SetTeamSize(m)
}

func TestWatchdogRecoversTickPanic(t *testing.T) {
	bus := telemetry.NewBus(2, 8)
	bus.SetCapacity(0, 4096)
	bus.SetCapacity(1, 4096)
	team := &panicTeam{fakeTeam: fakeTeam{size: 2, floor: 2}}
	cfg := DefaultConfig(2, 8)
	cfg.Health = true
	c := New(bus, team, cfg)
	c.Tick(0)
	good := c.Tick(0.001)
	team.armed = true
	bus.SetOccupancy(1, 0.5*4096) // forces a grow, which panics
	bus.BumpPub(0)
	bus.BumpPub(1)
	d := c.Tick(0.002)
	if d.At != good.At || d.Applied != good.Applied {
		t.Fatalf("watchdog did not return the last good decision: %+v", d)
	}
	if rep := c.Report(0.002); rep.Panics != 1 {
		t.Fatalf("panics = %d, want 1", rep.Panics)
	}
	// The disarmed team actuates normally on the next tick.
	bus.BumpPub(0)
	bus.BumpPub(1)
	if d := c.Tick(0.003); d.Applied <= 2 {
		t.Fatalf("controller did not recover after the panic: %+v", d)
	}
}

// The token bucket bounds applied actuations when the bus whipsaws.
func TestActuationRateLimit(t *testing.T) {
	bus, team, c := newHealthRig(2, 8, func(cfg *Config) {
		cfg.MaxActuationsPerSec = 100 // 0.1 tokens per 1 ms tick
		cfg.Cooldown = 0.001          // let shrinks through: the bucket is the limiter
	})
	c.Tick(0)
	now := 0.0
	actuations := 0
	prev := team.size
	for i := 0; i < 100; i++ {
		// Whipsaw: alternate a full ring and an empty one every tick.
		if i%2 == 0 {
			bus.SetOccupancy(0, 0.9*4096)
		} else {
			bus.SetOccupancy(0, 0)
		}
		beat(bus, team.size, now+1)
		now += 0.001
		d := c.Tick(now)
		if d.Applied != prev {
			actuations++
			prev = d.Applied
		}
	}
	// 100 ms at 100/s refills 10 tokens, plus the 2-token cold bucket.
	if actuations > 12 {
		t.Fatalf("%d actuations in 100 ms against a 100/s limit", actuations)
	}
	if actuations == 0 {
		t.Fatal("rate limit blocked everything")
	}
}
