// Package elastic is the feedback control plane above Metronome's
// per-thread adaptivity: where the sleep&wake policy engine tunes each
// thread's timeout TS to the load, this controller tunes the *team size M*
// to the workload's shape. It samples the lock-free telemetry bus
// (internal/telemetry) every control period and grows or shrinks the
// thread team through the Team interface, which both execution substrates
// implement — the discrete-event twin re-sizes through engine events, the
// live runtime spawns and parks goroutines.
//
// The law is a PI controller on wake-time ring occupancy with a loss
// override: occupancy relative to ring capacity is the fast signal (it
// spikes within one vacation when a flash crowd lands, long before the rho
// EWMA converges), sustained loss feeds the integral term, and a deadband
// plus cooldown keep the team from flapping on noise. A hard Budget caps
// the team so provisioned CPU can never exceed the configured core budget.
//
// The controller is substrate-agnostic and clockless: callers invoke
// Tick(now) on their own cadence — an engine Ticker in the sim (which
// keeps elastic runs deterministic at any experiment-harness parallelism),
// a wall-clock ticker via Run in a live deployment.
package elastic

import (
	"context"
	"math"
	"time"

	"metronome/internal/telemetry"
)

// Team is a resizable retrieval-thread team; core.Runtime and
// runtime.Runner both implement it.
type Team interface {
	// TeamSize returns the current team size.
	TeamSize() int
	// SetTeamSize requests a new team size and returns the applied one
	// (substrates clamp to at least one thread per queue).
	SetTeamSize(m int) int
}

// Config tunes the control plane. The zero value is unusable; start from
// DefaultConfig.
type Config struct {
	// Period is the control period in seconds (default 1 ms): how often
	// the bus is sampled and a resize considered.
	Period float64
	// MinThreads is the floor the team may shrink to (default: the
	// substrate's queue count, via the Team clamp).
	MinThreads int
	// Budget is the hard ceiling on the team — the core budget this
	// deployment may provision. CPU can never exceed Budget cores.
	Budget int
	// TargetOccupancy is the wake-time ring occupancy the PI holds, as a
	// fraction of ring capacity (default 0.10). Occupancy above it is
	// grow pressure; occupancy below it unwinds the integral and shrinks.
	TargetOccupancy float64
	// LossGain is the error added while the last window dropped packets
	// (default 3): loss is the unambiguous under-provisioning signal, so
	// it dominates the occupancy term until it stops.
	LossGain float64
	// Kp and Ki are the proportional and integral gains in threads per
	// unit error (defaults 1 and 0.5). Errors are normalised:
	// (occ - target)/target, so error 1 means double the target.
	Kp, Ki float64
	// Hysteresis widens the resize deadband in threads (default 0.25): a
	// resize applies only when the PI output departs the current size by
	// more than 0.5+Hysteresis, so the rounding boundary cannot chatter.
	Hysteresis float64
	// Cooldown is the minimum time between applied *shrinks* in seconds
	// (default 16 periods). Growth is never throttled: under-provisioning
	// loses packets, over-provisioning only burns budget.
	Cooldown float64
}

// DefaultConfig returns the tuning the fig-elastic experiment ships:
// budget cores, a 1 ms control period and the PI gains calibrated there.
func DefaultConfig(minThreads, budget int) Config {
	return Config{
		Period:          1e-3,
		MinThreads:      minThreads,
		Budget:          budget,
		TargetOccupancy: 0.10,
		LossGain:        3,
		Kp:              1,
		Ki:              0.5,
		Hysteresis:      0.25,
	}
}

func (c Config) normalized() Config {
	if c.Period <= 0 {
		c.Period = 1e-3
	}
	if c.MinThreads < 1 {
		c.MinThreads = 1
	}
	if c.Budget < c.MinThreads {
		c.Budget = c.MinThreads
	}
	if c.TargetOccupancy <= 0 {
		c.TargetOccupancy = 0.10
	}
	if c.LossGain < 0 {
		c.LossGain = 0
	}
	if c.Kp <= 0 {
		c.Kp = 1
	}
	if c.Ki <= 0 {
		c.Ki = 0.5
	}
	if c.Hysteresis < 0 {
		c.Hysteresis = 0
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 16 * c.Period
	}
	return c
}

// Decision records one control tick for observability.
type Decision struct {
	At        float64 // tick time
	Occupancy float64 // worst-queue occupancy fraction sampled
	LossDelta uint64  // packets dropped since the previous tick
	Err       float64 // combined PI error
	Raw       float64 // un-rounded PI output in threads
	Want      int     // rounded, clamped target
	Applied   int     // team size after the tick
	Resized   bool    // whether a resize was applied
}

// Controller drives one Team from one Bus.
type Controller struct {
	cfg  Config
	bus  *telemetry.Bus
	team Team

	integ      float64 // integral state, in threads above MinThreads
	lastTick   float64
	lastShrink float64
	started    bool

	snap      telemetry.Snapshot
	prevDrops []uint64
	prevRx    []uint64

	// Window stats backing Report.
	statsFrom     float64
	threadSeconds float64
	resizes       int
	minSeen       int
	maxSeen       int
	last          Decision
}

// New builds a controller over bus and team. The team is immediately
// clamped into [MinThreads, Budget] so a mis-sized initial deployment
// starts inside the envelope.
func New(bus *telemetry.Bus, team Team, cfg Config) *Controller {
	c := &Controller{
		cfg:  cfg.normalized(),
		bus:  bus,
		team: team,
	}
	m := team.TeamSize()
	if m < c.cfg.MinThreads {
		m = team.SetTeamSize(c.cfg.MinThreads)
	}
	if m > c.cfg.Budget {
		m = team.SetTeamSize(c.cfg.Budget)
	}
	c.integ = float64(m - c.cfg.MinThreads)
	c.minSeen, c.maxSeen = m, m
	c.prevDrops = make([]uint64, bus.Queues())
	c.prevRx = make([]uint64, bus.Queues())
	return c
}

// Config returns the normalised configuration in effect.
func (c *Controller) Config() Config { return c.cfg }

// Tick runs one control period ending at now: sample the bus, update the
// PI state, and resize the team when the output leaves the deadband.
func (c *Controller) Tick(now float64) Decision {
	cur := c.team.TeamSize()
	if !c.started {
		c.started = true
		c.lastTick, c.statsFrom = now, now
		// Counter baselines: the first tick only calibrates deltas.
		c.bus.Sample(&c.snap)
		copy(c.prevDrops, c.snap.Drops)
		copy(c.prevRx, c.snap.Rx)
		c.last = Decision{At: now, Want: cur, Applied: cur}
		return c.last
	}
	c.threadSeconds += float64(cur) * (now - c.lastTick)
	c.lastTick = now

	c.bus.Sample(&c.snap)
	occ := 0.0
	for q := 0; q < c.bus.Queues(); q++ {
		if cp := c.snap.Cap[q]; cp > 0 {
			if f := c.snap.Occ[q] / cp; f > occ {
				occ = f
			}
		}
	}
	var lossDelta uint64
	for q := 0; q < c.bus.Queues(); q++ {
		if d := c.snap.Drops[q]; d >= c.prevDrops[q] {
			lossDelta += d - c.prevDrops[q]
		}
		// A counter that moved backwards was reset (warm-up window
		// alignment); resync silently.
		c.prevDrops[q] = c.snap.Drops[q]
		c.prevRx[q] = c.snap.Rx[q]
	}

	e := (occ - c.cfg.TargetOccupancy) / c.cfg.TargetOccupancy
	if lossDelta > 0 {
		e += c.cfg.LossGain
	}
	c.integ += c.cfg.Ki * e
	c.integ = clamp(c.integ, 0, float64(c.cfg.Budget-c.cfg.MinThreads))
	raw := float64(c.cfg.MinThreads) + c.cfg.Kp*e + c.integ
	want := int(math.Round(clamp(raw, float64(c.cfg.MinThreads), float64(c.cfg.Budget))))

	d := Decision{
		At: now, Occupancy: occ, LossDelta: lossDelta,
		Err: e, Raw: raw, Want: want, Applied: cur,
	}
	switch {
	case want > cur && raw > float64(cur)+0.5+c.cfg.Hysteresis:
		d.Applied = c.team.SetTeamSize(want)
		d.Resized = d.Applied != cur
	case want < cur && raw < float64(cur)-0.5-c.cfg.Hysteresis &&
		now-c.lastShrink >= c.cfg.Cooldown:
		d.Applied = c.team.SetTeamSize(want)
		d.Resized = d.Applied != cur
		if d.Resized {
			c.lastShrink = now
		}
	}
	if d.Resized {
		c.resizes++
		// Keep the integral consistent with what was actually applied so
		// the deadband is measured from the live size, not a phantom one.
		c.integ = clamp(float64(d.Applied-c.cfg.MinThreads), 0,
			float64(c.cfg.Budget-c.cfg.MinThreads))
	}
	if d.Applied < c.minSeen {
		c.minSeen = d.Applied
	}
	if d.Applied > c.maxSeen {
		c.maxSeen = d.Applied
	}
	c.last = d
	return d
}

// Report summarises the controller's window since construction or the last
// ResetStats.
type Report struct {
	// ThreadSeconds is ∫M(t)dt over the window: the provisioning cost the
	// controller is minimising against loss.
	ThreadSeconds float64
	// MeanThreads is ThreadSeconds normalised by the window length.
	MeanThreads float64
	// Resizes counts applied team changes.
	Resizes int
	// MinThreads and MaxThreads are the extreme applied sizes seen.
	MinThreads, MaxThreads int
	// Final is the team size at report time.
	Final int
}

// Report closes the accounting window at now and summarises it.
func (c *Controller) Report(now float64) Report {
	cur := c.team.TeamSize()
	ts := c.threadSeconds
	wall := now - c.statsFrom
	if c.started && now > c.lastTick {
		ts += float64(cur) * (now - c.lastTick)
	}
	mean := 0.0
	if wall > 0 {
		mean = ts / wall
	}
	return Report{
		ThreadSeconds: ts,
		MeanThreads:   mean,
		Resizes:       c.resizes,
		MinThreads:    c.minSeen,
		MaxThreads:    c.maxSeen,
		Final:         cur,
	}
}

// ResetStats restarts the report window at now (warm-up alignment). The PI
// state is preserved: only the accounting resets.
func (c *Controller) ResetStats(now float64) {
	cur := c.team.TeamSize()
	c.statsFrom, c.lastTick = now, now
	c.threadSeconds = 0
	c.resizes = 0
	c.minSeen, c.maxSeen = cur, cur
}

// Run drives the controller on wall-clock ticks until ctx is cancelled —
// the live-runtime entry point. Tick times are seconds since Run started,
// matching the controller's clockless contract.
func (c *Controller) Run(ctx context.Context) {
	period := time.Duration(c.cfg.Period * float64(time.Second))
	if period <= 0 {
		period = time.Millisecond
	}
	start := time.Now()
	tick := time.NewTicker(period)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
			c.Tick(time.Since(start).Seconds())
		}
	}
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
