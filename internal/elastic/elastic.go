// Package elastic is the feedback control plane above Metronome's
// per-thread adaptivity: where the sleep&wake policy engine tunes each
// thread's timeout TS to the load, this controller tunes the *team size M*
// to the workload's shape. It samples the lock-free telemetry bus
// (internal/telemetry) every control period and grows or shrinks the
// thread team through the Team interface, which both execution substrates
// implement — the discrete-event twin re-sizes through engine events, the
// live runtime spawns and parks goroutines.
//
// The law is a PI controller on wake-time ring occupancy with a loss
// override: occupancy relative to ring capacity is the fast signal (it
// spikes within one vacation when a flash crowd lands, long before the rho
// EWMA converges), sustained loss feeds the integral term, and a deadband
// plus cooldown keep the team from flapping on noise. A hard Budget caps
// the team so provisioned CPU can never exceed the configured core budget.
//
// The controller is substrate-agnostic and clockless: callers invoke
// Tick(now) on their own cadence — an engine Ticker in the sim (which
// keeps elastic runs deterministic at any experiment-harness parallelism),
// a wall-clock ticker via Run in a live deployment.
package elastic

import (
	"context"
	"fmt"
	"math"
	"runtime/debug"
	"time"

	"metronome/internal/obsv"
	"metronome/internal/power"
	"metronome/internal/sched"
	"metronome/internal/telemetry"
)

// Objective selects the cost model the size law minimises against loss.
type Objective int

const (
	// ObjectiveThreadSeconds (the zero value) is the original law: every
	// provisioned thread-second costs the same, so the controller holds
	// the occupancy target as configured. All pre-fidelity-plane tunings
	// ran under it and stay byte-identical.
	ObjectiveThreadSeconds Objective = iota
	// ObjectiveJoules prices the team with Config.Power instead: a parked
	// core's deep C-state makes shedding a lightly-loaded member worth
	// more than a thread-second, so the effective occupancy target is
	// inflated by the calibration's EnergyPressure at the team's measured
	// duty cycle — large at trough load where the idle floor dominates,
	// near zero at saturation. The loss override is deliberately left on
	// the raw error, so loss still dominates any energy saving.
	ObjectiveJoules
)

// String names the objective for tables and flags.
func (o Objective) String() string {
	if o == ObjectiveJoules {
		return "joules"
	}
	return "thread-seconds"
}

// Team is a resizable retrieval-thread team; core.Runtime and
// runtime.Runner both implement it.
type Team interface {
	// TeamSize returns the current team size.
	TeamSize() int
	// SetTeamSize requests a new team size and returns the applied one
	// (substrates clamp to at least one thread per queue). It is the
	// degenerate balanced plan: SetTeamSize(m) places m/N members on every
	// queue via ApplyPlacement on substrates that support placement.
	SetTeamSize(m int) int
}

// Plan is the controller's actuation output: a total team size and its
// per-queue apportionment. PerQueue sums to Total; a nil PerQueue is the
// balanced plan (what SetTeamSize applies).
type Plan struct {
	// Total is the team size the plan provisions.
	Total int
	// PerQueue holds the members homed on each queue; entries sum to
	// Total. Nil means the balanced plan.
	PerQueue []int
}

// Actuator is a Team that can adopt a full placement plan — per-queue
// member counts instead of a bare integer. Both execution substrates
// implement it (core.Runtime re-homes simulated threads through ordinary
// engine events; runtime.Runner re-homes live members through the group
// machinery without dropping claimed turns). The controller's placement
// law emits Plans through this interface when Config.Placement is set and
// falls back to the scalar SetTeamSize otherwise.
type Actuator interface {
	Team
	// ApplyPlacement adopts perQueue[q] members homed on queue q (entries
	// clamped to >= 1) and returns the applied team total.
	ApplyPlacement(perQueue []int) int
	// CanPlace reports whether plans actually land per queue: substrates
	// return true only when the scheduling discipline binds placeable
	// groups (sched.Rebalancer). A substrate whose policy lets threads
	// roam accepts ApplyPlacement but degrades it to the total, and the
	// controller must not report phantom migrations against it.
	CanPlace() bool
	// Placement returns the per-queue member counts currently in effect
	// (a copy). The controller seeds its rebalance baseline from it, so a
	// team that was hand-placed before the controller attached is
	// corrected rather than assumed balanced.
	Placement() []int
}

// Config tunes the control plane. The zero value is unusable; start from
// DefaultConfig.
type Config struct {
	// Period is the control period in seconds (default 1 ms): how often
	// the bus is sampled and a resize considered.
	Period float64
	// MinThreads is the floor the team may shrink to (default: the
	// substrate's queue count, via the Team clamp).
	MinThreads int
	// Budget is the hard ceiling on the team — the core budget this
	// deployment may provision. CPU can never exceed Budget cores.
	Budget int
	// TargetOccupancy is the wake-time ring occupancy the PI holds, as a
	// fraction of ring capacity (default 0.10). Occupancy above it is
	// grow pressure; occupancy below it unwinds the integral and shrinks.
	TargetOccupancy float64
	// LossGain is the error added while the last window dropped packets
	// (default 3): loss is the unambiguous under-provisioning signal, so
	// it dominates the occupancy term until it stops.
	LossGain float64
	// Kp and Ki are the proportional and integral gains in threads per
	// unit error (defaults 1 and 0.5). Errors are normalised:
	// (occ - target)/target, so error 1 means double the target.
	Kp, Ki float64
	// Hysteresis widens the resize deadband in threads (default 0.25): a
	// resize applies only when the PI output departs the current size by
	// more than 0.5+Hysteresis, so the rounding boundary cannot chatter.
	Hysteresis float64
	// Cooldown is the minimum time between applied *shrinks* in seconds
	// (default 16 periods). Growth is never throttled: under-provisioning
	// loses packets, over-provisioning only burns budget.
	Cooldown float64
	// Placement enables the per-queue placement law: besides moving the
	// scalar team size, the controller apportions members across queues by
	// wake-occupancy share and actuates full plans through Actuator (when
	// the team implements it — otherwise it degrades to SetTeamSize). A
	// placement-only move (total unchanged, members migrating between
	// groups) is rate-limited by Cooldown like a shrink: it costs no
	// budget, but flapping members between groups costs re-homing churn.
	Placement bool
	// SlopeGain is the feedforward lookahead of the size law, in control
	// periods (default 0 = off): the worst queue's EWMA occupancy slope
	// times SlopeGain periods is added to the *proportional* error, so a
	// rising Sine/Ramp edge pre-provisions before the ring ever fills.
	// Only the feedback error feeds the integral — feedforward cannot wind
	// it up, so a crested ramp unwinds at the plain PI rate.
	SlopeGain float64
	// AvgOcc switches the occupancy input of the size and placement laws
	// from the point-in-time gauge to the substrate's time-averaged gauge
	// (telemetry OccAvg: the occupancy integral over the publisher's
	// accounting window in the sim, a time-constant EWMA in the live
	// runtime). The point gauge aliases on Metronome's cycle phase — it
	// reads N_V at a wake and zero right after a release — which is why the
	// controller layers its own EWMA on top; the averaged gauge removes the
	// alias at the source. Default off: the shipped fig-elastic and
	// fig-placement tunings were calibrated against the point gauge.
	AvgOcc bool
	// SlopeAlpha is the EWMA smoothing of the per-queue occupancy signals
	// (default 0.25). It governs BOTH smoothed views of the sampled
	// occupancy: the slope EWMA the feedforward reads (republished to the
	// bus as occupancy-slope gauges) and the occupancy EWMA the placement
	// law apportions by — one knob because both exist to filter the same
	// point-in-time sampling noise at the same control cadence.
	SlopeAlpha float64

	// Objective selects what the size law minimises: thread-seconds (the
	// zero value — the original law) or modelled joules. See the
	// Objective constants for the semantics.
	Objective Objective
	// Power is the calibration the joules objective (and the per-tick
	// Decision.Watts gauge) prices teams with. The zero value is replaced
	// by power.DefaultConfig() — the Xeon Silver node the experiments
	// model.
	Power power.Config

	// Health enables the self-healing layer: stale-gauge rejection (a queue
	// whose publish sequence stops advancing for StaleTicks control ticks is
	// distrusted and its last-fresh smoothed signals are held instead),
	// heartbeat-based straggler/death detection with exile through
	// corrective placement plans, dark-queue loss classification (drops
	// rising into an empty-reading ring are a blackout, not
	// under-provisioning), a SafeTeam fallback when the whole bus goes
	// stale, and a Tick watchdog (panic recovery + actuation rate
	// limiting). Off by default: the shipped fig-elastic/fig-placement
	// tunings predate it and stay byte-identical.
	Health bool
	// StaleTicks is the per-queue staleness bound in control ticks (default
	// 8): a queue whose publish sequence has not advanced for this many
	// ticks is stale. Staleness is detected by value change, never by clock
	// arithmetic — the sim publishes virtual seconds, the live runner
	// elapsed seconds, and the controller must not care.
	StaleTicks int
	// HeartbeatTicks is the per-member liveness bound in control ticks
	// (default 8): an active member whose heartbeat gauge has not changed
	// for this many ticks is a straggler (stalled or dead) and is exiled —
	// its home queue gets one reinforcing member through a corrective plan.
	// The exile latch clears only when the heartbeat value moves again.
	HeartbeatTicks int
	// SafeTeam is the static team size the controller holds when every
	// queue's telemetry is stale (the bus went dark): with no trustworthy
	// signal, provision a configured-safe size rather than act on garbage.
	// The fallback is grow-only — safe mode never shrinks below the current
	// size. Default: Budget.
	SafeTeam int
	// MaxActuationsPerSec rate-limits applied actuations (resizes,
	// rebalances, exiles) through a token bucket when the health layer is
	// on; zero disables the limit. A recovering controller (outage ends,
	// ticks resume) cannot burst-actuate its way through stale state.
	MaxActuationsPerSec float64

	// Recorder, when set, is the observability plane's control-plane tap:
	// every tick's Decision (want/applied/plan/occupancy/feedforward/
	// watts), each exile and un-exile, each safe-mode edge, each dark-loss
	// classification, each rate-limit denial and each watchdog-recovered
	// panic lands in the flight recorder at zero allocations per event,
	// stamped with the tick's own substrate timestamp (the controller is
	// clockless and stays so). Nil records nothing and costs one branch.
	Recorder *obsv.Recorder
}

// Homer exposes a substrate's thread-to-home-queue mapping; core.Runtime and
// runtime.Runner both implement it. The health layer aims corrective plans
// at an unhealthy member's home queue through it.
type Homer interface {
	ThreadHome(id int) int
}

// DefaultConfig returns the tuning the fig-elastic experiment ships:
// budget cores, a 1 ms control period and the PI gains calibrated there.
func DefaultConfig(minThreads, budget int) Config {
	return Config{
		Period:          1e-3,
		MinThreads:      minThreads,
		Budget:          budget,
		TargetOccupancy: 0.10,
		LossGain:        3,
		Kp:              1,
		Ki:              0.5,
		Hysteresis:      0.25,
	}
}

func (c Config) normalized() Config {
	if c.Period <= 0 {
		c.Period = 1e-3
	}
	if c.MinThreads < 1 {
		c.MinThreads = 1
	}
	if c.Budget < c.MinThreads {
		c.Budget = c.MinThreads
	}
	if c.TargetOccupancy <= 0 {
		c.TargetOccupancy = 0.10
	}
	if c.LossGain < 0 {
		c.LossGain = 0
	}
	if c.Kp <= 0 {
		c.Kp = 1
	}
	if c.Ki <= 0 {
		c.Ki = 0.5
	}
	if c.Hysteresis < 0 {
		c.Hysteresis = 0
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 16 * c.Period
	}
	if c.SlopeGain < 0 {
		c.SlopeGain = 0
	}
	if c.SlopeAlpha <= 0 || c.SlopeAlpha > 1 {
		c.SlopeAlpha = 0.25
	}
	if c.StaleTicks <= 0 {
		c.StaleTicks = 8
	}
	if c.HeartbeatTicks <= 0 {
		c.HeartbeatTicks = 8
	}
	if c.SafeTeam <= 0 || c.SafeTeam > c.Budget {
		c.SafeTeam = c.Budget
	}
	if c.MaxActuationsPerSec < 0 {
		c.MaxActuationsPerSec = 0
	}
	if c.Power == (power.Config{}) {
		c.Power = power.DefaultConfig()
	}
	return c
}

// Decision records one control tick for observability.
type Decision struct {
	At        float64 // tick time
	Occupancy float64 // worst-queue occupancy fraction sampled
	Slope     float64 // worst-queue EWMA occupancy slope (fraction/s)
	LossDelta uint64  // packets dropped since the previous tick
	Err       float64 // combined feedback error (occupancy + loss)
	Feedfwd   float64 // feedforward term added to the proportional path
	Raw       float64 // un-rounded size-law output in threads
	Want      int     // rounded, clamped target
	Applied   int     // team size after the tick
	Resized   bool    // whether a resize was applied
	// Plan is the per-queue placement applied this tick (nil when the tick
	// actuated nothing, or actuated through the scalar SetTeamSize path).
	Plan []int
	// Rebalanced marks a placement-only move: members migrated between
	// queues with the team total unchanged.
	Rebalanced bool
	// Duty is the team's measured busy fraction over the tick window
	// (summed on-CPU deltas over cur*dt), the joules objective's input.
	Duty float64
	// Watts is the modelled core-only power of the deployment at this
	// tick: the provisioned team at its measured duty and sleep dwell,
	// plus the budget's surplus cores parked in deep idle (Config.Power
	// calibration; uncore power excluded as sizing-invariant).
	Watts float64

	// Health-layer observability (zero values unless Config.Health is on).

	// StaleMask marks queues whose telemetry is stale this tick: bit q is
	// set for stale queue q (queues past 63 fold modulo 64).
	StaleMask uint64
	// DarkLoss is the drop delta excluded from the loss override this tick
	// because it carried the blackout signature — drops rising while the
	// ring reads empty. Growing the team cannot serve a dark queue.
	DarkLoss uint64
	// Unhealthy lists active members whose heartbeat froze past the bound.
	Unhealthy []int
	// Exiled lists members the health layer exiled this tick: a corrective
	// plan reinforced each one's home queue.
	Exiled []int
	// Recovered lists previously exiled members whose heartbeat moved again.
	Recovered []int
	// SafeMode marks a tick on which every queue was stale: the controller
	// held/grew toward SafeTeam instead of trusting the bus.
	SafeMode bool
}

// Controller drives one Team from one Bus.
type Controller struct {
	cfg  Config
	bus  *telemetry.Bus
	team Team
	act  Actuator // non-nil when Placement is on and team supports plans

	integ         float64 // integral state, in threads above MinThreads
	lastTick      float64
	lastShrink    float64
	lastRebalance float64
	started       bool

	snap         telemetry.Snapshot
	prevDrops    []uint64
	prevRx       []uint64
	prevBusySum  float64      // last tick's summed per-thread on-CPU seconds
	prevTriesSum uint64       // last tick's summed per-queue trylock counter
	energy       power.Energy // ∫watts dt behind Report.Joules
	prevOccF     []float64    // previous tick's per-queue occupancy fractions
	occEW        []float64    // EWMA per-queue occupancy fraction (placement law)
	slopes       []float64    // EWMA per-queue occupancy slope (fraction/s)
	lastPlan     []int        // placement last applied (placement mode only)
	planBuf      []int        // scratch for the apportionment law
	remBuf       []float64    // scratch for largest-remainder apportionment
	health       *healthState // nil unless Config.Health

	// Window stats backing Report.
	statsFrom     float64
	threadSeconds float64
	resizes       int
	rebalances    int
	minSeen       int
	maxSeen       int
	last          Decision
	prevSafe      bool // previous tick's SafeMode, for recording edges
}

// New builds a controller over bus and team. The team is immediately
// clamped into [MinThreads, Budget] so a mis-sized initial deployment
// starts inside the envelope.
func New(bus *telemetry.Bus, team Team, cfg Config) *Controller {
	c := &Controller{
		cfg:  cfg.normalized(),
		bus:  bus,
		team: team,
	}
	m := team.TeamSize()
	if m < c.cfg.MinThreads {
		m = team.SetTeamSize(c.cfg.MinThreads)
	}
	if m > c.cfg.Budget {
		m = team.SetTeamSize(c.cfg.Budget)
	}
	c.integ = float64(m - c.cfg.MinThreads)
	c.minSeen, c.maxSeen = m, m
	c.prevDrops = make([]uint64, bus.Queues())
	c.prevRx = make([]uint64, bus.Queues())
	c.prevOccF = make([]float64, bus.Queues())
	c.occEW = make([]float64, bus.Queues())
	c.slopes = make([]float64, bus.Queues())
	if c.cfg.Placement {
		// The placement law engages only when plans actually land per
		// queue: a substrate whose policy cannot place (no
		// sched.Rebalancer) degrades ApplyPlacement to the total, and
		// reporting plans/rebalances against it would be fiction.
		if act, ok := team.(Actuator); ok && act.CanPlace() {
			c.act = act
			// Baseline from the placement actually in effect — a team
			// that was hand-placed before the controller attached must
			// be rebalanced away from, not assumed balanced.
			c.lastPlan = append([]int(nil), act.Placement()...)
			c.planBuf = make([]int, bus.Queues())
		}
	}
	if c.cfg.Health {
		c.health = newHealthState(bus)
		c.health.homer, _ = team.(Homer)
	}
	return c
}

// Config returns the normalised configuration in effect.
func (c *Controller) Config() Config { return c.cfg }

// Tick runs one control period ending at now: sample the bus, update the
// size law's PI state (plus the slope feedforward), and actuate — a full
// placement plan when the placement law is on, the scalar team size
// otherwise — when the output leaves the deadband. With the placement law
// on, a tick that moves no total can still migrate members between queues
// (a rebalance), rate-limited by the cooldown.
//
// A tick whose now is not strictly later than the previous tick's is
// rejected (the previous Decision is returned unchanged): a recovering
// ticker replaying a timestamp, or two tickers racing, must not fold a
// zero-length window into the PI state or double-count deltas. With the
// health layer on, the body additionally runs under a watchdog — a panic
// is swallowed, counted, and the last good Decision returned, so one bad
// sample cannot take the control loop down with it.
func (c *Controller) Tick(now float64) (d Decision) {
	if c.started && now <= c.lastTick {
		return c.last
	}
	if c.health != nil {
		defer func() {
			if r := recover(); r != nil {
				c.health.panics++
				// Capture the panic's value and stack — the report keeps
				// the FIRST one (the panic that started a failure cascade
				// is the diagnosable one), the flight recorder logs every
				// one. This path allocates; a watchdog trip is not hot.
				msg, stack := fmt.Sprint(r), string(debug.Stack())
				if c.health.panicMsg == "" {
					c.health.panicMsg, c.health.panicStack = msg, stack
				}
				c.cfg.Recorder.RecordPanic(now, msg, stack)
				d = c.last
			}
		}()
	}
	return c.tick(now)
}

// tick is the control law body; Tick wraps it with the monotonicity guard
// and (with the health layer on) the panic watchdog.
func (c *Controller) tick(now float64) Decision {
	cur := c.team.TeamSize()
	if !c.started {
		c.started = true
		c.lastTick, c.statsFrom = now, now
		// Counter baselines: the first tick only calibrates deltas.
		c.bus.Sample(&c.snap)
		copy(c.prevDrops, c.snap.Drops)
		copy(c.prevRx, c.snap.Rx)
		for q := 0; q < c.bus.Queues(); q++ {
			c.prevOccF[q] = c.occFraction(q)
		}
		c.prevBusySum, c.prevTriesSum = sumF(c.snap.ThreadBusy), sumU(c.snap.Tries)
		c.energy.Rebase(now, c.cfg.Power.TeamWatts(cur, 0, 0, c.cfg.Budget-cur))
		if c.health != nil {
			c.health.seed(&c.snap, now)
		}
		c.last = Decision{At: now, Want: cur, Applied: cur}
		c.recordTick(&c.last)
		return c.last
	}
	dt := now - c.lastTick
	c.threadSeconds += float64(cur) * dt
	c.lastTick = now

	c.bus.Sample(&c.snap)
	d := Decision{At: now}
	safeMode := false
	if c.health != nil {
		safeMode = c.healthObserve(&d, cur)
	}
	occ, slope := 0.0, 0.0
	for q := 0; q < c.bus.Queues(); q++ {
		if c.health != nil && c.health.stale(q, c.cfg.StaleTicks) {
			// Stale gauge rejection: the queue's publishers went quiet, so
			// this sample is a frozen echo. Hold the last-fresh smoothed
			// signals (the occupancy EWMA and slope keep steering the size
			// and placement laws) instead of folding the echo in.
			if c.occEW[q] > occ {
				occ = c.occEW[q]
			}
			if c.slopes[q] > slope {
				slope = c.slopes[q]
			}
			continue
		}
		f := c.occFraction(q)
		if f > occ {
			occ = f
		}
		// The published occupancy is a point-in-time gauge (N_V at a wake,
		// zero right after a release), so a single sample is aliasing
		// noise. The placement law apportions by this EWMA instead — the
		// time-averaged wake occupancy is the demand a queue actually
		// exerts.
		c.occEW[q] += c.cfg.SlopeAlpha * (f - c.occEW[q])
		if dt > 0 {
			// Per-queue occupancy slope, EWMA-smoothed and republished to
			// the bus as a gauge: the feedforward's input and the
			// observability signal behind the fig-placement panels.
			s := (f - c.prevOccF[q]) / dt
			c.slopes[q] += c.cfg.SlopeAlpha * (s - c.slopes[q])
			c.bus.SetOccSlope(q, c.slopes[q])
		}
		if c.slopes[q] > slope {
			slope = c.slopes[q]
		}
		c.prevOccF[q] = f
	}
	var lossDelta uint64
	for q := 0; q < c.bus.Queues(); q++ {
		if drops := c.snap.Drops[q]; drops >= c.prevDrops[q] {
			delta := drops - c.prevDrops[q]
			if c.health != nil && delta > 0 && c.occEW[q] < 0.01 {
				// Blackout signature: drops rising while the ring reads
				// (nearly) empty means the queue went dark, not
				// under-provisioned — polls see nothing to serve, so more
				// threads cannot help. Excluded from the loss override.
				d.DarkLoss += delta
				c.cfg.Recorder.RecordDarkLoss(now, q, delta)
			} else {
				lossDelta += delta
			}
		}
		if dt > 0 {
			// Republish the measured per-queue arrival rate (Rx delta over
			// the control window) as a gauge: the signal dashboards and
			// feedforward consumers read without re-deriving counter deltas.
			if rx := c.snap.Rx[q]; rx >= c.prevRx[q] {
				c.bus.SetArrivalRate(q, float64(rx-c.prevRx[q])/dt)
			}
		}
		// A counter that moved backwards was reset (warm-up window
		// alignment); resync silently.
		c.prevDrops[q] = c.snap.Drops[q]
		c.prevRx[q] = c.snap.Rx[q]
	}

	// Measured team duty and sleep dwell over the window — the joules
	// objective's and the watts gauge's inputs. Deltas resync silently
	// after a warm-up counter reset, like the drop and rx counters above.
	busySum, triesSum := sumF(c.snap.ThreadBusy), sumU(c.snap.Tries)
	busyDelta := busySum - c.prevBusySum
	if busyDelta < 0 {
		busyDelta = 0
	}
	duty := 0.0
	if dt > 0 && cur > 0 {
		duty = clamp(busyDelta/(float64(cur)*dt), 0, 1)
	}
	dwell := 0.0
	if sleeps := triesSum - c.prevTriesSum; triesSum > c.prevTriesSum {
		if idle := float64(cur)*dt - busyDelta; idle > 0 {
			dwell = idle / float64(sleeps)
		}
	}
	c.prevBusySum, c.prevTriesSum = busySum, triesSum
	d.Duty = duty
	d.Watts = c.cfg.Power.TeamWatts(cur, duty, dwell, c.cfg.Budget-cur)
	c.energy.Observe(now, d.Watts)

	d.Occupancy, d.Slope, d.LossDelta = occ, slope, lossDelta
	if safeMode {
		// The whole bus is stale: every signal below would be an echo, so
		// skip the PI entirely and hold/grow toward the configured safe
		// static size. Grow-only — shrinking on no information loses
		// packets, holding extra threads only burns budget.
		d.SafeMode = true
		d.Want, d.Applied = cur, cur
		c.healthSafeMode(&d, now, cur)
		return c.finishTick(d)
	}

	target := c.cfg.TargetOccupancy
	if c.cfg.Objective == ObjectiveJoules {
		// The joules objective tolerates proportionally more backlog per
		// ring when the idle floor dominates the bill: inflating the
		// target by the calibration's energy pressure sheds marginal
		// members at trough duty and converges on the thread-seconds law
		// as duty approaches saturation. Loss is added to the raw error
		// below, NOT scaled — a dropping queue out-shouts any saving.
		target *= 1 + c.cfg.Power.EnergyPressure(duty)
	}
	e := (occ - target) / target
	if lossDelta > 0 {
		e += c.cfg.LossGain
	}
	// Feedforward: the predicted occupancy rise over the lookahead window
	// (SlopeGain control periods), normalised like the proportional error.
	// Only rising edges feed forward — a falling edge just lets the PI
	// unwind — and only the proportional path sees it, so feedforward can
	// pre-provision but never wind the integral up.
	ff := 0.0
	if c.cfg.SlopeGain > 0 && slope > 0 {
		ff = slope * c.cfg.SlopeGain * c.cfg.Period / c.cfg.TargetOccupancy
	}
	c.integ += c.cfg.Ki * e
	c.integ = clamp(c.integ, 0, float64(c.cfg.Budget-c.cfg.MinThreads))
	raw := float64(c.cfg.MinThreads) + c.cfg.Kp*(e+ff) + c.integ
	want := int(math.Round(clamp(raw, float64(c.cfg.MinThreads), float64(c.cfg.Budget))))

	d.Err, d.Feedfwd, d.Raw = e, ff, raw
	d.Want, d.Applied = want, cur
	switch {
	case want > cur && raw > float64(cur)+0.5+c.cfg.Hysteresis &&
		c.takeToken(now):
		d.Applied = c.actuate(want, &d)
		d.Resized = d.Applied != cur
	case want < cur && raw < float64(cur)-0.5-c.cfg.Hysteresis &&
		now-c.lastShrink >= c.cfg.Cooldown &&
		(c.health == nil || !c.health.anyExiled()) && c.takeToken(now):
		d.Applied = c.actuate(want, &d)
		d.Resized = d.Applied != cur
		if d.Resized {
			c.lastShrink = now
		}
	default:
		// No size move. The placement law may still migrate members to
		// chase a demand shift — a hot flow moving queues changes where
		// threads should sit without changing how many are needed.
		if c.act != nil && now-c.lastRebalance >= c.cfg.Cooldown &&
			(c.health == nil || !c.health.anyExiled()) {
			plan := c.apportion(cur)
			if !sched.PlacementEqual(plan, c.lastPlan) && c.takeToken(now) {
				d.Applied = c.applyPlan(plan, &d)
				d.Rebalanced = true
				c.rebalances++
				c.lastRebalance = now
			}
		}
	}
	if c.health != nil && !d.Resized && !d.Rebalanced {
		// Quiet tick: let the health layer exile stragglers. Right after an
		// actuation members are re-homing and their heartbeats wobble, so
		// exile only runs when the size/placement laws held still.
		c.healthExile(&d, now)
	}
	return c.finishTick(d)
}

// finishTick does the shared tail of every tick — resize bookkeeping,
// health grace arming, window stats — and records the Decision.
func (c *Controller) finishTick(d Decision) Decision {
	if d.Resized {
		c.resizes++
		// Keep the integral consistent with what was actually applied so
		// the deadband is measured from the live size, not a phantom one.
		c.integ = clamp(float64(d.Applied-c.cfg.MinThreads), 0,
			float64(c.cfg.Budget-c.cfg.MinThreads))
	}
	if c.health != nil && (d.Resized || d.Rebalanced) {
		// Freshly moved members re-home and their heartbeats wobble: hold
		// the straggler detector for one full liveness window.
		c.health.grace = c.cfg.HeartbeatTicks
	}
	if d.Applied < c.minSeen {
		c.minSeen = d.Applied
	}
	if d.Applied > c.maxSeen {
		c.maxSeen = d.Applied
	}
	c.last = d
	c.recordTick(&d)
	return d
}

// recordTick lands one tick's flight-recorder events — the Decision
// itself, a safe-mode edge when the flag flipped, and the tick's exiles
// and recoveries — and tracks the safe-mode edge state. Zero allocations;
// with no recorder wired only the edge state is kept.
func (c *Controller) recordTick(d *Decision) {
	if rec := c.cfg.Recorder; rec != nil {
		rec.RecordDecision(d.At, d.Want, d.Applied, sched.PackPlacement(d.Plan),
			d.Occupancy, d.Feedfwd, d.Watts, d.Resized, d.Rebalanced, d.SafeMode)
		if d.SafeMode != c.prevSafe {
			rec.RecordSafeMode(d.At, d.SafeMode, d.Applied)
		}
		for _, id := range d.Exiled {
			rec.RecordExile(d.At, id)
		}
		for _, id := range d.Recovered {
			rec.RecordRecover(d.At, id)
		}
	}
	c.prevSafe = d.SafeMode
}

// occFraction reads queue q's sampled occupancy as a fraction of its ring
// capacity (zero when the capacity was never published). With AvgOcc set it
// reads the substrate's time-averaged gauge instead of the point sample.
func (c *Controller) occFraction(q int) float64 {
	cp := c.snap.Cap[q]
	if cp <= 0 {
		return 0
	}
	if c.cfg.AvgOcc {
		return c.snap.OccAvg[q] / cp
	}
	return c.snap.Occ[q] / cp
}

// actuate applies a new team total through the placement plane when the
// placement law is on, or the scalar Team path otherwise.
func (c *Controller) actuate(m int, d *Decision) int {
	if c.act == nil {
		return c.team.SetTeamSize(m)
	}
	applied := c.applyPlan(c.apportion(m), d)
	c.lastRebalance = d.At // a resize republishes the whole placement
	return applied
}

// applyPlan pushes one per-queue plan through the Actuator and records it.
func (c *Controller) applyPlan(plan []int, d *Decision) int {
	applied := c.act.ApplyPlacement(plan)
	c.lastPlan = append(c.lastPlan[:0], plan...)
	d.Plan = append([]int(nil), plan...)
	return applied
}

// apportion is the placement law: split m members across the queues
// proportionally to their sampled wake-occupancy fractions, every queue
// keeping at least one member (Sec. IV-E), the remaining m-N going by
// largest remainder (ties to the lower queue index). Like the
// work-stealing backup ranking, a vanishing rho share breaks exact
// occupancy ties so a drained-but-loaded queue outranks an idle one. The
// plan is a pure function of the snapshot, so placement runs are
// byte-identical at any experiment-harness parallelism. Zero demand
// everywhere yields the balanced plan — with no signal, balance is the
// least-regret assignment.
func (c *Controller) apportion(m int) []int {
	n := c.bus.Queues()
	if m < n {
		m = n
	}
	dst := c.planBuf
	total := 0.0
	for q := 0; q < n; q++ {
		total += c.weight(q)
	}
	extra := m - n
	if total <= 0 || extra == 0 {
		for q := range dst {
			dst[q] = 0
		}
		for i := 0; i < m; i++ {
			dst[i%n]++
		}
		return dst
	}
	rem := c.remScratch()
	assigned := 0
	for q := 0; q < n; q++ {
		share := c.weight(q) / total * float64(extra)
		f := math.Floor(share)
		dst[q] = 1 + int(f)
		rem[q] = share - f
		assigned += int(f)
	}
	for left := extra - assigned; left > 0; left-- {
		best := 0
		for q := 1; q < n; q++ {
			if rem[q] > rem[best] {
				best = q
			}
		}
		dst[best]++
		rem[best] = -1
	}
	return dst
}

// weight is queue q's placement demand: the EWMA wake-occupancy share
// blended with a small rho term. Occupancy dominates whenever a ring is
// actually backing up (it reaches 1.0 at overflow, the rho term tops out
// at 0.05), but between spikes the published gauge is a 0-or-N_V point
// sample whose EWMA still wanders; the eq. (11) estimate is smoothed over
// whole service cycles and anchors the ordering — like the work-stealing
// backup ranking, a drained-but-loaded queue outranks an idle one.
func (c *Controller) weight(q int) float64 {
	w := c.occEW[q] + 0.05*c.snap.Rho[q]
	if w < 0 {
		return 0
	}
	return w
}

// remScratch reuses the controller's float scratch for remainders.
func (c *Controller) remScratch() []float64 {
	if cap(c.remBuf) < c.bus.Queues() {
		c.remBuf = make([]float64, c.bus.Queues())
	}
	return c.remBuf[:c.bus.Queues()]
}

// Report summarises the controller's window since construction or the last
// ResetStats.
type Report struct {
	// ThreadSeconds is ∫M(t)dt over the window: the provisioning cost the
	// controller is minimising against loss.
	ThreadSeconds float64
	// MeanThreads is ThreadSeconds normalised by the window length.
	MeanThreads float64
	// Resizes counts applied team changes.
	Resizes int
	// Rebalances counts placement-only moves: members migrated between
	// queues with the team total unchanged (always zero without the
	// placement law).
	Rebalances int
	// MinThreads and MaxThreads are the extreme applied sizes seen.
	MinThreads, MaxThreads int
	// Final is the team size at report time.
	Final int
	// Joules is ∫watts dt over the window: the modelled core-only energy
	// of the deployment (team + parked budget cores) under Config.Power.
	// It accrues under every objective, so thread-seconds and joules runs
	// are energy-comparable.
	Joules float64
	// MeanWatts is Joules normalised by the window length.
	MeanWatts float64
	// FinalPlan is the per-queue placement at report time (nil when the
	// controller actuates through the scalar path).
	FinalPlan []int

	// Health-layer window stats (zero unless Config.Health is on).

	// Exiles counts straggler exiles: corrective plans that reinforced an
	// unhealthy member's home queue.
	Exiles int
	// SafeTicks counts ticks spent in the all-stale SafeTeam fallback.
	SafeTicks int
	// StaleQueueTicks counts (queue, tick) pairs past the staleness bound.
	StaleQueueTicks int
	// Panics counts Tick bodies the watchdog recovered from.
	Panics int
	// PanicMsg is the first recovered panic's value (fmt.Sprint form) —
	// empty when no tick panicked. The count alone made soak failures
	// undiagnosable; the first panic is the one that starts a cascade.
	PanicMsg string
	// PanicStack is the goroutine stack captured with PanicMsg.
	PanicStack string
}

// Report closes the accounting window at now and summarises it.
func (c *Controller) Report(now float64) Report {
	cur := c.team.TeamSize()
	ts := c.threadSeconds
	wall := now - c.statsFrom
	if c.started && now > c.lastTick {
		ts += float64(cur) * (now - c.lastTick)
	}
	mean := 0.0
	if wall > 0 {
		mean = ts / wall
	}
	joules := c.energy.Joules()
	if c.started && now > c.lastTick {
		// Extrapolate the tail past the last tick at its modelled watts,
		// mirroring the thread-seconds tail above.
		joules += c.last.Watts * (now - c.lastTick)
	}
	meanW := 0.0
	if wall > 0 {
		meanW = joules / wall
	}
	rep := Report{
		ThreadSeconds: ts,
		MeanThreads:   mean,
		Joules:        joules,
		MeanWatts:     meanW,
		Resizes:       c.resizes,
		Rebalances:    c.rebalances,
		MinThreads:    c.minSeen,
		MaxThreads:    c.maxSeen,
		Final:         cur,
	}
	if c.act != nil {
		rep.FinalPlan = append([]int(nil), c.lastPlan...)
	}
	if h := c.health; h != nil {
		rep.Exiles = h.exiles
		rep.SafeTicks = h.safeTicks
		rep.StaleQueueTicks = h.staleQTicks
		rep.Panics = h.panics
		rep.PanicMsg = h.panicMsg
		rep.PanicStack = h.panicStack
	}
	return rep
}

// ResetStats restarts the report window at now (warm-up alignment). The PI
// state is preserved: only the accounting resets.
func (c *Controller) ResetStats(now float64) {
	cur := c.team.TeamSize()
	c.statsFrom, c.lastTick = now, now
	c.threadSeconds = 0
	c.energy.Reset()
	c.energy.Rebase(now, c.last.Watts)
	c.resizes, c.rebalances = 0, 0
	c.minSeen, c.maxSeen = cur, cur
	if h := c.health; h != nil {
		h.exiles, h.safeTicks, h.staleQTicks, h.panics = 0, 0, 0, 0
		h.panicMsg, h.panicStack = "", ""
	}
}

// Run drives the controller on wall-clock ticks until ctx is cancelled —
// the live-runtime entry point. Tick times are seconds since Run started,
// matching the controller's clockless contract.
func (c *Controller) Run(ctx context.Context) {
	period := time.Duration(c.cfg.Period * float64(time.Second))
	if period <= 0 {
		period = time.Millisecond
	}
	start := time.Now()
	tick := time.NewTicker(period)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
			c.Tick(time.Since(start).Seconds())
		}
	}
}

func sumF(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

func sumU(xs []uint64) uint64 {
	var s uint64
	for _, x := range xs {
		s += x
	}
	return s
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
