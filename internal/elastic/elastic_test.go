package elastic

import (
	"testing"

	"metronome/internal/telemetry"
)

// fakeTeam records resizes and clamps to a queue floor like the substrates.
type fakeTeam struct {
	size    int
	floor   int
	resizes []int
}

func (f *fakeTeam) TeamSize() int { return f.size }
func (f *fakeTeam) SetTeamSize(m int) int {
	if m < f.floor {
		m = f.floor
	}
	f.size = m
	f.resizes = append(f.resizes, m)
	return m
}

func newRig(minThreads, budget int) (*telemetry.Bus, *fakeTeam, *Controller) {
	bus := telemetry.NewBus(2, budget)
	bus.SetCapacity(0, 4096)
	bus.SetCapacity(1, 4096)
	team := &fakeTeam{size: minThreads, floor: 2}
	cfg := DefaultConfig(minThreads, budget)
	return bus, team, New(bus, team, cfg)
}

func TestGrowsOnOccupancySpike(t *testing.T) {
	bus, team, c := newRig(2, 8)
	c.Tick(0) // calibration tick
	// Flash crowd: the worst queue's wake occupancy spikes to 40% of the
	// ring against a 10% target.
	bus.SetOccupancy(1, 0.4*4096)
	d := c.Tick(0.001)
	if d.Applied <= 2 {
		t.Fatalf("no growth on 4x occupancy target: %+v", d)
	}
	if team.size != d.Applied {
		t.Fatalf("team %d != applied %d", team.size, d.Applied)
	}
}

func TestLossDrivesIntegralGrowth(t *testing.T) {
	bus, _, c := newRig(2, 8)
	c.Tick(0)
	// Occupancy at target (no proportional pressure) but persistent loss.
	bus.SetOccupancy(0, 0.10*4096)
	drops := uint64(0)
	now := 0.0
	grewTo := 0
	for i := 0; i < 20; i++ {
		drops += 500
		bus.SetDrops(0, drops)
		now += 0.001
		d := c.Tick(now)
		grewTo = d.Applied
	}
	if grewTo < 6 {
		t.Fatalf("sustained loss only grew the team to %d of budget 8", grewTo)
	}
}

func TestShrinksAfterTroughWithCooldown(t *testing.T) {
	bus, team, c := newRig(2, 8)
	c.Tick(0)
	bus.SetOccupancy(0, 0.5*4096)
	now := 0.001
	c.Tick(now)
	peak := team.size
	if peak <= 2 {
		t.Fatalf("setup failed to grow (size %d)", peak)
	}
	// Trough: occupancy collapses. The integral must unwind and the team
	// shrink back — but never faster than one shrink per cooldown.
	bus.SetOccupancy(0, 0)
	cd := c.Config().Cooldown
	lastShrinkAt := -cd
	size := peak
	for i := 0; i < 2000 && size > 2; i++ {
		now += 0.001
		d := c.Tick(now)
		if d.Applied < size {
			if dt := d.At - lastShrinkAt; dt < cd {
				t.Fatalf("shrink after %.4fs, cooldown %.4fs", dt, cd)
			}
			lastShrinkAt = d.At
		}
		size = d.Applied
	}
	if size != 2 {
		t.Fatalf("team never shrank back to the floor: %d", size)
	}
}

func TestBudgetIsAHardCap(t *testing.T) {
	bus, team, c := newRig(2, 4)
	c.Tick(0)
	bus.SetOccupancy(0, 4096) // ring full
	bus.SetDrops(0, 1e6)
	now := 0.0
	for i := 0; i < 50; i++ {
		now += 0.001
		if d := c.Tick(now); d.Applied > 4 {
			t.Fatalf("budget 4 exceeded: %+v", d)
		}
	}
	if team.size > 4 {
		t.Fatalf("team %d over budget", team.size)
	}
}

func TestHysteresisHoldsInDeadband(t *testing.T) {
	bus, team, c := newRig(3, 8)
	c.Tick(0)
	// Occupancy exactly at target: zero error, the team must not move.
	bus.SetOccupancy(0, 0.10*4096)
	bus.SetOccupancy(1, 0.10*4096)
	now := 0.0
	for i := 0; i < 200; i++ {
		now += 0.001
		c.Tick(now)
	}
	if got := len(team.resizes); got != 0 {
		t.Fatalf("%d resizes on zero error (deadband broken): %v", got, team.resizes)
	}
}

func TestCounterResetResyncsSilently(t *testing.T) {
	bus, _, c := newRig(2, 8)
	c.Tick(0)
	bus.SetDrops(0, 1000)
	c.Tick(0.001)
	// Warm-up alignment resets the substrate counters; the next delta must
	// not underflow into a huge unsigned loss.
	bus.SetDrops(0, 0)
	d := c.Tick(0.002)
	if d.LossDelta != 0 {
		t.Fatalf("loss delta after counter reset = %d, want 0", d.LossDelta)
	}
}

// fakeActuator is a fakeTeam that also accepts placement plans, clamping
// entries >= 1 like the substrates.
type fakeActuator struct {
	fakeTeam
	plan       []int
	placements int
}

func (f *fakeActuator) CanPlace() bool { return true }

func (f *fakeActuator) Placement() []int {
	if f.plan != nil {
		return append([]int(nil), f.plan...)
	}
	// Balanced split over the two bus queues the rigs use.
	return []int{(f.size + 1) / 2, f.size / 2}
}

func (f *fakeActuator) ApplyPlacement(perQueue []int) int {
	total := 0
	f.plan = make([]int, len(perQueue))
	for q, s := range perQueue {
		if s < 1 {
			s = 1
		}
		f.plan[q] = s
		total += s
	}
	f.size = total
	f.placements++
	return total
}

func newPlacementRig(minThreads, budget int) (*telemetry.Bus, *fakeActuator, *Controller) {
	bus := telemetry.NewBus(2, budget)
	bus.SetCapacity(0, 4096)
	bus.SetCapacity(1, 4096)
	team := &fakeActuator{fakeTeam: fakeTeam{size: minThreads, floor: 2}}
	cfg := DefaultConfig(minThreads, budget)
	cfg.Placement = true
	return bus, team, New(bus, team, cfg)
}

// The placement law must apportion members toward the queue whose EWMA
// wake occupancy carries the demand, through the Actuator.
func TestPlacementApportionsByOccupancyShare(t *testing.T) {
	bus, team, c := newPlacementRig(2, 8)
	c.Tick(0)
	// Queue 1 carries a sustained 40%-of-ring backlog, queue 0 is idle.
	now := 0.0
	var d Decision
	for i := 0; i < 40; i++ {
		bus.SetOccupancy(1, 0.4*4096)
		bus.SetRho(1, 0.9)
		now += 0.001
		d = c.Tick(now)
	}
	if team.placements == 0 {
		t.Fatal("no placement ever actuated")
	}
	if len(team.plan) != 2 || team.plan[1] <= team.plan[0] {
		t.Fatalf("plan %v does not favour the hot queue", team.plan)
	}
	if sum := team.plan[0] + team.plan[1]; sum != team.size {
		t.Fatalf("plan %v does not sum to team %d", team.plan, team.size)
	}
	if d.Applied != team.size {
		t.Fatalf("decision applied %d != team %d", d.Applied, team.size)
	}
}

// With the total pinned (MinThreads = Budget), only rebalances can act —
// and a demand shift must migrate members, rate-limited by the cooldown.
func TestPlacementRebalancesAtPinnedTotal(t *testing.T) {
	bus, team, c := newPlacementRig(6, 6)
	c.Tick(0)
	now := 0.0
	hot := func(q int, ticks int) {
		for i := 0; i < ticks; i++ {
			bus.SetOccupancy(q, 0.3*4096)
			bus.SetOccupancy(1-q, 0)
			bus.SetRho(q, 0.9)
			bus.SetRho(1-q, 0.05)
			now += 0.001
			c.Tick(now)
		}
	}
	hot(0, 60)
	if team.plan == nil || team.plan[0] <= team.plan[1] {
		t.Fatalf("plan %v does not favour queue 0", team.plan)
	}
	rebalancesAfterFirst := c.Report(now).Rebalances
	if rebalancesAfterFirst == 0 {
		t.Fatal("no rebalance counted")
	}
	// The demand flips: members must migrate the other way without any
	// size change.
	hot(1, 60)
	if team.plan[1] <= team.plan[0] {
		t.Fatalf("plan %v did not follow the demand shift", team.plan)
	}
	if team.size != 6 {
		t.Fatalf("pinned total moved to %d", team.size)
	}
	rep := c.Report(now)
	if rep.Resizes != 0 {
		t.Fatalf("%d resizes at a pinned total", rep.Resizes)
	}
	if rep.FinalPlan == nil {
		t.Fatal("report carries no final plan")
	}
}

// A team hand-placed before the controller attaches must be rebalanced
// away from: the baseline comes from the actual placement, not an assumed
// balanced plan.
func TestControllerCorrectsPreexistingPlacement(t *testing.T) {
	bus := telemetry.NewBus(2, 8)
	bus.SetCapacity(0, 4096)
	bus.SetCapacity(1, 4096)
	team := &fakeActuator{fakeTeam: fakeTeam{size: 6, floor: 2}}
	team.ApplyPlacement([]int{5, 1}) // hand-placed skew
	before := team.placements
	cfg := DefaultConfig(6, 6)
	cfg.Placement = true
	c := New(bus, team, cfg)
	c.Tick(0)
	// Symmetric (zero) demand: the apportionment is the balanced [3 3],
	// which differs from the real [5 1] baseline, so the first eligible
	// tick past the cooldown must rebalance.
	now := 0.0
	for i := 0; i < 40 && team.placements == before; i++ {
		now += 0.001
		c.Tick(now)
	}
	if team.placements == before {
		t.Fatal("pre-existing skew never corrected")
	}
	if team.plan[0] != 3 || team.plan[1] != 3 {
		t.Fatalf("correction applied %v, want [3 3]", team.plan)
	}
}

// Rebalances are rate-limited by the cooldown: two consecutive ticks with
// flipped demand must not both actuate.
func TestRebalanceCooldown(t *testing.T) {
	bus, team, c := newPlacementRig(6, 6)
	c.Tick(0)
	now := 0.0
	step := func(q int) {
		bus.SetOccupancy(q, 0.3*4096)
		bus.SetOccupancy(1-q, 0)
		now += 0.001
		c.Tick(now)
	}
	for i := 0; i < 40; i++ {
		step(0)
	}
	count := team.placements
	step(1) // inside the cooldown window of the last rebalance? force two quick flips
	step(0)
	step(1)
	if team.placements > count+1 {
		t.Fatalf("placements went %d -> %d across three ticks (cooldown %.3fs broken)",
			count, team.placements, c.Config().Cooldown)
	}
}

// The slope feedforward must pre-provision on a rising occupancy edge that
// is still below the target — the plain PI would not have grown yet.
func TestFeedforwardPreProvisionsOnRisingEdge(t *testing.T) {
	mk := func(gain float64) (*telemetry.Bus, *fakeTeam, *Controller) {
		bus := telemetry.NewBus(2, 8)
		bus.SetCapacity(0, 4096)
		bus.SetCapacity(1, 4096)
		team := &fakeTeam{size: 2, floor: 2}
		cfg := DefaultConfig(2, 8)
		cfg.SlopeGain = gain
		return bus, team, New(bus, team, cfg)
	}
	ramp := func(bus *telemetry.Bus, c *Controller) (grewAt float64, slopeSeen float64) {
		c.Tick(0)
		now := 0.0
		for i := 1; i <= 40; i++ {
			// Rising edge: occupancy climbs 1% of the ring per tick — it
			// crosses the 10% target at tick 10, but the plain PI's
			// deadband only clears around 17.5% while the slope term sees
			// the climb from the first ticks.
			bus.SetOccupancy(0, float64(i)*0.01*4096)
			now += 0.001
			d := c.Tick(now)
			if d.Slope > slopeSeen {
				slopeSeen = d.Slope
			}
			if d.Resized && grewAt == 0 {
				grewAt = now
			}
		}
		return grewAt, slopeSeen
	}
	busFF, _, cFF := mk(32)
	grewAtFF, slope := ramp(busFF, cFF)
	busPI, _, cPI := mk(0)
	grewAtPI, _ := ramp(busPI, cPI)
	if slope <= 0 {
		t.Fatal("no positive slope observed on a rising edge")
	}
	if grewAtFF == 0 {
		t.Fatal("feedforward never pre-provisioned on the edge")
	}
	// Both laws eventually saturate at the budget; the feedforward's whole
	// contribution is moving the *first* grow earlier on the climb.
	if grewAtPI != 0 && grewAtPI <= grewAtFF {
		t.Fatalf("plain PI grew at %.3fs, not later than feedforward's %.3fs", grewAtPI, grewAtFF)
	}
}

// The slope gauges republish to the bus for observers.
func TestSlopeGaugesPublished(t *testing.T) {
	bus, _, c := newRig(2, 8)
	c.Tick(0)
	bus.SetOccupancy(0, 0.2*4096)
	c.Tick(0.001)
	if bus.OccSlope(0) <= 0 {
		t.Fatalf("occupancy slope gauge = %v, want > 0 after a rise", bus.OccSlope(0))
	}
	var snap telemetry.Snapshot
	bus.Sample(&snap)
	if snap.OccSlope[0] != bus.OccSlope(0) {
		t.Fatal("snapshot does not carry the slope gauge")
	}
}

// Without Placement (or without an Actuator team), the controller keeps
// the scalar SetTeamSize path and Decisions carry no plan.
func TestScalarPathWithoutPlacement(t *testing.T) {
	bus, team, c := newRig(2, 8)
	c.Tick(0)
	bus.SetOccupancy(0, 0.5*4096)
	d := c.Tick(0.001)
	if !d.Resized || d.Plan != nil || d.Rebalanced {
		t.Fatalf("scalar path decision carries placement state: %+v", d)
	}
	if len(team.resizes) == 0 {
		t.Fatal("scalar resize not applied")
	}
}

func TestReportAccountsThreadSeconds(t *testing.T) {
	bus, team, c := newRig(2, 8)
	c.Tick(0)
	bus.SetOccupancy(0, 0)
	for i := 1; i <= 10; i++ {
		c.Tick(float64(i) * 0.001)
	}
	rep := c.Report(0.010)
	want := float64(team.size) * 0.010
	if diff := rep.ThreadSeconds - want; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("thread-seconds %.6f, want %.6f", rep.ThreadSeconds, want)
	}
	if rep.MeanThreads < 1.9 || rep.MeanThreads > 2.1 {
		t.Fatalf("mean threads %.2f, want ~2", rep.MeanThreads)
	}
	c.ResetStats(0.010)
	if rep := c.Report(0.010); rep.ThreadSeconds != 0 {
		t.Fatalf("reset window still holds %.6f thread-seconds", rep.ThreadSeconds)
	}
}

func TestArrivalRateGaugePublished(t *testing.T) {
	bus, _, c := newRig(2, 8)
	c.Tick(0) // calibration tick baselines the Rx counters
	bus.SetRx(0, 5000)
	bus.SetRx(1, 1000)
	c.Tick(0.001)
	if got, want := bus.ArrivalRate(0), 5000.0/0.001; got != want {
		t.Errorf("queue 0 arrival rate = %v, want %v", got, want)
	}
	if got, want := bus.ArrivalRate(1), 1000.0/0.001; got != want {
		t.Errorf("queue 1 arrival rate = %v, want %v", got, want)
	}
	// Next window at a different rate: the gauge tracks the delta, not the
	// cumulative counter.
	bus.SetRx(0, 5500)
	c.Tick(0.002)
	if got, want := bus.ArrivalRate(0), 500.0/0.001; got != want {
		t.Errorf("second-window rate = %v, want %v", got, want)
	}
}

func TestAvgOccSignalSwitch(t *testing.T) {
	// With AvgOcc the controller must read the time-averaged gauge and
	// ignore the point sample entirely.
	bus := telemetry.NewBus(2, 8)
	bus.SetCapacity(0, 4096)
	bus.SetCapacity(1, 4096)
	team := &fakeTeam{size: 2, floor: 2}
	cfg := DefaultConfig(2, 8)
	cfg.AvgOcc = true
	c := New(bus, team, cfg)
	c.Tick(0)
	// Point gauge screams, averaged gauge is calm: no growth.
	bus.SetOccupancy(1, 0.9*4096)
	bus.SetOccAvg(1, 0.05*4096)
	d := c.Tick(0.001)
	if d.Resized {
		t.Fatalf("grew on the point gauge despite AvgOcc: %+v", d)
	}
	// Averaged gauge spikes: growth.
	bus.SetOccAvg(1, 0.5*4096)
	d = c.Tick(0.002)
	if d.Applied <= 2 {
		t.Fatalf("no growth on averaged-occupancy spike: %+v", d)
	}
}

func newObjectiveRig(obj Objective, start int) (*telemetry.Bus, *fakeTeam, *Controller) {
	bus := telemetry.NewBus(2, 8)
	bus.SetCapacity(0, 4096)
	bus.SetCapacity(1, 4096)
	team := &fakeTeam{size: start, floor: 2}
	cfg := DefaultConfig(2, 8)
	cfg.Objective = obj
	return bus, team, New(bus, team, cfg)
}

// TestJoulesObjectivePrefersSmallerTeamAtEqualLoss: at a lossless trough
// where occupancy sits moderately above the thread-seconds target, the
// joules objective's inflated target (idle-core watts make small teams
// cheaper) must settle a strictly smaller team than the thread-seconds
// law does from the same signals.
func TestJoulesObjectivePrefersSmallerTeamAtEqualLoss(t *testing.T) {
	busTS, _, ts := newObjectiveRig(ObjectiveThreadSeconds, 6)
	busJ, _, j := newObjectiveRig(ObjectiveJoules, 6)
	ts.Tick(0)
	j.Tick(0)
	now := 0.0
	var lastTS, lastJ Decision
	for i := 0; i < 400; i++ {
		now += 0.001
		// Occupancy 13% of the ring: above the 10% thread-seconds target
		// (hold/grow pressure) but below the energy-inflated one at trough
		// duty (shrink pressure). No drops anywhere: equal, zero loss.
		for _, bus := range []*telemetry.Bus{busTS, busJ} {
			bus.SetOccupancy(0, 0.13*4096)
			bus.SetOccupancy(1, 0.13*4096)
		}
		lastTS = ts.Tick(now)
		lastJ = j.Tick(now)
	}
	if lastJ.Applied >= lastTS.Applied {
		t.Fatalf("joules team %d !< thread-seconds team %d at equal (zero) loss",
			lastJ.Applied, lastTS.Applied)
	}
	if lastJ.Applied < 2 {
		t.Fatalf("joules team %d under the floor", lastJ.Applied)
	}
}

// TestJoulesLossOverrideStillWins: under the joules objective, persistent
// loss must out-shout the energy saving exactly as it does thread-seconds
// — the override adds to the raw error, not the scaled target.
func TestJoulesLossOverrideStillWins(t *testing.T) {
	bus, _, c := newObjectiveRig(ObjectiveJoules, 2)
	c.Tick(0)
	bus.SetOccupancy(0, 0.05*4096) // below even the base target
	drops := uint64(0)
	now := 0.0
	grewTo := 0
	for i := 0; i < 20; i++ {
		drops += 500
		bus.SetDrops(0, drops)
		now += 0.001
		grewTo = c.Tick(now).Applied
	}
	if grewTo < 6 {
		t.Fatalf("sustained loss under joules objective only grew the team to %d of budget 8", grewTo)
	}
}

// TestWattsGaugeAndReportJoules checks the energy accounting spine: every
// tick models team watts (parked budget cores included), the report
// integrates them into joules, and a busier team models hotter.
func TestWattsGaugeAndReportJoules(t *testing.T) {
	bus, _, c := newObjectiveRig(ObjectiveThreadSeconds, 4)
	c.Tick(0)
	now := 0.0
	busy := 0.0
	var idleW, busyW float64
	cur := 0
	for i := 0; i < 100; i++ {
		now += 0.001
		// Hold occupancy on target so the team size stays put and the
		// watts gauge is a pure function of shape.
		bus.SetOccupancy(0, 0.10*4096)
		bus.SetOccupancy(1, 0.10*4096)
		d := c.Tick(now)
		idleW, cur = d.Watts, d.Applied
		if d.Duty != 0 {
			t.Fatalf("duty %v with no busy published", d.Duty)
		}
	}
	pc := c.Config().Power
	// cur members idling shallow + the rest of the budget parked deep,
	// core-only.
	wantIdle := float64(cur)*pc.IdleCore + float64(8-cur)*pc.DeepIdle
	if diff := idleW - wantIdle; diff < -1e-9 || diff > 1e-9 {
		t.Fatalf("idle watts = %v, want %v (team %d)", idleW, wantIdle, cur)
	}
	for i := 0; i < 100; i++ {
		now += 0.001
		busy += 4 * 0.001 // all four members flat out
		for th := 0; th < 4; th++ {
			bus.SetThreadBusy(th, busy/4)
		}
		busyW = c.Tick(now).Watts
	}
	if busyW <= idleW {
		t.Fatalf("busy watts %v <= idle watts %v", busyW, idleW)
	}
	rep := c.Report(now)
	if rep.Joules <= 0 || rep.MeanWatts <= idleW*0.5 || rep.MeanWatts >= busyW*1.5 {
		t.Fatalf("report joules=%v meanWatts=%v (idle %v, busy %v)", rep.Joules, rep.MeanWatts, idleW, busyW)
	}
}
