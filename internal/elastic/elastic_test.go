package elastic

import (
	"testing"

	"metronome/internal/telemetry"
)

// fakeTeam records resizes and clamps to a queue floor like the substrates.
type fakeTeam struct {
	size    int
	floor   int
	resizes []int
}

func (f *fakeTeam) TeamSize() int { return f.size }
func (f *fakeTeam) SetTeamSize(m int) int {
	if m < f.floor {
		m = f.floor
	}
	f.size = m
	f.resizes = append(f.resizes, m)
	return m
}

func newRig(minThreads, budget int) (*telemetry.Bus, *fakeTeam, *Controller) {
	bus := telemetry.NewBus(2, budget)
	bus.SetCapacity(0, 4096)
	bus.SetCapacity(1, 4096)
	team := &fakeTeam{size: minThreads, floor: 2}
	cfg := DefaultConfig(minThreads, budget)
	return bus, team, New(bus, team, cfg)
}

func TestGrowsOnOccupancySpike(t *testing.T) {
	bus, team, c := newRig(2, 8)
	c.Tick(0) // calibration tick
	// Flash crowd: the worst queue's wake occupancy spikes to 40% of the
	// ring against a 10% target.
	bus.SetOccupancy(1, 0.4*4096)
	d := c.Tick(0.001)
	if d.Applied <= 2 {
		t.Fatalf("no growth on 4x occupancy target: %+v", d)
	}
	if team.size != d.Applied {
		t.Fatalf("team %d != applied %d", team.size, d.Applied)
	}
}

func TestLossDrivesIntegralGrowth(t *testing.T) {
	bus, _, c := newRig(2, 8)
	c.Tick(0)
	// Occupancy at target (no proportional pressure) but persistent loss.
	bus.SetOccupancy(0, 0.10*4096)
	drops := uint64(0)
	now := 0.0
	grewTo := 0
	for i := 0; i < 20; i++ {
		drops += 500
		bus.SetDrops(0, drops)
		now += 0.001
		d := c.Tick(now)
		grewTo = d.Applied
	}
	if grewTo < 6 {
		t.Fatalf("sustained loss only grew the team to %d of budget 8", grewTo)
	}
}

func TestShrinksAfterTroughWithCooldown(t *testing.T) {
	bus, team, c := newRig(2, 8)
	c.Tick(0)
	bus.SetOccupancy(0, 0.5*4096)
	now := 0.001
	c.Tick(now)
	peak := team.size
	if peak <= 2 {
		t.Fatalf("setup failed to grow (size %d)", peak)
	}
	// Trough: occupancy collapses. The integral must unwind and the team
	// shrink back — but never faster than one shrink per cooldown.
	bus.SetOccupancy(0, 0)
	cd := c.Config().Cooldown
	lastShrinkAt := -cd
	size := peak
	for i := 0; i < 2000 && size > 2; i++ {
		now += 0.001
		d := c.Tick(now)
		if d.Applied < size {
			if dt := d.At - lastShrinkAt; dt < cd {
				t.Fatalf("shrink after %.4fs, cooldown %.4fs", dt, cd)
			}
			lastShrinkAt = d.At
		}
		size = d.Applied
	}
	if size != 2 {
		t.Fatalf("team never shrank back to the floor: %d", size)
	}
}

func TestBudgetIsAHardCap(t *testing.T) {
	bus, team, c := newRig(2, 4)
	c.Tick(0)
	bus.SetOccupancy(0, 4096) // ring full
	bus.SetDrops(0, 1e6)
	now := 0.0
	for i := 0; i < 50; i++ {
		now += 0.001
		if d := c.Tick(now); d.Applied > 4 {
			t.Fatalf("budget 4 exceeded: %+v", d)
		}
	}
	if team.size > 4 {
		t.Fatalf("team %d over budget", team.size)
	}
}

func TestHysteresisHoldsInDeadband(t *testing.T) {
	bus, team, c := newRig(3, 8)
	c.Tick(0)
	// Occupancy exactly at target: zero error, the team must not move.
	bus.SetOccupancy(0, 0.10*4096)
	bus.SetOccupancy(1, 0.10*4096)
	now := 0.0
	for i := 0; i < 200; i++ {
		now += 0.001
		c.Tick(now)
	}
	if got := len(team.resizes); got != 0 {
		t.Fatalf("%d resizes on zero error (deadband broken): %v", got, team.resizes)
	}
}

func TestCounterResetResyncsSilently(t *testing.T) {
	bus, _, c := newRig(2, 8)
	c.Tick(0)
	bus.SetDrops(0, 1000)
	c.Tick(0.001)
	// Warm-up alignment resets the substrate counters; the next delta must
	// not underflow into a huge unsigned loss.
	bus.SetDrops(0, 0)
	d := c.Tick(0.002)
	if d.LossDelta != 0 {
		t.Fatalf("loss delta after counter reset = %d, want 0", d.LossDelta)
	}
}

func TestReportAccountsThreadSeconds(t *testing.T) {
	bus, team, c := newRig(2, 8)
	c.Tick(0)
	bus.SetOccupancy(0, 0)
	for i := 1; i <= 10; i++ {
		c.Tick(float64(i) * 0.001)
	}
	rep := c.Report(0.010)
	want := float64(team.size) * 0.010
	if diff := rep.ThreadSeconds - want; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("thread-seconds %.6f, want %.6f", rep.ThreadSeconds, want)
	}
	if rep.MeanThreads < 1.9 || rep.MeanThreads > 2.1 {
		t.Fatalf("mean threads %.2f, want ~2", rep.MeanThreads)
	}
	c.ResetStats(0.010)
	if rep := c.Report(0.010); rep.ThreadSeconds != 0 {
		t.Fatalf("reset window still holds %.6f thread-seconds", rep.ThreadSeconds)
	}
}
