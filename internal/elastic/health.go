package elastic

// This file is the health layer: the self-healing half of the control
// plane. The size and placement laws in elastic.go assume the telemetry
// they sample is true and the members they provision actually serve; this
// file drops both assumptions. Staleness is detected from the bus's
// per-queue publish sequences and member liveness from the per-thread
// heartbeat gauges — both by value change, never by clock arithmetic, so
// one detector serves the sim substrate (virtual seconds) and the live
// runner (elapsed seconds) without cross-clock comparisons.

import "metronome/internal/telemetry"

// healthState carries the detectors' memory between ticks.
type healthState struct {
	homer Homer // nil when the substrate cannot map threads to homes

	prevPub  []uint64 // last-seen publish sequence per queue
	staleFor []int    // consecutive ticks queue q's sequence held still
	prevHB   []float64
	hbSame   []int  // consecutive ticks thread t's heartbeat held still
	exiled   []bool // latched per member until its heartbeat moves again
	grace    int    // ticks to hold exile after an actuation (re-home wobble)

	tokens   float64 // actuation token bucket (MaxActuationsPerSec)
	tokensAt float64

	// Window stats backing Report.
	exiles      int
	safeTicks   int
	staleQTicks int
	panics      int
	panicMsg    string // first watchdog-recovered panic's rendered value
	panicStack  string // and its goroutine stack
}

func newHealthState(bus *telemetry.Bus) *healthState {
	return &healthState{
		prevPub:  make([]uint64, bus.Queues()),
		staleFor: make([]int, bus.Queues()),
		prevHB:   make([]float64, bus.Threads()),
		hbSame:   make([]int, bus.Threads()),
		exiled:   make([]bool, bus.Threads()),
		tokens:   2, // allow a short recovery burst from a cold bucket
	}
}

// seed baselines the detectors from the calibration tick's snapshot.
func (h *healthState) seed(snap *telemetry.Snapshot, now float64) {
	copy(h.prevPub, snap.PubSeq)
	copy(h.prevHB, snap.Heartbeat)
	h.tokensAt = now
}

// stale reports whether queue q's gauges are past the staleness bound.
func (h *healthState) stale(q, bound int) bool {
	return h.staleFor[q] >= bound
}

// anyExiled reports whether an exile latch is live. While one is, the size
// and placement laws must not shrink or rebalance: the latched member is
// provisioned but serving nothing, so the PI's occupancy view overcounts
// capacity by exactly the member the exile reinforcement replaced —
// unwinding it would re-starve the straggler's queue. A permanently dead
// member keeps its latch (its heartbeat never moves again), so the
// reinforcement persists for as long as the fault does.
func (h *healthState) anyExiled() bool {
	for _, e := range h.exiled {
		if e {
			return true
		}
	}
	return false
}

// healthObserve advances the staleness and liveness detectors for this tick
// and records what they saw in d. It returns true when every queue is stale
// — the bus went dark and the tick must fall back to SafeTeam.
func (c *Controller) healthObserve(d *Decision, cur int) bool {
	h := c.health
	staleCount := 0
	for q := 0; q < c.bus.Queues(); q++ {
		if seq := c.snap.PubSeq[q]; seq != h.prevPub[q] {
			h.prevPub[q] = seq
			h.staleFor[q] = 0
		} else {
			h.staleFor[q]++
		}
		if h.stale(q, c.cfg.StaleTicks) {
			d.StaleMask |= 1 << uint(q%64)
			staleCount++
			h.staleQTicks++
		}
	}
	for i := range h.prevHB {
		hb := c.snap.Heartbeat[i]
		if hb != h.prevHB[i] {
			h.prevHB[i] = hb
			h.hbSame[i] = 0
			if h.exiled[i] {
				// The straggler's heartbeat moved: the stall ended or the
				// member was revived. Clear the latch — the PI unwinds the
				// reinforcement on its own once occupancy settles.
				h.exiled[i] = false
				d.Recovered = append(d.Recovered, i)
			}
			continue
		}
		if hb == 0 || i >= cur {
			// Never beat (spare slot) or outside the active team: a parked
			// member's silence is policy, not a fault.
			h.hbSame[i] = 0
			continue
		}
		h.hbSame[i]++
		if h.hbSame[i] >= c.cfg.HeartbeatTicks && !h.exiled[i] && h.grace == 0 {
			d.Unhealthy = append(d.Unhealthy, i)
		}
	}
	if h.grace > 0 {
		h.grace--
	}
	return staleCount > 0 && staleCount == c.bus.Queues()
}

// healthSafeMode is the all-stale fallback: with no trustworthy signal,
// hold the team and grow it toward the configured safe static size.
func (c *Controller) healthSafeMode(d *Decision, now float64, cur int) {
	h := c.health
	h.safeTicks++
	want := c.cfg.SafeTeam
	if want < cur {
		want = cur // grow-only: never shrink on no information
	}
	d.Want = want
	if want != cur && c.takeToken(now) {
		// The caller records the resize (counter, integral sync, grace):
		// safe-mode ticks return through the same finishing tail.
		d.Applied = c.actuate(want, d)
		d.Resized = d.Applied != cur
	}
}

// healthExile reinforces the home queues of this tick's stragglers: each
// unhealthy member's home gets one extra member through a corrective plan
// (the scalar grow fallback when the substrate cannot place), clamped to
// Budget. The member itself stays provisioned — a stall ends, a death is
// reclaimed by the PI's shrink path once the exile latch clears.
func (c *Controller) healthExile(d *Decision, now float64) {
	h := c.health
	if d.SafeMode || len(d.Unhealthy) == 0 {
		return
	}
	cur := d.Applied
	for _, id := range d.Unhealthy {
		if cur >= c.cfg.Budget {
			break // no headroom: latch nothing, retry when budget frees up
		}
		if !c.takeToken(now) {
			break
		}
		applied := cur
		if c.act != nil && h.homer != nil {
			plan := append(c.planBuf[:0], c.lastPlan...)
			home := h.homer.ThreadHome(id)
			if home >= 0 && home < len(plan) {
				plan[home]++
				applied = c.applyPlan(plan, d)
			}
		} else {
			applied = c.team.SetTeamSize(cur + 1)
		}
		if applied == cur {
			continue
		}
		h.exiled[id] = true
		h.exiles++
		d.Exiled = append(d.Exiled, id)
		cur = applied
	}
	if cur != d.Applied {
		// Mark the tick resized: the caller's tail does the resize
		// bookkeeping (counter, integral sync, grace arming) exactly once.
		d.Applied = cur
		d.Resized = true
	}
}

// takeToken charges the actuation rate limiter; always true when the limit
// or the health layer is off. The bucket holds at most two tokens, so a
// controller recovering from an outage cannot burst-actuate through the
// stale state it wakes up to.
func (c *Controller) takeToken(now float64) bool {
	if c.health == nil || c.cfg.MaxActuationsPerSec <= 0 {
		return true
	}
	h := c.health
	h.tokens += (now - h.tokensAt) * c.cfg.MaxActuationsPerSec
	if h.tokens > 2 {
		h.tokens = 2
	}
	h.tokensAt = now
	if h.tokens < 1 {
		c.cfg.Recorder.RecordRateLimit(now)
		return false
	}
	h.tokens--
	return true
}
