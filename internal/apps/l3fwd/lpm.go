// Package l3fwd reimplements DPDK's L3 Forwarding sample application in its
// longest-prefix-match flavour (the computation-heavier of its two modes,
// which is the one the paper evaluates): a DIR-24-8 LPM table, MAC
// rewriting, TTL decrement with incremental checksum update.
package l3fwd

import (
	"errors"
	"fmt"

	"metronome/internal/packet"
)

// DIR-24-8 constants, as in rte_lpm.
const (
	tbl24Size  = 1 << 24
	tbl8Groups = 256 // allocatable /24-expansion groups
	tbl8Size   = 256

	flagValid = 1 << 15 // entry holds a route (or a tbl8 index)
	flagExt   = 1 << 14 // entry points into tbl8
	valueMask = flagExt - 1
)

var (
	ErrBadPrefix   = errors.New("l3fwd: prefix length must be 0..32")
	ErrNoTbl8      = errors.New("l3fwd: out of tbl8 groups")
	ErrNoRoute     = errors.New("l3fwd: no route")
	ErrHopTooLarge = errors.New("l3fwd: next hop exceeds 14 bits")
)

type rule struct {
	prefix packet.Addr
	length int
	hop    uint16
}

// LPM is a DIR-24-8 longest-prefix-match table: one 16M-entry direct table
// for the first 24 bits and on-demand /8 expansion tables, giving the
// 1-or-2 memory-access lookups that let DPDK route at line rate.
type LPM struct {
	tbl24   []uint16
	depth24 []uint8 // prefix length that wrote each tbl24 entry
	tbl8    []uint16
	depth8  []uint8
	used    []bool // tbl8 group allocation map
	rules   map[ruleKey]uint16
}

type ruleKey struct {
	prefix packet.Addr
	length int
}

// NewLPM allocates an empty table (about 48 MiB for tbl24+depths, on the
// order of rte_lpm's footprint).
func NewLPM() *LPM {
	return &LPM{
		tbl24:   make([]uint16, tbl24Size),
		depth24: make([]uint8, tbl24Size),
		tbl8:    make([]uint16, tbl8Groups*tbl8Size),
		depth8:  make([]uint8, tbl8Groups*tbl8Size),
		used:    make([]bool, tbl8Groups),
		rules:   make(map[ruleKey]uint16),
	}
}

func mask(length int) packet.Addr {
	if length == 0 {
		return 0
	}
	return packet.Addr(^uint32(0) << (32 - uint(length)))
}

// Add installs prefix/length -> hop, replacing any identical rule.
func (l *LPM) Add(prefix packet.Addr, length int, hop uint16) error {
	if length < 0 || length > 32 {
		return ErrBadPrefix
	}
	if hop > valueMask {
		return ErrHopTooLarge
	}
	prefix &= mask(length)
	l.rules[ruleKey{prefix, length}] = hop
	return l.install(prefix, length, hop)
}

// install writes a rule into the tables without touching deeper (more
// specific) existing entries.
func (l *LPM) install(prefix packet.Addr, length int, hop uint16) error {
	if length <= 24 {
		first := uint32(prefix) >> 8
		count := uint32(1) << (24 - uint(length))
		for i := first; i < first+count; i++ {
			e := l.tbl24[i]
			if e&flagExt != 0 {
				// The /24 is expanded: update the group's entries that are
				// not more specific than us.
				l.fillTbl8(int(e&valueMask), length, hop)
				continue
			}
			// Overwrite only if we are at least as specific as what's there.
			if e&flagValid == 0 || l.depth24[i] <= uint8(length) {
				l.tbl24[i] = flagValid | hop
				l.depth24[i] = uint8(length)
			}
		}
		return nil
	}
	// length 25..32: needs (possibly) a tbl8 group for its /24.
	idx24 := uint32(prefix) >> 8
	e := l.tbl24[idx24]
	var group int
	if e&flagExt == 0 {
		g, err := l.allocTbl8()
		if err != nil {
			return err
		}
		group = g
		// Seed the group with the previous /24 coverage.
		var seed uint16
		var seedDepth uint8
		if e&flagValid != 0 {
			seed = flagValid | e&valueMask
			seedDepth = l.depth24[idx24]
		}
		base := group * tbl8Size
		for i := 0; i < tbl8Size; i++ {
			l.tbl8[base+i] = seed
			l.depth8[base+i] = seedDepth
		}
		l.tbl24[idx24] = flagValid | flagExt | uint16(group)
	} else {
		group = int(e & valueMask)
	}
	base := group * tbl8Size
	first := int(uint32(prefix) >> 0 & 0xff)
	count := 1 << (32 - uint(length))
	for i := first; i < first+count; i++ {
		if l.tbl8[base+i]&flagValid == 0 || l.depth8[base+i] <= uint8(length) {
			l.tbl8[base+i] = flagValid | hop
			l.depth8[base+i] = uint8(length)
		}
	}
	return nil
}

// fillTbl8 overwrites the entries of a group that are shallower than depth.
func (l *LPM) fillTbl8(group, depth int, hop uint16) {
	base := group * tbl8Size
	for i := 0; i < tbl8Size; i++ {
		if l.tbl8[base+i]&flagValid == 0 || l.depth8[base+i] <= uint8(depth) {
			l.tbl8[base+i] = flagValid | hop
			l.depth8[base+i] = uint8(depth)
		}
	}
}

func (l *LPM) allocTbl8() (int, error) {
	for g, u := range l.used {
		if !u {
			l.used[g] = true
			return g, nil
		}
	}
	return 0, ErrNoTbl8
}

// Delete removes prefix/length and restores coverage from the next-best
// remaining rule, rebuilding the affected range (rte_lpm does the same
// "find parent rule" dance).
func (l *LPM) Delete(prefix packet.Addr, length int) error {
	if length < 0 || length > 32 {
		return ErrBadPrefix
	}
	prefix &= mask(length)
	if _, ok := l.rules[ruleKey{prefix, length}]; !ok {
		return ErrNoRoute
	}
	delete(l.rules, ruleKey{prefix, length})
	// Rebuild from scratch in rule-length order. Simpler than surgical
	// repair and still O(rules * range); deletions are control-plane rare.
	for i := range l.tbl24 {
		l.tbl24[i] = 0
		l.depth24[i] = 0
	}
	for i := range l.tbl8 {
		l.tbl8[i] = 0
		l.depth8[i] = 0
	}
	for g := range l.used {
		l.used[g] = false
	}
	for length := 0; length <= 32; length++ {
		for k, hop := range l.rules {
			if k.length == length {
				if err := l.install(k.prefix, k.length, hop); err != nil {
					return fmt.Errorf("l3fwd: rebuild: %w", err)
				}
			}
		}
	}
	return nil
}

// Lookup resolves the next hop for ip with at most two memory accesses.
func (l *LPM) Lookup(ip packet.Addr) (uint16, bool) {
	e := l.tbl24[uint32(ip)>>8]
	if e&flagValid == 0 {
		return 0, false
	}
	if e&flagExt == 0 {
		return e & valueMask, true
	}
	e8 := l.tbl8[int(e&valueMask)*tbl8Size+int(ip&0xff)]
	if e8&flagValid == 0 {
		return 0, false
	}
	return e8 & valueMask, true
}

// Rules returns the number of installed rules.
func (l *LPM) Rules() int { return len(l.rules) }
