package l3fwd

import (
	"testing"
	"testing/quick"

	"metronome/internal/apps"
	"metronome/internal/mbuf"
	"metronome/internal/packet"
	"metronome/internal/xrand"
)

func addr(a, b, c, d byte) packet.Addr { return packet.AddrFrom4(a, b, c, d) }

func TestLPMBasicLookup(t *testing.T) {
	l := NewLPM()
	if err := l.Add(addr(10, 0, 0, 0), 8, 1); err != nil {
		t.Fatal(err)
	}
	if err := l.Add(addr(10, 1, 0, 0), 16, 2); err != nil {
		t.Fatal(err)
	}
	if err := l.Add(addr(10, 1, 2, 0), 24, 3); err != nil {
		t.Fatal(err)
	}
	if err := l.Add(addr(10, 1, 2, 3), 32, 4); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		ip  packet.Addr
		hop uint16
		ok  bool
	}{
		{addr(10, 9, 9, 9), 1, true},  // /8
		{addr(10, 1, 9, 9), 2, true},  // /16 beats /8
		{addr(10, 1, 2, 9), 3, true},  // /24 beats /16
		{addr(10, 1, 2, 3), 4, true},  // /32 beats /24
		{addr(11, 0, 0, 1), 0, false}, // no route
		{addr(9, 255, 255, 255), 0, false},
	}
	for _, c := range cases {
		hop, ok := l.Lookup(c.ip)
		if ok != c.ok || (ok && hop != c.hop) {
			t.Errorf("Lookup(%v) = %d,%v want %d,%v", c.ip, hop, ok, c.hop, c.ok)
		}
	}
}

func TestLPMDefaultRoute(t *testing.T) {
	l := NewLPM()
	if err := l.Add(0, 0, 7); err != nil {
		t.Fatal(err)
	}
	for _, ip := range []packet.Addr{0, addr(1, 2, 3, 4), ^packet.Addr(0)} {
		if hop, ok := l.Lookup(ip); !ok || hop != 7 {
			t.Errorf("default route missed for %v", ip)
		}
	}
}

func TestLPMInsertionOrderIndependence(t *testing.T) {
	// Installing /8 after a /32 must not clobber the /32.
	l := NewLPM()
	if err := l.Add(addr(10, 1, 2, 3), 32, 4); err != nil {
		t.Fatal(err)
	}
	if err := l.Add(addr(10, 0, 0, 0), 8, 1); err != nil {
		t.Fatal(err)
	}
	if hop, ok := l.Lookup(addr(10, 1, 2, 3)); !ok || hop != 4 {
		t.Errorf("/32 lost after later /8 insert: %d", hop)
	}
	if hop, ok := l.Lookup(addr(10, 1, 2, 4)); !ok || hop != 1 {
		t.Errorf("/8 coverage broken: %d", hop)
	}
	// And the reverse case for a deep (>24) pair.
	l2 := NewLPM()
	l2.Add(addr(20, 0, 0, 128), 25, 9)
	l2.Add(addr(20, 0, 0, 0), 24, 8)
	if hop, _ := l2.Lookup(addr(20, 0, 0, 200)); hop != 9 {
		t.Errorf("/25 lost after later /24: %d", hop)
	}
	if hop, _ := l2.Lookup(addr(20, 0, 0, 5)); hop != 8 {
		t.Errorf("/24 half broken: %d", hop)
	}
}

func TestLPMDeleteRestoresParent(t *testing.T) {
	l := NewLPM()
	l.Add(addr(10, 0, 0, 0), 8, 1)
	l.Add(addr(10, 1, 0, 0), 16, 2)
	if err := l.Delete(addr(10, 1, 0, 0), 16); err != nil {
		t.Fatal(err)
	}
	if hop, ok := l.Lookup(addr(10, 1, 9, 9)); !ok || hop != 1 {
		t.Errorf("parent /8 not restored: %d,%v", hop, ok)
	}
	if err := l.Delete(addr(99, 0, 0, 0), 8); err != ErrNoRoute {
		t.Errorf("deleting absent rule: %v", err)
	}
}

func TestLPMDeepDelete(t *testing.T) {
	l := NewLPM()
	l.Add(addr(10, 0, 0, 0), 24, 1)
	l.Add(addr(10, 0, 0, 64), 26, 2)
	if err := l.Delete(addr(10, 0, 0, 64), 26); err != nil {
		t.Fatal(err)
	}
	if hop, _ := l.Lookup(addr(10, 0, 0, 70)); hop != 1 {
		t.Errorf("tbl8 range not restored: %d", hop)
	}
}

func TestLPMValidation(t *testing.T) {
	l := NewLPM()
	if err := l.Add(0, 33, 1); err != ErrBadPrefix {
		t.Errorf("bad prefix: %v", err)
	}
	if err := l.Add(0, 8, 1<<14); err != ErrHopTooLarge {
		t.Errorf("hop too large: %v", err)
	}
}

func TestLPMAgainstLinearScan(t *testing.T) {
	// Property test: LPM lookups agree with a brute-force longest-match
	// over the rule list.
	if err := quick.Check(func(seed uint64) bool {
		r := xrand.New(seed)
		l := NewLPM()
		type rl struct {
			p   packet.Addr
			len int
			hop uint16
		}
		var rules []rl
		for i := 0; i < 30; i++ {
			length := r.Intn(33)
			p := packet.Addr(r.Uint64()) & mask(length)
			hop := uint16(r.Intn(100))
			if l.Add(p, length, hop) != nil {
				return false
			}
			// Later duplicates replace earlier ones in both models.
			filtered := rules[:0]
			for _, x := range rules {
				if !(x.p == p && x.len == length) {
					filtered = append(filtered, x)
				}
			}
			rules = append(filtered, rl{p, length, hop})
		}
		for trial := 0; trial < 200; trial++ {
			ip := packet.Addr(r.Uint64())
			var best *rl
			for i := range rules {
				x := &rules[i]
				if ip&mask(x.len) == x.p {
					if best == nil || x.len > best.len {
						best = x
					}
				}
			}
			hop, ok := l.Lookup(ip)
			if best == nil {
				if ok {
					return false
				}
			} else if !ok || hop != best.hop {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

func buildFwd(t *testing.T) *Forwarder {
	t.Helper()
	f := New([]Port{
		{MAC: packet.MAC{2, 0, 0, 0, 0, 1}, GwMAC: packet.MAC{2, 0, 0, 0, 1, 1}},
		{MAC: packet.MAC{2, 0, 0, 0, 0, 2}, GwMAC: packet.MAC{2, 0, 0, 0, 1, 2}},
	})
	if err := f.Table.Add(addr(192, 168, 0, 0), 16, 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Table.Add(addr(10, 0, 0, 0), 8, 1); err != nil {
		t.Fatal(err)
	}
	return f
}

func makePkt(t *testing.T, pool *mbuf.Pool, dst packet.Addr) *mbuf.Mbuf {
	t.Helper()
	m, err := pool.Get()
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 128)
	frame, err := packet.BuildUDP(buf, 64, addr(1, 2, 3, 4), dst, 1000, 2000)
	if err != nil {
		t.Fatal(err)
	}
	m.SetFrame(frame)
	return m
}

func TestForwarderRoutesAndRewrites(t *testing.T) {
	f := buildFwd(t)
	pool := mbuf.NewPool(4)
	m := makePkt(t, pool, addr(10, 5, 5, 5))
	if v := f.Process(m); v != apps.Forward {
		t.Fatalf("verdict = %v", v)
	}
	if m.Meta != 1 {
		t.Errorf("out port = %d", m.Meta)
	}
	var p packet.Parsed
	if err := p.Parse(m.Bytes()); err != nil {
		t.Fatal(err)
	}
	if p.Eth.Src != f.Ports[1].MAC || p.Eth.Dst != f.Ports[1].GwMAC {
		t.Error("MACs not rewritten")
	}
	if p.IP.TTL != 63 {
		t.Errorf("TTL = %d", p.IP.TTL)
	}
	// The incremental checksum must still verify.
	if !packet.VerifyChecksum(m.Bytes()[packet.EthHeaderLen:]) {
		t.Error("checksum invalid after TTL decrement")
	}
	if f.Forwarded != 1 {
		t.Errorf("forwarded = %d", f.Forwarded)
	}
	m.Free()
}

func TestForwarderDropsNoRoute(t *testing.T) {
	f := buildFwd(t)
	pool := mbuf.NewPool(4)
	m := makePkt(t, pool, addr(172, 16, 0, 1))
	if v := f.Process(m); v != apps.Drop {
		t.Fatalf("verdict = %v", v)
	}
	if f.NoRoute != 1 {
		t.Errorf("noroute = %d", f.NoRoute)
	}
	m.Free()
}

func TestForwarderDropsExpiredTTL(t *testing.T) {
	f := buildFwd(t)
	pool := mbuf.NewPool(4)
	m := makePkt(t, pool, addr(10, 0, 0, 1))
	m.Bytes()[packet.EthHeaderLen+8] = 1 // TTL=1
	if v := f.Process(m); v != apps.Drop {
		t.Fatalf("verdict = %v", v)
	}
	if f.Expired != 1 {
		t.Errorf("expired = %d", f.Expired)
	}
	m.Free()
}

func TestForwarderDropsMalformed(t *testing.T) {
	f := buildFwd(t)
	pool := mbuf.NewPool(4)
	m, _ := pool.Get()
	m.SetFrame([]byte{1, 2, 3})
	if v := f.Process(m); v != apps.Drop {
		t.Fatalf("verdict = %v", v)
	}
	if f.Malformed != 1 {
		t.Errorf("malformed = %d", f.Malformed)
	}
	m.Free()
}

func TestServiceRateCalibration(t *testing.T) {
	f := New(nil)
	mu := apps.ServiceRate(f, 2.1)
	// 70 cycles at 2.1 GHz = 30 Mpps: the µ used across the experiments.
	if mu < 29e6 || mu > 31e6 {
		t.Errorf("l3fwd service rate = %v", mu)
	}
}

func BenchmarkLPMLookup(b *testing.B) {
	l := NewLPM()
	r := xrand.New(1)
	for i := 0; i < 10000; i++ {
		length := 8 + r.Intn(25)
		l.Add(packet.Addr(r.Uint64())&mask(length), length, uint16(r.Intn(256)))
	}
	ips := make([]packet.Addr, 1024)
	for i := range ips {
		ips[i] = packet.Addr(r.Uint64())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Lookup(ips[i&1023])
	}
}

func BenchmarkForwarderProcess(b *testing.B) {
	f := New([]Port{{}, {}})
	f.Table.Add(addr(10, 0, 0, 0), 8, 1)
	pool := mbuf.NewPool(2)
	m, _ := pool.Get()
	buf := make([]byte, 128)
	frame, _ := packet.BuildUDP(buf, 64, addr(1, 2, 3, 4), addr(10, 0, 0, 1), 1, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.SetFrame(frame)
		f.Process(m)
	}
}
