package l3fwd

import (
	"encoding/binary"

	"metronome/internal/apps"
	"metronome/internal/mbuf"
	"metronome/internal/packet"
)

// cyclesPerPacket is the calibrated per-packet cost of l3fwd-LPM inside a
// DPDK burst at 2.1 GHz: rx descriptor handling, one LPM lookup, MAC
// rewrite, TTL/checksum update and tx enqueue — about 70 cycles amortised,
// i.e. µ ≈ 29.8 Mpps, consistent with Table I's B ≈ V at 14.88 Mpps
// (ρ ≈ 0.5). See EXPERIMENTS.md.
const cyclesPerPacket = 70

// Port describes one output port of the forwarder.
type Port struct {
	MAC   packet.MAC
	GwMAC packet.MAC // next-hop station
}

// Forwarder is the l3fwd application: an LPM table plus per-port L2 data.
type Forwarder struct {
	Table *LPM
	Ports []Port

	// Counters.
	Forwarded, NoRoute, Malformed, Expired int64
}

// New builds a forwarder with the given output ports.
func New(ports []Port) *Forwarder {
	return &Forwarder{Table: NewLPM(), Ports: ports}
}

// Name implements apps.Processor.
func (f *Forwarder) Name() string { return "l3fwd-lpm" }

// CyclesPerPacket implements apps.Processor.
func (f *Forwarder) CyclesPerPacket() float64 { return cyclesPerPacket }

// Process implements apps.Processor: parse, LPM lookup, rewrite L2, age
// TTL with an incremental checksum update (RFC 1624), emit on the port in
// Meta.
func (f *Forwarder) Process(m *mbuf.Mbuf) apps.Verdict {
	frame := m.Bytes()
	var p packet.Parsed
	if err := p.Parse(frame); err != nil {
		f.Malformed++
		return apps.Drop
	}
	if p.IP.TTL <= 1 {
		f.Expired++
		return apps.Drop
	}
	hop, ok := f.Table.Lookup(p.IP.Dst)
	if !ok || int(hop) >= len(f.Ports) {
		f.NoRoute++
		return apps.Drop
	}
	port := f.Ports[hop]
	// L2 rewrite in place.
	copy(frame[0:6], port.GwMAC[:])
	copy(frame[6:12], port.MAC[:])
	// TTL decrement + incremental checksum (RFC 1624: HC' = HC + m - m').
	ipOff := packet.EthHeaderLen
	old := binary.BigEndian.Uint16(frame[ipOff+8 : ipOff+10]) // TTL|proto
	frame[ipOff+8]--
	newv := binary.BigEndian.Uint16(frame[ipOff+8 : ipOff+10])
	csum := binary.BigEndian.Uint16(frame[ipOff+10 : ipOff+12])
	updated := incrementalChecksum(csum, old, newv)
	binary.BigEndian.PutUint16(frame[ipOff+10:ipOff+12], updated)

	m.Key = p.Key
	m.Meta = uint64(hop)
	f.Forwarded++
	return apps.Forward
}

// ProcessBurst implements apps.BurstProcessor natively: the per-packet path
// decodes every layer into a ~140-byte Parsed (zeroed per call) and pays an
// interface dispatch per packet; the burst path walks the raw header offsets
// via packet.ParseLite — reading only the ethertype, version/IHL, TotalLen,
// TTL, addresses and ports the forwarder branches on — and dispatches once
// per burst. Verdicts, counters and frame mutations are byte-identical to
// Process on any input stream (test-enforced), and the loop allocates
// nothing.
func (f *Forwarder) ProcessBurst(ms []*mbuf.Mbuf, verdicts []apps.Verdict) {
	for i, m := range ms {
		frame := m.Bytes()
		var l packet.Lite
		if err := packet.ParseLite(frame, &l); err != nil {
			f.Malformed++
			verdicts[i] = apps.Drop
			continue
		}
		if l.TTL <= 1 {
			f.Expired++
			verdicts[i] = apps.Drop
			continue
		}
		hop, ok := f.Table.Lookup(l.Key.Dst)
		if !ok || int(hop) >= len(f.Ports) {
			f.NoRoute++
			verdicts[i] = apps.Drop
			continue
		}
		port := &f.Ports[hop]
		copy(frame[0:6], port.GwMAC[:])
		copy(frame[6:12], port.MAC[:])
		ipOff := packet.EthHeaderLen
		old := binary.BigEndian.Uint16(frame[ipOff+8 : ipOff+10])
		frame[ipOff+8]--
		newv := binary.BigEndian.Uint16(frame[ipOff+8 : ipOff+10])
		csum := binary.BigEndian.Uint16(frame[ipOff+10 : ipOff+12])
		binary.BigEndian.PutUint16(frame[ipOff+10:ipOff+12], incrementalChecksum(csum, old, newv))

		m.Key = l.Key
		m.Meta = uint64(hop)
		f.Forwarded++
		verdicts[i] = apps.Forward
	}
}

// incrementalChecksum applies RFC 1624 eq. 3: HC' = ~(~HC + ~m + m').
func incrementalChecksum(hc, oldField, newField uint16) uint16 {
	sum := uint32(^hc) + uint32(^oldField) + uint32(newField)
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

var _ apps.BurstProcessor = (*Forwarder)(nil)
