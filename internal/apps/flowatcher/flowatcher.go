// Package flowatcher reimplements FloWatcher-DPDK (Zhang et al., TNSM
// 2019) in the run-to-completion mode the paper evaluates: the receiving
// thread itself maintains tunable per-packet and per-flow statistics — a
// hash flow table with exact counters, a count-min sketch for heavy-hitter
// estimation on constrained memory, and packet-size/interarrival summaries.
package flowatcher

import (
	"sort"

	"metronome/internal/apps"
	"metronome/internal/mbuf"
	"metronome/internal/packet"
	"metronome/internal/stats"
)

// cyclesPerPacket calibrates run-to-completion FloWatcher at 2.1 GHz:
// parsing, one flow-table update and sketch updates cost about 75 cycles
// amortised (µ ≈ 28 Mpps), letting it hold 14.88 Mpps with zero loss as in
// Fig 16b.
const cyclesPerPacket = 75

// FlowStats are the exact per-flow counters.
type FlowStats struct {
	Packets   int64
	Bytes     int64
	FirstSeen float64
	LastSeen  float64
	MinSize   int
	MaxSize   int
}

// CountMin is a count-min sketch: conservative frequency estimation in
// fixed memory, the tool FloWatcher offers when exact tables do not fit.
type CountMin struct {
	depth, width int
	rows         [][]uint32
	seeds        []uint64
}

// NewCountMin builds a sketch with the given depth (hash functions) and
// width (counters per row).
func NewCountMin(depth, width int) *CountMin {
	cm := &CountMin{depth: depth, width: width}
	for i := 0; i < depth; i++ {
		cm.rows = append(cm.rows, make([]uint32, width))
		cm.seeds = append(cm.seeds, 0x9e3779b97f4a7c15*uint64(i+1)|1)
	}
	return cm
}

func (cm *CountMin) hash(k packet.FlowKey, seed uint64) uint64 {
	// FNV-1a style mix over the 5-tuple with a per-row seed.
	h := seed ^ 14695981039346656037
	mix := func(v uint64) {
		h ^= v
		h *= 1099511628211
	}
	mix(uint64(k.Src))
	mix(uint64(k.Dst))
	mix(uint64(k.SrcPort)<<16 | uint64(k.DstPort))
	mix(uint64(k.Proto))
	return h
}

// Add counts one occurrence of k.
func (cm *CountMin) Add(k packet.FlowKey) {
	for i := 0; i < cm.depth; i++ {
		cm.rows[i][cm.hash(k, cm.seeds[i])%uint64(cm.width)]++
	}
}

// Estimate returns the (never under-) estimated count of k.
func (cm *CountMin) Estimate(k packet.FlowKey) uint32 {
	est := ^uint32(0)
	for i := 0; i < cm.depth; i++ {
		if v := cm.rows[i][cm.hash(k, cm.seeds[i])%uint64(cm.width)]; v < est {
			est = v
		}
	}
	return est
}

// Monitor is the FloWatcher application.
type Monitor struct {
	Flows  map[packet.FlowKey]*FlowStats
	Sketch *CountMin

	// Packet-level statistics.
	Sizes        stats.Welford
	Interarrival stats.Welford
	lastArrival  float64
	haveArrival  bool

	Packets, Malformed int64

	// Clock injects the observation timestamp (simulated or wall time in
	// seconds); defaults to a packet counter if nil.
	Clock func() float64
}

// New builds a monitor with an exact flow table and a 4x16384 sketch
// (FloWatcher's double-hash default scale).
func New() *Monitor {
	return &Monitor{
		Flows:  make(map[packet.FlowKey]*FlowStats),
		Sketch: NewCountMin(4, 16384),
	}
}

// Name implements apps.Processor.
func (m *Monitor) Name() string { return "flowatcher" }

// CyclesPerPacket implements apps.Processor.
func (m *Monitor) CyclesPerPacket() float64 { return cyclesPerPacket }

func (m *Monitor) now() float64 {
	if m.Clock != nil {
		return m.Clock()
	}
	return float64(m.Packets)
}

// Process implements apps.Processor.
func (m *Monitor) Process(buf *mbuf.Mbuf) apps.Verdict {
	var p packet.Parsed
	if err := p.Parse(buf.Bytes()); err != nil {
		m.Malformed++
		return apps.Drop
	}
	t := m.now()
	m.Packets++
	size := buf.Len

	fs := m.Flows[p.Key]
	if fs == nil {
		fs = &FlowStats{FirstSeen: t, MinSize: size, MaxSize: size}
		m.Flows[p.Key] = fs
	}
	fs.Packets++
	fs.Bytes += int64(size)
	fs.LastSeen = t
	if size < fs.MinSize {
		fs.MinSize = size
	}
	if size > fs.MaxSize {
		fs.MaxSize = size
	}
	m.Sketch.Add(p.Key)

	m.Sizes.Add(float64(size))
	if m.haveArrival {
		m.Interarrival.Add(t - m.lastArrival)
	}
	m.lastArrival = t
	m.haveArrival = true
	return apps.Consume
}

// TopK returns the k busiest flows by exact packet count, descending.
func (m *Monitor) TopK(k int) []packet.FlowKey {
	keys := make([]packet.FlowKey, 0, len(m.Flows))
	for key := range m.Flows {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := m.Flows[keys[i]], m.Flows[keys[j]]
		if a.Packets != b.Packets {
			return a.Packets > b.Packets
		}
		return keys[i].String() < keys[j].String() // deterministic tie-break
	})
	if k > len(keys) {
		k = len(keys)
	}
	return keys[:k]
}

var _ apps.Processor = (*Monitor)(nil)
