// Package flowatcher reimplements FloWatcher-DPDK (Zhang et al., TNSM
// 2019) in the run-to-completion mode the paper evaluates: the receiving
// thread itself maintains tunable per-packet and per-flow statistics — a
// hash flow table with exact counters, a count-min sketch for heavy-hitter
// estimation on constrained memory, and packet-size/interarrival summaries.
//
// The flow table is arena-backed (pointer-free index map over fixed-size
// FlowStats blocks), so a monitor holds millions of concurrent flows
// without per-flow allocations or GC scan pressure, and Sharded splits one
// logical monitor into per-queue private shards — Toeplitz RSS already
// partitions flows per queue, and Metronome's per-queue trylock serialises
// each queue's service, so shard q needs no locks — with an exact read-time
// merge for TopK and reports.
package flowatcher

import (
	"metronome/internal/apps"
	"metronome/internal/mbuf"
	"metronome/internal/packet"
	"metronome/internal/stats"
)

// cyclesPerPacket calibrates run-to-completion FloWatcher at 2.1 GHz:
// parsing, one flow-table update and sketch updates cost about 75 cycles
// amortised (µ ≈ 28 Mpps), letting it hold 14.88 Mpps with zero loss as in
// Fig 16b.
const cyclesPerPacket = 75

// FlowStats are the exact per-flow counters.
type FlowStats struct {
	Packets   int64
	Bytes     int64
	FirstSeen float64
	LastSeen  float64
	MinSize   int
	MaxSize   int
}

// merge folds src into dst (the Sharded read-time merge step).
func (dst *FlowStats) merge(src *FlowStats) {
	dst.Packets += src.Packets
	dst.Bytes += src.Bytes
	if src.FirstSeen < dst.FirstSeen {
		dst.FirstSeen = src.FirstSeen
	}
	if src.LastSeen > dst.LastSeen {
		dst.LastSeen = src.LastSeen
	}
	if src.MinSize < dst.MinSize {
		dst.MinSize = src.MinSize
	}
	if src.MaxSize > dst.MaxSize {
		dst.MaxSize = src.MaxSize
	}
}

// CountMin is a count-min sketch: conservative frequency estimation in
// fixed memory, the tool FloWatcher offers when exact tables do not fit.
type CountMin struct {
	depth, width int
	rows         [][]uint32
	seeds        []uint64
}

// NewCountMin builds a sketch with the given depth (hash functions) and
// width (counters per row).
func NewCountMin(depth, width int) *CountMin {
	cm := &CountMin{depth: depth, width: width}
	for i := 0; i < depth; i++ {
		cm.rows = append(cm.rows, make([]uint32, width))
		cm.seeds = append(cm.seeds, 0x9e3779b97f4a7c15*uint64(i+1)|1)
	}
	return cm
}

func (cm *CountMin) hash(k packet.FlowKey, seed uint64) uint64 {
	// FNV-1a style mix over the 5-tuple with a per-row seed.
	h := seed ^ 14695981039346656037
	mix := func(v uint64) {
		h ^= v
		h *= 1099511628211
	}
	mix(uint64(k.Src))
	mix(uint64(k.Dst))
	mix(uint64(k.SrcPort)<<16 | uint64(k.DstPort))
	mix(uint64(k.Proto))
	return h
}

// Add counts one occurrence of k.
func (cm *CountMin) Add(k packet.FlowKey) {
	for i := 0; i < cm.depth; i++ {
		cm.rows[i][cm.hash(k, cm.seeds[i])%uint64(cm.width)]++
	}
}

// Estimate returns the (never under-) estimated count of k.
func (cm *CountMin) Estimate(k packet.FlowKey) uint32 {
	est := ^uint32(0)
	for i := 0; i < cm.depth; i++ {
		if v := cm.rows[i][cm.hash(k, cm.seeds[i])%uint64(cm.width)]; v < est {
			est = v
		}
	}
	return est
}

// Monitor is the FloWatcher application. It is single-writer: one queue's
// serialised service feeds it (see Sharded for the multi-queue shape).
type Monitor struct {
	table  FlowTable
	Sketch *CountMin

	// Packet-level statistics.
	Sizes        stats.Welford
	Interarrival stats.Welford
	lastArrival  float64
	haveArrival  bool

	Packets, Malformed int64

	// Clock injects the observation timestamp (simulated or wall time in
	// seconds); defaults to a packet counter if nil.
	Clock func() float64

	top topSel // reusable TopK selection buffer
}

// New builds a monitor with an exact flow table and a 4x16384 sketch
// (FloWatcher's double-hash default scale).
func New() *Monitor {
	return &Monitor{
		table:  newFlowTable(),
		Sketch: NewCountMin(4, 16384),
	}
}

// Name implements apps.Processor.
func (m *Monitor) Name() string { return "flowatcher" }

// CyclesPerPacket implements apps.Processor.
func (m *Monitor) CyclesPerPacket() float64 { return cyclesPerPacket }

func (m *Monitor) now() float64 {
	if m.Clock != nil {
		return m.Clock()
	}
	return float64(m.Packets)
}

// account folds one accepted packet into every statistic — the shared body
// of Process and ProcessBurst, so the two paths agree by construction.
func (m *Monitor) account(key packet.FlowKey, size int) {
	t := m.now()
	m.Packets++

	fs, isNew := m.table.get(key)
	if isNew {
		fs.FirstSeen = t
		fs.MinSize, fs.MaxSize = size, size
	}
	fs.Packets++
	fs.Bytes += int64(size)
	fs.LastSeen = t
	if size < fs.MinSize {
		fs.MinSize = size
	}
	if size > fs.MaxSize {
		fs.MaxSize = size
	}
	m.Sketch.Add(key)

	m.Sizes.Add(float64(size))
	if m.haveArrival {
		m.Interarrival.Add(t - m.lastArrival)
	}
	m.lastArrival = t
	m.haveArrival = true
}

// Process implements apps.Processor.
func (m *Monitor) Process(buf *mbuf.Mbuf) apps.Verdict {
	var p packet.Parsed
	if err := p.Parse(buf.Bytes()); err != nil {
		m.Malformed++
		return apps.Drop
	}
	m.account(p.Key, buf.Len)
	return apps.Consume
}

// ProcessBurst implements apps.BurstProcessor natively: one virtual
// dispatch per burst and the raw-offset header walk (packet.ParseLite) in
// place of the full layer decode — the statistics body is the same account
// the per-packet path runs, so verdicts and counters are byte-identical on
// any input stream (test-enforced). Steady state (no new flows) allocates
// nothing; a new flow costs only its amortised arena slot.
func (m *Monitor) ProcessBurst(ms []*mbuf.Mbuf, verdicts []apps.Verdict) {
	for i, buf := range ms {
		var l packet.Lite
		if err := packet.ParseLite(buf.Bytes(), &l); err != nil {
			m.Malformed++
			verdicts[i] = apps.Drop
			continue
		}
		m.account(l.Key, buf.Len)
		verdicts[i] = apps.Consume
	}
}

// FlowCount returns the number of distinct flows observed.
func (m *Monitor) FlowCount() int { return m.table.Len() }

// Flow returns the exact stats of flow k; the pointer stays valid (and
// live) for the monitor's lifetime.
func (m *Monitor) Flow(k packet.FlowKey) (*FlowStats, bool) { return m.table.Flow(k) }

// Range calls fn for every flow until it returns false, in map order.
func (m *Monitor) Range(fn func(k packet.FlowKey, fs *FlowStats) bool) { m.table.Range(fn) }

// TopK returns the k busiest flows by exact packet count, descending, ties
// broken by ascending key. It is a partial selection over a reusable
// bounded heap — O(F log k) and no full key-slice materialisation, where
// the previous implementation allocated and fully sorted all F keys (with a
// string render per comparison) on every call.
func (m *Monitor) TopK(k int) []packet.FlowKey {
	m.top.reset(k)
	m.table.Range(func(key packet.FlowKey, fs *FlowStats) bool {
		m.top.offer(flowRef{key: key, packets: fs.Packets})
		return true
	})
	refs := m.top.sorted()
	out := make([]packet.FlowKey, len(refs))
	for i, r := range refs {
		out[i] = r.key
	}
	return out
}

var _ apps.BurstProcessor = (*Monitor)(nil)
