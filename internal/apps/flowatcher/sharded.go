package flowatcher

import (
	"metronome/internal/apps"
	"metronome/internal/packet"
)

// Sharded is the multi-queue FloWatcher: one private Monitor per Rx queue,
// in the map-per-worker + final-merge shape. Shard q is fed exclusively by
// queue q's service path — Toeplitz RSS partitions flows across queues and
// Metronome's per-queue trylock serialises each queue's drains, so the
// shards need no locks and never false-share — and the reporting side
// (TopK, Flow, FlowCount) merges the shards at read time with exact
// counters. Flows that do land in several shards (non-RSS feeds) are summed
// correctly during the merge.
//
// Writers and readers are not synchronised: merge-time reads are exact once
// the writers are quiescent (end of run, or a barrier), which is the
// FloWatcher reporting model — counters tally continuously, reports are
// pulled.
type Sharded struct {
	shards []*Monitor
	top    topSel // reusable merged-TopK selection buffer
}

// NewSharded builds n independent shards (one per Rx queue).
func NewSharded(n int) *Sharded {
	if n < 1 {
		n = 1
	}
	s := &Sharded{shards: make([]*Monitor, n)}
	for i := range s.shards {
		s.shards[i] = New()
	}
	return s
}

// Shards returns the shard count.
func (s *Sharded) Shards() int { return len(s.shards) }

// Shard returns queue q's private monitor — the value handed to the queue's
// service path (runtime.NewProc takes one BurstProcessor per queue).
func (s *Sharded) Shard(q int) *Monitor { return s.shards[q] }

// Packets sums the accepted-packet counters across shards.
func (s *Sharded) Packets() int64 {
	var n int64
	for _, m := range s.shards {
		n += m.Packets
	}
	return n
}

// Malformed sums the malformed counters across shards.
func (s *Sharded) Malformed() int64 {
	var n int64
	for _, m := range s.shards {
		n += m.Malformed
	}
	return n
}

// FlowCount returns the number of distinct flows across all shards (keys
// present in several shards count once).
func (s *Sharded) FlowCount() int {
	n := 0
	for i, m := range s.shards {
		m.table.Range(func(k packet.FlowKey, _ *FlowStats) bool {
			if !s.seenBefore(i, k) {
				n++
			}
			return true
		})
	}
	return n
}

// seenBefore reports whether k exists in a shard with index < i — the
// dedup rule of the read-time merge (the lowest-index shard owns the key).
func (s *Sharded) seenBefore(i int, k packet.FlowKey) bool {
	for j := 0; j < i; j++ {
		if _, ok := s.shards[j].table.Flow(k); ok {
			return true
		}
	}
	return false
}

// Flow merges flow k across shards at read time: packet/byte sums, the
// earliest FirstSeen, the latest LastSeen and the size envelope.
func (s *Sharded) Flow(k packet.FlowKey) (FlowStats, bool) {
	var out FlowStats
	found := false
	for _, m := range s.shards {
		fs, ok := m.table.Flow(k)
		if !ok {
			continue
		}
		if !found {
			out, found = *fs, true
			continue
		}
		out.merge(fs)
	}
	return out, found
}

// Estimate sums the per-shard sketch estimates: each shard's estimate never
// undercounts its own packets, so the sum never undercounts the flow.
func (s *Sharded) Estimate(k packet.FlowKey) uint32 {
	var est uint32
	for _, m := range s.shards {
		est += m.Sketch.Estimate(k)
	}
	return est
}

// TopK returns the k busiest flows by merged exact packet count,
// descending, ties broken by ascending key — the read-time merge step over
// the shards, reusing the same bounded selection heap as Monitor.TopK.
func (s *Sharded) TopK(k int) []packet.FlowKey {
	s.top.reset(k)
	for i, m := range s.shards {
		i := i
		m.table.Range(func(key packet.FlowKey, fs *FlowStats) bool {
			if s.seenBefore(i, key) {
				return true // a lower shard already offered the merged count
			}
			pk := fs.Packets
			for j := i + 1; j < len(s.shards); j++ {
				if other, ok := s.shards[j].table.Flow(key); ok {
					pk += other.Packets
				}
			}
			s.top.offer(flowRef{key: key, packets: pk})
			return true
		})
	}
	refs := s.top.sorted()
	out := make([]packet.FlowKey, len(refs))
	for i, r := range refs {
		out[i] = r.key
	}
	return out
}

// Procs adapts the shards to runtime.NewProc's per-queue processor slice.
func (s *Sharded) Procs() []apps.BurstProcessor {
	out := make([]apps.BurstProcessor, len(s.shards))
	for i, m := range s.shards {
		out[i] = m
	}
	return out
}
