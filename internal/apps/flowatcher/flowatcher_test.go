package flowatcher

import (
	"testing"

	"metronome/internal/apps"
	"metronome/internal/mbuf"
	"metronome/internal/packet"
	"metronome/internal/traffic"
	"metronome/internal/xrand"
)

func feed(t *testing.T, m *Monitor, gen *traffic.FrameGen, n int) {
	t.Helper()
	pool := mbuf.NewPool(2)
	buf, _ := pool.Get()
	defer buf.Free()
	for i := 0; i < n; i++ {
		frame, _ := gen.Next()
		buf.SetFrame(frame)
		if v := m.Process(buf); v != apps.Consume {
			t.Fatalf("verdict = %v", v)
		}
	}
}

func TestExactCountsMatchOffered(t *testing.T) {
	m := New()
	gen := traffic.NewFrameGen(1, 8, 64)
	feed(t, m, gen, 5000)
	if m.Packets != 5000 {
		t.Fatalf("packets = %d", m.Packets)
	}
	var total int64
	m.Range(func(_ packet.FlowKey, fs *FlowStats) bool {
		total += fs.Packets
		return true
	})
	if total != 5000 {
		t.Fatalf("per-flow sum = %d", total)
	}
	if m.FlowCount() != 8 {
		t.Fatalf("flows = %d, want 8", m.FlowCount())
	}
}

func TestFlowStatsFields(t *testing.T) {
	m := New()
	tick := 0.0
	m.Clock = func() float64 { tick += 0.001; return tick }
	pool := mbuf.NewPool(2)
	b, _ := pool.Get()
	defer b.Free()
	frameBuf := make([]byte, 2048)
	k := packet.FlowKey{Src: 1, Dst: 2, SrcPort: 3, DstPort: 4, Proto: packet.ProtoUDP}
	for _, size := range []int{64, 128, 96} {
		f, _ := packet.BuildUDP(frameBuf, size, k.Src, k.Dst, k.SrcPort, k.DstPort)
		b.SetFrame(f)
		m.Process(b)
	}
	fs, ok := m.Flow(k)
	if !ok {
		t.Fatal("flow missing")
	}
	if fs.Packets != 3 || fs.Bytes != 64+128+96 {
		t.Errorf("pkts=%d bytes=%d", fs.Packets, fs.Bytes)
	}
	if fs.MinSize != 64 || fs.MaxSize != 128 {
		t.Errorf("min=%d max=%d", fs.MinSize, fs.MaxSize)
	}
	if !(fs.FirstSeen < fs.LastSeen) {
		t.Error("timestamps not ordered")
	}
	if m.Interarrival.N() != 2 {
		t.Errorf("interarrival samples = %d", m.Interarrival.N())
	}
}

func TestSketchNeverUndercounts(t *testing.T) {
	m := New()
	gen := traffic.NewFrameGen(2, 32, 64)
	feed(t, m, gen, 20000)
	m.Range(func(k packet.FlowKey, fs *FlowStats) bool {
		if est := m.Sketch.Estimate(k); int64(est) < fs.Packets {
			t.Fatalf("sketch undercounts %v: %d < %d", k, est, fs.Packets)
		}
		return true
	})
}

func TestSketchAccuracyAtScale(t *testing.T) {
	// With 4x16384 counters and 32 flows, estimates should be near-exact.
	m := New()
	gen := traffic.NewFrameGen(3, 32, 64)
	feed(t, m, gen, 20000)
	m.Range(func(k packet.FlowKey, fs *FlowStats) bool {
		est := int64(m.Sketch.Estimate(k))
		if est > fs.Packets+fs.Packets/10+5 {
			t.Fatalf("sketch grossly overcounts: %d vs %d", est, fs.Packets)
		}
		return true
	})
}

func TestTopKOrdering(t *testing.T) {
	m := New()
	pool := mbuf.NewPool(2)
	b, _ := pool.Get()
	defer b.Free()
	frameBuf := make([]byte, 2048)
	counts := map[int]int{0: 50, 1: 30, 2: 10}
	for flow, n := range counts {
		for i := 0; i < n; i++ {
			f, _ := packet.BuildUDP(frameBuf, 64, packet.Addr(flow+1), 9, uint16(flow+100), 200)
			b.SetFrame(f)
			m.Process(b)
		}
	}
	top := m.TopK(2)
	if len(top) != 2 {
		t.Fatalf("topk len = %d", len(top))
	}
	fs0, _ := m.Flow(top[0])
	fs1, _ := m.Flow(top[1])
	if fs0.Packets != 50 || fs1.Packets != 30 {
		t.Errorf("topk order wrong: %d, %d", fs0.Packets, fs1.Packets)
	}
	if got := m.TopK(10); len(got) != 3 {
		t.Errorf("topk clamping: %d", len(got))
	}
	if got := m.TopK(0); len(got) != 0 {
		t.Errorf("topk(0): %d", len(got))
	}
}

// Equal counts must order by ascending key — the deterministic tie-break
// the rendering paths rely on — and repeated calls must agree (the
// selection buffer is reused across calls).
func TestTopKTieBreakAndReuse(t *testing.T) {
	m := New()
	pool := mbuf.NewPool(2)
	b, _ := pool.Get()
	defer b.Free()
	frameBuf := make([]byte, 2048)
	for _, src := range []int{5, 3, 9, 1} {
		f, _ := packet.BuildUDP(frameBuf, 64, packet.Addr(src), 7, 100, 200)
		b.SetFrame(f)
		m.Process(b)
	}
	first := m.TopK(3)
	for i := 1; i < len(first); i++ {
		if !first[i-1].Less(first[i]) {
			t.Fatalf("tie-break not ascending at %d: %v then %v", i, first[i-1], first[i])
		}
	}
	if first[0].Src != 1 || first[1].Src != 3 || first[2].Src != 5 {
		t.Fatalf("unexpected tie order: %v", first)
	}
	again := m.TopK(3)
	for i := range first {
		if first[i] != again[i] {
			t.Fatalf("TopK not stable across calls at %d", i)
		}
	}
}

func TestUnbalancedMixStatistics(t *testing.T) {
	// The Table III workload: 30% one flow, 70% spread. The monitor must
	// see the heavy hitter on top with ~30% of packets.
	m := New()
	r := xrand.New(4)
	gen := traffic.NewFrameGen(5, 64, 64)
	pool := mbuf.NewPool(2)
	b, _ := pool.Get()
	defer b.Free()
	heavy := packet.FlowKey{Src: 9, Dst: 10, SrcPort: 11, DstPort: 12, Proto: packet.ProtoUDP}
	frameBuf := make([]byte, 2048)
	const n = 30000
	for i := 0; i < n; i++ {
		if r.Bernoulli(0.30) {
			f, _ := packet.BuildUDP(frameBuf, 64, heavy.Src, heavy.Dst, heavy.SrcPort, heavy.DstPort)
			b.SetFrame(f)
		} else {
			f, _ := gen.Next()
			b.SetFrame(f)
		}
		m.Process(b)
	}
	top := m.TopK(1)
	if top[0] != heavy {
		t.Fatal("heavy hitter not identified")
	}
	fs, _ := m.Flow(heavy)
	share := float64(fs.Packets) / float64(n)
	if share < 0.28 || share > 0.32 {
		t.Errorf("heavy share = %v, want ~0.30", share)
	}
}

func TestMalformedCounted(t *testing.T) {
	m := New()
	pool := mbuf.NewPool(2)
	b, _ := pool.Get()
	defer b.Free()
	b.SetFrame([]byte{1, 2, 3, 4})
	if v := m.Process(b); v != apps.Drop {
		t.Fatalf("verdict = %v", v)
	}
	if m.Malformed != 1 || m.Packets != 0 {
		t.Errorf("malformed=%d packets=%d", m.Malformed, m.Packets)
	}
}

func TestServiceRateCalibration(t *testing.T) {
	mu := apps.ServiceRate(New(), 2.1)
	if mu < 27e6 || mu > 29e6 {
		t.Errorf("flowatcher service rate = %v, want ~28 Mpps", mu)
	}
}

// The arena must hand back stable, distinct slots across block boundaries.
func TestFlowTableArenaStability(t *testing.T) {
	tab := newFlowTable()
	const flows = 3*blockLen + 17
	ptrs := make([]*FlowStats, flows)
	for i := 0; i < flows; i++ {
		k := packet.FlowKey{Src: packet.Addr(i), Proto: packet.ProtoUDP}
		fs, isNew := tab.get(k)
		if !isNew {
			t.Fatalf("flow %d reported as existing", i)
		}
		fs.Packets = int64(i)
		ptrs[i] = fs
	}
	if tab.Len() != flows {
		t.Fatalf("len = %d, want %d", tab.Len(), flows)
	}
	for i := 0; i < flows; i++ {
		k := packet.FlowKey{Src: packet.Addr(i), Proto: packet.ProtoUDP}
		fs, ok := tab.Flow(k)
		if !ok {
			t.Fatalf("flow %d missing", i)
		}
		if fs != ptrs[i] {
			t.Fatalf("flow %d slot moved", i)
		}
		if fs.Packets != int64(i) {
			t.Fatalf("flow %d data lost: %d", i, fs.Packets)
		}
	}
}

func BenchmarkProcess(b *testing.B) {
	m := New()
	gen := traffic.NewFrameGen(6, 1024, 64)
	pool := mbuf.NewPool(2)
	mb, _ := pool.Get()
	frames := make([][]byte, 1024)
	for i := range frames {
		f, _ := gen.Next()
		frames[i] = append([]byte(nil), f...)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mb.SetFrame(frames[i&1023])
		m.Process(mb)
	}
}
