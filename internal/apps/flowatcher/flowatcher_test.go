package flowatcher

import (
	"testing"

	"metronome/internal/apps"
	"metronome/internal/mbuf"
	"metronome/internal/packet"
	"metronome/internal/traffic"
	"metronome/internal/xrand"
)

func feed(t *testing.T, m *Monitor, gen *traffic.FrameGen, n int) {
	t.Helper()
	pool := mbuf.NewPool(2)
	buf, _ := pool.Get()
	defer buf.Free()
	for i := 0; i < n; i++ {
		frame, _ := gen.Next()
		buf.SetFrame(frame)
		if v := m.Process(buf); v != apps.Consume {
			t.Fatalf("verdict = %v", v)
		}
	}
}

func TestExactCountsMatchOffered(t *testing.T) {
	m := New()
	gen := traffic.NewFrameGen(1, 8, 64)
	feed(t, m, gen, 5000)
	if m.Packets != 5000 {
		t.Fatalf("packets = %d", m.Packets)
	}
	var total int64
	for _, fs := range m.Flows {
		total += fs.Packets
	}
	if total != 5000 {
		t.Fatalf("per-flow sum = %d", total)
	}
	if len(m.Flows) != 8 {
		t.Fatalf("flows = %d, want 8", len(m.Flows))
	}
}

func TestFlowStatsFields(t *testing.T) {
	m := New()
	tick := 0.0
	m.Clock = func() float64 { tick += 0.001; return tick }
	pool := mbuf.NewPool(2)
	b, _ := pool.Get()
	defer b.Free()
	frameBuf := make([]byte, 2048)
	k := packet.FlowKey{Src: 1, Dst: 2, SrcPort: 3, DstPort: 4, Proto: packet.ProtoUDP}
	for _, size := range []int{64, 128, 96} {
		f, _ := packet.BuildUDP(frameBuf, size, k.Src, k.Dst, k.SrcPort, k.DstPort)
		b.SetFrame(f)
		m.Process(b)
	}
	fs := m.Flows[k]
	if fs == nil {
		t.Fatal("flow missing")
	}
	if fs.Packets != 3 || fs.Bytes != 64+128+96 {
		t.Errorf("pkts=%d bytes=%d", fs.Packets, fs.Bytes)
	}
	if fs.MinSize != 64 || fs.MaxSize != 128 {
		t.Errorf("min=%d max=%d", fs.MinSize, fs.MaxSize)
	}
	if !(fs.FirstSeen < fs.LastSeen) {
		t.Error("timestamps not ordered")
	}
	if m.Interarrival.N() != 2 {
		t.Errorf("interarrival samples = %d", m.Interarrival.N())
	}
}

func TestSketchNeverUndercounts(t *testing.T) {
	m := New()
	gen := traffic.NewFrameGen(2, 32, 64)
	feed(t, m, gen, 20000)
	for k, fs := range m.Flows {
		if est := m.Sketch.Estimate(k); int64(est) < fs.Packets {
			t.Fatalf("sketch undercounts %v: %d < %d", k, est, fs.Packets)
		}
	}
}

func TestSketchAccuracyAtScale(t *testing.T) {
	// With 4x16384 counters and 32 flows, estimates should be near-exact.
	m := New()
	gen := traffic.NewFrameGen(3, 32, 64)
	feed(t, m, gen, 20000)
	for k, fs := range m.Flows {
		est := int64(m.Sketch.Estimate(k))
		if est > fs.Packets+fs.Packets/10+5 {
			t.Fatalf("sketch grossly overcounts: %d vs %d", est, fs.Packets)
		}
	}
}

func TestTopKOrdering(t *testing.T) {
	m := New()
	pool := mbuf.NewPool(2)
	b, _ := pool.Get()
	defer b.Free()
	frameBuf := make([]byte, 2048)
	counts := map[int]int{0: 50, 1: 30, 2: 10}
	for flow, n := range counts {
		for i := 0; i < n; i++ {
			f, _ := packet.BuildUDP(frameBuf, 64, packet.Addr(flow+1), 9, uint16(flow+100), 200)
			b.SetFrame(f)
			m.Process(b)
		}
	}
	top := m.TopK(2)
	if len(top) != 2 {
		t.Fatalf("topk len = %d", len(top))
	}
	if m.Flows[top[0]].Packets != 50 || m.Flows[top[1]].Packets != 30 {
		t.Errorf("topk order wrong: %d, %d", m.Flows[top[0]].Packets, m.Flows[top[1]].Packets)
	}
	if got := m.TopK(10); len(got) != 3 {
		t.Errorf("topk clamping: %d", len(got))
	}
}

func TestUnbalancedMixStatistics(t *testing.T) {
	// The Table III workload: 30% one flow, 70% spread. The monitor must
	// see the heavy hitter on top with ~30% of packets.
	m := New()
	r := xrand.New(4)
	gen := traffic.NewFrameGen(5, 64, 64)
	pool := mbuf.NewPool(2)
	b, _ := pool.Get()
	defer b.Free()
	heavy := packet.FlowKey{Src: 9, Dst: 10, SrcPort: 11, DstPort: 12, Proto: packet.ProtoUDP}
	frameBuf := make([]byte, 2048)
	const n = 30000
	for i := 0; i < n; i++ {
		if r.Bernoulli(0.30) {
			f, _ := packet.BuildUDP(frameBuf, 64, heavy.Src, heavy.Dst, heavy.SrcPort, heavy.DstPort)
			b.SetFrame(f)
		} else {
			f, _ := gen.Next()
			b.SetFrame(f)
		}
		m.Process(b)
	}
	top := m.TopK(1)
	if top[0] != heavy {
		t.Fatal("heavy hitter not identified")
	}
	share := float64(m.Flows[heavy].Packets) / float64(n)
	if share < 0.28 || share > 0.32 {
		t.Errorf("heavy share = %v, want ~0.30", share)
	}
}

func TestMalformedCounted(t *testing.T) {
	m := New()
	pool := mbuf.NewPool(2)
	b, _ := pool.Get()
	defer b.Free()
	b.SetFrame([]byte{1, 2, 3, 4})
	if v := m.Process(b); v != apps.Drop {
		t.Fatalf("verdict = %v", v)
	}
	if m.Malformed != 1 || m.Packets != 0 {
		t.Errorf("malformed=%d packets=%d", m.Malformed, m.Packets)
	}
}

func TestServiceRateCalibration(t *testing.T) {
	mu := apps.ServiceRate(New(), 2.1)
	if mu < 27e6 || mu > 29e6 {
		t.Errorf("flowatcher service rate = %v, want ~28 Mpps", mu)
	}
}

func BenchmarkProcess(b *testing.B) {
	m := New()
	gen := traffic.NewFrameGen(6, 1024, 64)
	pool := mbuf.NewPool(2)
	mb, _ := pool.Get()
	frames := make([][]byte, 1024)
	for i := range frames {
		f, _ := gen.Next()
		frames[i] = append([]byte(nil), f...)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mb.SetFrame(frames[i&1023])
		m.Process(mb)
	}
}
