package flowatcher

import (
	"sort"

	"metronome/internal/packet"
)

// The arena geometry: FlowStats live in fixed-size blocks so the table can
// hold millions of flows without per-flow pointer churn. The index map is
// FlowKey -> int32 slot id — both sides pointer-free, so the GC never scans
// the table's buckets — and the blocks are pointer-free arrays the GC skips
// too. Blocks never move once allocated (only the slice of block headers
// grows), so *FlowStats handed out by Flow/Range stay valid for the table's
// lifetime.
const (
	blockShift = 12 // 4096 flows per block (1 MiB of FlowStats)
	blockLen   = 1 << blockShift
	blockMask  = blockLen - 1
)

// FlowTable is the arena-backed exact-counter flow table: a pointer-free
// index map over block-allocated FlowStats. The zero value is not usable;
// Monitor constructs its own.
type FlowTable struct {
	idx    map[packet.FlowKey]int32
	blocks [][]FlowStats
}

func newFlowTable() FlowTable {
	return FlowTable{idx: make(map[packet.FlowKey]int32)}
}

// Len returns the number of distinct flows.
func (t *FlowTable) Len() int { return len(t.idx) }

func (t *FlowTable) at(id int32) *FlowStats {
	return &t.blocks[id>>blockShift][id&blockMask]
}

// Flow returns the stats of flow k, valid for the table's lifetime.
func (t *FlowTable) Flow(k packet.FlowKey) (*FlowStats, bool) {
	id, ok := t.idx[k]
	if !ok {
		return nil, false
	}
	return t.at(id), true
}

// get returns the slot of flow k, creating it (zeroed) on first sight;
// isNew reports creation. Flows are never deleted, so len(idx) is the next
// free arena slot.
func (t *FlowTable) get(k packet.FlowKey) (fs *FlowStats, isNew bool) {
	if id, ok := t.idx[k]; ok {
		return t.at(id), false
	}
	id := int32(len(t.idx))
	if int(id)>>blockShift == len(t.blocks) {
		t.blocks = append(t.blocks, make([]FlowStats, blockLen))
	}
	t.idx[k] = id
	return t.at(id), true
}

// Range calls fn for every flow until it returns false. Iteration order is
// the map's (randomised); deterministic reporting goes through TopK.
func (t *FlowTable) Range(fn func(k packet.FlowKey, fs *FlowStats) bool) {
	for k, id := range t.idx {
		if !fn(k, t.at(id)) {
			return
		}
	}
}

// flowRef is one candidate in a top-k selection.
type flowRef struct {
	key     packet.FlowKey
	packets int64
}

// better reports whether a outranks b: more packets first, the numerically
// smaller key on ties (the allocation-free replacement for the String()
// comparison the old full sort paid per element).
func better(a, b flowRef) bool {
	if a.packets != b.packets {
		return a.packets > b.packets
	}
	return a.key.Less(b.key)
}

// topSel is a reusable bounded selection heap: offer every candidate, read
// the k best in rank order. It is a min-heap on better — the root is the
// worst kept candidate, evicted whenever a better one arrives — so selection
// is O(F log k) over F flows instead of the O(F log F) full sort, and the
// buffer is reused across calls.
type topSel struct {
	k    int
	heap []flowRef
}

func (s *topSel) reset(k int) {
	s.k = k
	if cap(s.heap) < k {
		s.heap = make([]flowRef, 0, k)
	}
	s.heap = s.heap[:0]
}

// worse orders the heap: the root floats the candidate that better ranks
// last.
func (s *topSel) worse(i, j int) bool { return better(s.heap[j], s.heap[i]) }

func (s *topSel) offer(r flowRef) {
	if s.k == 0 {
		return
	}
	if len(s.heap) < s.k {
		s.heap = append(s.heap, r)
		for i := len(s.heap) - 1; i > 0; {
			parent := (i - 1) / 2
			if !s.worse(i, parent) {
				break
			}
			s.heap[i], s.heap[parent] = s.heap[parent], s.heap[i]
			i = parent
		}
		return
	}
	if !better(r, s.heap[0]) {
		return
	}
	s.heap[0] = r
	i := 0
	for {
		l, rr := 2*i+1, 2*i+2
		w := i
		if l < len(s.heap) && s.worse(l, w) {
			w = l
		}
		if rr < len(s.heap) && s.worse(rr, w) {
			w = rr
		}
		if w == i {
			return
		}
		s.heap[i], s.heap[w] = s.heap[w], s.heap[i]
		i = w
	}
}

// sorted orders the kept candidates best-first, in place.
func (s *topSel) sorted() []flowRef {
	sort.Slice(s.heap, func(i, j int) bool { return better(s.heap[i], s.heap[j]) })
	return s.heap
}
