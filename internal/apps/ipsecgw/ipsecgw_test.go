package ipsecgw

import (
	"bytes"
	"testing"

	"metronome/internal/apps"
	"metronome/internal/mbuf"
	"metronome/internal/packet"
)

func newGW(t *testing.T) (*Gateway, *SA) {
	t.Helper()
	g := New(42)
	sa := &SA{
		SPI:       0x1001,
		EncKey:    [16]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16},
		AuthKey:   [20]byte{20, 21, 22, 23, 24, 25, 26, 27, 28, 29, 30, 31, 32, 33, 34, 35, 36, 37, 38, 39},
		TunnelSrc: packet.AddrFrom4(192, 0, 2, 1),
		TunnelDst: packet.AddrFrom4(198, 51, 100, 1),
	}
	if err := g.AddSA(sa, packet.AddrFrom4(10, 0, 0, 0), 8); err != nil {
		t.Fatal(err)
	}
	return g, sa
}

func mkPacket(t *testing.T, pool *mbuf.Pool, dst packet.Addr) *mbuf.Mbuf {
	t.Helper()
	m, err := pool.Get()
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 256)
	frame, err := packet.BuildUDP(buf, 64, packet.AddrFrom4(172, 16, 0, 1), dst, 4500, 4501)
	if err != nil {
		t.Fatal(err)
	}
	m.SetFrame(frame)
	return m
}

func TestEncapDecapRoundTrip(t *testing.T) {
	g, _ := newGW(t)
	pool := mbuf.NewPool(4)
	m := mkPacket(t, pool, packet.AddrFrom4(10, 1, 1, 1))
	original := append([]byte(nil), m.Bytes()...)

	if v := g.Process(m); v != apps.Forward {
		t.Fatalf("encap verdict = %v", v)
	}
	// Outer header is ESP between the tunnel endpoints.
	var outer packet.Parsed
	if err := outer.Parse(m.Bytes()); err != nil {
		t.Fatal(err)
	}
	if outer.IP.Protocol != packet.ProtoESP {
		t.Fatalf("outer proto = %d", outer.IP.Protocol)
	}
	if outer.IP.Src != packet.AddrFrom4(192, 0, 2, 1) || outer.IP.Dst != packet.AddrFrom4(198, 51, 100, 1) {
		t.Error("tunnel endpoints wrong")
	}
	// Ciphertext must not contain the plaintext inner header.
	if bytes.Contains(m.Bytes(), original[packet.EthHeaderLen:packet.EthHeaderLen+20]) {
		t.Error("inner header leaked in clear")
	}

	if v := g.Process(m); v != apps.Forward {
		t.Fatalf("decap verdict = %v", v)
	}
	if !bytes.Equal(m.Bytes(), original) {
		t.Error("decapsulated packet differs from original")
	}
	if g.Encapsulated != 1 || g.Decapsulated != 1 {
		t.Errorf("counters: %d/%d", g.Encapsulated, g.Decapsulated)
	}
	m.Free()
}

func TestEncapPolicyMiss(t *testing.T) {
	g, _ := newGW(t)
	pool := mbuf.NewPool(4)
	m := mkPacket(t, pool, packet.AddrFrom4(11, 1, 1, 1)) // outside 10/8
	if v := g.Process(m); v != apps.Drop {
		t.Fatalf("verdict = %v", v)
	}
	if g.PolicyMisses != 1 {
		t.Errorf("policy misses = %d", g.PolicyMisses)
	}
	m.Free()
}

func TestDecapRejectsTamperedICV(t *testing.T) {
	g, _ := newGW(t)
	pool := mbuf.NewPool(4)
	m := mkPacket(t, pool, packet.AddrFrom4(10, 1, 1, 1))
	g.Process(m) // encap
	b := m.Bytes()
	b[len(b)-1] ^= 0xff // corrupt ICV
	if v := g.Process(m); v != apps.Drop {
		t.Fatalf("tampered packet verdict = %v", v)
	}
	if g.AuthFailures != 1 {
		t.Errorf("auth failures = %d", g.AuthFailures)
	}
	m.Free()
}

func TestDecapRejectsTamperedCiphertext(t *testing.T) {
	g, _ := newGW(t)
	pool := mbuf.NewPool(4)
	m := mkPacket(t, pool, packet.AddrFrom4(10, 1, 1, 1))
	g.Process(m)
	b := m.Bytes()
	b[packet.EthHeaderLen+packet.IPv4HeaderLen+espHeaderLen+ivLen+2] ^= 0x55
	if v := g.Process(m); v != apps.Drop {
		t.Fatalf("verdict = %v", v)
	}
	m.Free()
}

func TestAntiReplay(t *testing.T) {
	g, _ := newGW(t)
	pool := mbuf.NewPool(4)
	m := mkPacket(t, pool, packet.AddrFrom4(10, 1, 1, 1))
	g.Process(m) // encap seq=1
	encapped := append([]byte(nil), m.Bytes()...)
	if v := g.Process(m); v != apps.Forward {
		t.Fatal("first decap failed")
	}
	// Replay the same ESP packet.
	m.SetFrame(encapped)
	if v := g.Process(m); v != apps.Drop {
		t.Fatal("replay accepted")
	}
	if g.Replays != 1 {
		t.Errorf("replays = %d", g.Replays)
	}
	m.Free()
}

func TestReplayWindow(t *testing.T) {
	var w replayWindow
	if w.check(0) {
		t.Error("seq 0 must fail")
	}
	if !w.check(1) || !w.check(2) || !w.check(5) {
		t.Error("fresh sequences rejected")
	}
	if w.check(2) {
		t.Error("replay of 2 accepted")
	}
	if !w.check(3) {
		t.Error("in-window unseen rejected")
	}
	if !w.check(100) {
		t.Error("big jump rejected")
	}
	if w.check(36) {
		t.Error("stale (out of 64-window) accepted")
	}
	if !w.check(99) {
		t.Error("in-window after slide rejected")
	}
}

func TestDecapUnknownSPI(t *testing.T) {
	g, _ := newGW(t)
	pool := mbuf.NewPool(4)
	m := mkPacket(t, pool, packet.AddrFrom4(10, 1, 1, 1))
	g.Process(m)
	b := m.Bytes()
	b[packet.EthHeaderLen+packet.IPv4HeaderLen] = 0xde // clobber SPI
	if v := g.Process(m); v != apps.Drop {
		t.Fatalf("verdict = %v", v)
	}
	m.Free()
}

func TestPaddingAlignment(t *testing.T) {
	// Whatever the inner size, ESP ciphertext must be block-aligned.
	g, _ := newGW(t)
	pool := mbuf.NewPool(4)
	for size := 60; size < 120; size += 7 {
		m, _ := pool.Get()
		buf := make([]byte, 512)
		frame, err := packet.BuildUDP(buf, size, packet.AddrFrom4(172, 16, 0, 1), packet.AddrFrom4(10, 2, 2, 2), 1, 2)
		if err != nil {
			t.Fatal(err)
		}
		m.SetFrame(frame)
		orig := append([]byte(nil), m.Bytes()...)
		if v := g.Process(m); v != apps.Forward {
			t.Fatalf("size %d: encap failed", size)
		}
		if v := g.Process(m); v != apps.Forward {
			t.Fatalf("size %d: decap failed", size)
		}
		if !bytes.Equal(m.Bytes(), orig) {
			t.Fatalf("size %d: round trip mismatch", size)
		}
		m.Free()
	}
}

func TestDuplicateSPIRejected(t *testing.T) {
	g, sa := newGW(t)
	dup := *sa
	if err := g.AddSA(&dup, 0, 0); err == nil {
		t.Fatal("duplicate SPI accepted")
	}
}

func TestLongestPolicyWins(t *testing.T) {
	g, _ := newGW(t)
	sa2 := &SA{SPI: 0x2002, TunnelSrc: 1, TunnelDst: 2}
	if err := g.AddSA(sa2, packet.AddrFrom4(10, 9, 0, 0), 16); err != nil {
		t.Fatal(err)
	}
	if got := g.lookupPolicy(packet.AddrFrom4(10, 9, 1, 1)); got != sa2 {
		t.Error("more specific policy not selected")
	}
	if got := g.lookupPolicy(packet.AddrFrom4(10, 8, 1, 1)); got == sa2 || got == nil {
		t.Error("fallback policy wrong")
	}
}

func TestServiceRateCalibration(t *testing.T) {
	g := New(1)
	mu := apps.ServiceRate(g, 2.1)
	if mu < 5.5e6 || mu > 5.7e6 {
		t.Errorf("ipsec service rate = %v, want ~5.61 Mpps (paper)", mu)
	}
}

func BenchmarkEncap(b *testing.B) {
	g := New(1)
	sa := &SA{SPI: 1}
	g.AddSA(sa, 0, 0)
	pool := mbuf.NewPool(2)
	m, _ := pool.Get()
	buf := make([]byte, 256)
	frame, _ := packet.BuildUDP(buf, 64, 1, 2, 3, 4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.SetFrame(frame)
		g.Process(m)
	}
}

func BenchmarkEncapDecap(b *testing.B) {
	g := New(1)
	sa := &SA{SPI: 1}
	g.AddSA(sa, 0, 0)
	pool := mbuf.NewPool(2)
	m, _ := pool.Get()
	buf := make([]byte, 256)
	frame, _ := packet.BuildUDP(buf, 64, 1, 2, 3, 4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.SetFrame(frame)
		g.Process(m)
		g.Process(m)
	}
}
