// Package ipsecgw reimplements DPDK's IPsec Security Gateway sample
// application as evaluated in the paper: ESP tunnel mode with AES-128-CBC
// encryption and HMAC-SHA1-96 authentication (the paper offloads crypto to
// the NIC; here the stdlib crypto runs inline, and the calibrated cycle
// cost reproduces the observed 5.61 Mpps ceiling).
package ipsecgw

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/sha1"
	"encoding/binary"
	"errors"
	"fmt"

	"metronome/internal/apps"
	"metronome/internal/mbuf"
	"metronome/internal/packet"
	"metronome/internal/xrand"
)

// cyclesPerPacket calibrates the gateway's per-packet cost at 2.1 GHz so
// that µ = 5.61 Mpps, the paper's measured outbound ceiling for 64B frames
// (Sec. V-G): 2.1e9 / 5.61e6 ≈ 374 cycles.
const cyclesPerPacket = 374

const (
	espHeaderLen  = 8 // SPI + sequence
	ivLen         = aes.BlockSize
	icvLen        = 12 // HMAC-SHA1-96
	espTrailerMin = 2  // pad length + next header

	nextHeaderIPv4 = 4
)

var (
	ErrNoSA      = errors.New("ipsecgw: no SA for packet")
	ErrAuth      = errors.New("ipsecgw: ICV verification failed")
	ErrMalformed = errors.New("ipsecgw: malformed ESP payload")
	ErrReplay    = errors.New("ipsecgw: replayed sequence number")
)

// SA is one security association.
type SA struct {
	SPI     uint32
	EncKey  [16]byte // AES-128
	AuthKey [20]byte // HMAC-SHA1
	// Tunnel endpoints for the outer IPv4 header.
	TunnelSrc, TunnelDst packet.Addr

	seq    uint32 // outbound sequence
	window replayWindow
	block  cipher.Block
}

func (sa *SA) init() error {
	b, err := aes.NewCipher(sa.EncKey[:])
	if err != nil {
		return err
	}
	sa.block = b
	return nil
}

// replayWindow is a 64-packet anti-replay bitmap (RFC 4303 style).
type replayWindow struct {
	top  uint32
	bits uint64
}

// check validates and slides the window; it returns false for replays or
// stale packets.
func (w *replayWindow) check(seq uint32) bool {
	if seq == 0 {
		return false
	}
	if seq > w.top {
		shift := seq - w.top
		if shift >= 64 {
			w.bits = 0
		} else {
			w.bits <<= shift
		}
		w.bits |= 1
		w.top = seq
		return true
	}
	off := w.top - seq
	if off >= 64 {
		return false
	}
	mask := uint64(1) << off
	if w.bits&mask != 0 {
		return false
	}
	w.bits |= mask
	return true
}

// Gateway is the security gateway: outbound flows are matched to SAs by
// destination subnet; inbound ESP packets are matched by SPI.
type Gateway struct {
	bySPI map[uint32]*SA
	// Outbound policy: ordered list of (prefix, maskLen) -> SA.
	policies []policy
	rng      *xrand.Rand

	Encapsulated, Decapsulated int64
	AuthFailures, PolicyMisses int64
	Replays                    int64
}

type policy struct {
	prefix packet.Addr
	maskLn int
	sa     *SA
}

// New builds an empty gateway; seed drives IV generation.
func New(seed uint64) *Gateway {
	return &Gateway{bySPI: map[uint32]*SA{}, rng: xrand.New(seed)}
}

// AddSA registers an SA and an outbound policy routing prefix/len into it.
func (g *Gateway) AddSA(sa *SA, prefix packet.Addr, maskLen int) error {
	if err := sa.init(); err != nil {
		return err
	}
	if _, dup := g.bySPI[sa.SPI]; dup {
		return fmt.Errorf("ipsecgw: duplicate SPI %d", sa.SPI)
	}
	g.bySPI[sa.SPI] = sa
	g.policies = append(g.policies, policy{prefix: prefix, maskLn: maskLen, sa: sa})
	return nil
}

func maskOf(length int) packet.Addr {
	if length <= 0 {
		return 0
	}
	return packet.Addr(^uint32(0) << (32 - uint(length)))
}

func (g *Gateway) lookupPolicy(dst packet.Addr) *SA {
	var best *policy
	for i := range g.policies {
		p := &g.policies[i]
		if dst&maskOf(p.maskLn) == p.prefix {
			if best == nil || p.maskLn > best.maskLn {
				best = p
			}
		}
	}
	if best == nil {
		return nil
	}
	return best.sa
}

// Name implements apps.Processor.
func (g *Gateway) Name() string { return "ipsec-secgw" }

// CyclesPerPacket implements apps.Processor.
func (g *Gateway) CyclesPerPacket() float64 { return cyclesPerPacket }

// Process implements apps.Processor: ESP packets addressed to us are
// decapsulated; everything else is matched against outbound policy and
// encapsulated.
func (g *Gateway) Process(m *mbuf.Mbuf) apps.Verdict {
	var p packet.Parsed
	if err := p.Parse(m.Bytes()); err != nil {
		g.PolicyMisses++
		return apps.Drop
	}
	if p.IP.Protocol == packet.ProtoESP {
		if err := g.decap(m, &p); err != nil {
			return apps.Drop
		}
		return apps.Forward
	}
	if err := g.encap(m, &p); err != nil {
		return apps.Drop
	}
	return apps.Forward
}

// ProcessBurst implements apps.BurstProcessor. The gateway's cost is
// dominated by AES-CBC and HMAC-SHA1, not dispatch, so the native burst
// path simply amortises the virtual call: one dispatch per burst, then the
// per-packet pipeline inline (direct method calls, no interface hops).
func (g *Gateway) ProcessBurst(ms []*mbuf.Mbuf, verdicts []apps.Verdict) {
	for i, m := range ms {
		verdicts[i] = g.Process(m)
	}
}

// Encap performs outbound tunnel-mode ESP on the frame in m.
func (g *Gateway) encap(m *mbuf.Mbuf, p *packet.Parsed) error {
	sa := g.lookupPolicy(p.IP.Dst)
	if sa == nil {
		g.PolicyMisses++
		return ErrNoSA
	}
	frame := m.Bytes()
	inner := frame[packet.EthHeaderLen:] // whole inner IPv4 packet
	innerLen := int(p.IP.TotalLen)
	inner = inner[:innerLen]

	// ESP payload: inner || padding || padLen || nextHeader.
	padLen := (aes.BlockSize - (innerLen+espTrailerMin)%aes.BlockSize) % aes.BlockSize
	ptLen := innerLen + padLen + espTrailerMin
	plaintext := make([]byte, ptLen)
	copy(plaintext, inner)
	for i := 0; i < padLen; i++ {
		plaintext[innerLen+i] = byte(i + 1) // RFC 4303 monotonic pad
	}
	plaintext[ptLen-2] = byte(padLen)
	plaintext[ptLen-1] = nextHeaderIPv4

	sa.seq++
	var iv [ivLen]byte
	binary.BigEndian.PutUint64(iv[:8], g.rng.Uint64())
	binary.BigEndian.PutUint64(iv[8:], g.rng.Uint64())

	ct := make([]byte, ptLen)
	cipher.NewCBCEncrypter(sa.block, iv[:]).CryptBlocks(ct, plaintext)

	// Assemble: outer IP | ESP hdr | IV | ct | ICV.
	espLen := espHeaderLen + ivLen + ptLen + icvLen
	outLen := packet.EthHeaderLen + packet.IPv4HeaderLen + espLen
	out := make([]byte, outLen)
	copy(out, frame[:packet.EthHeaderLen]) // keep L2
	outer := packet.IPv4{
		TotalLen: uint16(packet.IPv4HeaderLen + espLen),
		TTL:      64,
		Protocol: packet.ProtoESP,
		Src:      sa.TunnelSrc,
		Dst:      sa.TunnelDst,
	}
	if err := outer.SerializeTo(out[packet.EthHeaderLen:]); err != nil {
		return err
	}
	esp := out[packet.EthHeaderLen+packet.IPv4HeaderLen:]
	binary.BigEndian.PutUint32(esp[0:4], sa.SPI)
	binary.BigEndian.PutUint32(esp[4:8], sa.seq)
	copy(esp[espHeaderLen:], iv[:])
	copy(esp[espHeaderLen+ivLen:], ct)

	mac := hmac.New(sha1.New, sa.AuthKey[:])
	mac.Write(esp[:espHeaderLen+ivLen+ptLen])
	copy(esp[espHeaderLen+ivLen+ptLen:], mac.Sum(nil)[:icvLen])

	m.SetFrame(out)
	g.Encapsulated++
	return nil
}

// Decap performs inbound ESP processing, restoring the inner packet.
func (g *Gateway) decap(m *mbuf.Mbuf, p *packet.Parsed) error {
	frame := m.Bytes()
	esp := frame[packet.EthHeaderLen+packet.IPv4HeaderLen : packet.EthHeaderLen+int(p.IP.TotalLen)]
	if len(esp) < espHeaderLen+ivLen+aes.BlockSize+icvLen {
		g.PolicyMisses++
		return ErrMalformed
	}
	spi := binary.BigEndian.Uint32(esp[0:4])
	seq := binary.BigEndian.Uint32(esp[4:8])
	sa := g.bySPI[spi]
	if sa == nil {
		g.PolicyMisses++
		return ErrNoSA
	}
	authed := esp[:len(esp)-icvLen]
	mac := hmac.New(sha1.New, sa.AuthKey[:])
	mac.Write(authed)
	if !hmac.Equal(mac.Sum(nil)[:icvLen], esp[len(esp)-icvLen:]) {
		g.AuthFailures++
		return ErrAuth
	}
	if !sa.window.check(seq) {
		g.Replays++
		return ErrReplay
	}
	iv := esp[espHeaderLen : espHeaderLen+ivLen]
	ct := esp[espHeaderLen+ivLen : len(esp)-icvLen]
	if len(ct)%aes.BlockSize != 0 {
		g.PolicyMisses++
		return ErrMalformed
	}
	pt := make([]byte, len(ct))
	cipher.NewCBCDecrypter(sa.block, iv).CryptBlocks(pt, ct)
	padLen := int(pt[len(pt)-2])
	next := pt[len(pt)-1]
	if next != nextHeaderIPv4 || padLen+espTrailerMin > len(pt) {
		g.PolicyMisses++
		return ErrMalformed
	}
	inner := pt[:len(pt)-espTrailerMin-padLen]
	out := make([]byte, packet.EthHeaderLen+len(inner))
	copy(out, frame[:packet.EthHeaderLen])
	copy(out[packet.EthHeaderLen:], inner)
	m.SetFrame(out)
	g.Decapsulated++
	return nil
}

var _ apps.BurstProcessor = (*Gateway)(nil)
