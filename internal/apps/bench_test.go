package apps_test

import (
	"testing"

	"metronome/internal/apps"
	"metronome/internal/apps/flowatcher"
	"metronome/internal/mbuf"
	"metronome/internal/packet"
	"metronome/internal/traffic"
)

// benchBurst returns 32 routable 64-byte UDP frames (copied out of the
// generator's reuse buffer) plus the mbufs and verdict buffer the benchmarks
// cycle through — the steady-state working set of one Runner drain.
func benchBurst(b *testing.B) ([][]byte, []*mbuf.Mbuf, []apps.Verdict) {
	b.Helper()
	gen := traffic.NewFrameGen(1, burstLen, 64)
	frames := make([][]byte, burstLen)
	for i := range frames {
		f, _ := gen.Next()
		frames[i] = append([]byte(nil), f...)
	}
	pool := mbuf.NewPool(burstLen + 1)
	ms := make([]*mbuf.Mbuf, burstLen)
	for i := range ms {
		m, err := pool.Get()
		if err != nil {
			b.Fatal(err)
		}
		m.SetFrame(frames[i])
		ms[i] = m
	}
	return frames, ms, make([]apps.Verdict, burstLen)
}

// l3fwd decrements TTL in place, so each iteration restores the TTL byte
// (one store per packet, identical for both dispatch paths).
func restoreTTL(ms []*mbuf.Mbuf) {
	for _, m := range ms {
		m.Bytes()[packet.EthHeaderLen+8] = 64
	}
}

func benchL3fwd(b *testing.B, p apps.BurstProcessor) {
	_, ms, verdicts := benchBurst(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		restoreTTL(ms)
		p.ProcessBurst(ms, verdicts)
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)*burstLen/b.Elapsed().Seconds()/1e6, "Mpps")
}

func BenchmarkL3fwdBurst32(b *testing.B)     { benchL3fwd(b, newL3fwd()) }
func BenchmarkL3fwdPerPacket32(b *testing.B) { benchL3fwd(b, apps.PerPacket{P: newL3fwd()}) }

func benchFlowatcher(b *testing.B, p apps.BurstProcessor) {
	_, ms, verdicts := benchBurst(b)
	p.ProcessBurst(ms, verdicts) // prime the flow table: steady state, no inserts
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.ProcessBurst(ms, verdicts)
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)*burstLen/b.Elapsed().Seconds()/1e6, "Mpps")
}

func BenchmarkFlowatcherBurst32(b *testing.B) { benchFlowatcher(b, flowatcher.New()) }
func BenchmarkFlowatcherPerPacket32(b *testing.B) {
	benchFlowatcher(b, apps.PerPacket{P: flowatcher.New()})
}

// ipsecgw rewrites the frame into an ESP tunnel packet, so each iteration
// re-seats the original plaintext frames (same copy cost on both paths).
func benchIpsecgw(b *testing.B, p apps.BurstProcessor) {
	frames, ms, verdicts := benchBurst(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j, m := range ms {
			m.SetFrame(frames[j])
		}
		p.ProcessBurst(ms, verdicts)
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)*burstLen/b.Elapsed().Seconds()/1e6, "Mpps")
}

func BenchmarkIpsecgwBurst32(b *testing.B)     { benchIpsecgw(b, newGateway()) }
func BenchmarkIpsecgwPerPacket32(b *testing.B) { benchIpsecgw(b, apps.PerPacket{P: newGateway()}) }
