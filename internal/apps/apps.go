// Package apps defines the contract between packet-processing applications
// and the two Metronome runtimes. Each application processes real frames
// (exercised by its own tests and the real-time runtime) and publishes a
// calibrated per-packet cycle cost, which the simulator converts into the
// service rate µ of the analytical model.
package apps

import "metronome/internal/mbuf"

// Verdict is what an application decides for one packet.
type Verdict int

const (
	// Drop discards the packet (no route, failed authentication, ...).
	Drop Verdict = iota
	// Forward sends the packet out of the port in Mbuf.Meta.
	Forward
	// Consume keeps the packet (monitoring applications).
	Consume
)

// Processor is a run-to-completion packet application.
type Processor interface {
	// Name identifies the application in reports.
	Name() string
	// Process handles one packet and returns its verdict. Implementations
	// must not retain m past the call.
	Process(m *mbuf.Mbuf) Verdict
	// CyclesPerPacket is the calibrated per-packet CPU cost used by the
	// simulator; see EXPERIMENTS.md for the calibration table.
	CyclesPerPacket() float64
}

// ServiceRate converts a processor's cycle cost into a service rate µ
// (packets/second) at the given core frequency in GHz.
func ServiceRate(p Processor, freqGHz float64) float64 {
	return freqGHz * 1e9 / p.CyclesPerPacket()
}
