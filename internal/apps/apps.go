// Package apps defines the contract between packet-processing applications
// and the two Metronome runtimes. Each application processes real frames
// (exercised by its own tests and the real-time runtime) and publishes a
// calibrated per-packet cycle cost, which the simulator converts into the
// service rate µ of the analytical model.
package apps

import "metronome/internal/mbuf"

// Verdict is what an application decides for one packet.
type Verdict int

const (
	// Drop discards the packet (no route, failed authentication, ...).
	Drop Verdict = iota
	// Forward sends the packet out of the port in Mbuf.Meta.
	Forward
	// Consume keeps the packet (monitoring applications).
	Consume
)

// Processor is a run-to-completion packet application.
type Processor interface {
	// Name identifies the application in reports.
	Name() string
	// Process handles one packet and returns its verdict. Implementations
	// must not retain m past the call.
	Process(m *mbuf.Mbuf) Verdict
	// CyclesPerPacket is the calibrated per-packet CPU cost used by the
	// simulator; see EXPERIMENTS.md for the calibration table.
	CyclesPerPacket() float64
}

// BurstProcessor is the burst-native application contract: one virtual
// dispatch per burst instead of one per packet, mirroring how DPDK apps
// consume rte_eth_rx_burst output. verdicts is caller-owned scratch with
// len(verdicts) >= len(ms); the processor fills verdicts[i] for ms[i] and
// must allocate nothing per burst in steady state. The semantics are the
// burst-unrolled equivalent of Process: same verdicts, same counters, same
// frame mutations for the same input stream (equivalence is test-enforced
// per application).
type BurstProcessor interface {
	Processor
	// ProcessBurst handles ms[0:len(ms)] and writes one verdict per packet
	// into verdicts. Implementations must not retain ms past the call.
	ProcessBurst(ms []*mbuf.Mbuf, verdicts []Verdict)
}

// PerPacket adapts any Processor to the burst contract by paying one
// virtual dispatch per packet — the compatibility shim the calibration
// benchmarks compare the native burst paths against.
type PerPacket struct{ P Processor }

// Name implements Processor.
func (s PerPacket) Name() string { return s.P.Name() }

// CyclesPerPacket implements Processor.
func (s PerPacket) CyclesPerPacket() float64 { return s.P.CyclesPerPacket() }

// Process implements Processor.
func (s PerPacket) Process(m *mbuf.Mbuf) Verdict { return s.P.Process(m) }

// ProcessBurst implements BurstProcessor the slow way: one interface call
// per packet.
func (s PerPacket) ProcessBurst(ms []*mbuf.Mbuf, verdicts []Verdict) {
	for i, m := range ms {
		verdicts[i] = s.P.Process(m)
	}
}

var _ BurstProcessor = PerPacket{}

// ServiceRate converts a processor's cycle cost into a service rate µ
// (packets/second) at the given core frequency in GHz.
func ServiceRate(p Processor, freqGHz float64) float64 {
	return freqGHz * 1e9 / p.CyclesPerPacket()
}
