package apps_test

import (
	"bytes"
	"testing"

	"metronome/internal/apps"
	"metronome/internal/apps/flowatcher"
	"metronome/internal/apps/ipsecgw"
	"metronome/internal/apps/l3fwd"
	"metronome/internal/mbuf"
	"metronome/internal/packet"
	"metronome/internal/traffic"
	"metronome/internal/xrand"
)

const burstLen = 32

// stream builds a deterministic adversarial frame mix: routable UDP flows,
// TTL edges (0/1/2), malformed runts, wrong ethertypes, and truncations.
func stream(seed uint64, n int) [][]byte {
	gen := traffic.NewFrameGen(seed, 64, 64)
	rng := xrand.New(seed + 1)
	frames := make([][]byte, 0, n)
	for i := 0; i < n; i++ {
		f, _ := gen.Next()
		frame := append([]byte(nil), f...)
		switch rng.Intn(10) {
		case 0: // TTL edge: 0, 1 or 2
			frame[packet.EthHeaderLen+8] = byte(rng.Intn(3))
		case 1: // runt
			frame = frame[:rng.Intn(len(frame))]
		case 2: // wrong ethertype
			frame[12] = 0x86
			frame[13] = 0xDD
		case 3: // IPv6 version nibble
			frame[packet.EthHeaderLen] = 0x60
		}
		if len(frame) == 0 {
			frame = []byte{0}
		}
		frames = append(frames, frame)
	}
	return frames
}

// runPerPacket drives p over the stream one Process call at a time and
// returns the verdicts, post-processing frame bytes and (key, meta) pairs.
func runPerPacket(t *testing.T, p apps.Processor, frames [][]byte) ([]apps.Verdict, [][]byte, []packet.FlowKey, []uint64) {
	t.Helper()
	pool := mbuf.NewPool(2)
	m, err := pool.Get()
	if err != nil {
		t.Fatal(err)
	}
	defer m.Free()
	verdicts := make([]apps.Verdict, len(frames))
	out := make([][]byte, len(frames))
	keys := make([]packet.FlowKey, len(frames))
	metas := make([]uint64, len(frames))
	for i, f := range frames {
		m.SetFrame(f)
		m.Key, m.Meta = packet.FlowKey{}, 0
		verdicts[i] = p.Process(m)
		out[i] = append([]byte(nil), m.Bytes()...)
		keys[i], metas[i] = m.Key, m.Meta
	}
	return verdicts, out, keys, metas
}

// runBurst drives p over the stream ProcessBurst-wise (bursts of burstLen,
// final partial burst included) and returns the same observables.
func runBurst(t *testing.T, p apps.BurstProcessor, frames [][]byte) ([]apps.Verdict, [][]byte, []packet.FlowKey, []uint64) {
	t.Helper()
	pool := mbuf.NewPool(burstLen + 1)
	bufs := make([]*mbuf.Mbuf, burstLen)
	for i := range bufs {
		m, err := pool.Get()
		if err != nil {
			t.Fatal(err)
		}
		bufs[i] = m
	}
	verdicts := make([]apps.Verdict, len(frames))
	out := make([][]byte, len(frames))
	keys := make([]packet.FlowKey, len(frames))
	metas := make([]uint64, len(frames))
	vbuf := make([]apps.Verdict, burstLen)
	for at := 0; at < len(frames); at += burstLen {
		n := burstLen
		if at+n > len(frames) {
			n = len(frames) - at
		}
		for j := 0; j < n; j++ {
			bufs[j].SetFrame(frames[at+j])
			bufs[j].Key, bufs[j].Meta = packet.FlowKey{}, 0
		}
		p.ProcessBurst(bufs[:n], vbuf[:n])
		for j := 0; j < n; j++ {
			verdicts[at+j] = vbuf[j]
			out[at+j] = append([]byte(nil), bufs[j].Bytes()...)
			keys[at+j], metas[at+j] = bufs[j].Key, bufs[j].Meta
		}
	}
	for _, m := range bufs {
		m.Free()
	}
	return verdicts, out, keys, metas
}

// compare asserts the two paths produced byte-identical observables.
func compare(t *testing.T, frames [][]byte,
	vA []apps.Verdict, fA [][]byte, kA []packet.FlowKey, mA []uint64,
	vB []apps.Verdict, fB [][]byte, kB []packet.FlowKey, mB []uint64) {
	t.Helper()
	for i := range frames {
		if vA[i] != vB[i] {
			t.Fatalf("packet %d: verdict %v (per-packet) vs %v (burst)", i, vA[i], vB[i])
		}
		if !bytes.Equal(fA[i], fB[i]) {
			t.Fatalf("packet %d: frames diverge after processing", i)
		}
		if kA[i] != kB[i] || mA[i] != mB[i] {
			t.Fatalf("packet %d: key/meta diverge: %v/%d vs %v/%d", i, kA[i], mA[i], kB[i], mB[i])
		}
	}
}

func newL3fwd() *l3fwd.Forwarder {
	f := l3fwd.New([]l3fwd.Port{
		{MAC: packet.MAC{2, 0, 0, 0, 0, 1}, GwMAC: packet.MAC{2, 0, 0, 0, 1, 1}},
		{MAC: packet.MAC{2, 0, 0, 0, 0, 2}, GwMAC: packet.MAC{2, 0, 0, 0, 1, 2}},
	})
	// A default route plus a /8 split keeps both Forward and NoRoute paths
	// exercised (FrameGen draws fully random destinations).
	if err := f.Table.Add(0, 1, 0); err != nil { // 0.0.0.0/1 -> port 0
		panic(err)
	}
	if err := f.Table.Add(packet.AddrFrom4(192, 0, 0, 0), 8, 1); err != nil {
		panic(err)
	}
	return f
}

func TestL3fwdBurstEquivalence(t *testing.T) {
	frames := stream(100, 4000)
	ref := newL3fwd()
	nat := newL3fwd()
	vA, fA, kA, mA := runPerPacket(t, ref, frames)
	vB, fB, kB, mB := runBurst(t, nat, frames)
	compare(t, frames, vA, fA, kA, mA, vB, fB, kB, mB)
	if ref.Forwarded != nat.Forwarded || ref.NoRoute != nat.NoRoute ||
		ref.Malformed != nat.Malformed || ref.Expired != nat.Expired {
		t.Fatalf("counters diverge: %+v vs %+v", *ref, *nat)
	}
	if ref.Forwarded == 0 || ref.Malformed == 0 || ref.Expired == 0 {
		t.Fatalf("stream did not exercise all paths: %+v", *ref)
	}
}

func newGateway() *ipsecgw.Gateway {
	g := ipsecgw.New(7)
	sa := &ipsecgw.SA{
		SPI:       0x2002,
		EncKey:    [16]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16},
		AuthKey:   [20]byte{9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9},
		TunnelSrc: packet.AddrFrom4(192, 0, 2, 1),
		TunnelDst: packet.AddrFrom4(198, 51, 100, 1),
	}
	if err := g.AddSA(sa, 0, 0); err != nil { // match-all outbound policy
		panic(err)
	}
	return g
}

func TestIpsecgwBurstEquivalence(t *testing.T) {
	// Both instances consume their IV RNG in stream order, so identical
	// inputs must yield identical ESP bytes.
	frames := stream(200, 2000)
	ref := newGateway()
	nat := newGateway()
	vA, fA, kA, mA := runPerPacket(t, ref, frames)
	vB, fB, kB, mB := runBurst(t, nat, frames)
	compare(t, frames, vA, fA, kA, mA, vB, fB, kB, mB)
	if ref.Encapsulated != nat.Encapsulated || ref.PolicyMisses != nat.PolicyMisses {
		t.Fatalf("counters diverge: enc %d/%d miss %d/%d",
			ref.Encapsulated, nat.Encapsulated, ref.PolicyMisses, nat.PolicyMisses)
	}
	if ref.Encapsulated == 0 {
		t.Fatal("stream never hit the encap path")
	}
}

func TestFlowatcherBurstEquivalence(t *testing.T) {
	frames := stream(300, 4000)
	ref := flowatcher.New()
	nat := flowatcher.New()
	vA, fA, kA, mA := runPerPacket(t, ref, frames)
	vB, fB, kB, mB := runBurst(t, nat, frames)
	compare(t, frames, vA, fA, kA, mA, vB, fB, kB, mB)
	if ref.Packets != nat.Packets || ref.Malformed != nat.Malformed {
		t.Fatalf("counters diverge: pkts %d/%d malformed %d/%d",
			ref.Packets, nat.Packets, ref.Malformed, nat.Malformed)
	}
	if ref.FlowCount() != nat.FlowCount() {
		t.Fatalf("flow counts diverge: %d vs %d", ref.FlowCount(), nat.FlowCount())
	}
	if ref.Sizes.Mean() != nat.Sizes.Mean() || ref.Interarrival.Mean() != nat.Interarrival.Mean() {
		t.Fatal("packet-level statistics diverge")
	}
	mismatched := 0
	ref.Range(func(k packet.FlowKey, fs *flowatcher.FlowStats) bool {
		other, ok := nat.Flow(k)
		if !ok || *other != *fs {
			mismatched++
			return false
		}
		return true
	})
	if mismatched != 0 {
		t.Fatal("per-flow stats diverge between the paths")
	}
	if ref.Packets == 0 || ref.Malformed == 0 {
		t.Fatalf("stream did not exercise both paths: %d/%d", ref.Packets, ref.Malformed)
	}
}

// The PerPacket shim must agree with the native burst path too — it is the
// baseline the BENCH_apps gates compare against.
func TestPerPacketShimEquivalence(t *testing.T) {
	frames := stream(400, 2000)
	ref := newL3fwd()
	nat := newL3fwd()
	vA, fA, kA, mA := runBurst(t, apps.PerPacket{P: ref}, frames)
	vB, fB, kB, mB := runBurst(t, nat, frames)
	compare(t, frames, vA, fA, kA, mA, vB, fB, kB, mB)
}

// Sharded flowatcher: per-queue shards fed by an RSS split must, after the
// read-time merge, agree exactly with one monitor that saw every packet.
func TestShardedMergeMatchesSingleMonitor(t *testing.T) {
	const queues = 4
	gen := traffic.NewFrameGen(55, 256, 64)
	rss := packet.NewToeplitz(packet.DefaultRSSKey)
	single := flowatcher.New()
	sharded := flowatcher.NewSharded(queues)
	pool := mbuf.NewPool(2)
	m, err := pool.Get()
	if err != nil {
		t.Fatal(err)
	}
	defer m.Free()
	vbuf := make([]apps.Verdict, 1)
	for i := 0; i < 20000; i++ {
		frame, k := gen.Next()
		m.SetFrame(frame)
		single.Process(m)
		q := rss.QueueFor(k, queues)
		sharded.Shard(q).ProcessBurst([]*mbuf.Mbuf{m}, vbuf)
	}
	if got, want := sharded.Packets(), single.Packets; got != want {
		t.Fatalf("merged packets = %d, want %d", got, want)
	}
	if got, want := sharded.FlowCount(), single.FlowCount(); got != want {
		t.Fatalf("merged flow count = %d, want %d", got, want)
	}
	single.Range(func(k packet.FlowKey, fs *flowatcher.FlowStats) bool {
		merged, ok := sharded.Flow(k)
		if !ok {
			t.Fatalf("flow %v missing after merge", k)
		}
		if merged.Packets != fs.Packets || merged.Bytes != fs.Bytes ||
			merged.MinSize != fs.MinSize || merged.MaxSize != fs.MaxSize {
			t.Fatalf("flow %v merged stats %+v != %+v", k, merged, *fs)
		}
		if uint64(sharded.Estimate(k)) < uint64(fs.Packets) {
			t.Fatalf("summed sketch undercounts flow %v", k)
		}
		return true
	})
	// Merged TopK must equal the single monitor's TopK (same exact counts,
	// same deterministic tie-break).
	a, b := single.TopK(10), sharded.TopK(10)
	if len(a) != len(b) {
		t.Fatalf("topk lengths: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("topk[%d]: %v vs %v", i, a[i], b[i])
		}
	}
}

// A flow deliberately written to several shards (no RSS partitioning) must
// still merge exactly: sums, envelopes and dedup'd counts.
func TestShardedCrossShardFlowMerge(t *testing.T) {
	sharded := flowatcher.NewSharded(3)
	pool := mbuf.NewPool(2)
	m, err := pool.Get()
	if err != nil {
		t.Fatal(err)
	}
	defer m.Free()
	k := packet.FlowKey{Src: 1, Dst: 2, SrcPort: 3, DstPort: 4, Proto: packet.ProtoUDP}
	buf := make([]byte, 2048)
	vbuf := make([]apps.Verdict, 1)
	sizes := map[int][]int{0: {64, 128}, 1: {256}, 2: {96, 512, 80}}
	total, bytes := 0, 0
	for q, ss := range sizes {
		for _, size := range ss {
			f, _ := packet.BuildUDP(buf, size, k.Src, k.Dst, k.SrcPort, k.DstPort)
			m.SetFrame(f)
			sharded.Shard(q).ProcessBurst([]*mbuf.Mbuf{m}, vbuf)
			total++
			bytes += size
		}
	}
	if got := sharded.FlowCount(); got != 1 {
		t.Fatalf("flow count = %d, want 1 (cross-shard dedup)", got)
	}
	fs, ok := sharded.Flow(k)
	if !ok {
		t.Fatal("flow missing")
	}
	if fs.Packets != int64(total) || fs.Bytes != int64(bytes) {
		t.Fatalf("merged pkts/bytes = %d/%d, want %d/%d", fs.Packets, fs.Bytes, total, bytes)
	}
	if fs.MinSize != 64 || fs.MaxSize != 512 {
		t.Fatalf("merged size envelope = [%d..%d], want [64..512]", fs.MinSize, fs.MaxSize)
	}
	if top := sharded.TopK(5); len(top) != 1 || top[0] != k {
		t.Fatalf("merged topk = %v", top)
	}
}

// Sharding contract under the race detector: one goroutine per shard, no
// locks, exactly how runtime.NewProc drives per-queue processors.
func TestShardedConcurrentWritersRace(t *testing.T) {
	const queues = 4
	sharded := flowatcher.NewSharded(queues)
	done := make(chan int64, queues)
	for q := 0; q < queues; q++ {
		go func(q int) {
			gen := traffic.NewFrameGen(uint64(900+q), 64, 64)
			pool := mbuf.NewPool(2)
			m, _ := pool.Get()
			vbuf := make([]apps.Verdict, 1)
			bufs := []*mbuf.Mbuf{m}
			for i := 0; i < 5000; i++ {
				frame, _ := gen.Next()
				m.SetFrame(frame)
				sharded.Shard(q).ProcessBurst(bufs, vbuf)
			}
			m.Free()
			done <- sharded.Shard(q).Packets
		}(q)
	}
	var want int64
	for q := 0; q < queues; q++ {
		want += <-done
	}
	// Writers are quiescent: the read-time merge is exact now.
	if got := sharded.Packets(); got != want {
		t.Fatalf("merged packets = %d, want %d", got, want)
	}
	var sum int64
	for q := 0; q < queues; q++ {
		sharded.Shard(q).Range(func(_ packet.FlowKey, fs *flowatcher.FlowStats) bool {
			sum += fs.Packets
			return true
		})
	}
	if sum != want {
		t.Fatalf("per-flow sum = %d, want %d", sum, want)
	}
}

// The acceptance bar: a monitor must hold >= 1M concurrent flows with exact
// counters that survive the sharded merge.
func TestMillionFlowsExactCounters(t *testing.T) {
	if testing.Short() {
		t.Skip("1M-flow table build is a long test")
	}
	const flows = 1 << 20 // 1,048,576
	const shards = 4
	sharded := flowatcher.NewSharded(shards)
	pool := mbuf.NewPool(2)
	m, err := pool.Get()
	if err != nil {
		t.Fatal(err)
	}
	defer m.Free()
	buf := make([]byte, 2048)
	vbuf := make([]apps.Verdict, 1)
	bufs := []*mbuf.Mbuf{m}
	// Dense key grid: flow i gets 1 + i%3 packets, shard i%shards — and
	// every 64k-th flow is also written to a second shard to exercise the
	// cross-shard merge at scale.
	for i := 0; i < flows; i++ {
		k := packet.FlowKey{
			Src:     packet.Addr(i),
			Dst:     packet.Addr(^uint32(0) - uint32(i)),
			SrcPort: uint16(i),
			DstPort: uint16(i >> 16),
			Proto:   packet.ProtoUDP,
		}
		f, err := packet.BuildUDP(buf, 64, k.Src, k.Dst, k.SrcPort, k.DstPort)
		if err != nil {
			t.Fatal(err)
		}
		m.SetFrame(f)
		for rep := 0; rep <= i%3; rep++ {
			sharded.Shard(i%shards).ProcessBurst(bufs, vbuf)
		}
		if i%65536 == 0 {
			sharded.Shard((i+1)%shards).ProcessBurst(bufs, vbuf)
		}
	}
	if got := sharded.FlowCount(); got != flows {
		t.Fatalf("flow count = %d, want %d", got, flows)
	}
	// Exactness survives the merge: spot-check a deterministic sample of
	// flows across the whole range, including the cross-shard ones.
	for i := 0; i < flows; i += 4099 { // prime stride: hits all shards
		k := packet.FlowKey{
			Src:     packet.Addr(i),
			Dst:     packet.Addr(^uint32(0) - uint32(i)),
			SrcPort: uint16(i),
			DstPort: uint16(i >> 16),
			Proto:   packet.ProtoUDP,
		}
		want := int64(1 + i%3)
		if i%65536 == 0 {
			want++
		}
		fs, ok := sharded.Flow(k)
		if !ok {
			t.Fatalf("flow %d missing", i)
		}
		if fs.Packets != want {
			t.Fatalf("flow %d packets = %d, want %d", i, fs.Packets, want)
		}
	}
	wantPkts := int64(0)
	for i := 0; i < flows; i++ {
		wantPkts += int64(1 + i%3)
	}
	wantPkts += int64((flows + 65535) / 65536)
	if got := sharded.Packets(); got != wantPkts {
		t.Fatalf("total packets = %d, want %d", got, wantPkts)
	}
}

// The ServiceRate contract both dispatch paths share: a burst processor's
// calibrated cycle cost is per packet, independent of the path.
func TestServiceRateSharedAcrossPaths(t *testing.T) {
	for _, p := range []apps.Processor{newL3fwd(), newGateway(), flowatcher.New()} {
		direct := apps.ServiceRate(p, 2.1)
		shimmed := apps.ServiceRate(apps.PerPacket{P: p}, 2.1)
		if direct != shimmed {
			t.Errorf("%s: shim changed the calibrated rate: %v vs %v", p.Name(), direct, shimmed)
		}
	}
}
