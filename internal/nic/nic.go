// Package nic models the receive side of a DPDK-driven NIC at the level
// Metronome observes it: per-queue descriptor rings fed by an arrival
// process, drained in fluid busy periods at the application's service rate,
// with drop accounting against the ring capacity and MoonGen-style
// latency tagging of a sampled subset of packets.
//
// A per-packet discrete-event simulation is intractable at 14.88 Mpps over
// minutes of virtual time; the cycle-level model instead advances queue
// occupancy analytically between the events Metronome actually reacts to
// (thread wake-ups, lock hand-offs, drain completions). See DESIGN.md §4.
package nic

import (
	"math"

	"metronome/internal/stats"
	"metronome/internal/traffic"
	"metronome/internal/xrand"
)

// Options configure a queue beyond its arrival process.
type Options struct {
	// Cap is the Rx descriptor ring size (32..4096 on an X520; the paper
	// uses the DPDK default of 4096 for loss-sensitive runs).
	Cap int64
	// TagProb is the probability that an arrival is latency-tagged
	// (MoonGen timestamps a subset; so do we).
	TagProb float64
	// BaseLatency is the fixed wire+NIC+DMA path latency added to every
	// tagged sample (the floor below which no software can go).
	BaseLatency float64
	// TxBatch is the transmit flush threshold in packets; a packet's
	// departure completes when its batch fills or, for a cycle's final
	// partial batch, at the next service period (Sec. V-C). <= 1 flushes
	// immediately.
	TxBatch int
}

// DefaultOptions mirror the paper's single-queue setup. The effective
// buffering of 576 packets is what Table I's loss pattern implies: a
// 512-descriptor Rx ring plus one 64-packet NIC-FIFO burst of headroom.
// At target V̄=20us the vacation-length atom (~573 packets at line rate)
// grazes that limit, so only the upper tail of the distribution clips —
// the paper's 1.18 permille — while V̄<=15us (N_V <= ~440) is loss-free.
func DefaultOptions() Options {
	return Options{Cap: 576, TagProb: 0.001, BaseLatency: 6.8e-6, TxBatch: 32}
}

type tagEntry struct {
	arrival float64
	pos     float64 // ordinal within the cycle (1-based, fractional ok)
}

// Queue is one Rx queue.
type Queue struct {
	ID   int
	Opt  Options
	Proc traffic.Process
	Rng  *xrand.Rand

	// occupancy state
	upTo   float64 // arrivals integrated up to this time
	occ    float64 // packets buffered at upTo
	occInt float64 // time integral of occupancy (packet-seconds) up to upTo

	// dark marks a blacked-out queue (fault injection): polls find nothing
	// while arrivals keep accruing against the ring capacity, so the
	// backlog — and past capacity, the drops — build exactly as they would
	// behind a flapped link. Toggle with SetDark.
	dark bool

	// cycle state
	serving      bool
	vacStart     float64
	serviceStart float64
	serveT       float64 // service progress time
	mu           float64
	cyclePos     float64 // arrivals so far in this cycle (served ordinals)
	tagged       []tagEntry
	pending      []float64 // arrival times awaiting next-cycle tx flush

	// statistics
	RxPackets int64
	Served    int64
	Drops     int64
	VacObs    stats.Welford
	BusyObs   stats.Welford
	NVObs     stats.Welford
	Lat       stats.Sample

	// LatSink, when non-nil, receives every tagged packet's retrieval
	// latency (seconds) alongside Lat — the hook the core engine uses to
	// publish the sim substrate's exact fluid latencies into the
	// telemetry bus's histograms without nic knowing about the bus.
	LatSink func(latSeconds float64)

	rxAcc, servedAcc float64 // float accumulators behind the int counters
}

// lat records one tagged packet's retrieval latency into the Sample and,
// when installed, the latency sink.
func (q *Queue) lat(v float64) {
	q.Lat.Add(v)
	if q.LatSink != nil {
		q.LatSink(v)
	}
}

// NewQueue builds a queue over an arrival process. rng may be shared only
// within one goroutine (simulations are single-threaded).
func NewQueue(id int, proc traffic.Process, rng *xrand.Rand, opt Options) *Queue {
	if opt.Cap <= 0 {
		opt.Cap = 4096
	}
	return &Queue{ID: id, Opt: opt, Proc: proc, Rng: rng}
}

// Serving reports whether a service (busy period) is in progress.
func (q *Queue) Serving() bool { return q.serving }

// Occupancy returns the buffered packet count at time t (synchronising
// pending arrivals if the queue is idle).
func (q *Queue) Occupancy(t float64) float64 {
	if !q.serving {
		q.syncIdle(t)
	}
	return q.occ
}

// syncIdle accumulates arrivals into the buffer while nobody serves.
func (q *Queue) syncIdle(t float64) {
	if t <= q.upTo {
		return
	}
	old := q.occ
	n := float64(q.Proc.CountIn(q.upTo, t, q.Rng))
	q.addArrivals(n)
	// Fluid view: occupancy grew linearly from old to occ over the window,
	// so the trapezoid is the exact integral contribution.
	q.occInt += (old + q.occ) / 2 * (t - q.upTo)
	q.upTo = t
}

// addArrivals accounts n arrivals against capacity: packets beyond the
// ring size are dropped (the NIC's imissed counter), the rest are received.
func (q *Queue) addArrivals(n float64) {
	kept := n
	if over := q.occ + n - float64(q.Opt.Cap); over > 0 {
		kept = n - over
		q.Drops += int64(over)
	}
	q.rxAcc += kept
	// x - floor(x) is exact for any float >= 0, so draining the integer
	// part in one step is bit-identical to decrementing in a loop — without
	// the O(packets) cost that used to dominate simulation profiles.
	if q.rxAcc >= 1 {
		n := math.Floor(q.rxAcc)
		q.rxAcc -= n
		q.RxPackets += int64(n)
	}
	q.occ += kept
}

// SetDark blacks out (dark=true) or recovers (dark=false) the queue. While
// dark, BeginService reports an empty queue (the NIC looks dead to a
// poller) but arrivals keep integrating against the ring: occupancy builds,
// overflow drops accrue, and the whole backlog surfaces at the first
// post-recovery service cycle. Occupancy is synchronised to t first so the
// transition lands exactly on the fluid model's clock.
func (q *Queue) SetDark(t float64, dark bool) {
	if q.dark == dark {
		return
	}
	if !q.serving {
		q.syncIdle(t)
	}
	q.dark = dark
}

// Dark reports whether the queue is blacked out.
func (q *Queue) Dark() bool { return q.dark }

// BeginService closes the current vacation period at time t and starts a
// busy period drained at mu packets/second. It returns the packets found
// waiting (the paper's N_V). On a dark queue it returns zero — the poll
// sees nothing — while the synchronised backlog stays buffered for
// recovery.
func (q *Queue) BeginService(t, mu float64) (nv float64) {
	if q.serving {
		panic("nic: BeginService while serving")
	}
	if mu <= 0 {
		panic("nic: non-positive service rate")
	}
	// Arrivals of the vacation period [vacStart, t).
	preOcc := q.occ
	q.syncIdle(t)
	nv = q.occ
	if q.dark {
		// The ring holds preOcc..occ packets, but the NIC is dark: the poll
		// observes nothing and this cycle serves nothing. Tagging is skipped
		// too — a stuck packet's latency resolves after recovery, and most
		// of the deep-backlog tags would be dropped fluid anyway.
		q.VacObs.Add(t - q.vacStart)
		q.NVObs.Add(0)
		q.serving = true
		q.serviceStart = t
		q.serveT = t
		q.mu = mu
		q.cyclePos = 0
		return 0
	}
	q.VacObs.Add(t - q.vacStart)
	q.NVObs.Add(nv)

	// Tag a sample of the vacation arrivals for latency accounting.
	newArr := nv - preOcc
	if q.Opt.TagProb > 0 && newArr > 0 && t > q.vacStart {
		k := q.Rng.Poisson(newArr * q.Opt.TagProb)
		for i := int64(0); i < k; i++ {
			a := q.Rng.Uniform(q.vacStart, t)
			// ordinal among this cycle's arrivals
			pos := preOcc + float64(q.Proc.CountIn(q.vacStart, a, q.Rng)) + 1
			if pos <= float64(q.Opt.Cap) {
				q.tagged = append(q.tagged, tagEntry{arrival: a, pos: pos})
			}
		}
	}

	// The previous cycle's final partial Tx batch flushes as transmission
	// resumes now.
	for _, a := range q.pending {
		q.lat(t + 1/mu - a + q.Opt.BaseLatency)
	}
	q.pending = q.pending[:0]

	q.serving = true
	q.serviceStart = t
	q.serveT = t
	q.mu = mu
	q.cyclePos = nv
	return nv
}

// Retune updates the service rate mid-busy-period (per-slice service-time
// noise, or a governor frequency change). Tagged-packet departures use the
// rate in effect when the cycle ends — an approximation that is exact for
// constant rates and unbiased for zero-mean noise.
func (q *Queue) Retune(mu float64) {
	if !q.serving {
		panic("nic: Retune while idle")
	}
	if mu <= 0 {
		panic("nic: non-positive service rate")
	}
	q.mu = mu
}

// ServeSlice advances the busy period by at most maxDur seconds of service.
// It returns done=true with the drain completion time when the queue
// empties within the slice; otherwise done=false and service continues at
// end (= start + maxDur). The arrival rate is sampled at the slice start
// (all our processes are piecewise constant at much coarser scales).
func (q *Queue) ServeSlice(maxDur float64) (done bool, end float64) {
	if !q.serving {
		panic("nic: ServeSlice while idle")
	}
	t0 := q.serveT
	occ0 := q.occ
	lambda := q.Proc.Rate(t0)
	var dt float64
	if q.mu > lambda {
		drainTime := q.occ / (q.mu - lambda)
		if drainTime <= maxDur {
			dt, done = drainTime, true
		} else {
			dt = maxDur
		}
	} else {
		dt = maxDur // overloaded: the slice cannot finish the queue
	}
	end = t0 + dt

	arrivals := float64(q.Proc.CountIn(t0, end, q.Rng))

	// Tag a sample of busy-period arrivals. Skip when the ring is at
	// capacity: those arrivals are being dropped, not queued.
	if q.Opt.TagProb > 0 && arrivals > 0 && q.occ < float64(q.Opt.Cap) {
		k := q.Rng.Poisson(arrivals * q.Opt.TagProb)
		for i := int64(0); i < k; i++ {
			a := q.Rng.Uniform(t0, end)
			pos := q.cyclePos + lambda*(a-t0) + 1
			q.tagged = append(q.tagged, tagEntry{arrival: a, pos: pos})
		}
	}

	// Service and arrival are concurrent within the slice: the occupancy
	// moves at the net rate, and drops occur only for the fluid that would
	// push it past the ring capacity.
	var servedWant, dropped float64
	if done {
		servedWant = q.occ + arrivals // exact: drain everything
		q.occ = 0
	} else {
		servedWant = q.mu * dt
		net := arrivals - servedWant
		if net > 0 {
			// Occupancy grows at the net rate; fluid past the ring
			// capacity is dropped.
			if over := q.occ + net - float64(q.Opt.Cap); over > 0 {
				dropped = over
				q.Drops += int64(over)
				net -= over
			}
		}
		q.occ += net
		if q.occ < 0 {
			q.occ = 0
		}
	}
	q.rxAcc += arrivals - dropped
	if q.rxAcc >= 1 {
		n := math.Floor(q.rxAcc)
		q.rxAcc -= n
		q.RxPackets += int64(n)
	}
	q.cyclePos += arrivals
	q.servedAcc += servedWant
	if q.servedAcc >= 1 {
		n := math.Floor(q.servedAcc)
		q.servedAcc -= n
		q.Served += int64(n)
	}
	// Within a slice the occupancy moves at a constant net rate (or drains
	// linearly to zero), so the trapezoid over the slice is exact.
	q.occInt += (occ0 + q.occ) / 2 * dt
	q.serveT = end
	q.upTo = end
	return done, end
}

// EndService closes the busy period at time t (the queue must have been
// drained by a final ServeSlice; empty polls may end immediately). Tagged
// packets resolve their departure and Tx-flush latency here.
func (q *Queue) EndService(t float64) {
	if !q.serving {
		panic("nic: EndService while idle")
	}
	q.BusyObs.Add(t - q.serviceStart)

	total := q.cyclePos
	batch := float64(q.Opt.TxBatch)
	for _, e := range q.tagged {
		depart := q.serviceStart + e.pos/q.mu
		if q.Opt.TxBatch <= 1 {
			q.lat(depart - e.arrival + q.Opt.BaseLatency)
			continue
		}
		flushOrd := math.Ceil(e.pos/batch) * batch
		if flushOrd <= total {
			fl := q.serviceStart + flushOrd/q.mu
			q.lat(fl - e.arrival + q.Opt.BaseLatency)
		} else {
			// Final partial batch: flushes when transmission resumes in
			// the next busy period.
			q.pending = append(q.pending, e.arrival)
		}
	}
	q.tagged = q.tagged[:0]

	q.serving = false
	q.vacStart = t
	if q.dark {
		// Dark cycle: nothing was served, arrivals kept flowing. Integrate
		// them up to t instead of zeroing — the backlog (and its overflow
		// drops) survives for the first post-recovery cycle.
		q.syncIdle(t)
		return
	}
	if t > q.upTo {
		// Constant occupancy across the tail gap, then the close-out zeroes
		// it at t.
		q.occInt += q.occ * (t - q.upTo)
		q.upTo = t
	}
	q.occ = 0
}

// Reset clears statistics (not occupancy), so experiments can discard
// warm-up transients.
func (q *Queue) Reset(t float64) {
	q.RxPackets, q.Served, q.Drops = 0, 0, 0
	q.VacObs, q.BusyObs, q.NVObs = stats.Welford{}, stats.Welford{}, stats.Welford{}
	q.Lat = stats.Sample{}
	_ = t
}

// OccIntegral returns the cumulative time integral of occupancy in
// packet-seconds, exact as of the last state-advancing call (BeginService,
// ServeSlice, EndService or an idle Occupancy probe). Dividing a delta of
// this integral by the window length yields the true time-averaged
// occupancy over the window — free of the sampling alias a point probe
// suffers, since Metronome's cycle structure pins point samples to the
// cycle phase the prober happens to run in. The integral survives Reset
// (observers difference it, so the epoch does not matter).
func (q *Queue) OccIntegral() float64 { return q.occInt }

// LossRate returns the drop fraction of offered packets.
func (q *Queue) LossRate() float64 {
	offered := q.RxPackets + q.Drops
	if offered == 0 {
		return 0
	}
	return float64(q.Drops) / float64(offered)
}

// Fill seeds the queue with n packets at time t (test hook and burst
// injection).
func (q *Queue) Fill(t float64, n float64) {
	q.syncIdle(t)
	q.addArrivals(n)
}

// NewRngFor derives a queue-local RNG from a parent seed, giving each queue
// an independent stream.
func NewRngFor(parent *xrand.Rand) *xrand.Rand { return parent.Split() }
