package nic

import (
	"math"
	"testing"
	"testing/quick"

	"metronome/internal/traffic"
	"metronome/internal/xrand"
)

const us = 1e-6

func newQ(pps float64, opt Options) *Queue {
	return NewQueue(0, traffic.CBR{PPS: pps}, xrand.New(42), opt)
}

func TestVacationAccumulation(t *testing.T) {
	q := newQ(1e6, DefaultOptions()) // 1 Mpps: one packet per us
	if got := q.Occupancy(10 * us); math.Abs(got-10) > 1 {
		t.Errorf("occupancy after 10us = %v, want ~10", got)
	}
	nv := q.BeginService(20*us, 15e6)
	if math.Abs(nv-20) > 1 {
		t.Errorf("NV = %v, want ~20", nv)
	}
	if q.VacObs.Mean() != 20*us {
		t.Errorf("vacation observed = %v", q.VacObs.Mean())
	}
}

func TestDrainCompletes(t *testing.T) {
	q := newQ(1e6, DefaultOptions())
	q.BeginService(100*us, 10e6) // ~100 queued, drain at 10M vs arrive 1M
	done, end := q.ServeSlice(1)
	if !done {
		t.Fatal("drain did not finish")
	}
	// B = NV/(mu-lambda) = 100/(9e6) = 11.1us
	wantB := 100.0 / 9e6
	if math.Abs((end-100*us)-wantB) > 1*us {
		t.Errorf("busy period = %v, want ~%v", end-100*us, wantB)
	}
	q.EndService(end)
	if q.Occupancy(end) != 0 {
		t.Error("queue not empty after drain")
	}
	if q.BusyObs.N() != 1 {
		t.Error("busy period not recorded")
	}
}

func TestBusyPeriodMatchesEq3(t *testing.T) {
	// The fluid drain must reproduce eq (3): B = V*rho/(1-rho).
	for _, rho := range []float64{0.2, 0.5, 0.8} {
		mu := 14.88e6
		q := newQ(rho*mu, DefaultOptions())
		v := 30 * us
		q.BeginService(v, mu)
		done, end := q.ServeSlice(1)
		if !done {
			t.Fatal("no drain")
		}
		got := end - v
		want := v * rho / (1 - rho)
		if math.Abs(got-want)/want > 0.05 {
			t.Errorf("rho=%v: B=%v want %v", rho, got, want)
		}
		q.EndService(end)
	}
}

func TestOverloadAccumulatesDrops(t *testing.T) {
	opt := DefaultOptions()
	opt.Cap = 1024
	q := newQ(16e6, opt) // above mu
	q.BeginService(10*us, 14.88e6)
	var done bool
	end := 10 * us
	for i := 0; i < 100; i++ {
		done, end = q.ServeSlice(100 * us)
		if done {
			t.Fatal("overloaded queue drained")
		}
	}
	_ = end
	if q.Drops == 0 {
		t.Error("no drops under sustained overload")
	}
	// Drop rate approaches (lambda-mu)/lambda = 7%.
	loss := q.LossRate()
	if loss < 0.03 || loss > 0.10 {
		t.Errorf("loss rate = %v, want ~0.07", loss)
	}
}

func TestCapacityDropsDuringVacation(t *testing.T) {
	opt := DefaultOptions()
	opt.Cap = 100
	q := newQ(14.88e6, opt)
	// a 500us outage at line rate: 7440 arrivals into a 100-slot ring
	nv := q.BeginService(500*us, 15e6)
	if nv != 100 {
		t.Errorf("NV = %v, want capacity 100", nv)
	}
	if q.Drops < 7000 {
		t.Errorf("drops = %d, want ~7340", q.Drops)
	}
}

func TestEmptyPollCycle(t *testing.T) {
	q := newQ(0, DefaultOptions()) // no traffic
	nv := q.BeginService(10*us, 15e6)
	if nv != 0 {
		t.Errorf("NV = %v", nv)
	}
	done, end := q.ServeSlice(1)
	if !done || end != 10*us {
		t.Errorf("empty drain: done=%v end=%v", done, end)
	}
	q.EndService(end + 0.2*us) // poll cost
	if math.Abs(q.BusyObs.Mean()-0.2*us) > 1e-12 {
		t.Errorf("busy = %v", q.BusyObs.Mean())
	}
}

func TestLatencyTagging(t *testing.T) {
	opt := DefaultOptions()
	opt.TagProb = 0.05
	opt.TxBatch = 1
	opt.BaseLatency = 0
	q := newQ(1e6, opt)
	// Run many cycles: vacation 10us, drain, idle 0 -> next vacation.
	mu := 15e6
	tEnd := 0.0
	for i := 0; i < 2000; i++ {
		tBegin := tEnd + 10*us
		q.BeginService(tBegin, mu)
		done, end := q.ServeSlice(1)
		if !done {
			t.Fatal("drain failed")
		}
		q.EndService(end)
		tEnd = end
	}
	if q.Lat.N() < 200 {
		t.Fatalf("too few tagged samples: %d", q.Lat.N())
	}
	// Mean sojourn for a packet arriving uniformly in a 10us vacation and
	// drained at 15Mpps: roughly V/2 + NV/(2mu) ~= 5.3us. Allow slack.
	m := q.Lat.Mean()
	if m < 3*us || m > 9*us {
		t.Errorf("mean tagged latency = %v us", m*1e6)
	}
	// No negative latencies, ever.
	if q.Lat.Quantile(0) < 0 {
		t.Error("negative latency sample")
	}
}

func TestTxBatchingAddsHold(t *testing.T) {
	run := func(batch int) float64 {
		opt := DefaultOptions()
		opt.TagProb = 0.2
		opt.TxBatch = batch
		opt.BaseLatency = 0
		// Low rate: 0.2 Mpps -> ~2 packets per 10us vacation, so most
		// packets sit in a partial batch.
		q := newQ(0.2e6, opt)
		mu := 15e6
		tEnd := 0.0
		for i := 0; i < 4000; i++ {
			tBegin := tEnd + 10*us
			q.BeginService(tBegin, mu)
			done, end := q.ServeSlice(1)
			if !done {
				t.Fatal("drain failed")
			}
			q.EndService(end)
			tEnd = end
		}
		return q.Lat.Mean()
	}
	batched := run(32)
	immediate := run(1)
	// Sec V-C: batch=1 lowers latency (and variance) at low rates.
	if batched <= immediate {
		t.Errorf("batch=32 mean %v <= batch=1 mean %v", batched, immediate)
	}
}

func TestLossRateZeroWhenIdle(t *testing.T) {
	q := newQ(0, DefaultOptions())
	if q.LossRate() != 0 {
		t.Error("idle queue loss != 0")
	}
}

func TestBeginWhileServingPanics(t *testing.T) {
	q := newQ(1e6, DefaultOptions())
	q.BeginService(10*us, 15e6)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	q.BeginService(20*us, 15e6)
}

func TestServeWhileIdlePanics(t *testing.T) {
	q := newQ(1e6, DefaultOptions())
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	q.ServeSlice(1)
}

func TestRxCounters(t *testing.T) {
	opt := DefaultOptions()
	opt.Cap = 4096
	q := newQ(1e6, opt)
	q.BeginService(1e-3, 15e6) // 1000 packets accumulated
	done, end := q.ServeSlice(1)
	if !done {
		t.Fatal("no drain")
	}
	q.EndService(end)
	if q.RxPackets < 990 || q.RxPackets > 1080 {
		t.Errorf("rx = %d", q.RxPackets)
	}
	if q.Served < 990 {
		t.Errorf("served = %d", q.Served)
	}
}

func TestFillInjectsBurst(t *testing.T) {
	q := newQ(0, DefaultOptions())
	q.Fill(0, 500)
	if q.Occupancy(0) != 500 {
		t.Errorf("occupancy = %v", q.Occupancy(0))
	}
	q.BeginService(1*us, 10e6)
	done, end := q.ServeSlice(1)
	if !done {
		t.Fatal("no drain")
	}
	if b := end - 1*us; math.Abs(b-50*us) > us {
		t.Errorf("burst drain took %v, want ~50us", b)
	}
}

func TestConservationProperty(t *testing.T) {
	// Over any sequence of cycles, offered = received + dropped, and
	// served <= received: the queue never invents or loses fluid.
	if err := quick.Check(func(seed uint64) bool {
		r := xrand.New(seed)
		pps := r.Uniform(1e6, 20e6)
		opt := DefaultOptions()
		opt.Cap = int64(64 << r.Intn(5)) // 64..1024
		q := NewQueue(0, traffic.CBR{PPS: pps}, r.Split(), opt)
		mu := r.Uniform(8e6, 30e6)
		tNow := 0.0
		for cycle := 0; cycle < 50; cycle++ {
			tNow += r.Uniform(5e-6, 200e-6) // vacation
			q.BeginService(tNow, mu)
			for {
				done, end := q.ServeSlice(100e-6)
				tNow = end
				if done {
					break
				}
				if tNow > 1 { // overloaded forever; stop the cycle loop
					break
				}
			}
			if q.Occupancy(tNow) == 0 {
				q.EndService(tNow)
			} else {
				return true // left mid-overload; conservation checked below anyway
			}
		}
		offered := traffic.CBR{PPS: pps}.CountIn(0, tNow, nil)
		got := q.RxPackets + q.Drops
		// integer accumulators round per-slice: allow one packet per cycle
		diff := got - offered
		if diff < 0 {
			diff = -diff
		}
		return diff <= 60 && q.Served <= q.RxPackets+1
	}, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestResetClearsStats(t *testing.T) {
	q := newQ(1e6, DefaultOptions())
	q.BeginService(10*us, 15e6)
	_, end := q.ServeSlice(1)
	q.EndService(end)
	q.Reset(end)
	if q.RxPackets != 0 || q.VacObs.N() != 0 || q.Lat.N() != 0 {
		t.Error("reset incomplete")
	}
}

func TestOccIntegralIdleAndDrain(t *testing.T) {
	// CBR 1 Mpps: occupancy grows linearly 0 -> 100 over the first 100us,
	// so the idle integral is 100 * 100us / 2 packet-seconds. The drain then
	// runs occupancy 100 -> 0 linearly over NV/(mu-lambda).
	q := newQ(1e6, DefaultOptions())
	nv := q.BeginService(100*us, 10e6)
	idleInt := nv * 100 * us / 2
	if got := q.OccIntegral(); math.Abs(got-idleInt) > idleInt*0.05 {
		t.Errorf("idle integral = %v, want ~%v", got, idleInt)
	}
	done, end := q.ServeSlice(1)
	if !done {
		t.Fatal("drain did not finish")
	}
	q.EndService(end)
	drainInt := nv * (end - 100*us) / 2
	want := idleInt + drainInt
	if got := q.OccIntegral(); math.Abs(got-want) > want*0.05 {
		t.Errorf("integral after drain = %v, want ~%v", got, want)
	}
	// The integral is cumulative and monotone: another idle window adds
	// lambda*dt^2/2.
	q.Occupancy(end + 50*us)
	extra := 1e6 * (50 * us) * (50 * us) / 2
	if got := q.OccIntegral(); math.Abs(got-(want+extra)) > (want+extra)*0.05 {
		t.Errorf("integral after second vacation = %v, want ~%v", got, want+extra)
	}
}

func TestOccIntegralGranularityInvariant(t *testing.T) {
	// The trapezoid accrual must not depend on how often the fluid state is
	// probed: a CBR queue probed every 1us and one probed once must agree.
	fine := newQ(2e6, DefaultOptions())
	coarse := newQ(2e6, DefaultOptions())
	for i := 1; i <= 100; i++ {
		fine.Occupancy(float64(i) * us)
	}
	coarse.Occupancy(100 * us)
	if f, c := fine.OccIntegral(), coarse.OccIntegral(); math.Abs(f-c) > c*0.02+1e-12 {
		t.Errorf("integral depends on probe granularity: fine=%v coarse=%v", f, c)
	}
}

func TestOccIntegralSurvivesReset(t *testing.T) {
	q := newQ(1e6, DefaultOptions())
	q.Occupancy(100 * us)
	before := q.OccIntegral()
	if before <= 0 {
		t.Fatal("no integral accrued")
	}
	q.Reset(100 * us)
	if q.OccIntegral() != before {
		t.Errorf("Reset changed the integral: %v -> %v", before, q.OccIntegral())
	}
}

func TestDarkQueueBuffersAndRecovers(t *testing.T) {
	q := newQ(1e6, Options{Cap: 4096, TxBatch: 1}) // 1 Mpps: one packet per us
	q.SetDark(0, true)
	if !q.Dark() {
		t.Fatal("SetDark not visible")
	}
	// A poll during the blackout sees an empty queue...
	nv := q.BeginService(100*us, 15e6)
	if nv != 0 {
		t.Fatalf("dark poll NV = %v, want 0", nv)
	}
	q.EndService(100*us + 0.2*us)
	// ...but the backlog keeps building behind the dark NIC.
	q.SetDark(300*us, false)
	nv = q.BeginService(400*us, 15e6)
	if math.Abs(nv-400) > 2 {
		t.Fatalf("post-recovery NV = %v, want ~400 buffered arrivals", nv)
	}
	done, end := q.ServeSlice(1)
	if !done {
		t.Fatal("recovery drain did not finish")
	}
	q.EndService(end)
	if q.Drops != 0 {
		t.Fatalf("drops = %d, want 0 below capacity", q.Drops)
	}
}

func TestDarkQueueOverflowDrops(t *testing.T) {
	q := newQ(10e6, Options{Cap: 500, TxBatch: 1}) // fills the 500-slot ring in 50us
	q.SetDark(0, true)
	// 2ms dark at 10 Mpps offers 20000 packets against a 500-slot ring.
	q.BeginService(2e-3, 15e6)
	q.EndService(2e-3 + 0.2*us)
	if q.Drops < 19000 {
		t.Fatalf("drops = %d, want ~19500 overflow during the blackout", q.Drops)
	}
	if got := q.occ; math.Abs(got-500) > 1 {
		t.Fatalf("occupancy = %v, want pinned at capacity", got)
	}
	// Recovery drains the surviving ring contents.
	q.SetDark(2.1e-3, false)
	nv := q.BeginService(2.2e-3, 30e6)
	if nv < 500 {
		t.Fatalf("post-recovery NV = %v, want >= ring capacity's worth", nv)
	}
}

func TestSetDarkIdempotent(t *testing.T) {
	q := newQ(1e6, DefaultOptions())
	q.SetDark(0, true)
	q.SetDark(10*us, true) // no-op: must not re-sync or flip anything
	if !q.Dark() {
		t.Fatal("dark flag lost")
	}
	q.SetDark(20*us, false)
	q.SetDark(30*us, false)
	if q.Dark() {
		t.Fatal("dark flag stuck")
	}
}
