// Package hrtimer models the fine-grain thread-sleep services of Sec. III-A:
// the authors' hr_sleep() kernel service and Linux nanosleep() with its
// timer slack. The simulator consumes the wake-up latency distributions
// (calibrated to the paper's Figure 1 boxplots); the real-time runtime uses
// SpinSleeper, a time.Sleep + spin-finish implementation of the same
// contract on a stock Go runtime.
package hrtimer

import (
	"time"

	"metronome/internal/xrand"
)

// Service identifies a sleep-service implementation.
type Service int

const (
	// HRSleep is the paper's custom syscall: no TCB slack reconciliation,
	// smallest overhead and variance.
	HRSleep Service = iota
	// Nanosleep is Linux nanosleep() with prctl-minimised (1 us) timer
	// slack — the best a stock kernel offers.
	Nanosleep
	// HRSleepPatched is the Sec. V-C variant: sub-microsecond requests
	// return immediately instead of arming a timer.
	HRSleepPatched
)

// String names the service.
func (s Service) String() string {
	switch s {
	case HRSleep:
		return "hr_sleep"
	case Nanosleep:
		return "nanosleep"
	case HRSleepPatched:
		return "hr_sleep(patched)"
	}
	return "unknown"
}

// params are the linear latency model actual = gain*req + base + N(0, sigma),
// fitted to the Fig 1 medians (1/10/100 us requests on the paper's Xeon
// Silver @ 2.1 GHz, Linux 5.4).
type params struct {
	base  float64 // seconds of fixed kernel+wakeup overhead
	gain  float64 // proportional overshoot (timer programming granularity)
	sigma float64 // jitter std dev, seconds
}

func paramsFor(s Service) params {
	switch s {
	case Nanosleep:
		// Slightly higher base (TCB slack reconciliation instructions) and
		// visibly wider spread than hr_sleep, per Fig 1.
		return params{base: 2.83e-6, gain: 1.0573, sigma: 45e-9}
	default:
		return params{base: 2.79e-6, gain: 1.0566, sigma: 30e-9}
	}
}

// Model samples wake-up latencies for one simulated thread.
type Model struct {
	Service Service
	p       params
	rng     *xrand.Rand
}

// NewModel returns a sampler seeded from rng (which it takes ownership of).
func NewModel(s Service, rng *xrand.Rand) *Model {
	return &Model{Service: s, p: paramsFor(s), rng: rng}
}

// Actual returns the sampled wall-clock duration of a sleep request of req
// seconds: always >= a small positive floor, typically req plus ~2.8 us.
func (m *Model) Actual(req float64) float64 {
	if req < 0 {
		req = 0
	}
	if m.Service == HRSleepPatched && req < 1e-6 {
		// Patched fast path: immediately return control (~50 ns call cost).
		return 50e-9
	}
	d := m.p.gain*req + m.p.base + m.p.sigma*m.rng.NormFloat64()
	if d < 100e-9 {
		d = 100e-9
	}
	return d
}

// Mean returns the expected wake-up latency for a request of req seconds —
// the deterministic counterpart of Actual, used by closed-form baselines.
func (m *Model) Mean(req float64) float64 {
	if m.Service == HRSleepPatched && req < 1e-6 {
		return 50e-9
	}
	if req < 0 {
		req = 0
	}
	return m.p.gain*req + m.p.base
}

// Overhead returns the fixed part of the service latency.
func (m *Model) Overhead() float64 { return m.p.base }

// --- real-time side -------------------------------------------------------

// Sleeper is the contract the real-time Metronome runtime sleeps through.
type Sleeper interface {
	// Sleep blocks for approximately d, trading CPU for precision
	// according to the implementation.
	Sleep(d time.Duration)
}

// GoSleeper sleeps with plain time.Sleep — cheapest CPU, coarsest wake-up
// (the Go runtime timer granularity plus OS scheduling).
type GoSleeper struct{}

// Sleep implements Sleeper.
func (GoSleeper) Sleep(d time.Duration) { time.Sleep(d) }

// SpinSleeper emulates hr_sleep's precision on a stock runtime: it
// time.Sleep()s until Slack before the deadline, then spins on the
// monotonic clock. Slack trades CPU for precision exactly as the paper's
// service trades kernel work for it; zero Slack degenerates to time.Sleep.
type SpinSleeper struct {
	Slack time.Duration
}

// Sleep implements Sleeper.
func (s SpinSleeper) Sleep(d time.Duration) {
	deadline := time.Now().Add(d)
	if coarse := d - s.Slack; coarse > 0 {
		time.Sleep(coarse)
	}
	for time.Now().Before(deadline) {
		// spin-finish
	}
}

// MeasureOvershoot samples the wake-up latency of sleeper for a request of
// d, n times, returning the observed durations in seconds. cmd/hrsleepbench
// uses it to produce the host's own Figure 1.
func MeasureOvershoot(sleeper Sleeper, d time.Duration, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		start := time.Now()
		sleeper.Sleep(d)
		out[i] = time.Since(start).Seconds()
	}
	return out
}
