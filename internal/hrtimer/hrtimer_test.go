package hrtimer

import (
	"math"
	"testing"
	"time"

	"metronome/internal/stats"
	"metronome/internal/xrand"
)

const us = 1e-6

func sampleMean(m *Model, req float64, n int) (mean, std float64) {
	var w stats.Welford
	for i := 0; i < n; i++ {
		w.Add(m.Actual(req))
	}
	return w.Mean(), w.Std()
}

// The calibration targets are the paper's Fig 1 boxplots.
func TestFig1Calibration(t *testing.T) {
	cases := []struct {
		req        float64
		hrLo, hrHi float64 // acceptable band for the mean, us
	}{
		{1 * us, 3.7, 4.0},
		{10 * us, 13.3, 13.6},
		{100 * us, 108.3, 108.7},
	}
	for _, c := range cases {
		hr := NewModel(HRSleep, xrand.New(1))
		nano := NewModel(Nanosleep, xrand.New(2))
		hm, _ := sampleMean(hr, c.req, 20000)
		nm, _ := sampleMean(nano, c.req, 20000)
		if hm*1e6 < c.hrLo || hm*1e6 > c.hrHi {
			t.Errorf("hr_sleep(%v): mean %.3f us outside [%v,%v]", c.req, hm*1e6, c.hrLo, c.hrHi)
		}
		// nanosleep is consistently slower on average...
		if nm <= hm {
			t.Errorf("nanosleep mean %.3f us not above hr_sleep %.3f us at req %v", nm*1e6, hm*1e6, c.req)
		}
		// ...but only slightly (tens of nanoseconds in the paper).
		if nm-hm > 200e-9 {
			t.Errorf("gap %.0f ns too large at req %v", (nm-hm)*1e9, c.req)
		}
	}
}

func TestNanosleepMoreVariance(t *testing.T) {
	hr := NewModel(HRSleep, xrand.New(3))
	nano := NewModel(Nanosleep, xrand.New(4))
	_, hs := sampleMean(hr, 10*us, 20000)
	_, ns := sampleMean(nano, 10*us, 20000)
	if ns <= hs {
		t.Errorf("nanosleep std %.1f ns not above hr_sleep %.1f ns", ns*1e9, hs*1e9)
	}
}

func TestPatchedFastPath(t *testing.T) {
	m := NewModel(HRSleepPatched, xrand.New(5))
	if got := m.Actual(0.5 * us); got > 1*us {
		t.Errorf("patched sub-us sleep took %v s", got)
	}
	// At or above 1us it behaves like hr_sleep.
	if got := m.Actual(10 * us); got < 12*us {
		t.Errorf("patched 10us sleep too fast: %v", got)
	}
	if m.Mean(0.1*us) != 50e-9 {
		t.Errorf("patched mean = %v", m.Mean(0.1*us))
	}
}

func TestActualFloorsAndNegatives(t *testing.T) {
	m := NewModel(HRSleep, xrand.New(6))
	for i := 0; i < 1000; i++ {
		if m.Actual(-5) <= 0 {
			t.Fatal("non-positive sleep duration")
		}
	}
}

func TestMeanMatchesSamples(t *testing.T) {
	m := NewModel(HRSleep, xrand.New(7))
	got, _ := sampleMean(m, 20*us, 50000)
	want := m.Mean(20 * us)
	if math.Abs(got-want) > 50e-9 {
		t.Errorf("sample mean %.3f us vs analytic %.3f us", got*1e6, want*1e6)
	}
}

func TestMonotoneInRequest(t *testing.T) {
	m := NewModel(HRSleep, xrand.New(8))
	prev := 0.0
	for _, req := range []float64{0, 1 * us, 5 * us, 20 * us, 100 * us} {
		v := m.Mean(req)
		if v <= prev {
			t.Fatalf("mean latency not increasing at req=%v", req)
		}
		prev = v
	}
}

func TestServiceString(t *testing.T) {
	if HRSleep.String() != "hr_sleep" || Nanosleep.String() != "nanosleep" {
		t.Error("service names wrong")
	}
	if HRSleepPatched.String() == "unknown" || Service(99).String() != "unknown" {
		t.Error("string fallback wrong")
	}
}

func TestSpinSleeperPrecision(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock test")
	}
	s := SpinSleeper{Slack: 500 * time.Microsecond}
	const d = time.Millisecond
	for i := 0; i < 20; i++ {
		start := time.Now()
		s.Sleep(d)
		el := time.Since(start)
		if el < d {
			t.Fatalf("woke early: %v < %v", el, d)
		}
	}
}

func TestMeasureOvershoot(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock test")
	}
	xs := MeasureOvershoot(GoSleeper{}, 100*time.Microsecond, 10)
	if len(xs) != 10 {
		t.Fatal("sample count")
	}
	for _, x := range xs {
		if x < 100e-6 {
			t.Fatalf("overshoot below request: %v", x)
		}
	}
}

func BenchmarkModelActual(b *testing.B) {
	m := NewModel(HRSleep, xrand.New(1))
	for i := 0; i < b.N; i++ {
		_ = m.Actual(10 * us)
	}
}
