// Package model implements the closed-form analysis of Metronome's renewal
// cycle (Sec. IV of the paper): vacation-period statistics at high, low and
// intermediate load, the busy-period fixed point, the load estimator, and
// the adaptive short-timeout rule that the runtime applies.
//
// Two known typos in the paper's arXiv text are corrected here and verified
// by tests against numerical integration:
//
//   - eq. (7) Ps,succ: the printed closed form drops the leading
//     "1 -"; the integral evaluates to (1-(1-TS/TL)^(M-1))/(M-1).
//   - eq. (10) exact form: the printed denominator swaps TS and TL; the
//     integrand P(thread asleep at x) = 1 - p*x/TS - (1-p)*x/TL yields
//     denominator M*(p/TS + (1-p)/TL), which is the only version consistent
//     with the paper's own TL >> TS approximation printed right below it.
package model

import "math"

// CDFVHighLoad is eq. (5): the CDF of the vacation period at high load with
// one primary thread (fixed timeout TS) and M-1 backup threads whose
// residual timeouts are uniform on [0, TL] under the decorrelation
// assumption.
func CDFVHighLoad(x, ts, tl float64, m int) float64 {
	if x < 0 {
		return 0
	}
	if x >= ts {
		return 1
	}
	return 1 - math.Pow(1-x/tl, float64(m-1))
}

// PDFVHighLoad is eq. (9): the density of the vacation period for x < TS.
// The distribution also carries an atom of mass (1-TS/TL)^(M-1) at x = TS
// (the primary thread's own timer fires first); Atom returns it.
func PDFVHighLoad(x, ts, tl float64, m int) float64 {
	if x < 0 || x >= ts {
		return 0
	}
	return float64(m-1) / tl * math.Pow(1-x/tl, float64(m-2))
}

// AtomAtTS returns the probability mass that the vacation period equals
// exactly TS under the high-load model (no backup fires before the primary).
func AtomAtTS(ts, tl float64, m int) float64 {
	return math.Pow(1-ts/tl, float64(m-1))
}

// EVHighLoad is eq. (6): the mean vacation period at high load.
func EVHighLoad(ts, tl float64, m int) float64 {
	return tl / float64(m) * (1 - math.Pow(1-ts/tl, float64(m)))
}

// PSucc is eq. (7) (corrected): the probability that one of the M-1 backup
// threads gains the Rx queue at its wake-up, i.e. fires before the primary's
// TS timer.
func PSucc(ts, tl float64, m int) float64 {
	if m < 2 {
		return 0
	}
	return (1 - math.Pow(1-ts/tl, float64(m-1))) / float64(m-1)
}

// CDFVLowLoad is eq. (8): at low load every thread stays primary, so the
// vacation period is the minimum of M residual timeouts uniform on [0, TS].
func CDFVLowLoad(x, ts float64, m int) float64 {
	if x < 0 {
		return 0
	}
	if x >= ts {
		return 1
	}
	return 1 - math.Pow(1-x/ts, float64(m))
}

// EVLowLoad returns the exact mean of the eq. (8) distribution, TS/(M+1).
// The paper quotes the slightly looser TS/M, which is what its blended
// formula eq. (10) produces at p = 1; both are exposed so the experiment
// harness can show the gap.
func EVLowLoad(ts float64, m int) float64 { return ts / float64(m+1) }

// EVGeneralExact is the exact blended mean vacation period of Sec. IV-C
// (corrected form, see package comment): each of the M-1 non-primary
// threads is independently primary with probability p.
func EVGeneralExact(ts, tl float64, m int, p float64) float64 {
	a := p/ts + (1-p)/tl
	if a == 0 {
		return ts // degenerate: nobody ever wakes before TS
	}
	return (1 - math.Pow((1-p)*(1-ts/tl), float64(m))) / (float64(m) * a)
}

// EVGeneralApprox is eq. (10): the TL >> TS approximation
// E[V] = TS/M * (1-(1-p)^M)/p, with the p->0 limit handled exactly.
func EVGeneralApprox(ts float64, m int, p float64) float64 {
	if p <= 0 {
		return ts
	}
	return ts / float64(m) * (1 - math.Pow(1-p, float64(m))) / p
}

// Rho is eq. (4): the load estimate from an observed mean busy period and
// mean vacation period, rho = B/(V+B).
func Rho(meanBusy, meanVacation float64) float64 {
	d := meanBusy + meanVacation
	if d == 0 {
		return 0
	}
	return meanBusy / d
}

// BusyPeriod is eq. (3): the mean busy period that follows a vacation of
// duration v under load rho = lambda/mu, B = v*rho/(1-rho). It returns
// +Inf at rho >= 1 (the queue never empties).
func BusyPeriod(v, rho float64) float64 {
	if rho >= 1 {
		return math.Inf(1)
	}
	if rho <= 0 {
		return 0
	}
	return v * rho / (1 - rho)
}

// TSForTarget is eq. (13): the adaptive short-timeout rule that keeps the
// mean vacation period at the target vbar under load rho,
// TS = M*(1-rho)/(1-rho^M) * vbar, evaluated stably near rho = 1 via the
// geometric-sum form TS = M*vbar/(1+rho+...+rho^(M-1)).
func TSForTarget(vbar, rho float64, m int) float64 {
	return tsGeometric(vbar, rho, float64(m))
}

// TSForTargetMultiqueue is eq. (14): the per-queue rule with N queues,
// TS_i = (M/N)*(1-rho_i)/(1-rho_i^(M/N)) * vbar. M/N is real-valued: it is
// the average number of threads attending one queue.
func TSForTargetMultiqueue(vbar, rhoI float64, m, n int) float64 {
	return tsGeometric(vbar, rhoI, float64(m)/float64(n))
}

// tsGeometric evaluates k*(1-rho)/(1-rho^k)*vbar for a possibly fractional
// number of competitors k, with removable singularities at rho = 0 and 1.
func tsGeometric(vbar, rho, k float64) float64 {
	if k <= 0 {
		return vbar
	}
	if rho <= 0 {
		return k * vbar
	}
	if rho >= 1 {
		return vbar
	}
	den := 1 - math.Pow(rho, k)
	if den <= 0 {
		return vbar
	}
	return k * (1 - rho) / den * vbar
}

// PrimaryProb maps a load estimate to the probability that a thread finds
// the queue idle when it samples it, p = 1 - rho (Sec. IV-C).
func PrimaryProb(rho float64) float64 {
	if rho < 0 {
		return 1
	}
	if rho > 1 {
		return 0
	}
	return 1 - rho
}

// MeanArrivalsDuring returns Little's-law packet count over an interval of
// mean length t at arrival rate lambda (footnote 2 of the paper).
func MeanArrivalsDuring(lambda, t float64) float64 { return lambda * t }

// Integrate computes the Simpson-rule integral of f over [a,b] with n
// (even, >= 2) panels. Tests use it to validate every closed form above.
func Integrate(f func(float64) float64, a, b float64, n int) float64 {
	if n < 2 {
		n = 2
	}
	if n%2 == 1 {
		n++
	}
	h := (b - a) / float64(n)
	sum := f(a) + f(b)
	for i := 1; i < n; i++ {
		x := a + float64(i)*h
		if i%2 == 1 {
			sum += 4 * f(x)
		} else {
			sum += 2 * f(x)
		}
	}
	return sum * h / 3
}
