package model

import (
	"math"
	"testing"
	"testing/quick"

	"metronome/internal/xrand"
)

const (
	us = 1e-6
	eq = 1e-9
)

func close(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// --- eq (5)/(9): high-load vacation distribution -------------------------

func TestCDFVHighLoadBounds(t *testing.T) {
	ts, tl := 10*us, 500*us
	if CDFVHighLoad(-1, ts, tl, 3) != 0 {
		t.Error("CDF below 0 not 0")
	}
	if CDFVHighLoad(ts, ts, tl, 3) != 1 {
		t.Error("CDF at TS not 1 (primary always fires by TS)")
	}
	if CDFVHighLoad(2*ts, ts, tl, 3) != 1 {
		t.Error("CDF past TS not 1")
	}
}

func TestCDFVHighLoadMonotone(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := xrand.New(seed)
		ts := r.Uniform(1, 50) * us
		tl := ts * r.Uniform(2, 100)
		m := 2 + r.Intn(6)
		prev := -1.0
		for i := 0; i <= 100; i++ {
			x := float64(i) / 100 * ts
			c := CDFVHighLoad(x, ts, tl, m)
			if c < prev-eq || c < 0 || c > 1 {
				return false
			}
			prev = c
		}
		return true
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPDFIntegratesToCDF(t *testing.T) {
	ts, tl, m := 50*us, 50*us, 3 // the Fig 4 setting TS=TL
	mass := Integrate(func(x float64) float64 { return PDFVHighLoad(x, ts, tl, m) }, 0, ts, 2000)
	want := 1 - AtomAtTS(ts, tl, m)
	if !close(mass, want, 1e-6) {
		t.Errorf("PDF mass = %v, want %v (1 - atom)", mass, want)
	}
}

func TestPDFMatchesCDFDerivative(t *testing.T) {
	ts, tl, m := 10*us, 500*us, 5
	h := ts / 1e6
	for _, frac := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		x := frac * ts
		num := (CDFVHighLoad(x+h, ts, tl, m) - CDFVHighLoad(x-h, ts, tl, m)) / (2 * h)
		if !close(num, PDFVHighLoad(x, ts, tl, m), 1e-3*num+1e-6) {
			t.Errorf("at x=%.2g: dCDF/dx=%v PDF=%v", x, num, PDFVHighLoad(x, ts, tl, m))
		}
	}
}

// --- eq (6): E[V] at high load --------------------------------------------

func TestEVHighLoadMatchesIntegral(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := xrand.New(seed)
		ts := r.Uniform(1, 50) * us
		tl := ts * r.Uniform(1.5, 100)
		m := 2 + r.Intn(6)
		// E[V] = integral of survival function over [0, TS].
		num := Integrate(func(x float64) float64 {
			return 1 - CDFVHighLoad(x, ts, tl, m)
		}, 0, ts, 4000)
		return close(EVHighLoad(ts, tl, m), num, 1e-4*num+1e-12)
	}, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestEVHighLoadLimits(t *testing.T) {
	ts := 10 * us
	// TL -> infinity: backups never interfere; E[V] -> TS.
	if got := EVHighLoad(ts, 1e9*ts, 3); !close(got, ts, 1e-6*ts) {
		t.Errorf("E[V] with huge TL = %v, want ~TS", got)
	}
	// TL = TS, M threads: the paper's TS/M simplification.
	if got := EVHighLoad(ts, ts, 4); !close(got, ts/4, eq) {
		t.Errorf("E[V] with TL=TS, M=4 = %v, want TS/4", got)
	}
}

// --- eq (7): backup success probability ------------------------------------

func TestPSuccMatchesIntegral(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := xrand.New(seed)
		ts := r.Uniform(1, 50) * us
		tl := ts * r.Uniform(1.5, 100)
		m := 2 + r.Intn(6)
		num := Integrate(func(x float64) float64 {
			return 1 / tl * math.Pow(1-x/tl, float64(m-2))
		}, 0, ts, 4000)
		return close(PSucc(ts, tl, m), num, 1e-5*num+1e-12)
	}, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPSuccProperties(t *testing.T) {
	ts, tl := 10*us, 500*us
	if PSucc(ts, tl, 1) != 0 {
		t.Error("single thread has no backups")
	}
	p3, p6 := PSucc(ts, tl, 3), PSucc(ts, tl, 6)
	if p3 <= 0 || p3 > 1 || p6 <= 0 || p6 > 1 {
		t.Errorf("PSucc out of range: %v %v", p3, p6)
	}
	// Larger TL => backups less likely to fire inside TS.
	if PSucc(ts, 10*tl, 3) >= p3 {
		t.Error("PSucc should decrease with TL")
	}
}

// --- eq (8): low-load distribution ------------------------------------------

func TestCDFVLowLoadProperties(t *testing.T) {
	ts := 10 * us
	if CDFVLowLoad(ts/2, ts, 3) <= CDFVLowLoad(ts/2, ts, 2) {
		t.Error("more threads should shorten vacations stochastically")
	}
	if CDFVLowLoad(ts, ts, 2) != 1 {
		t.Error("CDF at TS must be 1")
	}
}

func TestEVLowLoadMatchesIntegral(t *testing.T) {
	ts, m := 20*us, 4
	num := Integrate(func(x float64) float64 { return 1 - CDFVLowLoad(x, ts, m) }, 0, ts, 4000)
	if !close(EVLowLoad(ts, m), num, 1e-5*num) {
		t.Errorf("EVLowLoad = %v, integral = %v", EVLowLoad(ts, m), num)
	}
}

// --- eq (10): blended model ---------------------------------------------------

func TestEVGeneralExactMatchesIntegral(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := xrand.New(seed)
		ts := r.Uniform(1, 50) * us
		tl := ts * r.Uniform(1.5, 100)
		m := 2 + r.Intn(6)
		p := r.Float64()
		num := Integrate(func(x float64) float64 {
			return math.Pow(1-p*x/ts-(1-p)*x/tl, float64(m-1))
		}, 0, ts, 4000)
		return close(EVGeneralExact(ts, tl, m, p), num, 1e-4*num+1e-12)
	}, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestEVGeneralLimits(t *testing.T) {
	ts, tl, m := 10*us, 500*us, 3
	// p -> 0 (high load): E[V] -> TS under the approximation.
	if got := EVGeneralApprox(ts, m, 0); !close(got, ts, eq) {
		t.Errorf("approx at p=0 = %v, want TS", got)
	}
	// p = 1 (low load): E[V] = TS/M, the paper's simplification.
	if got := EVGeneralApprox(ts, m, 1); !close(got, ts/float64(m), eq) {
		t.Errorf("approx at p=1 = %v, want TS/M", got)
	}
	// Exact and approx agree when TL >> TS.
	for _, p := range []float64{0.1, 0.5, 0.9} {
		ex := EVGeneralExact(ts, 1e5*ts, m, p)
		ap := EVGeneralApprox(ts, m, p)
		if !close(ex, ap, 1e-3*ap) {
			t.Errorf("p=%v: exact %v vs approx %v with TL>>TS", p, ex, ap)
		}
	}
	_ = tl
}

func TestEVGeneralMonotoneInP(t *testing.T) {
	// More primaries => shorter vacations.
	ts, tl, m := 10*us, 500*us, 4
	prev := math.Inf(1)
	for p := 0.0; p <= 1.0; p += 0.05 {
		v := EVGeneralExact(ts, tl, m, p)
		if v > prev+eq {
			t.Fatalf("E[V] not monotone decreasing in p at p=%v", p)
		}
		prev = v
	}
}

// --- eq (3)/(4): busy period and load estimation -----------------------------

func TestBusyPeriodFixedPoint(t *testing.T) {
	// B must satisfy B = rho*(V+B) — the defining fixed point of eq (2).
	if err := quick.Check(func(seed uint64) bool {
		r := xrand.New(seed)
		v := r.Uniform(1, 100) * us
		rho := r.Uniform(0.01, 0.99)
		b := BusyPeriod(v, rho)
		return close(b, rho*(v+b), 1e-9*(v+b))
	}, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestBusyPeriodEdges(t *testing.T) {
	if BusyPeriod(10*us, 0) != 0 {
		t.Error("no load, no busy period")
	}
	if !math.IsInf(BusyPeriod(10*us, 1), 1) {
		t.Error("rho=1 should diverge")
	}
}

func TestRhoInvertsBusyPeriod(t *testing.T) {
	// Estimating rho from (V, B(V, rho)) must recover rho: eq (4) is the
	// inverse of eq (3).
	if err := quick.Check(func(seed uint64) bool {
		r := xrand.New(seed)
		v := r.Uniform(1, 100) * us
		rho := r.Uniform(0.01, 0.99)
		return close(Rho(BusyPeriod(v, rho), v), rho, 1e-9)
	}, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestRhoEdges(t *testing.T) {
	if Rho(0, 0) != 0 {
		t.Error("degenerate cycle should estimate 0")
	}
	if Rho(5, 0) != 1 {
		t.Error("all-busy cycle should estimate 1")
	}
}

// --- eq (13)/(14): the adaptive rule -------------------------------------------

func TestTSForTargetLimits(t *testing.T) {
	vbar, m := 10*us, 3
	if got := TSForTarget(vbar, 0, m); !close(got, float64(m)*vbar, eq) {
		t.Errorf("TS at rho=0 = %v, want M*vbar (eq 12 low load)", got)
	}
	if got := TSForTarget(vbar, 1, m); !close(got, vbar, eq) {
		t.Errorf("TS at rho=1 = %v, want vbar (eq 12 high load)", got)
	}
}

func TestTSForTargetGeometricForm(t *testing.T) {
	// eq (13) rewritten: TS = M*vbar / (1 + rho + ... + rho^(M-1)).
	if err := quick.Check(func(seed uint64) bool {
		r := xrand.New(seed)
		vbar := r.Uniform(1, 50) * us
		rho := r.Uniform(0.001, 0.999)
		m := 2 + r.Intn(6)
		sum := 0.0
		for k := 0; k < m; k++ {
			sum += math.Pow(rho, float64(k))
		}
		want := float64(m) * vbar / sum
		return close(TSForTarget(vbar, rho, m), want, 1e-9*want)
	}, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestTSForTargetMonotoneInRho(t *testing.T) {
	vbar, m := 10*us, 5
	prev := math.Inf(1)
	for rho := 0.0; rho <= 1.0; rho += 0.02 {
		v := TSForTarget(vbar, rho, m)
		if v > prev+eq {
			t.Fatalf("TS not decreasing in rho at rho=%v", rho)
		}
		if v < vbar-eq || v > float64(m)*vbar+eq {
			t.Fatalf("TS out of [vbar, M*vbar] at rho=%v: %v", rho, v)
		}
		prev = v
	}
}

func TestTSForTargetClampsOutOfRangeRho(t *testing.T) {
	vbar, m := 10*us, 3
	if got := TSForTarget(vbar, -0.5, m); !close(got, 3*vbar, eq) {
		t.Errorf("negative rho should clamp to low-load rule, got %v", got)
	}
	if got := TSForTarget(vbar, 1.7, m); !close(got, vbar, eq) {
		t.Errorf("rho>1 should clamp to high-load rule, got %v", got)
	}
}

func TestTSMultiqueueReducesToSingle(t *testing.T) {
	vbar := 15 * us
	for _, rho := range []float64{0.1, 0.5, 0.9} {
		if !close(TSForTargetMultiqueue(vbar, rho, 6, 1), TSForTarget(vbar, rho, 6), eq) {
			t.Errorf("N=1 multiqueue rule must equal single-queue rule at rho=%v", rho)
		}
	}
}

func TestTSMultiqueueUsesPerQueueShare(t *testing.T) {
	// With M=6 threads over N=3 queues, each queue sees on average 2
	// threads: the rule must match the single-queue rule with M=2.
	vbar := 15 * us
	for _, rho := range []float64{0.2, 0.7269} { // second value from Table III
		got := TSForTargetMultiqueue(vbar, rho, 6, 3)
		want := TSForTarget(vbar, rho, 2)
		if !close(got, want, eq) {
			t.Errorf("rho=%v: multiqueue %v, single-queue-M/N %v", rho, got, want)
		}
	}
}

func TestTSMultiqueueFractionalThreads(t *testing.T) {
	// M=5, N=4 (the Fig 15 configuration): k = 1.25 threads per queue.
	got := TSForTargetMultiqueue(15*us, 0.5, 5, 4)
	if got <= 15*us || got >= 1.25*15*us {
		t.Errorf("fractional-k TS = %v, want strictly inside (vbar, 1.25*vbar)", got)
	}
}

func TestPrimaryProb(t *testing.T) {
	if PrimaryProb(0.3) != 0.7 {
		t.Error("p = 1 - rho")
	}
	if PrimaryProb(-1) != 1 || PrimaryProb(2) != 0 {
		t.Error("p must clamp to [0,1]")
	}
}

func TestMeanArrivals(t *testing.T) {
	// 14.88 Mpps over a 10 us vacation: 148.8 packets (Little's result).
	if got := MeanArrivalsDuring(14.88e6, 10*us); !close(got, 148.8, 1e-9) {
		t.Errorf("arrivals = %v", got)
	}
}

func TestIntegrateKnown(t *testing.T) {
	got := Integrate(math.Sin, 0, math.Pi, 1000)
	if !close(got, 2, 1e-8) {
		t.Errorf("integral of sin over [0,pi] = %v", got)
	}
	// Odd panel counts are rounded up rather than mis-weighted.
	got = Integrate(func(x float64) float64 { return x }, 0, 1, 3)
	if !close(got, 0.5, 1e-12) {
		t.Errorf("integral with odd n = %v", got)
	}
}

// Table I sanity: with V̄=10us at line rate the model predicts ~149 packets
// per vacation; the paper measures N_V = 287.77 for a measured V of ~20 us,
// i.e. the model and measurement agree through eq. Little.
func TestTable1LittleConsistency(t *testing.T) {
	lambda := 14.88e6
	measuredV := 19.55 * us // paper Table I row vbar=10
	nv := MeanArrivalsDuring(lambda, measuredV)
	if math.Abs(nv-287.77)/287.77 > 0.02 {
		t.Errorf("Little check against Table I: got %v, paper 287.77", nv)
	}
}
