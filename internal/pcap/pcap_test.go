package pcap

import (
	"bytes"
	"io"
	"math"
	"testing"

	"metronome/internal/packet"
)

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	frames := [][]byte{
		{1, 2, 3, 4, 5},
		{0xaa, 0xbb},
		make([]byte, 1500),
	}
	for i, f := range frames {
		if err := w.Write(Record{TS: float64(i) * 1.5, Data: f}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	got, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(frames) {
		t.Fatalf("records = %d", len(got))
	}
	for i, rec := range got {
		if !bytes.Equal(rec.Data, frames[i]) {
			t.Errorf("record %d data mismatch", i)
		}
		if math.Abs(rec.TS-float64(i)*1.5) > 1e-6 {
			t.Errorf("record %d ts = %v", i, rec.TS)
		}
	}
}

func TestHeaderValidation(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte{1, 2, 3})); err == nil {
		t.Error("short header accepted")
	}
	bad := make([]byte, 24)
	if _, err := NewReader(bytes.NewReader(bad)); err != ErrBadMagic {
		t.Errorf("bad magic err = %v", err)
	}
}

func TestTruncatedRecord(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.Write(Record{TS: 0, Data: []byte{1, 2, 3, 4}})
	w.Flush()
	full := buf.Bytes()
	// Chop mid-record.
	r, err := NewReader(bytes.NewReader(full[:len(full)-2]))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Read(); err != ErrTruncated {
		t.Errorf("err = %v, want ErrTruncated", err)
	}
}

func TestEOF(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.Flush()
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Read(); err != io.EOF {
		t.Errorf("empty trace err = %v", err)
	}
}

func TestGenerateUnbalancedShares(t *testing.T) {
	var buf bytes.Buffer
	const n = 5000
	if err := GenerateUnbalanced(&buf, n, 0.30, 1e6, 7); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != n {
		t.Fatalf("records = %d", len(recs))
	}
	heavy := 0
	var p packet.Parsed
	for _, rec := range recs {
		if err := p.Parse(rec.Data); err != nil {
			t.Fatalf("generated frame unparseable: %v", err)
		}
		if p.Key.Src == packet.AddrFrom4(10, 0, 0, 1) && p.Key.SrcPort == 5000 {
			heavy++
		}
	}
	share := float64(heavy) / n
	if share < 0.27 || share > 0.33 {
		t.Errorf("heavy share = %v, want ~0.30", share)
	}
	// Timestamps pace at 1 Mpps.
	if dt := recs[1].TS - recs[0].TS; math.Abs(dt-1e-6) > 1e-7 {
		t.Errorf("pacing = %v", dt)
	}
}

func TestReplayLoops(t *testing.T) {
	recs := []Record{
		{TS: 0, Data: []byte{1}},
		{TS: 0.001, Data: []byte{2}},
		{TS: 0.002, Data: []byte{3}},
	}
	var ts []float64
	Replay(recs, 3, func(t float64, frame []byte) { ts = append(ts, t) })
	if len(ts) != 9 {
		t.Fatalf("replayed %d", len(ts))
	}
	// Monotone timestamps across loop boundaries.
	for i := 1; i < len(ts); i++ {
		if ts[i] <= ts[i-1] {
			t.Fatalf("timestamps not increasing at %d: %v", i, ts)
		}
	}
}

func TestReplayDegenerate(t *testing.T) {
	called := false
	Replay(nil, 5, func(float64, []byte) { called = true })
	Replay([]Record{{TS: 1}}, 0, func(float64, []byte) { called = true })
	if called {
		t.Error("degenerate replay invoked callback")
	}
}

func BenchmarkWrite(b *testing.B) {
	frame := make([]byte, 64)
	var sink bytes.Buffer
	w, _ := NewWriter(&sink)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w.Write(Record{TS: float64(i), Data: frame})
		if sink.Len() > 1<<24 {
			sink.Reset()
		}
	}
}
