// Package pcap reads and writes libpcap capture files (the classic
// microsecond-resolution format, magic 0xa1b2c3d4). The paper's unbalanced
// multiqueue experiment replays a 1000-packet pcap in a loop; this package
// generates, stores and replays such traces without any external tooling.
package pcap

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"metronome/internal/packet"
	"metronome/internal/xrand"
)

const (
	magicLE     = 0xa1b2c3d4
	versionMaj  = 2
	versionMin  = 4
	linkTypeEth = 1

	fileHeaderLen   = 24
	recordHeaderLen = 16
	maxSnapLen      = 262144
)

var (
	ErrBadMagic  = errors.New("pcap: not a (little-endian, usec) pcap file")
	ErrTruncated = errors.New("pcap: truncated record")
)

// Record is one captured packet.
type Record struct {
	// TS is the capture timestamp in seconds since the epoch of the trace.
	TS float64
	// Data is the frame bytes (owned by the caller after Read).
	Data []byte
}

// Writer emits a pcap stream.
type Writer struct {
	w   *bufio.Writer
	err error
}

// NewWriter writes the file header and returns a Writer.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriter(w)
	var hdr [fileHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], magicLE)
	binary.LittleEndian.PutUint16(hdr[4:6], versionMaj)
	binary.LittleEndian.PutUint16(hdr[6:8], versionMin)
	// thiszone=0, sigfigs=0
	binary.LittleEndian.PutUint32(hdr[16:20], maxSnapLen)
	binary.LittleEndian.PutUint32(hdr[20:24], linkTypeEth)
	if _, err := bw.Write(hdr[:]); err != nil {
		return nil, err
	}
	return &Writer{w: bw}, nil
}

// Write appends one record.
func (w *Writer) Write(r Record) error {
	if w.err != nil {
		return w.err
	}
	sec := uint32(r.TS)
	usec := uint32((r.TS - float64(sec)) * 1e6)
	var hdr [recordHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], sec)
	binary.LittleEndian.PutUint32(hdr[4:8], usec)
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(len(r.Data)))
	binary.LittleEndian.PutUint32(hdr[12:16], uint32(len(r.Data)))
	if _, err := w.w.Write(hdr[:]); err != nil {
		w.err = err
		return err
	}
	if _, err := w.w.Write(r.Data); err != nil {
		w.err = err
		return err
	}
	return nil
}

// Flush drains buffered output.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	return w.w.Flush()
}

// Reader consumes a pcap stream.
type Reader struct {
	r *bufio.Reader
}

// NewReader validates the file header and returns a Reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	var hdr [fileHeaderLen]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("pcap: header: %w", err)
	}
	if binary.LittleEndian.Uint32(hdr[0:4]) != magicLE {
		return nil, ErrBadMagic
	}
	if lt := binary.LittleEndian.Uint32(hdr[20:24]); lt != linkTypeEth {
		return nil, fmt.Errorf("pcap: unsupported link type %d", lt)
	}
	return &Reader{r: br}, nil
}

// Read returns the next record, or io.EOF at end of trace.
func (r *Reader) Read() (Record, error) {
	var hdr [recordHeaderLen]byte
	if _, err := io.ReadFull(r.r, hdr[:]); err != nil {
		if err == io.EOF {
			return Record{}, io.EOF
		}
		return Record{}, ErrTruncated
	}
	sec := binary.LittleEndian.Uint32(hdr[0:4])
	usec := binary.LittleEndian.Uint32(hdr[4:8])
	caplen := binary.LittleEndian.Uint32(hdr[8:12])
	if caplen > maxSnapLen {
		return Record{}, fmt.Errorf("pcap: absurd caplen %d", caplen)
	}
	data := make([]byte, caplen)
	if _, err := io.ReadFull(r.r, data); err != nil {
		return Record{}, ErrTruncated
	}
	return Record{
		TS:   float64(sec) + float64(usec)/1e6,
		Data: data,
	}, nil
}

// ReadAll drains the trace into memory.
func ReadAll(r io.Reader) ([]Record, error) {
	pr, err := NewReader(r)
	if err != nil {
		return nil, err
	}
	var out []Record
	for {
		rec, err := pr.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, rec)
	}
}

// GenerateUnbalanced synthesises the Sec. V-F.4 trace: n 64-byte UDP
// packets at the given packets-per-second pacing, heavyShare of which
// belong to a single flow while the rest carry uniformly random 5-tuples.
// The heavy flow is the one traffic.UnbalancedShares pins via RSS.
func GenerateUnbalanced(w io.Writer, n int, heavyShare, pps float64, seed uint64) error {
	pw, err := NewWriter(w)
	if err != nil {
		return err
	}
	rng := xrand.New(seed)
	buf := make([]byte, 256)
	heavy := packet.FlowKey{
		Src:     packet.AddrFrom4(10, 0, 0, 1),
		Dst:     packet.AddrFrom4(10, 0, 0, 2),
		SrcPort: 5000, DstPort: 5001,
		Proto: packet.ProtoUDP,
	}
	for i := 0; i < n; i++ {
		k := heavy
		if !rng.Bernoulli(heavyShare) {
			k = packet.FlowKey{
				Src:     packet.Addr(rng.Uint64()),
				Dst:     packet.Addr(rng.Uint64()),
				SrcPort: uint16(1024 + rng.Intn(60000)),
				DstPort: uint16(1024 + rng.Intn(60000)),
				Proto:   packet.ProtoUDP,
			}
		}
		frame, err := packet.BuildUDP(buf, 64, k.Src, k.Dst, k.SrcPort, k.DstPort)
		if err != nil {
			return err
		}
		rec := Record{TS: float64(i) / pps, Data: frame}
		if err := pw.Write(rec); err != nil {
			return err
		}
	}
	return pw.Flush()
}

// Replay pushes the trace's frames through fn in timestamp order, looping
// `loops` times (the paper replays its 1000-packet pcap continuously).
// fn receives the frame and the replay timestamp.
func Replay(records []Record, loops int, fn func(ts float64, frame []byte)) {
	if len(records) == 0 || loops <= 0 {
		return
	}
	span := records[len(records)-1].TS - records[0].TS
	gap := span / float64(len(records)) // keep pacing when looping
	period := span + gap
	for l := 0; l < loops; l++ {
		base := float64(l) * period
		for i := range records {
			fn(base+records[i].TS, records[i].Data)
		}
	}
}
