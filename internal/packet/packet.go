// Package packet provides the wire-format substrate of the reproduction:
// packet buffers, allocation-free Ethernet/IPv4/UDP/TCP codecs in the style
// of gopacket's DecodingLayer (decode into caller-owned structs, no per
// packet allocation), 5-tuple flow keys, and the Toeplitz hash used by
// receive-side scaling.
package packet

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Wire sizes and protocol numbers.
const (
	EthHeaderLen  = 14
	IPv4HeaderLen = 20 // without options
	UDPHeaderLen  = 8
	TCPHeaderLen  = 20 // without options

	EtherTypeIPv4 = 0x0800

	ProtoTCP = 6
	ProtoUDP = 17
	ProtoESP = 50

	// MinFrame is the minimal Ethernet frame (64B with FCS), the paper's
	// worst-case test size.
	MinFrame = 60 // on-host bytes; FCS (4B) is added by the MAC
)

var (
	ErrTooShort   = errors.New("packet: buffer too short")
	ErrBadVersion = errors.New("packet: not IPv4")
	ErrBadLength  = errors.New("packet: inconsistent length field")
)

// MAC is a 48-bit Ethernet address.
type MAC [6]byte

// String renders the conventional colon form.
func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// IPv4 addresses are host-order uint32s: compact, comparable, map-friendly.
type Addr uint32

// AddrFrom4 builds an Addr from dotted-quad bytes.
func AddrFrom4(a, b, c, d byte) Addr {
	return Addr(uint32(a)<<24 | uint32(b)<<16 | uint32(c)<<8 | uint32(d))
}

// String renders dotted-quad.
func (a Addr) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(a>>24), byte(a>>16), byte(a>>8), byte(a))
}

// Ethernet is the decoded L2 header.
type Ethernet struct {
	Dst, Src  MAC
	EtherType uint16
}

// DecodeFromBytes parses the header; it retains no references to data.
func (e *Ethernet) DecodeFromBytes(data []byte) error {
	if len(data) < EthHeaderLen {
		return ErrTooShort
	}
	copy(e.Dst[:], data[0:6])
	copy(e.Src[:], data[6:12])
	e.EtherType = binary.BigEndian.Uint16(data[12:14])
	return nil
}

// SerializeTo writes the header into b, which must be >= EthHeaderLen.
func (e *Ethernet) SerializeTo(b []byte) error {
	if len(b) < EthHeaderLen {
		return ErrTooShort
	}
	copy(b[0:6], e.Dst[:])
	copy(b[6:12], e.Src[:])
	binary.BigEndian.PutUint16(b[12:14], e.EtherType)
	return nil
}

// IPv4 is the decoded L3 header (options unsupported: DPDK fast paths don't
// emit them and the paper's workloads never carry them).
type IPv4 struct {
	TOS      uint8
	TotalLen uint16
	ID       uint16
	Flags    uint8 // 3 bits
	FragOff  uint16
	TTL      uint8
	Protocol uint8
	Checksum uint16
	Src, Dst Addr
}

// DecodeFromBytes parses a 20-byte IPv4 header.
func (ip *IPv4) DecodeFromBytes(data []byte) error {
	if len(data) < IPv4HeaderLen {
		return ErrTooShort
	}
	vihl := data[0]
	if vihl>>4 != 4 {
		return ErrBadVersion
	}
	if int(vihl&0x0f)*4 != IPv4HeaderLen {
		return fmt.Errorf("packet: IPv4 options unsupported (ihl=%d)", vihl&0x0f)
	}
	ip.TOS = data[1]
	ip.TotalLen = binary.BigEndian.Uint16(data[2:4])
	if int(ip.TotalLen) < IPv4HeaderLen {
		return ErrBadLength
	}
	ip.ID = binary.BigEndian.Uint16(data[4:6])
	ff := binary.BigEndian.Uint16(data[6:8])
	ip.Flags = uint8(ff >> 13)
	ip.FragOff = ff & 0x1fff
	ip.TTL = data[8]
	ip.Protocol = data[9]
	ip.Checksum = binary.BigEndian.Uint16(data[10:12])
	ip.Src = Addr(binary.BigEndian.Uint32(data[12:16]))
	ip.Dst = Addr(binary.BigEndian.Uint32(data[16:20]))
	return nil
}

// SerializeTo writes the header with a freshly computed checksum.
func (ip *IPv4) SerializeTo(b []byte) error {
	if len(b) < IPv4HeaderLen {
		return ErrTooShort
	}
	b[0] = 4<<4 | IPv4HeaderLen/4
	b[1] = ip.TOS
	binary.BigEndian.PutUint16(b[2:4], ip.TotalLen)
	binary.BigEndian.PutUint16(b[4:6], ip.ID)
	binary.BigEndian.PutUint16(b[6:8], uint16(ip.Flags)<<13|ip.FragOff&0x1fff)
	b[8] = ip.TTL
	b[9] = ip.Protocol
	b[10], b[11] = 0, 0
	binary.BigEndian.PutUint32(b[12:16], uint32(ip.Src))
	binary.BigEndian.PutUint32(b[16:20], uint32(ip.Dst))
	ip.Checksum = Checksum(b[:IPv4HeaderLen])
	binary.BigEndian.PutUint16(b[10:12], ip.Checksum)
	return nil
}

// VerifyChecksum reports whether the 20-byte header in data checksums to 0.
func VerifyChecksum(data []byte) bool {
	if len(data) < IPv4HeaderLen {
		return false
	}
	return Checksum(data[:IPv4HeaderLen]) == 0
}

// Checksum computes the RFC 1071 Internet checksum over data.
func Checksum(data []byte) uint16 {
	var sum uint32
	n := len(data)
	for i := 0; i+1 < n; i += 2 {
		sum += uint32(binary.BigEndian.Uint16(data[i : i+2]))
	}
	if n%2 == 1 {
		sum += uint32(data[n-1]) << 8
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

// UDP is the decoded L4 header.
type UDP struct {
	SrcPort, DstPort uint16
	Length           uint16
	Checksum         uint16
}

// DecodeFromBytes parses an 8-byte UDP header.
func (u *UDP) DecodeFromBytes(data []byte) error {
	if len(data) < UDPHeaderLen {
		return ErrTooShort
	}
	u.SrcPort = binary.BigEndian.Uint16(data[0:2])
	u.DstPort = binary.BigEndian.Uint16(data[2:4])
	u.Length = binary.BigEndian.Uint16(data[4:6])
	u.Checksum = binary.BigEndian.Uint16(data[6:8])
	if int(u.Length) < UDPHeaderLen {
		return ErrBadLength
	}
	return nil
}

// SerializeTo writes the header (checksum 0 = unset, as DPDK tx paths do
// when offloading).
func (u *UDP) SerializeTo(b []byte) error {
	if len(b) < UDPHeaderLen {
		return ErrTooShort
	}
	binary.BigEndian.PutUint16(b[0:2], u.SrcPort)
	binary.BigEndian.PutUint16(b[2:4], u.DstPort)
	binary.BigEndian.PutUint16(b[4:6], u.Length)
	binary.BigEndian.PutUint16(b[6:8], u.Checksum)
	return nil
}

// TCP is the decoded L4 header (the subset the flow tools need).
type TCP struct {
	SrcPort, DstPort uint16
	Seq, Ack         uint32
	DataOff          uint8
	Flags            uint8
	Window           uint16
}

// DecodeFromBytes parses a TCP header.
func (t *TCP) DecodeFromBytes(data []byte) error {
	if len(data) < TCPHeaderLen {
		return ErrTooShort
	}
	t.SrcPort = binary.BigEndian.Uint16(data[0:2])
	t.DstPort = binary.BigEndian.Uint16(data[2:4])
	t.Seq = binary.BigEndian.Uint32(data[4:8])
	t.Ack = binary.BigEndian.Uint32(data[8:12])
	t.DataOff = data[12] >> 4
	t.Flags = data[13]
	t.Window = binary.BigEndian.Uint16(data[14:16])
	if int(t.DataOff)*4 < TCPHeaderLen {
		return ErrBadLength
	}
	return nil
}

// SerializeTo writes a 20-byte TCP header.
func (t *TCP) SerializeTo(b []byte) error {
	if len(b) < TCPHeaderLen {
		return ErrTooShort
	}
	binary.BigEndian.PutUint16(b[0:2], t.SrcPort)
	binary.BigEndian.PutUint16(b[2:4], t.DstPort)
	binary.BigEndian.PutUint32(b[4:8], t.Seq)
	binary.BigEndian.PutUint32(b[8:12], t.Ack)
	b[12] = TCPHeaderLen / 4 << 4
	b[13] = t.Flags
	binary.BigEndian.PutUint16(b[14:16], t.Window)
	binary.BigEndian.PutUint16(b[16:18], 0)
	binary.BigEndian.PutUint16(b[18:20], 0)
	return nil
}

// FlowKey is the 5-tuple identity of a flow; the zero ports mark non-TCP/UDP
// traffic. It is comparable and therefore usable as a map key.
type FlowKey struct {
	Src, Dst         Addr
	SrcPort, DstPort uint16
	Proto            uint8
}

// String renders "src:port > dst:port/proto".
func (k FlowKey) String() string {
	return fmt.Sprintf("%v:%d > %v:%d/%d", k.Src, k.SrcPort, k.Dst, k.DstPort, k.Proto)
}

// Reverse returns the opposite direction of the flow.
func (k FlowKey) Reverse() FlowKey {
	return FlowKey{Src: k.Dst, Dst: k.Src, SrcPort: k.DstPort, DstPort: k.SrcPort, Proto: k.Proto}
}

// Parsed is the result of a one-pass decode of an Ethernet/IPv4/L4 frame.
type Parsed struct {
	Eth     Ethernet
	IP      IPv4
	UDP     UDP
	TCP     TCP
	HasL4   bool
	Key     FlowKey
	Payload []byte // aliases the input frame
}

// Parse decodes frame in place (gopacket DecodingLayerParser style: every
// layer lands in p without allocation). It tolerates unknown L4 protocols,
// which simply yield a port-less flow key.
func (p *Parsed) Parse(frame []byte) error {
	if err := p.Eth.DecodeFromBytes(frame); err != nil {
		return err
	}
	if p.Eth.EtherType != EtherTypeIPv4 {
		return ErrBadVersion
	}
	l3 := frame[EthHeaderLen:]
	if err := p.IP.DecodeFromBytes(l3); err != nil {
		return err
	}
	if int(p.IP.TotalLen) > len(l3) {
		return ErrBadLength
	}
	p.Key = FlowKey{Src: p.IP.Src, Dst: p.IP.Dst, Proto: p.IP.Protocol}
	p.HasL4 = false
	l4 := l3[IPv4HeaderLen:p.IP.TotalLen]
	switch p.IP.Protocol {
	case ProtoUDP:
		if err := p.UDP.DecodeFromBytes(l4); err != nil {
			return err
		}
		p.Key.SrcPort, p.Key.DstPort = p.UDP.SrcPort, p.UDP.DstPort
		p.HasL4 = true
		p.Payload = l4[UDPHeaderLen:]
	case ProtoTCP:
		if err := p.TCP.DecodeFromBytes(l4); err != nil {
			return err
		}
		if int(p.TCP.DataOff)*4 > len(l4) {
			return ErrBadLength // header claims more bytes than the datagram holds
		}
		p.Key.SrcPort, p.Key.DstPort = p.TCP.SrcPort, p.TCP.DstPort
		p.HasL4 = true
		p.Payload = l4[int(p.TCP.DataOff)*4:]
	default:
		p.Payload = l4
	}
	return nil
}

// BuildUDP assembles a complete Ethernet/IPv4/UDP frame of exactly size
// bytes (>= 60) into buf and returns the frame slice. The payload is
// zero-filled. It is the factory used by the traffic generators and tests.
func BuildUDP(buf []byte, size int, src, dst Addr, sport, dport uint16) ([]byte, error) {
	if size < MinFrame {
		size = MinFrame
	}
	if len(buf) < size {
		return nil, ErrTooShort
	}
	frame := buf[:size]
	for i := range frame {
		frame[i] = 0
	}
	eth := Ethernet{
		Dst:       MAC{0x02, 0, 0, 0, 0, 2},
		Src:       MAC{0x02, 0, 0, 0, 0, 1},
		EtherType: EtherTypeIPv4,
	}
	if err := eth.SerializeTo(frame); err != nil {
		return nil, err
	}
	ip := IPv4{
		TotalLen: uint16(size - EthHeaderLen),
		TTL:      64,
		Protocol: ProtoUDP,
		Src:      src,
		Dst:      dst,
	}
	if err := ip.SerializeTo(frame[EthHeaderLen:]); err != nil {
		return nil, err
	}
	udp := UDP{
		SrcPort: sport,
		DstPort: dport,
		Length:  uint16(size - EthHeaderLen - IPv4HeaderLen),
	}
	if err := udp.SerializeTo(frame[EthHeaderLen+IPv4HeaderLen:]); err != nil {
		return nil, err
	}
	return frame, nil
}
