package packet

import (
	"math"
	"testing"

	"metronome/internal/xrand"
)

// The Microsoft RSS specification publishes verification vectors for the
// default key; DPDK's own thash tests use the same set. Tuple order is
// (src addr, dst addr, src port, dst port).
var rssVectors = []struct {
	srcIP      Addr
	dstIP      Addr
	srcPort    uint16
	dstPort    uint16
	want4Tuple uint32
	want2Tuple uint32
}{
	{AddrFrom4(66, 9, 149, 187), AddrFrom4(161, 142, 100, 80), 2794, 1766, 0x51ccc178, 0x323e8fc2},
	{AddrFrom4(199, 92, 111, 2), AddrFrom4(65, 69, 140, 83), 14230, 4739, 0xc626b0ea, 0xd718262a},
	{AddrFrom4(24, 19, 198, 95), AddrFrom4(12, 22, 207, 184), 12898, 38024, 0x5c2b394a, 0xd2d0a5de},
	{AddrFrom4(38, 27, 205, 30), AddrFrom4(209, 142, 163, 6), 48228, 2217, 0xafc7327f, 0x82989176},
	{AddrFrom4(153, 39, 163, 191), AddrFrom4(202, 188, 127, 2), 44251, 1303, 0x10e828a2, 0x5d1809c5},
}

func TestToeplitzSpecVectors(t *testing.T) {
	h := NewToeplitz(DefaultRSSKey)
	for i, v := range rssVectors {
		k := FlowKey{Src: v.srcIP, Dst: v.dstIP, SrcPort: v.srcPort, DstPort: v.dstPort, Proto: ProtoTCP}
		if got := h.HashFlow(k); got != v.want4Tuple {
			t.Errorf("vector %d 4-tuple: got %08x, want %08x", i, got, v.want4Tuple)
		}
		if got := h.HashAddrs(k); got != v.want2Tuple {
			t.Errorf("vector %d 2-tuple: got %08x, want %08x", i, got, v.want2Tuple)
		}
	}
}

func TestToeplitzZeroInput(t *testing.T) {
	h := NewToeplitz(DefaultRSSKey)
	if got := h.Hash(make([]byte, 12)); got != 0 {
		t.Fatalf("all-zero input hashed to %08x, want 0", got)
	}
}

func TestToeplitzLinearity(t *testing.T) {
	// Toeplitz over GF(2) is linear: H(a xor b) == H(a) xor H(b).
	h := NewToeplitz(DefaultRSSKey)
	r := xrand.New(9)
	for trial := 0; trial < 50; trial++ {
		a := make([]byte, 12)
		b := make([]byte, 12)
		x := make([]byte, 12)
		for i := range a {
			a[i] = byte(r.Intn(256))
			b[i] = byte(r.Intn(256))
			x[i] = a[i] ^ b[i]
		}
		if h.Hash(x) != h.Hash(a)^h.Hash(b) {
			t.Fatalf("linearity violated on trial %d", trial)
		}
	}
}

func TestToeplitzTableMatchesBitWalk(t *testing.T) {
	// The lookup-table Hash must agree bit-for-bit with the per-bit
	// reference walk of the RSS spec, over random keys and every input
	// length from empty through past-the-key (len 45 > 40 exercises the
	// truncation to zero-contribution positions).
	r := xrand.New(17)
	for trial := 0; trial < 20; trial++ {
		var key [40]byte
		for i := range key {
			key[i] = byte(r.Intn(256))
		}
		h := NewToeplitz(key)
		for length := 0; length <= 45; length++ {
			in := make([]byte, length)
			for i := range in {
				in[i] = byte(r.Intn(256))
			}
			if got, want := h.Hash(in), h.hashSlow(in); got != want {
				t.Fatalf("trial %d len %d: table hash %08x, bit-walk %08x", trial, length, got, want)
			}
		}
	}
}

func TestQueueForSpread(t *testing.T) {
	// Random flows must spread roughly evenly over queues — RSS would be
	// useless otherwise, and the multiqueue experiments depend on it.
	h := NewToeplitz(DefaultRSSKey)
	r := xrand.New(4)
	const queues = 4
	const flows = 40000
	var counts [queues]int
	for i := 0; i < flows; i++ {
		k := FlowKey{
			Src:     Addr(r.Uint64()),
			Dst:     Addr(r.Uint64()),
			SrcPort: uint16(r.Intn(1 << 16)),
			DstPort: uint16(r.Intn(1 << 16)),
			Proto:   ProtoUDP,
		}
		counts[h.QueueFor(k, queues)]++
	}
	want := float64(flows) / queues
	for q, c := range counts {
		if math.Abs(float64(c)-want) > 0.05*want {
			t.Errorf("queue %d: %d flows, want ~%.0f", q, c, want)
		}
	}
}

func TestQueueForSingleQueue(t *testing.T) {
	h := NewToeplitz(DefaultRSSKey)
	if h.QueueFor(FlowKey{Src: 1, Dst: 2}, 1) != 0 {
		t.Fatal("single queue must always map to 0")
	}
}

func TestQueueForStable(t *testing.T) {
	// A flow always lands on the same queue: per-flow ordering depends on it.
	h := NewToeplitz(DefaultRSSKey)
	k := FlowKey{Src: AddrFrom4(10, 0, 0, 1), Dst: AddrFrom4(10, 0, 0, 2), SrcPort: 7, DstPort: 8, Proto: ProtoUDP}
	q := h.QueueFor(k, 3)
	for i := 0; i < 100; i++ {
		if h.QueueFor(k, 3) != q {
			t.Fatal("queue mapping is unstable")
		}
	}
}

func BenchmarkToeplitzHashFlow(b *testing.B) {
	h := NewToeplitz(DefaultRSSKey)
	k := FlowKey{Src: AddrFrom4(66, 9, 149, 187), Dst: AddrFrom4(161, 142, 100, 80), SrcPort: 2794, DstPort: 1766}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = h.HashFlow(k)
	}
}
