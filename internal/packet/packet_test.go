package packet

import (
	"testing"
	"testing/quick"

	"metronome/internal/xrand"
)

func TestEthernetRoundTrip(t *testing.T) {
	in := Ethernet{
		Dst:       MAC{1, 2, 3, 4, 5, 6},
		Src:       MAC{7, 8, 9, 10, 11, 12},
		EtherType: EtherTypeIPv4,
	}
	var buf [EthHeaderLen]byte
	if err := in.SerializeTo(buf[:]); err != nil {
		t.Fatal(err)
	}
	var out Ethernet
	if err := out.DecodeFromBytes(buf[:]); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip: %+v != %+v", out, in)
	}
}

func TestEthernetShort(t *testing.T) {
	var e Ethernet
	if err := e.DecodeFromBytes(make([]byte, 13)); err != ErrTooShort {
		t.Fatalf("err = %v, want ErrTooShort", err)
	}
	if err := e.SerializeTo(make([]byte, 5)); err != ErrTooShort {
		t.Fatalf("err = %v, want ErrTooShort", err)
	}
}

func TestMACString(t *testing.T) {
	m := MAC{0xde, 0xad, 0xbe, 0xef, 0x00, 0x01}
	if m.String() != "de:ad:be:ef:00:01" {
		t.Fatalf("MAC string = %q", m.String())
	}
}

func TestAddr(t *testing.T) {
	a := AddrFrom4(10, 1, 2, 3)
	if a.String() != "10.1.2.3" {
		t.Fatalf("addr = %q", a.String())
	}
	if uint32(a) != 0x0a010203 {
		t.Fatalf("addr value = %08x", uint32(a))
	}
}

func TestIPv4RoundTrip(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := xrand.New(seed)
		in := IPv4{
			TOS:      uint8(r.Intn(256)),
			TotalLen: uint16(IPv4HeaderLen + r.Intn(1480)),
			ID:       uint16(r.Intn(1 << 16)),
			Flags:    uint8(r.Intn(8)),
			FragOff:  uint16(r.Intn(1 << 13)),
			TTL:      uint8(r.Intn(256)),
			Protocol: uint8(r.Intn(256)),
			Src:      Addr(r.Uint64()),
			Dst:      Addr(r.Uint64()),
		}
		var buf [IPv4HeaderLen]byte
		if in.SerializeTo(buf[:]) != nil {
			return false
		}
		var out IPv4
		if out.DecodeFromBytes(buf[:]) != nil {
			return false
		}
		return out == in && VerifyChecksum(buf[:])
	}, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestIPv4RejectsV6(t *testing.T) {
	var buf [IPv4HeaderLen]byte
	buf[0] = 6 << 4
	var ip IPv4
	if err := ip.DecodeFromBytes(buf[:]); err != ErrBadVersion {
		t.Fatalf("err = %v", err)
	}
}

func TestIPv4RejectsOptions(t *testing.T) {
	var buf [24]byte
	buf[0] = 4<<4 | 6 // ihl = 6 words
	var ip IPv4
	if err := ip.DecodeFromBytes(buf[:]); err == nil {
		t.Fatal("options accepted")
	}
}

func TestChecksumKnownVector(t *testing.T) {
	// Classic example from RFC 1071 discussions: header with checksum field
	// zeroed sums to the documented complement.
	h := []byte{
		0x45, 0x00, 0x00, 0x73, 0x00, 0x00, 0x40, 0x00,
		0x40, 0x11, 0x00, 0x00, 0xc0, 0xa8, 0x00, 0x01,
		0xc0, 0xa8, 0x00, 0xc7,
	}
	if got := Checksum(h); got != 0xb861 {
		t.Fatalf("checksum = %04x, want b861", got)
	}
	h[10], h[11] = 0xb8, 0x61
	if !VerifyChecksum(h) {
		t.Fatal("checksum verification failed on valid header")
	}
	h[8] ^= 0xff
	if VerifyChecksum(h) {
		t.Fatal("corruption not detected")
	}
}

func TestChecksumOddLength(t *testing.T) {
	// Odd-length data pads with a zero byte on the right.
	if Checksum([]byte{0x01}) != ^uint16(0x0100) {
		t.Fatal("odd-length checksum wrong")
	}
}

func TestUDPRoundTrip(t *testing.T) {
	in := UDP{SrcPort: 1234, DstPort: 5678, Length: 100, Checksum: 0}
	var buf [UDPHeaderLen]byte
	if err := in.SerializeTo(buf[:]); err != nil {
		t.Fatal(err)
	}
	var out UDP
	if err := out.DecodeFromBytes(buf[:]); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("%+v != %+v", out, in)
	}
}

func TestUDPBadLength(t *testing.T) {
	var buf [UDPHeaderLen]byte
	buf[5] = 4 // length 4 < 8
	var u UDP
	if err := u.DecodeFromBytes(buf[:]); err != ErrBadLength {
		t.Fatalf("err = %v", err)
	}
}

func TestTCPRoundTrip(t *testing.T) {
	in := TCP{SrcPort: 80, DstPort: 45000, Seq: 1 << 30, Ack: 77, DataOff: 5, Flags: 0x18, Window: 65535}
	var buf [TCPHeaderLen]byte
	if err := in.SerializeTo(buf[:]); err != nil {
		t.Fatal(err)
	}
	var out TCP
	if err := out.DecodeFromBytes(buf[:]); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("%+v != %+v", out, in)
	}
}

func TestFlowKeyReverse(t *testing.T) {
	k := FlowKey{Src: 1, Dst: 2, SrcPort: 10, DstPort: 20, Proto: ProtoUDP}
	rev := k.Reverse()
	if rev.Src != 2 || rev.Dst != 1 || rev.SrcPort != 20 || rev.DstPort != 10 {
		t.Fatalf("reverse = %+v", rev)
	}
	if rev.Reverse() != k {
		t.Fatal("double reverse is not identity")
	}
}

func TestBuildAndParseUDP(t *testing.T) {
	buf := make([]byte, 1500)
	frame, err := BuildUDP(buf, 64, AddrFrom4(10, 0, 0, 1), AddrFrom4(10, 0, 0, 2), 1000, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if len(frame) != 64 {
		t.Fatalf("frame len = %d", len(frame))
	}
	var p Parsed
	if err := p.Parse(frame); err != nil {
		t.Fatal(err)
	}
	if !p.HasL4 || p.Key.Proto != ProtoUDP {
		t.Fatalf("parsed key = %+v", p.Key)
	}
	if p.Key.Src != AddrFrom4(10, 0, 0, 1) || p.Key.DstPort != 2000 {
		t.Fatalf("key = %v", p.Key)
	}
	if !VerifyChecksum(frame[EthHeaderLen:]) {
		t.Fatal("built frame has bad IP checksum")
	}
}

func TestBuildUDPMinimumSize(t *testing.T) {
	buf := make([]byte, 128)
	frame, err := BuildUDP(buf, 10, 1, 2, 3, 4) // below minimum: padded up
	if err != nil {
		t.Fatal(err)
	}
	if len(frame) != MinFrame {
		t.Fatalf("frame len = %d, want %d", len(frame), MinFrame)
	}
}

func TestBuildUDPBufferTooSmall(t *testing.T) {
	if _, err := BuildUDP(make([]byte, 32), 64, 1, 2, 3, 4); err != ErrTooShort {
		t.Fatalf("err = %v", err)
	}
}

func TestParseRejectsTruncatedL3(t *testing.T) {
	buf := make([]byte, 128)
	frame, _ := BuildUDP(buf, 64, 1, 2, 3, 4)
	var p Parsed
	if err := p.Parse(frame[:20]); err == nil {
		t.Fatal("truncated frame parsed")
	}
}

func TestParseRoundTripProperty(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := xrand.New(seed)
		buf := make([]byte, 1600)
		size := 60 + r.Intn(1440)
		src := Addr(r.Uint64())
		dst := Addr(r.Uint64())
		sp := uint16(r.Intn(1 << 16))
		dp := uint16(r.Intn(1 << 16))
		frame, err := BuildUDP(buf, size, src, dst, sp, dp)
		if err != nil {
			return false
		}
		var p Parsed
		if p.Parse(frame) != nil {
			return false
		}
		return p.Key == FlowKey{Src: src, Dst: dst, SrcPort: sp, DstPort: dp, Proto: ProtoUDP}
	}, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkParse(b *testing.B) {
	buf := make([]byte, 128)
	frame, _ := BuildUDP(buf, 64, 1, 2, 3, 4)
	var p Parsed
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := p.Parse(frame); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBuildUDP(b *testing.B) {
	buf := make([]byte, 128)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := BuildUDP(buf, 64, 1, 2, 3, 4); err != nil {
			b.Fatal(err)
		}
	}
}
