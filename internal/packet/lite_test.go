package packet

import (
	"encoding/binary"
	"math/rand"
	"testing"
)

// buildTCP assembles an Ethernet/IPv4/TCP frame for the fast-path tests
// (BuildUDP covers the UDP shape).
func buildTCP(size int, src, dst Addr, sport, dport uint16) []byte {
	if size < MinFrame {
		size = MinFrame
	}
	frame := make([]byte, size)
	eth := Ethernet{Dst: MAC{2, 0, 0, 0, 0, 2}, Src: MAC{2, 0, 0, 0, 0, 1}, EtherType: EtherTypeIPv4}
	_ = eth.SerializeTo(frame)
	ip := IPv4{TotalLen: uint16(size - EthHeaderLen), TTL: 64, Protocol: ProtoTCP, Src: src, Dst: dst}
	_ = ip.SerializeTo(frame[EthHeaderLen:])
	tcp := TCP{SrcPort: sport, DstPort: dport, Window: 4096}
	_ = tcp.SerializeTo(frame[EthHeaderLen+IPv4HeaderLen:])
	return frame
}

// checkLiteMatchesParse asserts the acceptance contract: ParseLite rejects a
// frame iff Parse does, and on acceptance agrees on Key, TTL and TotalLen.
func checkLiteMatchesParse(t *testing.T, frame []byte) {
	t.Helper()
	var p Parsed
	var l Lite
	perr := p.Parse(frame)
	lerr := ParseLite(frame, &l)
	if (perr == nil) != (lerr == nil) {
		t.Fatalf("accept/reject divergence: Parse=%v ParseLite=%v frame=%x", perr, lerr, frame)
	}
	if perr != nil {
		return
	}
	if l.Key != p.Key {
		t.Fatalf("key divergence: lite=%v parsed=%v", l.Key, p.Key)
	}
	if l.TTL != p.IP.TTL {
		t.Fatalf("ttl divergence: lite=%d parsed=%d", l.TTL, p.IP.TTL)
	}
	if l.TotalLen != p.IP.TotalLen {
		t.Fatalf("totallen divergence: lite=%d parsed=%d", l.TotalLen, p.IP.TotalLen)
	}
}

func TestParseLiteMatchesParseStructured(t *testing.T) {
	buf := make([]byte, 256)
	udp, err := BuildUDP(buf, 80, AddrFrom4(10, 0, 0, 1), AddrFrom4(10, 0, 1, 1), 1000, 53)
	if err != nil {
		t.Fatal(err)
	}
	frames := [][]byte{
		udp,
		buildTCP(96, AddrFrom4(192, 168, 0, 5), AddrFrom4(10, 0, 0, 9), 443, 55555),
		nil,       // empty
		udp[:10],  // truncated ethernet
		udp[:20],  // truncated IPv4
		udp[:40],  // truncated below TotalLen
		udp[:140], // padding beyond TotalLen tolerated
	}
	// Wrong ethertype.
	f := append([]byte(nil), udp...)
	binary.BigEndian.PutUint16(f[12:14], 0x86dd)
	frames = append(frames, f)
	// IPv6 version nibble.
	f = append([]byte(nil), udp...)
	f[EthHeaderLen] = 0x65
	frames = append(frames, f)
	// IPv4 options (ihl=6).
	f = append([]byte(nil), udp...)
	f[EthHeaderLen] = 0x46
	frames = append(frames, f)
	// TotalLen below the header size.
	f = append([]byte(nil), udp...)
	binary.BigEndian.PutUint16(f[EthHeaderLen+2:EthHeaderLen+4], 8)
	frames = append(frames, f)
	// TotalLen beyond the frame.
	f = append([]byte(nil), udp...)
	binary.BigEndian.PutUint16(f[EthHeaderLen+2:EthHeaderLen+4], 4000)
	frames = append(frames, f)
	// UDP length field below the header size.
	f = append([]byte(nil), udp...)
	binary.BigEndian.PutUint16(f[EthHeaderLen+IPv4HeaderLen+4:EthHeaderLen+IPv4HeaderLen+6], 4)
	frames = append(frames, f)
	// TotalLen leaving a truncated UDP header.
	f = append([]byte(nil), udp...)
	binary.BigEndian.PutUint16(f[EthHeaderLen+2:EthHeaderLen+4], IPv4HeaderLen+4)
	frames = append(frames, f)
	// Unknown L4 protocol: port-less key.
	f = append([]byte(nil), udp...)
	f[EthHeaderLen+9] = 99
	frames = append(frames, f)
	// TCP with a bad data offset.
	f = buildTCP(96, AddrFrom4(1, 2, 3, 4), AddrFrom4(5, 6, 7, 8), 1, 2)
	f[EthHeaderLen+IPv4HeaderLen+12] = 2 << 4
	frames = append(frames, f)
	// TotalLen leaving a truncated TCP header.
	f = buildTCP(96, AddrFrom4(1, 2, 3, 4), AddrFrom4(5, 6, 7, 8), 1, 2)
	binary.BigEndian.PutUint16(f[EthHeaderLen+2:EthHeaderLen+4], IPv4HeaderLen+10)
	frames = append(frames, f)
	// TTL edge values (the forwarding apps branch on TTL <= 1).
	for _, ttl := range []byte{0, 1, 2, 255} {
		f = append([]byte(nil), udp...)
		f[EthHeaderLen+8] = ttl
		frames = append(frames, f)
	}
	for i, frame := range frames {
		i := i
		frame := frame
		t.Run("", func(t *testing.T) {
			_ = i
			checkLiteMatchesParse(t, frame)
		})
	}
}

// Randomised sweep: valid frames with random point mutations, plus pure
// noise. ParseLite must agree with Parse on every one of them.
func TestParseLiteMatchesParseFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	buf := make([]byte, 512)
	for iter := 0; iter < 20000; iter++ {
		var frame []byte
		switch rng.Intn(3) {
		case 0: // mutated UDP
			size := 60 + rng.Intn(120)
			f, err := BuildUDP(buf, size, Addr(rng.Uint32()), Addr(rng.Uint32()),
				uint16(rng.Intn(65536)), uint16(rng.Intn(65536)))
			if err != nil {
				t.Fatal(err)
			}
			frame = append([]byte(nil), f...)
		case 1: // mutated TCP
			frame = buildTCP(60+rng.Intn(120), Addr(rng.Uint32()), Addr(rng.Uint32()),
				uint16(rng.Intn(65536)), uint16(rng.Intn(65536)))
		default: // noise
			frame = make([]byte, rng.Intn(128))
			rng.Read(frame)
		}
		for m := rng.Intn(4); m > 0; m-- {
			if len(frame) == 0 {
				break
			}
			frame[rng.Intn(len(frame))] = byte(rng.Intn(256))
		}
		if rng.Intn(4) == 0 && len(frame) > 0 {
			frame = frame[:rng.Intn(len(frame))]
		}
		checkLiteMatchesParse(t, frame)
	}
}

func TestFlowKeyLess(t *testing.T) {
	a := FlowKey{Src: 1, Dst: 2, SrcPort: 3, DstPort: 4, Proto: 5}
	cases := []FlowKey{
		{Src: 2, Dst: 2, SrcPort: 3, DstPort: 4, Proto: 5},
		{Src: 1, Dst: 3, SrcPort: 3, DstPort: 4, Proto: 5},
		{Src: 1, Dst: 2, SrcPort: 4, DstPort: 4, Proto: 5},
		{Src: 1, Dst: 2, SrcPort: 3, DstPort: 5, Proto: 5},
		{Src: 1, Dst: 2, SrcPort: 3, DstPort: 4, Proto: 6},
	}
	for _, b := range cases {
		if !a.Less(b) || b.Less(a) {
			t.Fatalf("ordering broken for %v vs %v", a, b)
		}
	}
	if a.Less(a) {
		t.Fatal("irreflexivity broken")
	}
}
