package packet

import (
	"encoding/binary"
	"errors"
)

// ErrOptions rejects IPv4 headers carrying options. Parse builds a
// descriptive error for the same frames; the fast path returns this
// allocation-free sentinel because it runs per packet inside a burst.
var ErrOptions = errors.New("packet: IPv4 options unsupported")

// Lite is the header view the burst fast paths touch: the 5-tuple key plus
// the two IPv4 fields the forwarding apps branch on. Everything else stays
// on the wire.
type Lite struct {
	Key      FlowKey
	TTL      uint8
	TotalLen uint16
}

// ParseLite is the raw-offset header walk behind the native ProcessBurst
// implementations: it reads only the fields in Lite instead of decoding
// every layer into a Parsed, but accepts and rejects EXACTLY the frames
// Parse does (the taxonomy the per-packet/burst equivalence tests pin
// down — a frame is malformed on one path iff it is on the other). Error
// identities may differ (ErrOptions vs Parse's formatted error); verdicts
// only depend on error presence.
func ParseLite(frame []byte, l *Lite) error {
	if len(frame) < EthHeaderLen {
		return ErrTooShort
	}
	if binary.BigEndian.Uint16(frame[12:14]) != EtherTypeIPv4 {
		return ErrBadVersion
	}
	l3 := frame[EthHeaderLen:]
	if len(l3) < IPv4HeaderLen {
		return ErrTooShort
	}
	vihl := l3[0]
	if vihl>>4 != 4 {
		return ErrBadVersion
	}
	if vihl&0x0f != IPv4HeaderLen/4 {
		return ErrOptions
	}
	totalLen := binary.BigEndian.Uint16(l3[2:4])
	if int(totalLen) < IPv4HeaderLen || int(totalLen) > len(l3) {
		return ErrBadLength
	}
	l.TTL = l3[8]
	proto := l3[9]
	l.TotalLen = totalLen
	l.Key = FlowKey{
		Src:   Addr(binary.BigEndian.Uint32(l3[12:16])),
		Dst:   Addr(binary.BigEndian.Uint32(l3[16:20])),
		Proto: proto,
	}
	l4 := l3[IPv4HeaderLen:totalLen]
	switch proto {
	case ProtoUDP:
		if len(l4) < UDPHeaderLen {
			return ErrTooShort
		}
		if binary.BigEndian.Uint16(l4[4:6]) < UDPHeaderLen {
			return ErrBadLength
		}
		l.Key.SrcPort = binary.BigEndian.Uint16(l4[0:2])
		l.Key.DstPort = binary.BigEndian.Uint16(l4[2:4])
	case ProtoTCP:
		if len(l4) < TCPHeaderLen {
			return ErrTooShort
		}
		if off := int(l4[12]>>4) * 4; off < TCPHeaderLen || off > len(l4) {
			return ErrBadLength
		}
		l.Key.SrcPort = binary.BigEndian.Uint16(l4[0:2])
		l.Key.DstPort = binary.BigEndian.Uint16(l4[2:4])
	}
	return nil
}

// Less orders flow keys numerically (Src, Dst, SrcPort, DstPort, Proto) —
// the allocation-free deterministic tie-break the reporting paths use
// where they previously compared String() renderings.
func (k FlowKey) Less(o FlowKey) bool {
	if k.Src != o.Src {
		return k.Src < o.Src
	}
	if k.Dst != o.Dst {
		return k.Dst < o.Dst
	}
	if k.SrcPort != o.SrcPort {
		return k.SrcPort < o.SrcPort
	}
	if k.DstPort != o.DstPort {
		return k.DstPort < o.DstPort
	}
	return k.Proto < o.Proto
}
