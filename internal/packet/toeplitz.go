package packet

import "encoding/binary"

// DefaultRSSKey is the 40-byte Microsoft/Intel reference Toeplitz key that
// DPDK and most NIC drivers ship as their default (the value ixgbe and i40e
// program unless overridden). Using it means our RSS spreading matches what
// the paper's X520/XL710 NICs actually computed.
var DefaultRSSKey = [40]byte{
	0x6d, 0x5a, 0x56, 0xda, 0x25, 0x5b, 0x0e, 0xc2,
	0x41, 0x67, 0x25, 0x3d, 0x43, 0xa3, 0x8f, 0xb0,
	0xd0, 0xca, 0x2b, 0xcb, 0xae, 0x7b, 0x30, 0xb4,
	0x77, 0xcb, 0x2d, 0xa3, 0x80, 0x30, 0xf2, 0x0c,
	0x6a, 0x42, 0xb7, 0x3b, 0xbe, 0xac, 0x01, 0xfa,
}

// Toeplitz computes the RSS hash over an input tuple using a 40-byte key,
// per the Microsoft RSS specification: for every set bit i of the input
// (MSB first), XOR into the result the 32-bit window of the key that starts
// at bit offset i.
//
// Hashing runs on lookup tables precomputed by NewToeplitz — one 256-entry
// table per input byte position, each entry the XOR of the key windows of
// that byte value's set bits — so hashing a 12-byte RSS tuple costs 12
// table loads and XORs instead of a 96-iteration bit walk. GF(2) linearity
// makes the tables exact, and the bit-walk reference implementation stays
// behind (hashSlow) as the equivalence-test oracle.
type Toeplitz struct {
	key [40]byte
	// tab[i][v] is the hash contribution of byte value v at input byte
	// position i. Positions past the key (i >= 40) contribute zero by the
	// zero-padding rule, so 40 positions cover every input length.
	tab [40][256]uint32
}

// NewToeplitz returns a hasher for key, precomputing the per-(position,
// byte-value) lookup tables (40x256 uint32, built once per hasher).
func NewToeplitz(key [40]byte) *Toeplitz {
	t := &Toeplitz{key: key}
	for pos := range t.tab {
		var w [8]uint32 // the key windows of this position's eight bits
		for bit := 0; bit < 8; bit++ {
			w[bit] = t.window(pos*8 + bit)
		}
		for v := 1; v < 256; v++ {
			var h uint32
			for bit := 0; bit < 8; bit++ {
				if v&(0x80>>uint(bit)) != 0 {
					h ^= w[bit]
				}
			}
			t.tab[pos][v] = h
		}
	}
	return t
}

// Hash computes the raw Toeplitz hash of input. With a 40-byte key the
// meaningful input length is at most 36 bytes; RSS IPv4 tuples are 8 or 12.
func (t *Toeplitz) Hash(input []byte) uint32 {
	if len(input) > len(t.tab) {
		input = input[:len(t.tab)] // tail positions hash against pure padding: zero
	}
	var result uint32
	for i, b := range input {
		result ^= t.tab[i][b]
	}
	return result
}

// hashSlow is the per-bit reference walk of the RSS specification, kept as
// the oracle the table path is equivalence-tested against.
func (t *Toeplitz) hashSlow(input []byte) uint32 {
	var result uint32
	for i, b := range input {
		for bit := 0; bit < 8; bit++ {
			if b&(0x80>>uint(bit)) != 0 {
				result ^= t.window(i*8 + bit)
			}
		}
	}
	return result
}

// window returns the 32 bits of the key starting at bit offset off,
// zero-padded past the end of the key.
func (t *Toeplitz) window(off int) uint32 {
	byteOff := off / 8
	shift := off % 8
	var v uint64 // 40 bits of key material covering the window
	for k := 0; k < 5; k++ {
		v <<= 8
		if byteOff+k < len(t.key) {
			v |= uint64(t.key[byteOff+k])
		}
	}
	return uint32(v >> (8 - uint(shift)))
}

// HashFlow computes the standard RSS IPv4 4-tuple hash over
// (src addr, dst addr, src port, dst port), all big-endian — the hash the
// X520/XL710 use to pick an Rx queue for TCP/UDP traffic.
func (t *Toeplitz) HashFlow(k FlowKey) uint32 {
	var buf [12]byte
	binary.BigEndian.PutUint32(buf[0:4], uint32(k.Src))
	binary.BigEndian.PutUint32(buf[4:8], uint32(k.Dst))
	binary.BigEndian.PutUint16(buf[8:10], k.SrcPort)
	binary.BigEndian.PutUint16(buf[10:12], k.DstPort)
	return t.Hash(buf[:])
}

// HashAddrs computes the 2-tuple (addresses only) variant used for
// non-TCP/UDP IPv4 traffic.
func (t *Toeplitz) HashAddrs(k FlowKey) uint32 {
	var buf [8]byte
	binary.BigEndian.PutUint32(buf[0:4], uint32(k.Src))
	binary.BigEndian.PutUint32(buf[4:8], uint32(k.Dst))
	return t.Hash(buf[:])
}

// QueueFor maps a flow to one of n queues through the low bits of the RSS
// hash, mirroring the indirection-table default of an even spread.
func (t *Toeplitz) QueueFor(k FlowKey, n int) int {
	if n <= 1 {
		return 0
	}
	var h uint32
	if k.Proto == ProtoTCP || k.Proto == ProtoUDP {
		h = t.HashFlow(k)
	} else {
		h = t.HashAddrs(k)
	}
	return int(h % uint32(n))
}
