package obsv

import "metronome/internal/faults"

// AttachFaults wires a fault injector's event stream into the flight
// recorder: every flag flip Apply lands (scheduled engine events on the
// sim substrate, direct Apply calls live) records one EvFault with the
// event's own substrate timestamp — clockless on both substrates. Call
// before the injector starts applying events (the observer registration
// is not synchronized against concurrent Apply). Nil injector or
// recorder is a no-op.
func AttachFaults(inj *faults.Injector, r *Recorder) {
	if inj == nil || r == nil {
		return
	}
	inj.Observe(func(ev faults.Event) {
		r.RecordFault(ev.At, int(ev.Kind), ev.Target)
	})
}
