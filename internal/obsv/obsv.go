// Package obsv is the observability plane: a flight recorder for
// control-plane events, a stdlib-only Prometheus/expvar exporter over the
// telemetry bus, and the parsing helpers the metrotop operator view and
// the CI smoke tests share.
//
// The flight recorder is a fixed-capacity, lock-free ring of structured
// events — every elastic Decision, placement swap, exile/un-exile,
// safe-mode transition, dark-loss classification, fault flag flip and
// actuation rate-limit hit — recorded clocklessly (the caller supplies the
// substrate timestamp; the recorder never reads a wall clock) at zero
// allocations per event. On the simulated substrate every event carries a
// virtual timestamp and is emitted from the single engine goroutine, so
// recorded traces are byte-identical at any experiment-harness
// parallelism; on the live substrate writers may race and readers resolve
// the race per slot (a slot being overwritten mid-read is skipped, never
// torn). Dump a recording with WriteText (line-per-event key=value text)
// or WriteTrace (Chrome trace-event JSON, loadable in Perfetto).
//
// The package deliberately sits below the control planes in the import
// DAG: internal/elastic, internal/core and internal/runtime depend on it
// (each carries an optional *Recorder in its Config), never the reverse.
package obsv

import (
	"math"
	"sync"
	"sync/atomic"
)

// Kind identifies what a flight-recorder event describes.
type Kind uint8

// Flight-recorder event kinds. The numeric values are stable across a
// recording's lifetime (they are serialised into traces) but not across
// releases; match on the constants, not on literals.
const (
	// EvDecision is one elastic controller tick: team size law output,
	// placement plan, feedforward and objective gauges.
	EvDecision Kind = iota
	// EvPlacement is a substrate-applied placement swap (core or live
	// runner ApplyPlacement that actually changed the layout).
	EvPlacement
	// EvExile marks a member exiled by the health layer's straggler
	// detector; A carries the thread id.
	EvExile
	// EvRecover marks a previously exiled member whose heartbeat moved
	// again; A carries the thread id.
	EvRecover
	// EvSafeEnter marks the tick on which the controller entered the
	// all-stale safe mode; A carries the team size at entry.
	EvSafeEnter
	// EvSafeExit marks the first tick with fresh signal after safe mode;
	// A carries the team size at exit.
	EvSafeExit
	// EvDarkLoss is one dark-loss classification: drops excluded from the
	// loss override because the queue read empty while dropping (blackout
	// signature). A carries the queue id, B the excluded drop delta.
	EvDarkLoss
	// EvFault is a fault-plane flag flip observed via AttachFaults; A
	// carries the target (thread or queue id), B the faults.Kind.
	EvFault
	// EvRateLimit marks an actuation denied by the controller's
	// token-bucket rate limiter.
	EvRateLimit
	// EvPanic marks a controller tick panic swallowed by the watchdog; A
	// indexes the recorder's PanicLog, which holds the message and stack.
	EvPanic

	numKinds
)

var kindNames = [numKinds]string{
	"decision", "placement", "exile", "recover",
	"safe-enter", "safe-exit", "dark-loss", "fault",
	"rate-limit", "panic",
}

// String names the kind for traces and test output.
func (k Kind) String() string {
	if int(k) >= len(kindNames) {
		return "obsv.Kind(?)"
	}
	return kindNames[k]
}

// Decision flag bits carried by EvDecision events.
const (
	// FlagResized marks a decision whose tick changed the team total.
	FlagResized uint8 = 1 << iota
	// FlagRebalanced marks a decision whose tick migrated members at a
	// held total.
	FlagRebalanced
	// FlagSafeMode marks a decision taken with every queue's telemetry
	// stale (the controller held or grew toward the safe team).
	FlagSafeMode
)

// Event is one decoded flight-recorder entry. The scalar fields are
// kind-specific; the decode helpers (Want, Applied, Target, ...) name the
// common interpretations.
type Event struct {
	// Seq is the 1-based global sequence number of the event; a reader
	// that observes gaps lost the missing entries to ring overwrite.
	Seq uint64
	// At is the substrate timestamp in seconds: virtual time on the
	// simulated substrate, Runner.Elapsed on the live one.
	At float64
	// Kind identifies the event.
	Kind Kind
	// Flags carries the decision flag bits (EvDecision only).
	Flags uint8
	// A is the kind-specific primary scalar: packed want/applied for
	// decisions, a thread/queue id for exile/recover/dark-loss/fault
	// events, the team size for safe-mode edges and placements.
	A int64
	// B is the kind-specific secondary scalar: the packed placement plan
	// (sched.PackPlacement) for decisions and placements, the drop delta
	// for dark-loss, the faults.Kind for fault flips.
	B uint64
	// F1 is the decision's worst-queue occupancy fraction.
	F1 float64
	// F2 is the decision's feedforward term.
	F2 float64
	// F3 is the decision's modelled team watts.
	F3 float64
}

// Want returns a decision's size-law target (EvDecision).
func (e Event) Want() int { return int(int32(uint64(e.A) >> 32)) }

// Applied returns the team size in effect after the event (EvDecision),
// or the applied total (EvPlacement, EvSafeEnter, EvSafeExit).
func (e Event) Applied() int {
	if e.Kind == EvDecision {
		return int(int32(uint64(e.A) & 0xffffffff))
	}
	return int(e.A)
}

// Target returns the thread or queue id the event is about (EvExile,
// EvRecover, EvDarkLoss, EvFault).
func (e Event) Target() int { return int(e.A) }

// Plan returns the packed placement plan (sched.PackPlacement layout;
// 0 when the event carries none or the plan didn't fit the packing).
func (e Event) Plan() uint64 {
	if e.Kind == EvDecision || e.Kind == EvPlacement {
		return e.B
	}
	return 0
}

// packWA packs a decision's want/applied pair into the A scalar.
func packWA(want, applied int) int64 {
	return int64(uint64(uint32(want))<<32 | uint64(uint32(applied)))
}

// slot is one ring entry: eight relaxed atomic words, exactly one cache
// line. seq is the claim/validity word — zero while a writer is mid-store,
// the 1-based sequence once the entry is complete. Readers load seq,
// copy the payload, and re-check seq; a mismatch means the slot was being
// lapped and the copy is discarded. Individual fields are single words,
// so a race can never tear a value, only invalidate the slot.
type slot struct {
	seq atomic.Uint64
	at  atomic.Uint64 // math.Float64bits of the substrate timestamp
	kf  atomic.Uint64 // kind | flags<<8
	a   atomic.Uint64
	b   atomic.Uint64
	f1  atomic.Uint64
	f2  atomic.Uint64
	f3  atomic.Uint64
}

// PanicRecord holds the message and stack of one controller panic
// captured by the watchdog; EvPanic events index into the recorder's log.
type PanicRecord struct {
	// Msg is the recovered panic value rendered with fmt.Sprint.
	Msg string
	// Stack is the goroutine stack at recovery time.
	Stack string
}

// DefaultCapacity is the ring size NewRecorder falls back to when asked
// for a non-positive capacity: control-plane events arrive at controller
// tick rate (hundreds per second at most), so 4096 slots hold minutes of
// history in 256 KiB.
const DefaultCapacity = 4096

// Recorder is the flight recorder: a fixed-capacity lock-free ring of
// control-plane events. All Record methods are safe for concurrent use,
// cost a handful of relaxed atomic stores, allocate nothing, and are
// no-ops on a nil receiver — call sites wire a recorder with one field
// and pay one predictable branch when none is attached. Readers
// (Events, WriteText, WriteTrace) may run concurrently with writers;
// entries overwritten mid-read are skipped, never torn.
type Recorder struct {
	pos   atomic.Uint64
	_     [56]byte // keep the claim counter off the slots' cache lines
	mask  uint64
	slots []slot

	panicMu  sync.Mutex
	panicLog []PanicRecord
}

// NewRecorder builds a flight recorder holding the most recent capacity
// events (rounded up to a power of two; non-positive means
// DefaultCapacity).
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	n := 1
	for n < capacity {
		n <<= 1
	}
	return &Recorder{mask: uint64(n - 1), slots: make([]slot, n)}
}

// Cap returns the ring capacity in events.
func (r *Recorder) Cap() int {
	if r == nil {
		return 0
	}
	return len(r.slots)
}

// Total returns how many events were ever recorded (including any the
// ring has since overwritten).
func (r *Recorder) Total() uint64 {
	if r == nil {
		return 0
	}
	return r.pos.Load()
}

// Dropped returns how many events were overwritten by ring wrap.
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	if t, c := r.pos.Load(), uint64(len(r.slots)); t > c {
		return t - c
	}
	return 0
}

// record claims the next slot and stores one event. The seq word is
// zeroed first and published last, so a concurrent reader either sees
// the complete event or skips the slot.
func (r *Recorder) record(at float64, kind Kind, flags uint8, a int64, b uint64, f1, f2, f3 float64) {
	if r == nil {
		return
	}
	seq := r.pos.Add(1)
	s := &r.slots[(seq-1)&r.mask]
	s.seq.Store(0)
	s.at.Store(math.Float64bits(at))
	s.kf.Store(uint64(kind) | uint64(flags)<<8)
	s.a.Store(uint64(a))
	s.b.Store(b)
	s.f1.Store(math.Float64bits(f1))
	s.f2.Store(math.Float64bits(f2))
	s.f3.Store(math.Float64bits(f3))
	s.seq.Store(seq)
}

// RecordDecision records one elastic controller tick: the size law's
// want/applied pair, the packed placement plan (sched.PackPlacement; 0
// when no plan landed), the worst-queue occupancy fraction, the
// feedforward term, the modelled watts, and the resize/rebalance/safe
// flags. Zero allocations; no-op on a nil recorder.
func (r *Recorder) RecordDecision(at float64, want, applied int, plan uint64, occ, feedfwd, watts float64, resized, rebalanced, safe bool) {
	var flags uint8
	if resized {
		flags |= FlagResized
	}
	if rebalanced {
		flags |= FlagRebalanced
	}
	if safe {
		flags |= FlagSafeMode
	}
	r.record(at, EvDecision, flags, packWA(want, applied), plan, occ, feedfwd, watts)
}

// RecordPlacement records a substrate-applied placement swap: the new
// team total and the packed per-queue plan.
func (r *Recorder) RecordPlacement(at float64, total int, plan uint64) {
	r.record(at, EvPlacement, 0, int64(total), plan, 0, 0, 0)
}

// RecordExile records the health layer exiling thread id.
func (r *Recorder) RecordExile(at float64, thread int) {
	r.record(at, EvExile, 0, int64(thread), 0, 0, 0, 0)
}

// RecordRecover records a previously exiled thread's heartbeat moving
// again.
func (r *Recorder) RecordRecover(at float64, thread int) {
	r.record(at, EvRecover, 0, int64(thread), 0, 0, 0, 0)
}

// RecordSafeMode records a safe-mode edge: enter=true on the first
// all-stale tick, enter=false on the first tick with fresh signal; team
// is the size in effect at the edge.
func (r *Recorder) RecordSafeMode(at float64, enter bool, team int) {
	k := EvSafeExit
	if enter {
		k = EvSafeEnter
	}
	r.record(at, k, 0, int64(team), 0, 0, 0, 0)
}

// RecordDarkLoss records one dark-loss classification on queue q: drops
// drops excluded from the loss override because the ring read empty.
func (r *Recorder) RecordDarkLoss(at float64, queue int, drops uint64) {
	r.record(at, EvDarkLoss, 0, int64(queue), drops, 0, 0, 0)
}

// RecordFault records a fault-plane flag flip: kind is the faults.Kind
// ordinal, target the thread or queue it hit. AttachFaults wires an
// injector's whole event stream through this.
func (r *Recorder) RecordFault(at float64, kind, target int) {
	r.record(at, EvFault, 0, int64(target), uint64(kind), 0, 0, 0)
}

// RecordRateLimit records an actuation denied by the controller's
// token-bucket rate limiter.
func (r *Recorder) RecordRateLimit(at float64) {
	r.record(at, EvRateLimit, 0, 0, 0, 0, 0, 0)
}

// RecordPanic records a controller panic swallowed by the tick watchdog,
// capturing the rendered panic value and stack into the panic log (the
// ring event carries the log index). This path allocates — it runs once
// per panic, not on the event hot path.
func (r *Recorder) RecordPanic(at float64, msg, stack string) {
	if r == nil {
		return
	}
	r.panicMu.Lock()
	idx := len(r.panicLog)
	r.panicLog = append(r.panicLog, PanicRecord{Msg: msg, Stack: stack})
	r.panicMu.Unlock()
	r.record(at, EvPanic, 0, int64(idx), 0, 0, 0, 0)
}

// PanicLog returns a copy of the captured panic records, oldest first.
func (r *Recorder) PanicLog() []PanicRecord {
	if r == nil {
		return nil
	}
	r.panicMu.Lock()
	defer r.panicMu.Unlock()
	return append([]PanicRecord(nil), r.panicLog...)
}

// Events appends the recorder's surviving events, oldest first, to dst
// (reusing its backing array) and returns the result. Safe to call while
// writers are recording: slots overwritten mid-read are skipped, so the
// returned sequence numbers may have gaps under wrap pressure but every
// returned event is internally consistent.
func (r *Recorder) Events(dst []Event) []Event {
	dst = dst[:0]
	if r == nil {
		return dst
	}
	end := r.pos.Load()
	start := uint64(0)
	if c := uint64(len(r.slots)); end > c {
		start = end - c
	}
	for seq := start + 1; seq <= end; seq++ {
		s := &r.slots[(seq-1)&r.mask]
		if s.seq.Load() != seq {
			continue
		}
		kf := s.kf.Load()
		e := Event{
			Seq:   seq,
			At:    math.Float64frombits(s.at.Load()),
			Kind:  Kind(kf & 0xff),
			Flags: uint8(kf >> 8),
			A:     int64(s.a.Load()),
			B:     s.b.Load(),
			F1:    math.Float64frombits(s.f1.Load()),
			F2:    math.Float64frombits(s.f2.Load()),
			F3:    math.Float64frombits(s.f3.Load()),
		}
		if s.seq.Load() != seq {
			continue // lapped mid-read: the copy may mix two events
		}
		dst = append(dst, e)
	}
	return dst
}

// CountByKind folds the surviving events into a per-kind histogram —
// the decision-trace panels' summary input.
func (r *Recorder) CountByKind() map[Kind]int {
	out := make(map[Kind]int)
	for _, e := range r.Events(nil) {
		out[e.Kind]++
	}
	return out
}

// Reset discards every recorded event and the panic log. It must not
// race with writers — reset between runs (the experiment harness resets
// at the warm-up boundary while the engine is parked), never mid-flight.
func (r *Recorder) Reset() {
	if r == nil {
		return
	}
	for i := range r.slots {
		r.slots[i].seq.Store(0)
	}
	r.pos.Store(0)
	r.panicMu.Lock()
	r.panicLog = nil
	r.panicMu.Unlock()
}
