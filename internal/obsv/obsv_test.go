package obsv

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"metronome/internal/stats"
	"metronome/internal/telemetry"
)

// The ring keeps the newest capacity events in order, reports overwrites
// through Dropped, and survives capacity rounding.
func TestRecorderOrderAndWrap(t *testing.T) {
	r := NewRecorder(7) // rounds up to 8
	if r.Cap() != 8 {
		t.Fatalf("Cap() = %d, want 8", r.Cap())
	}
	for i := 0; i < 11; i++ {
		r.RecordExile(float64(i)*1e-3, i)
	}
	if r.Total() != 11 {
		t.Fatalf("Total() = %d, want 11", r.Total())
	}
	if r.Dropped() != 3 {
		t.Fatalf("Dropped() = %d, want 3", r.Dropped())
	}
	evs := r.Events(nil)
	if len(evs) != 8 {
		t.Fatalf("Events holds %d, want 8", len(evs))
	}
	for i, e := range evs {
		wantSeq := uint64(4 + i) // events 1..3 were lapped
		if e.Seq != wantSeq {
			t.Errorf("event %d: seq = %d, want %d", i, e.Seq, wantSeq)
		}
		if e.Kind != EvExile || e.Target() != int(wantSeq)-1 {
			t.Errorf("event %d: kind=%v target=%d, want exile of thread %d",
				i, e.Kind, e.Target(), wantSeq-1)
		}
	}
}

// Every Record helper round-trips through the slot encoding: the decode
// helpers recover exactly what was recorded.
func TestRecorderRoundTrip(t *testing.T) {
	r := NewRecorder(64)
	r.RecordDecision(0.125, 6, 4, 0x010203, 0.375, -1.5, 17.25, true, false, true)
	r.RecordPlacement(0.25, 5, 0x0302)
	r.RecordSafeMode(0.3, true, 7)
	r.RecordSafeMode(0.35, false, 3)
	r.RecordDarkLoss(0.4, 2, 1234)
	r.RecordFault(0.45, 3, 1)
	r.RecordRateLimit(0.5)
	r.RecordRecover(0.55, 9)
	r.RecordPanic(0.6, "boom", "stack\nframe")

	evs := r.Events(nil)
	if len(evs) != 9 {
		t.Fatalf("Events holds %d, want 9", len(evs))
	}
	d := evs[0]
	if d.Kind != EvDecision || d.At != 0.125 || d.Want() != 6 || d.Applied() != 4 ||
		d.Plan() != 0x010203 || d.F1 != 0.375 || d.F2 != -1.5 || d.F3 != 17.25 {
		t.Errorf("decision decoded as %+v", d)
	}
	if d.Flags != FlagResized|FlagSafeMode {
		t.Errorf("decision flags = %b, want resized|safe", d.Flags)
	}
	if p := evs[1]; p.Kind != EvPlacement || p.Applied() != 5 || p.Plan() != 0x0302 {
		t.Errorf("placement decoded as %+v", p)
	}
	if e := evs[2]; e.Kind != EvSafeEnter || e.Applied() != 7 {
		t.Errorf("safe-enter decoded as %+v", e)
	}
	if e := evs[3]; e.Kind != EvSafeExit || e.Applied() != 3 {
		t.Errorf("safe-exit decoded as %+v", e)
	}
	if e := evs[4]; e.Kind != EvDarkLoss || e.Target() != 2 || e.B != 1234 {
		t.Errorf("dark-loss decoded as %+v", e)
	}
	if e := evs[5]; e.Kind != EvFault || e.Target() != 1 || e.B != 3 {
		t.Errorf("fault decoded as %+v", e)
	}
	if e := evs[6]; e.Kind != EvRateLimit {
		t.Errorf("rate-limit decoded as %+v", e)
	}
	if e := evs[7]; e.Kind != EvRecover || e.Target() != 9 {
		t.Errorf("recover decoded as %+v", e)
	}
	if e := evs[8]; e.Kind != EvPanic || e.A != 0 {
		t.Errorf("panic decoded as %+v", e)
	}
	log := r.PanicLog()
	if len(log) != 1 || log[0].Msg != "boom" || log[0].Stack != "stack\nframe" {
		t.Errorf("panic log = %+v", log)
	}
	counts := r.CountByKind()
	if counts[EvDecision] != 1 || counts[EvSafeEnter] != 1 || counts[EvPanic] != 1 {
		t.Errorf("CountByKind = %v", counts)
	}
}

// Nil recorders are free no-ops at every entry point — the wiring contract
// the control planes rely on.
func TestRecorderNil(t *testing.T) {
	var r *Recorder
	r.RecordDecision(0, 1, 1, 0, 0, 0, 0, false, false, false)
	r.RecordRateLimit(0)
	r.RecordPanic(0, "x", "y")
	if r.Cap() != 0 || r.Total() != 0 || r.Dropped() != 0 {
		t.Error("nil recorder reports non-zero state")
	}
	if evs := r.Events(nil); len(evs) != 0 {
		t.Errorf("nil recorder returned %d events", len(evs))
	}
	if log := r.PanicLog(); log != nil {
		t.Errorf("nil recorder returned panic log %v", log)
	}
	r.Reset()
}

// Racing writers and a racing reader: the race detector checks the slot
// protocol, and every event the reader observes must be internally
// consistent (a writer tags each event so torn payloads are detectable).
func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder(256)
	const writers, each = 4, 2000
	stop := make(chan struct{})
	var readerDone sync.WaitGroup
	readerDone.Add(1)
	go func() {
		defer readerDone.Done()
		var scratch []Event
		for {
			select {
			case <-stop:
				return
			default:
			}
			scratch = r.Events(scratch)
			for _, e := range scratch {
				// Writers record exile(thread=w) at t = w+0.5: a torn slot
				// would decouple the two.
				if e.Kind != EvExile || e.At != float64(e.Target())+0.5 {
					t.Errorf("torn event: %+v", e)
					return
				}
			}
		}
	}()
	var writerDone sync.WaitGroup
	for w := 0; w < writers; w++ {
		writerDone.Add(1)
		go func(w int) {
			defer writerDone.Done()
			for i := 0; i < each; i++ {
				r.RecordExile(float64(w)+0.5, w)
			}
		}(w)
	}
	writerDone.Wait()
	close(stop)
	readerDone.Wait()
	if r.Total() != writers*each {
		t.Errorf("Total() = %d, want %d", r.Total(), writers*each)
	}
}

// Text and Chrome-trace dumps are deterministic for a quiescent recorder,
// and the trace is valid JSON with the expected event count.
func TestTraceDumpsDeterministic(t *testing.T) {
	r := NewRecorder(64)
	r.RecordDecision(0.001, 3, 3, 0x0102, 0.25, 0.0, 9.5, false, false, false)
	r.RecordPlacement(0.002, 4, 0x0202)
	r.RecordExile(0.003, 1)
	r.RecordFault(0.004, 2, 0)
	r.RecordPanic(0.005, `quoted "msg"`, "line1\nline2")

	var a, b strings.Builder
	if err := r.WriteText(&a); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("WriteText is not deterministic")
	}
	for _, want := range []string{"decision want=3 applied=3 plan=2/1", "placement total=4 plan=2/2", "exile thread=1", "panic[0] quoted"} {
		if !strings.Contains(a.String(), want) {
			t.Errorf("text dump missing %q:\n%s", want, a.String())
		}
	}

	var ta, tb strings.Builder
	if err := r.WriteTrace(&ta); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteTrace(&tb); err != nil {
		t.Fatal(err)
	}
	if ta.String() != tb.String() {
		t.Error("WriteTrace is not deterministic")
	}
	if !json.Valid([]byte(ta.String())) {
		t.Fatalf("trace is not valid JSON:\n%s", ta.String())
	}
	var trace struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			TS   float64 `json:"ts"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(ta.String()), &trace); err != nil {
		t.Fatal(err)
	}
	// 5 instants + 3 counters (decision: 2, placement: 1).
	if len(trace.TraceEvents) != 8 {
		t.Errorf("trace holds %d events, want 8", len(trace.TraceEvents))
	}
}

// promBus builds a bus with deterministic gauges and a latency spread
// covering several decades on queue 0.
func promBus() *telemetry.Bus {
	bus := telemetry.NewBus(2, 4)
	for q := 0; q < 2; q++ {
		bus.SetOccupancy(q, float64(10*(q+1)))
		bus.SetCapacity(q, 4096)
		bus.SetArrivalRate(q, 1e6*float64(q+1))
		bus.SetDrops(q, uint64(5*q))
		bus.SetRx(q, uint64(1000*(q+1)))
		bus.BumpPub(q)
	}
	for t := 0; t < 4; t++ {
		bus.SetHeartbeat(t, float64(t)*0.25)
		bus.SetThreadBusy(t, float64(t)*0.5)
	}
	// A deterministic multiplicative spread: latencies from ~1 us to ~5 ms.
	v := uint64(997)
	for i := 0; i < 5000; i++ {
		bus.RecordLatency(0, 1000+v%5_000_000)
		v = v*6364136223846793005 + 1442695040888963407
	}
	bus.RecordLatency(1, 42_000)
	return bus
}

// The exposition is parseable, scalar gauges round-trip, and quantiles
// recomputed from the scraped histogram match the in-process fold
// bit-for-bit — the ISSUE's exactness gate.
func TestPromExpositionExactQuantiles(t *testing.T) {
	bus := promBus()
	rec := NewRecorder(64)
	rec.RecordDecision(0.01, 3, 2, 0x0101, 0.125, 0, 11.0, true, false, false)
	m := NewMetrics(ExportOptions{Bus: bus, Recorder: rec, TeamSize: func() int { return 2 }})

	srv := httptest.NewServer(m)
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q", ct)
	}
	scrape, err := ParseExposition(resp.Body)
	if err != nil {
		t.Fatal(err)
	}

	if v, ok := scrape.Value(`metronome_queue_occupancy{queue="1"}`); !ok || v != 20 {
		t.Errorf("occupancy{1} = %v, %v", v, ok)
	}
	if v, ok := scrape.Value("metronome_team_size"); !ok || v != 2 {
		t.Errorf("team_size = %v, %v", v, ok)
	}
	if v, ok := scrape.Value("metronome_controller_want"); !ok || v != 3 {
		t.Errorf("controller_want = %v, %v", v, ok)
	}
	if v, ok := scrape.Value(`metronome_events_total{kind="decision"}`); !ok || v != 1 {
		t.Errorf(`events_total{decision} = %v, %v`, v, ok)
	}

	for q := 0; q < 2; q++ {
		key := fmt.Sprintf("metronome_queue_latency_seconds{queue=%q}", fmt.Sprint(q))
		h := scrape.Histogram(key)
		if h == nil {
			t.Fatalf("scrape lacks histogram %s", key)
		}
		var fold stats.LogHistogram
		bus.SampleLatency(q, &fold)
		if h.Count() != fold.N() {
			t.Errorf("queue %d: scraped count %d, fold %d", q, h.Count(), fold.N())
		}
		for _, quant := range []float64{0, 0.5, 0.9, 0.99, 0.999, 0.9999, 1} {
			if got, want := h.Quantile(quant), fold.Quantile(quant); got != want {
				t.Errorf("queue %d: scraped p%g = %d ns, fold = %d ns", q, quant*100, got, want)
			}
		}
	}
}

// Two scrapes of a quiescent deployment are byte-identical (fixed emission
// order), and the +Inf bucket always matches _count.
func TestPromExpositionStable(t *testing.T) {
	m := NewMetrics(ExportOptions{Bus: promBus()})
	var a, b strings.Builder
	if err := m.WriteExposition(&a); err != nil {
		t.Fatal(err)
	}
	if err := m.WriteExposition(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("quiescent scrapes differ")
	}
	if !strings.Contains(a.String(), `le="+Inf"`) {
		t.Error("exposition lacks the +Inf bucket")
	}
}

// PublishExpvar is idempotent and the published func renders without
// panicking.
func TestPublishExpvarIdempotent(t *testing.T) {
	m := NewMetrics(ExportOptions{Bus: promBus(), TeamSize: func() int { return 3 }})
	m.PublishExpvar("metronome-test")
	m.PublishExpvar("metronome-test") // second publish must not panic
	v := expvar.Get("metronome-test")
	if v == nil {
		t.Fatal("expvar.Get returned nil after publish")
	}
	if s := v.String(); !strings.Contains(s, "team_size") {
		t.Errorf("expvar render lacks team_size: %s", s)
	}
}

// The recorder's record path allocates nothing — the benchgate asserts
// this in CI; the test catches it everywhere else.
func TestRecordAllocFree(t *testing.T) {
	r := NewRecorder(1024)
	allocs := testing.AllocsPerRun(1000, func() {
		r.RecordDecision(0.5, 4, 4, 0x0202, 0.3, 0.1, 12, false, false, false)
	})
	if allocs != 0 {
		t.Errorf("RecordDecision allocates %v per call, want 0", allocs)
	}
}

// BenchmarkObsvRecord is the benchgate's 0 allocs/event subject: one
// decision event per iteration through the full slot protocol.
func BenchmarkObsvRecord(b *testing.B) {
	r := NewRecorder(4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.RecordDecision(float64(i)*1e-4, 4, 4, 0x0202, 0.3, 0.1, 12, false, false, false)
	}
}

// BenchmarkPromExposition prices one full scrape of a 2-queue bus with a
// populated latency histogram.
func BenchmarkPromExposition(b *testing.B) {
	m := NewMetrics(ExportOptions{Bus: promBus(), TeamSize: func() int { return 4 }})
	var sink countingWriter
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink.n = 0
		if err := m.WriteExposition(&sink); err != nil {
			b.Fatal(err)
		}
	}
}

// countingWriter discards its input, counting bytes.
type countingWriter struct{ n int }

func (w *countingWriter) Write(p []byte) (int, error) {
	w.n += len(p)
	return len(p), nil
}
