package obsv

import (
	"io"
	"strconv"

	"metronome/internal/faults"
)

// Trace serialisation. Both writers snapshot the ring once and render
// every surviving event oldest-first with fixed field order and
// shortest-round-trip float formatting, so a recording rendered twice —
// or produced by the same seeded simulation at any experiment-harness
// parallelism — is byte-identical.

// appendAt renders a substrate timestamp with fixed nanosecond precision
// (sortable, deterministic, no exponent form).
func appendAt(dst []byte, at float64) []byte {
	return strconv.AppendFloat(dst, at, 'f', 9, 64)
}

// appendF renders a gauge with the shortest representation that
// round-trips — deterministic across runs and platforms.
func appendF(dst []byte, v float64) []byte {
	return strconv.AppendFloat(dst, v, 'g', -1, 64)
}

// appendPlan renders a packed placement plan as "2/1/1" (byte q of the
// word is queue q's member count; normalized plans hold >= 1 member per
// queue, so a zero byte terminates).
func appendPlan(dst []byte, plan uint64) []byte {
	for first := true; plan != 0; plan >>= 8 {
		if !first {
			dst = append(dst, '/')
		}
		first = false
		dst = strconv.AppendUint(dst, plan&0xff, 10)
	}
	return dst
}

// appendFlags renders a decision's flag bits as "resized|rebalanced|safe"
// ("-" when none are set).
func appendFlags(dst []byte, flags uint8) []byte {
	if flags == 0 {
		return append(dst, '-')
	}
	sep := false
	put := func(s string) {
		if sep {
			dst = append(dst, '|')
		}
		sep = true
		dst = append(dst, s...)
	}
	if flags&FlagResized != 0 {
		put("resized")
	}
	if flags&FlagRebalanced != 0 {
		put("rebalanced")
	}
	if flags&FlagSafeMode != 0 {
		put("safe")
	}
	return dst
}

// AppendText renders the event as one key=value text line (no trailing
// newline), appending to dst — the WriteText building block, exported so
// the decision-trace panels and metrotop can render single events.
func (e Event) AppendText(dst []byte) []byte {
	dst = append(dst, "t="...)
	dst = appendAt(dst, e.At)
	dst = append(dst, ' ')
	dst = append(dst, e.Kind.String()...)
	switch e.Kind {
	case EvDecision:
		dst = append(dst, " want="...)
		dst = strconv.AppendInt(dst, int64(e.Want()), 10)
		dst = append(dst, " applied="...)
		dst = strconv.AppendInt(dst, int64(e.Applied()), 10)
		if e.B != 0 {
			dst = append(dst, " plan="...)
			dst = appendPlan(dst, e.B)
		}
		dst = append(dst, " occ="...)
		dst = appendF(dst, e.F1)
		dst = append(dst, " ff="...)
		dst = appendF(dst, e.F2)
		dst = append(dst, " watts="...)
		dst = appendF(dst, e.F3)
		dst = append(dst, " flags="...)
		dst = appendFlags(dst, e.Flags)
	case EvPlacement:
		dst = append(dst, " total="...)
		dst = strconv.AppendInt(dst, e.A, 10)
		if e.B != 0 {
			dst = append(dst, " plan="...)
			dst = appendPlan(dst, e.B)
		}
	case EvExile, EvRecover:
		dst = append(dst, " thread="...)
		dst = strconv.AppendInt(dst, e.A, 10)
	case EvSafeEnter, EvSafeExit:
		dst = append(dst, " team="...)
		dst = strconv.AppendInt(dst, e.A, 10)
	case EvDarkLoss:
		dst = append(dst, " queue="...)
		dst = strconv.AppendInt(dst, e.A, 10)
		dst = append(dst, " drops="...)
		dst = strconv.AppendUint(dst, e.B, 10)
	case EvFault:
		dst = append(dst, " kind="...)
		dst = append(dst, faults.Kind(e.B).String()...)
		dst = append(dst, " target="...)
		dst = strconv.AppendInt(dst, e.A, 10)
	case EvPanic:
		dst = append(dst, " log="...)
		dst = strconv.AppendInt(dst, e.A, 10)
	}
	return dst
}

// String renders the event as its text-trace line (convenience for test
// output and panels; allocates, so not for the record path).
func (e Event) String() string { return string(e.AppendText(nil)) }

// WriteText dumps the recording as line-per-event key=value text:
// sequence number, substrate timestamp, kind, then kind-specific fields.
// Panic log entries follow the events. The output is deterministic for a
// quiescent recorder.
func (r *Recorder) WriteText(w io.Writer) error {
	var buf []byte
	for _, e := range r.Events(nil) {
		buf = buf[:0]
		buf = append(buf, '[')
		buf = strconv.AppendUint(buf, e.Seq, 10)
		buf = append(buf, "] "...)
		buf = e.AppendText(buf)
		buf = append(buf, '\n')
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	for i, p := range r.PanicLog() {
		buf = buf[:0]
		buf = append(buf, "panic["...)
		buf = strconv.AppendInt(buf, int64(i), 10)
		buf = append(buf, "] "...)
		buf = append(buf, p.Msg...)
		buf = append(buf, '\n')
		buf = append(buf, p.Stack...)
		if len(p.Stack) > 0 && p.Stack[len(p.Stack)-1] != '\n' {
			buf = append(buf, '\n')
		}
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// appendJSONString appends s as a JSON string literal. strconv.Quote is
// not used because it emits \x escapes, which JSON does not allow.
func appendJSONString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	for _, r := range s {
		switch {
		case r == '"':
			dst = append(dst, '\\', '"')
		case r == '\\':
			dst = append(dst, '\\', '\\')
		case r == '\n':
			dst = append(dst, '\\', 'n')
		case r == '\t':
			dst = append(dst, '\\', 't')
		case r < 0x20:
			const hex = "0123456789abcdef"
			dst = append(dst, '\\', 'u', '0', '0', hex[r>>4], hex[r&0xf])
		default:
			dst = append(dst, string(r)...)
		}
	}
	return append(dst, '"')
}

// appendTraceTS renders a substrate timestamp as Chrome trace
// microseconds with fixed sub-microsecond precision.
func appendTraceTS(dst []byte, at float64) []byte {
	return strconv.AppendFloat(dst, at*1e6, 'f', 3, 64)
}

// WriteTrace dumps the recording as Chrome trace-event JSON (loadable in
// Perfetto and chrome://tracing): every event becomes a global instant
// event on the "control" track, and decisions/placements additionally
// emit "team size" and "worst occupancy" counter tracks. Deterministic
// for a quiescent recorder — the harness byte-compares traces across
// -parallel settings.
func (r *Recorder) WriteTrace(w io.Writer) error {
	events := r.Events(nil)
	panics := r.PanicLog()
	var buf []byte
	buf = append(buf, `{"displayTimeUnit":"ms","traceEvents":[`...)
	first := true
	emit := func() error {
		_, err := w.Write(buf)
		buf = buf[:0]
		return err
	}
	for _, e := range events {
		if !first {
			buf = append(buf, ',')
		}
		first = false
		buf = append(buf, "\n"...)
		buf = append(buf, `{"name":`...)
		buf = appendJSONString(buf, e.Kind.String())
		buf = append(buf, `,"cat":"obsv","ph":"i","s":"g","pid":1,"tid":0,"ts":`...)
		buf = appendTraceTS(buf, e.At)
		buf = append(buf, `,"args":{"seq":`...)
		buf = strconv.AppendUint(buf, e.Seq, 10)
		switch e.Kind {
		case EvDecision:
			buf = append(buf, `,"want":`...)
			buf = strconv.AppendInt(buf, int64(e.Want()), 10)
			buf = append(buf, `,"applied":`...)
			buf = strconv.AppendInt(buf, int64(e.Applied()), 10)
			buf = append(buf, `,"occ":`...)
			buf = appendF(buf, e.F1)
			buf = append(buf, `,"ff":`...)
			buf = appendF(buf, e.F2)
			buf = append(buf, `,"watts":`...)
			buf = appendF(buf, e.F3)
			if e.B != 0 {
				buf = append(buf, `,"plan":`...)
				buf = appendJSONString(buf, string(appendPlan(nil, e.B)))
			}
			buf = append(buf, `,"flags":`...)
			buf = appendJSONString(buf, string(appendFlags(nil, e.Flags)))
		case EvPlacement:
			buf = append(buf, `,"total":`...)
			buf = strconv.AppendInt(buf, e.A, 10)
			if e.B != 0 {
				buf = append(buf, `,"plan":`...)
				buf = appendJSONString(buf, string(appendPlan(nil, e.B)))
			}
		case EvExile, EvRecover:
			buf = append(buf, `,"thread":`...)
			buf = strconv.AppendInt(buf, e.A, 10)
		case EvSafeEnter, EvSafeExit:
			buf = append(buf, `,"team":`...)
			buf = strconv.AppendInt(buf, e.A, 10)
		case EvDarkLoss:
			buf = append(buf, `,"queue":`...)
			buf = strconv.AppendInt(buf, e.A, 10)
			buf = append(buf, `,"drops":`...)
			buf = strconv.AppendUint(buf, e.B, 10)
		case EvFault:
			buf = append(buf, `,"kind":`...)
			buf = appendJSONString(buf, faults.Kind(e.B).String())
			buf = append(buf, `,"target":`...)
			buf = strconv.AppendInt(buf, e.A, 10)
		case EvPanic:
			if i := int(e.A); i >= 0 && i < len(panics) {
				buf = append(buf, `,"msg":`...)
				buf = appendJSONString(buf, panics[i].Msg)
			}
		}
		buf = append(buf, "}}"...)
		// Counter tracks: team size after every actuation-bearing event,
		// worst occupancy per decision.
		switch e.Kind {
		case EvDecision:
			buf = append(buf, `,
{"name":"team size","ph":"C","pid":1,"ts":`...)
			buf = appendTraceTS(buf, e.At)
			buf = append(buf, `,"args":{"members":`...)
			buf = strconv.AppendInt(buf, int64(e.Applied()), 10)
			buf = append(buf, `}},
{"name":"worst occupancy","ph":"C","pid":1,"ts":`...)
			buf = appendTraceTS(buf, e.At)
			buf = append(buf, `,"args":{"fraction":`...)
			buf = appendF(buf, e.F1)
			buf = append(buf, "}}"...)
		case EvPlacement:
			buf = append(buf, `,
{"name":"team size","ph":"C","pid":1,"ts":`...)
			buf = appendTraceTS(buf, e.At)
			buf = append(buf, `,"args":{"members":`...)
			buf = strconv.AppendInt(buf, e.A, 10)
			buf = append(buf, "}}"...)
		}
		if err := emit(); err != nil {
			return err
		}
	}
	buf = append(buf, "\n]}\n"...)
	return emit()
}
