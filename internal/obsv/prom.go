package obsv

import (
	"expvar"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"

	"metronome/internal/stats"
	"metronome/internal/telemetry"
)

// Prometheus text-format exposition over the telemetry bus, stdlib only.
// The per-queue latency histograms are folded straight from the bus's
// log-scale bucket layout — every occupied bucket becomes one cumulative
// `le` line whose edge is the exact stats.LogBucketUpper in seconds, no
// resampling — so quantiles recomputed from a scrape with the same
// conservative upper-edge rule match Bus.SampleLatency + Quantile
// exactly (test-enforced).

// ExportOptions wires a Metrics exporter to its sources.
type ExportOptions struct {
	// Bus is the telemetry bus to export (required).
	Bus *telemetry.Bus
	// Recorder, when set, contributes controller/health series: per-kind
	// event totals, the latest decision's team size/want/watts/occupancy,
	// and the safe-mode flag.
	Recorder *Recorder
	// TeamSize, when set, serves the live team size gauge (e.g.
	// Runner.TeamSize — atomic-safe). Without it the exporter falls back
	// to the recorder's latest decision, or omits the series.
	TeamSize func() int
	// Namespace prefixes every metric name (default "metronome").
	Namespace string
}

// Metrics is an http.Handler (and expvar source) serving the bus as
// Prometheus text-format exposition. One scrape takes one bus Sample plus
// one histogram fold per queue into handler-owned scratch buffers under a
// mutex — scrapes are concurrency-safe and allocation-light, and never
// block the publishing hot paths (the bus is lock-free).
type Metrics struct {
	opt ExportOptions

	mu     sync.Mutex
	snap   telemetry.Snapshot
	hist   stats.LogHistogram
	events []Event
	buf    []byte
}

// NewMetrics builds a Metrics exporter; it panics if opt.Bus is nil.
func NewMetrics(opt ExportOptions) *Metrics {
	if opt.Bus == nil {
		panic("obsv: NewMetrics requires a Bus")
	}
	if opt.Namespace == "" {
		opt.Namespace = "metronome"
	}
	return &Metrics{opt: opt}
}

// ServeHTTP serves one exposition scrape.
func (m *Metrics) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = m.WriteExposition(w)
}

// header emits the HELP/TYPE preamble for one metric.
func (m *Metrics) header(name, help, typ string) {
	m.buf = append(m.buf, "# HELP "...)
	m.buf = append(m.buf, m.opt.Namespace...)
	m.buf = append(m.buf, '_')
	m.buf = append(m.buf, name...)
	m.buf = append(m.buf, ' ')
	m.buf = append(m.buf, help...)
	m.buf = append(m.buf, "\n# TYPE "...)
	m.buf = append(m.buf, m.opt.Namespace...)
	m.buf = append(m.buf, '_')
	m.buf = append(m.buf, name...)
	m.buf = append(m.buf, ' ')
	m.buf = append(m.buf, typ...)
	m.buf = append(m.buf, '\n')
}

// sample emits one sample line; label is rendered as `{key="idx"}` when
// key is non-empty.
func (m *Metrics) sample(name, key string, idx int, v float64) {
	m.buf = append(m.buf, m.opt.Namespace...)
	m.buf = append(m.buf, '_')
	m.buf = append(m.buf, name...)
	if key != "" {
		m.buf = append(m.buf, '{')
		m.buf = append(m.buf, key...)
		m.buf = append(m.buf, "=\""...)
		m.buf = strconv.AppendInt(m.buf, int64(idx), 10)
		m.buf = append(m.buf, "\"}"...)
	}
	m.buf = append(m.buf, ' ')
	m.buf = appendF(m.buf, v)
	m.buf = append(m.buf, '\n')
}

// perQueueF emits one gauge family with a line per queue.
func (m *Metrics) perQueueF(name, help, typ string, vals []float64) {
	m.header(name, help, typ)
	for q, v := range vals {
		m.sample(name, "queue", q, v)
	}
}

// perQueueU emits one counter family with a line per queue.
func (m *Metrics) perQueueU(name, help, typ string, vals []uint64) {
	m.header(name, help, typ)
	for q, v := range vals {
		m.sample(name, "queue", q, float64(v))
	}
}

// WriteExposition renders one complete scrape of the bus (and recorder,
// when wired) as Prometheus text format. Output order is fixed, so two
// scrapes of a quiescent deployment are byte-identical.
func (m *Metrics) WriteExposition(w io.Writer) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.opt.Bus.Sample(&m.snap)
	m.buf = m.buf[:0]

	m.perQueueF("queue_occupancy", "Last-published wake-time ring occupancy (packets).", "gauge", m.snap.Occ)
	m.perQueueF("queue_occupancy_avg", "Time-averaged ring occupancy (packets).", "gauge", m.snap.OccAvg)
	m.perQueueF("queue_capacity", "Ring capacity (packets).", "gauge", m.snap.Cap)
	m.perQueueF("queue_rho", "Attendant utilization estimate.", "gauge", m.snap.Rho)
	m.perQueueF("queue_occupancy_slope", "Occupancy-fraction trend per second (feedforward input).", "gauge", m.snap.OccSlope)
	m.perQueueF("queue_arrival_rate_pps", "Measured arrival rate (packets/second).", "gauge", m.snap.Rate)
	m.perQueueU("queue_drops_total", "Dropped packets (producer-side ring-full and pool-empty).", "counter", m.snap.Drops)
	m.perQueueU("queue_rx_total", "Retrieved packets.", "counter", m.snap.Rx)
	m.perQueueU("queue_tries_total", "Lock attempts on the queue.", "counter", m.snap.Tries)
	m.perQueueU("queue_busy_tries_total", "Lock attempts that lost the race.", "counter", m.snap.BusyTr)
	m.perQueueU("queue_pub_seq", "Telemetry publication sequence (staleness detector input).", "counter", m.snap.PubSeq)

	m.header("thread_busy_seconds_total", "Cumulative on-CPU seconds per team member.", "counter")
	for t, v := range m.snap.ThreadBusy {
		m.sample("thread_busy_seconds_total", "thread", t, v)
	}
	m.header("thread_heartbeat_seconds", "Last telemetry publish per member, in substrate seconds (liveness signal).", "gauge")
	for t, v := range m.snap.Heartbeat {
		m.sample("thread_heartbeat_seconds", "thread", t, v)
	}

	// Team/controller state: prefer the live source, fall back to the
	// recorder's latest decision.
	last, haveLast := m.lastDecision()
	if m.opt.TeamSize != nil {
		m.header("team_size", "Active retrieval team members.", "gauge")
		m.sample("team_size", "", 0, float64(m.opt.TeamSize()))
	} else if haveLast {
		m.header("team_size", "Active retrieval team members.", "gauge")
		m.sample("team_size", "", 0, float64(last.Applied()))
	}
	if haveLast {
		m.header("controller_want", "Size-law target at the last decision.", "gauge")
		m.sample("controller_want", "", 0, float64(last.Want()))
		m.header("controller_occupancy", "Worst-queue occupancy fraction at the last decision.", "gauge")
		m.sample("controller_occupancy", "", 0, last.F1)
		m.header("controller_watts", "Modelled team watts at the last decision.", "gauge")
		m.sample("controller_watts", "", 0, last.F3)
		m.header("safe_mode", "1 while the controller is in the all-stale safe mode.", "gauge")
		safe := 0.0
		if last.Flags&FlagSafeMode != 0 {
			safe = 1
		}
		m.sample("safe_mode", "", 0, safe)
	}
	if r := m.opt.Recorder; r != nil {
		m.header("events_total", "Flight-recorder events by kind (surviving ring entries).", "counter")
		counts := [numKinds]int{}
		for _, e := range m.events {
			if int(e.Kind) < len(counts) {
				counts[e.Kind]++
			}
		}
		for k := Kind(0); k < numKinds; k++ {
			m.buf = append(m.buf, m.opt.Namespace...)
			m.buf = append(m.buf, "_events_total{kind=\""...)
			m.buf = append(m.buf, k.String()...)
			m.buf = append(m.buf, "\"} "...)
			m.buf = strconv.AppendInt(m.buf, int64(counts[k]), 10)
			m.buf = append(m.buf, '\n')
		}
	}

	// Per-queue latency histograms: exact fold from the bus bucket
	// layout. Every occupied bucket emits one cumulative line whose le is
	// the bucket's exact upper edge in seconds; _sum is the upper-edge
	// estimate (the layout counts, it does not sum).
	m.header("queue_latency_seconds", "Per-packet retrieval latency, folded exactly from the bus's log-scale buckets; _sum is the conservative upper-edge estimate.", "histogram")
	name := m.opt.Namespace + "_queue_latency_seconds"
	for q := 0; q < m.opt.Bus.Queues(); q++ {
		m.hist.Reset()
		m.opt.Bus.SampleLatency(q, &m.hist)
		var cum, sumNs uint64
		for i := 0; i < stats.LogHistBuckets; i++ {
			c := m.hist.CountAt(i)
			if c == 0 {
				continue
			}
			cum += c
			upper := stats.LogBucketUpper(i)
			sumNs += c * upper
			m.buf = append(m.buf, name...)
			m.buf = append(m.buf, "_bucket{queue=\""...)
			m.buf = strconv.AppendInt(m.buf, int64(q), 10)
			m.buf = append(m.buf, "\",le=\""...)
			m.buf = appendF(m.buf, float64(upper)/1e9)
			m.buf = append(m.buf, "\"} "...)
			m.buf = strconv.AppendUint(m.buf, cum, 10)
			m.buf = append(m.buf, '\n')
		}
		m.buf = append(m.buf, name...)
		m.buf = append(m.buf, "_bucket{queue=\""...)
		m.buf = strconv.AppendInt(m.buf, int64(q), 10)
		m.buf = append(m.buf, "\",le=\"+Inf\"} "...)
		m.buf = strconv.AppendUint(m.buf, cum, 10)
		m.buf = append(m.buf, '\n')
		m.buf = append(m.buf, name...)
		m.buf = append(m.buf, "_sum{queue=\""...)
		m.buf = strconv.AppendInt(m.buf, int64(q), 10)
		m.buf = append(m.buf, "\"} "...)
		m.buf = appendF(m.buf, float64(sumNs)/1e9)
		m.buf = append(m.buf, '\n')
		m.buf = append(m.buf, name...)
		m.buf = append(m.buf, "_count{queue=\""...)
		m.buf = strconv.AppendInt(m.buf, int64(q), 10)
		m.buf = append(m.buf, "\"} "...)
		m.buf = strconv.AppendUint(m.buf, cum, 10)
		m.buf = append(m.buf, '\n')
	}

	_, err := w.Write(m.buf)
	return err
}

// lastDecision scans the recorder for the newest decision event, reusing
// the handler's event scratch (caller holds m.mu).
func (m *Metrics) lastDecision() (Event, bool) {
	if m.opt.Recorder == nil {
		return Event{}, false
	}
	m.events = m.opt.Recorder.Events(m.events)
	for i := len(m.events) - 1; i >= 0; i-- {
		if m.events[i].Kind == EvDecision {
			return m.events[i], true
		}
	}
	return Event{}, false
}

var (
	expvarMu        sync.Mutex
	expvarPublished = map[string]bool{}
)

// PublishExpvar publishes the exporter under name on the process-wide
// expvar registry as a func variable rendering one scrape's scalar
// series (histograms stay on the Prometheus endpoint; expvar is the
// quick-look debug surface next to expvar's own memstats). Publishing
// the same name twice is a no-op — expvar itself panics on duplicates,
// so re-wiring across test runs stays safe.
func (m *Metrics) PublishExpvar(name string) {
	expvarMu.Lock()
	defer expvarMu.Unlock()
	if expvarPublished[name] || expvar.Get(name) != nil {
		return
	}
	expvarPublished[name] = true
	expvar.Publish(name, expvar.Func(func() any {
		out := map[string]any{}
		var snap telemetry.Snapshot
		m.opt.Bus.Sample(&snap)
		for q := range snap.Occ {
			key := "queue" + strconv.Itoa(q)
			out[key] = map[string]any{
				"occupancy": snap.Occ[q],
				"capacity":  snap.Cap[q],
				"rate_pps":  snap.Rate[q],
				"drops":     snap.Drops[q],
				"rx":        snap.Rx[q],
			}
		}
		if m.opt.TeamSize != nil {
			out["team_size"] = m.opt.TeamSize()
		}
		if r := m.opt.Recorder; r != nil {
			out["events_total"] = r.Total()
			out["events_dropped"] = r.Dropped()
		}
		return out
	}))
}

// HistSeries is one parsed histogram series from a scrape: exact bucket
// upper edges (nanoseconds) and cumulative counts, +Inf excluded.
type HistSeries struct {
	// UpperNs holds each occupied bucket's exact upper edge in
	// nanoseconds (recovered from the le label; the exposition emits
	// edges in seconds with round-trip formatting).
	UpperNs []uint64
	// Cum holds the cumulative count at each edge.
	Cum []uint64
}

// Count returns the series' total observation count.
func (h *HistSeries) Count() uint64 {
	if h == nil || len(h.Cum) == 0 {
		return 0
	}
	return h.Cum[len(h.Cum)-1]
}

// Quantile recomputes a quantile from the scraped buckets with exactly
// stats.LogHistogram.Quantile's conservative upper-edge rule — the first
// edge whose cumulative count reaches rank ceil(q*N) — so a quantile
// computed from a scrape equals the in-process fold bit-for-bit.
func (h *HistSeries) Quantile(q float64) uint64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(n)))
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	for i, c := range h.Cum {
		if c >= rank {
			return h.UpperNs[i]
		}
	}
	return h.UpperNs[len(h.UpperNs)-1]
}

// Scrape is a parsed Prometheus text exposition: scalar samples keyed by
// their full series name (labels included, as emitted) plus the folded
// histogram series.
type Scrape struct {
	// Values maps canonical series keys — name{k="v",...} with le
	// stripped and labels sorted — to sample values.
	Values map[string]float64
	// Hists maps canonical series keys to folded histogram buckets.
	Hists map[string]*HistSeries
}

// Value looks up a scalar sample by its canonical series key, e.g.
// `metronome_queue_occupancy{queue="0"}` or `metronome_team_size`.
func (s *Scrape) Value(series string) (float64, bool) {
	v, ok := s.Values[series]
	return v, ok
}

// Histogram looks up a folded histogram by its base series key, e.g.
// `metronome_queue_latency_seconds{queue="0"}`; nil when absent.
func (s *Scrape) Histogram(series string) *HistSeries {
	return s.Hists[series]
}

// ParseExposition parses Prometheus text format (the subset this package
// emits: HELP/TYPE comments, scalar samples with optional labels,
// histogram bucket series) into a Scrape. Bucket series fold back into
// HistSeries with exact nanosecond edges; the metrotop operator view and
// the CI smoke test both consume this.
func ParseExposition(r io.Reader) (*Scrape, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	s := &Scrape{Values: map[string]float64{}, Hists: map[string]*HistSeries{}}
	for _, line := range strings.Split(string(raw), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			return nil, fmt.Errorf("obsv: unparseable exposition line %q", line)
		}
		series, valStr := line[:sp], line[sp+1:]
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			return nil, fmt.Errorf("obsv: bad sample value in %q: %v", line, err)
		}
		name, labels, err := splitSeries(series)
		if err != nil {
			return nil, err
		}
		if le, isBucket := labels["le"]; isBucket && strings.HasSuffix(name, "_bucket") {
			if le == "+Inf" {
				continue // the +Inf bucket repeats _count
			}
			edge, err := strconv.ParseFloat(le, 64)
			if err != nil {
				return nil, fmt.Errorf("obsv: bad le %q in %q: %v", le, line, err)
			}
			delete(labels, "le")
			key := canonicalKey(strings.TrimSuffix(name, "_bucket"), labels)
			h := s.Hists[key]
			if h == nil {
				h = &HistSeries{}
				s.Hists[key] = h
			}
			h.UpperNs = append(h.UpperNs, uint64(edge*1e9+0.5))
			h.Cum = append(h.Cum, uint64(val))
			continue
		}
		s.Values[canonicalKey(name, labels)] = val
	}
	// Edges arrive in emission order (ascending), but sort defensively so
	// Quantile's cumulative walk is well-defined on any producer.
	for _, h := range s.Hists {
		sort.Sort(histByEdge{h})
	}
	return s, nil
}

// splitSeries splits `name{k="v",...}` into its name and label map.
func splitSeries(series string) (string, map[string]string, error) {
	brace := strings.IndexByte(series, '{')
	if brace < 0 {
		return series, map[string]string{}, nil
	}
	if !strings.HasSuffix(series, "}") {
		return "", nil, fmt.Errorf("obsv: unterminated label set in %q", series)
	}
	name := series[:brace]
	labels := map[string]string{}
	body := series[brace+1 : len(series)-1]
	for _, part := range strings.Split(body, ",") {
		if part == "" {
			continue
		}
		eq := strings.IndexByte(part, '=')
		if eq < 0 {
			return "", nil, fmt.Errorf("obsv: bad label %q in %q", part, series)
		}
		k := strings.TrimSpace(part[:eq])
		v := strings.Trim(strings.TrimSpace(part[eq+1:]), `"`)
		labels[k] = v
	}
	return name, labels, nil
}

// canonicalKey rebuilds a series key with labels sorted, so lookups are
// stable regardless of producer label order.
func canonicalKey(name string, labels map[string]string) string {
	if len(labels) == 0 {
		return name
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, labels[k])
	}
	b.WriteByte('}')
	return b.String()
}

// histByEdge sorts a HistSeries' parallel slices by upper edge.
type histByEdge struct{ h *HistSeries }

// Len reports the bucket count (sort.Interface).
func (s histByEdge) Len() int { return len(s.h.UpperNs) }

// Less orders buckets by ascending upper edge (sort.Interface).
func (s histByEdge) Less(i, j int) bool { return s.h.UpperNs[i] < s.h.UpperNs[j] }

// Swap exchanges two buckets (sort.Interface).
func (s histByEdge) Swap(i, j int) {
	s.h.UpperNs[i], s.h.UpperNs[j] = s.h.UpperNs[j], s.h.UpperNs[i]
	s.h.Cum[i], s.h.Cum[j] = s.h.Cum[j], s.h.Cum[i]
}
