package power

import (
	"math"
	"testing"
	"testing/quick"

	"metronome/internal/xrand"
)

func cfg() Config { return DefaultConfig() }

func TestGovernorString(t *testing.T) {
	if Performance.String() != "performance" || Ondemand.String() != "ondemand" {
		t.Error("governor names")
	}
}

func TestPerformanceAlwaysFMax(t *testing.T) {
	c := cfg()
	for _, u := range []float64{0, 0.2, 0.8, 1} {
		if got := c.SteadyFreq(Performance, u); got != c.FMax {
			t.Errorf("performance freq at util %v = %v", u, got)
		}
	}
}

func TestOndemandFixedPoint(t *testing.T) {
	c := cfg()
	// Fully busy (a static poller): pegged at FMax.
	if got := c.SteadyFreq(Ondemand, 1); got != c.FMax {
		t.Errorf("busy core freq = %v", got)
	}
	// Above threshold: FMax.
	if got := c.SteadyFreq(Ondemand, 0.85); got != c.FMax {
		t.Errorf("0.85 util freq = %v", got)
	}
	// Idle: FMin.
	if got := c.SteadyFreq(Ondemand, 0); got != c.FMin {
		t.Errorf("idle freq = %v", got)
	}
	// Moderate duty cycle settles below FMax but above FMin.
	f := c.SteadyFreq(Ondemand, 0.4)
	if f <= c.FMin || f >= c.FMax {
		t.Errorf("0.4 util freq = %v", f)
	}
	// At the fixed point, utilisation is pushed to the threshold.
	u := c.UtilAt(0.4, f)
	if math.Abs(u-c.UpThreshold) > 1e-9 {
		t.Errorf("steady util = %v, want %v", u, c.UpThreshold)
	}
}

func TestSteadyFreqMonotone(t *testing.T) {
	c := cfg()
	prev := 0.0
	for u := 0.0; u <= 1.0; u += 0.01 {
		f := c.SteadyFreq(Ondemand, u)
		if f < prev-1e-12 {
			t.Fatalf("freq not monotone at util %v", u)
		}
		prev = f
	}
}

func TestUtilAtClamps(t *testing.T) {
	c := cfg()
	if c.UtilAt(0.9, c.FMin) != 1 {
		t.Error("util must saturate at 1")
	}
	if c.UtilAt(0.5, 0) != 1 {
		t.Error("degenerate frequency should saturate")
	}
}

func TestCorePowerBounds(t *testing.T) {
	c := cfg()
	idle := c.CorePower(CoreState{Freq: c.FMax, Util: 0})
	full := c.CorePower(CoreState{Freq: c.FMax, Util: 1})
	if idle != c.IdleCore {
		t.Errorf("idle power = %v", idle)
	}
	if full != c.ActiveMax {
		t.Errorf("full power = %v", full)
	}
	// Lower frequency, same utilisation => less power.
	lower := c.CorePower(CoreState{Freq: 1.2, Util: 1})
	if lower >= full {
		t.Errorf("1.2GHz power %v >= 2.1GHz power %v", lower, full)
	}
}

func TestCorePowerMonotoneInUtil(t *testing.T) {
	c := cfg()
	if err := quick.Check(func(seed uint64) bool {
		r := xrand.New(seed)
		f := r.Uniform(c.FMin, c.FMax)
		u1, u2 := r.Float64(), r.Float64()
		if u1 > u2 {
			u1, u2 = u2, u1
		}
		return c.CorePower(CoreState{f, u1}) <= c.CorePower(CoreState{f, u2})+1e-12
	}, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPackagePowerEnvelope(t *testing.T) {
	c := cfg()
	// All idle: the baseline the 0-traffic experiments bottom out at.
	idle := c.PackagePower(nil)
	want := c.Uncore + float64(c.TotalCores)*c.IdleCore
	if math.Abs(idle-want) > 1e-9 {
		t.Errorf("idle package = %v, want %v", idle, want)
	}
	// One poller at 100% (static DPDK single queue): idle + one active.
	poller := c.PackagePower([]CoreState{{c.FMax, 1}})
	if poller <= idle || poller > idle+c.ActiveMax {
		t.Errorf("poller package = %v (idle %v)", poller, idle)
	}
	// Sanity envelope for the figures: a realistic node sits in 10..45 W.
	if idle < 10 || poller > 45 {
		t.Errorf("calibration out of envelope: idle=%v poller=%v", idle, poller)
	}
}

func TestMetronomeVsStaticPowerShape(t *testing.T) {
	// The headline Fig 11 shape: three duty-cycled Metronome threads burn
	// less power than one static poller plus two idle cores... at the same
	// offered load under ondemand; and under performance the gap narrows.
	c := cfg()
	static := c.PackagePower(c.SteadyState(Performance, []float64{1, 0, 0}))
	met := c.PackagePower(c.SteadyState(Performance, []float64{0.2, 0.2, 0.2}))
	if met >= static {
		t.Errorf("performance: metronome %vW >= static %vW", met, static)
	}
	staticOD := c.PackagePower(c.SteadyState(Ondemand, []float64{1, 0, 0}))
	metOD := c.PackagePower(c.SteadyState(Ondemand, []float64{0.2, 0.2, 0.2}))
	if metOD >= staticOD {
		t.Errorf("ondemand: metronome %vW >= static %vW", metOD, staticOD)
	}
	// ondemand saves vs performance for the duty-cycled configuration.
	if metOD >= met {
		t.Errorf("ondemand %vW >= performance %vW for metronome", metOD, met)
	}
}

func TestSteadyStateVector(t *testing.T) {
	c := cfg()
	st := c.SteadyState(Ondemand, []float64{1, 0.3, 0})
	if len(st) != 3 {
		t.Fatal("state length")
	}
	if st[0].Freq != c.FMax || st[0].Util != 1 {
		t.Errorf("busy core state = %+v", st[0])
	}
	if st[2].Freq != c.FMin {
		t.Errorf("idle core freq = %v", st[2].Freq)
	}
}
