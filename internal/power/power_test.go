package power

import (
	"math"
	"testing"
	"testing/quick"

	"metronome/internal/xrand"
)

func cfg() Config { return DefaultConfig() }

func TestGovernorString(t *testing.T) {
	if Performance.String() != "performance" || Ondemand.String() != "ondemand" {
		t.Error("governor names")
	}
}

func TestPerformanceAlwaysFMax(t *testing.T) {
	c := cfg()
	for _, u := range []float64{0, 0.2, 0.8, 1} {
		if got := c.SteadyFreq(Performance, u); got != c.FMax {
			t.Errorf("performance freq at util %v = %v", u, got)
		}
	}
}

func TestOndemandFixedPoint(t *testing.T) {
	c := cfg()
	// Fully busy (a static poller): pegged at FMax.
	if got := c.SteadyFreq(Ondemand, 1); got != c.FMax {
		t.Errorf("busy core freq = %v", got)
	}
	// Above threshold: FMax.
	if got := c.SteadyFreq(Ondemand, 0.85); got != c.FMax {
		t.Errorf("0.85 util freq = %v", got)
	}
	// Idle: FMin.
	if got := c.SteadyFreq(Ondemand, 0); got != c.FMin {
		t.Errorf("idle freq = %v", got)
	}
	// Moderate duty cycle settles below FMax but above FMin.
	f := c.SteadyFreq(Ondemand, 0.4)
	if f <= c.FMin || f >= c.FMax {
		t.Errorf("0.4 util freq = %v", f)
	}
	// At the fixed point, utilisation is pushed to the threshold.
	u := c.UtilAt(0.4, f)
	if math.Abs(u-c.UpThreshold) > 1e-9 {
		t.Errorf("steady util = %v, want %v", u, c.UpThreshold)
	}
}

func TestSteadyFreqMonotone(t *testing.T) {
	c := cfg()
	prev := 0.0
	for u := 0.0; u <= 1.0; u += 0.01 {
		f := c.SteadyFreq(Ondemand, u)
		if f < prev-1e-12 {
			t.Fatalf("freq not monotone at util %v", u)
		}
		prev = f
	}
}

func TestUtilAtClamps(t *testing.T) {
	c := cfg()
	if c.UtilAt(0.9, c.FMin) != 1 {
		t.Error("util must saturate at 1")
	}
	if c.UtilAt(0.5, 0) != 1 {
		t.Error("degenerate frequency should saturate")
	}
}

func TestCorePowerBounds(t *testing.T) {
	c := cfg()
	idle := c.CorePower(CoreState{Freq: c.FMax, Util: 0})
	full := c.CorePower(CoreState{Freq: c.FMax, Util: 1})
	if idle != c.IdleCore {
		t.Errorf("idle power = %v", idle)
	}
	if full != c.ActiveMax {
		t.Errorf("full power = %v", full)
	}
	// Lower frequency, same utilisation => less power.
	lower := c.CorePower(CoreState{Freq: 1.2, Util: 1})
	if lower >= full {
		t.Errorf("1.2GHz power %v >= 2.1GHz power %v", lower, full)
	}
}

func TestCorePowerMonotoneInUtil(t *testing.T) {
	c := cfg()
	if err := quick.Check(func(seed uint64) bool {
		r := xrand.New(seed)
		f := r.Uniform(c.FMin, c.FMax)
		u1, u2 := r.Float64(), r.Float64()
		if u1 > u2 {
			u1, u2 = u2, u1
		}
		return c.CorePower(CoreState{f, u1}) <= c.CorePower(CoreState{f, u2})+1e-12
	}, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPackagePowerEnvelope(t *testing.T) {
	c := cfg()
	// All idle: the baseline the 0-traffic experiments bottom out at.
	idle := c.PackagePower(nil)
	want := c.Uncore + float64(c.TotalCores)*c.IdleCore
	if math.Abs(idle-want) > 1e-9 {
		t.Errorf("idle package = %v, want %v", idle, want)
	}
	// One poller at 100% (static DPDK single queue): idle + one active.
	poller := c.PackagePower([]CoreState{{c.FMax, 1}})
	if poller <= idle || poller > idle+c.ActiveMax {
		t.Errorf("poller package = %v (idle %v)", poller, idle)
	}
	// Sanity envelope for the figures: a realistic node sits in 10..45 W.
	if idle < 10 || poller > 45 {
		t.Errorf("calibration out of envelope: idle=%v poller=%v", idle, poller)
	}
}

func TestMetronomeVsStaticPowerShape(t *testing.T) {
	// The headline Fig 11 shape: three duty-cycled Metronome threads burn
	// less power than one static poller plus two idle cores... at the same
	// offered load under ondemand; and under performance the gap narrows.
	c := cfg()
	static := c.PackagePower(c.SteadyState(Performance, []float64{1, 0, 0}))
	met := c.PackagePower(c.SteadyState(Performance, []float64{0.2, 0.2, 0.2}))
	if met >= static {
		t.Errorf("performance: metronome %vW >= static %vW", met, static)
	}
	staticOD := c.PackagePower(c.SteadyState(Ondemand, []float64{1, 0, 0}))
	metOD := c.PackagePower(c.SteadyState(Ondemand, []float64{0.2, 0.2, 0.2}))
	if metOD >= staticOD {
		t.Errorf("ondemand: metronome %vW >= static %vW", metOD, staticOD)
	}
	// ondemand saves vs performance for the duty-cycled configuration.
	if metOD >= met {
		t.Errorf("ondemand %vW >= performance %vW for metronome", metOD, met)
	}
}

func TestSteadyStateVector(t *testing.T) {
	c := cfg()
	st := c.SteadyState(Ondemand, []float64{1, 0.3, 0})
	if len(st) != 3 {
		t.Fatal("state length")
	}
	if st[0].Freq != c.FMax || st[0].Util != 1 {
		t.Errorf("busy core state = %+v", st[0])
	}
	if st[2].Freq != c.FMin {
		t.Errorf("idle core freq = %v", st[2].Freq)
	}
}

func TestSleepSplitAndIdlePower(t *testing.T) {
	c := DefaultConfig()
	if got := c.SleepSplit(0); got != 0 {
		t.Errorf("SleepSplit(0) = %v", got)
	}
	if got := c.SleepSplit(c.DeepDwell / 2); got != 0 {
		t.Errorf("short dwell split = %v, want 0 (stays shallow)", got)
	}
	long := c.SleepSplit(100 * c.DeepDwell)
	if long < 0.98 || long >= 1 {
		t.Errorf("long dwell split = %v, want ~0.99", long)
	}
	if got := c.IdlePower(c.DeepDwell / 2); got != c.IdleCore {
		t.Errorf("shallow idle power = %v, want IdleCore %v", got, c.IdleCore)
	}
	deep := c.IdlePower(1.0)
	if deep >= c.IdleCore || deep < c.DeepIdle {
		t.Errorf("deep idle power = %v, want in [%v, %v)", deep, c.DeepIdle, c.IdleCore)
	}
}

func TestTeamEnergyComposition(t *testing.T) {
	c := DefaultConfig()
	// 2 members, 10 s wall: 4 s busy, 16 s idle (short dwell), plus one
	// parked core for the whole window.
	r := Residency{
		BusySeconds:   4,
		IdleSeconds:   16,
		ParkedSeconds: 10,
		MeanDwell:     20e-6,
		Freq:          c.FMax,
	}
	want := 4*c.CorePower(CoreState{Freq: c.FMax, Util: 1}) + 16*c.IdleCore + 10*c.DeepIdle
	if got := c.TeamEnergy(r); math.Abs(got-want) > 1e-9 {
		t.Errorf("TeamEnergy = %v, want %v", got, want)
	}
	if got := c.TeamPower(r, 10); math.Abs(got-want/10) > 1e-9 {
		t.Errorf("TeamPower = %v, want %v", got, want/10)
	}
	if got := c.TeamPower(r, 0); got != 0 {
		t.Errorf("TeamPower(wall=0) = %v", got)
	}
}

// A small elastic team with its surplus parked in deep idle must model
// cheaper than a large static team idling shallowly at the same duty —
// the arithmetic behind fig-power's claim.
func TestSmallTeamPlusParkedBeatsLargeShallowTeam(t *testing.T) {
	c := DefaultConfig()
	shortDwell := 60e-6 // static idlers: duty-cycle sleeps stay shallow
	static := c.TeamWatts(6, 0.10, shortDwell, 0)
	elastic := c.TeamWatts(2, 0.30, shortDwell, 4)
	if elastic >= static {
		t.Fatalf("elastic 2+4 parked = %vW, static 6 = %vW: parking saves nothing", elastic, static)
	}
	if saving := 1 - elastic/static; saving < 0.30 {
		t.Errorf("modelled saving = %.1f%%, want >= 30%%", saving*100)
	}
}

func TestEnergyPressureShape(t *testing.T) {
	c := DefaultConfig()
	lo, hi := c.EnergyPressure(0.05), c.EnergyPressure(0.95)
	if lo <= hi {
		t.Fatalf("pressure not decreasing in duty: %v at 0.05 vs %v at 0.95", lo, hi)
	}
	if lo < 0.4 || lo > 1 {
		t.Errorf("trough pressure = %v, want ~0.6", lo)
	}
	if hi < 0 || hi > 0.2 {
		t.Errorf("saturation pressure = %v, want ~0.1", hi)
	}
}

func TestEnergyIntegral(t *testing.T) {
	var e Energy
	e.Observe(0, 10)
	e.Observe(1, 10)
	e.Observe(3, 20) // trapezoid: 2 s at mean 15 W
	if got := e.Joules(); math.Abs(got-40) > 1e-12 {
		t.Errorf("Joules = %v, want 40", got)
	}
	e.Reset()
	if e.Joules() != 0 {
		t.Error("Reset kept joules")
	}
	e.Observe(4, 20) // clock anchor survived the reset: 1 s at 20 W
	if got := e.Joules(); math.Abs(got-20) > 1e-12 {
		t.Errorf("post-reset Joules = %v, want 20", got)
	}
}
