// Package power models the CPU-frequency governors and package power that
// the paper measures through Intel RAPL (Sec. V-C and V-F): the
// `performance` governor pins cores at their maximum frequency, while
// `ondemand` periodically samples utilisation and scales frequency, trading
// reactivity for energy. Service rates scale with frequency, which is what
// couples the governor to Metronome's queue occupancy in Fig 13/14.
//
// Constants are calibrated to a single-socket Xeon Silver-class NUMA node
// (2.1 GHz nominal); EXPERIMENTS.md records the calibration.
package power

import "math"

// Governor selects the frequency policy.
type Governor int

const (
	// Performance keeps every core at FMax while executing.
	Performance Governor = iota
	// Ondemand scales frequency with recent utilisation: full speed above
	// UpThreshold, proportional below.
	Ondemand
)

// String names the governor as Linux does.
func (g Governor) String() string {
	if g == Ondemand {
		return "ondemand"
	}
	return "performance"
}

// Config describes one package (NUMA node) worth of cores.
type Config struct {
	FMax, FMin float64 // GHz
	// UpThreshold is ondemand's utilisation trigger for jumping to FMax.
	UpThreshold float64
	// Uncore is the always-on package power (memory controller, LLC, IO), W.
	Uncore float64
	// ActiveMax is the power of one core running flat out at FMax, W.
	ActiveMax float64
	// IdleCore is the power of one core parked in a shallow C-state, W.
	IdleCore float64
	// Alpha is the frequency->power exponent for the active component
	// (P ~ f^Alpha; ~2.5 captures DVFS voltage scaling).
	Alpha float64
	// TotalCores is the number of cores on the node (idle ones still burn
	// IdleCore watts each).
	TotalCores int
}

// DefaultConfig returns the calibration used across the experiments.
func DefaultConfig() Config {
	return Config{
		FMax:        2.1,
		FMin:        0.8,
		UpThreshold: 0.80,
		Uncore:      8.0,
		ActiveMax:   6.5,
		IdleCore:    0.9,
		Alpha:       2.5,
		TotalCores:  8,
	}
}

// SteadyFreq returns the steady-state frequency the governor settles at for
// a thread set whose utilisation at FMax is utilAtFMax (0..1 per core).
//
// For ondemand the fixed point accounts for work expanding as frequency
// drops: busy time scales as FMax/f, so the governor sees util(f) =
// utilAtFMax * FMax / f and raises f until util(f) <= UpThreshold (or FMax
// is reached). Continuously-polling threads therefore always sit at FMax,
// while Metronome's duty-cycled threads settle lower — the mechanism behind
// the paper's ondemand savings.
func (c Config) SteadyFreq(g Governor, utilAtFMax float64) float64 {
	if g == Performance {
		return c.FMax
	}
	if utilAtFMax <= 0 {
		return c.FMin
	}
	if utilAtFMax >= c.UpThreshold {
		return c.FMax
	}
	f := utilAtFMax * c.FMax / c.UpThreshold
	return math.Min(c.FMax, math.Max(c.FMin, f))
}

// UtilAt converts a utilisation measured at FMax into the utilisation at
// frequency f (clamped to 1: the core saturates).
func (c Config) UtilAt(utilAtFMax, f float64) float64 {
	if f <= 0 {
		return 1
	}
	u := utilAtFMax * c.FMax / f
	if u > 1 {
		return 1
	}
	return u
}

// CoreState is the operating point of one core over a measurement window.
type CoreState struct {
	Freq float64 // GHz
	Util float64 // 0..1 busy fraction at Freq
}

// CorePower returns the average power of one core at the given state.
func (c Config) CorePower(s CoreState) float64 {
	if s.Util < 0 {
		s.Util = 0
	}
	if s.Util > 1 {
		s.Util = 1
	}
	fNorm := s.Freq / c.FMax
	if fNorm < 0 {
		fNorm = 0
	}
	// The active component rides on top of the idle floor so the model
	// stays monotone in utilisation at every frequency.
	active := (c.ActiveMax - c.IdleCore) * math.Pow(fNorm, c.Alpha)
	return c.IdleCore + s.Util*active
}

// PackagePower returns the RAPL-style package power for the given active
// core states; cores beyond len(states) up to TotalCores idle.
func (c Config) PackagePower(states []CoreState) float64 {
	p := c.Uncore
	for _, s := range states {
		p += c.CorePower(s)
	}
	for i := len(states); i < c.TotalCores; i++ {
		p += c.IdleCore
	}
	return p
}

// SteadyState resolves the governor fixed point for a set of per-core
// utilisations measured at FMax and returns the resulting core states.
func (c Config) SteadyState(g Governor, utilAtFMax []float64) []CoreState {
	out := make([]CoreState, len(utilAtFMax))
	for i, u := range utilAtFMax {
		f := c.SteadyFreq(g, u)
		out[i] = CoreState{Freq: f, Util: c.UtilAt(u, f)}
	}
	return out
}
