// Package power models the CPU-frequency governors and package power that
// the paper measures through Intel RAPL (Sec. V-C and V-F): the
// `performance` governor pins cores at their maximum frequency, while
// `ondemand` periodically samples utilisation and scales frequency, trading
// reactivity for energy. Service rates scale with frequency, which is what
// couples the governor to Metronome's queue occupancy in Fig 13/14.
//
// Constants are calibrated to a single-socket Xeon Silver-class NUMA node
// (2.1 GHz nominal); EXPERIMENTS.md records the calibration.
package power

import "math"

// Governor selects the frequency policy.
type Governor int

const (
	// Performance keeps every core at FMax while executing.
	Performance Governor = iota
	// Ondemand scales frequency with recent utilisation: full speed above
	// UpThreshold, proportional below.
	Ondemand
)

// String names the governor as Linux does.
func (g Governor) String() string {
	if g == Ondemand {
		return "ondemand"
	}
	return "performance"
}

// Config describes one package (NUMA node) worth of cores.
type Config struct {
	FMax, FMin float64 // GHz
	// UpThreshold is ondemand's utilisation trigger for jumping to FMax.
	UpThreshold float64
	// Uncore is the always-on package power (memory controller, LLC, IO), W.
	Uncore float64
	// ActiveMax is the power of one core running flat out at FMax, W.
	ActiveMax float64
	// IdleCore is the power of one core parked in a shallow C-state, W.
	IdleCore float64
	// Alpha is the frequency->power exponent for the active component
	// (P ~ f^Alpha; ~2.5 captures DVFS voltage scaling).
	Alpha float64
	// TotalCores is the number of cores on the node (idle ones still burn
	// IdleCore watts each).
	TotalCores int
	// DeepIdle is the power of one core parked in a deep C-state (C6:
	// core clock-gated, caches flushed), W. Reaching it requires an idle
	// dwell long enough for the cpuidle governor to pick the deep state.
	DeepIdle float64
	// DeepDwell is the idle-dwell threshold (seconds) past which a sleep
	// is served from the deep C-state rather than the shallow one —
	// cpuidle's target-residency for C6. Metronome's short duty-cycle
	// sleeps (tens of µs) stay shallow; a parked (deprovisioned) member
	// sleeps far past it and reaches DeepIdle.
	DeepDwell float64
}

// DefaultConfig returns the calibration used across the experiments: a
// single-socket Xeon Silver 4110-class node (8 cores, 2.1 GHz nominal,
// 0.8 GHz floor), matching the paper's RAPL testbed (Sec. V-C/V-F).
//
// Provenance of the constants:
//   - FMax/FMin/UpThreshold: Xeon Silver 4110 nominal/min frequency and
//     the Linux ondemand governor's default up_threshold.
//   - Uncore (8 W): RAPL package-minus-cores floor typical of one idle
//     Skylake-SP socket (memory controller, mesh, LLC).
//   - ActiveMax (6.5 W/core): package RAPL delta per fully-busy core at
//     FMax on Silver-class parts (~52 W core budget over 8 cores).
//   - IdleCore (0.9 W) / DeepIdle (0.1 W): per-core C1 vs C6 residency
//     power; C1 keeps the core clocked and snooping, C6 power-gates it
//     almost entirely (the residual is package-maintained state).
//   - DeepDwell (200 µs): cpuidle target residency for C6 on Skylake-SP
//     (intel_idle reports 133 µs exit latency; the governor demands
//     residency a few times that before it commits).
//   - Alpha (2.5): DVFS exponent fitting P ~ f·V² with V roughly linear
//     in f over the 0.8–2.1 GHz range.
//
// EXPERIMENTS.md records how fig-power consumes this calibration.
func DefaultConfig() Config {
	return Config{
		FMax:        2.1,
		FMin:        0.8,
		UpThreshold: 0.80,
		Uncore:      8.0,
		ActiveMax:   6.5,
		IdleCore:    0.9,
		Alpha:       2.5,
		TotalCores:  8,
		DeepIdle:    0.1,
		DeepDwell:   200e-6,
	}
}

// SteadyFreq returns the steady-state frequency the governor settles at for
// a thread set whose utilisation at FMax is utilAtFMax (0..1 per core).
//
// For ondemand the fixed point accounts for work expanding as frequency
// drops: busy time scales as FMax/f, so the governor sees util(f) =
// utilAtFMax * FMax / f and raises f until util(f) <= UpThreshold (or FMax
// is reached). Continuously-polling threads therefore always sit at FMax,
// while Metronome's duty-cycled threads settle lower — the mechanism behind
// the paper's ondemand savings.
func (c Config) SteadyFreq(g Governor, utilAtFMax float64) float64 {
	if g == Performance {
		return c.FMax
	}
	if utilAtFMax <= 0 {
		return c.FMin
	}
	if utilAtFMax >= c.UpThreshold {
		return c.FMax
	}
	f := utilAtFMax * c.FMax / c.UpThreshold
	return math.Min(c.FMax, math.Max(c.FMin, f))
}

// UtilAt converts a utilisation measured at FMax into the utilisation at
// frequency f (clamped to 1: the core saturates).
func (c Config) UtilAt(utilAtFMax, f float64) float64 {
	if f <= 0 {
		return 1
	}
	u := utilAtFMax * c.FMax / f
	if u > 1 {
		return 1
	}
	return u
}

// CoreState is the operating point of one core over a measurement window.
type CoreState struct {
	Freq float64 // GHz
	Util float64 // 0..1 busy fraction at Freq
}

// CorePower returns the average power of one core at the given state.
func (c Config) CorePower(s CoreState) float64 {
	if s.Util < 0 {
		s.Util = 0
	}
	if s.Util > 1 {
		s.Util = 1
	}
	fNorm := s.Freq / c.FMax
	if fNorm < 0 {
		fNorm = 0
	}
	// The active component rides on top of the idle floor so the model
	// stays monotone in utilisation at every frequency.
	active := (c.ActiveMax - c.IdleCore) * math.Pow(fNorm, c.Alpha)
	return c.IdleCore + s.Util*active
}

// PackagePower returns the RAPL-style package power for the given active
// core states; cores beyond len(states) up to TotalCores idle.
func (c Config) PackagePower(states []CoreState) float64 {
	p := c.Uncore
	for _, s := range states {
		p += c.CorePower(s)
	}
	for i := len(states); i < c.TotalCores; i++ {
		p += c.IdleCore
	}
	return p
}

// SteadyState resolves the governor fixed point for a set of per-core
// utilisations measured at FMax and returns the resulting core states.
func (c Config) SteadyState(g Governor, utilAtFMax []float64) []CoreState {
	out := make([]CoreState, len(utilAtFMax))
	for i, u := range utilAtFMax {
		f := c.SteadyFreq(g, u)
		out[i] = CoreState{Freq: f, Util: c.UtilAt(u, f)}
	}
	return out
}

// SleepSplit returns the fraction of idle time spent in the deep C-state
// for sleeps of the given mean dwell (seconds). The cpuidle governor
// promotes a sleep to C6 only after DeepDwell of shallow residency, so a
// sleep of dwell d spends min(d, DeepDwell) shallow and the remainder
// deep: deepFrac = max(0, 1 - DeepDwell/d). Metronome's duty-cycle sleeps
// (dwell << DeepDwell) score 0; a parked member's open-ended sleep
// approaches 1.
func (c Config) SleepSplit(meanDwell float64) float64 {
	if meanDwell <= c.DeepDwell || meanDwell <= 0 {
		return 0
	}
	return 1 - c.DeepDwell/meanDwell
}

// IdlePower returns the average power (W) of one core whose idle time is
// made of sleeps with the given mean dwell: the SleepSplit blend of
// DeepIdle and IdleCore.
func (c Config) IdlePower(meanDwell float64) float64 {
	deep := c.SleepSplit(meanDwell)
	return deep*c.DeepIdle + (1-deep)*c.IdleCore
}

// Residency aggregates a thread team's sleep-state residency over a
// measurement window — the substrate-independent input to the energy
// model, derivable from the TS/TL cycle structure both substrates carry.
// All fields are sums across team members (so the struct scales from one
// thread to a whole deployment); seconds are wall seconds of the window.
type Residency struct {
	// BusySeconds is summed on-CPU time of provisioned members.
	BusySeconds float64
	// IdleSeconds is summed intra-cycle sleep time of provisioned
	// members (the TS vacations between retrievals).
	IdleSeconds float64
	// ParkedSeconds is summed time of budgeted-but-deprovisioned
	// members: cores the elastic controller has released, sleeping far
	// past DeepDwell.
	ParkedSeconds float64
	// MeanDwell is the mean duration (seconds) of one provisioned
	// member's sleep — IdleSeconds over the number of sleeps — which
	// decides how much of IdleSeconds reaches the deep C-state.
	MeanDwell float64
	// Freq is the operating frequency (GHz) of busy time.
	Freq float64
}

// TeamEnergy returns the modelled core-only energy (joules) of a team
// with the given residency: busy time at CorePower(Freq, util=1), idle
// time at the SleepSplit blend, parked time at DeepIdle. Uncore power is
// deliberately excluded — it is invariant under team sizing, and the
// elastic objective must see only the joules its decisions can move.
func (c Config) TeamEnergy(r Residency) float64 {
	busyW := c.CorePower(CoreState{Freq: r.Freq, Util: 1})
	return r.BusySeconds*busyW +
		r.IdleSeconds*c.IdlePower(r.MeanDwell) +
		r.ParkedSeconds*c.DeepIdle
}

// TeamPower returns the modelled core-only average power (W) of a team
// residency over a window of wall seconds (0 when wall <= 0).
func (c Config) TeamPower(r Residency, wall float64) float64 {
	if wall <= 0 {
		return 0
	}
	return c.TeamEnergy(r) / wall
}

// TeamWatts returns the modelled core-only power (W) of m provisioned
// members running at the given duty cycle (busy fraction) and sleep
// dwell, plus parked deprovisioned members in deep idle — the closed
// form the elastic controller prices candidate team sizes with, at the
// performance governor's FMax.
func (c Config) TeamWatts(m int, duty, meanDwell float64, parked int) float64 {
	if duty < 0 {
		duty = 0
	}
	if duty > 1 {
		duty = 1
	}
	busyW := c.CorePower(CoreState{Freq: c.FMax, Util: 1})
	perCore := duty*busyW + (1-duty)*c.IdlePower(meanDwell)
	return float64(m)*perCore + float64(parked)*c.DeepIdle
}

// EnergyPressure returns the relative joule saving of shedding one
// lightly-loaded member whose work is absorbed by the rest of the team:
// the team loses a core's idle floor (IdleCore down to DeepIdle once
// parked) while the busy joules merely migrate. It is the fractional
// margin by which the joules objective inflates the controller's
// occupancy target — large (~0.67) at trough duty where the idle floor
// dominates, small (~0.09) near saturation where busy joules dwarf it.
func (c Config) EnergyPressure(duty float64) float64 {
	if duty < 0 {
		duty = 0
	}
	if duty > 1 {
		duty = 1
	}
	busyW := c.CorePower(CoreState{Freq: c.FMax, Util: 1})
	return (c.IdleCore - c.DeepIdle) / (c.IdleCore + duty*(busyW-c.IdleCore))
}

// Energy integrates modelled power over a substrate clock into joules —
// the accounting spine behind Report.Joules. Feed it (t, watts)
// observations in nondecreasing t order; integration is trapezoidal, so
// piecewise-constant and piecewise-linear power profiles are both exact.
// The zero value is ready to use; the first observation only anchors the
// clock.
type Energy struct {
	joules  float64
	lastT   float64
	lastW   float64
	started bool
}

// Observe folds in the team's modelled watts at time t (seconds on the
// caller's clock) and returns the accumulated joules.
func (e *Energy) Observe(t, watts float64) float64 {
	if !e.started {
		e.started = true
	} else if t > e.lastT {
		e.joules += (t - e.lastT) * (watts + e.lastW) / 2
	}
	e.lastT, e.lastW = t, watts
	return e.joules
}

// Joules returns the integral so far.
func (e *Energy) Joules() float64 { return e.joules }

// Reset restarts the integral, keeping the clock anchor so a windowed
// reader can Reset at a window edge and keep integrating.
func (e *Energy) Reset() { e.joules = 0 }

// Rebase moves the clock anchor to (t, watts) without integrating — the
// warm-up window-alignment hook: a reader that Resets mid-interval
// rebases so the fresh window starts exactly at t instead of inheriting
// the partial interval before it.
func (e *Energy) Rebase(t, watts float64) {
	e.started, e.lastT, e.lastW = true, t, watts
}
