package stats

import (
	"math"
	"testing"
	"testing/quick"

	"metronome/internal/xrand"
)

func TestWelfordAgainstDirect(t *testing.T) {
	r := xrand.New(1)
	var w Welford
	xs := make([]float64, 0, 5000)
	for i := 0; i < 5000; i++ {
		x := r.NormFloat64()*3 + 7
		xs = append(xs, x)
		w.Add(x)
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	mean := sum / float64(len(xs))
	var ss float64
	for _, x := range xs {
		ss += (x - mean) * (x - mean)
	}
	variance := ss / float64(len(xs)-1)
	if math.Abs(w.Mean()-mean) > 1e-9 {
		t.Errorf("mean: welford %.12f direct %.12f", w.Mean(), mean)
	}
	if math.Abs(w.Var()-variance) > 1e-6 {
		t.Errorf("var: welford %.9f direct %.9f", w.Var(), variance)
	}
}

func TestWelfordMinMax(t *testing.T) {
	var w Welford
	for _, x := range []float64{3, -1, 4, 1, 5} {
		w.Add(x)
	}
	if w.Min() != -1 || w.Max() != 5 {
		t.Errorf("min/max = %v/%v, want -1/5", w.Min(), w.Max())
	}
}

func TestWelfordMergeEqualsSequential(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := xrand.New(seed)
		var a, b, all Welford
		for i := 0; i < 300; i++ {
			x := r.NormFloat64()
			all.Add(x)
			if i%2 == 0 {
				a.Add(x)
			} else {
				b.Add(x)
			}
		}
		a.Merge(&b)
		return a.N() == all.N() &&
			math.Abs(a.Mean()-all.Mean()) < 1e-9 &&
			math.Abs(a.Var()-all.Var()) < 1e-6
	}, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestWelfordMergeEmpty(t *testing.T) {
	var a, b Welford
	a.Add(2)
	a.Merge(&b) // merging empty is a no-op
	if a.N() != 1 || a.Mean() != 2 {
		t.Fatal("merge with empty changed accumulator")
	}
	b.Merge(&a) // merging into empty copies
	if b.N() != 1 || b.Mean() != 2 {
		t.Fatal("merge into empty did not copy")
	}
}

func TestSampleQuantiles(t *testing.T) {
	var s Sample
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 25.75}, {0.5, 50.5}, {0.75, 75.25}, {1, 100},
	}
	for _, c := range cases {
		if got := s.Quantile(c.q); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Quantile(%g) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestSampleEmpty(t *testing.T) {
	var s Sample
	if !math.IsNaN(s.Quantile(0.5)) || !math.IsNaN(s.Mean()) {
		t.Error("empty sample should yield NaN")
	}
}

func TestSampleQuantileMonotone(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := xrand.New(seed)
		var s Sample
		for i := 0; i < 100; i++ {
			s.Add(r.Float64() * 50)
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.05 {
			v := s.Quantile(q)
			if v < prev-1e-12 {
				return false
			}
			prev = v
		}
		return true
	}, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestBoxplot(t *testing.T) {
	var s Sample
	for _, x := range []float64{1, 2, 3, 4, 5} {
		s.Add(x)
	}
	b := s.Box()
	if b.Min != 1 || b.Median != 3 || b.Max != 5 || b.Mean != 3 || b.N != 5 {
		t.Errorf("unexpected boxplot: %+v", b)
	}
	if b.String() == "" {
		t.Error("empty String()")
	}
}

func TestEWMA(t *testing.T) {
	e := NewEWMA(0.5)
	if e.Started() {
		t.Fatal("fresh EWMA claims started")
	}
	if got := e.Update(10); got != 10 {
		t.Fatalf("first update = %v, want 10 (direct init)", got)
	}
	if got := e.Update(0); got != 5 {
		t.Fatalf("second update = %v, want 5", got)
	}
	if e.Value() != 5 {
		t.Fatalf("Value = %v", e.Value())
	}
}

func TestEWMAConvergesToConstant(t *testing.T) {
	e := NewEWMA(0.1)
	for i := 0; i < 200; i++ {
		e.Update(0.7)
	}
	if math.Abs(e.Value()-0.7) > 1e-9 {
		t.Errorf("EWMA of constant input = %v", e.Value())
	}
}

func TestHistogramDensityIntegratesToOne(t *testing.T) {
	h := NewHistogram(0, 10, 50)
	r := xrand.New(2)
	for i := 0; i < 10000; i++ {
		h.Add(r.Uniform(0, 10))
	}
	w := 10.0 / 50
	total := 0.0
	for i := range h.Counts {
		total += h.Density(i) * w
	}
	if math.Abs(total-1) > 1e-9 {
		t.Errorf("density integrates to %v", total)
	}
}

func TestHistogramClamping(t *testing.T) {
	h := NewHistogram(0, 1, 4)
	h.Add(-5)
	h.Add(99)
	if h.Counts[0] != 1 || h.Counts[3] != 1 {
		t.Errorf("out-of-range values not clamped: %v", h.Counts)
	}
	if h.N() != 2 {
		t.Errorf("N = %d", h.N())
	}
}

func TestHistogramKSAgainstUniform(t *testing.T) {
	h := NewHistogram(0, 1, 100)
	r := xrand.New(3)
	for i := 0; i < 200000; i++ {
		h.Add(r.Float64())
	}
	d := h.KSDistance(func(x float64) float64 {
		if x < 0 {
			return 0
		}
		if x > 1 {
			return 1
		}
		return x
	})
	if d > 0.01 {
		t.Errorf("KS distance vs true CDF = %v, want < 0.01", d)
	}
}

func TestHistogramKSDetectsMismatch(t *testing.T) {
	h := NewHistogram(0, 1, 100)
	r := xrand.New(4)
	for i := 0; i < 50000; i++ {
		u := r.Float64()
		h.Add(u * u) // Beta-ish, not uniform
	}
	d := h.KSDistance(func(x float64) float64 { return x })
	if d < 0.1 {
		t.Errorf("KS distance for wrong model = %v, want clearly > 0.1", d)
	}
}

func TestHistogramPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for inverted bounds")
		}
	}()
	NewHistogram(5, 1, 10)
}

func TestCounterAndRatio(t *testing.T) {
	c := Counter{Name: "busy_tries"}
	c.Inc()
	c.Addn(9)
	if c.Value != 10 {
		t.Fatalf("counter = %d", c.Value)
	}
	if Ratio(c.Value, 40) != 0.25 {
		t.Errorf("Ratio = %v", Ratio(c.Value, 40))
	}
	if Ratio(1, 0) != 0 {
		t.Errorf("Ratio with zero total should be 0")
	}
}

func TestSampleMergeEqualsAddAll(t *testing.T) {
	r := xrand.New(7)
	var a, b, merged, direct Sample
	for i := 0; i < 500; i++ {
		x := r.NormFloat64()
		if i%3 == 0 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	merged.Merge(&a)
	merged.Merge(&b)
	for _, x := range a.Values() {
		direct.Add(x)
	}
	for _, x := range b.Values() {
		direct.Add(x)
	}
	if merged.N() != direct.N() {
		t.Fatalf("N: merged %d direct %d", merged.N(), direct.N())
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.75, 1} {
		if merged.Quantile(q) != direct.Quantile(q) {
			t.Errorf("q%.2f: merged %v direct %v", q, merged.Quantile(q), direct.Quantile(q))
		}
	}
	if merged.Mean() != direct.Mean() {
		t.Errorf("mean: merged %v direct %v", merged.Mean(), direct.Mean())
	}
}

func TestSampleMergeEmptyAndNil(t *testing.T) {
	var s, empty Sample
	s.Add(1)
	s.Merge(&empty)
	s.Merge(nil)
	if s.N() != 1 || s.Quantile(0.5) != 1 {
		t.Fatalf("merge of empty changed the sample: n=%d", s.N())
	}
}

func TestSampleCapThinsUniformly(t *testing.T) {
	var s Sample
	s.SetCap(64)
	for i := 0; i < 10000; i++ {
		s.Add(float64(i))
	}
	if s.N() > 64 {
		t.Fatalf("retained %d > cap 64", s.N())
	}
	if s.N() < 16 {
		t.Fatalf("retained %d, over-thinned", s.N())
	}
	// The retained subsample still spans the stream and keeps its quantiles
	// roughly in place (values were 0..9999 uniform).
	if med := s.Quantile(0.5); med < 2500 || med > 7500 {
		t.Errorf("median of thinned uniform stream = %v", med)
	}
	if s.Quantile(1) < 7500 {
		t.Errorf("max of thinned stream = %v, tail lost", s.Quantile(1))
	}
	if s.Quantile(0) > 2500 {
		t.Errorf("min of thinned stream = %v, head lost", s.Quantile(0))
	}
}

func TestSampleCapOnMerge(t *testing.T) {
	var big, s Sample
	for i := 0; i < 1000; i++ {
		big.Add(float64(i))
	}
	s.SetCap(100)
	s.Merge(&big)
	if s.N() > 100 {
		t.Fatalf("merge overshot cap: %d", s.N())
	}
	if s.N() < 25 {
		t.Fatalf("merge over-thinned: %d", s.N())
	}
}

func TestSampleUncappedUnchanged(t *testing.T) {
	var s Sample
	for i := 0; i < 1000; i++ {
		s.Add(float64(i))
	}
	if s.N() != 1000 || s.Cap() != 0 {
		t.Fatalf("uncapped sample thinned: n=%d cap=%d", s.N(), s.Cap())
	}
}

func TestSampleUncapResumesRetention(t *testing.T) {
	var s Sample
	s.SetCap(64)
	for i := 0; i < 10000; i++ {
		s.Add(float64(i))
	}
	s.SetCap(0)
	before := s.N()
	for i := 0; i < 1000; i++ {
		s.Add(float64(10000 + i))
	}
	if s.N() != before+1000 {
		t.Fatalf("after SetCap(0), %d of 1000 Adds retained", s.N()-before)
	}
}
