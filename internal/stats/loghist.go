package stats

import (
	"math"
	"math/bits"
)

// This file is the fidelity plane's latency histogram: a fixed-bucket
// log-scale counter layout in the style of P4TG's RTT histograms and
// HdrHistogram's sub-bucketed log2 binning. The domain is uint64
// nanoseconds; buckets are exact integers below 2*LogHistSub ns and then
// power-of-two octaves split into LogHistSub linear sub-buckets each, so
// the relative quantisation error is bounded by 1/LogHistSub (~3.1%)
// across the whole range while Record costs two shifts and one increment —
// cheap enough for a per-packet data path and layout-compatible with an
// atomic counter block on the telemetry bus.

const (
	// LogHistSubBits is the log2 of the sub-bucket count per octave.
	LogHistSubBits = 5
	// LogHistSub is the number of linear sub-buckets per power-of-two
	// octave: the worst-case relative resolution is 1/LogHistSub.
	LogHistSub = 1 << LogHistSubBits
	// logHistMaxExp is the shift of the widest (last) octave.
	logHistMaxExp = 30
	// LogHistBuckets is the total bucket count of the layout (1024):
	// 2*LogHistSub unit-width buckets for values < 2*LogHistSub, then
	// logHistMaxExp octaves of LogHistSub sub-buckets each.
	LogHistBuckets = (logHistMaxExp + 2) * LogHistSub
	// LogHistMax is the largest recordable value in nanoseconds
	// (2^36-1 ns ~= 68.7 s); larger values clamp into the top bucket.
	LogHistMax = uint64(1)<<36 - 1
)

// LogBucketIndex returns the bucket index of value v (nanoseconds).
// Values above LogHistMax clamp to the top bucket. The mapping is
// v -> exp*LogHistSub + (v >> exp) with exp = max(0, bitlen(v)-SubBits-1):
// two shifts, no branches beyond the clamp, fully deterministic.
func LogBucketIndex(v uint64) int {
	if v > LogHistMax {
		v = LogHistMax
	}
	exp := bits.Len64(v) - LogHistSubBits - 1
	if exp < 0 {
		exp = 0
	}
	return exp*LogHistSub + int(v>>uint(exp))
}

// LogBucketLower returns the smallest value mapped to bucket i.
func LogBucketLower(i int) uint64 {
	if i < 2*LogHistSub {
		return uint64(i)
	}
	exp := i/LogHistSub - 1
	return uint64(i-exp*LogHistSub) << uint(exp)
}

// LogBucketWidth returns the number of distinct values mapped to bucket i
// (1 in the unit region, 2^exp inside octave exp).
func LogBucketWidth(i int) uint64 {
	if i < 2*LogHistSub {
		return 1
	}
	return uint64(1) << uint(i/LogHistSub-1)
}

// LogBucketUpper returns the largest value mapped to bucket i.
func LogBucketUpper(i int) uint64 {
	return LogBucketLower(i) + LogBucketWidth(i) - 1
}

// SecondsToNs converts a non-negative duration in seconds to integer
// nanoseconds, rounding to nearest and clamping negatives to zero — the
// bridge from the sim substrate's float64 virtual clock to the
// histogram's nanosecond domain.
func SecondsToNs(s float64) uint64 {
	if s <= 0 || math.IsNaN(s) {
		return 0
	}
	return uint64(s*1e9 + 0.5)
}

// LogHistogram is a fixed-shape log-scale histogram over uint64
// nanoseconds. The zero value is empty and ready to use; the counter
// array is inline (no pointers), so the type can be embedded, copied for
// snapshots, and reset without allocating. All methods are exact over the
// bucketed representation: Merge equals concatenated Records, Quantile is
// a deterministic cumulative walk, and no sample is ever dropped (values
// past LogHistMax clamp into the top bucket rather than vanish).
type LogHistogram struct {
	counts [LogHistBuckets]uint64
	n      uint64
}

// Record counts one value (nanoseconds): two shifts plus one increment,
// zero allocations.
func (h *LogHistogram) Record(v uint64) {
	h.counts[LogBucketIndex(v)]++
	h.n++
}

// RecordN counts value v (nanoseconds) n times.
func (h *LogHistogram) RecordN(v, n uint64) {
	h.counts[LogBucketIndex(v)] += n
	h.n += n
}

// AddBucket adds c observations directly into bucket i — the folding
// primitive used when sampling an atomic counter block off the telemetry
// bus into a caller-owned histogram.
func (h *LogHistogram) AddBucket(i int, c uint64) {
	h.counts[i] += c
	h.n += c
}

// N returns the total number of recorded values.
func (h *LogHistogram) N() uint64 { return h.n }

// CountAt returns the count in bucket i.
func (h *LogHistogram) CountAt(i int) uint64 { return h.counts[i] }

// Merge folds o into h bucket-by-bucket; the result is identical to
// having Recorded both value streams into one histogram.
func (h *LogHistogram) Merge(o *LogHistogram) {
	if o == nil || o.n == 0 {
		return
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.n += o.n
}

// Reset zeroes the counts without releasing any memory.
func (h *LogHistogram) Reset() {
	h.counts = [LogHistBuckets]uint64{}
	h.n = 0
}

// Quantile returns the value (nanoseconds) at quantile q in [0, 1]: the
// upper edge of the bucket holding the ceil(q*N)-th smallest sample, so
// the result is conservative for tail quantiles and never underestimates
// by more than the bucket's 1/LogHistSub relative width. It is exact for
// values below 2*LogHistSub ns (unit-width buckets), monotone in q, and
// returns 0 for an empty histogram.
func (h *LogHistogram) Quantile(q float64) uint64 {
	if h.n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(h.n)))
	if rank < 1 {
		rank = 1
	}
	if rank > h.n {
		rank = h.n
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum >= rank {
			return LogBucketUpper(i)
		}
	}
	return LogBucketUpper(LogHistBuckets - 1)
}

// Max returns the upper edge of the highest occupied bucket (0 when
// empty) — the histogram's view of the worst recorded latency.
func (h *LogHistogram) Max() uint64 {
	for i := LogHistBuckets - 1; i >= 0; i-- {
		if h.counts[i] != 0 {
			return LogBucketUpper(i)
		}
	}
	return 0
}
