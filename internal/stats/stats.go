// Package stats provides the streaming statistics the experiment harness
// uses to summarise simulation output: Welford accumulators, reservoir-free
// exact samples, boxplot five-number summaries, EWMA load estimators and
// empirical distribution helpers.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Welford accumulates mean and variance in a single pass without storing
// samples. The zero value is ready to use.
type Welford struct {
	n        int64
	mean, m2 float64
	min, max float64
}

// Add incorporates x.
func (w *Welford) Add(x float64) {
	if w.n == 0 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of samples seen.
func (w *Welford) N() int64 { return w.n }

// Mean returns the running mean (0 with no samples).
func (w *Welford) Mean() float64 { return w.mean }

// Var returns the unbiased sample variance.
func (w *Welford) Var() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// Std returns the sample standard deviation.
func (w *Welford) Std() float64 { return math.Sqrt(w.Var()) }

// Min returns the smallest sample (0 with no samples).
func (w *Welford) Min() float64 { return w.min }

// Max returns the largest sample (0 with no samples).
func (w *Welford) Max() float64 { return w.max }

// Merge combines another accumulator into w (parallel Welford merge).
func (w *Welford) Merge(o *Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = *o
		return
	}
	n := w.n + o.n
	d := o.mean - w.mean
	w.m2 += o.m2 + d*d*float64(w.n)*float64(o.n)/float64(n)
	w.mean += d * float64(o.n) / float64(n)
	if o.min < w.min {
		w.min = o.min
	}
	if o.max > w.max {
		w.max = o.max
	}
	w.n = n
}

// Sample collects raw values for quantile estimation. Quantiles are exact
// only while the sample is unbounded: once an optional cap (SetCap) has
// triggered, the retained set is a uniform thinning of the stream, and
// extreme tail quantiles (p99.9 and beyond) are reported by subsample luck
// — a capped Sample holding 1/k of the stream has likely discarded the
// true maximum. Readers that need exact tails should use LogHistogram,
// which keeps every observation at a bounded (~3.1%) bucket resolution.
type Sample struct {
	xs     []float64
	sorted bool
	capN   int
	stride int // accept every stride-th Add after a thinning pass
	skip   int // Adds discarded since the last accepted one
}

// SetCap bounds the number of retained values. When an Add (or Merge)
// would grow the sample past the cap, every other retained value is
// dropped and the acceptance stride doubles, so the retained set stays a
// uniform subsample of the stream. n <= 0 removes the bound. Quantiles and
// moments remain estimates of the same distribution; only their
// resolution degrades.
func (s *Sample) SetCap(n int) {
	if n < 0 {
		n = 0
	}
	s.capN = n
	if n == 0 {
		// Removing the bound must also stop the thinning, or the sample
		// would keep discarding (stride-1)/stride of all future Adds.
		s.stride, s.skip = 0, 0
		return
	}
	s.enforceCap()
}

// Cap returns the configured retention bound (0 = unbounded).
func (s *Sample) Cap() int { return s.capN }

// Reset discards the retained values and any thinning state but keeps the
// configured cap and the backing array, so a Reset+Merge cycle allocates
// only when it outgrows the previous high-water mark — the reusable-buffer
// contract core.Snapshot leans on.
func (s *Sample) Reset() {
	s.xs = s.xs[:0]
	s.sorted = false
	s.stride, s.skip = 0, 0
}

// enforceCap thins the retained values to at most capN, doubling the
// acceptance stride per halving pass.
func (s *Sample) enforceCap() {
	if s.capN <= 0 {
		return
	}
	for len(s.xs) > s.capN {
		kept := s.xs[:0]
		for i := 0; i < len(s.xs); i += 2 {
			kept = append(kept, s.xs[i])
		}
		s.xs = kept
		if s.stride == 0 {
			s.stride = 1
		}
		s.stride *= 2
	}
}

// Add appends a value (subject to the thinning stride once a cap has
// triggered).
func (s *Sample) Add(x float64) {
	if s.stride > 1 {
		s.skip++
		if s.skip < s.stride {
			return
		}
		s.skip = 0
	}
	s.xs = append(s.xs, x)
	s.sorted = false
	s.enforceCap()
}

// Merge folds another sample's retained values into s in one append —
// equivalent to Add-ing every element of o.Values() but without the
// per-element bookkeeping. o is left usable (its values get sorted, which
// Values does anyway). The thinning stride does not apply to merges; the
// cap, if set, is re-enforced afterwards.
func (s *Sample) Merge(o *Sample) {
	if o == nil || len(o.xs) == 0 {
		return
	}
	s.xs = append(s.xs, o.Values()...)
	s.sorted = false
	s.enforceCap()
}

// N returns the sample size.
func (s *Sample) N() int { return len(s.xs) }

// Values returns the backing slice (sorted ascending).
func (s *Sample) Values() []float64 {
	s.sort()
	return s.xs
}

func (s *Sample) sort() {
	if !s.sorted {
		sort.Float64s(s.xs)
		s.sorted = true
	}
}

// Quantile returns the q-th quantile (0 <= q <= 1) by linear interpolation.
// It returns NaN for an empty sample.
func (s *Sample) Quantile(q float64) float64 {
	if len(s.xs) == 0 {
		return math.NaN()
	}
	s.sort()
	if q <= 0 {
		return s.xs[0]
	}
	if q >= 1 {
		return s.xs[len(s.xs)-1]
	}
	pos := q * float64(len(s.xs)-1)
	i := int(pos)
	frac := pos - float64(i)
	if i+1 >= len(s.xs) {
		return s.xs[i]
	}
	return s.xs[i]*(1-frac) + s.xs[i+1]*frac
}

// Mean returns the arithmetic mean (NaN for an empty sample).
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range s.xs {
		sum += x
	}
	return sum / float64(len(s.xs))
}

// Std returns the sample standard deviation.
func (s *Sample) Std() float64 {
	n := len(s.xs)
	if n < 2 {
		return 0
	}
	m := s.Mean()
	sum := 0.0
	for _, x := range s.xs {
		d := x - m
		sum += d * d
	}
	return math.Sqrt(sum / float64(n-1))
}

// Boxplot is the five-number summary the paper's latency figures plot.
type Boxplot struct {
	Min, Q1, Median, Q3, Max float64
	Mean                     float64
	N                        int
}

// Box computes the five-number summary of the sample.
func (s *Sample) Box() Boxplot {
	return Boxplot{
		Min:    s.Quantile(0),
		Q1:     s.Quantile(0.25),
		Median: s.Quantile(0.5),
		Q3:     s.Quantile(0.75),
		Max:    s.Quantile(1),
		Mean:   s.Mean(),
		N:      s.N(),
	}
}

// String renders the summary in a compact single line.
func (b Boxplot) String() string {
	return fmt.Sprintf("min=%.2f q1=%.2f med=%.2f q3=%.2f max=%.2f mean=%.2f n=%d",
		b.Min, b.Q1, b.Median, b.Q3, b.Max, b.Mean, b.N)
}

// EWMA is the exponentially weighted moving average of eq. (11):
// rho(i) = (1-alpha)*rho(i-1) + alpha*x.
type EWMA struct {
	Alpha   float64
	value   float64
	started bool
}

// NewEWMA returns an estimator with the given smoothing factor.
func NewEWMA(alpha float64) *EWMA { return &EWMA{Alpha: alpha} }

// Update folds in an observation and returns the new estimate. The first
// observation initialises the average directly, as the paper's runtime does.
func (e *EWMA) Update(x float64) float64 {
	if !e.started {
		e.value = x
		e.started = true
		return x
	}
	e.value = (1-e.Alpha)*e.value + e.Alpha*x
	return e.value
}

// Value returns the current estimate (0 before any update).
func (e *EWMA) Value() float64 { return e.value }

// Started reports whether any observation has been folded in.
func (e *EWMA) Started() bool { return e.started }

// Histogram is a fixed-width binned counter over [Lo, Hi); out-of-range
// values clamp to the edge bins, so no sample is lost.
type Histogram struct {
	Lo, Hi float64
	Counts []int64
	n      int64
}

// NewHistogram builds a histogram with the given bounds and bin count.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins <= 0 || !(hi > lo) {
		panic("stats: invalid histogram shape")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int64, bins)}
}

// Add counts x into its bin.
func (h *Histogram) Add(x float64) {
	i := int(float64(len(h.Counts)) * (x - h.Lo) / (h.Hi - h.Lo))
	if i < 0 {
		i = 0
	}
	if i >= len(h.Counts) {
		i = len(h.Counts) - 1
	}
	h.Counts[i]++
	h.n++
}

// N returns the total count.
func (h *Histogram) N() int64 { return h.n }

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + (float64(i)+0.5)*w
}

// Density returns the empirical PDF value of bin i (integrates to ~1).
func (h *Histogram) Density(i int) float64 {
	if h.n == 0 {
		return 0
	}
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return float64(h.Counts[i]) / (float64(h.n) * w)
}

// CDFAt returns the fraction of samples <= x (by whole bins).
func (h *Histogram) CDFAt(x float64) float64 {
	if h.n == 0 {
		return 0
	}
	var c int64
	for i := range h.Counts {
		if h.BinCenter(i) <= x {
			c += h.Counts[i]
		}
	}
	return float64(c) / float64(h.n)
}

// KSDistance returns the Kolmogorov–Smirnov distance between the
// histogram's empirical CDF and a reference CDF evaluated at bin centers.
// The experiment harness uses it to score model-vs-simulation agreement
// (Fig 4).
func (h *Histogram) KSDistance(cdf func(float64) float64) float64 {
	if h.n == 0 {
		return math.NaN()
	}
	var cum int64
	worst := 0.0
	for i := range h.Counts {
		cum += h.Counts[i]
		emp := float64(cum) / float64(h.n)
		x := h.Lo + (float64(i)+1)*(h.Hi-h.Lo)/float64(len(h.Counts))
		d := math.Abs(emp - cdf(x))
		if d > worst {
			worst = d
		}
	}
	return worst
}

// Counter is a monotonically increasing event tally with a name, the unit
// the simulator uses for busy tries, drops, lock acquisitions, etc.
type Counter struct {
	Name  string
	Value int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Value++ }

// Addn adds n.
func (c *Counter) Addn(n int64) { c.Value += n }

// Ratio returns c.Value / total (0 when total is 0).
func Ratio(part, total int64) float64 {
	if total == 0 {
		return 0
	}
	return float64(part) / float64(total)
}
