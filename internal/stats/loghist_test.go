package stats

import (
	"math/rand"
	"testing"
)

// TestLogBucketRoundTrip checks the bucket-boundary round trip across the
// full latency range: every bucket's lower and upper edge must map back to
// that bucket, edges must tile the domain with no gaps or overlaps, and
// the clamp must land in the top bucket.
func TestLogBucketRoundTrip(t *testing.T) {
	var next uint64
	for i := 0; i < LogHistBuckets; i++ {
		lo, w := LogBucketLower(i), LogBucketWidth(i)
		if lo != next {
			t.Fatalf("bucket %d: lower=%d, want %d (gap or overlap)", i, lo, next)
		}
		next = lo + w
		if got := LogBucketIndex(lo); got != i {
			t.Fatalf("bucket %d: index(lower=%d)=%d", i, lo, got)
		}
		if got := LogBucketIndex(lo + w - 1); got != i {
			t.Fatalf("bucket %d: index(upper=%d)=%d", i, lo+w-1, got)
		}
		if i > 0 {
			if got := LogBucketIndex(lo - 1); got != i-1 {
				t.Fatalf("bucket %d: index(lower-1=%d)=%d, want %d", i, lo-1, got, i-1)
			}
		}
	}
	if next != LogHistMax+1 {
		t.Fatalf("layout covers [0,%d), want [0,%d]", next, LogHistMax)
	}
	if got := LogBucketIndex(LogHistMax + 12345); got != LogHistBuckets-1 {
		t.Fatalf("clamp: index(max+12345)=%d, want %d", got, LogHistBuckets-1)
	}
}

// TestLogBucketResolution checks the promised relative resolution: every
// bucket above the unit region is narrower than lower/LogHistSub.
func TestLogBucketResolution(t *testing.T) {
	for i := 2 * LogHistSub; i < LogHistBuckets; i++ {
		lo, w := LogBucketLower(i), LogBucketWidth(i)
		if float64(w) > float64(lo)/float64(LogHistSub) {
			t.Fatalf("bucket %d: width %d exceeds %d/%d", i, w, lo, LogHistSub)
		}
	}
}

// TestLogHistQuantileMonotone records a deterministic heavy-tailed stream
// and checks Quantile is monotone in q, exact below the unit-bucket
// boundary, and within bucket resolution of the true order statistics.
func TestLogHistQuantileMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var h LogHistogram
	for i := 0; i < 100000; i++ {
		// Log-uniform over ~[1, 2^30) ns plus an exact low-value mode.
		if i%10 == 0 {
			h.Record(uint64(rng.Intn(2 * LogHistSub)))
		} else {
			h.Record(uint64(1) << uint(rng.Intn(30)) * uint64(1+rng.Intn(7)))
		}
	}
	prev := uint64(0)
	for q := 0.0; q <= 1.0; q += 0.001 {
		v := h.Quantile(q)
		if v < prev {
			t.Fatalf("Quantile not monotone: q=%f gives %d after %d", q, v, prev)
		}
		prev = v
	}
	if h.Quantile(1) != h.Max() {
		t.Fatalf("Quantile(1)=%d != Max()=%d", h.Quantile(1), h.Max())
	}
}

// TestLogHistQuantileExactLow: with all values in the unit-width region,
// quantiles are exact order statistics.
func TestLogHistQuantileExactLow(t *testing.T) {
	var h LogHistogram
	for v := uint64(0); v < 2*LogHistSub; v++ {
		h.Record(v)
	}
	if got := h.Quantile(0); got != 0 {
		t.Fatalf("Quantile(0)=%d, want 0", got)
	}
	if got := h.Quantile(0.5); got != LogHistSub-1 {
		t.Fatalf("Quantile(0.5)=%d, want %d", got, LogHistSub-1)
	}
	if got := h.Quantile(1); got != 2*LogHistSub-1 {
		t.Fatalf("Quantile(1)=%d, want %d", got, 2*LogHistSub-1)
	}
}

// TestLogHistMergeEqualsConcat checks Merge == concatenated Record: two
// independently recorded streams merged must equal one histogram that
// recorded both.
func TestLogHistMergeEqualsConcat(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var a, b, all LogHistogram
	for i := 0; i < 5000; i++ {
		v := uint64(rng.Int63n(int64(LogHistMax) + 1))
		if i%2 == 0 {
			a.Record(v)
		} else {
			b.Record(v)
		}
		all.Record(v)
	}
	a.Merge(&b)
	if a.N() != all.N() {
		t.Fatalf("merged N=%d, want %d", a.N(), all.N())
	}
	for i := 0; i < LogHistBuckets; i++ {
		if a.CountAt(i) != all.CountAt(i) {
			t.Fatalf("bucket %d: merged=%d concat=%d", i, a.CountAt(i), all.CountAt(i))
		}
	}
	a.Reset()
	if a.N() != 0 || a.Quantile(0.99) != 0 || a.Max() != 0 {
		t.Fatal("Reset left state behind")
	}
}

// TestSecondsToNs checks rounding and the negative clamp.
func TestSecondsToNs(t *testing.T) {
	cases := []struct {
		s    float64
		want uint64
	}{
		{0, 0}, {-1, 0}, {1e-9, 1}, {6.8e-6, 6800}, {1.5, 1500000000},
	}
	for _, c := range cases {
		if got := SecondsToNs(c.s); got != c.want {
			t.Fatalf("SecondsToNs(%g)=%d, want %d", c.s, got, c.want)
		}
	}
}
