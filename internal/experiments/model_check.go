package experiments

import (
	"fmt"

	"metronome/internal/core"
	"metronome/internal/model"
	"metronome/internal/traffic"
)

func init() {
	register(Experiment{
		ID:    "abl-poisson",
		Title: "Ablation: CBR vs Poisson arrivals at the same mean rate",
		Paper: "The Sec. IV analysis is arrival-process-agnostic (renewal arguments); check the dynamics are too",
		Run:   runAblPoisson,
	})
	register(Experiment{
		ID:    "abl-blend",
		Title: "Model check: measured E[V] vs the eq (10) blend across the load range",
		Paper: "Sec. IV-C derives E[V] for intermediate loads assuming binomial primary counts",
		Run:   runAblBlend,
	})
}

func runAblPoisson(o Options) []*Table {
	d := dur(o, 1.0)
	t := &Table{
		ID:    "abl-poisson",
		Title: "line-rate-and-below comparison, M=3, V̄=10us",
		Columns: []string{
			"rate_mpps", "process", "mean_V_us", "lat_mean_us", "cpu_pct", "loss_permille",
		},
	}
	ppss := []float64{14.88e6, 7.44e6, 1.488e6}
	names := []string{"cbr", "poisson"}
	t.Rows = parMap(o, len(ppss)*len(names), func(k int) []string {
		i, j := k/len(names), k%len(names)
		pps := ppss[i]
		var p traffic.Process = traffic.CBR{PPS: pps}
		if j == 1 {
			p = traffic.Poisson{Lambda: pps}
		}
		cfg := core.DefaultConfig()
		_, m := runMetronome(runSpec{
			cfg:    cfg,
			policy: overridePolicy(o, cfg),
			procs:  []traffic.Process{p},
			dur:    d,
			warmup: d * 0.2,
			seed:   o.Seed + uint64(1500+10*i+j),
		})
		return []string{
			mpps(pps), names[j], us(m.MeanVacation), us(m.Latency.Mean),
			pct(m.CPUPercent), permille(m.LossRate),
		}
	})
	t.Notes = append(t.Notes,
		"Poisson burstiness adds modest latency variance but the CPU and V shapes are process-agnostic",
	)
	return []*Table{t}
}

func runAblBlend(o Options) []*Table {
	d := dur(o, 1.0)
	t := &Table{
		ID:    "abl-blend",
		Title: "measured vs modelled mean vacation, fixed TS=20us TL=500us, M=3",
		Columns: []string{
			"rate_mpps", "rho_est", "measured_V_us", "eq10_V_us", "ratio",
		},
	}
	const (
		tsReq = 20e-6
		m     = 3
	)
	tsEff := tsReq*1.0566 + 2.79e-6
	ppss := []float64{14.88e6, 11e6, 7.44e6, 3.7e6, 1.5e6, 0.3e6}
	t.Rows = parMap(o, len(ppss), func(i int) []string {
		pps := ppss[i]
		cfg := core.DefaultConfig()
		cfg.M = m
		cfg.Adaptive = false
		cfg.TSFixed = tsReq
		rt, met := runMetronome(runSpec{
			cfg:    cfg,
			procs:  []traffic.Process{traffic.CBR{PPS: pps}},
			dur:    d,
			warmup: d * 0.2,
			seed:   o.Seed + uint64(1600+i),
		})
		rho := rt.Rho(0)
		pred := model.EVGeneralApprox(tsEff, m, model.PrimaryProb(rho))
		ratio := met.MeanVacation / pred
		return []string{
			mpps(pps), f3(rho), us(met.MeanVacation), us(pred), fmt.Sprintf("%.2f", ratio),
		}
	})
	t.Notes = append(t.Notes,
		"eq (10) assumes every non-owner is independently primary with p=1-rho;",
		"the dynamics keep more threads in backup at mid load, so measured V runs above the blend there —",
		"the same bias that makes Table I's measured V ~2x its target at line rate (in the paper and here)",
	)
	return []*Table{t}
}
