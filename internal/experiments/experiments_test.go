package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

func quick() Options { return Options{Quick: true, Seed: 42} }

// cell parses a table cell as float.
func cell(t *testing.T, tab *Table, row, col int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(tab.Rows[row][col], 64)
	if err != nil {
		t.Fatalf("%s[%d][%d] = %q: %v", tab.ID, row, col, tab.Rows[row][col], err)
	}
	return v
}

func colIndex(t *testing.T, tab *Table, name string) int {
	t.Helper()
	for i, c := range tab.Columns {
		if c == name {
			return i
		}
	}
	t.Fatalf("%s: no column %q", tab.ID, name)
	return -1
}

func TestRegistryComplete(t *testing.T) {
	// Every table and figure of the paper's evaluation has an experiment.
	want := []string{
		"fig1", "fig4", "tab1", "fig5", "fig6", "fig7", "fig8", "fig9",
		"fig10", "fig11", "tab2", "fig12", "fig13", "fig14", "fig15",
		"tab3", "fig16", "fig13-15-rmetronome",
	}
	for _, id := range want {
		if _, ok := ByID(id); !ok {
			t.Errorf("experiment %s missing from registry", id)
		}
	}
	if len(All()) < len(want)+4 { // plus the ablations
		t.Errorf("registry has %d experiments", len(All()))
	}
}

func TestAllExperimentsRunAndRender(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tables := e.Run(quick())
			if len(tables) == 0 {
				t.Fatal("no tables")
			}
			for _, tab := range tables {
				if len(tab.Rows) == 0 {
					t.Errorf("%s: empty table", tab.ID)
				}
				for _, row := range tab.Rows {
					if len(row) != len(tab.Columns) {
						t.Errorf("%s: row width %d != %d columns", tab.ID, len(row), len(tab.Columns))
					}
				}
				var buf bytes.Buffer
				tab.Render(&buf)
				if !strings.Contains(buf.String(), tab.ID) {
					t.Errorf("%s: render missing header", tab.ID)
				}
			}
		})
	}
}

func TestFig1Shape(t *testing.T) {
	tab := mustRun(t, "fig1")[0]
	// hr_sleep mean below nanosleep mean at every granularity.
	meanCol := colIndex(t, tab, "mean")
	for r := 0; r < len(tab.Rows); r += 2 {
		hr, nano := cell(t, tab, r, meanCol), cell(t, tab, r+1, meanCol)
		if hr >= nano {
			t.Errorf("row %d: hr_sleep %.3f >= nanosleep %.3f", r, hr, nano)
		}
	}
}

func TestTab1Shape(t *testing.T) {
	tab := mustRun(t, "tab1")[0]
	vCol := colIndex(t, tab, "measured_V_us")
	nvCol := colIndex(t, tab, "N_V")
	lossCol := colIndex(t, tab, "loss_permille")
	prevV := 0.0
	for r := range tab.Rows {
		v := cell(t, tab, r, vCol)
		if v <= prevV {
			t.Errorf("measured V not increasing at row %d", r)
		}
		prevV = v
		// N_V consistent with Little's law at 14.88 Mpps.
		nv := cell(t, tab, r, nvCol)
		if want := 14.88 * v; nv < want*0.7 || nv > want*1.3 {
			t.Errorf("row %d: N_V=%v, Little predicts %v", r, nv, want)
		}
	}
	// Loss at the smallest target ~0; at the largest it may only appear in
	// full-length runs (the V̄=20 clipping is a tail event), so quick mode
	// merely requires it not to shrink.
	if l0 := cell(t, tab, 0, lossCol); l0 > 0.5 {
		t.Errorf("loss at V̄=5us = %v permille", l0)
	}
	last := len(tab.Rows) - 1
	if lN := cell(t, tab, last, lossCol); lN < cell(t, tab, 0, lossCol) {
		t.Errorf("loss shrank with target: %v", lN)
	}
}

func TestFig5Shape(t *testing.T) {
	tabs := mustRun(t, "fig5")
	for _, tab := range tabs {
		latCol := colIndex(t, tab, "lat_mean_us")
		cpuCol := colIndex(t, tab, "cpu_pct")
		// Latency grows with the target, CPU falls.
		if !(cell(t, tab, len(tab.Rows)-1, latCol) > cell(t, tab, 0, latCol)) {
			t.Errorf("%s: latency not increasing with V̄", tab.Title)
		}
		if !(cell(t, tab, len(tab.Rows)-1, cpuCol) < cell(t, tab, 0, cpuCol)) {
			t.Errorf("%s: CPU not decreasing with V̄", tab.Title)
		}
	}
}

func TestFig6Fig7Shapes(t *testing.T) {
	f6 := mustRun(t, "fig6")[0]
	btCol := colIndex(t, f6, "busy_tries_pct")
	if !(cell(t, f6, len(f6.Rows)-1, btCol) < cell(t, f6, 0, btCol)) {
		t.Error("fig6: busy tries not decreasing with TL")
	}
	f7 := mustRun(t, "fig7")[0]
	btCol = colIndex(t, f7, "busy_tries_pct")
	if !(cell(t, f7, len(f7.Rows)-1, btCol) > cell(t, f7, 0, btCol)) {
		t.Error("fig7: busy tries not increasing with M")
	}
}

func TestFig9Tracks(t *testing.T) {
	tab := mustRun(t, "fig9")[0]
	// The note carries the tracking error; re-derive a coarse check from
	// rows: apex estimate within 35% of apex offered.
	offCol := colIndex(t, tab, "offered_mpps")
	estCol := colIndex(t, tab, "estimated_mpps")
	bestOff, bestEst := 0.0, 0.0
	for r := range tab.Rows {
		if off := cell(t, tab, r, offCol); off > bestOff {
			bestOff, bestEst = off, cell(t, tab, r, estCol)
		}
	}
	if bestOff < 10 {
		t.Fatalf("ramp never approached peak: %v", bestOff)
	}
	if bestEst < bestOff*0.65 || bestEst > bestOff*1.35 {
		t.Errorf("apex estimate %v vs offered %v", bestEst, bestOff)
	}
}

func TestFig10Shape(t *testing.T) {
	tabs := mustRun(t, "fig10")
	cpu := tabs[1]
	stCol := colIndex(t, cpu, "static")
	meCol := colIndex(t, cpu, "metronome")
	xdCol := colIndex(t, cpu, "xdp")
	for r := range cpu.Rows {
		st, me, xd := cell(t, cpu, r, stCol), cell(t, cpu, r, meCol), cell(t, cpu, r, xdCol)
		if me >= st {
			t.Errorf("row %d: metronome CPU %v >= static %v", r, me, st)
		}
		_ = xd
	}
	// Paper: ~40% saving at line rate, >5x at 0.5 Gbps.
	if me := cell(t, cpu, 0, meCol); me > 75 {
		t.Errorf("line-rate metronome CPU = %v%%", me)
	}
	if me := cell(t, cpu, len(cpu.Rows)-1, meCol); me > 30 {
		t.Errorf("0.5G metronome CPU = %v%%", me)
	}
	// XDP burns more CPU than metronome at high rates.
	if xd := cell(t, cpu, 0, xdCol); xd < 200 {
		t.Errorf("XDP line-rate CPU = %v%%", xd)
	}
}

func TestFig11Shape(t *testing.T) {
	tabs := mustRun(t, "fig11")
	for _, tab := range tabs {
		powCol := colIndex(t, tab, "power_w")
		sysCol := colIndex(t, tab, "system")
		// At zero traffic Metronome must beat static on power.
		var metIdle, stIdle float64
		for r := range tab.Rows {
			rate := cell(t, tab, r, 0)
			if rate == 0 {
				if tab.Rows[r][sysCol] == "metronome" {
					metIdle = cell(t, tab, r, powCol)
				} else {
					stIdle = cell(t, tab, r, powCol)
				}
			}
		}
		if metIdle <= 0 || stIdle <= 0 || metIdle >= stIdle {
			t.Errorf("%s: idle power metronome %v vs static %v", tab.ID, metIdle, stIdle)
		}
	}
}

func TestTab2Shape(t *testing.T) {
	tab := mustRun(t, "tab2")[0]
	aloneCol := colIndex(t, tab, "alone")
	sharedCol := colIndex(t, tab, "with_ferret")
	// static: collapses to ~half; metronome: holds the line.
	if v := cell(t, tab, 0, sharedCol); v > 8.5 || v < 6.0 {
		t.Errorf("static shared throughput = %v, paper 7.34", v)
	}
	if v := cell(t, tab, 1, sharedCol); v < 14.5 {
		t.Errorf("metronome shared throughput = %v, paper 14.88", v)
	}
	if cell(t, tab, 0, aloneCol) < 14.5 || cell(t, tab, 1, aloneCol) < 14.5 {
		t.Error("alone throughput should be line rate for both")
	}
}

func TestFig12Shape(t *testing.T) {
	tab := mustRun(t, "fig12")[0]
	sCol := colIndex(t, tab, "slowdown")
	static, met := cell(t, tab, 0, sCol), cell(t, tab, 1, sCol)
	if static < 2.0 || static > 4.0 {
		t.Errorf("static slowdown = %v, paper ~3x", static)
	}
	if met > 1.5 {
		t.Errorf("metronome slowdown = %v, paper ~1.1x", met)
	}
}

func TestFig15Shape(t *testing.T) {
	tab := mustRun(t, "fig15")[0]
	cpuCol := colIndex(t, tab, "met_cpu_pct")
	// Paper: more than half of static's 400% saved at 37 Mpps.
	if v := cell(t, tab, 0, cpuCol); v > 220 {
		t.Errorf("37Mpps metronome CPU = %v%%, want < 220", v)
	}
	// CPU decreasing with rate.
	if !(cell(t, tab, len(tab.Rows)-1, cpuCol) < cell(t, tab, 0, cpuCol)) {
		t.Error("CPU not decreasing with rate")
	}
	lossCol := colIndex(t, tab, "loss_permille")
	if v := cell(t, tab, 0, lossCol); v > 2 {
		t.Errorf("loss at 37 Mpps = %v permille", v)
	}
}

func TestTab3Shape(t *testing.T) {
	tab := mustRun(t, "tab3")[0]
	shareCol := colIndex(t, tab, "share_pct")
	triesCol := colIndex(t, tab, "total_tries")
	rhoCol := colIndex(t, tab, "rho")
	// Identify the hot row.
	hot := -1
	for r := range tab.Rows {
		if cell(t, tab, r, shareCol) > 40 {
			hot = r
		}
	}
	if hot < 0 {
		t.Fatal("no hot queue")
	}
	for r := range tab.Rows {
		if r == hot {
			continue
		}
		if cell(t, tab, hot, rhoCol) <= cell(t, tab, r, rhoCol) {
			t.Errorf("hot queue rho %v not above queue %d", cell(t, tab, hot, rhoCol), r)
		}
		if cell(t, tab, hot, triesCol) >= cell(t, tab, r, triesCol) {
			t.Errorf("hot queue tries %v not below queue %d (Table III trend)",
				cell(t, tab, hot, triesCol), r)
		}
	}
}

func TestFig16Shape(t *testing.T) {
	tabs := mustRun(t, "fig16")
	for _, tab := range tabs {
		stCol := colIndex(t, tab, "static_cpu_pct")
		meCol := colIndex(t, tab, "metronome_cpu_pct")
		// At peak the two converge (IPsec: both ~100); at the lowest rate
		// Metronome is far below.
		last := len(tab.Rows) - 1
		if me, st := cell(t, tab, last, meCol), cell(t, tab, last, stCol); me > st/2 {
			t.Errorf("%s: low-rate metronome CPU %v vs static %v", tab.ID, me, st)
		}
	}
	// IPsec at its ceiling: metronome ~100% (never releases).
	ipsec := tabs[0]
	if v := cell(t, ipsec, 0, colIndex(t, ipsec, "metronome_cpu_pct")); v < 90 {
		t.Errorf("ipsec peak CPU = %v%%, want ~100", v)
	}
	// And the same throughput as static (5.61).
	if v := cell(t, ipsec, 0, colIndex(t, ipsec, "met_tput_mpps")); v < 5.3 {
		t.Errorf("ipsec peak throughput = %v, want ~5.61", v)
	}
}

func TestRobustnessShape(t *testing.T) {
	tab := mustRun(t, "abl-robust")[0]
	tputCol := colIndex(t, tab, "tput_mpps")
	// M=1 on a hogged core collapses (paper ~8 Mpps)...
	if v := cell(t, tab, 1, tputCol); v > 10 {
		t.Errorf("hogged single thread tput = %v, want a collapse", v)
	}
	// ...while M=3 holds the line even with one core hogged.
	if v := cell(t, tab, 2, tputCol); v < 14.0 {
		t.Errorf("M=3 one-hogged tput = %v, want ~14.88", v)
	}
	// And all-hogged stays close to line rate (the paper's zero-loss run).
	if v := cell(t, tab, 3, tputCol); v < 13.5 {
		t.Errorf("M=3 all-hogged tput = %v", v)
	}
}

func TestAblationShapes(t *testing.T) {
	eq := mustRun(t, "abl-timeouts")[0]
	btCol := colIndex(t, eq, "busy_tries_pct")
	if !(cell(t, eq, 0, btCol) > cell(t, eq, 1, btCol)) {
		t.Error("equal timeouts should waste more wakeups than the split")
	}
	tx := mustRun(t, "abl-txbatch")[0]
	latCol := colIndex(t, tx, "lat_mean_us")
	if !(cell(t, tx, 0, latCol) > cell(t, tx, 1, latCol)) {
		t.Error("tx batch 1 should lower mean latency at low rate")
	}
}

func TestPoissonAgnosticism(t *testing.T) {
	tab := mustRun(t, "abl-poisson")[0]
	cpuCol := colIndex(t, tab, "cpu_pct")
	lossCol := colIndex(t, tab, "loss_permille")
	// Per rate, CBR and Poisson rows sit adjacent: CPU within 15%.
	for r := 0; r+1 < len(tab.Rows); r += 2 {
		cbr, poi := cell(t, tab, r, cpuCol), cell(t, tab, r+1, cpuCol)
		if cbr == 0 || poi/cbr > 1.15 || poi/cbr < 0.85 {
			t.Errorf("row %d: process-dependent CPU: %v vs %v", r, cbr, poi)
		}
		if cell(t, tab, r+1, lossCol) > 1 {
			t.Errorf("row %d: poisson loss = %v", r, cell(t, tab, r+1, lossCol))
		}
	}
}

func TestBlendCheckRatios(t *testing.T) {
	tab := mustRun(t, "abl-blend")[0]
	ratioCol := colIndex(t, tab, "ratio")
	for r := range tab.Rows {
		v := cell(t, tab, r, ratioCol)
		// Measured V always >= the blend (backup inertia) but bounded.
		if v < 0.9 || v > 3.5 {
			t.Errorf("row %d: measured/eq10 ratio = %v", r, v)
		}
	}
}

func mustRun(t *testing.T, id string) []*Table {
	t.Helper()
	e, ok := ByID(id)
	if !ok {
		t.Fatalf("no experiment %s", id)
	}
	return e.Run(quick())
}
