package experiments

import (
	"fmt"

	"metronome/internal/core"
	"metronome/internal/hrtimer"
	"metronome/internal/model"
	"metronome/internal/nic"
	"metronome/internal/sim"
	"metronome/internal/stats"
	"metronome/internal/traffic"
	"metronome/internal/xrand"
)

func init() {
	register(Experiment{
		ID:    "fig1",
		Title: "hr_sleep vs nanosleep wake-up latency boxplots (1/10/100 us)",
		Paper: "Fig 1: hr_sleep slightly lower mean and variance at every granularity",
		Run:   runFig1,
	})
	register(Experiment{
		ID:    "fig4",
		Title: "Vacation period PDF: simulation vs analytical model, TS=TL=50us",
		Paper: "Fig 4: measured PDF matches eq (9) for M=2/3/5 (decorrelation holds)",
		Run:   runFig4,
	})
}

func runFig1(o Options) []*Table {
	samples := 200000
	if o.Quick {
		samples = 20000
	}
	t := &Table{
		ID:      "fig1",
		Title:   "sleep service wake-up latency (us)",
		Columns: []string{"service", "request_us", "min", "q1", "median", "q3", "max", "mean", "std"},
	}
	rng := xrand.New(o.Seed + 1)
	for _, req := range []float64{1e-6, 10e-6, 100e-6} {
		for _, svc := range []hrtimer.Service{hrtimer.HRSleep, hrtimer.Nanosleep} {
			m := hrtimer.NewModel(svc, rng.Split())
			var s stats.Sample
			for i := 0; i < samples; i++ {
				s.Add(m.Actual(req) * 1e6)
			}
			b := s.Box()
			t.Rows = append(t.Rows, []string{
				svc.String(), f1(req * 1e6),
				f3(b.Min), f3(b.Q1), f3(b.Median), f3(b.Q3), f3(b.Max),
				f3(b.Mean), f3(s.Std()),
			})
		}
	}
	t.Notes = append(t.Notes,
		"nanosleep configured with the minimal 1us timer slack, as in the paper",
	)
	return []*Table{t}
}

func runFig4(o Options) []*Table {
	const tsReq = 50e-6
	tsEff := tsReq*1.0566 + 2.79e-6 // request plus hr_sleep overhead
	runs, runDur := 16, 0.5
	if o.Quick {
		runs, runDur = 4, 0.25
	}
	t := &Table{
		ID:    "fig4",
		Title: "vacation period density vs eq (9), TS=TL=50us",
		Columns: []string{
			"M", "samples", "mean_us", "model_mean_us", "KS_distance", "beyond_TL_frac",
		},
	}
	for _, m := range []int{2, 3, 5} {
		hist := stats.NewHistogram(0, 1.3*tsEff, 65)
		var acc stats.Welford
		beyond := 0
		total := 0
		for run := 0; run < runs; run++ {
			cfg := core.DefaultConfig()
			cfg.M = m
			cfg.Adaptive = false
			cfg.TSFixed = tsReq
			cfg.TL = tsReq
			// A touch of background-host noise so the rare > TL wake-ups
			// of the paper's Fig 4 are represented.
			cfg.Wake.TailProb = 2e-5
			cfg.Seed = o.Seed + uint64(m*1000+run)
			cfg.OnCycle = func(q int, v, b float64) {
				hist.Add(v)
				acc.Add(v)
				total++
				if v > tsEff*1.05 {
					beyond++
				}
			}
			eng := sim.New()
			q := nic.NewQueue(0, traffic.CBR{PPS: 0}, xrand.New(cfg.Seed), nic.DefaultOptions())
			rt := core.New(eng, []*nic.Queue{q}, cfg)
			rt.Start()
			eng.RunUntil(runDur)
		}
		ks := hist.KSDistance(func(x float64) float64 {
			return model.CDFVHighLoad(x, tsEff, tsEff, m)
		})
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", m),
			fmt.Sprintf("%d", total),
			us(acc.Mean()),
			us(model.EVHighLoad(tsEff, tsEff, m)),
			f3(ks),
			fmt.Sprintf("%.5f", float64(beyond)/float64(total)),
		})
	}
	t.Notes = append(t.Notes,
		"KS distance is simulation-vs-eq(5); the paper overlays the same curves visually",
		"beyond-TL fraction shrinks with M, the paper's robustness argument",
	)
	return []*Table{t}
}
