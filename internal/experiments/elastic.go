package experiments

import (
	"fmt"

	"metronome/internal/core"
	"metronome/internal/elastic"
	"metronome/internal/nic"
	"metronome/internal/sched"
	"metronome/internal/traffic"
)

func init() {
	register(Experiment{
		ID:    "fig-elastic",
		Title: "Elastic control plane: occupancy-driven team autoscaling vs static M",
		Paper: "Beyond the paper: the sleep&wake discipline adapts each thread's timeout to load, but the paper's team size M is frozen at startup. This experiment drives a flash-crowd ramp, a diurnal sine and an unbalanced hot-queue shift (on a noisy shared host, Sec. V-E's elevated wake-delay tails) against static-M teams and the internal/elastic PI controller, comparing loss, CPU, vacation-target tracking and provisioned thread-seconds",
		Run:   runElastic,
	})
}

// elasticMode is one comparison arm: a static team of m threads, or an
// elastic team governed by ecfg.
type elasticMode struct {
	name   string
	m      int
	policy string
	ecfg   *elastic.Config
}

// elasticTuning is the controller tuning the experiment ships: wake-time
// occupancy above ~3% of the 4096-descriptor ring (a flash crowd's backlog
// at these rates) is grow pressure, loss overrides, shrinks wait out a
// 16 ms cooldown.
func elasticTuning(minThreads, budget int) *elastic.Config {
	ec := elastic.DefaultConfig(minThreads, budget)
	ec.TargetOccupancy = 0.03
	return &ec
}

// noisyHost raises the wake-delay tail probability to the shared-machine
// regime: ~1 in 1000 wakes eats a lognormal hundreds-of-microseconds
// delay. A lone attendant's queue buffers that outage or overflows; a
// bigger team masks it, which is exactly the capacity the controller is
// buying when it grows.
func noisyHost(cfg *core.Config) {
	cfg.Wake.TailProb = 1e-3
}

// elasticSpec assembles one arm over the given per-queue processes.
func elasticSpec(policy string, m int, procs []traffic.Process, d, warmup float64, seed uint64, ecfg *elastic.Config) runSpec {
	cfg := core.DefaultConfig()
	cfg.M = m
	cfg.VBar = 15e-6
	cfg.Policy = policy
	noisyHost(&cfg)
	return runSpec{
		cfg:     cfg,
		optFn:   func(opt *nic.Options) { opt.Cap = 4096 },
		procs:   procs,
		dur:     d,
		warmup:  warmup,
		seed:    seed,
		elastic: ecfg,
		// Telemetry rides along even for static arms so bus-driven
		// policies (worksteal) see live occupancy in every mode.
		telemetry: true,
	}
}

// elasticResult is one arm's rendered row plus its exact-histogram
// latency-tail cells (read off the telemetry bus after the run).
type elasticResult struct {
	row   []string
	tails []string
}

// elasticRow renders one arm: loss/CPU/vacation on the left, the
// provisioning account on the right, tails carried separately.
func elasticRow(mode elasticMode, procs []traffic.Process, d, warmup float64, seed uint64) elasticResult {
	rt, met, rep := runMetronomeElastic(elasticSpec(mode.policy, mode.m, procs, d, warmup, seed, mode.ecfg))
	return elasticResult{
		row: []string{
			mode.name,
			permille(met.LossRate),
			pct(met.CPUPercent),
			pct(met.BusyTryFrac * 100),
			us(met.MeanVacation),
			f1(rep.ThreadSeconds * 1e3), // thread-milliseconds: readable at these windows
			f2(rep.MeanThreads),
			fmt.Sprintf("%d..%d", rep.MinThreads, rep.MaxThreads),
			fmt.Sprintf("%d", rep.Resizes),
		},
		tails: append([]string{mode.name}, tailCells(rt, len(procs))...),
	}
}

// elasticRows splits results into the main-table rows.
func elasticRows(results []elasticResult) [][]string {
	rows := make([][]string, len(results))
	for i, r := range results {
		rows[i] = r.row
	}
	return rows
}

// elasticTails splits results into the tail-panel rows.
func elasticTails(results []elasticResult) [][]string {
	rows := make([][]string, len(results))
	for i, r := range results {
		rows[i] = r.tails
	}
	return rows
}

// tailsTable renders a figure's exact-histogram tail panel: per-packet
// retrieval latency quantiles over the measured window, from the bus
// histograms rather than the thinned reservoir sample.
func tailsTable(id, title string, rows [][]string) *Table {
	return &Table{
		ID:      id,
		Title:   title,
		Columns: append([]string{"mode"}, tailColumns...),
		Rows:    rows,
		Notes: []string{
			"exact log-scale histogram quantiles (bucket upper edges, <=3.2% wide) over every measured packet — not a reservoir sample",
		},
	}
}

var elasticColumns = []string{
	"mode", "loss_permille", "cpu_pct", "busy_tries_pct", "V_us",
	"thread_ms", "mean_M", "M_range", "resizes",
}

func runElastic(o Options) []*Table {
	d := dur(o, 0.8)
	warmup := 0.25 * d

	// Panel 1 — flash crowd: 2 queues idle at 4 Mpps total, a 28 Mpps
	// crowd lands at 0.5d and leaves at 0.9d (40% of the measured window).
	crowd := func(q int) traffic.Process {
		lo, hi := 2e6, 14e6
		return traffic.Step{At: 0.5 * d, Before: traffic.CBR{PPS: lo},
			After: traffic.Step{At: 0.9 * d, Before: traffic.CBR{PPS: hi},
				After: traffic.CBR{PPS: lo}}}
	}
	crowdProcs := []traffic.Process{crowd(0), crowd(1)}
	crowdModes := []elasticMode{
		{name: "static-2", m: 2, policy: sched.NameAdaptive},
		{name: "static-8", m: 8, policy: sched.NameAdaptive},
		{name: "elastic-2..8", m: 2, policy: sched.NameAdaptive, ecfg: elasticTuning(2, 8)},
	}
	crowdResults := parMap(o, len(crowdModes), func(i int) elasticResult {
		return elasticRow(crowdModes[i], crowdProcs, d, warmup, o.Seed+uint64(1500+i))
	})
	flash := &Table{
		ID:      "fig-elastic-flash",
		Title:   "flash crowd (4 -> 28 -> 4 Mpps over 2 queues), noisy host, V̄=15us",
		Columns: elasticColumns,
		Rows:    elasticRows(crowdResults),
		Notes: []string{
			"static-2 overflows the 4096-descriptor rings on wake-delay tails at the peak; static-8 survives it but provisions 8 threads for the whole window",
			"elastic grows on the occupancy/loss PI only while the crowd is in, so it matches static-8's loss at a fraction of the thread-seconds",
		},
	}

	// Panel 2 — diurnal sine: the day/night curve compressed into the
	// run, 1 to 15 Mpps per queue, under the shared-queue discipline.
	day := 0.625 * d
	sineProcs := []traffic.Process{
		traffic.Sine{Base: 8e6, Amp: 7e6, Period: day},
		traffic.Sine{Base: 8e6, Amp: 7e6, Period: day},
	}
	sineModes := []elasticMode{
		{name: "static-2", m: 2, policy: sched.NameRMetronome},
		{name: "static-8", m: 8, policy: sched.NameRMetronome},
		{name: "elastic-2..8", m: 2, policy: sched.NameRMetronome, ecfg: elasticTuning(2, 8)},
	}
	sineResults := parMap(o, len(sineModes), func(i int) elasticResult {
		return elasticRow(sineModes[i], sineProcs, d, warmup, o.Seed+uint64(1520+i))
	})
	diurnal := &Table{
		ID:      "fig-elastic-diurnal",
		Title:   "diurnal sine (1..15 Mpps per queue), rmetronome groups, V̄=15us",
		Columns: elasticColumns,
		Rows:    elasticRows(sineResults),
		Notes: []string{
			"the controller's mean_M rides the sine: r = M/N group sizes recompute online through sched.Resizable",
		},
	}

	// Panel 3 — unbalanced shift: 24 Mpps over 3 queues whose hot queue
	// (60% of the traffic) migrates from queue 0 to queue 2 mid-window;
	// work-stealing backups chase it via bus occupancy.
	shiftAt := 0.7 * d
	share := func(before, after float64) traffic.Process {
		return traffic.Step{At: shiftAt,
			Before: traffic.CBR{PPS: 24e6 * before},
			After:  traffic.CBR{PPS: 24e6 * after}}
	}
	shiftProcs := []traffic.Process{
		share(0.6, 0.2), share(0.2, 0.2), share(0.2, 0.6),
	}
	shiftModes := []elasticMode{
		{name: "rmetronome-static-6", m: 6, policy: sched.NameRMetronome},
		{name: "worksteal-static-6", m: 6, policy: sched.NameWorkSteal},
		{name: "worksteal-elastic-3..6", m: 3, policy: sched.NameWorkSteal, ecfg: elasticTuning(3, 6)},
	}
	shiftResults := parMap(o, len(shiftModes), func(i int) elasticResult {
		return elasticRow(shiftModes[i], shiftProcs, d, warmup, o.Seed+uint64(1540+i))
	})
	shift := &Table{
		ID:      "fig-elastic-shift",
		Title:   "unbalanced shift (60% hot flow migrates queue 0 -> 2 mid-run), 3 queues",
		Columns: elasticColumns,
		Rows:    elasticRows(shiftResults),
		Notes: []string{
			"worksteal re-targets lost-race threads at the occupancy-hottest queue straight off the telemetry bus, so backup capacity follows the migration within a vacation",
			"the hot flow never leaves, so the controller converges to the static provisioning instead of undercutting it — elastic only wins thread-seconds while demand actually varies",
		},
	}

	tables := []*Table{flash, diurnal, shift}
	if !o.NoHist {
		tables = append(tables,
			tailsTable("fig-elastic-tails-flash", "flash crowd — exact latency tails", elasticTails(crowdResults)),
			tailsTable("fig-elastic-tails-diurnal", "diurnal sine — exact latency tails", elasticTails(sineResults)),
			tailsTable("fig-elastic-tails-shift", "unbalanced shift — exact latency tails", elasticTails(shiftResults)),
		)
	}
	return tables
}
