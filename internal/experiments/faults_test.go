package experiments

import (
	"testing"

	"metronome/internal/obsv"
)

// The fault plane's acceptance gate, asserted on the straggler-storm panel
// at full duration (quick mode compresses the stall below the liveness
// bound, so the physics only hold at scale): the self-healing controller
// matches the oracle's loss within 2x plus a small quantisation floor, the
// oblivious controller pays more than 10x, and the win comes from actual
// exiles — not from the storm being harmless. A flight recorder rides the
// self-healing arm, so the gate also pins the observability contract: the
// ring must hold exactly the exiles the Report counted, and the fault
// plane's own flag flips must appear through AttachFaults.
func TestFigFaultsStragglerAcceptance(t *testing.T) {
	rec := obsv.NewRecorder(0)
	results, _ := stragglerResults(Options{Seed: 1}, rec)
	byName := map[string]faultResult{}
	for _, r := range results {
		byName[r.name] = r
	}
	oracle := byName["oracle-static-3"].drops
	static2 := byName["static-2"].drops
	selfheal := byName["elastic-selfheal-2..4"]
	oblivious := byName["elastic-oblivious-2..4"].drops
	// The floor absorbs zero-loss denominators: 150 packets is one
	// millisecond of the watched queue's arrivals.
	if floor := int64(150); selfheal.drops > 2*oracle+floor {
		t.Errorf("self-healing lost %d, oracle %d: want <= 2x oracle (+%d floor)",
			selfheal.drops, oracle, floor)
	}
	if oblivious <= 10*oracle+1000 {
		t.Errorf("oblivious lost %d, oracle %d: storm too soft to discriminate",
			oblivious, oracle)
	}
	if static2 < 1000 {
		t.Errorf("static-2 lost only %d: the storm never starved the queue", static2)
	}
	if selfheal.exiles == 0 {
		t.Error("self-healing arm never exiled the straggler")
	}
	counts := rec.CountByKind()
	if counts[obsv.EvExile] != selfheal.exiles {
		t.Errorf("flight recorder holds %d exile events, Report counted %d",
			counts[obsv.EvExile], selfheal.exiles)
	}
	if counts[obsv.EvDecision] == 0 {
		t.Error("flight recorder holds no decision events from the elastic arm")
	}
	if counts[obsv.EvFault] == 0 {
		t.Error("flight recorder saw no fault flag flips through AttachFaults")
	}
}
