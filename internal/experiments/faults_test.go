package experiments

import "testing"

// The fault plane's acceptance gate, asserted on the straggler-storm panel
// at full duration (quick mode compresses the stall below the liveness
// bound, so the physics only hold at scale): the self-healing controller
// matches the oracle's loss within 2x plus a small quantisation floor, the
// oblivious controller pays more than 10x, and the win comes from actual
// exiles — not from the storm being harmless.
func TestFigFaultsStragglerAcceptance(t *testing.T) {
	results, _ := stragglerResults(Options{Seed: 1})
	byName := map[string]faultResult{}
	for _, r := range results {
		byName[r.name] = r
	}
	oracle := byName["oracle-static-3"].drops
	static2 := byName["static-2"].drops
	selfheal := byName["elastic-selfheal-2..4"]
	oblivious := byName["elastic-oblivious-2..4"].drops
	// The floor absorbs zero-loss denominators: 150 packets is one
	// millisecond of the watched queue's arrivals.
	if floor := int64(150); selfheal.drops > 2*oracle+floor {
		t.Errorf("self-healing lost %d, oracle %d: want <= 2x oracle (+%d floor)",
			selfheal.drops, oracle, floor)
	}
	if oblivious <= 10*oracle+1000 {
		t.Errorf("oblivious lost %d, oracle %d: storm too soft to discriminate",
			oblivious, oracle)
	}
	if static2 < 1000 {
		t.Errorf("static-2 lost only %d: the storm never starved the queue", static2)
	}
	if selfheal.exiles == 0 {
		t.Error("self-healing arm never exiled the straggler")
	}
}
