package experiments

import (
	"context"
	"fmt"
	goruntime "runtime"
	"sync"
	"sync/atomic"
	"time"

	"metronome/internal/apps"
	"metronome/internal/apps/flowatcher"
	"metronome/internal/apps/ipsecgw"
	"metronome/internal/apps/l3fwd"
	"metronome/internal/mbuf"
	"metronome/internal/packet"
	"metronome/internal/ring"
	metrort "metronome/internal/runtime"
	"metronome/internal/telemetry"
	"metronome/internal/traffic"
)

func init() {
	register(Experiment{
		ID:    "fig-apps",
		Title: "Application plane on the live runner: burst dispatch and sharded state",
		Paper: "Beyond the paper: Metronome's evaluation wires l3fwd, the IPsec gateway and FloWatcher into DPDK's burst retrieval loop. This experiment drives the same three adapted applications through the live goroutine runner's burst path (one dispatch per PollBurst, per-queue processor shards, zero allocations per burst) and accounts for every packet: the tallies are exact, so the table is byte-identical at any parallelism. Full runs add a measured throughput panel comparing native burst dispatch against the per-packet compatibility shim",
		Run:   runAppsPlane,
	})
}

// appsDrive pushes npkts RSS-split UDP frames through a live proc-runner
// deployment and blocks until every packet has been emitted. Producers
// retry on ring backpressure, so nothing is lost and the verdict tallies
// are exact. Returns the verdict tallies, the wall-clock drain time and
// the retrieval threads' summed on-CPU seconds (from the telemetry bus —
// the signal that isolates retrieval cost from producer throughput).
func appsDrive(procs []apps.BurstProcessor, npkts int, seed uint64) (fwd, con, drp int64, elapsed time.Duration, cpuSec float64) {
	nQueues := len(procs)
	// Pre-split the stream by RSS so each queue gets a tight dedicated
	// producer: frame generation and the Toeplitz hash are paid up front,
	// not on the measured path.
	perQ := make([][][]byte, nQueues)
	gen := traffic.NewFrameGen(seed, 256, 64)
	rss := packet.NewToeplitz(packet.DefaultRSSKey)
	for i := 0; i < npkts; i++ {
		frame, k := gen.Next()
		q := rss.QueueFor(k, nQueues)
		perQ[q] = append(perQ[q], append([]byte(nil), frame...))
	}
	rings := make([]*ring.MPMC[*mbuf.Mbuf], nQueues)
	queues := make([]metrort.RxQueue, nQueues)
	for q := range rings {
		r, err := ring.NewMPMC[*mbuf.Mbuf](1024)
		if err != nil {
			panic(err)
		}
		rings[q] = r
		queues[q] = metrort.RingQueue{R: r}
	}
	var nFwd, nCon, nDrp atomic.Int64
	emit := func(q int, ms []*mbuf.Mbuf, verdicts []apps.Verdict) {
		for i := range ms {
			switch verdicts[i] {
			case apps.Forward:
				nFwd.Add(1)
			case apps.Consume:
				nCon.Add(1)
			default:
				nDrp.Add(1)
			}
		}
		mbuf.FreeBurst(ms) // whole verdict burst back in bulk ring spans
	}
	m := nQueues + 1
	bus := telemetry.NewBus(nQueues, m)
	r := metrort.NewProc(queues, procs, emit,
		metrort.Config{M: m, VBar: 100 * time.Microsecond, Seed: seed, Bus: bus})
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); r.Run(ctx) }()

	start := time.Now()
	var prod sync.WaitGroup
	for q := 0; q < nQueues; q++ {
		prod.Add(1)
		go func(q int) {
			defer prod.Done()
			// Burst-native producer: lease whole bursts from a
			// producer-local mempool cache and enqueue them in bulk,
			// retrying the remainder on backpressure — never dropping, so
			// the tallies stay exact. The pool's shared ring is only
			// touched in cache spans; the retrieval side recycles through
			// per-goroutine caches on the same pool.
			pool := mbuf.NewPool(2048)
			cache := pool.NewCache()
			defer cache.Flush()
			frames := perQ[q]
			batch := make([]*mbuf.Mbuf, 32)
			for off := 0; off < len(frames); {
				want := len(frames) - off
				if want > len(batch) {
					want = len(batch)
				}
				n := cache.GetBurst(batch[:want])
				for n == 0 {
					goruntime.Gosched() // consumers own every mbuf; let them drain
					n = cache.GetBurst(batch[:want])
				}
				for i := 0; i < n; i++ {
					batch[i].SetFrame(frames[off+i])
				}
				for enq := 0; enq < n; {
					k := rings[q].EnqueueBurst(batch[enq:n])
					if k == 0 {
						goruntime.Gosched() // backpressure: retry, never drop
					}
					enq += k
				}
				off += n
			}
		}(q)
	}
	prod.Wait()
	deadline := time.Now().Add(30 * time.Second)
	for nFwd.Load()+nCon.Load()+nDrp.Load() < int64(npkts) && time.Now().Before(deadline) {
		time.Sleep(50 * time.Microsecond)
	}
	elapsed = time.Since(start)
	cancel()
	wg.Wait()
	for t := 0; t < m; t++ {
		cpuSec += bus.ThreadBusy(t)
	}
	return nFwd.Load(), nCon.Load(), nDrp.Load(), elapsed, cpuSec
}

// appsRoutes gives every per-queue forwarder the same table: a 0.0.0.0/1
// default plus a 192/8 split, so FrameGen's random destinations exercise
// both the Forward and NoRoute paths deterministically.
func appsRoutes(f *l3fwd.Forwarder) {
	if err := f.Table.Add(0, 1, 0); err != nil {
		panic(err)
	}
	if err := f.Table.Add(packet.AddrFrom4(192, 0, 0, 0), 8, 1); err != nil {
		panic(err)
	}
}

func newAppsForwarder() *l3fwd.Forwarder {
	f := l3fwd.New([]l3fwd.Port{
		{MAC: packet.MAC{2, 0, 0, 0, 0, 1}, GwMAC: packet.MAC{2, 0, 0, 0, 1, 1}},
		{MAC: packet.MAC{2, 0, 0, 0, 0, 2}, GwMAC: packet.MAC{2, 0, 0, 0, 1, 2}},
	})
	appsRoutes(f)
	return f
}

func newAppsGateway(seed uint64) *ipsecgw.Gateway {
	g := ipsecgw.New(seed)
	sa := &ipsecgw.SA{
		SPI:       0x3003,
		EncKey:    [16]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16},
		AuthKey:   [20]byte{7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7},
		TunnelSrc: packet.AddrFrom4(192, 0, 2, 1),
		TunnelDst: packet.AddrFrom4(198, 51, 100, 1),
	}
	if err := g.AddSA(sa, 0, 0); err != nil {
		panic(err)
	}
	return g
}

// appsArm is one accounting row: build per-queue shards, drive, tally.
type appsArm struct {
	name  string
	procs func() []apps.BurstProcessor
	// tally renders the app-specific counter summary after the drive.
	tally func() string
}

func runAppsPlane(o Options) []*Table {
	const nQueues = 2
	npkts := 300000
	if o.Quick {
		npkts = 30000
	}

	arms := func() []appsArm {
		fwds := []*l3fwd.Forwarder{newAppsForwarder(), newAppsForwarder()}
		gws := []*ipsecgw.Gateway{newAppsGateway(1), newAppsGateway(2)}
		sharded := flowatcher.NewSharded(nQueues)
		return []appsArm{
			{
				name: "l3fwd",
				procs: func() []apps.BurstProcessor {
					return []apps.BurstProcessor{fwds[0], fwds[1]}
				},
				tally: func() string {
					var fw, nr, ex, mf int64
					for _, f := range fwds {
						fw += f.Forwarded
						nr += f.NoRoute
						ex += f.Expired
						mf += f.Malformed
					}
					return fmt.Sprintf("forwarded=%d noroute=%d expired=%d malformed=%d", fw, nr, ex, mf)
				},
			},
			{
				name: "ipsecgw",
				procs: func() []apps.BurstProcessor {
					return []apps.BurstProcessor{gws[0], gws[1]}
				},
				tally: func() string {
					var enc, miss int64
					for _, g := range gws {
						enc += g.Encapsulated
						miss += g.PolicyMisses
					}
					return fmt.Sprintf("encapsulated=%d policy_misses=%d", enc, miss)
				},
			},
			{
				name:  "flowatcher",
				procs: sharded.Procs,
				tally: func() string {
					top := sharded.TopK(1)
					topPkts := int64(0)
					if len(top) == 1 {
						if fs, ok := sharded.Flow(top[0]); ok {
							topPkts = fs.Packets
						}
					}
					return fmt.Sprintf("flows=%d merged_pkts=%d top1_pkts=%d",
						sharded.FlowCount(), sharded.Packets(), topPkts)
				},
			},
		}
	}

	// Panel 1 — exact accounting. Per-queue FIFOs, backpressure-retrying
	// producers and per-queue shards make every tally exact, so this table
	// renders byte-identically at any parallelism and on any host.
	acctArms := arms()
	acctRows := parMap(o, len(acctArms), func(i int) []string {
		a := acctArms[i]
		fwd, con, drp, _, _ := appsDrive(a.procs(), npkts, o.Seed+uint64(1700+i))
		return []string{
			a.name,
			fmt.Sprintf("%d", nQueues),
			fmt.Sprintf("%d", npkts),
			fmt.Sprintf("%d", fwd),
			fmt.Sprintf("%d", con),
			fmt.Sprintf("%d", drp),
			a.tally(),
		}
	})
	acct := &Table{
		ID:      "fig-apps-accounting",
		Title:   fmt.Sprintf("live runner burst path: exact packet accounting, %d pkts over %d RSS queues", npkts, nQueues),
		Columns: []string{"app", "queues", "pkts", "forward", "consume", "drop", "app_counters"},
		Rows:    acctRows,
		Notes: []string{
			"every packet is accounted: producers retry on ring backpressure instead of dropping, each Rx queue feeds its own processor shard behind the runner's per-queue trylock, and the emit callback recycles each mbuf after tallying its verdict",
			"flowatcher runs as flowatcher.NewSharded: per-queue private arena tables, merged exactly at read time — flows= is the deduplicated cross-shard count",
			"tallies are exact counts, so this table is byte-identical at any -par and across hosts; only the full run's throughput panel measures wall-clock",
		},
	}
	tables := []*Table{acct}

	// Panel 2 — measured throughput, native burst vs PerPacket shim. Wall
	// clock is host-dependent, so this panel only renders in full runs
	// (the determinism suite diffs quick output).
	if !o.Quick {
		type mppsArm struct {
			name string
			nat  func() []apps.BurstProcessor
			shim func() []apps.BurstProcessor
		}
		wrap := func(ps []apps.BurstProcessor) []apps.BurstProcessor {
			out := make([]apps.BurstProcessor, len(ps))
			for i, p := range ps {
				out[i] = apps.PerPacket{P: p}
			}
			return out
		}
		mppsArms := []mppsArm{
			{
				name: "l3fwd",
				nat: func() []apps.BurstProcessor {
					return []apps.BurstProcessor{newAppsForwarder(), newAppsForwarder()}
				},
				shim: func() []apps.BurstProcessor {
					return wrap([]apps.BurstProcessor{newAppsForwarder(), newAppsForwarder()})
				},
			},
			{
				name: "flowatcher",
				nat:  func() []apps.BurstProcessor { return flowatcher.NewSharded(nQueues).Procs() },
				shim: func() []apps.BurstProcessor { return wrap(flowatcher.NewSharded(nQueues).Procs()) },
			},
		}
		rows := make([][]string, 0, len(mppsArms))
		for i, a := range mppsArms {
			// Serial on purpose: concurrent deployments would contend for
			// cores and distort each other's measurements.
			_, _, _, natT, natCPU := appsDrive(a.nat(), npkts, o.Seed+uint64(1750+i))
			_, _, _, _, shimCPU := appsDrive(a.shim(), npkts, o.Seed+uint64(1750+i))
			natNs := natCPU * 1e9 / float64(npkts)
			shimNs := shimCPU * 1e9 / float64(npkts)
			rows = append(rows, []string{
				a.name,
				f2(float64(npkts) / natT.Seconds() / 1e6),
				f1(natNs),
				f1(shimNs),
				f2(shimNs / natNs),
			})
		}
		tables = append(tables, &Table{
			ID:      "fig-apps-mpps",
			Title:   "measured live retrieval cost: native burst dispatch vs per-packet shim",
			Columns: []string{"app", "wall_mpps", "burst_cpu_ns_pkt", "shim_cpu_ns_pkt", "cpu_saving_x"},
			Rows:    rows,
			Notes: []string{
				"cpu_ns_pkt is the retrieval threads' summed on-CPU time (telemetry bus ThreadBusy) divided by packets: unlike wall clock — which is producer/ring bound in this harness — it isolates what the dispatch path costs the team",
				"the saving here is diluted by ring dequeue, mbuf recycling and verdict emission riding in the same cycle, so it compresses the pure-dispatch gap gated in BENCH_apps.json (l3fwd >= 2x there)",
				"mbuf plane before/after: producers now lease whole bursts from per-producer mempool caches and the emit path bulk-returns each verdict burst (before: every packet paid two contended mutex acquisitions on one pool lock); the isolated retrieval-path cost is gated in BENCH_mbuf.json at >= 3x over the mutex pool under 4-goroutine contention",
				"ipsecgw is omitted: AES-CBC+HMAC at ~1.4us/pkt saturates the arm on crypto, measuring the cipher rather than the dispatch path",
			},
		})
	}
	return tables
}
