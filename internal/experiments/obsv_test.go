package experiments

import (
	"fmt"
	"strings"
	"testing"

	"metronome/internal/core"
	"metronome/internal/faults"
	"metronome/internal/mbuf"
	"metronome/internal/nic"
	"metronome/internal/obsv"
	"metronome/internal/ring"
	lr "metronome/internal/runtime"
	"metronome/internal/sched"
	"metronome/internal/sim"
	"metronome/internal/telemetry"
	"metronome/internal/traffic"
	"metronome/internal/xrand"
)

// obsvScript is the shared control-plane scenario both substrates replay:
// placement swaps interleaved with every fault-flag family. Each step is
// either a plan (ApplyPlacement) or a fault event (Injector.Apply).
type obsvStep struct {
	plan []int
	ev   *faults.Event
}

func obsvScript() []obsvStep {
	f := func(k faults.Kind, target int) *faults.Event {
		return &faults.Event{Kind: k, Target: target}
	}
	return []obsvStep{
		{plan: []int{2, 1}},
		{ev: f(faults.ThreadStall, 1)},
		{ev: f(faults.QueueBlackout, 0)},
		{plan: []int{1, 2}},
		{ev: f(faults.QueueRecover, 0)},
		{ev: f(faults.ControllerDown, 0)},
		{ev: f(faults.ControllerUp, 0)},
		{plan: []int{2, 2}},
		{ev: f(faults.ThreadRevive, 1)},
	}
}

// signature renders the recorder's event stream clock-free: kinds and
// payloads only, which is what the two substrates must agree on (their
// clocks are incommensurable — virtual seconds vs wall elapsed).
func signature(rec *obsv.Recorder) []string {
	var out []string
	for _, e := range rec.Events(nil) {
		out = append(out, fmt.Sprintf("%s a=%d b=%d", e.Kind, e.A, e.B))
	}
	return out
}

// The flight recorder's substrate-equivalence gate: the same scripted
// control-plane scenario replayed against the sim core and the live runner
// must record the same event kinds with the same payloads in the same
// order. (Timestamps differ by construction — sim virtual time vs
// Runner.Elapsed — and are excluded from the signature.)
func TestObsvSimLiveEquivalence(t *testing.T) {
	script := obsvScript()

	// Sim substrate: a parked core runtime (nothing started — the script
	// drives the control plane directly, so no data-path events interleave).
	simRec := obsv.NewRecorder(256)
	{
		eng := sim.New()
		root := xrand.New(1)
		queues := []*nic.Queue{
			nic.NewQueue(0, traffic.CBR{PPS: 1e6}, root.Split(), nic.DefaultOptions()),
			nic.NewQueue(1, traffic.CBR{PPS: 1e6}, root.Split(), nic.DefaultOptions()),
		}
		cfg := core.DefaultConfig()
		cfg.M = 2
		cfg.Policy = sched.NameRMetronome
		cfg.Seed = 1
		cfg.Bus = telemetry.NewBus(2, 4)
		inj := faults.New(4, 2)
		cfg.Faults = inj
		cfg.Recorder = simRec
		obsv.AttachFaults(inj, simRec)
		r := core.New(eng, queues, cfg)
		for _, s := range script {
			if s.plan != nil {
				r.ApplyPlacement(s.plan)
			} else {
				inj.Apply(*s.ev)
			}
		}
	}

	// Live substrate: an unstarted runner over in-memory rings — the same
	// script against the same control surface.
	liveRec := obsv.NewRecorder(256)
	{
		var queues []lr.RxQueue
		for i := 0; i < 2; i++ {
			rg, err := ring.NewMPMC[*mbuf.Mbuf](64)
			if err != nil {
				t.Fatal(err)
			}
			queues = append(queues, lr.RingQueue{R: rg})
		}
		inj := faults.New(4, 2)
		cfg := lr.Config{Policy: sched.NameRMetronome, Seed: 1, M: 2, Faults: inj, Recorder: liveRec}
		r := lr.New(queues, func(batch []*mbuf.Mbuf) {
			for _, m := range batch {
				m.Free()
			}
		}, cfg)
		obsv.AttachFaults(inj, liveRec)
		for _, s := range script {
			if s.plan != nil {
				r.ApplyPlacement(s.plan)
			} else {
				inj.Apply(*s.ev)
			}
		}
	}

	simSig, liveSig := signature(simRec), signature(liveRec)
	if len(simSig) == 0 {
		t.Fatal("sim substrate recorded nothing")
	}
	if got, want := strings.Join(liveSig, "\n"), strings.Join(simSig, "\n"); got != want {
		t.Errorf("substrates disagree on the recorded sequence:\nsim:\n%s\nlive:\n%s", want, got)
	}
	// Sanity: the script's three effective placements and six fault flips
	// all landed.
	counts := simRec.CountByKind()
	if counts[obsv.EvPlacement] != 3 {
		t.Errorf("recorded %d placements, want 3", counts[obsv.EvPlacement])
	}
	if counts[obsv.EvFault] != 6 {
		t.Errorf("recorded %d fault flips, want 6", counts[obsv.EvFault])
	}
}

// The byte-identity gate: the same seeded elastic run produces the same
// flight recording — rendered bytes included — at any experiment-harness
// parallelism, because sim recordings are a pure function of the seed.
func TestTraceParallelByteIdentity(t *testing.T) {
	run := func(parallel int) (string, string) {
		rec := obsv.NewRecorder(1 << 14)
		stragglerResults(Options{Seed: 1, Quick: true, Parallel: parallel}, rec)
		var text, trace strings.Builder
		if err := rec.WriteText(&text); err != nil {
			t.Fatal(err)
		}
		if err := rec.WriteTrace(&trace); err != nil {
			t.Fatal(err)
		}
		return text.String(), trace.String()
	}
	text1, trace1 := run(1)
	text8, trace8 := run(8)
	if text1 == "" {
		t.Fatal("recorder captured nothing from the elastic arm")
	}
	if text1 != text8 {
		t.Error("WriteText differs between -parallel 1 and 8")
	}
	if trace1 != trace8 {
		t.Error("WriteTrace differs between -parallel 1 and 8")
	}
}
