package experiments

import (
	"bytes"
	"sync/atomic"
	"testing"
)

func TestParMapOrderAndCoverage(t *testing.T) {
	for _, workers := range []int{1, 3, 8, 100} {
		var calls atomic.Int64
		out := parMap(Options{Parallel: workers}, 37, func(i int) int {
			calls.Add(1)
			return i * i
		})
		if calls.Load() != 37 {
			t.Fatalf("workers=%d: fn called %d times, want 37", workers, calls.Load())
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, results not index-ordered", workers, i, v)
			}
		}
	}
}

func TestParMapZeroJobs(t *testing.T) {
	out := parMap(Options{Parallel: 4}, 0, func(i int) int { return i })
	if len(out) != 0 {
		t.Fatalf("len = %d", len(out))
	}
}

// renderAll flattens an experiment's tables to the exact bytes metrobench
// would print.
func renderAll(tabs []*Table) string {
	var buf bytes.Buffer
	for _, tab := range tabs {
		tab.Render(&buf)
	}
	return buf.String()
}

// The acceptance gate for the parallel harness: every sweep renders
// byte-identical output no matter the worker count, because each point is
// an index-seeded self-contained simulation and results are collected by
// index. Covers flattened multi-series sweeps (fig5, fig13), paired-run
// rows (fig14), and ablations.
func TestParallelRunsAreByteIdentical(t *testing.T) {
	ids := []string{"tab1", "fig5", "fig8", "fig13", "fig13-15-rmetronome", "fig14", "fig-elastic", "fig-placement", "fig-apps", "fig-faults", "fig-power", "abl-poisson", "abl-robust", "abl-uniformvac"}
	if testing.Short() {
		// CI runs this under -race where every simulation is ~15x slower;
		// keep one flattened multi-series sweep, one paired-run sweep, the
		// elastic + placement experiments (mid-run resizes and rebalances
		// must stay engine-driven and therefore byte-identical at any
		// parallelism), and fig-apps (live-runner packet accounting must
		// be exact despite goroutine scheduling), fig-faults (injected
		// faults fire as engine events and must order identically), and
		// fig-power (bus histograms and the energy integral ride the same
		// engine clock).
		ids = []string{"fig5", "fig14", "fig-elastic", "fig-placement", "fig-apps", "fig-faults", "fig-power"}
	}
	for _, id := range ids {
		id := id
		t.Run(id, func(t *testing.T) {
			e, ok := ByID(id)
			if !ok {
				t.Fatalf("no experiment %s", id)
			}
			seq := renderAll(e.Run(Options{Quick: true, Seed: 42, Parallel: 1}))
			for _, workers := range []int{4, 16} {
				par := renderAll(e.Run(Options{Quick: true, Seed: 42, Parallel: workers}))
				if par != seq {
					t.Fatalf("parallel=%d output differs from sequential:\n--- sequential ---\n%s\n--- parallel ---\n%s",
						workers, seq, par)
				}
			}
		})
	}
}

// Re-running the same experiment with the same seed must be a pure
// function even when the harness interleaves goroutines differently.
func TestParallelRepeatability(t *testing.T) {
	e, _ := ByID("fig15")
	first := renderAll(e.Run(Options{Quick: true, Seed: 7, Parallel: 8}))
	for run := 1; run < 3; run++ {
		if got := renderAll(e.Run(Options{Quick: true, Seed: 7, Parallel: 8})); got != first {
			t.Fatalf("run %d diverged", run)
		}
	}
}
