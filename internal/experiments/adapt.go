package experiments

import (
	"fmt"
	"strings"

	"metronome/internal/core"
	"metronome/internal/nic"
	"metronome/internal/plot"
	"metronome/internal/sim"
	"metronome/internal/traffic"
	"metronome/internal/xrand"
)

func init() {
	register(Experiment{
		ID:    "fig9",
		Title: "Adaptation to a MoonGen rate ramp: estimated rate, TS, CPU, rho",
		Paper: "Fig 9: estimated rate tracks the offered ramp; TS and CPU adapt in step",
		Run:   runFig9,
	})
}

func runFig9(o Options) []*Table {
	rampDur := 60.0
	sample := 2.0
	if o.Quick {
		rampDur, sample = 12.0, 1.0
	}
	ramp := traffic.Ramp{Peak: 14e6, Duration: rampDur, StepEvery: rampDur / 30}

	cfg := core.DefaultConfig()
	cfg.Seed = o.Seed + 9
	eng := sim.New()
	q := nic.NewQueue(0, ramp, xrand.New(cfg.Seed), nic.DefaultOptions())
	rt := core.New(eng, []*nic.Queue{q}, cfg)
	rt.Start()

	t := &Table{
		ID:    "fig9",
		Title: "time series over the rate sweep",
		Columns: []string{
			"t_s", "offered_mpps", "estimated_mpps", "TS_us", "cpu_pct", "rho",
		},
	}
	var lastBusy float64
	var cancel func()
	cancel = eng.Ticker(sample, "fig9-sample", func() {
		now := eng.Now()
		busy := rt.Acct.TotalBusy()
		cpuPct := (busy - lastBusy) / sample * 100
		lastBusy = busy
		rho := rt.Rho(0)
		est := rho * rt.MuEffective()
		t.Rows = append(t.Rows, []string{
			f1(now), mpps(ramp.Rate(now)), mpps(est), us(rt.TS(0)), pct(cpuPct), f3(rho),
		})
		if now >= rampDur {
			cancel()
		}
	})
	eng.RunUntil(rampDur + 1e-9)

	// A quantitative tracking score: mean absolute estimation error as a
	// fraction of the peak, over the sweep.
	var errSum float64
	var n int
	var xs, offered, estimated []float64
	for _, row := range t.Rows {
		var tt, off, est float64
		fmt.Sscanf(row[0], "%f", &tt)
		fmt.Sscanf(row[1], "%f", &off)
		fmt.Sscanf(row[2], "%f", &est)
		xs = append(xs, tt)
		offered = append(offered, off)
		estimated = append(estimated, est)
		errSum += abs(off - est)
		n++
	}
	if n > 0 {
		t.Notes = append(t.Notes, fmt.Sprintf(
			"mean |offered-estimated| = %.2f Mpps over the sweep (peak 14)", errSum/float64(n)))
	}
	var chart strings.Builder
	plot.Series{
		Title:   "Fig 9a: offered vs estimated rate over the sweep",
		XLabel:  "time (s)",
		YLabel:  "offered Mpps",
		Y2Label: "estimated Mpps",
		X:       xs,
		Y:       offered,
		Y2:      estimated,
	}.Render(&chart)
	t.Charts = append(t.Charts, chart.String())
	return []*Table{t}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
