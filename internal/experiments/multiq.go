package experiments

import (
	"fmt"

	"metronome/internal/core"
	"metronome/internal/power"
	"metronome/internal/traffic"
)

func init() {
	register(Experiment{
		ID:    "fig13",
		Title: "Multiqueue CPU and power: 2/3/4 queues x performance/ondemand",
		Paper: "Fig 13: Metronome saves CPU everywhere; power gain grows with queue count; ondemand trades CPU for watts",
		Run:   runFig13,
	})
	register(Experiment{
		ID:    "fig14",
		Title: "Busy tries and rho vs thread count for 2/3/4 queues",
		Paper: "Fig 14: busy tries grow with threads; rho falls with more queues; ondemand raises rho",
		Run:   runFig14,
	})
	register(Experiment{
		ID:    "fig15",
		Title: "CPU and power vs offered rate, 4 queues, M=5",
		Paper: "Fig 15: Metronome saves >50% CPU at 37 Mpps and 2-3 W under performance",
		Run:   runFig15,
	})
	register(Experiment{
		ID:    "tab3",
		Title: "Unbalanced traffic across 3 queues (30% single flow + 70% random)",
		Paper: "Table III: hot queue has highest busy-try%% and rho, and fewest total tries",
		Run:   runTab3,
	})
}

// xl710Rate is the XL710's 37 Mpps 64B processing ceiling (spec update
// clarification cited by the paper).
const xl710Rate = 37e6

// multiqueueSpec builds an N-queue even-split CBR deployment.
func multiqueueSpec(o Options, nq, m int, totalPPS, d float64, seedOff uint64) runSpec {
	cfg := core.DefaultConfig()
	cfg.M = m
	cfg.VBar = 15e-6
	procs := make([]traffic.Process, nq)
	for i := range procs {
		procs[i] = traffic.CBR{PPS: totalPPS / float64(nq)}
	}
	return runSpec{
		cfg:    cfg,
		policy: overridePolicy(o, cfg),
		procs:  procs,
		dur:    d,
		warmup: d * 0.2,
		seed:   o.Seed + seedOff,
	}
}

func runFig13(o Options) []*Table {
	d := dur(o, 0.6)
	pc := power.DefaultConfig()
	// Flatten governor x queue-count x thread-count into one job list: each
	// point is an independent governor fixed-point (up to 6 simulations), so
	// this is the sweep that profits most from the worker pool.
	type point struct {
		gov power.Governor
		nq  int
		m   int
	}
	var pts []point
	for _, gov := range []power.Governor{power.Performance, power.Ondemand} {
		for _, nq := range []int{2, 3, 4} {
			for m := nq; m <= 8; m++ {
				pts = append(pts, point{gov, nq, m})
			}
		}
	}
	rows := parMap(o, len(pts), func(i int) []string {
		p := pts[i]
		spec := multiqueueSpec(o, p.nq, p.m, xl710Rate, d, uint64(800+p.nq*10+p.m))
		met, watts, _ := governorPower(pc, p.gov, spec)
		return []string{
			fmt.Sprintf("%d", p.m),
			pct(met.CPUPercent),
			f1(watts),
			pct(100 * float64(p.nq)),
			f1(staticPower(pc, p.gov, p.nq)),
		}
	})
	var tables []*Table
	for i := 0; i < len(pts); {
		p := pts[i]
		t := &Table{
			ID:    fmt.Sprintf("fig13-%dq-%s", p.nq, p.gov),
			Title: fmt.Sprintf("%d queues, %s governor, 37 Mpps", p.nq, p.gov),
			Columns: []string{
				"threads", "cpu_pct", "power_w", "static_cpu_pct", "static_power_w",
			},
		}
		for ; i < len(pts) && pts[i].gov == p.gov && pts[i].nq == p.nq; i++ {
			t.Rows = append(t.Rows, rows[i])
		}
		tables = append(tables, t)
	}
	return tables
}

func runFig14(o Options) []*Table {
	d := dur(o, 0.6)
	pc := power.DefaultConfig()
	type point struct{ nq, m int }
	var pts []point
	for _, nq := range []int{2, 3, 4} {
		for m := nq; m <= 8; m++ {
			pts = append(pts, point{nq, m})
		}
	}
	rows := parMap(o, len(pts), func(i int) []string {
		p := pts[i]
		specP := multiqueueSpec(o, p.nq, p.m, xl710Rate, d, uint64(900+p.nq*10+p.m))
		_, mp := runMetronome(specP)
		// ondemand: rerun at the governor's frequency fixed point.
		specO := multiqueueSpec(o, p.nq, p.m, xl710Rate, d, uint64(900+p.nq*10+p.m))
		mo, _, _ := governorPower(pc, power.Ondemand, specO)
		return []string{
			fmt.Sprintf("%d", p.m),
			pct(mp.BusyTryFrac * 100), f3(meanOf(mp.RhoEst)),
			pct(mo.BusyTryFrac * 100), f3(meanOf(mo.RhoEst)),
		}
	})
	var tables []*Table
	for i := 0; i < len(pts); {
		nq := pts[i].nq
		t := &Table{
			ID:    fmt.Sprintf("fig14-%dq", nq),
			Title: fmt.Sprintf("busy tries and rho, %d queues, 37 Mpps", nq),
			Columns: []string{
				"threads", "busy_tries_pct_perf", "rho_perf", "busy_tries_pct_od", "rho_od",
			},
		}
		for ; i < len(pts) && pts[i].nq == nq; i++ {
			t.Rows = append(t.Rows, rows[i])
		}
		tables = append(tables, t)
	}
	tables[0].Notes = append(tables[0].Notes,
		"ondemand lowers the frequency, stretching busy periods: rho and busy tries rise (Sec. V-F.2)",
	)
	return tables
}

func runFig15(o Options) []*Table {
	d := dur(o, 0.6)
	pc := power.DefaultConfig()
	t := &Table{
		ID:    "fig15",
		Title: "4 queues, M=5, V̄=15us, performance governor",
		Columns: []string{
			"rate_mpps", "met_cpu_pct", "met_power_w", "static_cpu_pct", "static_power_w", "loss_permille",
		},
	}
	ratesPPS := []float64{37e6, 30e6, 20e6, 15e6, 10e6, 0}
	t.Rows = parMap(o, len(ratesPPS), func(i int) []string {
		spec := multiqueueSpec(o, 4, 5, ratesPPS[i], d, uint64(1000+i))
		met, watts, _ := governorPower(pc, power.Performance, spec)
		return []string{
			mpps(ratesPPS[i]), pct(met.CPUPercent), f1(watts),
			"400.0", f1(staticPower(pc, power.Performance, 4)),
			permille(met.LossRate),
		}
	})
	return []*Table{t}
}

func runTab3(o Options) []*Table {
	d := dur(o, 5.0) // the paper ran 3 minutes; shapes stabilise much sooner
	shares := traffic.UnbalancedShares(0.30, 3)
	cfg := core.DefaultConfig()
	cfg.M = 5
	cfg.VBar = 15e-6

	procs := make([]traffic.Process, 3)
	for i, s := range shares {
		procs[i] = traffic.CBR{PPS: xl710Rate * s}
	}
	spec := runSpec{cfg: cfg, policy: overridePolicy(o, cfg), procs: procs, dur: d, warmup: d * 0.1, seed: o.Seed + 1100}
	rt, _ := runMetronome(spec)
	t := &Table{
		ID:      "tab3",
		Title:   "unbalanced traffic, 3 queues, line rate",
		Columns: []string{"queue", "share_pct", "busy_tries_pct", "total_tries", "rho"},
	}
	for i := range procs {
		busyPct := 0.0
		if rt.TriesQ[i] > 0 {
			busyPct = float64(rt.BusyTriesQ[i]) / float64(rt.TriesQ[i]) * 100
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("#%d", i+1),
			pct(shares[i] * 100),
			pct(busyPct),
			fmt.Sprintf("%d", rt.TriesQ[i]),
			f3(rt.Rho(i)),
		})
	}
	t.Notes = append(t.Notes,
		"the hot queue (53% of traffic) completes fewest cycles and carries the highest rho, as in Table III",
	)
	return []*Table{t}
}
