package experiments

import (
	"fmt"

	"metronome/internal/baseline"
	"metronome/internal/core"
	"metronome/internal/power"
	"metronome/internal/traffic"
)

func init() {
	register(Experiment{
		ID:    "fig10",
		Title: "l3fwd: latency boxplots and CPU — static DPDK vs Metronome vs XDP",
		Paper: "Fig 10: DPDK ~7us tight; Metronome ~2x latency but 40%+ CPU savings; XDP most CPU, worst at line rate",
		Run:   runFig10,
	})
	register(Experiment{
		ID:    "fig11",
		Title: "Power vs CPU for ondemand/performance governors",
		Paper: "Fig 11: Metronome beats static under both governors except 10G/performance; max gain ~27% at idle/ondemand",
		Run:   runFig11,
	})
}

// xdpCores reproduces the paper's deployment note: 4 cores at 10/5 Gbps, 1
// core at 1/0.5 Gbps (the minimum not to lose packets on their X520).
func xdpCores(gbps float64) int {
	if gbps >= 5 {
		return 4
	}
	return 1
}

func runFig10(o Options) []*Table {
	d := dur(o, 1.0)
	lat := &Table{
		ID:    "fig10a",
		Title: "latency boxplots (us)",
		Columns: []string{
			"rate_gbps", "system", "min", "q1", "median", "q3", "max", "mean",
		},
	}
	cpu := &Table{
		ID:      "fig10b",
		Title:   "total CPU usage (%)",
		Columns: []string{"rate_gbps", "static", "metronome", "xdp", "xdp_cores"},
	}
	gbpss := []float64{10, 5, 1, 0.5}
	type fig10Row struct {
		lat [3][]string
		cpu []string
	}
	rows := parMap(o, len(gbpss), func(i int) fig10Row {
		gbps := gbpss[i]
		pps := traffic.Rate64B(gbps)
		cfg := core.DefaultConfig()
		_, met := singleQueueCBR(o, cfg, pps, d, o.Seed+uint64(500+i))
		st := baseline.Static(baseline.DefaultStatic(), pps)
		xd := baseline.XDP(baseline.DefaultXDP(), pps, xdpCores(gbps))

		box := func(name string, b [6]float64) []string {
			return []string{
				f1(gbps), name, us(b[0]), us(b[1]), us(b[2]), us(b[3]), us(b[4]), us(b[5]),
			}
		}
		return fig10Row{
			lat: [3][]string{
				box("static", [6]float64{st.Latency.Min, st.Latency.Q1, st.Latency.Median, st.Latency.Q3, st.Latency.Max, st.Latency.Mean}),
				box("metronome", [6]float64{met.Latency.Min, met.Latency.Q1, met.Latency.Median, met.Latency.Q3, met.Latency.Max, met.Latency.Mean}),
				box("xdp", [6]float64{xd.Latency.Min, xd.Latency.Q1, xd.Latency.Median, xd.Latency.Q3, xd.Latency.Max, xd.Latency.Mean}),
			},
			cpu: []string{
				f1(gbps), pct(st.CPUPercent), pct(met.CPUPercent), pct(xd.CPUPercent),
				fmt.Sprintf("%d", xd.CoresUsed),
			},
		}
	})
	for _, r := range rows {
		lat.Rows = append(lat.Rows, r.lat[0], r.lat[1], r.lat[2])
		cpu.Rows = append(cpu.Rows, r.cpu)
	}
	cpu.Notes = append(cpu.Notes,
		"paper: Metronome ~60% at line rate, ~18.6% at 0.5Gbps; static pinned at 100%",
	)
	return []*Table{lat, cpu}
}

func runFig11(o Options) []*Table {
	d := dur(o, 1.0)
	pc := power.DefaultConfig()
	govs := []power.Governor{power.Ondemand, power.Performance}
	gbpss := []float64{10, 1, 0}
	rows := parMap(o, len(govs)*len(gbpss), func(j int) [2][]string {
		gov, gbps, i := govs[j/len(gbpss)], gbpss[j%len(gbpss)], j%len(gbpss)
		pps := traffic.Rate64B(gbps)
		cfg := core.DefaultConfig()
		spec := runSpec{
			cfg:    cfg,
			policy: overridePolicy(o, cfg),
			procs:  []traffic.Process{traffic.CBR{PPS: pps}},
			dur:    d,
			warmup: d * 0.2,
			seed:   o.Seed + uint64(600+i),
		}
		met, watts, freq := governorPower(pc, gov, spec)
		// CPU accounting convention matches the paper: under ondemand
		// the same work takes more of a slower core.
		return [2][]string{
			{f1(gbps), "metronome", pct(met.CPUPercent), f1(watts), f2(freq)},
			{f1(gbps), "static", "100.0", f1(staticPower(pc, gov, 1)), f2(pc.SteadyFreq(gov, 1))},
		}
	})
	var tables []*Table
	for gi, gov := range govs {
		t := &Table{
			ID:    "fig11-" + gov.String(),
			Title: fmt.Sprintf("power vs CPU, %s governor", gov),
			Columns: []string{
				"rate_gbps", "system", "cpu_pct", "power_w", "freq_ghz",
			},
		}
		for _, pair := range rows[gi*len(gbpss) : (gi+1)*len(gbpss)] {
			t.Rows = append(t.Rows, pair[0], pair[1])
		}
		tables = append(tables, t)
	}
	tables[len(tables)-1].Notes = append(tables[len(tables)-1].Notes,
		"a fully-busy poller pins its core at FMax under either governor",
	)
	return tables
}
