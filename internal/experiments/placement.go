package experiments

import (
	"fmt"
	"strings"

	"metronome/internal/elastic"
	"metronome/internal/sched"
	"metronome/internal/traffic"
)

func init() {
	register(Experiment{
		ID:    "fig-placement",
		Title: "Placement plane: per-queue elastic placement vs scalar team elasticity",
		Paper: "Beyond the paper: the multiqueue results (Sec. 4.3, Table III) show *where* threads sit matters as much as how many there are — an unbalanced flow shift starves one queue's service group while siblings idle. This experiment drives a hot-queue migration against (a) a static balanced team, (b) PR 4's scalar team-elastic controller, and (c) the placement plane (per-queue apportionment by wake-occupancy share), plus a ramp panel isolating the EWMA-slope feedforward that pre-provisions on rising edges",
		Run:   runPlacement,
	})
}

// placementMode is one comparison arm of the placement panels.
type placementMode struct {
	name   string
	m      int
	policy string
	ecfg   *elastic.Config
}

// placementTuning builds the controller the placement arms share; placed
// upgrades the same tuning to the placement law so team-elastic and
// placement-elastic differ in exactly one bit. The occupancy target stays
// at the default 0.10: the hot queue's structural wake occupancy
// (λ·V̄ ≈ 300 of 4096 slots) sits below it, so the size law only grows on
// *loss* — which is exactly what a good placement prevents.
func placementTuning(minThreads, budget int, placed bool) *elastic.Config {
	ec := elastic.DefaultConfig(minThreads, budget)
	ec.Placement = placed
	if placed {
		ec.SlopeGain = 8
	}
	return &ec
}

// plan renders a per-queue int vector as "a/b/c".
func plan(sizes []int) string {
	if len(sizes) == 0 {
		return "-"
	}
	parts := make([]string, len(sizes))
	for i, s := range sizes {
		parts[i] = fmt.Sprintf("%d", s)
	}
	return strings.Join(parts, "/")
}

// planMS renders per-queue thread-seconds as thread-milliseconds "a/b/c".
func planMS(ts []float64) string {
	parts := make([]string, len(ts))
	for i, v := range ts {
		parts[i] = fmt.Sprintf("%.1f", v*1e3)
	}
	return strings.Join(parts, "/")
}

// placementRow runs one arm and renders loss/CPU/vacation, the provisioning
// account, and the per-queue placement evidence (final plan + per-queue
// provisioned thread-milliseconds).
func placementRow(mode placementMode, procs []traffic.Process, d, warmup float64, seed uint64) []string {
	rt, met, rep := runMetronomeElastic(elasticSpec(mode.policy, mode.m, procs, d, warmup, seed, mode.ecfg))
	end := rt.Eng.Now()
	return []string{
		mode.name,
		permille(met.LossRate),
		pct(met.CPUPercent),
		pct(met.BusyTryFrac * 100),
		us(met.MeanVacation),
		f1(rep.ThreadSeconds * 1e3),
		f2(rep.MeanThreads),
		fmt.Sprintf("%d", rep.Resizes),
		fmt.Sprintf("%d", rep.Rebalances),
		plan(rt.Placement()),
		planMS(rt.ProvisionedThreadSecondsQ(end)),
	}
}

var placementColumns = []string{
	"mode", "loss_permille", "cpu_pct", "busy_tries_pct", "V_us",
	"thread_ms", "mean_M", "resizes", "rebalances", "plan", "q_thread_ms",
}

func runPlacement(o Options) []*Table {
	d := dur(o, 0.8)
	warmup := 0.25 * d

	// Panel 1 — hot-queue migration at constant total offered load: 36 Mpps
	// over 4 queues whose hot flow (55%) migrates from queue 0 to queue 3
	// mid-window. The balanced plan is structurally unable to staff this
	// shape below the full budget — BalancedPlacement(6, 4) = 2/2/1/1, so
	// once the hot flow lands on queue 3 its lone attendant eats every
	// wake-delay tail alone (a ~200 us outage at ~20 Mpps overflows even a
	// 4096-descriptor ring) while queues 0 and 1 idle two members each.
	// The scalar controller's only remedy is growing the whole team until
	// round-robin finally hands queue 3 a second member; the placement law
	// migrates the idle members instead.
	shiftAt := 0.55 * d
	share := func(before, after float64) traffic.Process {
		return traffic.Step{At: shiftAt,
			Before: traffic.CBR{PPS: 36e6 * before},
			After:  traffic.CBR{PPS: 36e6 * after}}
	}
	shiftProcs := []traffic.Process{
		share(0.55, 0.15), share(0.15, 0.15), share(0.15, 0.15), share(0.15, 0.55),
	}
	shiftModes := []placementMode{
		// With MinThreads = Budget = 6 the size law is inert, so the first
		// two arms spend *identical* thread-seconds: team-elastic-6 cannot
		// actuate at all (it IS the static balanced plan), while
		// placement-6 may only migrate members. Any loss gap between them
		// is placement, nothing else. The 4..8 arms then let the size law
		// run on top.
		{name: "team-elastic-6 (=static)", m: 6, policy: sched.NameRMetronome,
			ecfg: placementTuning(6, 6, false)},
		{name: "placement-6", m: 6, policy: sched.NameRMetronome,
			ecfg: placementTuning(6, 6, true)},
		{name: "team-elastic-4..8", m: 6, policy: sched.NameRMetronome,
			ecfg: placementTuning(4, 8, false)},
		{name: "placement-elastic-4..8", m: 6, policy: sched.NameRMetronome,
			ecfg: placementTuning(4, 8, true)},
	}
	// All arms share one seed: the traffic and wake-delay-tail realisations
	// are identical, so the rows are a paired comparison of pure actuation
	// policy (static vs scalar vs placement), not of noise draws.
	shiftRows := parMap(o, len(shiftModes), func(i int) []string {
		return placementRow(shiftModes[i], shiftProcs, d, warmup, o.Seed+1600)
	})
	shift := &Table{
		ID:      "fig-placement-shift",
		Title:   "hot-queue migration (55% of 36 Mpps moves queue 0 -> 3), 4 queues, rmetronome, V̄=15us, noisy host",
		Columns: placementColumns,
		Rows:    shiftRows,
		Notes: []string{
			"total offered load is constant and the balanced split is the bottleneck: 6 threads over 4 queues leaves queues 2 and 3 with one-member groups, so the migrated hot flow's wake-delay tails go uncovered — the scalar law's only remedy is growing the whole team, the placement law re-homes the idle members instead",
			"the first two arms spend identical thread-seconds by construction (MinThreads=Budget pins the size law), so their loss gap is pure placement: member migration alone covers the hot queue's tails",
			"plan is the final per-queue group sizes; q_thread_ms the exact per-queue ∫r_q(t)dt provisioning split",
		},
	}

	// Panel 2 — rising-edge feedforward: a compressed diurnal sine swings
	// each queue between ~1 and ~23 Mpps, so every period has one steep
	// climb. The plain PI only reacts once the ring has already filled
	// past target; the EWMA-slope feedforward reads the edge from
	// d(occupancy)/dt and pre-provisions while the ramp is still climbing.
	rampProcs := []traffic.Process{
		traffic.Sine{Base: 12e6, Amp: 11e6, Period: 0.25 * d},
		traffic.Sine{Base: 12e6, Amp: 11e6, Period: 0.25 * d},
	}
	edgeTuning := func(gain float64) *elastic.Config {
		ec := elastic.DefaultConfig(2, 8)
		// The edge panel keeps PR 4's tight 3% occupancy target: here the
		// point is reacting to the climb itself, so occupancy must cross
		// target well before the ring is in danger.
		ec.TargetOccupancy = 0.03
		ec.SlopeGain = gain
		return &ec
	}
	rampModes := []placementMode{
		{name: "static-8", m: 8, policy: sched.NameAdaptive},
		{name: "elastic-pi-2..8", m: 2, policy: sched.NameAdaptive, ecfg: edgeTuning(0)},
		{name: "elastic-pi+ff-2..8", m: 2, policy: sched.NameAdaptive, ecfg: edgeTuning(16)},
	}
	rampRows := parMap(o, len(rampModes), func(i int) []string {
		return placementRow(rampModes[i], rampProcs, d, warmup, o.Seed+1620)
	})
	ramp := &Table{
		ID:      "fig-placement-ramp",
		Title:   "rising-edge feedforward (sine 2..46 Mpps total over 2 queues), adaptive, V̄=15us",
		Columns: placementColumns,
		Rows:    rampRows,
		Notes: []string{
			"the pi+ff arm adds the EWMA occupancy-slope feedforward (SlopeGain lookahead periods) to the proportional path only, so it pre-provisions on the climb but unwinds at the plain PI rate after the crest",
			"all arms share one seed, so the rows are a paired comparison under identical noise",
		},
	}

	return []*Table{shift, ramp}
}
