package experiments

import (
	"fmt"

	"metronome/internal/core"
	"metronome/internal/hrtimer"
	"metronome/internal/nic"
	"metronome/internal/sched"
	"metronome/internal/traffic"
)

func init() {
	register(Experiment{
		ID:    "abl-timeouts",
		Title: "Ablation: equal timeouts (TS=TL) vs primary/backup split",
		Paper: "Motivates Sec. IV-A: equal timeouts waste wakeups as load grows",
		Run:   runAblTimeouts,
	})
	register(Experiment{
		ID:    "abl-adaptive",
		Title: "Ablation: adaptive TS (eq 13) vs fixed TS under changing load",
		Paper: "The adaptation is what holds E[V] at the target across loads",
		Run:   runAblAdaptive,
	})
	register(Experiment{
		ID:    "abl-backup",
		Title: "Ablation: random vs sticky backup queue selection (multiqueue)",
		Paper: "Sec. IV-E argues random re-targeting decorrelates and spreads checks",
		Run:   runAblBackup,
	})
	register(Experiment{
		ID:    "abl-policy",
		Title: "Ablation: scheduling disciplines (adaptive vs fixed vs busypoll)",
		Paper: "Fig 10's three systems recast as sched policies in the one engine",
		Run:   runAblPolicy,
	})
	register(Experiment{
		ID:    "abl-uniformvac",
		Title: "Ablation: uniform-vacation (load-blind eq. 6 inversion) vs adaptive TS",
		Paper: "Isolates what the eq. (11) load estimator buys on top of the closed-form timeout rule: uniformvac pins TS by inverting the high-load eq. (6) once and never consults rho, so it matches adaptive near saturation but over-polls as load falls (the vacation collapses below target and CPU rises for nothing)",
		Run:   runAblUniformVac,
	})
	register(Experiment{
		ID:    "abl-txbatch",
		Title: "Ablation: Tx batch 32 vs 1 at low rate (latency tail fix of Sec. V-C)",
		Paper: "Batch=1 removes the Tx-buffer hold, cutting mean and variance at low rates",
		Run:   runAblTxBatch,
	})
	register(Experiment{
		ID:    "abl-sleep",
		Title: "Ablation: hr_sleep vs nanosleep as the runtime's sleep service",
		Paper: "Sec. III-A: hr_sleep buys a small, consistent edge",
		Run:   runAblSleep,
	})
}

func runAblTimeouts(o Options) []*Table {
	d := dur(o, 1.0)
	t := &Table{
		ID:      "abl-timeouts",
		Title:   "line rate, M=3",
		Columns: []string{"policy", "busy_tries_pct", "cpu_pct", "loss_permille"},
	}
	t.Rows = parMap(o, 2, func(i int) []string {
		if i == 0 {
			eq := core.DefaultConfig()
			eq.Adaptive = false
			eq.TSFixed = 10e-6
			eq.TL = 10e-6
			_, meq := singleQueueCBR(o, eq, traffic.Rate64B(10), d, o.Seed+1300)
			return []string{"equal_TS=TL=10us", pct(meq.BusyTryFrac * 100), pct(meq.CPUPercent), permille(meq.LossRate)}
		}
		sp := core.DefaultConfig()
		// The timeout split IS this experiment's axis: pin the discipline so
		// a global -policy override cannot mislabel the row.
		sp.Policy = sched.NameAdaptive
		_, msp := singleQueueCBR(o, sp, traffic.Rate64B(10), d, o.Seed+1301)
		return []string{"split_TS/TL=500us", pct(msp.BusyTryFrac * 100), pct(msp.CPUPercent), permille(msp.LossRate)}
	})
	return []*Table{t}
}

func runAblAdaptive(o Options) []*Table {
	d := dur(o, 1.0)
	t := &Table{
		ID:      "abl-adaptive",
		Title:   "mean vacation across loads, target V̄=10us",
		Columns: []string{"rate_gbps", "adaptive_V_us", "fixed_TS10_V_us"},
	}
	gbpss := []float64{10, 5, 1, 0.5}
	t.Rows = parMap(o, len(gbpss), func(i int) []string {
		gbps := gbpss[i]
		ad := core.DefaultConfig()
		// Adaptive-vs-fixed IS this experiment's axis: pin both arms.
		ad.Policy = sched.NameAdaptive
		_, ma := singleQueueCBR(o, ad, traffic.Rate64B(gbps), d, o.Seed+uint64(1310+i))
		fx := core.DefaultConfig()
		fx.Adaptive = false
		fx.TSFixed = 10e-6
		_, mf := singleQueueCBR(o, fx, traffic.Rate64B(gbps), d, o.Seed+uint64(1320+i))
		return []string{f1(gbps), us(ma.MeanVacation), us(mf.MeanVacation)}
	})
	t.Notes = append(t.Notes,
		"fixed TS over-polls at low load (V collapses toward TS/M) where adaptive holds the target",
	)
	return []*Table{t}
}

func runAblBackup(o Options) []*Table {
	d := dur(o, 1.0)
	t := &Table{
		ID:      "abl-backup",
		Title:   "3 queues, unbalanced traffic, M=5",
		Columns: []string{"policy", "busy_tries_pct", "cpu_pct", "loss_permille", "max_queue_rho"},
	}
	shares := traffic.UnbalancedShares(0.30, 3)
	build := func(sticky bool, seed uint64) (string, []string) {
		cfg := core.DefaultConfig()
		cfg.M = 5
		cfg.VBar = 15e-6
		// The backup-selection axis under study belongs to the discipline,
		// so pin it: a global -policy override would erase the contrast.
		cfg.Policy = sched.NameAdaptive
		cfg.BackupSticky = sticky
		procs := make([]traffic.Process, 3)
		for i, s := range shares {
			procs[i] = traffic.CBR{PPS: xl710Rate * s}
		}
		rt, m := runMetronome(runSpec{cfg: cfg, procs: procs, dur: d, warmup: d * 0.2, seed: seed})
		maxRho := 0.0
		for q := range procs {
			if rt.Rho(q) > maxRho {
				maxRho = rt.Rho(q)
			}
		}
		name := "random"
		if sticky {
			name = "sticky"
		}
		return name, []string{name, pct(m.BusyTryFrac * 100), pct(m.CPUPercent), permille(m.LossRate), f3(maxRho)}
	}
	t.Rows = parMap(o, 2, func(i int) []string {
		_, row := build(i == 1, o.Seed+uint64(1330+i))
		return row
	})
	return []*Table{t}
}

func runAblPolicy(o Options) []*Table {
	d := dur(o, 0.5)
	var tables []*Table
	gbpss := []float64{10, 1}
	policies := []string{sched.NameAdaptive, sched.NameFixed, sched.NameBusyPoll}
	rows := parMap(o, len(gbpss)*len(policies), func(j int) []string {
		gi, pi := j/len(policies), j%len(policies)
		cfg := core.DefaultConfig()
		cfg.Policy = policies[pi]
		cfg.TSFixed = 10e-6 // the fixed discipline pins TS at the target
		_, m := singleQueueCBR(o, cfg, traffic.Rate64B(gbpss[gi]), d,
			o.Seed+uint64(1400+10*gi+pi))
		return []string{
			policies[pi], pct(m.CPUPercent), us(m.Latency.Mean),
			us(m.MeanVacation), permille(m.LossRate),
		}
	})
	for gi, gbps := range gbpss {
		t := &Table{
			ID:      "abl-policy",
			Title:   fmt.Sprintf("disciplines at %.0f Gbps, M=3, V̄=10us", gbps),
			Columns: []string{"policy", "cpu_pct", "lat_mean_us", "measured_V_us", "loss_permille"},
			Rows:    rows[gi*len(policies) : (gi+1)*len(policies)],
		}
		t.Notes = append(t.Notes,
			"busypoll is Listing 1 inside the shared engine: ~100% CPU per thread, vacation ~ the wake overhead",
		)
		tables = append(tables, t)
	}
	return tables
}

func runAblUniformVac(o Options) []*Table {
	d := dur(o, 1.0)
	t := &Table{
		ID:      "abl-uniformvac",
		Title:   "mean vacation and CPU across loads, target V̄=10us, M=3",
		Columns: []string{"rate_gbps", "adaptive_V_us", "uniformvac_V_us", "adaptive_cpu_pct", "uniformvac_cpu_pct"},
	}
	gbpss := []float64{10, 5, 1, 0.5}
	t.Rows = parMap(o, len(gbpss), func(i int) []string {
		gbps := gbpss[i]
		ad := core.DefaultConfig()
		// The load-adaptivity axis IS this experiment: pin both arms so a
		// global -policy override cannot erase the contrast.
		ad.Policy = sched.NameAdaptive
		_, ma := singleQueueCBR(o, ad, traffic.Rate64B(gbps), d, o.Seed+uint64(1360+i))
		uv := core.DefaultConfig()
		uv.Policy = sched.NameUniformVac
		_, mu := singleQueueCBR(o, uv, traffic.Rate64B(gbps), d, o.Seed+uint64(1370+i))
		return []string{f1(gbps), us(ma.MeanVacation), us(mu.MeanVacation),
			pct(ma.CPUPercent), pct(mu.CPUPercent)}
	})
	t.Notes = append(t.Notes,
		"uniformvac sleeps the high-load eq. (6) inversion at every load: near line rate it shadows adaptive, at light load its vacation collapses toward TS/(M+1) while adaptive stretches TS to hold the target",
	)
	return []*Table{t}
}

func runAblTxBatch(o Options) []*Table {
	d := dur(o, 1.0)
	t := &Table{
		ID:      "abl-txbatch",
		Title:   "1 Gbps, V̄=10us",
		Columns: []string{"tx_batch", "lat_mean_us", "lat_std_us", "lat_max_us", "cpu_pct"},
	}
	batches := []int{32, 1}
	t.Rows = parMap(o, len(batches), func(i int) []string {
		batch := batches[i]
		cfg := core.DefaultConfig()
		// batch=1 costs a few percent CPU at the NIC (Sec. V-C reports
		// 2-3% at line rate); charge it through a slightly lower mu.
		if batch == 1 {
			cfg.Mu *= 0.97
		}
		_, m := runMetronome(runSpec{
			cfg:    cfg,
			policy: overridePolicy(o, cfg),
			optFn:  func(opt *nic.Options) { opt.TxBatch = batch },
			procs:  []traffic.Process{traffic.CBR{PPS: traffic.Rate64B(1)}},
			dur:    d, warmup: d * 0.2,
			seed: o.Seed + uint64(1340+batch),
		})
		return []string{
			fmt.Sprintf("%d", batch), us(m.Latency.Mean), us(m.LatencyStd), us(m.Latency.Max), pct(m.CPUPercent),
		}
	})
	return []*Table{t}
}

func runAblSleep(o Options) []*Table {
	d := dur(o, 1.0)
	t := &Table{
		ID:      "abl-sleep",
		Title:   "line rate, M=3, V̄=10us",
		Columns: []string{"service", "measured_V_us", "lat_mean_us", "cpu_pct"},
	}
	services := []hrtimer.Service{hrtimer.HRSleep, hrtimer.Nanosleep, hrtimer.HRSleepPatched}
	t.Rows = parMap(o, len(services), func(i int) []string {
		cfg := core.DefaultConfig()
		cfg.Sleep = services[i]
		_, m := singleQueueCBR(o, cfg, traffic.Rate64B(10), d, o.Seed+uint64(1350+i))
		return []string{services[i].String(), us(m.MeanVacation), us(m.Latency.Mean), pct(m.CPUPercent)}
	})
	return []*Table{t}
}
