package experiments

import (
	"fmt"

	"metronome/internal/core"
	"metronome/internal/cpu"
	"metronome/internal/traffic"
)

func init() {
	register(Experiment{
		ID:    "abl-robust",
		Title: "Robustness: interfered threads vs thread count (the Sec. V-E case for M>1)",
		Paper: "Sec V-E: one Metronome thread on a ferret-loaded core barely matters with M=3; a single-thread deployment collapses",
		Run:   runAblRobust,
	})
}

// CFS treats a duty-cycled sleeper kindly: on wake it carries sleeper
// credit and preempts a CPU hog almost immediately — Metronome's pattern
// is exactly what the scheduler rewards, which is the deep reason Sec. V-E
// works. A thread only starves when its CPU duty exceeds the fair share a
// continuously-runnable competitor concedes (~50% at equal group weight):
// then vruntime debt accumulates and wakeups wait out whole timeslices.

// politeWake is the under-fair-share regime: dispatch costs a preemption
// plus a rare sub-millisecond tail (cgroup placement, cache refill).
func politeWake() cpu.WakeConfig {
	w := cpu.DefaultWakeConfig()
	w.PreemptDelay = 8e-6
	w.TailProb = 2e-5
	w.TailMu = -8.1 // median ~0.3 ms
	w.TailSigma = 0.5
	return w
}

// starvedWake is the over-fair-share regime: the thread burns its sleeper
// credit and repeatedly waits out multi-millisecond CFS slices.
func starvedWake() cpu.WakeConfig {
	w := cpu.DefaultWakeConfig()
	w.PreemptDelay = 60e-6
	w.TailProb = 0.02
	w.TailMu = -6.2 // median ~2 ms
	w.TailSigma = 0.5
	return w
}

// wakeForDuty picks the regime from the thread's expected CPU duty
// (rho/M at the offered load) against the fair share.
func wakeForDuty(duty float64) cpu.WakeConfig {
	if duty > cpu.FairShare(cpu.NiceWeight(0), cpu.NiceWeight(0)) {
		return starvedWake()
	}
	return politeWake()
}

func runAblRobust(o Options) []*Table {
	d := dur(o, 1.0)
	t := &Table{
		ID:    "abl-robust",
		Title: "line rate, ferret hogging the first thread's core",
		Columns: []string{
			"config", "hogged_threads", "loss_permille", "tput_mpps", "mean_V_us",
		},
	}
	cases := []struct {
		name      string
		m, hogged int
		seed      uint64
	}{
		{"M=1_alone", 1, 0, o.Seed + 1400},
		{"M=1_hogged", 1, 1, o.Seed + 1401},
		{"M=3_one_hogged", 3, 1, o.Seed + 1402},
		{"M=3_all_hogged", 3, 3, o.Seed + 1403},
	}
	t.Rows = parMap(o, len(cases), func(ci int) []string {
		c := cases[ci]
		cfg := core.DefaultConfig()
		cfg.M = c.m
		// Expected per-thread duty at line rate: rho spread over the team.
		duty := (traffic.Rate64B(10) / cfg.Mu) / float64(c.m) * 2 // primaries carry ~2x the average
		over := map[int]cpu.WakeConfig{}
		cores := make([]*cpu.Core, c.m)
		for i := range cores {
			cores[i] = cpu.NewCore(i)
		}
		for i := 0; i < c.hogged && i < c.m; i++ {
			over[i] = wakeForDuty(duty)
			cores[i].BusyWith = 1
		}
		cfg.WakeOverrides = over
		cfg.Cores = cores
		_, met := singleQueueCBR(o, cfg, traffic.Rate64B(10), d, c.seed)
		return []string{
			c.name, fmt.Sprintf("%d", c.hogged), permille(met.LossRate),
			mpps(met.ThroughputPPS), us(met.MeanVacation),
		}
	})
	t.Notes = append(t.Notes,
		"with M=3 the backups absorb the interfered thread's missed wakeups (paper: no loss even with all cores shared)",
	)
	return []*Table{t}
}
