package experiments

import (
	"fmt"

	"metronome/internal/apps"
	"metronome/internal/apps/flowatcher"
	"metronome/internal/apps/ipsecgw"
	"metronome/internal/baseline"
	"metronome/internal/core"
)

func init() {
	register(Experiment{
		ID:    "fig16",
		Title: "CPU usage of the adapted applications: IPsec gateway and FloWatcher",
		Paper: "Fig 16: same throughput as static at peak, large CPU savings as rate drops",
		Run:   runFig16,
	})
}

// appRates are the x-axes of Fig 16 in packets/second.
var ipsecRates = []float64{5.61e6, 3e6, 1e6, 0.5e6, 0.1e6}
var flowatcherRates = []float64{14.88e6, 10e6, 5e6, 1e6, 0.5e6}

func runFig16(o Options) []*Table {
	d := dur(o, 1.0)
	var tables []*Table

	type appCase struct {
		proc  apps.Processor
		rates []float64
	}
	cases := []appCase{
		{ipsecgw.New(1), ipsecRates},
		{flowatcher.New(), flowatcherRates},
	}
	for ci, c := range cases {
		ci, c := ci, c
		mu := apps.ServiceRate(c.proc, 2.1)
		t := &Table{
			ID:    fmt.Sprintf("fig16-%s", c.proc.Name()),
			Title: fmt.Sprintf("%s: CPU vs rate (mu=%.2f Mpps from %d cycles/pkt)", c.proc.Name(), mu/1e6, int(c.proc.CyclesPerPacket())),
			Columns: []string{
				"rate_mpps", "static_cpu_pct", "metronome_cpu_pct", "met_tput_mpps", "loss_permille",
			},
		}
		t.Rows = parMap(o, len(c.rates), func(i int) []string {
			rate := c.rates[i]
			cfg := core.DefaultConfig()
			cfg.Mu = mu
			_, m := singleQueueCBR(o, cfg, rate, d, o.Seed+uint64(1200+ci*10+i))
			st := baseline.DefaultStatic()
			st.Mu = mu
			sres := baseline.Static(st, rate)
			return []string{
				mpps(rate), pct(sres.CPUPercent), pct(m.CPUPercent),
				mpps(m.ThroughputPPS), permille(m.LossRate),
			}
		})
		tables = append(tables, t)
	}
	tables[0].Notes = append(tables[0].Notes,
		"at the 5.61 Mpps IPsec ceiling one Metronome thread never releases the lock: CPU ~100%, exactly the paper's observation",
	)
	return tables
}
