package experiments

import (
	"metronome/internal/baseline"
	"metronome/internal/core"
	"metronome/internal/cpu"
	"metronome/internal/traffic"
)

func init() {
	register(Experiment{
		ID:    "tab2",
		Title: "Throughput alone and with ferret sharing the cores",
		Paper: "Table II: static 14.88 -> 7.34 Mpps when shared; Metronome holds 14.88",
		Run:   runTab2,
	})
	register(Experiment{
		ID:    "fig12",
		Title: "ferret execution time alone vs co-scheduled",
		Paper: "Fig 12: ~3x ferret slowdown next to a static poller, ~10% next to Metronome",
		Run:   runFig12,
	})
}

// ferretWork is the calibrated single-core execution time of the PARSEC
// ferret run (core-seconds).
const ferretWork = 240.0

// ferretSharePenalty inflates co-scheduled work: context switches plus
// cache/TLB pollution from alternating with a packet-processing loop.
const (
	staticSharePenalty    = 1.45
	metronomeSharePenalty = 1.05
)

func runTab2(o Options) []*Table {
	d := dur(o, 1.0)
	pps := traffic.Rate64B(10)

	// Static DPDK: alone it holds the line; sharing its single core with
	// ferret under group-fair scheduling it gets ~50% of the timeline.
	stAlone := baseline.Static(baseline.DefaultStatic(), pps)
	shared := baseline.DefaultStatic()
	shared.CPUShare = cpu.FairShare(cpu.NiceWeight(0), cpu.NiceWeight(0))
	stShared := baseline.Static(shared, pps)

	// Metronome alone.
	cfgAlone := core.DefaultConfig()
	_, metAlone := singleQueueCBR(o, cfgAlone, pps, d, o.Seed+700)

	// Metronome with ferret on all three cores: its nice -20 wake-ups
	// preempt ferret promptly, so it keeps its service rate and only the
	// wake path pays the contended-core preemption cost.
	cfgShared := core.DefaultConfig()
	cores := make([]*cpu.Core, cfgShared.M)
	for i := range cores {
		cores[i] = cpu.NewCore(i)
		cores[i].BusyWith = 1
	}
	cfgShared.Cores = cores
	_, metShared := singleQueueCBR(o, cfgShared, pps, d, o.Seed+701)

	t := &Table{
		ID:      "tab2",
		Title:   "throughput (Mpps), offered 14.88",
		Columns: []string{"system", "alone", "with_ferret", "loss_with_ferret_pct"},
	}
	t.Rows = append(t.Rows, []string{
		"static_dpdk", mpps(stAlone.ThroughputPPS), mpps(stShared.ThroughputPPS),
		pct(stShared.LossRate * 100),
	})
	t.Rows = append(t.Rows, []string{
		"metronome", mpps(metAlone.ThroughputPPS), mpps(metShared.ThroughputPPS),
		pct(metShared.LossRate * 100),
	})
	return []*Table{t}
}

func runFig12(o Options) []*Table {
	d := dur(o, 1.0)
	ferret := cpu.Job{Name: "ferret", Work: ferretWork, Nice: 19}

	// Scenario A: one core, alone vs with a static poller (equal group
	// weights under the kernel's fair scheduler).
	alone1 := ferret.Duration([]float64{1}, 1)
	withStatic := ferret.Duration(
		[]float64{cpu.FairShare(cpu.NiceWeight(0), cpu.NiceWeight(0))},
		staticSharePenalty,
	)

	// Scenario B: three cores, alone vs with Metronome. Metronome's
	// high-priority threads take their measured utilisation off the top of
	// each core; ferret gets the rest.
	cfg := core.DefaultConfig()
	cores := make([]*cpu.Core, cfg.M)
	for i := range cores {
		cores[i] = cpu.NewCore(i)
		cores[i].BusyWith = 1
	}
	cfg.Cores = cores
	rt, _ := singleQueueCBR(o, cfg, traffic.Rate64B(10), d, o.Seed+702)
	shares := make([]float64, cfg.M)
	for i, u := range perThreadUtil(rt, d) {
		shares[i] = 1 - u
	}
	alone3 := ferret.Duration([]float64{1, 1, 1}, 1)
	withMet := ferret.Duration(shares, metronomeSharePenalty)

	t := &Table{
		ID:      "fig12",
		Title:   "ferret execution time (s)",
		Columns: []string{"scenario", "cores", "alone_s", "shared_s", "slowdown"},
	}
	t.Rows = append(t.Rows, []string{
		"with_static_dpdk", "1", f1(alone1), f1(withStatic), f2(withStatic / alone1),
	})
	t.Rows = append(t.Rows, []string{
		"with_metronome", "3", f1(alone3), f1(withMet), f2(withMet / alone3),
	})
	t.Notes = append(t.Notes,
		"ferret modelled as 240 core-seconds of nice-19 work (PARSEC image search)",
	)
	return []*Table{t}
}
