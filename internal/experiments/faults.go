package experiments

import (
	"fmt"

	"metronome/internal/core"
	"metronome/internal/elastic"
	"metronome/internal/faults"
	"metronome/internal/nic"
	"metronome/internal/obsv"
	"metronome/internal/sched"
	"metronome/internal/sim"
	"metronome/internal/traffic"
)

func init() {
	register(Experiment{
		ID:    "fig-faults",
		Title: "Fault plane: deterministic fault injection vs the self-healing control loop",
		Paper: "Beyond the paper: Sec. V measures Metronome on a healthy host, but the discipline's failure surface — a member preempted through k service turns, a NIC queue going dark, gauges freezing, the controller's tick source dying — is untested there. This experiment drives a straggler storm, a queue blackout, a telemetry brownout under a flash crowd and a controller outage against static teams, the oblivious elastic controller and the health-layer (self-healing) controller, comparing loss, recovery time and provisioned thread-seconds",
		Run:   runFaults,
	})
}

// healingTuning is elasticTuning plus the health layer: the placement plane
// (exiles land as corrective plans), staleness/liveness detection at the
// defaults (8 control ticks), SafeTeam at the full budget, and an actuation
// rate limit so a recovering controller cannot whipsaw the team.
func healingTuning(minThreads, budget int) *elastic.Config {
	ec := elasticTuning(minThreads, budget)
	ec.Placement = true
	ec.Health = true
	ec.SafeTeam = budget
	ec.MaxActuationsPerSec = 200
	return ec
}

// obliviousTuning is the same controller with the health layer off — the
// placement-capable PI that trusts every gauge it reads. It is the ablation
// arm every panel compares the self-healing loop against.
func obliviousTuning(minThreads, budget int) *elastic.Config {
	ec := elasticTuning(minThreads, budget)
	ec.Placement = true
	return ec
}

// faultMode is one comparison arm of a fault panel. rec, when non-nil,
// attaches a flight recorder to the arm's control plane (recording is
// passive, so the arm's physics are unchanged); the panel folds the ring
// into a decision-trace table beside the figure.
type faultMode struct {
	name string
	m    int
	ecfg *elastic.Config
	rec  *obsv.Recorder
}

// faultResult carries one arm's rendered row plus the raw quantities the
// acceptance test asserts on. drops counts the watched queue only, so the
// fault's signature is not diluted by unrelated loss elsewhere.
type faultResult struct {
	name   string
	drops  int64
	exiles int
	row    []string
	tails  []string
}

// faultColumns: loss_permille is the deployment-wide loss rate; drops counts
// the watched (faulted) queue alone, which is what the panels contrast.
var faultColumns = []string{
	"mode", "loss_permille", "dropsW", "recovery_ms",
	"thread_ms", "mean_M", "M_range", "resizes", "exiles", "safe_ticks",
}

// faultRow runs one arm with the shared fault schedule and a recovery probe
// on the watched queue: every probe period the queue is sampled, and the run
// remembers the last instant it was unhealthy (drops still accruing, or
// occupancy above 10% of the ring). recovery_ms is how long past the fault
// clearing that instant lies — 0 when the queue was healthy the moment the
// fault lifted.
func faultRow(mode faultMode, procs []traffic.Process, evs []faults.Event,
	d, warmup, faultEnd float64, probeQ int, clean bool, seed uint64) faultResult {
	spec := elasticSpec(sched.NameRMetronome, mode.m, procs, d, warmup, seed, mode.ecfg)
	spec.faults = evs
	spec.recorder = mode.rec
	if clean {
		// Straggler and blackout panels run on a clean host: the injected
		// fault is the only outage source, so the arms differ by their
		// control loop alone, not by the noisy host's wake-delay lottery.
		spec.cfg.Wake.TailProb = 0
	}
	var watched *nic.Queue
	var lastBad float64
	spec.hook = func(eng *sim.Engine, r *core.Runtime, queues []*nic.Queue) {
		q := queues[probeQ]
		watched = q
		var prevDrops int64
		eng.Ticker(5e-4, "fault-probe", func() {
			now := eng.Now()
			if q.Drops < prevDrops {
				prevDrops = q.Drops // warm-up reset zeroed the counter
			}
			if q.Drops > prevDrops || q.Occupancy(now) > 0.1*float64(q.Opt.Cap) {
				lastBad = now
			}
			prevDrops = q.Drops
		})
	}
	rt, met, rep := runMetronomeElastic(spec)
	recovery := 0.0
	if lastBad > faultEnd {
		recovery = (lastBad - faultEnd) * 1e3
	}
	return faultResult{
		name:   mode.name,
		drops:  watched.Drops,
		exiles: rep.Exiles,
		tails:  append([]string{mode.name}, tailCells(rt, len(procs))...),
		row: []string{
			mode.name,
			permille(met.LossRate),
			fmt.Sprintf("%d", watched.Drops),
			f1(recovery),
			f1(rep.ThreadSeconds * 1e3),
			f2(rep.MeanThreads),
			fmt.Sprintf("%d..%d", rep.MinThreads, rep.MaxThreads),
			fmt.Sprintf("%d", rep.Resizes),
			fmt.Sprintf("%d", rep.Exiles),
			fmt.Sprintf("%d", rep.SafeTicks),
		},
	}
}

func rowsOf(results []faultResult) [][]string {
	rows := make([][]string, len(results))
	for i, r := range results {
		rows[i] = r.row
	}
	return rows
}

// faultTables pairs a panel with its exact-histogram tail table unless
// the Options-level -hist override dropped the tail panels.
func faultTables(o Options, main *Table, results []faultResult, tailID, tailTitle string) []*Table {
	if o.NoHist {
		return []*Table{main}
	}
	rows := make([][]string, len(results))
	for i, r := range results {
		rows[i] = r.tails
	}
	return []*Table{main, tailsTable(tailID, tailTitle, rows)}
}

// stragglerResults runs the straggler-storm arms and returns the raw
// results; the acceptance test asserts the oracle/self-heal/oblivious loss
// ratios on these directly. rec, when non-nil, rides the self-healing arm
// as its flight recorder.
//
// The physics: queue 0 trickles at 150 Kpps, so its 4096-descriptor ring
// absorbs a ~27 ms outage before overflowing, while the health layer's
// liveness bound (8 control ticks of a frozen heartbeat) detects a straggler
// in ~8-10 ms. Each storm preempts thread 0 — queue 0's only attendant in a
// 2-member team — for 5% of the run (40 ms at full duration), six times.
// A single-member group never visits backups (the backup path only triggers
// on a lost race), so without intervention the queue starves for the full
// stall and drops the last ~13 ms of arrivals.
func stragglerResults(o Options, rec *obsv.Recorder) ([]faultResult, float64) {
	d := dur(o, 0.8)
	warmup := 0.25 * d
	procs := []traffic.Process{
		traffic.CBR{PPS: 150e3}, // watched: starves when thread 0 stalls
		traffic.CBR{PPS: 6e6},   // busy enough to pin its own attendant
	}
	evs := faults.Storm(nil, 0, warmup+0.30*d, warmup+0.90*d, 0.10*d, 0.05*d)
	faultEnd := warmup + 0.85*d // the last storm's stall window closes here
	modes := []faultMode{
		// The oracle knows thread 0 will fail and pre-provisions its home
		// queue with a second member for the whole run.
		{name: "oracle-static-3", m: 3},
		{name: "static-2", m: 2},
		{name: "elastic-oblivious-2..4", m: 2, ecfg: obliviousTuning(2, 4)},
		{name: "elastic-selfheal-2..4", m: 2, ecfg: healingTuning(2, 4), rec: rec},
	}
	results := parMap(o, len(modes), func(i int) faultResult {
		return faultRow(modes[i], procs, evs, d, warmup, faultEnd, 0, true, o.Seed+uint64(1600+i))
	})
	return results, d
}

func faultsStragglerPanel(o Options) []*Table {
	rec := obsv.NewRecorder(obsv.DefaultCapacity)
	results, _ := stragglerResults(o, rec)
	tables := faultTables(o, &Table{
		ID:      "fig-faults-straggler",
		Title:   "straggler storm (thread 0 preempted 40 ms every 80 ms), 150 Kpps + 6 Mpps over 2 queues",
		Columns: faultColumns,
		Rows:    rowsOf(results),
		Notes: []string{
			"a starved queue publishes nothing (gauges land on its own cycle path), so the oblivious controller is blind to the storm and loses like static-2",
			"the health layer sees the frozen heartbeat within its liveness bound and exiles the straggler — a corrective plan reinforces its home queue before the ring overflows, matching the oracle's loss at a fraction of its thread-seconds",
		},
	}, results, "fig-faults-tails-straggler", "straggler storm — exact latency tails")
	return append(tables, traceTable("fig-faults-trace",
		"self-healing arm under the straggler storm — flight-recorder decision trace", rec))
}

func faultsBlackoutPanel(o Options) []*Table {
	d := dur(o, 0.8)
	warmup := 0.25 * d
	procs := []traffic.Process{
		traffic.CBR{PPS: 600e3}, // watched: goes dark mid-run
		traffic.CBR{PPS: 6e6},
	}
	evs := []faults.Event{
		{At: warmup + 0.40*d, Kind: faults.QueueBlackout, Target: 0},
		{At: warmup + 0.44*d, Kind: faults.QueueRecover, Target: 0},
	}
	faultEnd := warmup + 0.44*d
	modes := []faultMode{
		{name: "static-2", m: 2},
		{name: "static-4", m: 4},
		{name: "elastic-oblivious-2..4", m: 2, ecfg: obliviousTuning(2, 4)},
		{name: "elastic-selfheal-2..4", m: 2, ecfg: healingTuning(2, 4)},
	}
	results := parMap(o, len(modes), func(i int) faultResult {
		return faultRow(modes[i], procs, evs, d, warmup, faultEnd, 0, true, o.Seed+uint64(1620+i))
	})
	return faultTables(o, &Table{
		ID:      "fig-faults-blackout",
		Title:   "queue blackout (queue 0 dark for 32 ms), 600 Kpps + 6 Mpps over 2 queues",
		Columns: faultColumns,
		Rows:    rowsOf(results),
		Notes: []string{
			"the dark window overflows the ring for every arm — static-4's extra capacity buys nothing, because no amount of service drains a NIC that reports empty",
			"the oblivious controller chases the dark loss to its budget (wasted thread-seconds); the health layer classifies drops-rising-while-empty as dark loss and holds the team, then both drain the surfaced backlog at recovery",
		},
	}, results, "fig-faults-tails-blackout", "queue blackout — exact latency tails")
}

func faultsBrownoutPanel(o Options) []*Table {
	d := dur(o, 0.8)
	warmup := 0.25 * d
	crowd := func() traffic.Process {
		return traffic.Step{At: warmup + 0.50*d, Before: traffic.CBR{PPS: 2e6},
			After: traffic.Step{At: warmup + 0.70*d, Before: traffic.CBR{PPS: 14e6},
				After: traffic.CBR{PPS: 2e6}}}
	}
	procs := []traffic.Process{crowd(), crowd()}
	evs := []faults.Event{
		{At: warmup + 0.45*d, Kind: faults.TelemetryFreeze, Target: 0},
		{At: warmup + 0.45*d, Kind: faults.TelemetryFreeze, Target: 1},
		{At: warmup + 0.75*d, Kind: faults.TelemetryThaw, Target: 0},
		{At: warmup + 0.75*d, Kind: faults.TelemetryThaw, Target: 1},
	}
	faultEnd := warmup + 0.70*d // when the crowd leaves, not when gauges thaw
	modes := []faultMode{
		{name: "static-2", m: 2},
		{name: "static-8", m: 8},
		{name: "elastic-oblivious-2..8", m: 2, ecfg: obliviousTuning(2, 8)},
		{name: "elastic-selfheal-2..8", m: 2, ecfg: healingTuning(2, 8)},
	}
	results := parMap(o, len(modes), func(i int) faultResult {
		return faultRow(modes[i], procs, evs, d, warmup, faultEnd, 0, false, o.Seed+uint64(1640+i))
	})
	return faultTables(o, &Table{
		ID:      "fig-faults-brownout",
		Title:   "telemetry brownout (all gauges frozen) hiding a 4 -> 28 Mpps flash crowd",
		Columns: faultColumns,
		Rows:    rowsOf(results),
		Notes: []string{
			"frozen gauges keep reading the pre-crowd idle, so the oblivious controller never grows and loses like static-2",
			"the health layer watches publish sequences, not values: when every queue goes stale it stops trusting the bus and grows to SafeTeam (grow-only), riding out the crowd like static-8 — then shrinks back once fresh gauges return",
		},
	}, results, "fig-faults-tails-brownout", "telemetry brownout — exact latency tails")
}

func faultsOutagePanel(o Options) []*Table {
	d := dur(o, 0.8)
	warmup := 0.25 * d
	crowd := func() traffic.Process {
		return traffic.Step{At: warmup + 0.55*d, Before: traffic.CBR{PPS: 2e6},
			After: traffic.Step{At: warmup + 0.80*d, Before: traffic.CBR{PPS: 14e6},
				After: traffic.CBR{PPS: 2e6}}}
	}
	procs := []traffic.Process{crowd(), crowd()}
	evs := []faults.Event{
		{At: warmup + 0.50*d, Kind: faults.ControllerDown},
		{At: warmup + 0.70*d, Kind: faults.ControllerUp},
	}
	faultEnd := warmup + 0.70*d // ticks resume mid-crowd; recovery is theirs
	modes := []faultMode{
		{name: "static-8", m: 8},
		{name: "elastic-oblivious-2..8", m: 2, ecfg: obliviousTuning(2, 8)},
		{name: "elastic-selfheal-2..8", m: 2, ecfg: healingTuning(2, 8)},
	}
	results := parMap(o, len(modes), func(i int) faultResult {
		return faultRow(modes[i], procs, evs, d, warmup, faultEnd, 0, false, o.Seed+uint64(1660+i))
	})
	return faultTables(o, &Table{
		ID:      "fig-faults-outage",
		Title:   "controller outage (ticks suppressed 160 ms) across a flash-crowd onset",
		Columns: faultColumns,
		Rows:    rowsOf(results),
		Notes: []string{
			"both elastic arms are blind while ticks are suppressed and pay the crowd's onset; the static team is immune but pays 8 threads all run",
			"at resume the self-healing controller re-enters through the monotonic-tick guard and the actuation rate limit: recovery stays bounded with no burst of stale-state resizes (the value-change detectors count ticks, so an outage never false-trips staleness)",
		},
	}, results, "fig-faults-tails-outage", "controller outage — exact latency tails")
}

func runFaults(o Options) []*Table {
	var tables []*Table
	tables = append(tables, faultsStragglerPanel(o)...)
	tables = append(tables, faultsBlackoutPanel(o)...)
	tables = append(tables, faultsBrownoutPanel(o)...)
	tables = append(tables, faultsOutagePanel(o)...)
	return tables
}
