package experiments

// This file renders the flight-recorder panels: a recorder-attached
// experiment arm folds its obsv ring into one deterministic table — one
// row per event kind that fired, with the count, the first/last substrate
// timestamps and a decoded detail of the last occurrence. The panels ride
// the same Table renderer (and therefore the same -parallel byte-identity
// gates) as every other figure: on the sim substrate a recording is
// byte-identical at any worker count, so the folded table is too.

import (
	"fmt"
	"strings"

	"metronome/internal/faults"
	"metronome/internal/obsv"
	"metronome/internal/sched"
)

// planString renders a packed placement plan as per-queue counts
// ("3/2/1/1"), or "-" for the zero (absent/unpackable) word.
func planString(plan uint64) string {
	counts := sched.UnpackPlacement(plan, nil)
	if len(counts) == 0 {
		return "-"
	}
	parts := make([]string, len(counts))
	for i, m := range counts {
		parts[i] = fmt.Sprintf("%d", m)
	}
	return strings.Join(parts, "/")
}

// traceDetail decodes one event's kind-specific payload for the panel's
// detail column.
func traceDetail(e obsv.Event) string {
	switch e.Kind {
	case obsv.EvDecision:
		var fl []string
		if e.Flags&obsv.FlagResized != 0 {
			fl = append(fl, "resized")
		}
		if e.Flags&obsv.FlagRebalanced != 0 {
			fl = append(fl, "rebalanced")
		}
		if e.Flags&obsv.FlagSafeMode != 0 {
			fl = append(fl, "safe")
		}
		flags := "-"
		if len(fl) > 0 {
			flags = strings.Join(fl, "|")
		}
		return fmt.Sprintf("M=%d->%d occ=%s plan=%s flags=%s",
			e.Want(), e.Applied(), f2(e.F1), planString(e.Plan()), flags)
	case obsv.EvPlacement:
		return fmt.Sprintf("M=%d plan=%s", e.Applied(), planString(e.Plan()))
	case obsv.EvExile, obsv.EvRecover:
		return fmt.Sprintf("thread=%d", e.Target())
	case obsv.EvSafeEnter, obsv.EvSafeExit:
		return fmt.Sprintf("M=%d", e.Applied())
	case obsv.EvDarkLoss:
		return fmt.Sprintf("queue=%d drops=%d", e.Target(), e.B)
	case obsv.EvFault:
		return fmt.Sprintf("%s target=%d", faults.Kind(e.B), e.Target())
	case obsv.EvRateLimit:
		return "-"
	case obsv.EvPanic:
		return fmt.Sprintf("log=%d", e.A)
	}
	return "-"
}

// traceTable folds a flight recording into the decision-trace panel: one
// row per kind in ring order of first occurrence, summarising how the arm's
// control plane spent the measured window.
func traceTable(id, title string, rec *obsv.Recorder) *Table {
	events := rec.Events(nil)
	type agg struct {
		count       int
		first, last obsv.Event
	}
	perKind := make(map[obsv.Kind]*agg)
	var order []obsv.Kind
	for _, e := range events {
		a := perKind[e.Kind]
		if a == nil {
			a = &agg{first: e}
			perKind[e.Kind] = a
			order = append(order, e.Kind)
		}
		a.count++
		a.last = e
	}
	rows := make([][]string, 0, len(order))
	for _, k := range order {
		a := perKind[k]
		rows = append(rows, []string{
			k.String(),
			fmt.Sprintf("%d", a.count),
			f1(a.first.At * 1e3),
			f1(a.last.At * 1e3),
			traceDetail(a.last),
		})
	}
	notes := []string{
		fmt.Sprintf("flight recorder: %d events survive of %d recorded (ring capacity %d); timestamps are substrate run-clock seconds rendered in ms (the ring resets at the warm-up boundary, the clock does not)", len(events), rec.Total(), rec.Cap()),
		"detail decodes the last occurrence of each kind; dump the full ring with obsv.WriteText / WriteTrace (Perfetto) outside the harness",
	}
	if d := rec.Dropped(); d > 0 {
		notes = append(notes, fmt.Sprintf("ring wrapped: the oldest %d events were overwritten and are absent from the counts", d))
	}
	return &Table{
		ID:      id,
		Title:   title,
		Columns: []string{"event", "count", "first_ms", "last_ms", "last_detail"},
		Rows:    rows,
		Notes:   notes,
	}
}
