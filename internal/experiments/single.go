package experiments

import (
	"fmt"

	"metronome/internal/core"
	"metronome/internal/traffic"
)

func init() {
	register(Experiment{
		ID:    "tab1",
		Title: "Mean busy/vacation period, N_V and loss vs target vacation",
		Paper: "Table I: V grows with target; N_V tracks Little's law; loss appears near V̄=20us",
		Run:   runTab1,
	})
	register(Experiment{
		ID:    "fig5",
		Title: "Latency and CPU vs target vacation period (10/5 Gbps)",
		Paper: "Fig 5: latency grows and CPU falls as V̄ grows",
		Run:   runFig5,
	})
	register(Experiment{
		ID:    "fig6",
		Title: "Busy tries and CPU vs TL",
		Paper: "Fig 6: busy tries fall steeply up to TL=500us, then flatten",
		Run:   runFig6,
	})
	register(Experiment{
		ID:    "fig7",
		Title: "Busy tries and CPU vs M",
		Paper: "Fig 7: busy tries grow ~linearly with M; CPU creeps up",
		Run:   runFig7,
	})
	register(Experiment{
		ID:    "fig8",
		Title: "Latency vs number of threads M (10/1 Gbps)",
		Paper: "Fig 8: more threads -> higher latency, variance blows up at 1Gbps",
		Run:   runFig8,
	})
}

func runTab1(o Options) []*Table {
	d := dur(o, 2.0)
	t := &Table{
		ID:    "tab1",
		Title: "line rate 14.88 Mpps, M=3, TL=500us",
		Columns: []string{
			"target_V_us", "measured_V_us", "measured_B_us", "N_V", "loss_permille",
		},
	}
	for i, vbar := range []float64{5e-6, 10e-6, 12e-6, 15e-6, 20e-6} {
		cfg := core.DefaultConfig()
		cfg.VBar = vbar
		_, m := singleQueueCBR(o, cfg, traffic.Rate64B(10), d, o.Seed+uint64(i))
		t.Rows = append(t.Rows, []string{
			f1(vbar * 1e6), us(m.MeanVacation), us(m.MeanBusy),
			f2(m.MeanNV), permille(m.LossRate),
		})
	}
	t.Notes = append(t.Notes,
		"paper row V̄=10: V=19.55us B=20.24us N_V=287.77 loss=0",
		"effective buffering 576 packets: 512-descriptor ring + one FIFO burst (EXPERIMENTS.md)",
	)
	return []*Table{t}
}

func runFig5(o Options) []*Table {
	d := dur(o, 1.0)
	var tables []*Table
	for _, gbps := range []float64{10, 5} {
		t := &Table{
			ID:      "fig5",
			Title:   fmt.Sprintf("latency and CPU vs V̄ at %.0f Gbps", gbps),
			Columns: []string{"target_V_us", "lat_mean_us", "lat_q1_us", "lat_q3_us", "cpu_pct"},
		}
		for i, vbar := range []float64{2e-6, 5e-6, 7e-6, 10e-6} {
			cfg := core.DefaultConfig()
			cfg.VBar = vbar
			_, m := singleQueueCBR(o, cfg, traffic.Rate64B(gbps), d, o.Seed+uint64(100+i))
			t.Rows = append(t.Rows, []string{
				f1(vbar * 1e6), us(m.Latency.Mean), us(m.Latency.Q1), us(m.Latency.Q3),
				pct(m.CPUPercent),
			})
		}
		tables = append(tables, t)
	}
	return tables
}

func runFig6(o Options) []*Table {
	d := dur(o, 1.0)
	t := &Table{
		ID:      "fig6",
		Title:   "busy tries and CPU vs TL, line rate, M=3, V̄=10us",
		Columns: []string{"TL_us", "busy_tries_pct", "cpu_pct"},
	}
	for i, tl := range []float64{100e-6, 300e-6, 500e-6, 700e-6} {
		cfg := core.DefaultConfig()
		cfg.TL = tl
		_, m := singleQueueCBR(o, cfg, traffic.Rate64B(10), d, o.Seed+uint64(200+i))
		t.Rows = append(t.Rows, []string{
			f1(tl * 1e6), pct(m.BusyTryFrac * 100), pct(m.CPUPercent),
		})
	}
	t.Notes = append(t.Notes, "paper: most of the gain lands before TL=500us")
	return []*Table{t}
}

func runFig7(o Options) []*Table {
	d := dur(o, 1.0)
	t := &Table{
		ID:      "fig7",
		Title:   "busy tries and CPU vs M, line rate, V̄=10us, TL=500us",
		Columns: []string{"M", "busy_tries_pct", "cpu_pct"},
	}
	for i, m := range []int{2, 3, 4, 5, 6} {
		cfg := core.DefaultConfig()
		cfg.M = m
		_, met := singleQueueCBR(o, cfg, traffic.Rate64B(10), d, o.Seed+uint64(300+i))
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", m), pct(met.BusyTryFrac * 100), pct(met.CPUPercent),
		})
	}
	return []*Table{t}
}

func runFig8(o Options) []*Table {
	d := dur(o, 1.0)
	var tables []*Table
	for _, gbps := range []float64{10, 1} {
		t := &Table{
			ID:      "fig8",
			Title:   fmt.Sprintf("latency vs M at %.0f Gbps", gbps),
			Columns: []string{"M", "lat_mean_us", "lat_q1_us", "lat_q3_us", "lat_max_us", "lat_std_us"},
		}
		for i, m := range []int{2, 3, 4, 5, 6} {
			cfg := core.DefaultConfig()
			cfg.M = m
			_, met := singleQueueCBR(o, cfg, traffic.Rate64B(gbps), d, o.Seed+uint64(400+i))
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%d", m),
				us(met.Latency.Mean), us(met.Latency.Q1), us(met.Latency.Q3),
				us(met.Latency.Max), us(met.LatencyStd),
			})
		}
		tables = append(tables, t)
	}
	return tables
}
