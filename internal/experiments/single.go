package experiments

import (
	"fmt"

	"metronome/internal/core"
	"metronome/internal/traffic"
)

func init() {
	register(Experiment{
		ID:    "tab1",
		Title: "Mean busy/vacation period, N_V and loss vs target vacation",
		Paper: "Table I: V grows with target; N_V tracks Little's law; loss appears near V̄=20us",
		Run:   runTab1,
	})
	register(Experiment{
		ID:    "fig5",
		Title: "Latency and CPU vs target vacation period (10/5 Gbps)",
		Paper: "Fig 5: latency grows and CPU falls as V̄ grows",
		Run:   runFig5,
	})
	register(Experiment{
		ID:    "fig6",
		Title: "Busy tries and CPU vs TL",
		Paper: "Fig 6: busy tries fall steeply up to TL=500us, then flatten",
		Run:   runFig6,
	})
	register(Experiment{
		ID:    "fig7",
		Title: "Busy tries and CPU vs M",
		Paper: "Fig 7: busy tries grow ~linearly with M; CPU creeps up",
		Run:   runFig7,
	})
	register(Experiment{
		ID:    "fig8",
		Title: "Latency vs number of threads M (10/1 Gbps)",
		Paper: "Fig 8: more threads -> higher latency, variance blows up at 1Gbps",
		Run:   runFig8,
	})
}

func runTab1(o Options) []*Table {
	d := dur(o, 2.0)
	t := &Table{
		ID:    "tab1",
		Title: "line rate 14.88 Mpps, M=3, TL=500us",
		Columns: []string{
			"target_V_us", "measured_V_us", "measured_B_us", "N_V", "loss_permille",
		},
	}
	vbars := []float64{5e-6, 10e-6, 12e-6, 15e-6, 20e-6}
	t.Rows = parMap(o, len(vbars), func(i int) []string {
		cfg := core.DefaultConfig()
		cfg.VBar = vbars[i]
		_, m := singleQueueCBR(o, cfg, traffic.Rate64B(10), d, o.Seed+uint64(i))
		return []string{
			f1(vbars[i] * 1e6), us(m.MeanVacation), us(m.MeanBusy),
			f2(m.MeanNV), permille(m.LossRate),
		}
	})
	t.Notes = append(t.Notes,
		"paper row V̄=10: V=19.55us B=20.24us N_V=287.77 loss=0",
		"effective buffering 576 packets: 512-descriptor ring + one FIFO burst (EXPERIMENTS.md)",
	)
	return []*Table{t}
}

func runFig5(o Options) []*Table {
	d := dur(o, 1.0)
	rates := []float64{10, 5}
	vbars := []float64{2e-6, 5e-6, 7e-6, 10e-6}
	// One flat job list across both series: the 10 Gbps and 5 Gbps panels
	// simulate concurrently.
	rows := parMap(o, len(rates)*len(vbars), func(j int) []string {
		gbps, vbar := rates[j/len(vbars)], vbars[j%len(vbars)]
		cfg := core.DefaultConfig()
		cfg.VBar = vbar
		_, m := singleQueueCBR(o, cfg, traffic.Rate64B(gbps), d, o.Seed+uint64(100+j%len(vbars)))
		return []string{
			f1(vbar * 1e6), us(m.Latency.Mean), us(m.Latency.Q1), us(m.Latency.Q3),
			pct(m.CPUPercent),
		}
	})
	var tables []*Table
	for gi, gbps := range rates {
		tables = append(tables, &Table{
			ID:      "fig5",
			Title:   fmt.Sprintf("latency and CPU vs V̄ at %.0f Gbps", gbps),
			Columns: []string{"target_V_us", "lat_mean_us", "lat_q1_us", "lat_q3_us", "cpu_pct"},
			Rows:    rows[gi*len(vbars) : (gi+1)*len(vbars)],
		})
	}
	return tables
}

func runFig6(o Options) []*Table {
	d := dur(o, 1.0)
	t := &Table{
		ID:      "fig6",
		Title:   "busy tries and CPU vs TL, line rate, M=3, V̄=10us",
		Columns: []string{"TL_us", "busy_tries_pct", "cpu_pct"},
	}
	tls := []float64{100e-6, 300e-6, 500e-6, 700e-6}
	t.Rows = parMap(o, len(tls), func(i int) []string {
		cfg := core.DefaultConfig()
		cfg.TL = tls[i]
		_, m := singleQueueCBR(o, cfg, traffic.Rate64B(10), d, o.Seed+uint64(200+i))
		return []string{
			f1(tls[i] * 1e6), pct(m.BusyTryFrac * 100), pct(m.CPUPercent),
		}
	})
	t.Notes = append(t.Notes, "paper: most of the gain lands before TL=500us")
	return []*Table{t}
}

func runFig7(o Options) []*Table {
	d := dur(o, 1.0)
	t := &Table{
		ID:      "fig7",
		Title:   "busy tries and CPU vs M, line rate, V̄=10us, TL=500us",
		Columns: []string{"M", "busy_tries_pct", "cpu_pct"},
	}
	ms := []int{2, 3, 4, 5, 6}
	t.Rows = parMap(o, len(ms), func(i int) []string {
		cfg := core.DefaultConfig()
		cfg.M = ms[i]
		_, met := singleQueueCBR(o, cfg, traffic.Rate64B(10), d, o.Seed+uint64(300+i))
		return []string{
			fmt.Sprintf("%d", ms[i]), pct(met.BusyTryFrac * 100), pct(met.CPUPercent),
		}
	})
	return []*Table{t}
}

func runFig8(o Options) []*Table {
	d := dur(o, 1.0)
	rates := []float64{10, 1}
	ms := []int{2, 3, 4, 5, 6}
	rows := parMap(o, len(rates)*len(ms), func(j int) []string {
		gbps, m := rates[j/len(ms)], ms[j%len(ms)]
		cfg := core.DefaultConfig()
		cfg.M = m
		_, met := singleQueueCBR(o, cfg, traffic.Rate64B(gbps), d, o.Seed+uint64(400+j%len(ms)))
		return []string{
			fmt.Sprintf("%d", m),
			us(met.Latency.Mean), us(met.Latency.Q1), us(met.Latency.Q3),
			us(met.Latency.Max), us(met.LatencyStd),
		}
	})
	var tables []*Table
	for gi, gbps := range rates {
		tables = append(tables, &Table{
			ID:      "fig8",
			Title:   fmt.Sprintf("latency vs M at %.0f Gbps", gbps),
			Columns: []string{"M", "lat_mean_us", "lat_q1_us", "lat_q3_us", "lat_max_us", "lat_std_us"},
			Rows:    rows[gi*len(ms) : (gi+1)*len(ms)],
		})
	}
	return tables
}
