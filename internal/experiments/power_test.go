package experiments

import "testing"

// TestFigPowerAcceptance pins the power plane's headline claim on the full
// fig-power run: the elastic controller under the joules objective spends
// at least 30% less modelled energy than the smallest static team that
// rides out the peak at zero loss — at matched (zero) loss itself — the
// structure of the paper's Sec. V-C ~36% RAPL result. The run is
// deterministic per seed (clean host, injected preemption storm), so these
// are exact replay assertions, not statistical ones.
func TestFigPowerAcceptance(t *testing.T) {
	results, base := powerResults(Options{Seed: 1}, nil)
	byName := map[string]powerResult{}
	for _, r := range results {
		byName[r.name] = r
	}
	baseline := results[base]
	if baseline.name != "static-8" || !baseline.static || baseline.loss != 0 {
		t.Fatalf("baseline = %s (static=%v loss=%.4g), want the zero-loss static-8 rung",
			baseline.name, baseline.static, baseline.loss)
	}
	// The storm must discriminate: every smaller static rung runs r=1
	// queues through the preemption storm and loses measurably.
	for _, name := range []string{"static-4", "static-5", "static-6"} {
		if l := byName[name].loss; l < 0.5e-3 {
			t.Errorf("%s loss = %.4f permille: storm too soft to price the smaller rungs", name, l*1e3)
		}
	}
	saving := func(r powerResult) float64 {
		return (baseline.joules - r.joules) / baseline.joules
	}
	for _, name := range []string{"elastic-ts-4..8", "elastic-joules-4..8"} {
		r := byName[name]
		// Matched loss: the controller is fully grown before the storm
		// lands, so it rides it exactly like static-8 does.
		if r.loss > 1e-4 {
			t.Errorf("%s loss = %.4f permille, want <= 0.1 (matched with the baseline)", name, r.loss*1e3)
		}
		if r.joules <= 0 {
			t.Errorf("%s joules = %.3f, want > 0", name, r.joules)
		}
	}
	if s := saving(byName["elastic-joules-4..8"]); s < 0.30 {
		t.Errorf("joules-objective saving = %.1f%%, want >= 30%%", s*100)
	}
	if s := saving(byName["elastic-ts-4..8"]); s < 0.28 {
		t.Errorf("thread-seconds saving = %.1f%%, want >= 28%%", s*100)
	}
	// The joules objective must never spend more than the thread-seconds
	// law on the same day: its inflated trough target shrinks sooner.
	if jr, ts := byName["elastic-joules-4..8"].joules, byName["elastic-ts-4..8"].joules; jr > ts+1e-9 {
		t.Errorf("joules objective spent %.3f J vs thread-seconds %.3f J: objective never engaged", jr, ts)
	}
}
