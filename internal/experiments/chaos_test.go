package experiments

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"testing"

	"metronome/internal/core"
	"metronome/internal/elastic"
	"metronome/internal/faults"
	"metronome/internal/nic"
	"metronome/internal/obsv"
	"metronome/internal/sched"
	"metronome/internal/sim"
	"metronome/internal/telemetry"
	"metronome/internal/traffic"
	"metronome/internal/xrand"
)

// chaosEnv reads an integer knob from the environment, so a failing soak
// reproduces (CHAOS_SEED=n) and shrinks (CHAOS_OPS=m) from the shell.
func chaosEnv(name string, def int) int {
	if s := os.Getenv(name); s != "" {
		if v, err := strconv.Atoi(s); err == nil {
			return v
		}
	}
	return def
}

// The chaos soak: a seeded schedule of every fault kind interleaved with
// external resizes and rebalances, driven against the self-healing
// controller on the simulated substrate. Two invariants are the whole
// point:
//
//   - Claimed service turns are never dropped: per queue, the policy's
//     turn counter and the runtime's completed-cycle counter differ by at
//     most the one in-flight cycle, no matter how the team churns.
//   - The controller never actuates on gauges past the staleness bound:
//     outside safe mode an actuating tick has at least one fresh queue,
//     and safe-mode actuations only grow toward SafeTeam.
//
// The run is a pure function of CHAOS_SEED (faults fire as engine events),
// so a failure replays exactly; CHAOS_OPS shrinks the schedule.
func TestChaosSoakSim(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak runs in the dedicated non-short CI step")
	}
	seed := uint64(chaosEnv("CHAOS_SEED", 1))
	ops := chaosEnv("CHAOS_OPS", 300)
	t.Logf("chaos soak: CHAOS_SEED=%d CHAOS_OPS=%d (env to reproduce/shrink)", seed, ops)

	const (
		nq      = 3
		minM    = 3
		budget  = 6
		horizon = 1.0
	)
	eng := sim.New()
	root := xrand.New(seed)
	rates := []float64{300e3, 4e6, 1e6}
	queues := make([]*nic.Queue, nq)
	for i := range queues {
		opt := nic.DefaultOptions()
		opt.Cap = 4096
		queues[i] = nic.NewQueue(i, traffic.CBR{PPS: rates[i]}, root.Split(), opt)
	}
	cfg := core.DefaultConfig()
	cfg.M = minM
	cfg.VBar = 15e-6
	cfg.Policy = sched.NameRMetronome
	cfg.Seed = seed
	cfg.Bus = telemetry.NewBus(nq, budget)
	inj := faults.New(budget, nq)
	cfg.Faults = inj
	// The soak's black box: every decision, exile, safe-mode edge and fault
	// flip lands in the flight recorder, dumped below iff the soak fails.
	rec := obsv.NewRecorder(1 << 14)
	cfg.Recorder = rec
	obsv.AttachFaults(inj, rec)
	r := core.New(eng, queues, cfg)
	r.Start()

	ec := elastic.DefaultConfig(minM, budget)
	ec.TargetOccupancy = 0.03
	ec.Placement = true
	ec.Health = true
	ec.MaxActuationsPerSec = 500
	ec.Recorder = rec
	ctrl := elastic.New(cfg.Bus, r, ec)

	allStale := uint64(1<<nq) - 1
	var violations []string
	eng.Ticker(ctrl.Config().Period, "chaos-tick", func() {
		if inj.ControllerSuppressed() {
			return
		}
		before := r.TeamSize()
		d := ctrl.Tick(eng.Now())
		if d.SafeMode {
			if d.Resized && d.Applied < before {
				violations = append(violations, fmt.Sprintf(
					"t=%.4f: safe mode shrank the team %d -> %d", d.At, before, d.Applied))
			}
			return
		}
		if (d.Resized || d.Rebalanced) && d.StaleMask == allStale {
			violations = append(violations, fmt.Sprintf(
				"t=%.4f: actuated on an all-stale bus outside safe mode", d.At))
		}
	})

	// The seeded schedule. Each op lands at a random instant inside the
	// horizon; paired faults (death/revive, blackout/recover, freeze/thaw,
	// outage) clear within it, and a final sweep clears any stragglers.
	opRng := xrand.New(seed + 1000)
	var evs []faults.Event
	for i := 0; i < ops; i++ {
		at := 0.05 + opRng.Float64()*horizon
		switch opRng.Intn(10) {
		case 0, 1:
			th := opRng.Intn(budget)
			evs = append(evs, faults.Event{
				At: at, Kind: faults.ThreadStall, Target: th,
				Until: at + opRng.Uniform(0.002, 0.02),
			})
		case 2:
			th := opRng.Intn(budget)
			evs = append(evs,
				faults.Event{At: at, Kind: faults.ThreadDeath, Target: th},
				faults.Event{At: at + opRng.Uniform(0.01, 0.06), Kind: faults.ThreadRevive, Target: th})
		case 3:
			q := opRng.Intn(nq)
			evs = append(evs,
				faults.Event{At: at, Kind: faults.QueueBlackout, Target: q},
				faults.Event{At: at + opRng.Uniform(0.002, 0.015), Kind: faults.QueueRecover, Target: q})
		case 4:
			q := opRng.Intn(nq)
			evs = append(evs,
				faults.Event{At: at, Kind: faults.TelemetryFreeze, Target: q},
				faults.Event{At: at + opRng.Uniform(0.005, 0.04), Kind: faults.TelemetryThaw, Target: q})
		case 5:
			evs = append(evs,
				faults.Event{At: at, Kind: faults.ControllerDown},
				faults.Event{At: at + opRng.Uniform(0.005, 0.03), Kind: faults.ControllerUp})
		case 6, 7:
			m := minM + opRng.Intn(budget-minM+1)
			eng.At(at, "chaos-resize", func() { r.SetTeamSize(m) })
		default:
			m := minM + opRng.Intn(budget-minM+1)
			plan := make([]int, nq)
			for j := 0; j < m; j++ {
				plan[opRng.Intn(nq)]++
			}
			eng.At(at, "chaos-place", func() { r.ApplyPlacement(plan) })
		}
	}
	faults.Schedule(eng, inj, evs)

	// Clear every fault, force a full re-admission (revived members stay
	// parked until a resize or placement covers them), and let the loop
	// settle.
	eng.At(horizon+0.05, "chaos-clear", func() {
		for id := 0; id < budget; id++ {
			inj.ReviveThread(id)
			inj.StallThread(id, 0)
		}
		for q := 0; q < nq; q++ {
			inj.SetQueueDark(q, false)
			inj.FreezeTelemetry(q, false)
		}
		inj.SuppressController(false)
		r.SetTeamSize(minM)
		r.SetTeamSize(budget)
	})
	var cyclesAtClear [nq]int64
	eng.At(horizon+0.06, "chaos-mark", func() {
		for q := 0; q < nq; q++ {
			cyclesAtClear[q] = r.CyclesQ[q]
		}
	})
	eng.RunUntil(horizon + 0.3)

	for _, v := range violations {
		t.Error(v)
	}
	// Claimed turns are never dropped: the sequential twin claims a turn
	// exactly when a cycle begins, so the counters differ only by an
	// in-flight cycle — through every stall, death, blackout and resize.
	for q := 0; q < nq; q++ {
		turns := int64(r.Group().Turns(q))
		if turns < r.CyclesQ[q] || turns > r.CyclesQ[q]+1 {
			t.Errorf("queue %d: turns = %d, cycles = %d (claimed turns dropped)", q, turns, r.CyclesQ[q])
		}
	}
	// Liveness after the storm: every queue is being served again.
	for q := 0; q < nq; q++ {
		if r.CyclesQ[q] <= cyclesAtClear[q] {
			t.Errorf("queue %d: no cycles after faults cleared (%d)", q, r.CyclesQ[q])
		}
	}
	if got := r.TeamSize(); got < minM {
		t.Errorf("team ended at %d, below MinThreads %d", got, minM)
	}
	if rep := ctrl.Report(eng.Now()); rep.Panics != 0 {
		t.Errorf("controller panicked %d times during the soak; first: %s\n%s",
			rep.Panics, rep.PanicMsg, rep.PanicStack)
	}
	if t.Failed() {
		var dump strings.Builder
		if err := rec.WriteText(&dump); err == nil {
			t.Logf("flight recorder (last %d of %d events):\n%s",
				len(rec.Events(nil)), rec.Total(), dump.String())
		}
	}
}

// The same schedule is a pure function of its seed: two runs must agree on
// every counter the soak asserts on.
func TestChaosSoakDeterministic(t *testing.T) {
	run := func() string {
		seed := uint64(chaosEnv("CHAOS_SEED", 1))
		eng := sim.New()
		root := xrand.New(seed)
		queues := []*nic.Queue{
			nic.NewQueue(0, traffic.CBR{PPS: 300e3}, root.Split(), nic.DefaultOptions()),
			nic.NewQueue(1, traffic.CBR{PPS: 4e6}, root.Split(), nic.DefaultOptions()),
		}
		cfg := core.DefaultConfig()
		cfg.M = 2
		cfg.VBar = 15e-6
		cfg.Policy = sched.NameRMetronome
		cfg.Seed = seed
		cfg.Bus = telemetry.NewBus(2, 4)
		inj := faults.New(4, 2)
		cfg.Faults = inj
		r := core.New(eng, queues, cfg)
		r.Start()
		ec := elastic.DefaultConfig(2, 4)
		ec.Placement = true
		ec.Health = true
		ctrl := elastic.New(cfg.Bus, r, ec)
		eng.Ticker(ctrl.Config().Period, "tick", func() {
			if !inj.ControllerSuppressed() {
				ctrl.Tick(eng.Now())
			}
		})
		evs := faults.Storm(nil, 0, 0.05, 0.25, 0.04, 0.02)
		evs = append(evs,
			faults.Event{At: 0.08, Kind: faults.QueueBlackout, Target: 0},
			faults.Event{At: 0.10, Kind: faults.QueueRecover, Target: 0},
			faults.Event{At: 0.12, Kind: faults.TelemetryFreeze, Target: 1},
			faults.Event{At: 0.16, Kind: faults.TelemetryThaw, Target: 1},
			faults.Event{At: 0.18, Kind: faults.ControllerDown},
			faults.Event{At: 0.20, Kind: faults.ControllerUp},
		)
		faults.Schedule(eng, inj, evs)
		eng.RunUntil(0.3)
		rep := ctrl.Report(0.3)
		return fmt.Sprintf("cycles=%v drops=%d/%d resizes=%d exiles=%d safe=%d stale=%d team=%d",
			r.CyclesQ, queues[0].Drops, queues[1].Drops,
			rep.Resizes, rep.Exiles, rep.SafeTicks, rep.StaleQueueTicks, r.TeamSize())
	}
	first := run()
	for i := 1; i < 3; i++ {
		if got := run(); got != first {
			t.Fatalf("run %d diverged:\n%s\n%s", i, first, got)
		}
	}
}
