// Package experiments regenerates every table and figure of the paper's
// evaluation (Sec. V). Each experiment is registered under the ID used in
// DESIGN.md's per-experiment index (tab1, fig5, ...), runs the relevant
// simulation or closed-form baseline, and renders the same rows/series the
// paper reports. bench_test.go and cmd/metrobench both drive this registry.
package experiments

import (
	"fmt"
	"io"
	"math"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"metronome/internal/core"
	"metronome/internal/cpu"
	"metronome/internal/elastic"
	"metronome/internal/faults"
	"metronome/internal/nic"
	"metronome/internal/obsv"
	"metronome/internal/power"
	"metronome/internal/sim"
	"metronome/internal/stats"
	"metronome/internal/telemetry"
	"metronome/internal/traffic"
	"metronome/internal/xrand"
)

// Options tune an experiment run.
type Options struct {
	// Quick shrinks durations for use inside testing.B loops; the shapes
	// survive, the confidence intervals widen.
	Quick bool
	// Seed makes the whole experiment reproducible.
	Seed uint64
	// Policy overrides the scheduling discipline (a sched registry name)
	// for every deployment that does not pin its own — the metrobench
	// -policy flag, letting any experiment re-run under fixed or busypoll.
	Policy string
	// Elastic attaches the occupancy-driven control plane (with a default
	// tuning and a 2M core budget) to every deployment flowing through
	// the common single-queue runner — the metrobench -elastic flag. The
	// fig-elastic experiment pins its own controllers regardless.
	Elastic bool
	// Placement upgrades the Elastic override to the placement plane: the
	// controller apportions members per queue (and feeds the slope
	// feedforward) instead of only moving the scalar M — the metrobench
	// -placement flag. fig-placement pins its own controllers regardless.
	Placement bool
	// RingCap overrides the Rx descriptor-ring capacity for deployments
	// flowing through the common single-queue runner that do not pin
	// their own — the metrobench -cap flag, scoped like Elastic (the nic
	// default 576-slot ring makes the elastic occupancy target coarse).
	RingCap int64
	// Objective overrides the elastic controller's minimisation target for
	// the Options-level override ("thread-seconds" or "joules") — the
	// metrobench -objective flag, scoped like Elastic: experiments that pin
	// their own controllers (fig-elastic, fig-power, ...) are unaffected.
	Objective string
	// NoHist drops the exact-histogram latency-tail panels from the
	// experiments that render them (fig-elastic, fig-faults, fig-power) —
	// the metrobench -hist=false flag. The zero value keeps the panels on.
	NoHist bool
	// Parallel bounds how many independent simulations a sweep experiment
	// runs concurrently; 0 means GOMAXPROCS. Each row/series point is a
	// self-contained deterministic simulation (own engine, RNG streams and
	// queues) with a seed fixed by its index, and results are collected by
	// index, so the rendered tables are byte-identical at any parallelism.
	Parallel int
}

// workers resolves the effective worker-pool size.
func (o Options) workers() int {
	if o.Parallel > 0 {
		return o.Parallel
	}
	return runtime.GOMAXPROCS(0)
}

// ParMap evaluates fn(0..n-1) on a bounded worker pool (workers <= 0
// means GOMAXPROCS) and returns the results in index order. With one
// worker it degenerates to a plain loop on the calling goroutine. fn must
// be self-contained: every simulation it launches owns its engine, queues
// and RNG streams, and its seed must derive from i (never from shared
// mutable state), which is what keeps a sweep deterministic under any
// interleaving. Exported so CLIs (metrosim -runs) share the same pool.
func ParMap[T any](workers, n int, fn func(i int) T) []T {
	out := make([]T, n)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			out[i] = fn(i)
		}
		return out
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for k := 0; k < workers; k++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				out[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	return out
}

// parMap is ParMap under an experiment's Options.
func parMap[T any](o Options, n int, fn func(i int) T) []T {
	return ParMap(o.workers(), n, fn)
}

// Table is one rendered artifact (a paper table, or one panel of a figure).
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
	// Charts holds pre-rendered ASCII figures appended after the rows.
	Charts []string
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Columns)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	for _, c := range t.Charts {
		fmt.Fprintln(w)
		fmt.Fprint(w, c)
	}
	fmt.Fprintln(w)
}

// Experiment is one registry entry.
type Experiment struct {
	ID    string
	Title string
	// Paper describes what the original artifact reports, for
	// EXPERIMENTS.md cross-referencing.
	Paper string
	Run   func(Options) []*Table
}

var registry []Experiment

func register(e Experiment) { registry = append(registry, e) }

// All returns the registered experiments in declaration order.
func All() []Experiment {
	out := make([]Experiment, len(registry))
	copy(out, registry)
	sort.SliceStable(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ByID finds an experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// Doc writes the EXPERIMENTS.md paper-vs-measured skeleton, generated from
// the registry's Paper fields so the document can never drift from the
// experiments that actually exist. Regenerate with:
//
//	go run ./cmd/metrobench -doc > EXPERIMENTS.md
func Doc(w io.Writer) {
	fmt.Fprint(w, `# EXPERIMENTS — paper vs. measured

Every table and figure of the paper's evaluation (Sec. V) is regenerated by
a registered experiment in `+"`internal/experiments`"+`. This index is
generated from that registry (`+"`go run ./cmd/metrobench -doc`"+`); the
"paper" lines quote what the original artifact reports, and each
"reproduce" command prints the measured counterpart as an aligned text
table. Runs are deterministic per seed, at any `+"`-parallel`"+` setting.

Full sweep: `+"`go run ./cmd/metrobench -run all`"+` (append `+"`-quick`"+`
for a ~10x faster smoke pass with wider confidence intervals). The same
registry backs `+"`bench_test.go`"+`, so `+"`go test -bench=.`"+` doubles
as the whole reproduction with headline quantities as benchmark metrics.

`)
	for _, e := range All() {
		fmt.Fprintf(w, "## %s — %s\n\n", e.ID, e.Title)
		fmt.Fprintf(w, "- **Paper:** %s\n", e.Paper)
		fmt.Fprintf(w, "- **Reproduce:** `go run ./cmd/metrobench -run %s`\n", e.ID)
		fmt.Fprintf(w, "- **Measured:** _run the command above and paste the headline rows here_\n\n")
	}
}

// --- shared runners --------------------------------------------------------

// runSpec describes one simulated Metronome deployment.
type runSpec struct {
	cfg    core.Config
	policy string             // sched policy name; overrides cfg.Policy when set
	optFn  func(*nic.Options) // per-queue option tweaks (nil = defaults)
	procs  []traffic.Process  // one per queue
	dur    float64
	warmup float64
	seed   uint64
	// telemetry attaches a telemetry bus even without a controller, so
	// bus-driven policies (worksteal occupancy ranking) get live signals.
	telemetry bool
	// elastic attaches the occupancy-driven control plane: a bus, a
	// controller and an engine ticker at the configured control period.
	elastic *elastic.Config
	// faults schedules the deterministic fault plane into the run: an
	// injector sized to the deployment (elastic budget included) is wired
	// into the core config and the events fire as ordinary engine events,
	// so a faulted sweep stays byte-identical at any -parallel. A
	// ControllerDown event suppresses the elastic ticker until ControllerUp.
	faults []faults.Event
	// hook observes the wired deployment before the clock runs — the fault
	// experiments register their recovery probes (engine tickers sampling
	// ring state) through it.
	hook func(eng *sim.Engine, r *core.Runtime, queues []*nic.Queue)
	// recorder, when set, attaches the observability plane's flight
	// recorder to every control-plane source in the deployment (substrate
	// placements, elastic decisions, fault flips) and resets it at the
	// warm-up boundary like every other windowed stat, so decision-trace
	// panels cover the measurement window only.
	recorder *obsv.Recorder
}

// overridePolicy yields the Options-level discipline override for a
// deployment, unless the experiment pinned its own (an explicit Policy
// name, or the legacy fixed-TS fields).
func overridePolicy(o Options, cfg core.Config) string {
	if cfg.Policy == "" && cfg.Adaptive {
		return o.Policy
	}
	return ""
}

// runMetronome executes the spec and snapshots metrics over the
// post-warm-up window.
func runMetronome(s runSpec) (*core.Runtime, core.Metrics) {
	r, m, _ := runMetronomeElastic(s)
	return r, m
}

// runMetronomeElastic is runMetronome plus the elastic control plane: when
// the spec asks for one, a telemetry bus is attached to the deployment, a
// controller drives the team from an engine ticker (pure virtual-time
// events, so elastic sweeps stay byte-identical at any -parallel), and the
// returned report carries the provisioning account. Static deployments get
// a synthesized report (M threads for the whole window) so elastic and
// static rows are comparable in one table.
func runMetronomeElastic(s runSpec) (*core.Runtime, core.Metrics, elastic.Report) {
	if s.policy != "" {
		s.cfg.Policy = s.policy
	}
	if s.recorder != nil {
		s.cfg.Recorder = s.recorder
	}
	if s.elastic != nil || s.telemetry {
		budget := s.cfg.M
		if s.elastic != nil && s.elastic.Budget > budget {
			budget = s.elastic.Budget
		}
		s.cfg.Bus = telemetry.NewBus(len(s.procs), budget)
	}
	var inj *faults.Injector
	if len(s.faults) > 0 {
		slots := s.cfg.M
		if s.elastic != nil && s.elastic.Budget > slots {
			slots = s.elastic.Budget
		}
		inj = faults.New(slots, len(s.procs))
		s.cfg.Faults = inj
	}
	eng := sim.New()
	root := xrand.New(s.seed)
	queues := make([]*nic.Queue, len(s.procs))
	for i, p := range s.procs {
		opt := nic.DefaultOptions()
		if s.cfg.RingCap > 0 {
			opt.Cap = s.cfg.RingCap
		}
		if s.optFn != nil {
			// Experiment-pinned ring shapes win over the Options-level
			// -cap override.
			s.optFn(&opt)
		}
		queues[i] = nic.NewQueue(i, p, root.Split(), opt)
	}
	s.cfg.Seed = s.seed
	r := core.New(eng, queues, s.cfg)
	r.Start()
	var ctrl *elastic.Controller
	if s.elastic != nil {
		ec := *s.elastic
		if ec.MinThreads == 0 {
			ec.MinThreads = len(s.procs)
		}
		if s.recorder != nil {
			ec.Recorder = s.recorder
		}
		// Construct after Start: the controller's initial clamp resizes
		// through the live resize path, never double-arming first wakes.
		ctrl = elastic.New(s.cfg.Bus, r, ec)
		eng.Ticker(ctrl.Config().Period, "elastic-tick", func() {
			if inj != nil && inj.ControllerSuppressed() {
				return
			}
			ctrl.Tick(eng.Now())
		})
	}
	if inj != nil {
		obsv.AttachFaults(inj, s.recorder) // no-op when no recorder is wired
		faults.Schedule(eng, inj, s.faults)
	}
	if s.hook != nil {
		s.hook(eng, r, queues)
	}
	if s.warmup > 0 {
		eng.RunUntil(s.warmup)
		for _, q := range queues {
			q.Reset(eng.Now())
		}
		r.Tries.Value, r.BusyTries.Value, r.Cycles.Value = 0, 0, 0
		for i := range r.TriesQ {
			r.TriesQ[i], r.BusyTriesQ[i], r.CyclesQ[i] = 0, 0, 0
		}
		for i := range r.CyclesByThread {
			r.CyclesByThread[i] = 0
		}
		// CPU accounting restarts too: replace through a fresh window.
		r.Acct = cpu.NewAccounting(r.ThreadCount())
		r.ResetProvisioned(eng.Now())
		if s.cfg.Bus != nil {
			// Latency histograms window like every other warm-up-reset
			// gauge: tails rendered from the bus cover measurement only.
			for q := range s.procs {
				s.cfg.Bus.ResetLatency(q)
			}
		}
		if ctrl != nil {
			ctrl.ResetStats(eng.Now())
		}
		// The flight recorder windows with the other stats: the engine is
		// parked at the warm-up boundary, so the reset cannot race writers.
		s.recorder.Reset()
	}
	eng.RunUntil(s.warmup + s.dur)
	end := s.warmup + s.dur
	rep := elastic.Report{
		Resizes:    0,
		MinThreads: r.TeamSize(), MaxThreads: r.TeamSize(), Final: r.TeamSize(),
	}
	if ctrl != nil {
		rep = ctrl.Report(end)
	}
	// Thread-seconds come from the core's exact ∫M(t)dt integral rather
	// than the controller's tick-quantised account.
	rep.ThreadSeconds = r.ProvisionedThreadSeconds(end)
	if s.dur > 0 {
		rep.MeanThreads = rep.ThreadSeconds / s.dur
	}
	return r, r.Snapshot(s.dur), rep
}

// overrideElastic yields the Options-level elastic override (-elastic on
// metrobench): a default-tuned controller with a 2M core budget, upgraded
// to the placement plane when -placement is also set.
func overrideElastic(o Options, cfg core.Config, nQueues int) *elastic.Config {
	if !o.Elastic && !o.Placement {
		return nil
	}
	ec := elastic.DefaultConfig(nQueues, 2*cfg.M)
	if o.Placement {
		ec.Placement = true
		ec.SlopeGain = 8
	}
	if o.Objective == "joules" {
		ec.Objective = elastic.ObjectiveJoules
	}
	return &ec
}

// tailColumns are the exact-histogram latency-tail cells appended by the
// experiments that render tail panels; values are microseconds read from
// the bus histograms (bucket upper edges, ≤3.2% wide — see stats.LogHistogram).
var tailColumns = []string{"p50_us", "p99_us", "p999_us", "p9999_us", "lmax_us"}

// tailCells folds every queue's bus histogram into one deployment-wide
// distribution and renders the tail quantiles. The histograms were reset
// at warm-up, so the cells cover the measured window exactly — every
// per-packet retrieval latency, no reservoir thinning.
func tailCells(r *core.Runtime, nQueues int) []string {
	bus := r.Cfg.Bus
	if bus == nil {
		return []string{"-", "-", "-", "-", "-"}
	}
	var h stats.LogHistogram
	for q := 0; q < nQueues; q++ {
		bus.SampleLatency(q, &h)
	}
	if h.N() == 0 {
		return []string{"-", "-", "-", "-", "-"}
	}
	at := func(p float64) string { return us(float64(h.Quantile(p)) * 1e-9) }
	return []string{at(0.5), at(0.99), at(0.999), at(0.9999), us(float64(h.Max()) * 1e-9)}
}

// singleQueueCBR is the common single-queue constant-rate deployment; the
// Options-level policy, elastic and ring-capacity overrides apply unless
// cfg pinned its own.
func singleQueueCBR(o Options, cfg core.Config, pps, dur float64, seed uint64) (*core.Runtime, core.Metrics) {
	if cfg.RingCap == 0 {
		cfg.RingCap = o.RingCap
	}
	return runMetronome(runSpec{
		cfg:     cfg,
		policy:  overridePolicy(o, cfg),
		elastic: overrideElastic(o, cfg, 1),
		procs:   []traffic.Process{traffic.CBR{PPS: pps}},
		dur:     dur,
		warmup:  dur * 0.2,
		seed:    seed,
	})
}

// governorPower resolves the ondemand/performance fixed point for a
// Metronome deployment and returns (metrics, watts, freq GHz). The drain
// rate scales with the frequency of the core that holds the lock, so the
// governor's view is re-simulated to a fixed point. Two rules matter:
// ondemand ramps a saturated core (util ~1) back to FMax — work expands to
// fill the queue backlog, so slowing down never looks "less utilised" —
// and each core settles at its own frequency for the power account.
func governorPower(pc power.Config, gov power.Governor, spec runSpec) (core.Metrics, float64, float64) {
	freq := pc.FMax
	var m core.Metrics
	var rt *core.Runtime
	var utils []float64
	for iter := 0; iter < 6; iter++ {
		spec.cfg.FreqScale = freq / pc.FMax
		rt, m = runMetronome(spec)
		utils = perThreadUtil(rt, m.Wall)
		umax := maxOf(utils)
		var next float64
		switch {
		case gov == power.Performance:
			next = pc.FMax
		case umax >= 0.99:
			next = pc.FMax // saturated: ondemand climbs back to full speed
		default:
			// cycles/s of real work are frequency-invariant; re-reference
			// the busiest core's demand to FMax for the governor law.
			next = pc.SteadyFreq(gov, umax*freq/pc.FMax)
		}
		if math.Abs(next-freq) < 0.02 {
			freq = next
			break
		}
		freq = (freq + next) / 2 // damped: the map can overshoot at ramp-up
	}
	// Per-core operating points: cores with lighter duty idle down on
	// their own, independent of the lock-holder's frequency.
	states := make([]power.CoreState, len(utils))
	cpuPct := 0.0
	for i, u := range utils {
		busyGHz := u * freq
		fi := freq
		if gov == power.Ondemand && u < 0.99 {
			fi = pc.SteadyFreq(gov, busyGHz/pc.FMax)
		}
		ui := 1.0
		if fi > 0 && busyGHz/fi < 1 {
			ui = busyGHz / fi
		}
		states[i] = power.CoreState{Freq: fi, Util: ui}
		cpuPct += ui * 100
	}
	// Report CPU as observed at the operating frequencies, like getrusage
	// would on the governed machine.
	m.CPUPercent = cpuPct
	return m, pc.PackagePower(states), freq
}

func maxOf(xs []float64) float64 {
	m := 0.0
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

func perThreadUtil(rt *core.Runtime, wall float64) []float64 {
	out := make([]float64, rt.Cfg.M)
	for i := range out {
		u := rt.Acct.Busy(i) / wall
		if u > 1 {
			u = 1
		}
		out[i] = u
	}
	return out
}

func meanOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// staticPower computes package power for n continuously-polling cores.
func staticPower(pc power.Config, gov power.Governor, cores int) float64 {
	states := make([]power.CoreState, cores)
	for i := range states {
		f := pc.SteadyFreq(gov, 1)
		states[i] = power.CoreState{Freq: f, Util: 1}
	}
	return pc.PackagePower(states)
}

// --- formatting helpers ----------------------------------------------------

func f1(v float64) string  { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string  { return fmt.Sprintf("%.3f", v) }
func us(v float64) string  { return fmt.Sprintf("%.2f", v*1e6) }
func pct(v float64) string { return fmt.Sprintf("%.1f", v) }
func mpps(v float64) string {
	return fmt.Sprintf("%.2f", v/1e6)
}
func permille(v float64) string { return fmt.Sprintf("%.4f", v*1000) }

// dur scales a nominal duration down in quick mode.
func dur(o Options, full float64) float64 {
	if o.Quick {
		return full / 10
	}
	return full
}
