package experiments

import (
	"fmt"

	"metronome/internal/elastic"
	"metronome/internal/faults"
	"metronome/internal/obsv"
	"metronome/internal/power"
	"metronome/internal/sched"
	"metronome/internal/traffic"
)

func init() {
	register(Experiment{
		ID:    "fig-power",
		Title: "Power plane: modelled joules of the elastic controller vs the static ladder",
		Paper: "Sec. V-C/V-F measure Metronome's power with RAPL and report ~36% lower consumption than DPDK busy polling at matched loss. This experiment reproduces the claim's structure on the sim substrate with the calibrated core-only model (power.DefaultConfig, Xeon Silver 4110) and extends it to the elastic controller under the joules objective: a trough-dominated day with a short flash crowd, a static ladder sized for the peak, and per-arm modelled energy from each run's sleep-state residency",
		Run:   runPower,
	})
}

// powerMode is one comparison arm: a static team of m threads or an
// elastic team governed by ecfg, all under the shared-queue
// rmetronome discipline on a clean host (the fault-free power physics are
// the story; the wake-delay lottery is fig-elastic's).
type powerMode struct {
	name string
	m    int
	ecfg *elastic.Config
	rec  *obsv.Recorder // optional flight recorder riding the arm
}

// powerTuning is elasticTuning with the power objective under test.
// Placement stays off: the day's load is balanced across queues, and
// per-queue replanning mid-crowd can transiently leave a queue with a
// lone attendant exactly when the preemption storm lands — chasing
// imbalance is fig-placement's story, not this figure's.
func powerTuning(minThreads, budget int, obj elastic.Objective) *elastic.Config {
	ec := elasticTuning(minThreads, budget)
	// No slope feedforward: the occupancy ramp of the warning stairs would
	// grow the team tens of milliseconds before the peak needs it, and on
	// this figure every early thread-second is idle watts. The pure PI
	// still reaches the full team inside the first stair — well before the
	// storm — because the peak error is more than twice the deadband.
	ec.SlopeGain = 0
	ec.Objective = obj
	// 6% of the ring rather than fig-elastic's 3%: at the 60 us target
	// vacation the trough parks wake-time occupancy near 1%, and the
	// shrink-back to the floor only clears the ±0.75-thread deadband when
	// the trough error is a decisive fraction of the target (the peak's
	// ~15% occupancy still reads as strong grow pressure).
	ec.TargetOccupancy = 0.06
	// A quarter of the default shrink cooldown: idle watts accrue for
	// every period a crowd-sized team outlives the crowd, so the power
	// arms trade a little resize churn for a faster return to the trough
	// floor (growth is never cooldown-gated, so loss response is intact).
	ec.Cooldown = 4
	return ec
}

// powerResult carries one arm's rendered row plus the raw quantities the
// acceptance test asserts on: deployment-wide loss rate, whether the arm
// is a static rung, and the modelled core-only joules of the run.
type powerResult struct {
	name   string
	static bool
	loss   float64
	joules float64
	row    []string
	tails  []string
}

// powerBudget is the machine every arm is priced against: the elastic
// budget's eight cores. A static rung's surplus cores are parked in the
// deep C-state, exactly like the cores the controller releases — so the
// ladder and the elastic arms differ only in how they spend the same
// silicon, not in how much of it they own.
const powerBudget = 8

// powerRow runs one arm and prices it: the residency (busy/idle/parked
// seconds plus mean sleep dwell) comes out of the run's own accounting,
// and power.TeamEnergy converts it to core-only joules at the calibration
// frequency. ctl_W is the elastic controller's internal mean-watts gauge
// (Report.MeanWatts) — the number the joules objective steers on — shown
// beside the external account so the two books can be compared.
func powerRow(mode powerMode, procs []traffic.Process, evs []faults.Event, d, warmup float64, seed uint64) powerResult {
	spec := elasticSpec(sched.NameRMetronome, mode.m, procs, d, warmup, seed, mode.ecfg)
	// Clean host: the deterministic preemption storm below is the only
	// outage source, so the ladder's loss cliff is exact physics rather
	// than a per-seed wake-delay lottery (the same determinism argument
	// as the fig-faults straggler panel).
	spec.cfg.Wake.TailProb = 0
	// Sticky backups: a lost-race member re-contends its home queue
	// instead of wandering (Sec. IV-E's random re-target). Under the
	// preemption storm this makes partner coverage deterministic — a
	// two-member group's survivor is never off visiting another queue for
	// the whole stall — so the ladder's loss cliff is pure group size, not
	// a per-seed wander lottery.
	spec.cfg.BackupSticky = true
	// A longer target vacation than fig-elastic's 15 us: fewer wakes per
	// second cut the sleep/wake overhead (the energy floor the paper's
	// discipline is about) while wake-time occupancy stays the
	// controller's crowd signal.
	spec.cfg.VBar = 60e-6
	spec.faults = evs
	spec.recorder = mode.rec
	rt, met, rep := runMetronomeElastic(spec)
	pc := power.DefaultConfig()
	res := rt.Residency(warmup+d, d, powerBudget)
	res.Freq = pc.FMax
	joules := pc.TeamEnergy(res)
	ctlW := "-"
	if mode.ecfg != nil {
		ctlW = f2(rep.MeanWatts)
	}
	return powerResult{
		name:   mode.name,
		static: mode.ecfg == nil,
		loss:   met.LossRate,
		joules: joules,
		row: []string{
			mode.name,
			permille(met.LossRate),
			pct(met.CPUPercent),
			f1(rep.ThreadSeconds * 1e3),
			f2(rep.MeanThreads),
			fmt.Sprintf("%d..%d", rep.MinThreads, rep.MaxThreads),
			fmt.Sprintf("%d", rep.Resizes),
			f2(joules),
			f2(joules / d),
			ctlW,
			"", // saving_pct vs the smallest zero-loss static rung, filled below
		},
		tails: append([]string{mode.name}, tailCells(rt, len(procs))...),
	}
}

// powerResults runs the fig-power arms and fills the saving column
// against the baseline the paper's claim names: the smallest static rung
// that rides out the peak at zero loss. The acceptance test asserts the
// elastic saving on these results directly. rec, when non-nil, rides the
// joules-objective arm as its flight recorder.
func powerResults(o Options, rec *obsv.Recorder) ([]powerResult, int) {
	d := dur(o, 0.8)
	warmup := 0.25 * d

	// Trough-dominated day over four queues: 0.75 Mpps per queue for ~86%
	// of the window, then a staircase crowd (3, 6, 10 Mpps per queue —
	// 40 Mpps total at the peak) for the last ~10% before falling back.
	// Each stair is at most a 4x rate jump: the group's vacation EWMA
	// tracks that without transient ring overflow (a steeper jump loses
	// packets at the onset on every arm and blurs the storm's ladder).
	crowd := func() traffic.Process {
		lo := traffic.CBR{PPS: 0.75e6}
		return traffic.Step{At: warmup + 0.84*d, Before: lo,
			After: traffic.Step{At: warmup + 0.86*d, Before: traffic.CBR{PPS: 3e6},
				After: traffic.Step{At: warmup + 0.88*d, Before: traffic.CBR{PPS: 6e6},
					After: traffic.Step{At: warmup + 0.945*d, Before: traffic.CBR{PPS: 10e6},
						After: lo}}}}
	}
	procs := []traffic.Process{crowd(), crowd(), crowd(), crowd()}

	// The ladder's loss cliff, made deterministic: a staggered preemption
	// storm stalls each thread id for 600 us in turn while the crowd is at
	// its peak (the shared host's noisy neighbours firing at the worst
	// time). A stalled lone attendant's ring takes 10 Mpps for 600 us —
	// 6000 packets against 4096 descriptors — so every queue attended by
	// one member drops, while a two-member group always has its partner
	// awake (stalls never overlap within a group: partners sit 4 ids
	// apart, stalls a few ids wide even in quick mode). Static rungs
	// below 8 run r=1 queues and lose; static-8 and the fully-grown
	// elastic teams ride the same storm clean.
	var evs []faults.Event
	for round := 0; round < 2; round++ {
		for th := 0; th < powerBudget; th++ {
			at := warmup + 0.895*d + float64(round*powerBudget+th)*0.003*d
			evs = append(evs, faults.Event{At: at, Kind: faults.ThreadStall, Target: th, Until: at + 600e-6})
		}
	}
	modes := []powerMode{
		{name: "static-4", m: 4},
		{name: "static-5", m: 5},
		{name: "static-6", m: 6},
		{name: "static-8", m: 8},
		{name: "elastic-ts-4..8", m: 4, ecfg: powerTuning(4, powerBudget, elastic.ObjectiveThreadSeconds)},
		{name: "elastic-joules-4..8", m: 4, ecfg: powerTuning(4, powerBudget, elastic.ObjectiveJoules), rec: rec},
	}
	results := parMap(o, len(modes), func(i int) powerResult {
		return powerRow(modes[i], procs, evs, d, warmup, o.Seed+uint64(1700+i))
	})

	// The claim's baseline: the smallest static rung with zero measured
	// loss (every rung loses in a degenerate run: fall back to the last).
	base := len(results) - 1
	for i, r := range results {
		if r.static && r.loss == 0 {
			base = i
			break
		}
	}
	for i := range results {
		saving := (results[base].joules - results[i].joules) / results[base].joules * 100
		results[i].row[len(results[i].row)-1] = f1(saving)
	}
	return results, base
}

func runPower(o Options) []*Table {
	rec := obsv.NewRecorder(obsv.DefaultCapacity)
	results, base := powerResults(o, rec)
	rows := make([][]string, len(results))
	tails := make([][]string, len(results))
	for i, r := range results {
		rows[i] = r.row
		tails[i] = r.tails
	}
	main := &Table{
		ID:      "fig-power",
		Title:   "trough-dominated day (3 Mpps, 40 Mpps crowd for 10%) over 4 queues, rmetronome, modelled joules",
		Columns: []string{"mode", "loss_permille", "cpu_pct", "thread_ms", "mean_M", "M_range", "resizes", "joules", "watts", "ctl_W", "saving_pct"},
		Rows:    rows,
		Notes: []string{
			fmt.Sprintf("core-only energy from each run's sleep-state residency (power.DefaultConfig, Xeon Silver 4110 calibration): busy time at CorePower(FMax), short vacations at the shallow-idle floor, released/surplus cores of the common %d-core budget parked deep", powerBudget),
			fmt.Sprintf("saving_pct is relative to %s — the smallest static rung that rides out the peak at zero loss, the paper's Sec. V-C baseline shape; the paper measures ~36%% vs busy polling with RAPL", results[base].name),
			"the joules objective inflates the occupancy target by the modelled relative saving of shedding a member (power.EnergyPressure), so the controller idles a smaller team through the trough than the thread-seconds law and still grows through the loss override when the crowd lands",
			"placement replanning is off in this figure: the load is balanced, so a rebalance buys nothing, and replan churn mid-crowd transiently leaves lone attendants exactly when the storm lands (measured ~1.9 permille on this day) — fig-placement prices replanning on the skewed days it is for",
		},
	}
	tables := []*Table{main}
	if !o.NoHist {
		tables = append(tables, tailsTable("fig-power-tails", "power day — exact latency tails", tails))
	}
	return append(tables, traceTable("fig-power-trace",
		"joules-objective arm across the power day — flight-recorder decision trace", rec))
}
