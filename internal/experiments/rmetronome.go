package experiments

import (
	"fmt"

	"metronome/internal/core"
	"metronome/internal/nic"
	"metronome/internal/sched"
	"metronome/internal/traffic"
)

func init() {
	register(Experiment{
		ID:    "fig13-15-rmetronome",
		Title: "Shared-queue r-Metronome: uniform vs work-stealing backup selection, 2/3/4 queues",
		Paper: "Fig 13-15 scenario space under the shared-queue variants: stable r-member service groups vs the drifting adaptive discipline, and occupancy-ranked stealing vs the Sec. IV-E uniform pick when traffic is unbalanced",
		Run:   runRMetronome,
	})
}

// rmetronomePolicies are compared side by side; the deployments pin their
// discipline, so the metrobench -policy override does not apply (the
// comparison *is* the experiment).
var rmetronomePolicies = []string{sched.NameAdaptive, sched.NameRMetronome, sched.NameWorkSteal}

// rmetronomeSpec builds an N-queue deployment pinned to one discipline,
// with two threads per queue (r = 2) and a per-queue share vector. Queues
// get the DPDK-default 4096-descriptor rings the paper used for its
// loss-sensitive multiqueue runs (the 576-packet single-queue default sits
// right on the N_V cliff at these vacation targets and would turn every
// vacation-length delta into a loss cliff instead of a CPU/latency story).
func rmetronomeSpec(o Options, policy string, shares []float64, totalPPS, d float64, seedOff uint64) runSpec {
	cfg := core.DefaultConfig()
	cfg.M = 2 * len(shares)
	cfg.VBar = 15e-6
	cfg.Policy = policy
	procs := make([]traffic.Process, len(shares))
	for i, s := range shares {
		procs[i] = traffic.CBR{PPS: totalPPS * s}
	}
	return runSpec{
		cfg:    cfg,
		optFn:  func(opt *nic.Options) { opt.Cap = 4096 },
		procs:  procs,
		dur:    d,
		warmup: d * 0.2,
		seed:   o.Seed + seedOff,
		// The telemetry bus rides along so the work-stealing variant ranks
		// backups by live queue occupancy instead of the rho EWMA.
		telemetry: true,
	}
}

func evenShares(nq int) []float64 {
	s := make([]float64, nq)
	for i := range s {
		s[i] = 1 / float64(nq)
	}
	return s
}

func runRMetronome(o Options) []*Table {
	d := dur(o, 0.6)

	// Panel 1 — balanced line rate, 2/3/4 queues, M = 2N: the shared-queue
	// variants against the drifting adaptive baseline.
	type point struct {
		nq     int
		policy string
	}
	var pts []point
	for _, nq := range []int{2, 3, 4} {
		for _, p := range rmetronomePolicies {
			pts = append(pts, point{nq, p})
		}
	}
	rows := parMap(o, len(pts), func(i int) []string {
		p := pts[i]
		spec := rmetronomeSpec(o, p.policy, evenShares(p.nq), xl710Rate, d, uint64(1200+i))
		_, met := runMetronome(spec)
		return []string{
			fmt.Sprintf("%d", p.nq),
			p.policy,
			pct(met.CPUPercent),
			pct(met.BusyTryFrac * 100),
			us(met.MeanVacation),
			permille(met.LossRate),
		}
	})
	balanced := &Table{
		ID:    "fig13-15-rmetronome-balanced",
		Title: "balanced 37 Mpps over N queues, M=2N, V̄=15us",
		Columns: []string{
			"queues", "policy", "cpu_pct", "busy_tries_pct", "V_us", "loss_permille",
		},
		Rows: rows,
		Notes: []string{
			"rmetronome/worksteal bind stable 2-member service groups per queue; eq. (13) runs with the integer group size instead of eq. (14)'s M/N average",
		},
	}

	// Panel 2 — unbalanced traffic (Table III's 30% hot flow shape, 3
	// queues): where backup selection matters. Work stealing re-targets
	// lost-race threads at the hottest queue instead of uniformly. The
	// Toeplitz hash decides which queue the heavy flow lands on, so locate
	// it by share instead of assuming an index (cf. TestTab3's hot queue).
	shares := traffic.UnbalancedShares(0.30, 3)
	hot := 0
	for i, s := range shares {
		if s > shares[hot] {
			hot = i
		}
	}
	specs := parMap(o, len(rmetronomePolicies), func(i int) struct {
		rt  *core.Runtime
		met core.Metrics
	} {
		spec := rmetronomeSpec(o, rmetronomePolicies[i], shares, xl710Rate, d, uint64(1300+i))
		rt, met := runMetronome(spec)
		return struct {
			rt  *core.Runtime
			met core.Metrics
		}{rt, met}
	})
	unbalanced := &Table{
		ID: "fig13-15-rmetronome-unbalanced",
		Title: fmt.Sprintf("unbalanced traffic (one %.0f%% hot queue of 37 Mpps), 3 queues, M=6",
			shares[hot]*100),
		Columns: []string{
			"policy", "cpu_pct", "busy_tries_pct", "loss_permille",
			"hot_q_cycles", "cold_q_cycles", "hot_rho",
		},
	}
	for i, p := range rmetronomePolicies {
		rt, met := specs[i].rt, specs[i].met
		var cold int64
		for q, c := range met.CyclesQ {
			if q != hot {
				cold += c
			}
		}
		unbalanced.Rows = append(unbalanced.Rows, []string{
			p,
			pct(met.CPUPercent),
			pct(met.BusyTryFrac * 100),
			permille(met.LossRate),
			fmt.Sprintf("%d", met.CyclesQ[hot]),
			fmt.Sprintf("%d", cold),
			f3(rt.Rho(hot)),
		})
	}
	unbalanced.Notes = append(unbalanced.Notes,
		"hot_q_cycles uses the multi-thread-per-queue cycle accounting (core.CyclesQ); worksteal directs backup turns at the hot queue",
	)

	// Panel 3 — service-turn fairness inside one group: per-thread cycle
	// split of the balanced 2-queue deployment, observable only with the
	// per-thread accounting.
	spec := rmetronomeSpec(o, sched.NameRMetronome, evenShares(2), xl710Rate, d, 1400)
	rt, _ := runMetronome(spec)
	fair := &Table{
		ID:      "fig13-15-rmetronome-turns",
		Title:   "service-turn split, rmetronome, 2 queues x 2-member groups",
		Columns: []string{"thread", "home_queue", "cycles", "share_pct"},
	}
	total := rt.Cycles.Value
	for id, c := range rt.CyclesByThread {
		share := 0.0
		if total > 0 {
			share = float64(c) / float64(total) * 100
		}
		fair.Rows = append(fair.Rows, []string{
			fmt.Sprintf("#%d", id),
			fmt.Sprintf("%d", rt.Group().HomeQueue(id)),
			fmt.Sprintf("%d", c),
			pct(share),
		})
	}
	fair.Notes = append(fair.Notes,
		"members of one group take comparable turn shares: the CAS-claimed rotation does not starve a sibling",
	)

	// Panel 4 — turn-aware wake de-phasing: the same balanced deployments
	// with members staggered by TS/r off the service-turn counter
	// (sched.Dephaser). The delta column is the busy-try rate the stagger
	// buys back; the vacation columns show the eq. (13) target surviving
	// it (the stagger is mean-preserving across one rotation).
	type dpt struct {
		mpps     float64
		nq       int
		dephased bool
	}
	var dpts []dpt
	for _, mpps := range []float64{30, 37} {
		for _, nq := range []int{2, 3} {
			for _, de := range []bool{false, true} {
				dpts = append(dpts, dpt{mpps, nq, de})
			}
		}
	}
	dpRows := parMap(o, len(dpts), func(i int) []string {
		p := dpts[i]
		spec := rmetronomeSpec(o, sched.NameRMetronome, evenShares(p.nq), p.mpps*1e6, d, uint64(1450+i))
		spec.cfg.Dephase = p.dephased
		_, met := runMetronome(spec)
		return []string{
			fmt.Sprintf("%.0f", p.mpps),
			fmt.Sprintf("%d", p.nq),
			fmt.Sprintf("%v", p.dephased),
			pct(met.BusyTryFrac * 100),
			us(met.MeanVacation),
			pct(met.CPUPercent),
			permille(met.LossRate),
		}
	})
	dephase := &Table{
		ID:    "fig13-15-rmetronome-dephase",
		Title: "turn-aware wake de-phasing: busy-try delta, balanced traffic, M=2N",
		Columns: []string{
			"mpps", "queues", "dephased", "busy_tries_pct", "V_us", "cpu_pct", "loss_permille",
		},
		Rows: dpRows,
		Notes: []string{
			"lost-race members re-enter on the rotation clock (B̄/2 + V̄ + d·(V̄+B̄)) instead of a blind r·TS backoff; winners keep the eq. (13) timeout, active only at rho >= 0.45",
		},
	}
	for _, mpps := range []float64{30, 37} {
		for _, nq := range []int{2, 3} {
			var base, deph float64
			for i, p := range dpts {
				if p.mpps != mpps || p.nq != nq {
					continue
				}
				var f float64
				fmt.Sscanf(dpRows[i][3], "%f", &f)
				if p.dephased {
					deph = f
				} else {
					base = f
				}
			}
			dephase.Notes = append(dephase.Notes,
				fmt.Sprintf("%.0f Mpps, %d queues: busy tries %.1f%% -> %.1f%% (delta %+.1f pp)",
					mpps, nq, base, deph, deph-base))
		}
	}

	return []*Table{balanced, unbalanced, fair, dephase}
}
