package baseline

import (
	"math"
	"testing"
)

// Static is now a measured quantity (the busypoll discipline simulated on
// the shared engine), so CPU is ~100% per core within the window-boundary
// rounding of the accounting, not 100 by construction.
func TestStaticAlwaysBurnsItsCores(t *testing.T) {
	cfg := DefaultStatic()
	for _, lambda := range []float64{0, 0.744e6, 14.88e6} {
		r := Static(cfg, lambda)
		if r.CPUPercent < 99.9 || r.CPUPercent > 100.1 {
			t.Errorf("lambda=%v: CPU=%v%%, polling must burn ~100%%", lambda, r.CPUPercent)
		}
	}
	cfg.Cores = 4
	if r := Static(cfg, 0); r.CPUPercent < 399.6 || r.CPUPercent > 400.4 {
		t.Errorf("4-core static CPU = %v%%", r.CPUPercent)
	}
}

func TestStaticLineRateNoLoss(t *testing.T) {
	r := Static(DefaultStatic(), 14.88e6)
	if r.LossRate != 0 {
		t.Errorf("loss = %v", r.LossRate)
	}
	if math.Abs(r.ThroughputPPS-14.88e6)/14.88e6 > 1e-3 {
		t.Errorf("tput = %v", r.ThroughputPPS)
	}
}

func TestStaticLatencyNearPaperFloor(t *testing.T) {
	r := Static(DefaultStatic(), 14.88e6)
	// Paper: DPDK minimum ~6.83us, mean ~7us, tight variance.
	if r.LatencyMean < 6.8e-6 || r.LatencyMean > 8.5e-6 {
		t.Errorf("static latency mean = %.2f us", r.LatencyMean*1e6)
	}
	if r.LatencyStd > 1e-6 {
		t.Errorf("static latency std = %v", r.LatencyStd)
	}
}

func TestStaticSharedCoreHalvesThroughput(t *testing.T) {
	// Table II: static DPDK sharing its core with ferret -> 7.34 Mpps.
	cfg := DefaultStatic()
	cfg.CPUShare = 0.5
	r := Static(cfg, 14.88e6)
	if r.ThroughputPPS < 6.5e6 || r.ThroughputPPS > 8.5e6 {
		t.Errorf("shared-core throughput = %.2f Mpps, paper 7.34", r.ThroughputPPS/1e6)
	}
	if r.LossRate < 0.4 {
		t.Errorf("loss = %v", r.LossRate)
	}
}

func TestXDPZeroTrafficZeroCPU(t *testing.T) {
	r := XDP(DefaultXDP(), 0, 4)
	if r.CPUPercent != 0 {
		t.Errorf("XDP idle CPU = %v%% (interrupt-driven must be 0)", r.CPUPercent)
	}
}

func TestXDPSaturationMatchesPaper(t *testing.T) {
	// Sec. V-D: 4 ixgbe cores top out at ~13.57 Mpps with 64B packets.
	r := XDP(DefaultXDP(), 14.88e6, 4)
	if r.ThroughputPPS < 13.0e6 || r.ThroughputPPS > 14.2e6 {
		t.Errorf("XDP max tput = %.2f Mpps, paper 13.57", r.ThroughputPPS/1e6)
	}
	if r.LossRate <= 0 {
		t.Error("XDP at line rate should lose packets")
	}
	if r.CPUPercent < 350 {
		t.Errorf("XDP at saturation CPU = %v%%, want ~400%%", r.CPUPercent)
	}
}

func TestXDPCPUHigherThanMetronomeWouldBe(t *testing.T) {
	// Fig 10b at 5 Gbps: XDP's 4-core kernel path costs much more CPU
	// than DPDK-class userspace processing.
	r := XDP(DefaultXDP(), 7.44e6, 4)
	if r.CPUPercent < 150 || r.CPUPercent > 280 {
		t.Errorf("XDP @5G CPU = %v%%, paper ~200%%+", r.CPUPercent)
	}
}

func TestXDPLowRateSingleCore(t *testing.T) {
	// 1 Gbps on one core: paper shows moderate CPU, far below 100%.
	r := XDP(DefaultXDP(), 1.488e6, 1)
	if r.CPUPercent < 30 || r.CPUPercent > 70 {
		t.Errorf("XDP @1G CPU = %v%%", r.CPUPercent)
	}
	if r.LossRate != 0 {
		t.Errorf("loss at 1G = %v", r.LossRate)
	}
}

func TestXDPLatencyAboveDPDK(t *testing.T) {
	x := XDP(DefaultXDP(), 1.488e6, 1)
	d := Static(DefaultStatic(), 1.488e6)
	if x.LatencyMean <= d.LatencyMean {
		t.Errorf("XDP latency %.1fus <= DPDK %.1fus", x.LatencyMean*1e6, d.LatencyMean*1e6)
	}
	// At saturation the interrupt path queues up hard (Fig 10a).
	sat := XDP(DefaultXDP(), 14.88e6, 4)
	if sat.LatencyMean < 2*x.LatencyMean {
		t.Errorf("saturated XDP latency %.1fus not clearly worse", sat.LatencyMean*1e6)
	}
}

func TestBurstAdaptationLoss(t *testing.T) {
	cfg := DefaultXDP()
	// A 14.88 Mpps burst against one core with a 5 ms operator reaction:
	// tens of thousands of packets, as the paper observed.
	lost := BurstAdaptationLoss(cfg, 14.88e6, 5e-3)
	if lost < 10e3 || lost > 100e3 {
		t.Errorf("burst loss = %v packets", lost)
	}
	if BurstAdaptationLoss(cfg, 1e6, 5e-3) != 0 {
		t.Error("sub-capacity burst should lose nothing")
	}
}

func TestSynthBoxSane(t *testing.T) {
	b := synthBox(10e-6, 1e-6, 7, 0)
	if !(b.Min < b.Q1 && b.Q1 < b.Median && b.Median < b.Q3 && b.Q3 < b.Max) {
		t.Errorf("degenerate boxplot: %+v", b)
	}
	if math.Abs(b.Mean-10e-6) > 0.2e-6 {
		t.Errorf("synth mean = %v", b.Mean)
	}
}
