// Package baseline implements the two comparators of the paper's
// evaluation: classic continuously-polling DPDK (Listing 1) and the
// XDP/NAPI interrupt path of Sec. V-D.
//
// The static poller is no longer a closed form: Static runs the shared
// sched engine's "busypoll" discipline over the discrete-event substrate —
// one pinned polling thread per queue, exactly Listing 1 — so its CPU,
// loss and latency come out of the same queue/NIC/Tx-batch model every
// Metronome number does, instead of a parallel set of formulas that could
// drift from it. Only the time-shared case (CPUShare < 1) keeps a thin
// analytical layer on top: CFS deschedules a poller for whole
// milliseconds-scale slices, far below the event resolution worth
// simulating, and no Rx ring buffers such an outage — so delivered
// throughput scales with the obtained share (Table II's observation).
//
// XDP stays closed-form: its behaviour is characterised by per-packet
// kernel-path cost and per-queue core binding, not by event dynamics this
// simulator models.
package baseline

import (
	"math"

	"metronome/internal/core"
	"metronome/internal/cpu"
	"metronome/internal/nic"
	"metronome/internal/sched"
	"metronome/internal/sim"
	"metronome/internal/stats"
	"metronome/internal/traffic"
	"metronome/internal/xrand"
)

// StaticConfig describes a static-polling deployment.
type StaticConfig struct {
	// Mu is the per-core service rate in packets/second at full speed.
	Mu float64
	// Cores is the number of polling cores (one queue each, as DPDK
	// requires without Metronome's lock sharing).
	Cores int
	// CPUShare scales the CPU fraction each polling thread actually
	// obtains (< 1 when time-sharing with other tasks, Table II).
	CPUShare float64
	// BaseLatency is the wire+NIC+DMA floor.
	BaseLatency float64
	// Burst is the rx/tx burst size (32 in the paper's appendix); it sets
	// the Tx flush batch of the simulated queues.
	Burst float64
	// Dur is the simulated steady-state window in seconds (default 50 ms,
	// after a 20% warm-up that is discarded).
	Dur float64
	// Seed drives the simulation's randomness.
	Seed uint64
}

// DefaultStatic mirrors the paper's l3fwd static deployment.
func DefaultStatic() StaticConfig {
	return StaticConfig{
		Mu: 29.76e6, Cores: 1, CPUShare: 1, BaseLatency: 6.8e-6, Burst: 32,
		Dur: 50e-3, Seed: 7,
	}
}

// Result is the steady-state outcome for a baseline under offered load.
type Result struct {
	CPUPercent    float64
	ThroughputPPS float64
	LossRate      float64
	LatencyMean   float64
	LatencyStd    float64
	Latency       stats.Boxplot
	CoresUsed     int
}

// Static evaluates continuous polling under an offered load of lambda
// packets/second split evenly over the configured cores, by simulating the
// sched engine's busypoll discipline: Cores pinned threads, one queue
// each, zero timeouts — Listing 1 on the discrete-event substrate.
func Static(cfg StaticConfig, lambda float64) Result {
	if cfg.Cores < 1 {
		cfg.Cores = 1
	}
	if cfg.CPUShare <= 0 || cfg.CPUShare > 1 {
		cfg.CPUShare = 1
	}
	if cfg.Mu <= 0 {
		cfg.Mu = DefaultStatic().Mu
	}
	if cfg.Dur <= 0 {
		cfg.Dur = 50e-3
	}
	eng := sim.New()
	root := xrand.New(cfg.Seed ^ 0xd1b54a32d192ed03)
	queues := make([]*nic.Queue, cfg.Cores)
	for i := range queues {
		opt := nic.DefaultOptions()
		opt.BaseLatency = cfg.BaseLatency
		if cfg.Burst >= 1 {
			opt.TxBatch = int(cfg.Burst)
		}
		queues[i] = nic.NewQueue(i, traffic.CBR{PPS: lambda / float64(cfg.Cores)},
			root.Split(), opt)
	}
	simCfg := core.DefaultConfig()
	simCfg.M = cfg.Cores
	simCfg.Mu = cfg.Mu
	simCfg.Policy = sched.NameBusyPoll
	simCfg.Seed = cfg.Seed
	rt := core.New(eng, queues, simCfg)
	rt.Start()
	warm := cfg.Dur * 0.2
	eng.RunUntil(warm)
	for _, q := range queues {
		q.Reset(eng.Now())
	}
	// Restart CPU accounting so the snapshot covers the post-warm-up
	// window only (same idiom as the experiment harness).
	rt.Acct = cpu.NewAccounting(rt.ThreadCount())
	eng.RunUntil(warm + cfg.Dur)
	m := rt.Snapshot(cfg.Dur)

	// Time sharing (CPUShare < 1) is sub-event-scale: CFS deschedules the
	// poller for whole milliseconds-scale slices no Rx ring can buffer, so
	// delivered throughput scales with the obtained share on top of the
	// full-share simulation.
	tput := m.ThroughputPPS * cfg.CPUShare
	loss := m.LossRate
	if cfg.CPUShare < 1 && lambda > 0 {
		loss = 1 - tput/lambda
		if loss < 0 {
			loss = 0
		}
	}
	return Result{
		CPUPercent:    m.CPUPercent, // ~100% per polling core, now measured
		ThroughputPPS: tput,
		LossRate:      loss,
		LatencyMean:   m.Latency.Mean,
		LatencyStd:    m.LatencyStd,
		Latency:       m.Latency,
		CoresUsed:     cfg.Cores,
	}
}

// XDPConfig describes the xdp_router_ipv4-style deployment of Sec. V-D.
type XDPConfig struct {
	// CostPerPkt is the kernel-path cost per packet in seconds (driver rx,
	// per-interrupt housekeeping amortised by NAPI, eBPF program, redirect).
	CostPerPkt float64
	// IRQCost is the extra per-interrupt cost paid when the rate is too
	// low for NAPI to stay in polling mode.
	IRQCost float64
	// NAPIBatch is the polling batch; rates above NAPIBatch interrupts/s
	// per core amortise IRQCost away.
	NAPIBatch float64
	// BaseLatency is the floor of the kernel path (higher than DPDK's).
	BaseLatency float64
}

// DefaultXDP is calibrated so that four ixgbe cores saturate at the
// 13.57 Mpps the paper measured on the X520 (Sec. V-D).
func DefaultXDP() XDPConfig {
	return XDPConfig{
		CostPerPkt:  295e-9,
		IRQCost:     2e-6,
		NAPIBatch:   64,
		BaseLatency: 9e-6,
	}
}

// XDP evaluates the interrupt-driven baseline with the load split over
// `cores` 1:1 queue-to-core bindings.
func XDP(cfg XDPConfig, lambda float64, cores int) Result {
	if cores < 1 {
		cores = 1
	}
	perCore := lambda / float64(cores)
	// Below ~NAPIBatch packets per interrupt the per-IRQ cost surfaces.
	cost := cfg.CostPerPkt
	if perCore > 0 {
		irqPerPacket := 1 / math.Max(1, perCore*cfg.CostPerPkt*cfg.NAPIBatch)
		if irqPerPacket > 1 {
			irqPerPacket = 1
		}
		cost += cfg.IRQCost * irqPerPacket / cfg.NAPIBatch * 4 // residual softirq work
	}
	util := perCore * cost
	muCore := 1 / cost
	tputCore := math.Min(perCore, muCore)
	loss := 0.0
	if lambda > 0 {
		loss = 1 - tputCore*float64(cores)/lambda
		if loss < 0 {
			loss = 0
		}
	}
	if util > 1 {
		util = 1
	}
	// NAPI sheds overload by dropping at the driver, so the softirq queue
	// saturates around ~90% effective occupancy rather than diverging; the
	// latency inflation is bounded accordingly (Fig 10a shows XDP worst at
	// line rate but not unbounded).
	rho := perCore / muCore
	if rho > 0.90 {
		rho = 0.90
	}
	mean := cfg.BaseLatency + cost + rho/(1-rho)*cost*10
	std := 2e-6 + rho/(1-rho)*1e-6
	return Result{
		CPUPercent:    util * 100 * float64(cores),
		ThroughputPPS: tputCore * float64(cores),
		LossRate:      loss,
		LatencyMean:   mean,
		LatencyStd:    std,
		Latency:       synthBox(mean, std, 1, cfg.BaseLatency),
		CoresUsed:     cores,
	}
}

// BurstAdaptationLoss estimates the packets XDP loses when a line-rate
// burst arrives while it is deployed on a single queue/core and must be
// manually re-scaled with ethtool (Sec. V-D: "some tens of thousands").
func BurstAdaptationLoss(cfg XDPConfig, burstPPS float64, reconfigDelay float64) float64 {
	muCore := 1 / cfg.CostPerPkt
	excess := burstPPS - muCore
	if excess <= 0 {
		return 0
	}
	return excess * reconfigDelay
}

// synthBox synthesises a five-number summary from a mean and standard
// deviation using normal-order statistics — the baselines are closed-form,
// but the figures want boxplots comparable to Metronome's sampled ones.
// floor clamps the physical minimum (no packet beats the wire+DMA path).
func synthBox(mean, std float64, seed uint64, floor float64) stats.Boxplot {
	rng := xrand.New(seed ^ 0x9e3779b97f4a7c15)
	var s stats.Sample
	for i := 0; i < 2001; i++ {
		v := mean + std*rng.NormFloat64()
		if v < floor {
			v = floor
		}
		s.Add(v)
	}
	return s.Box()
}
