//go:build race

package ring

import "sync/atomic"

// roleGuard enforces the SPSC contract under the race detector: at most
// one call per role (producer or consumer) in flight at a time. Two
// goroutines entering the same role concurrently is a correctness bug the
// plain-atomics SPSC cannot survive — and one the race detector alone can
// miss when the interleaving happens to look benign — so race builds turn
// it into a deterministic panic at the offending call. Production builds
// compile the guard to nothing (guard_norace.go).
type roleGuard struct{ busy atomic.Int32 }

func (g *roleGuard) enter(role string) {
	if g.busy.Add(1) != 1 {
		panic("ring: concurrent " + role + "-side calls on an SPSC ring — use MPMC, or serialise the role behind a lock")
	}
}

func (g *roleGuard) exit() { g.busy.Add(-1) }
