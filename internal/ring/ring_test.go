package ring

import (
	"runtime"
	"sync"
	"testing"
)

// soak scales a concurrency-soak iteration count: full size normally,
// a light pass under -short. The spin loops below yield between retries —
// on a single-core runner a bare spin starves the peer goroutine for whole
// scheduler quanta and the suite takes minutes instead of seconds.
func soak(t *testing.T, full int) int {
	if testing.Short() {
		return full / 10
	}
	return full
}

func TestBadCapacity(t *testing.T) {
	for _, c := range []int{0, 1, 3, 100} {
		if _, err := NewMPMC[int](c); err != ErrBadCapacity {
			t.Errorf("NewMPMC(%d) err = %v", c, err)
		}
		if _, err := NewSPSC[int](c); err != ErrBadCapacity {
			t.Errorf("NewSPSC(%d) err = %v", c, err)
		}
	}
}

func TestMPMCFIFO(t *testing.T) {
	r, _ := NewMPMC[int](8)
	for i := 0; i < 5; i++ {
		if !r.Enqueue(i) {
			t.Fatalf("enqueue %d failed", i)
		}
	}
	for i := 0; i < 5; i++ {
		v, ok := r.Dequeue()
		if !ok || v != i {
			t.Fatalf("dequeue %d: got %d ok=%v", i, v, ok)
		}
	}
	if _, ok := r.Dequeue(); ok {
		t.Fatal("dequeue from empty succeeded")
	}
}

func TestMPMCFull(t *testing.T) {
	r, _ := NewMPMC[int](4)
	for i := 0; i < 4; i++ {
		if !r.Enqueue(i) {
			t.Fatalf("enqueue %d failed below capacity", i)
		}
	}
	if r.Enqueue(99) {
		t.Fatal("enqueue into full ring succeeded")
	}
	if r.Len() != 4 || r.Cap() != 4 {
		t.Fatalf("len=%d cap=%d", r.Len(), r.Cap())
	}
	// after one dequeue there is room again
	r.Dequeue()
	if !r.Enqueue(99) {
		t.Fatal("enqueue after dequeue failed")
	}
}

func TestMPMCWrapAround(t *testing.T) {
	r, _ := NewMPMC[int](4)
	for round := 0; round < 100; round++ {
		for i := 0; i < 3; i++ {
			if !r.Enqueue(round*10 + i) {
				t.Fatal("enqueue failed")
			}
		}
		for i := 0; i < 3; i++ {
			v, ok := r.Dequeue()
			if !ok || v != round*10+i {
				t.Fatalf("round %d: got %d", round, v)
			}
		}
	}
}

func TestMPMCBurst(t *testing.T) {
	r, _ := NewMPMC[int](8)
	in := []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if n := r.EnqueueBurst(in); n != 8 {
		t.Fatalf("enqueued %d, want 8 (capacity)", n)
	}
	out := make([]int, 5)
	if n := r.DequeueBurst(out); n != 5 {
		t.Fatalf("dequeued %d, want 5", n)
	}
	for i, v := range out {
		if v != i+1 {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
	if n := r.DequeueBurst(make([]int, 16)); n != 3 {
		t.Fatalf("drain got %d, want 3", n)
	}
}

func TestMPMCConcurrent(t *testing.T) {
	// N producers, M consumers; every produced value must be consumed
	// exactly once. Run with -race to exercise the memory ordering.
	r, _ := NewMPMC[int](64)
	const producers, consumers = 4, 4
	perProducer := soak(t, 5000)
	var wg sync.WaitGroup
	seen := make([]int32, producers*perProducer)
	var mu sync.Mutex
	done := make(chan struct{})

	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				v := p*perProducer + i
				for !r.Enqueue(v) {
					runtime.Gosched()
				}
			}
		}(p)
	}
	var cwg sync.WaitGroup
	for c := 0; c < consumers; c++ {
		cwg.Add(1)
		go func() {
			defer cwg.Done()
			for {
				v, ok := r.Dequeue()
				if !ok {
					select {
					case <-done:
						// final drain
						for {
							v, ok := r.Dequeue()
							if !ok {
								return
							}
							mu.Lock()
							seen[v]++
							mu.Unlock()
						}
					default:
						runtime.Gosched()
						continue
					}
				}
				mu.Lock()
				seen[v]++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	close(done)
	cwg.Wait()
	for v, n := range seen {
		if n != 1 {
			t.Fatalf("value %d consumed %d times", v, n)
		}
	}
}

func TestSPSCFIFO(t *testing.T) {
	r, _ := NewSPSC[string](4)
	r.Enqueue("a")
	r.Enqueue("b")
	if v, _ := r.Dequeue(); v != "a" {
		t.Fatalf("got %q", v)
	}
	if v, _ := r.Dequeue(); v != "b" {
		t.Fatalf("got %q", v)
	}
	if _, ok := r.Dequeue(); ok {
		t.Fatal("empty dequeue succeeded")
	}
}

func TestSPSCFullAndWrap(t *testing.T) {
	r, _ := NewSPSC[int](2)
	if !r.Enqueue(1) || !r.Enqueue(2) {
		t.Fatal("fill failed")
	}
	if r.Enqueue(3) {
		t.Fatal("overfill succeeded")
	}
	for round := 0; round < 50; round++ {
		v, ok := r.Dequeue()
		if !ok || v != round+1 {
			t.Fatalf("round %d: %d %v", round, v, ok)
		}
		if !r.Enqueue(round + 3) {
			t.Fatal("refill failed")
		}
	}
}

func TestSPSCConcurrent(t *testing.T) {
	r, _ := NewSPSC[int](128)
	n := soak(t, 50000)
	go func() {
		for i := 0; i < n; i++ {
			for !r.Enqueue(i) {
				runtime.Gosched()
			}
		}
	}()
	next := 0
	for next < n {
		v, ok := r.Dequeue()
		if !ok {
			runtime.Gosched()
			continue
		}
		if v != next {
			t.Fatalf("out of order: got %d want %d", v, next)
		}
		next++
	}
}

func TestSPSCBurst(t *testing.T) {
	r, _ := NewSPSC[int](8)
	for i := 0; i < 6; i++ {
		r.Enqueue(i)
	}
	out := make([]int, 4)
	if n := r.DequeueBurst(out); n != 4 {
		t.Fatalf("burst = %d", n)
	}
	if r.Len() != 2 {
		t.Fatalf("len = %d", r.Len())
	}
}

func BenchmarkMPMCUncontended(b *testing.B) {
	r, _ := NewMPMC[int](1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Enqueue(i)
		r.Dequeue()
	}
}

func BenchmarkSPSCUncontended(b *testing.B) {
	r, _ := NewSPSC[int](1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Enqueue(i)
		r.Dequeue()
	}
}

func BenchmarkMPMCContended(b *testing.B) {
	r, _ := NewMPMC[int](1024)
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if !r.Enqueue(1) {
				r.Dequeue()
			} else {
				r.Dequeue()
			}
		}
	})
}
